#!/usr/bin/env bash
# Repo CI: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
# Observability subsystem: tracing/metrics units (idbox-obs),
# histogram/audit-ring units, and the e2e suite covering the
# stats/audit/metrics/slowops RPCs and the trace-id join.
cargo test -q -p idbox-obs -p idbox-kernel -p idbox-core
cargo test -q -p idbox-chirp --test e2e
# Fast-path cache equivalence: the dentry cache and the ACL verdict
# cache must be pure optimizations (cached and uncached resolution /
# rulings agree under random mutation interleavings).
cargo test -q -p idbox-vfs --test props
cargo test -q -p idbox-core --test cache_equivalence
# Bench smoke (~2 s): the fig5a ablation harness and the server
# throughput harness must run end to end and emit their results files
# (including results/BENCH_syscall.json), on tiny iteration counts.
IDBOX_BENCH_FAST=1 cargo run --release -q -p idbox-bench --bin fig5a_table 300
IDBOX_BENCH_WINDOW_MS=150 IDBOX_BENCH_LEVELS=1,2 \
  cargo run --release -q -p idbox-bench --bin server_throughput
# The whole workspace lints clean across all targets (tests, benches,
# bins).
cargo clippy --workspace --all-targets -- -D warnings
