#!/usr/bin/env bash
# Repo CI: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
# Observability subsystem: tracing/metrics units (idbox-obs),
# histogram/audit-ring units, and the e2e suite covering the
# stats/audit/metrics/slowops RPCs and the trace-id join.
cargo test -q -p idbox-obs -p idbox-kernel -p idbox-core
cargo test -q -p idbox-chirp --test e2e
# The whole workspace lints clean across all targets (tests, benches,
# bins).
cargo clippy --workspace --all-targets -- -D warnings
