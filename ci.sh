#!/usr/bin/env bash
# Repo CI: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
# Observability subsystem: histogram/audit-ring units plus the e2e
# stats/audit RPC and oversized-put tests.
cargo test -q -p idbox-kernel -p idbox-core
cargo test -q -p idbox-chirp --test e2e
cargo clippy -- -D warnings
# Crates touched by the observability work lint clean across all
# targets (tests, benches, bins).
cargo clippy -p idbox-kernel -p idbox-interpose -p idbox-core -p idbox-chirp -p idbox-bench --all-targets -- -D warnings
