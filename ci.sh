#!/usr/bin/env bash
# Repo CI: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
# Observability subsystem: tracing/metrics units (idbox-obs),
# histogram/audit-ring units, and the e2e suite covering the
# stats/audit/metrics/slowops RPCs and the trace-id join.
cargo test -q -p idbox-obs -p idbox-kernel -p idbox-core
cargo test -q -p idbox-chirp --test e2e
# Self-observation plane: flight-recorder/tracedump e2e (Chrome-trace
# JSON validity, admin gating, bounded rings under an RPC storm), the
# loop-stall watchdog, the health roll-up, and hostile-identity label
# escaping in the lock/loop Prometheus families.
cargo test -q -p idbox-chirp --test observability
# Lock-profile units: log2 wait histograms, snapshot diffs, percentile
# math, and the enable/disable kill switch.
cargo test -q -p idbox-sync
# Fast-path cache equivalence: the dentry cache and the ACL verdict
# cache must be pure optimizations (cached and uncached resolution /
# rulings agree under random mutation interleavings).
cargo test -q -p idbox-vfs --test props
cargo test -q -p idbox-core --test cache_equivalence
# Zero-copy data plane: the chunked extent store must agree with a
# flat-buffer model under random write/truncate/read interleavings
# (copy-on-write aliasing included), pinned seed.
IDBOX_PROP_SEED=0x1DB0F cargo test -q -p idbox-vfs --test extent_props
# Robustness: seeded fault injection (wire + vfs) against the real
# stack, retry/reconnect masking, load shedding, bounded drain. The
# pinned seed makes a CI failure reproduce exactly.
IDBOX_PROP_SEED=0x1DB0F cargo test -q -p idbox-testkit
IDBOX_PROP_SEED=0x1DB0F cargo test -q -p idbox-chirp --test robustness
# Wire protocol v2: the pipelining transcript-equivalence proptest (a
# pipelined/batched run must reply byte-identically to the same ops run
# serially on a twin server, under seeded vfs faults and a drain
# window), plus the EPROTO-teardown and batch-whitelist suites.
IDBOX_PROP_SEED=0x1DB0F cargo test -q -p idbox-chirp --test pipeline_props
# Sharded-kernel correctness: the transcript-equivalence proptest
# (shards=1 vs shards=5 must agree on every syscall, pinned seed) and
# the threaded cross-shard stress test for lock-ordering deadlocks.
IDBOX_PROP_SEED=0x1DB0F cargo test -q -p idbox-kernel --test shard_equivalence
cargo test -q -p idbox-kernel --release concurrent_syscalls_across_shards_do_not_deadlock
# Durability: crash-point recovery properties for the write-ahead log
# (truncation at any byte, write-side crash budgets with torn final
# records, snapshots cut mid-stream). Replay must always land on a
# prefix state with zero fail-open ACLs; the pinned seed makes a CI
# failure reproduce exactly.
IDBOX_PROP_SEED=0x1DB0F cargo test -q -p idbox-vfs --test wal_props
# Durability smoke (~6 s): the WAL tax A/B must run end to end and
# emit results/BENCH_durability.tsv. Group commit at the server
# defaults must hold >= 0.90x of the volatile metadata-mix rate. The
# harness brackets every durable window with volatile ones and takes
# the median of per-round paired ratios across 9 rounds; a first miss
# settles and remeasures once, and the assertion self-skips only when
# a direct probe shows the shared disk itself degraded (400 KiB
# fdatasync over 1 ms). This smoke runs before the other bench storms
# on purpose: it is the only one whose measured quantity includes
# disk writes, and a device still draining another harness's
# leftovers taxes the durable windows but not the volatile ones.
IDBOX_BENCH_WINDOW_MS=150 IDBOX_BENCH_ROUNDS=9 IDBOX_BENCH_ASSERT_DURABILITY=1 \
  cargo run --release -q -p idbox-bench --bin durability
# Bench smoke (~2 s): the fig5a ablation harness and the server
# throughput harness must run end to end and emit their results files
# (including results/BENCH_syscall.json), on tiny iteration counts.
IDBOX_BENCH_FAST=1 cargo run --release -q -p idbox-bench --bin fig5a_table 300
IDBOX_BENCH_WINDOW_MS=150 IDBOX_BENCH_LEVELS=1,2 \
  cargo run --release -q -p idbox-bench --bin server_throughput
# Degradation smoke (~2 s): the fault sweep must run end to end, emit
# results/BENCH_faults.json, and observe zero fail-open verdicts (the
# forbidden-probe assertion is built into the harness, every run).
IDBOX_BENCH_WINDOW_MS=150 \
  cargo run --release -q -p idbox-bench --bin server_throughput -- --faults
# Pipeline smoke (~2 s): the wire-v2 single-connection bench must run
# end to end and emit results/BENCH_pipeline.tsv. The >= 5x pipelining
# assertion self-skips on single-core hosts.
IDBOX_BENCH_WINDOW_MS=150 IDBOX_BENCH_ASSERT_PIPELINE=1 \
  cargo run --release -q -p idbox-bench --bin pipeline
# Contention smoke (~2 s): the disjoint-subtree contention bench must
# run end to end and emit results/BENCH_contention.tsv. The >=1.5x
# scaling assertion self-skips on hosts with fewer than 4 cores.
IDBOX_BENCH_WINDOW_MS=150 IDBOX_BENCH_ASSERT_SCALING=1 \
  cargo run --release -q -p idbox-bench --bin contention
# Data-plane smoke (~2 s): the zero-copy vs copying A/B must run end
# to end and emit results/BENCH_dataplane.tsv. The >= 2x floor on
# 1 MiB+ get self-skips on single-core hosts.
IDBOX_BENCH_WINDOW_MS=150 IDBOX_DATAPLANE_SIZES=4096,1048576,16777216 \
  IDBOX_BENCH_ASSERT_DATAPLANE=1 \
  cargo run --release -q -p idbox-bench --bin dataplane
# Observability overhead smoke (~2 s): the on-vs-off A/B must run end
# to end and emit results/BENCH_overhead.tsv. The <=3% overhead
# assertion self-skips on single-core hosts, where the ratio is
# scheduler noise.
IDBOX_BENCH_WINDOW_MS=150 IDBOX_BENCH_ASSERT_OVERHEAD=1 \
  cargo run --release -q -p idbox-bench --bin server_throughput -- --overhead
# Doc drift gate: every IDBOX_* environment variable the code reads
# must be documented in the OPERATIONS.md reference table.
for v in $(grep -rhoE 'IDBOX_[A-Z0-9_]+' crates --include='*.rs' | sort -u); do
  grep -q "$v" OPERATIONS.md || { echo "OPERATIONS.md missing $v"; exit 1; }
done
# The whole workspace lints clean across all targets (tests, benches,
# bins), and the API docs build without warnings.
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q
