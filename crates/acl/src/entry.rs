//! One line of an ACL file.

use crate::{Rights, SubjectPattern};
use std::fmt;

/// A single ACL entry: a subject pattern, its rights, and — when the
/// reserve right is held — the rights granted inside a freshly reserved
/// directory.
///
/// Textual form (whitespace-separated, rights last):
///
/// ```text
/// /O=UnivNowhere/CN=Fred   rwlax
/// globus:/O=UnivNowhere/*  v(rwlax)
/// hostname:*.nowhere.edu   rlxv(rwl)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AclEntry {
    /// Who this entry applies to.
    pub subject: SubjectPattern,
    /// The rights held (includes [`Rights::RESERVE`] when a `v` form is
    /// present).
    pub rights: Rights,
    /// The rights written into the ACL of a directory created under the
    /// reserve right, i.e. the parenthesized set in `v(rwlax)`. Empty when
    /// the entry has no reserve right or a bare `v`.
    pub reserve_grant: Rights,
}

impl AclEntry {
    /// An ordinary entry with no reserve component.
    pub fn new(subject: impl Into<SubjectPattern>, rights: Rights) -> Self {
        AclEntry {
            subject: subject.into(),
            rights: rights - Rights::RESERVE,
            reserve_grant: Rights::NONE,
        }
    }

    /// An entry carrying the reserve right with the given grant set, in
    /// addition to `rights`.
    pub fn with_reserve(
        subject: impl Into<SubjectPattern>,
        rights: Rights,
        grant: Rights,
    ) -> Self {
        AclEntry {
            subject: subject.into(),
            rights: rights | Rights::RESERVE,
            reserve_grant: grant - Rights::RESERVE,
        }
    }

    /// Parse one non-empty line. The *last* whitespace-separated token is
    /// the rights specification; everything before it (trimmed) is the
    /// subject, which may therefore contain spaces.
    pub fn parse(line: &str) -> Result<AclEntry, AclParseError> {
        let line = line.trim();
        let split = line
            .rfind(char::is_whitespace)
            .ok_or_else(|| AclParseError::MissingRights(line.to_string()))?;
        let subject = line[..split].trim();
        let spec = line[split..].trim();
        if subject.is_empty() {
            return Err(AclParseError::MissingRights(line.to_string()));
        }
        let (rights, grant) = parse_rights_spec(spec)
            .map_err(|c| AclParseError::BadRight(c, line.to_string()))?;
        Ok(AclEntry {
            subject: SubjectPattern::new(subject),
            rights,
            reserve_grant: grant,
        })
    }

    /// The canonical rights specification, e.g. `rlv(rwlax)`.
    pub fn rights_spec(&self) -> String {
        let plain = self.rights - Rights::RESERVE;
        let mut s = plain.letters();
        if self.rights.contains(Rights::RESERVE) {
            s.push('v');
            if !self.reserve_grant.is_empty() {
                s.push('(');
                s.push_str(&self.reserve_grant.letters());
                s.push(')');
            }
        }
        if s.is_empty() {
            s.push('-');
        }
        s
    }
}

/// Parse a rights spec such as `rwlax`, `v(rwlax)`, `rlxv(rwl)`, or `-`.
fn parse_rights_spec(spec: &str) -> Result<(Rights, Rights), char> {
    if spec == "-" {
        return Ok((Rights::NONE, Rights::NONE));
    }
    let mut rights = Rights::NONE;
    let mut grant = Rights::NONE;
    let mut chars = spec.chars().peekable();
    while let Some(c) = chars.next() {
        if c == 'v' {
            rights |= Rights::RESERVE;
            if chars.peek() == Some(&'(') {
                chars.next();
                let mut inner = String::new();
                let mut closed = false;
                for c in chars.by_ref() {
                    if c == ')' {
                        closed = true;
                        break;
                    }
                    inner.push(c);
                }
                if !closed {
                    return Err('(');
                }
                grant |= Rights::parse_letters(&inner)? - Rights::RESERVE;
            }
        } else {
            rights |= Rights::parse_letters(&c.to_string())?;
        }
    }
    Ok((rights, grant))
}

impl fmt::Display for AclEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.subject, self.rights_spec())
    }
}

/// Errors from parsing ACL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AclParseError {
    /// A line had no whitespace-separated rights token.
    MissingRights(String),
    /// A rights token contained an unknown letter (or an unclosed `v(`).
    BadRight(char, String),
}

impl fmt::Display for AclParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AclParseError::MissingRights(l) => {
                write!(f, "ACL line has no rights token: {:?}", l)
            }
            AclParseError::BadRight(c, l) => {
                write!(f, "ACL line has bad right {:?}: {:?}", c, l)
            }
        }
    }
}

impl std::error::Error for AclParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_plain_entry() {
        let e = AclEntry::parse("/O=UnivNowhere/CN=Fred rwlax").unwrap();
        assert_eq!(e.subject.as_str(), "/O=UnivNowhere/CN=Fred");
        assert_eq!(e.rights, Rights::RWLAX);
        assert!(e.reserve_grant.is_empty());
    }

    #[test]
    fn parse_reserve_entry() {
        let e = AclEntry::parse("globus:/O=UnivNowhere/* v(rwlax)").unwrap();
        assert!(e.rights.contains(Rights::RESERVE));
        assert_eq!(e.reserve_grant, Rights::RWLAX);
        assert_eq!(e.rights - Rights::RESERVE, Rights::NONE);
    }

    #[test]
    fn parse_mixed_reserve() {
        let e = AclEntry::parse("hostname:*.nowhere.edu rlxv(rwl)").unwrap();
        assert!(e.rights.contains(Rights::READ | Rights::LIST | Rights::EXECUTE));
        assert!(e.rights.contains(Rights::RESERVE));
        assert_eq!(
            e.reserve_grant,
            Rights::READ | Rights::WRITE | Rights::LIST
        );
    }

    #[test]
    fn parse_bare_v() {
        let e = AclEntry::parse("anyone v").unwrap();
        assert!(e.rights.contains(Rights::RESERVE));
        assert!(e.reserve_grant.is_empty());
    }

    #[test]
    fn subject_with_spaces() {
        let e = AclEntry::parse("/O=Univ Nowhere/CN=Fred Smith rl").unwrap();
        assert_eq!(e.subject.as_str(), "/O=Univ Nowhere/CN=Fred Smith");
        assert_eq!(e.rights, Rights::READ | Rights::LIST);
    }

    #[test]
    fn display_roundtrip() {
        for line in [
            "/O=UnivNowhere/CN=Fred rwlax",
            "globus:/O=UnivNowhere/* v(rwlax)",
            "hostname:*.nowhere.edu rlxv(rwl)",
            "denied -",
        ] {
            let e = AclEntry::parse(line).unwrap();
            let printed = e.to_string();
            let e2 = AclEntry::parse(&printed).unwrap();
            assert_eq!(e, e2, "roundtrip failed for {line:?}");
        }
    }

    #[test]
    fn errors() {
        assert!(matches!(
            AclEntry::parse("nospaceatall"),
            Err(AclParseError::MissingRights(_))
        ));
        assert!(matches!(
            AclEntry::parse("fred rz"),
            Err(AclParseError::BadRight('z', _))
        ));
        assert!(matches!(
            AclEntry::parse("fred v(rwl"),
            Err(AclParseError::BadRight('(', _))
        ));
    }

    #[test]
    fn dash_means_no_rights() {
        let e = AclEntry::parse("banned -").unwrap();
        assert!(e.rights.is_empty());
        assert_eq!(e.rights_spec(), "-");
    }

    #[test]
    fn reserve_grant_cannot_contain_v() {
        let e = AclEntry::parse("fred v(rv)").unwrap();
        assert!(!e.reserve_grant.contains(Rights::RESERVE));
        assert!(e.reserve_grant.contains(Rights::READ));
    }
}
