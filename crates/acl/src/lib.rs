//! Per-directory access control lists.
//!
//! Within an identity box the Unix protection scheme is abandoned in favour
//! of ACLs (paper, Section 3). Each directory carries a file (named
//! [`idbox_types::ACL_FILE_NAME`]) listing, one per line, a *subject
//! pattern* and the rights it holds:
//!
//! ```text
//! /O=UnivNowhere/CN=Fred   rwlax
//! /O=UnivNowhere/*         rl
//! hostname:*.nowhere.edu   rlx
//! globus:/O=UnivNowhere/*  v(rwlax)
//! ```
//!
//! Subjects may contain wildcards (`*`, `?`). Rights are the letters
//! `r` (read), `w` (write), `l` (list), `d` (delete), `a` (administer),
//! `x` (execute), plus the **reserve right** `v(...)` — a form of
//! amplification: a user holding only `v(rwlax)` in a directory may
//! `mkdir` there, and the fresh directory's ACL names that user with the
//! parenthesized rights (paper, Section 4).

mod entry;
mod list;
mod rights;
mod subject;

pub use entry::{AclEntry, AclParseError};
pub use list::Acl;
pub use rights::Rights;
pub use subject::SubjectPattern;
