//! The access control list itself.

use crate::{AclEntry, AclParseError, Rights, SubjectPattern};
use idbox_types::Identity;
use std::fmt;

/// A directory's access control list: an ordered list of entries.
///
/// Rights are **additive**: an identity's effective rights are the union
/// of the rights of every entry whose subject pattern matches it. This is
/// the semantics the paper's examples rely on (`/O=UnivNowhere/CN=Fred
/// rwlax` plus `/O=UnivNowhere/* rl` gives Fred `rwlax`, everyone else at
/// UnivNowhere `rl`).
///
/// ```
/// use idbox_acl::{Acl, Rights};
/// use idbox_types::Identity;
///
/// let acl = Acl::parse(
///     "/O=UnivNowhere/CN=Fred rwlax\n\
///      /O=UnivNowhere/*       rl\n",
/// ).unwrap();
/// let fred = Identity::new("/O=UnivNowhere/CN=Fred");
/// let george = Identity::new("/O=UnivNowhere/CN=George");
/// assert!(acl.allows(&fred, Rights::WRITE | Rights::ADMIN));
/// assert!(acl.allows(&george, Rights::READ));
/// assert!(!acl.allows(&george, Rights::WRITE));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Acl {
    entries: Vec<AclEntry>,
}

impl Acl {
    /// An empty ACL: nobody holds any rights.
    pub fn empty() -> Self {
        Acl::default()
    }

    /// An ACL giving one identity full control (`rwldax`) — the initial
    /// ACL of a visiting user's fresh home directory.
    pub fn owner(identity: &Identity) -> Self {
        let mut acl = Acl::empty();
        acl.set_entry(AclEntry::new(
            SubjectPattern::literal(identity),
            Rights::FULL,
        ));
        acl
    }

    /// The ACL given to a directory created under the reserve right: the
    /// creating identity, literally (no wildcard), with the reserve
    /// entry's grant set (paper, Section 4).
    pub fn reserved(identity: &Identity, grant: Rights) -> Self {
        let mut acl = Acl::empty();
        acl.set_entry(AclEntry::new(SubjectPattern::literal(identity), grant));
        acl
    }

    /// Build from entries.
    pub fn from_entries(entries: impl IntoIterator<Item = AclEntry>) -> Self {
        let mut acl = Acl::empty();
        for e in entries {
            acl.set_entry(e);
        }
        acl
    }

    /// Parse the text of an ACL file. Blank lines and `#` comments are
    /// ignored.
    pub fn parse(text: &str) -> Result<Acl, AclParseError> {
        let mut acl = Acl::empty();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            acl.set_entry(AclEntry::parse(line)?);
        }
        Ok(acl)
    }

    /// Serialize to the on-disk text form.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for e in &self.entries {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        s
    }

    /// The entries, in order.
    pub fn entries(&self) -> &[AclEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the ACL has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert or replace the entry for `entry.subject` (subjects are
    /// unique within an ACL; setting an existing subject overwrites it).
    pub fn set_entry(&mut self, entry: AclEntry) {
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.subject == entry.subject)
        {
            *existing = entry;
        } else {
            self.entries.push(entry);
        }
    }

    /// Convenience: set a subject to plain rights.
    pub fn set(&mut self, subject: impl Into<SubjectPattern>, rights: Rights) {
        self.set_entry(AclEntry::new(subject, rights));
    }

    /// Convenience: set a subject to rights plus a reserve grant.
    pub fn set_reserve(
        &mut self,
        subject: impl Into<SubjectPattern>,
        rights: Rights,
        grant: Rights,
    ) {
        self.set_entry(AclEntry::with_reserve(subject, rights, grant));
    }

    /// Remove the entry whose subject is exactly `subject`. Returns true
    /// when an entry was removed.
    pub fn remove(&mut self, subject: &str) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.subject.as_str() != subject);
        self.entries.len() != before
    }

    /// The effective rights of `identity`: the union over all matching
    /// entries (including [`Rights::RESERVE`] when any matching entry
    /// carries it).
    pub fn rights_for(&self, identity: &Identity) -> Rights {
        let mut r = Rights::NONE;
        for e in &self.entries {
            if e.subject.matches(identity) {
                r |= e.rights;
            }
        }
        r
    }

    /// The reserve grant for `identity`: the union of the grant sets of
    /// every matching entry that holds the reserve right. `None` when the
    /// identity holds no reserve right here.
    pub fn reserve_grant_for(&self, identity: &Identity) -> Option<Rights> {
        let mut any = false;
        let mut grant = Rights::NONE;
        for e in &self.entries {
            if e.subject.matches(identity) && e.rights.contains(Rights::RESERVE) {
                any = true;
                grant |= e.reserve_grant;
            }
        }
        any.then_some(grant)
    }

    /// True when `identity` holds every right in `needed`.
    pub fn allows(&self, identity: &Identity, needed: Rights) -> bool {
        self.rights_for(identity).contains(needed)
    }
}

impl fmt::Display for Acl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> Identity {
        Identity::new(s)
    }

    #[test]
    fn paper_example_acl() {
        // "this ACL allows /O=UnivNowhere/CN=Fred to read, write, list,
        //  execute and administer this directory. It also allows any user
        //  at /O=UnivNowhere/ to read and list it."
        let acl = Acl::parse(
            "/O=UnivNowhere/CN=Fred rwlax\n\
             /O=UnivNowhere/* rl\n",
        )
        .unwrap();
        let fred = id("/O=UnivNowhere/CN=Fred");
        let george = id("/O=UnivNowhere/CN=George");
        let outsider = id("/O=NotreDame/CN=dthain");
        assert!(acl.allows(&fred, Rights::RWLAX));
        assert!(acl.allows(&george, Rights::READ | Rights::LIST));
        assert!(!acl.allows(&george, Rights::WRITE));
        assert_eq!(acl.rights_for(&outsider), Rights::NONE);
    }

    #[test]
    fn paper_root_acl_with_reserve() {
        // "/: hostname:*.nowhere.edu rlx
        //     globus:/O=UnivNowhere/* v(rwlax)"
        let acl = Acl::parse(
            "hostname:*.nowhere.edu rlx\n\
             globus:/O=UnivNowhere/* v(rwlax)\n",
        )
        .unwrap();
        let host = id("hostname:laptop.cs.nowhere.edu");
        let fred = id("globus:/O=UnivNowhere/CN=Fred");
        assert!(acl.allows(&host, Rights::READ | Rights::LIST | Rights::EXECUTE));
        assert_eq!(acl.reserve_grant_for(&host), None);
        assert_eq!(acl.reserve_grant_for(&fred), Some(Rights::RWLAX));
        // Fred holds only the reserve right, nothing else.
        assert!(!acl.allows(&fred, Rights::READ));
        assert!(acl.allows(&fred, Rights::RESERVE));
    }

    #[test]
    fn reserved_derivation_matches_paper() {
        // mkdir(/work) by Fred under v(rwlax) yields
        // "/work: globus:/O=UnivNowhere/CN=Fred rwlax"
        let fred = id("globus:/O=UnivNowhere/CN=Fred");
        let acl = Acl::reserved(&fred, Rights::RWLAX);
        assert!(acl.allows(&fred, Rights::RWLAX));
        assert!(!acl.entries()[0].subject.is_wildcard());
        let other = id("globus:/O=UnivNowhere/CN=George");
        assert_eq!(acl.rights_for(&other), Rights::NONE);
    }

    #[test]
    fn rights_union_across_entries() {
        let acl = Acl::parse("fred r\nfre? w\nf* l\n").unwrap();
        assert_eq!(
            acl.rights_for(&id("fred")),
            Rights::READ | Rights::WRITE | Rights::LIST
        );
    }

    #[test]
    fn set_replaces_existing_subject() {
        let mut acl = Acl::owner(&id("fred"));
        assert_eq!(acl.len(), 1);
        acl.set("fred", Rights::READ);
        assert_eq!(acl.len(), 1);
        assert_eq!(acl.rights_for(&id("fred")), Rights::READ);
    }

    #[test]
    fn remove_entry() {
        let mut acl = Acl::parse("fred rl\ngeorge rw\n").unwrap();
        assert!(acl.remove("fred"));
        assert!(!acl.remove("fred"));
        assert_eq!(acl.rights_for(&id("fred")), Rights::NONE);
        assert_eq!(acl.len(), 1);
    }

    #[test]
    fn parse_ignores_comments_and_blanks() {
        let acl = Acl::parse("# a comment\n\nfred rl\n   \n# more\n").unwrap();
        assert_eq!(acl.len(), 1);
    }

    #[test]
    fn text_roundtrip() {
        let acl = Acl::parse(
            "hostname:*.nowhere.edu rlx\n\
             globus:/O=UnivNowhere/* v(rwlax)\n\
             unix:dthain rwldax\n",
        )
        .unwrap();
        let reparsed = Acl::parse(&acl.to_text()).unwrap();
        assert_eq!(acl, reparsed);
    }

    #[test]
    fn empty_acl_denies_everything() {
        let acl = Acl::empty();
        assert!(!acl.allows(&id("anyone"), Rights::READ));
        assert_eq!(acl.reserve_grant_for(&id("anyone")), None);
    }

    #[test]
    fn multiple_reserve_entries_union_grants() {
        let acl = Acl::parse("f* v(r)\n*d v(wl)\n").unwrap();
        assert_eq!(
            acl.reserve_grant_for(&id("fred")),
            Some(Rights::READ | Rights::WRITE | Rights::LIST)
        );
        assert_eq!(acl.reserve_grant_for(&id("frank")), Some(Rights::READ));
    }
}
