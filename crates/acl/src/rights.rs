//! The rights lattice.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign, Sub};

/// A set of rights over a directory and the files within it.
///
/// Represented as a small bitset; the letters follow the paper (and the
/// Chirp storage system it extends):
///
/// | letter | right | meaning |
/// |---|---|---|
/// | `r` | [`Rights::READ`] | read files |
/// | `w` | [`Rights::WRITE`] | create and write files |
/// | `l` | [`Rights::LIST`] | list the directory |
/// | `d` | [`Rights::DELETE`] | remove files and directories |
/// | `a` | [`Rights::ADMIN`] | modify the ACL itself |
/// | `x` | [`Rights::EXECUTE`] | execute programs |
/// | `v` | [`Rights::RESERVE`] | reserve a fresh sub-namespace via `mkdir` |
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Rights(u8);

impl Rights {
    /// The empty set of rights.
    pub const NONE: Rights = Rights(0);
    /// Permission to read files in the directory.
    pub const READ: Rights = Rights(1 << 0);
    /// Permission to create and write files in the directory.
    pub const WRITE: Rights = Rights(1 << 1);
    /// Permission to list the directory.
    pub const LIST: Rights = Rights(1 << 2);
    /// Permission to delete entries from the directory.
    pub const DELETE: Rights = Rights(1 << 3);
    /// Permission to modify the directory's ACL.
    pub const ADMIN: Rights = Rights(1 << 4);
    /// Permission to execute programs found in the directory.
    pub const EXECUTE: Rights = Rights(1 << 5);
    /// The reserve right: permission to `mkdir` a fresh, privately-owned
    /// sub-namespace (the granted rights ride alongside in the
    /// [`AclEntry`](crate::AclEntry)).
    pub const RESERVE: Rights = Rights(1 << 6);

    /// Every right except reserve: `rwldax`.
    pub const FULL: Rights = Rights(
        Rights::READ.0
            | Rights::WRITE.0
            | Rights::LIST.0
            | Rights::DELETE.0
            | Rights::ADMIN.0
            | Rights::EXECUTE.0,
    );

    /// The rights the paper writes as `rwlax` (full control, spelled
    /// without `d`; deletion is folded into `w` in the paper's examples,
    /// but we keep `d` distinct and include it in [`Rights::FULL`]).
    pub const RWLAX: Rights = Rights(
        Rights::READ.0
            | Rights::WRITE.0
            | Rights::LIST.0
            | Rights::ADMIN.0
            | Rights::EXECUTE.0,
    );

    /// Parse a rights token such as `rwlax` or `rl`. Rejects unknown
    /// letters and the `v(...)` form (which is handled at the entry level,
    /// because the grant set rides with it).
    pub fn parse_letters(s: &str) -> Result<Rights, char> {
        let mut r = Rights::NONE;
        for c in s.chars() {
            r |= match c {
                'r' => Rights::READ,
                'w' => Rights::WRITE,
                'l' => Rights::LIST,
                'd' => Rights::DELETE,
                'a' => Rights::ADMIN,
                'x' => Rights::EXECUTE,
                'v' => Rights::RESERVE,
                other => return Err(other),
            };
        }
        Ok(r)
    }

    /// True when every right in `needed` is present.
    #[inline]
    pub fn contains(self, needed: Rights) -> bool {
        self.0 & needed.0 == needed.0
    }

    /// True when no rights are present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Letters in canonical `rwldaxv` order.
    pub fn letters(self) -> String {
        let mut s = String::new();
        for (flag, c) in Rights::LETTER_TABLE {
            if self.contains(flag) {
                s.push(c);
            }
        }
        s
    }

    const LETTER_TABLE: [(Rights, char); 7] = [
        (Rights::READ, 'r'),
        (Rights::WRITE, 'w'),
        (Rights::LIST, 'l'),
        (Rights::DELETE, 'd'),
        (Rights::ADMIN, 'a'),
        (Rights::EXECUTE, 'x'),
        (Rights::RESERVE, 'v'),
    ];
}

impl BitOr for Rights {
    type Output = Rights;
    fn bitor(self, rhs: Rights) -> Rights {
        Rights(self.0 | rhs.0)
    }
}

impl BitOrAssign for Rights {
    fn bitor_assign(&mut self, rhs: Rights) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for Rights {
    type Output = Rights;
    fn bitand(self, rhs: Rights) -> Rights {
        Rights(self.0 & rhs.0)
    }
}

impl Sub for Rights {
    type Output = Rights;
    fn sub(self, rhs: Rights) -> Rights {
        Rights(self.0 & !rhs.0)
    }
}

impl fmt::Display for Rights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            f.write_str("-")
        } else {
            f.write_str(&self.letters())
        }
    }
}

impl fmt::Debug for Rights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rights({})", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_roundtrip() {
        for s in ["r", "rl", "rwlax", "rwldax", "rwldaxv", "x", "v"] {
            let r = Rights::parse_letters(s).unwrap();
            // letters() prints canonical order; reparse must be equal.
            assert_eq!(Rights::parse_letters(&r.letters()).unwrap(), r);
        }
    }

    #[test]
    fn paper_rwlax() {
        let r = Rights::parse_letters("rwlax").unwrap();
        assert_eq!(r, Rights::RWLAX);
        assert!(r.contains(Rights::READ));
        assert!(r.contains(Rights::ADMIN));
        assert!(!r.contains(Rights::DELETE));
    }

    #[test]
    fn unknown_letter_rejected() {
        assert_eq!(Rights::parse_letters("rz"), Err('z'));
        assert_eq!(Rights::parse_letters("R"), Err('R'));
    }

    #[test]
    fn contains_is_superset() {
        let r = Rights::READ | Rights::WRITE;
        assert!(r.contains(Rights::READ));
        assert!(r.contains(Rights::NONE));
        assert!(!r.contains(Rights::READ | Rights::EXECUTE));
    }

    #[test]
    fn union_and_difference() {
        let a = Rights::READ | Rights::LIST;
        let b = Rights::LIST | Rights::WRITE;
        assert_eq!((a | b).letters(), "rwl");
        assert_eq!((a - b).letters(), "r");
        assert_eq!((a & b).letters(), "l");
    }

    #[test]
    fn display_empty_is_dash() {
        assert_eq!(Rights::NONE.to_string(), "-");
    }

    #[test]
    fn full_has_everything_but_reserve() {
        assert!(Rights::FULL.contains(Rights::DELETE));
        assert!(!Rights::FULL.contains(Rights::RESERVE));
    }
}
