//! Subject patterns with wildcards.

use idbox_types::Identity;
use std::fmt;

/// A subject in an ACL entry: either a literal identity or a wildcard
/// pattern over identities.
///
/// Identity boxing encourages wildcards in access controls (paper,
/// Section 4): `globus:/O=UnivNowhere/*` admits every holder of a
/// UnivNowhere certificate, `hostname:*.nowhere.edu` admits every host in
/// a domain. Patterns support `*` (any run of characters, including the
/// empty run and `/`) and `?` (exactly one character).
///
/// ```
/// use idbox_acl::SubjectPattern;
/// use idbox_types::Identity;
///
/// let p = SubjectPattern::new("hostname:*.nowhere.edu");
/// assert!(p.matches(&Identity::new("hostname:laptop.cs.nowhere.edu")));
/// assert!(!p.matches(&Identity::new("hostname:laptop.elsewhere.org")));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SubjectPattern(String);

impl SubjectPattern {
    /// Build a pattern from its textual form.
    pub fn new(pattern: impl Into<String>) -> Self {
        SubjectPattern(pattern.into())
    }

    /// A pattern matching exactly one identity (no metacharacters are
    /// interpreted even if present — they are escaped by construction
    /// being impossible here, so we simply compare literally when the
    /// pattern came from [`SubjectPattern::literal`]).
    pub fn literal(identity: &Identity) -> Self {
        SubjectPattern(identity.as_str().to_string())
    }

    /// The textual form of the pattern.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// True when the pattern contains wildcard metacharacters.
    pub fn is_wildcard(&self) -> bool {
        self.0.contains('*') || self.0.contains('?')
    }

    /// Match an identity against this pattern.
    ///
    /// Iterative glob matching with backtracking over the last `*`;
    /// linear in practice, worst-case `O(n*m)`, never recursive.
    pub fn matches(&self, identity: &Identity) -> bool {
        glob_match(self.0.as_bytes(), identity.as_str().as_bytes())
    }
}

/// Classic iterative glob match: `*` matches any run, `?` one byte.
fn glob_match(pattern: &[u8], text: &[u8]) -> bool {
    let (mut p, mut t) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while t < text.len() {
        if p < pattern.len() && (pattern[p] == b'?' || pattern[p] == text[t]) {
            p += 1;
            t += 1;
        } else if p < pattern.len() && pattern[p] == b'*' {
            star = Some((p, t));
            p += 1;
        } else if let Some((sp, st)) = star {
            p = sp + 1;
            t = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while p < pattern.len() && pattern[p] == b'*' {
        p += 1;
    }
    p == pattern.len()
}

impl fmt::Display for SubjectPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for SubjectPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SubjectPattern({})", self.0)
    }
}

impl From<&str> for SubjectPattern {
    fn from(s: &str) -> Self {
        SubjectPattern::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, id: &str) -> bool {
        SubjectPattern::new(pat).matches(&Identity::new(id))
    }

    #[test]
    fn literal_match() {
        assert!(m("/O=UnivNowhere/CN=Fred", "/O=UnivNowhere/CN=Fred"));
        assert!(!m("/O=UnivNowhere/CN=Fred", "/O=UnivNowhere/CN=George"));
    }

    #[test]
    fn paper_org_wildcard() {
        assert!(m("/O=UnivNowhere/*", "/O=UnivNowhere/CN=Fred"));
        assert!(m("/O=UnivNowhere/*", "/O=UnivNowhere/OU=CS/CN=Deep"));
        assert!(!m("/O=UnivNowhere/*", "/O=NotreDame/CN=dthain"));
    }

    #[test]
    fn paper_hostname_wildcard() {
        assert!(m("hostname:*.nowhere.edu", "hostname:laptop.cs.nowhere.edu"));
        assert!(m("hostname:*.nowhere.edu", "hostname:a.nowhere.edu"));
        assert!(!m("hostname:*.nowhere.edu", "hostname:nowhere.edu"));
        assert!(!m("hostname:*.nowhere.edu", "hostname:laptop.nowhere.com"));
    }

    #[test]
    fn star_matches_empty() {
        assert!(m("fred*", "fred"));
        assert!(m("*", ""));
        assert!(m("*", "anything at all"));
    }

    #[test]
    fn question_matches_exactly_one() {
        assert!(m("grid?", "grid9"));
        assert!(!m("grid?", "grid"));
        assert!(!m("grid?", "grid42"));
    }

    #[test]
    fn multiple_stars_backtrack() {
        assert!(m("*CN=*ed*", "globus:/O=UnivNowhere/CN=Fred"));
        assert!(m("a*b*c", "aXXbYYc"));
        assert!(!m("a*b*c", "aXXcYYb"));
    }

    #[test]
    fn trailing_stars_collapse() {
        assert!(m("fred**", "fred"));
        assert!(m("**", ""));
    }

    #[test]
    fn wildcard_detection() {
        assert!(SubjectPattern::new("/O=X/*").is_wildcard());
        assert!(SubjectPattern::new("grid?").is_wildcard());
        assert!(!SubjectPattern::new("unix:dthain").is_wildcard());
    }

    #[test]
    fn literal_constructor_equals_identity() {
        let id = Identity::new("kerberos:fred@nowhere.edu");
        let p = SubjectPattern::literal(&id);
        assert!(p.matches(&id));
        assert_eq!(p.as_str(), id.as_str());
    }
}
