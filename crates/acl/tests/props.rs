//! Property-based tests for the ACL crate: parse/print round trips,
//! rights-lattice laws, and glob matching against a reference
//! implementation.

use idbox_acl::{Acl, AclEntry, Rights, SubjectPattern};
use idbox_types::Identity;
use proptest::prelude::*;

/// A strategy producing arbitrary rights sets.
fn rights() -> impl Strategy<Value = Rights> {
    proptest::bits::u8::ANY.prop_map(|bits| {
        let mut r = Rights::NONE;
        let table = [
            Rights::READ,
            Rights::WRITE,
            Rights::LIST,
            Rights::DELETE,
            Rights::ADMIN,
            Rights::EXECUTE,
            Rights::RESERVE,
        ];
        for (i, flag) in table.iter().enumerate() {
            if bits & (1 << i) != 0 {
                r |= *flag;
            }
        }
        r
    })
}

/// Subjects without whitespace-only content; may contain wildcards.
fn subject() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9/=:@.*?_-]{1,40}").unwrap()
}

/// Identity strings drawn from the same alphabet minus metacharacters.
fn identity_str() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9/=:@._-]{0,40}").unwrap()
}

/// Reference glob matcher: recursive, obviously correct.
fn ref_glob(pattern: &[u8], text: &[u8]) -> bool {
    match pattern.split_first() {
        None => text.is_empty(),
        Some((b'*', rest)) => {
            (0..=text.len()).any(|i| ref_glob(rest, &text[i..]))
        }
        Some((b'?', rest)) => {
            !text.is_empty() && ref_glob(rest, &text[1..])
        }
        Some((&c, rest)) => {
            text.first() == Some(&c) && ref_glob(rest, &text[1..])
        }
    }
}

proptest! {
    #[test]
    fn rights_letters_roundtrip(r in rights()) {
        let printed = r.letters();
        let reparsed = Rights::parse_letters(&printed).unwrap();
        prop_assert_eq!(reparsed, r);
    }

    #[test]
    fn rights_union_is_commutative_and_idempotent(a in rights(), b in rights()) {
        prop_assert_eq!(a | b, b | a);
        prop_assert_eq!(a | a, a);
        prop_assert!((a | b).contains(a));
        prop_assert!((a | b).contains(b));
    }

    #[test]
    fn rights_difference_laws(a in rights(), b in rights()) {
        prop_assert_eq!((a - b) & b, Rights::NONE);
        prop_assert_eq!((a - b) | (a & b), a);
    }

    #[test]
    fn glob_matches_reference(pat in subject(), text in identity_str()) {
        let fast = SubjectPattern::new(pat.clone()).matches(&Identity::new(text.clone()));
        let slow = ref_glob(pat.as_bytes(), text.as_bytes());
        prop_assert_eq!(fast, slow, "pattern={:?} text={:?}", pat, text);
    }

    #[test]
    fn literal_pattern_always_matches_itself(text in identity_str()) {
        // Only when the text has no metacharacters is it a literal.
        prop_assume!(!text.contains('*') && !text.contains('?'));
        let id = Identity::new(text);
        prop_assert!(SubjectPattern::literal(&id).matches(&id));
    }

    #[test]
    fn entry_roundtrip(sub in subject(), r in rights(), g in rights()) {
        let entry = if r.contains(Rights::RESERVE) {
            AclEntry::with_reserve(sub.as_str(), r, g)
        } else {
            AclEntry::new(sub.as_str(), r)
        };
        let printed = entry.to_string();
        let reparsed = AclEntry::parse(&printed).unwrap();
        prop_assert_eq!(reparsed, entry, "printed={:?}", printed);
    }

    #[test]
    fn acl_text_roundtrip(
        subs in proptest::collection::vec((subject(), rights(), rights()), 0..8)
    ) {
        let acl = Acl::from_entries(subs.into_iter().map(|(s, r, g)| {
            if r.contains(Rights::RESERVE) {
                AclEntry::with_reserve(s.as_str(), r, g)
            } else {
                AclEntry::new(s.as_str(), r)
            }
        }));
        let reparsed = Acl::parse(&acl.to_text()).unwrap();
        prop_assert_eq!(reparsed, acl);
    }

    #[test]
    fn rights_for_is_monotone_in_entries(
        subs in proptest::collection::vec((subject(), rights()), 1..6),
        who in identity_str(),
    ) {
        // Adding entries can only add rights, never remove them.
        let id = Identity::new(who);
        let mut acl = Acl::empty();
        let mut prev = Rights::NONE;
        for (s, r) in subs {
            // Use push-like set with unique synthetic subjects to avoid
            // replacement semantics interfering with monotonicity.
            let unique = format!("{}#{}", s, acl.len());
            acl.set(unique.as_str(), r);
            let now = acl.rights_for(&id);
            prop_assert!(now.contains(prev));
            prev = now;
        }
    }

    #[test]
    fn owner_acl_grants_full_to_owner_only(
        owner in identity_str(), other in identity_str()
    ) {
        prop_assume!(owner != other);
        let o = Identity::new(owner);
        let acl = Acl::owner(&o);
        prop_assert!(acl.allows(&o, Rights::FULL));
        prop_assert_eq!(acl.rights_for(&Identity::new(other)), Rights::NONE);
    }
}
