//! Simulated GSI: certificate authorities and certificates.

use crate::keyed_digest;
use std::collections::BTreeMap;

/// A certificate: a subject name vouched for by an issuer.
///
/// Subjects use GSI-style distinguished names like
/// `/O=UnivNowhere/CN=Fred`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The certified subject.
    pub subject: String,
    /// The issuing authority's name.
    pub issuer: String,
    /// The keyed digest standing in for a signature.
    pub signature: u64,
}

impl Certificate {
    /// Wire form: `subject|issuer|signature` (subjects never contain
    /// `|`).
    pub fn to_wire(&self) -> String {
        format!("{}|{}|{:016x}", self.subject, self.issuer, self.signature)
    }

    /// Parse the wire form.
    pub fn from_wire(s: &str) -> Option<Certificate> {
        let mut f = s.rsplitn(3, '|');
        let signature = u64::from_str_radix(f.next()?, 16).ok()?;
        let issuer = f.next()?.to_string();
        let subject = f.next()?.to_string();
        Some(Certificate {
            subject,
            issuer,
            signature,
        })
    }
}

/// A certificate authority holding a signing key.
#[derive(Debug, Clone)]
pub struct CertificateAuthority {
    name: String,
    key: u64,
}

impl CertificateAuthority {
    /// Create an authority with a secret key.
    pub fn new(name: impl Into<String>, key: u64) -> Self {
        CertificateAuthority {
            name: name.into(),
            key,
        }
    }

    /// The authority's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Issue a certificate for `subject`.
    pub fn issue(&self, subject: impl Into<String>) -> Certificate {
        let subject = subject.into();
        let signature = keyed_digest(self.key, &[&subject, &self.name]);
        Certificate {
            subject,
            issuer: self.name.clone(),
            signature,
        }
    }

    /// Verify that a certificate was issued by this authority.
    pub fn verify(&self, cert: &Certificate) -> bool {
        cert.issuer == self.name
            && cert.signature == keyed_digest(self.key, &[&cert.subject, &self.name])
    }
}

/// The set of authorities a server trusts.
#[derive(Debug, Clone, Default)]
pub struct CaStore {
    authorities: BTreeMap<String, CertificateAuthority>,
}

impl CaStore {
    /// An empty store (trusts nobody).
    pub fn new() -> Self {
        CaStore::default()
    }

    /// Trust an authority.
    pub fn trust(&mut self, ca: CertificateAuthority) {
        self.authorities.insert(ca.name().to_string(), ca);
    }

    /// Verify a certificate against the trusted authorities.
    pub fn verify(&self, cert: &Certificate) -> bool {
        self.authorities
            .get(&cert.issuer)
            .map(|ca| ca.verify(cert))
            .unwrap_or(false)
    }

    /// Number of trusted authorities.
    pub fn len(&self) -> usize {
        self.authorities.len()
    }

    /// True when no authority is trusted.
    pub fn is_empty(&self) -> bool {
        self.authorities.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ca() -> CertificateAuthority {
        CertificateAuthority::new("/O=UnivNowhere CA", 0x5EC2E7)
    }

    #[test]
    fn issue_and_verify() {
        let ca = ca();
        let cert = ca.issue("/O=UnivNowhere/CN=Fred");
        assert!(ca.verify(&cert));
    }

    #[test]
    fn tampered_subject_fails() {
        let ca = ca();
        let mut cert = ca.issue("/O=UnivNowhere/CN=Fred");
        cert.subject = "/O=UnivNowhere/CN=Root".to_string();
        assert!(!ca.verify(&cert));
    }

    #[test]
    fn wrong_ca_fails() {
        let cert = ca().issue("/O=UnivNowhere/CN=Fred");
        let other = CertificateAuthority::new("/O=UnivNowhere CA", 0xBAD);
        assert!(!other.verify(&cert));
        let renamed = CertificateAuthority::new("/O=Elsewhere CA", 0x5EC2E7);
        assert!(!renamed.verify(&cert));
    }

    #[test]
    fn store_verifies_against_trusted_set() {
        let trusted = ca();
        let untrusted = CertificateAuthority::new("/O=Shady CA", 7);
        let mut store = CaStore::new();
        store.trust(trusted.clone());
        assert!(store.verify(&trusted.issue("/O=UnivNowhere/CN=Fred")));
        assert!(!store.verify(&untrusted.issue("/O=UnivNowhere/CN=Fred")));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn wire_roundtrip() {
        let cert = ca().issue("/O=UnivNowhere/CN=Fred");
        let wire = cert.to_wire();
        assert_eq!(Certificate::from_wire(&wire).unwrap(), cert);
        assert!(Certificate::from_wire("garbage").is_none());
    }
}
