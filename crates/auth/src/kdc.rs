//! Simulated Kerberos: a key distribution center and tickets.

use crate::keyed_digest;
use std::collections::BTreeMap;

/// A service ticket: a principal name plus an expiry, MACed under the
/// KDC's key for that principal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ticket {
    /// `user@REALM` principal name.
    pub principal: String,
    /// Logical expiry time (compared against the verifier's clock).
    pub expires: u64,
    /// The MAC.
    pub mac: u64,
}

impl Ticket {
    /// Wire form: `principal|expires|mac`.
    pub fn to_wire(&self) -> String {
        format!("{}|{}|{:016x}", self.principal, self.expires, self.mac)
    }

    /// Parse the wire form.
    pub fn from_wire(s: &str) -> Option<Ticket> {
        let mut f = s.rsplitn(3, '|');
        let mac = u64::from_str_radix(f.next()?, 16).ok()?;
        let expires = f.next()?.parse().ok()?;
        let principal = f.next()?.to_string();
        Some(Ticket {
            principal,
            expires,
            mac,
        })
    }
}

/// The key distribution center for one realm.
#[derive(Debug, Clone)]
pub struct Kdc {
    realm: String,
    keys: BTreeMap<String, u64>,
    clock: u64,
    next_key: u64,
}

impl Kdc {
    /// A KDC for `realm` (e.g. `NOWHERE.EDU`).
    pub fn new(realm: impl Into<String>) -> Self {
        Kdc {
            realm: realm.into(),
            keys: BTreeMap::new(),
            clock: 0,
            next_key: 0x0123_4567_89AB_CDEF,
        }
    }

    /// The realm name.
    pub fn realm(&self) -> &str {
        &self.realm
    }

    /// Register a user; returns their full principal name.
    pub fn register(&mut self, user: &str) -> String {
        let principal = format!("{}@{}", user, self.realm.to_lowercase());
        self.next_key = self.next_key.rotate_left(13).wrapping_add(0x9E37_79B9);
        self.keys.entry(principal.clone()).or_insert(self.next_key);
        principal
    }

    /// Advance the logical clock (tickets age).
    pub fn tick(&mut self, amount: u64) {
        self.clock += amount;
    }

    /// The current logical time.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Grant a ticket valid for `lifetime` logical units. `None` for
    /// unknown users.
    pub fn grant(&self, user: &str, lifetime: u64) -> Option<Ticket> {
        let principal = format!("{}@{}", user, self.realm.to_lowercase());
        let key = *self.keys.get(&principal)?;
        let expires = self.clock + lifetime;
        let mac = keyed_digest(key, &[&principal, &expires.to_string()]);
        Some(Ticket {
            principal,
            expires,
            mac,
        })
    }

    /// Verify a ticket: known principal, valid MAC, not expired.
    pub fn verify(&self, ticket: &Ticket) -> bool {
        let Some(&key) = self.keys.get(&ticket.principal) else {
            return false;
        };
        let expect = keyed_digest(key, &[&ticket.principal, &ticket.expires.to_string()]);
        expect == ticket.mac && ticket.expires > self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kdc() -> Kdc {
        let mut k = Kdc::new("NOWHERE.EDU");
        k.register("fred");
        k
    }

    #[test]
    fn grant_and_verify() {
        let k = kdc();
        let t = k.grant("fred", 100).unwrap();
        assert_eq!(t.principal, "fred@nowhere.edu");
        assert!(k.verify(&t));
    }

    #[test]
    fn unknown_user_gets_nothing() {
        assert!(kdc().grant("mallory", 100).is_none());
    }

    #[test]
    fn tampered_ticket_fails() {
        let k = kdc();
        let mut t = k.grant("fred", 100).unwrap();
        t.expires += 1_000_000;
        assert!(!k.verify(&t));
    }

    #[test]
    fn expired_ticket_fails() {
        let mut k = kdc();
        let t = k.grant("fred", 10).unwrap();
        assert!(k.verify(&t));
        k.tick(11);
        assert!(!k.verify(&t));
    }

    #[test]
    fn wire_roundtrip() {
        let t = kdc().grant("fred", 5).unwrap();
        assert_eq!(Ticket::from_wire(&t.to_wire()).unwrap(), t);
        assert!(Ticket::from_wire("nope").is_none());
    }

    #[test]
    fn distinct_users_distinct_keys() {
        let mut k = Kdc::new("X");
        k.register("a");
        k.register("b");
        let ta = k.grant("a", 10).unwrap();
        let tb = k.grant("b", 10).unwrap();
        assert_ne!(ta.mac, tb.mac);
    }
}
