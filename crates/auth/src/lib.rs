//! Simulated grid authentication.
//!
//! A Chirp server supports a variety of authentication methods — Globus
//! GSI, Kerberos, ordinary Unix names, and a simple hostname scheme. Upon
//! connecting, the client and server negotiate an acceptable method, the
//! client proves its identity, and the server thereafter knows the client
//! by a principal name constructed from the method and the proven
//! identity (paper, Section 4).
//!
//! **Substitution note (see DESIGN.md):** the cryptography is simulated —
//! certificates are "signed" with a keyed 64-bit digest rather than RSA,
//! and Kerberos tickets carry a MAC under a registered key. Identity
//! boxing consumes only the *proven principal name*, so the strength of
//! the primitives is irrelevant to every claim reproduced here; what is
//! faithful is the negotiation state machine, the method set, and the
//! `method:name` principal construction.

mod ca;
mod kdc;
mod negotiate;
mod transport;

pub use ca::{CaStore, Certificate, CertificateAuthority};
pub use kdc::{Kdc, Ticket};
pub use negotiate::{
    authenticate_client, authenticate_server, AuthError, AuthOutcome, ClientCredential,
    ServerAuthMachine, ServerVerifier,
};
pub use transport::{duplex_pair, AuthTransport, ChannelTransport};

/// A keyed 64-bit digest: iterated FNV-1a over the key and message.
/// Stands in for a real MAC/signature (simulation only — documented in
/// DESIGN.md).
pub fn keyed_digest(key: u64, parts: &[&str]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ key.rotate_left(17);
    let mut absorb = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // Domain-separate the parts so ("ab","c") != ("a","bc").
        h ^= 0xff;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for p in parts {
        absorb(p.as_bytes());
    }
    h ^= key;
    h = h.wrapping_mul(0x100_0000_01b3);
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic() {
        assert_eq!(
            keyed_digest(42, &["a", "b"]),
            keyed_digest(42, &["a", "b"])
        );
    }

    #[test]
    fn digest_separates_keys_and_parts() {
        assert_ne!(keyed_digest(1, &["x"]), keyed_digest(2, &["x"]));
        assert_ne!(keyed_digest(1, &["ab", "c"]), keyed_digest(1, &["a", "bc"]));
        assert_ne!(keyed_digest(1, &["x"]), keyed_digest(1, &["x", ""]));
    }
}
