//! Method negotiation and identity proof.
//!
//! Upon connecting, the client and server negotiate an acceptable
//! authentication method and the client proves its identity; the server
//! then knows the client by a principal name such as
//! `globus:/O=UnivNowhere/CN=Fred` (paper, Section 4). The client walks
//! its credentials in preference order; the server accepts or rejects
//! each method, and a failed proof falls through to the next credential.

use crate::ca::{CaStore, Certificate};
use crate::kdc::{Kdc, Ticket};
use crate::keyed_digest;
use crate::transport::AuthTransport;
use idbox_types::{AuthMethod, Principal};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A process-unique challenge nonce: wall-clock entropy mixed with a
/// monotonic counter, whitened through splitmix64. Unpredictable enough
/// for the simulated challenge/response; never repeats within a process.
fn fresh_nonce() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut z = t
        .wrapping_add(COUNTER.fetch_add(1, Ordering::Relaxed).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Authentication failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// Every offered method was rejected or failed.
    Refused,
    /// The peer spoke something unexpected.
    Protocol(String),
    /// The transport failed.
    Io(String),
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::Refused => write!(f, "authentication refused"),
            AuthError::Protocol(m) => write!(f, "protocol error: {m}"),
            AuthError::Io(m) => write!(f, "transport error: {m}"),
        }
    }
}

impl std::error::Error for AuthError {}

/// One credential the client may offer.
#[derive(Debug, Clone)]
pub enum ClientCredential {
    /// A GSI-style certificate.
    Globus(Certificate),
    /// A Kerberos ticket.
    Kerberos(Ticket),
    /// A claimed hostname (the server checks it against its own reverse
    /// lookup of the peer).
    Hostname(String),
    /// A Unix account name plus the per-account secret obtained through
    /// the local filesystem challenge.
    Unix {
        /// Claimed account name.
        name: String,
        /// Secret proving local access to that account.
        secret: u64,
    },
}

impl ClientCredential {
    /// The method this credential drives.
    pub fn method(&self) -> AuthMethod {
        match self {
            ClientCredential::Globus(_) => AuthMethod::Globus,
            ClientCredential::Kerberos(_) => AuthMethod::Kerberos,
            ClientCredential::Hostname(_) => AuthMethod::Hostname,
            ClientCredential::Unix { .. } => AuthMethod::Unix,
        }
    }
}

/// The server's verification state.
#[derive(Debug, Clone, Default)]
pub struct ServerVerifier {
    /// Methods the server will entertain, in any order.
    pub accept: Vec<AuthMethod>,
    /// Trusted certificate authorities (globus method).
    pub cas: CaStore,
    /// The Kerberos realm service view (kerberos method).
    pub kdc: Option<Kdc>,
    /// The hostname this server resolved for the connecting peer.
    pub peer_hostname: Option<String>,
    /// Per-account secrets for the unix filesystem challenge.
    pub unix_secrets: BTreeMap<String, u64>,
}

impl ServerVerifier {
    /// A verifier accepting nothing (build it up field by field).
    pub fn new() -> Self {
        ServerVerifier::default()
    }
}

fn io<T>(r: Result<T, String>) -> Result<T, AuthError> {
    r.map_err(AuthError::Io)
}

/// Run the client side of the negotiation, offering `creds` in order.
pub fn authenticate_client(
    t: &mut dyn AuthTransport,
    creds: &[ClientCredential],
) -> Result<Principal, AuthError> {
    for cred in creds {
        io(t.send_line(&format!("method {}", cred.method().wire_name())))?;
        let resp = io(t.recv_line())?;
        match resp.as_str() {
            "ok" => {}
            "no" => continue,
            other => return Err(AuthError::Protocol(other.to_string())),
        }
        match cred {
            ClientCredential::Globus(cert) => {
                io(t.send_line(&format!("cert {}", cert.to_wire())))?;
            }
            ClientCredential::Kerberos(ticket) => {
                io(t.send_line(&format!("ticket {}", ticket.to_wire())))?;
            }
            ClientCredential::Hostname(host) => {
                io(t.send_line(&format!("host {host}")))?;
            }
            ClientCredential::Unix { name, secret } => {
                io(t.send_line(&format!("unix {name}")))?;
                let challenge = io(t.recv_line())?;
                let nonce = challenge
                    .strip_prefix("nonce ")
                    .ok_or_else(|| AuthError::Protocol(challenge.clone()))?;
                let response = keyed_digest(*secret, &[nonce]);
                io(t.send_line(&format!("response {response:016x}")))?;
            }
        }
        let verdict = io(t.recv_line())?;
        if let Some(principal) = verdict.strip_prefix("welcome ") {
            return Principal::parse(principal)
                .map_err(|e| AuthError::Protocol(e.to_string()));
        }
        if verdict != "fail" {
            return Err(AuthError::Protocol(verdict));
        }
    }
    io(t.send_line("giveup"))?;
    Err(AuthError::Refused)
}

/// What a [`ServerAuthMachine::step`] concluded about the negotiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthOutcome {
    /// More client lines are needed.
    Continue,
    /// The client proved this principal; the `welcome` reply has been
    /// queued and the negotiation is over.
    Authenticated(Principal),
    /// The client gave up; no further lines will be exchanged.
    Refused,
}

/// Where the server-side negotiation currently stands.
#[derive(Debug)]
enum AuthState {
    /// Expecting `method <name>` or `giveup`.
    AwaitMethod,
    /// Method accepted; expecting the proof line for it.
    AwaitProof(AuthMethod),
    /// Unix challenge issued; expecting `response <hex>`.
    AwaitUnixResponse {
        name: String,
        nonce: String,
    },
    /// Terminal: authenticated, refused, or protocol error.
    Done,
}

/// The server side of the negotiation as an incremental state machine:
/// feed it one received line at a time and it queues the reply lines to
/// send. This is the single source of truth for the server protocol —
/// the blocking [`authenticate_server`] drives it over an
/// [`AuthTransport`], and nonblocking event-loop servers drive it
/// directly from their read buffers.
#[derive(Debug)]
pub struct ServerAuthMachine {
    v: ServerVerifier,
    state: AuthState,
}

impl ServerAuthMachine {
    /// Start a negotiation for one connection. The machine owns its
    /// verifier so per-connection state (e.g. `peer_hostname`) travels
    /// with it.
    pub fn new(v: ServerVerifier) -> Self {
        ServerAuthMachine {
            v,
            state: AuthState::AwaitMethod,
        }
    }

    /// Advance the machine with one client line. Reply lines to send —
    /// zero or more, in order — are appended to `replies` before the
    /// outcome (or error) is reported, mirroring the wire order of the
    /// blocking implementation. After anything other than
    /// `Ok(AuthOutcome::Continue)`, the machine is finished and must not
    /// be stepped again.
    pub fn step(
        &mut self,
        line: &str,
        replies: &mut Vec<String>,
    ) -> Result<AuthOutcome, AuthError> {
        let state = std::mem::replace(&mut self.state, AuthState::Done);
        match state {
            AuthState::AwaitMethod => {
                if line == "giveup" {
                    return Ok(AuthOutcome::Refused);
                }
                let Some(method_name) = line.strip_prefix("method ") else {
                    return Err(AuthError::Protocol(line.to_string()));
                };
                match method_name.parse::<AuthMethod>() {
                    Ok(method) if self.v.accept.contains(&method) => {
                        replies.push("ok".to_string());
                        self.state = AuthState::AwaitProof(method);
                    }
                    _ => {
                        replies.push("no".to_string());
                        self.state = AuthState::AwaitMethod;
                    }
                }
                Ok(AuthOutcome::Continue)
            }
            AuthState::AwaitProof(method) => {
                let proven: Option<String> = match method {
                    AuthMethod::Globus => line
                        .strip_prefix("cert ")
                        .and_then(Certificate::from_wire)
                        .filter(|c| self.v.cas.verify(c))
                        .map(|c| c.subject),
                    AuthMethod::Kerberos => line
                        .strip_prefix("ticket ")
                        .and_then(Ticket::from_wire)
                        .filter(|tk| self.v.kdc.as_ref().is_some_and(|k| k.verify(tk)))
                        .map(|tk| tk.principal),
                    AuthMethod::Hostname => line
                        .strip_prefix("host ")
                        .filter(|claimed| self.v.peer_hostname.as_deref() == Some(*claimed))
                        .map(str::to_string),
                    AuthMethod::Unix => {
                        let Some(name) = line.strip_prefix("unix ") else {
                            return Err(AuthError::Protocol(line.to_string()));
                        };
                        let nonce = format!("{:016x}", fresh_nonce());
                        replies.push(format!("nonce {nonce}"));
                        self.state = AuthState::AwaitUnixResponse {
                            name: name.to_string(),
                            nonce,
                        };
                        return Ok(AuthOutcome::Continue);
                    }
                };
                self.conclude(method, proven, replies)
            }
            AuthState::AwaitUnixResponse { name, nonce } => {
                let answered = line
                    .strip_prefix("response ")
                    .and_then(|h| u64::from_str_radix(h, 16).ok());
                let proven = match (self.v.unix_secrets.get(&name), answered) {
                    (Some(&secret), Some(answer))
                        if answer == keyed_digest(secret, &[nonce.as_str()]) =>
                    {
                        Some(name)
                    }
                    _ => None,
                };
                self.conclude(AuthMethod::Unix, proven, replies)
            }
            AuthState::Done => Err(AuthError::Protocol(
                "negotiation already finished".to_string(),
            )),
        }
    }

    /// A proof attempt finished: `welcome` on success, `fail` and back
    /// to method negotiation otherwise.
    fn conclude(
        &mut self,
        method: AuthMethod,
        proven: Option<String>,
        replies: &mut Vec<String>,
    ) -> Result<AuthOutcome, AuthError> {
        match proven {
            Some(name) => {
                let principal = Principal::new(method, name);
                replies.push(format!("welcome {principal}"));
                Ok(AuthOutcome::Authenticated(principal))
            }
            None => {
                replies.push("fail".to_string());
                self.state = AuthState::AwaitMethod;
                Ok(AuthOutcome::Continue)
            }
        }
    }
}

/// Run the server side of the negotiation.
pub fn authenticate_server(
    t: &mut dyn AuthTransport,
    v: &ServerVerifier,
) -> Result<Principal, AuthError> {
    let mut machine = ServerAuthMachine::new(v.clone());
    let mut replies = Vec::new();
    loop {
        let line = io(t.recv_line())?;
        replies.clear();
        let outcome = machine.step(&line, &mut replies);
        for reply in &replies {
            io(t.send_line(reply))?;
        }
        match outcome? {
            AuthOutcome::Continue => {}
            AuthOutcome::Authenticated(p) => return Ok(p),
            AuthOutcome::Refused => return Err(AuthError::Refused),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use crate::transport::duplex_pair;
    use std::thread;

    fn run(
        creds: Vec<ClientCredential>,
        verifier: ServerVerifier,
    ) -> (
        Result<Principal, AuthError>,
        Result<Principal, AuthError>,
    ) {
        let (mut c, mut s) = duplex_pair();
        let server = thread::spawn(move || authenticate_server(&mut s, &verifier));
        let client = authenticate_client(&mut c, &creds);
        (client, server.join().unwrap())
    }

    fn globus_setup() -> (ClientCredential, ServerVerifier) {
        let ca = CertificateAuthority::new("/O=UnivNowhere CA", 0xCA11AB1E);
        let cert = ca.issue("/O=UnivNowhere/CN=Fred");
        let mut v = ServerVerifier::new();
        v.accept = vec![AuthMethod::Globus];
        v.cas.trust(ca);
        (ClientCredential::Globus(cert), v)
    }

    #[test]
    fn globus_succeeds() {
        let (cred, v) = globus_setup();
        let (c, s) = run(vec![cred], v);
        let p = c.unwrap();
        assert_eq!(p.to_string(), "globus:/O=UnivNowhere/CN=Fred");
        assert_eq!(s.unwrap(), p);
    }

    #[test]
    fn untrusted_ca_refused() {
        let (_, v) = globus_setup();
        let rogue = CertificateAuthority::new("/O=Rogue CA", 1);
        let cred = ClientCredential::Globus(rogue.issue("/O=UnivNowhere/CN=Fred"));
        let (c, s) = run(vec![cred], v);
        assert_eq!(c, Err(AuthError::Refused));
        assert_eq!(s, Err(AuthError::Refused));
    }

    #[test]
    fn kerberos_succeeds() {
        let mut kdc = Kdc::new("NOWHERE.EDU");
        kdc.register("fred");
        let ticket = kdc.grant("fred", 100).unwrap();
        let mut v = ServerVerifier::new();
        v.accept = vec![AuthMethod::Kerberos];
        v.kdc = Some(kdc);
        let (c, _) = run(vec![ClientCredential::Kerberos(ticket)], v);
        assert_eq!(c.unwrap().to_string(), "kerberos:fred@nowhere.edu");
    }

    #[test]
    fn hostname_checked_against_reverse_lookup() {
        let mut v = ServerVerifier::new();
        v.accept = vec![AuthMethod::Hostname];
        v.peer_hostname = Some("laptop.cs.nowhere.edu".to_string());
        let (c, _) = run(
            vec![ClientCredential::Hostname("laptop.cs.nowhere.edu".into())],
            v.clone(),
        );
        assert_eq!(c.unwrap().to_string(), "hostname:laptop.cs.nowhere.edu");
        // A spoofed claim fails.
        let (c, _) = run(
            vec![ClientCredential::Hostname("trusted.nowhere.edu".into())],
            v,
        );
        assert_eq!(c, Err(AuthError::Refused));
    }

    #[test]
    fn unix_challenge_response() {
        let mut v = ServerVerifier::new();
        v.accept = vec![AuthMethod::Unix];
        v.unix_secrets.insert("dthain".into(), 0x5EED);
        let good = ClientCredential::Unix {
            name: "dthain".into(),
            secret: 0x5EED,
        };
        let (c, _) = run(vec![good], v.clone());
        assert_eq!(c.unwrap().to_string(), "unix:dthain");
        let bad = ClientCredential::Unix {
            name: "dthain".into(),
            secret: 0xBAD,
        };
        let (c, _) = run(vec![bad], v);
        assert_eq!(c, Err(AuthError::Refused));
    }

    #[test]
    fn negotiation_falls_through_methods() {
        // Server only accepts hostname; the client leads with globus and
        // must fall through.
        let (globus_cred, _) = globus_setup();
        let mut v = ServerVerifier::new();
        v.accept = vec![AuthMethod::Hostname];
        v.peer_hostname = Some("h.x.edu".to_string());
        let creds = vec![globus_cred, ClientCredential::Hostname("h.x.edu".into())];
        let (c, s) = run(creds, v);
        let p = c.unwrap();
        assert_eq!(p.method, AuthMethod::Hostname);
        assert_eq!(s.unwrap(), p);
    }

    #[test]
    fn failed_proof_then_success() {
        // First credential is a bad cert for an accepted method; second
        // is a good hostname.
        let ca = CertificateAuthority::new("/O=CA", 2);
        let mut rogue_cert = ca.issue("/O=X/CN=Y");
        rogue_cert.signature ^= 1;
        let mut v = ServerVerifier::new();
        v.accept = vec![AuthMethod::Globus, AuthMethod::Hostname];
        v.cas.trust(ca);
        v.peer_hostname = Some("ok.edu".to_string());
        let creds = vec![
            ClientCredential::Globus(rogue_cert),
            ClientCredential::Hostname("ok.edu".into()),
        ];
        let (c, _) = run(creds, v);
        assert_eq!(c.unwrap().to_string(), "hostname:ok.edu");
    }

    #[test]
    fn no_credentials_refused() {
        let mut v = ServerVerifier::new();
        v.accept = vec![AuthMethod::Globus];
        let (c, s) = run(vec![], v);
        assert_eq!(c, Err(AuthError::Refused));
        assert_eq!(s, Err(AuthError::Refused));
    }

    fn step(m: &mut ServerAuthMachine, line: &str) -> (Vec<String>, Result<AuthOutcome, AuthError>) {
        let mut replies = Vec::new();
        let out = m.step(line, &mut replies);
        (replies, out)
    }

    #[test]
    fn machine_walks_unix_challenge() {
        let mut v = ServerVerifier::new();
        v.accept = vec![AuthMethod::Unix];
        v.unix_secrets.insert("dthain".into(), 0x5EED);
        let mut m = ServerAuthMachine::new(v);
        let (replies, out) = step(&mut m, "method unix");
        assert_eq!(replies, ["ok"]);
        assert_eq!(out, Ok(AuthOutcome::Continue));
        let (replies, out) = step(&mut m, "unix dthain");
        assert_eq!(out, Ok(AuthOutcome::Continue));
        let nonce = replies[0].strip_prefix("nonce ").unwrap().to_string();
        let answer = keyed_digest(0x5EED, &[nonce.as_str()]);
        let (replies, out) = step(&mut m, &format!("response {answer:016x}"));
        assert_eq!(replies, ["welcome unix:dthain"]);
        assert!(matches!(out, Ok(AuthOutcome::Authenticated(p)) if p.to_string() == "unix:dthain"));
    }

    #[test]
    fn machine_fail_returns_to_method_negotiation() {
        let mut v = ServerVerifier::new();
        v.accept = vec![AuthMethod::Hostname];
        v.peer_hostname = Some("real.edu".to_string());
        let mut m = ServerAuthMachine::new(v);
        assert_eq!(step(&mut m, "method hostname").0, ["ok"]);
        // Spoofed claim fails but the negotiation continues.
        assert_eq!(step(&mut m, "host fake.edu").0, ["fail"]);
        assert_eq!(step(&mut m, "method hostname").0, ["ok"]);
        let (replies, out) = step(&mut m, "host real.edu");
        assert_eq!(replies, ["welcome hostname:real.edu"]);
        assert!(matches!(out, Ok(AuthOutcome::Authenticated(_))));
    }

    #[test]
    fn machine_rejects_unknown_methods_and_garbage() {
        let mut v = ServerVerifier::new();
        v.accept = vec![AuthMethod::Unix];
        let mut m = ServerAuthMachine::new(v);
        // Unknown method name: polite "no", negotiation continues.
        assert_eq!(step(&mut m, "method carrier-pigeon").0, ["no"]);
        // Accepted-list miss: also "no".
        assert_eq!(step(&mut m, "method globus").0, ["no"]);
        // Giving up refuses without a reply line.
        let (replies, out) = step(&mut m, "giveup");
        assert!(replies.is_empty());
        assert_eq!(out, Ok(AuthOutcome::Refused));
    }

    #[test]
    fn machine_protocol_errors_are_terminal() {
        let mut m = ServerAuthMachine::new(ServerVerifier::new());
        let (replies, out) = step(&mut m, "what even is this");
        assert!(replies.is_empty());
        assert!(matches!(out, Err(AuthError::Protocol(_))));
        // Stepping a finished machine is itself a protocol error.
        assert!(matches!(step(&mut m, "method unix").1, Err(AuthError::Protocol(_))));
    }
}
