//! Line-oriented transports for the authentication exchange.

use std::sync::mpsc::{channel, Receiver, Sender};

/// A bidirectional, line-oriented message channel. The negotiation runs
/// over this; Chirp implements it on a TCP stream, tests on an in-memory
/// pair.
pub trait AuthTransport {
    /// Send one line (without the newline).
    fn send_line(&mut self, line: &str) -> Result<(), String>;

    /// Receive one line.
    fn recv_line(&mut self) -> Result<String, String>;
}

/// An in-memory transport built from mpsc channels.
pub struct ChannelTransport {
    tx: Sender<String>,
    rx: Receiver<String>,
}

impl AuthTransport for ChannelTransport {
    fn send_line(&mut self, line: &str) -> Result<(), String> {
        self.tx
            .send(line.to_string())
            .map_err(|_| "peer hung up".to_string())
    }

    fn recv_line(&mut self) -> Result<String, String> {
        self.rx.recv().map_err(|_| "peer hung up".to_string())
    }
}

/// A connected pair of in-memory transports (client end, server end).
pub fn duplex_pair() -> (ChannelTransport, ChannelTransport) {
    let (tx_a, rx_b) = channel();
    let (tx_b, rx_a) = channel();
    (
        ChannelTransport { tx: tx_a, rx: rx_a },
        ChannelTransport { tx: tx_b, rx: rx_b },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_delivers_both_ways() {
        let (mut a, mut b) = duplex_pair();
        a.send_line("ping").unwrap();
        assert_eq!(b.recv_line().unwrap(), "ping");
        b.send_line("pong").unwrap();
        assert_eq!(a.recv_line().unwrap(), "pong");
    }

    #[test]
    fn hangup_is_an_error() {
        let (mut a, b) = duplex_pair();
        drop(b);
        assert!(a.send_line("x").is_err());
        assert!(a.recv_line().is_err());
    }
}
