//! Property tests for the simulated credentials: forgery resistance of
//! the keyed digest under random tampering, and wire-format round trips.

use idbox_auth::{keyed_digest, Certificate, CertificateAuthority, Kdc, Ticket};
use proptest::prelude::*;

fn subject() -> impl Strategy<Value = String> {
    proptest::string::string_regex("/O=[A-Za-z]{1,12}/CN=[A-Za-z0-9 ._-]{1,20}").unwrap()
}

proptest! {
    #[test]
    fn digest_avalanche_on_key(key in any::<u64>(), msg in ".*{0,50}") {
        // Different keys practically never collide on the same message.
        let other = key.wrapping_add(1);
        prop_assert_ne!(
            keyed_digest(key, &[&msg]),
            keyed_digest(other, &[&msg])
        );
    }

    #[test]
    fn certificates_verify_only_their_own_subject(
        key in any::<u64>(),
        subject_a in subject(),
        subject_b in subject(),
    ) {
        prop_assume!(subject_a != subject_b);
        let ca = CertificateAuthority::new("/O=CA", key);
        let cert = ca.issue(subject_a);
        prop_assert!(ca.verify(&cert));
        // Transplanting the signature onto a different subject fails.
        let forged = Certificate {
            subject: subject_b,
            issuer: cert.issuer.clone(),
            signature: cert.signature,
        };
        prop_assert!(!ca.verify(&forged));
    }

    #[test]
    fn signature_bitflips_never_verify(
        key in any::<u64>(),
        sub in subject(),
        flip in 0u32..64,
    ) {
        let ca = CertificateAuthority::new("/O=CA", key);
        let mut cert = ca.issue(sub);
        cert.signature ^= 1u64 << flip;
        prop_assert!(!ca.verify(&cert));
    }

    #[test]
    fn certificate_wire_roundtrip(key in any::<u64>(), sub in subject()) {
        let ca = CertificateAuthority::new("/O=Some CA", key);
        let cert = ca.issue(sub);
        let back = Certificate::from_wire(&cert.to_wire()).unwrap();
        prop_assert_eq!(&back, &cert);
        prop_assert!(ca.verify(&back));
    }

    #[test]
    fn tickets_expire_and_resist_extension(
        lifetime in 1u64..1000,
        tamper in 1u64..1_000_000,
    ) {
        let mut kdc = Kdc::new("REALM.EDU");
        kdc.register("fred");
        let t = kdc.grant("fred", lifetime).unwrap();
        prop_assert!(kdc.verify(&t));
        // Extending the expiry without the key fails.
        let forged = Ticket {
            expires: t.expires + tamper,
            ..t.clone()
        };
        prop_assert!(!kdc.verify(&forged));
        // Time passing really expires it.
        kdc.tick(lifetime);
        prop_assert!(!kdc.verify(&t));
    }

    #[test]
    fn ticket_wire_roundtrip(lifetime in 1u64..100) {
        let mut kdc = Kdc::new("X");
        kdc.register("u");
        let t = kdc.grant("u", lifetime).unwrap();
        let back = Ticket::from_wire(&t.to_wire()).unwrap();
        prop_assert_eq!(back, t);
    }
}
