//! Ablation: the fast-path caches in the identity box.
//!
//! The box consults the containing directory's `.__acl` on every path
//! call, and the kernel walks the path component by component.
//! Re-resolving and re-parsing each time is the simple, obviously
//! correct implementation; the generation-keyed caches (the VFS dentry
//! cache plus the box's ACL verdict cache) trade all of that for two
//! hash probes validated against the filesystem change generation.
//! This bench measures a stat-heavy loop (make's profile) with the
//! whole fast path on and off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idbox_core::{BoxOptions, IdentityBox};
use idbox_interpose::{share, GuestCtx};
use idbox_kernel::{Account, Kernel};
use idbox_types::CostModel;
use idbox_vfs::Cred;

fn bench_aclcache(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_aclcache");
    group.sample_size(30);
    // Invariant: the cache is a pure optimization — the probe battery
    // below must observe identical outcomes in both modes (the full
    // decision-level property lives in
    // crates/core/tests/cache_equivalence.rs).
    let mut traces: Vec<Vec<Result<u64, idbox_types::Errno>>> = Vec::new();
    for cache in [false, true] {
        let mut k = Kernel::new();
        k.accounts_mut().add(Account::new("dthain", 1000, 1000)).unwrap();
        // One switch ablates the whole fast path: the kernel-side dentry
        // cache together with the box-side ACL verdict cache.
        k.vfs_mut().set_dentry_cache(cache);
        let kernel = share(k);
        let b = IdentityBox::with_options(
            kernel,
            "Fred",
            Cred::new(1000, 1000),
            BoxOptions {
                cache_acls: cache,
                cost_model: CostModel::free_switches(),
                ..Default::default()
            },
        )
        .unwrap();
        let pid = b.spawn_process("stat-loop").unwrap();
        let mut sup = b.supervisor();
        let mut ctx = GuestCtx::new(&mut sup, pid);
        // A populated directory with a multi-entry ACL, like a shared
        // project space.
        for i in 0..20 {
            ctx.write_file(&format!("{}/f{i}", b.home()), b"x").unwrap();
        }
        let mut acl_text = ctx.read_file(&format!("{}/.__acl", b.home())).unwrap();
        for i in 0..10 {
            acl_text.extend_from_slice(format!("globus:/O=Org{i}/* rl\n").as_bytes());
        }
        ctx.write_file(&format!("{}/.__acl", b.home()), &acl_text)
            .unwrap();
        let paths: Vec<String> = (0..20).map(|i| format!("{}/f{i}", b.home())).collect();
        let mut trace = Vec::new();
        for p in &paths {
            trace.push(ctx.stat(p).map(|st| st.size));
        }
        trace.push(ctx.stat(&format!("{}/missing", b.home())).map(|st| st.size));
        trace.push(ctx.stat("/etc/shadow-like").map(|st| st.size));
        traces.push(trace);
        let label = if cache { "cached" } else { "reparse-every-call" };
        group.bench_function(BenchmarkId::new("stat20", label), |b| {
            b.iter(|| {
                for p in &paths {
                    ctx.stat(p).unwrap();
                }
            });
        });
    }
    assert_eq!(
        traces[0], traces[1],
        "cached and uncached ACL evaluation observed different outcomes"
    );
    group.finish();
}

criterion_group!(benches, bench_aclcache);
criterion_main!(benches);
