//! Ablation: the cost of nullification (Section 5).
//!
//! On Linux a trapped syscall cannot be aborted outright, so Parrot
//! converts it into a `getpid()` that really enters the kernel — two
//! extra mode switches plus a kernel entry per trap. A hypothetical
//! kernel with abortable syscalls would save exactly that. We model it
//! by shrinking `switches_per_trap` from 6 to 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idbox_interpose::{share, AllowAll, GuestCtx, Supervisor};
use idbox_kernel::Kernel;
use idbox_types::CostModel;
use idbox_vfs::Cred;

fn bench_nullify(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_nullify");
    group.sample_size(30);
    let base = CostModel::calibrated();
    let configs = [
        ("nullify-to-getpid (real)", base),
        (
            "abortable-syscall (hypothetical)",
            CostModel {
                switches_per_trap: 4,
                ..base
            },
        ),
    ];
    for (name, model) in configs {
        let kernel = share(Kernel::new());
        let pid = kernel.lock().spawn(Cred::ROOT, "/tmp", "nullify").unwrap();
        let mut sup = Supervisor::interposed(kernel, Box::new(AllowAll), model);
        let mut ctx = GuestCtx::new(&mut sup, pid);
        ctx.write_file("/tmp/f", b"x").unwrap();
        group.bench_function(BenchmarkId::new("stat", name), |b| {
            b.iter(|| ctx.stat("/tmp/f").unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nullify);
criterion_main!(benches);
