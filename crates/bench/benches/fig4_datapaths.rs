//! Criterion bench for Figure 4(b): the two supervisor⇄tracee data
//! paths. Reads of increasing size cross via word-at-a-time pokes (small)
//! or the I/O channel's extra copy (bulk); the direct path is the
//! baseline single copy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use idbox_interpose::{share, AllowAll, GuestCtx, Supervisor};
use idbox_kernel::{Kernel, OpenFlags};
use idbox_types::CostModel;
use idbox_vfs::Cred;

fn setup(model: Option<CostModel>, size: usize) -> (Supervisor, idbox_kernel::Pid) {
    let kernel = share(Kernel::new());
    let pid = kernel.lock().spawn(Cred::ROOT, "/tmp", "dp").unwrap();
    {
        let mut k = kernel.lock();
        let root = k.vfs().root();
        k.vfs_mut()
            .write_file(root, "/tmp/dp.dat", &vec![0x5A; size], &Cred::ROOT)
            .unwrap();
    }
    let sup = match model {
        None => Supervisor::direct(kernel),
        Some(m) => Supervisor::interposed(kernel, Box::new(AllowAll), m),
    };
    (sup, pid)
}

fn bench_datapaths(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_datapaths");
    group.sample_size(20);
    for size in [64usize, 256, 8192, 65536] {
        group.throughput(Throughput::Bytes(size as u64));
        for (mode, model) in [
            ("direct", None),
            ("interposed", Some(CostModel::calibrated())),
        ] {
            let (mut sup, pid) = setup(model, size);
            let mut ctx = GuestCtx::new(&mut sup, pid);
            let fd = ctx.open("/tmp/dp.dat", OpenFlags::rdonly(), 0).unwrap();
            let mut buf = vec![0u8; size];
            group.bench_with_input(
                BenchmarkId::new(mode, size),
                &size,
                |b, _| {
                    b.iter(|| ctx.pread(fd, &mut buf, 0).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_datapaths);
criterion_main!(benches);
