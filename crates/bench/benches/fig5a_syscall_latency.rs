//! Criterion bench for Figure 5(a): per-syscall latency, unmodified vs.
//! inside the identity box, for the paper's seven cases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idbox_interpose::{share, AllowAll, GuestCtx, Supervisor};
use idbox_kernel::Kernel;
use idbox_types::CostModel;
use idbox_vfs::Cred;
use idbox_workloads::micro::{self, MicroCase};

fn setup(model: Option<CostModel>) -> (Supervisor, idbox_kernel::Pid) {
    let kernel = share(Kernel::new());
    let pid = kernel.lock().spawn(Cred::ROOT, "/tmp", "micro").unwrap();
    let sup = match model {
        None => Supervisor::direct(kernel),
        Some(m) => Supervisor::interposed(kernel, Box::new(AllowAll), m),
    };
    (sup, pid)
}

fn bench_fig5a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5a");
    group.sample_size(20);
    for case in MicroCase::all() {
        for (mode, model) in [
            ("unmodified", None),
            ("identity-box", Some(CostModel::calibrated())),
        ] {
            let (mut sup, pid) = setup(model);
            let mut ctx = GuestCtx::new(&mut sup, pid);
            micro::prepare(&mut ctx);
            group.bench_with_input(
                BenchmarkId::new(case.label(), mode),
                &case,
                |b, &case| {
                    b.iter(|| micro::run_case(&mut ctx, case, 16));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5a);
criterion_main!(benches);
