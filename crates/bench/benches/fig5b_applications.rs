//! Criterion bench for Figure 5(b): whole-application runtime in both
//! modes, at a reduced scale (the printed `fig5b_table` binary runs the
//! full scale and reports percentages).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idbox_types::CostModel;
use idbox_workloads::{all_apps, measure_app, Scale};

fn bench_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5b_apps");
    group.sample_size(10);
    for app in all_apps() {
        group.bench_with_input(
            BenchmarkId::new("direct_vs_boxed", app.name),
            &app,
            |b, app| {
                b.iter(|| {
                    measure_app(app, Scale(0.02), CostModel::calibrated(), 1).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
