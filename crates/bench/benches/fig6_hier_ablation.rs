//! Criterion bench for the Section 9 / Figure 6 ablation: the same
//! hierarchical identity policy enforced in-kernel (proposed) vs. via
//! user-level interposition (this paper), against the plain kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idbox_core::IdentityBoxPolicy;
use idbox_hier::{DomainTree, HierId, HierPolicy};
use idbox_interpose::{share, GuestCtx, SharedKernel, Supervisor};
use idbox_types::CostModel;
use idbox_vfs::Cred;
use parking_lot::Mutex;
use std::sync::Arc;

/// A deferred supervisor constructor (one per ablation config).
type SupFactory = Box<dyn Fn() -> Supervisor>;

fn policy(domain: &HierId, tree: &Arc<Mutex<DomainTree>>) -> Box<HierPolicy> {
    Box::new(HierPolicy::new(
        domain.clone(),
        Arc::clone(tree),
        IdentityBoxPolicy::new(
            domain.to_identity(),
            Cred::new(1000, 1000),
            "/tmp/.passwd",
            true,
        ),
    ))
}

fn setup() -> (SharedKernel, Arc<Mutex<DomainTree>>, HierId) {
    let kernel = share(idbox_kernel::Kernel::new());
    let tree = Arc::new(Mutex::new(DomainTree::new()));
    let root = HierId::root();
    let visitor = {
        let mut t = tree.lock();
        let dthain = t.create(&root, &root, "dthain").unwrap();
        t.create(&dthain, &dthain, "visitor").unwrap()
    };
    (kernel, tree, visitor)
}

fn bench_hier(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_hier");
    group.sample_size(30);
    let (kernel, tree, visitor) = setup();
    let configs: Vec<(&str, SupFactory)> = vec![
        (
            "plain-kernel",
            Box::new({
                let kernel = Arc::clone(&kernel);
                move || Supervisor::direct(Arc::clone(&kernel))
            }),
        ),
        (
            "in-kernel-idbox",
            Box::new({
                let (kernel, tree, visitor) =
                    (Arc::clone(&kernel), Arc::clone(&tree), visitor.clone());
                move || Supervisor::in_kernel(Arc::clone(&kernel), policy(&visitor, &tree))
            }),
        ),
        (
            "interposed-idbox",
            Box::new({
                let (kernel, tree, visitor) =
                    (Arc::clone(&kernel), Arc::clone(&tree), visitor.clone());
                move || {
                    Supervisor::interposed(
                        Arc::clone(&kernel),
                        policy(&visitor, &tree),
                        CostModel::calibrated(),
                    )
                }
            }),
        ),
    ];
    for (name, make_sup) in configs {
        let pid = {
            let k = kernel.lock();
            let pid = k.spawn(Cred::new(1000, 1000), "/tmp", "bench").unwrap();
            k.set_identity(pid, visitor.to_identity()).unwrap();
            pid
        };
        tree.lock().assign(pid, visitor.clone()).unwrap();
        let mut sup = make_sup();
        let mut ctx = GuestCtx::new(&mut sup, pid);
        ctx.write_file("/tmp/p.dat", b"x").unwrap();
        group.bench_function(BenchmarkId::new("stat", name), |b| {
            b.iter(|| ctx.stat("/tmp/p.dat").unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hier);
criterion_main!(benches);
