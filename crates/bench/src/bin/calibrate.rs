//! Calibration utility: find the context-switch footprint that lands
//! boxed `getpid` at the paper's ~10x, and print the resulting model.
//!
//! ```text
//! cargo run --release -p idbox-bench --bin calibrate [target_ratio]
//! ```

use idbox_interpose::calibrate::{calibrate_to, measure_ratio, TARGET_RATIO};
use idbox_types::CostModel;

fn main() {
    let target: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(TARGET_RATIO);
    println!("mechanism floor (free switches): {:.1}x", measure_ratio(CostModel::free_switches()));
    println!(
        "static default model: {:.1}x",
        measure_ratio(CostModel::calibrated())
    );
    let (model, ratio) = calibrate_to(target);
    println!("calibrated for {target:.1}x:");
    println!("  switch_footprint_bytes = {}", model.switch_footprint_bytes);
    println!("  switches_per_trap      = {}", model.switches_per_trap);
    println!("  achieved ratio         = {ratio:.2}x");
}
