//! Kernel-lock contention bench: disjoint identities, disjoint
//! subtrees, shared kernel.
//!
//! The sharded-kernel success metric. N client threads, each a
//! distinct identity working a private subtree (`/w/c{i}`), hammer one
//! `SharedKernel` through in-kernel supervisors with a metadata-heavy
//! mix — open/write/seek/read/close/unlink — that is *all mutating
//! calls*, the traffic the old monolithic `Arc<RwLock<Kernel>>`
//! serialized completely. With the kernel sharded, clients in disjoint
//! subtrees take disjoint locks, so aggregate throughput should scale
//! with client count on a multi-core host.
//!
//! Each level also reports *where the time went*: the shard-lock
//! profiles (`parking_lot::lock_snapshot`) are diffed around the timed
//! window, giving total acquisitions, how many blocked, total blocked
//! milliseconds, and the p99 contended wait — the numbers that say
//! whether a flat speedup curve is lock contention or something else.
//!
//! Emits `results/BENCH_contention.tsv`. Knobs:
//!
//! * `IDBOX_BENCH_WINDOW_MS` — timed window per level (default 400).
//! * `IDBOX_BENCH_LEVELS` — comma-separated client counts (default
//!   `1,2,4,8`).
//! * `IDBOX_BENCH_ASSERT_SCALING` — when set, require `speedup_vs_1`
//!   ≥ 1.5 at 4 clients; skipped (not weakened) on hosts with fewer
//!   than 4 cores, where the ratio cannot mean what it asserts.

use idbox_interpose::{share, AllowAll, GuestCtx, SharedKernel, Supervisor};
use idbox_kernel::{Kernel, OpenFlags, Whence};
use idbox_types::Identity;
use idbox_vfs::Cred;
use parking_lot::DomainLockSnapshot;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const FILES_PER_CLIENT: usize = 8;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Where the time went: per-domain lock-wait deltas across one level,
/// matched by domain name (a domain registered mid-run has no earlier
/// baseline and counts from zero).
fn lock_delta(now: &[DomainLockSnapshot], then: &[DomainLockSnapshot]) -> Vec<DomainLockSnapshot> {
    now.iter()
        .map(|d| {
            match then
                .iter()
                .find(|e| e.domain == d.domain && e.shards.len() == d.shards.len())
            {
                Some(e) => d.diff(e),
                None => d.clone(),
            }
        })
        .collect()
}

/// Run one contention level: `n` clients for `window`. Returns the
/// total syscalls dispatched and the measured wall time.
fn run_level(kernel: &SharedKernel, n: usize, window: Duration) -> (u64, Duration) {
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(n + 1));
    let mut joins = Vec::with_capacity(n);
    for i in 0..n {
        let kernel = Arc::clone(kernel);
        let stop = Arc::clone(&stop);
        let total = Arc::clone(&total);
        let barrier = Arc::clone(&barrier);
        joins.push(std::thread::spawn(move || {
            let home = format!("/w/c{i}");
            let pid = {
                let k = kernel.read();
                let pid = k.spawn(Cred::new(1000, 1000), &home, "contend").unwrap();
                k.set_identity(
                    pid,
                    Identity::new(format!("globus:/O=Bench/CN=client{i}")),
                )
                .unwrap();
                pid
            };
            let mut sup = Supervisor::in_kernel(kernel, Box::new(AllowAll));
            let mut ctx = GuestCtx::new(&mut sup, pid);
            let mut buf = [0u8; 64];
            let mut ops = 0u64;
            let mut j = 0usize;
            barrier.wait();
            while !stop.load(Ordering::Relaxed) {
                let path = format!("{home}/f{j}");
                j = (j + 1) % FILES_PER_CLIENT;
                let fd = ctx
                    .open(&path, OpenFlags::rdwr_create(), 0o644)
                    .unwrap();
                ctx.write(fd, b"identity boxing under contention").unwrap();
                ctx.lseek(fd, 0, Whence::Set).unwrap();
                ctx.read(fd, &mut buf).unwrap();
                ctx.close(fd).unwrap();
                ctx.unlink(&path).unwrap();
                ops += 6;
            }
            ctx.exit(0);
            total.fetch_add(ops, Ordering::Relaxed);
        }));
    }
    barrier.wait();
    let t0 = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    for j in joins {
        j.join().unwrap();
    }
    (total.load(Ordering::Relaxed), t0.elapsed())
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let window = Duration::from_millis(env_u64("IDBOX_BENCH_WINDOW_MS", 400));
    let warmup = (window / 4).max(Duration::from_millis(50));
    let levels: Vec<usize> = std::env::var("IDBOX_BENCH_LEVELS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);

    let mut k = Kernel::new();
    let root = k.vfs().root();
    k.vfs_mut().mkdir(root, "/w", 0o755, &Cred::ROOT).unwrap();
    let max = levels.iter().copied().max().unwrap_or(1);
    for i in 0..max {
        let dir = format!("/w/c{i}");
        k.vfs_mut().mkdir(root, &dir, 0o755, &Cred::ROOT).unwrap();
        k.vfs_mut().chown(root, &dir, 1000, 1000, &Cred::ROOT).unwrap();
    }
    println!(
        "contention bench: {} proc shard(s), {} vfs shard(s), {} core(s)",
        k.proc_shard_count(),
        k.vfs().shard_count(),
        cores
    );
    let kernel = share(k);

    let mut rows = Vec::new();
    let mut single_rate = 0.0f64;
    let mut speedup_at_4 = None;
    for &n in &levels {
        // Untimed warm-up so every level starts with hot caches and
        // settled allocator state.
        run_level(&kernel, n, warmup);
        let lock0 = parking_lot::lock_snapshot();
        let (ops, elapsed) = run_level(&kernel, n, window);
        let diffs = lock_delta(&parking_lot::lock_snapshot(), &lock0);
        let rate = ops as f64 / elapsed.as_secs_f64();
        if single_rate == 0.0 {
            single_rate = rate;
        }
        let speedup = rate / single_rate;
        if n == 4 {
            speedup_at_4 = Some(speedup);
        }
        // Where the time went: how many lock acquisitions this level's
        // syscalls made, how many of those actually blocked, and how
        // bad a blocked one got.
        let acq: u64 = diffs.iter().map(|d| d.acquisitions()).sum();
        let waits: u64 = diffs.iter().map(|d| d.waits()).sum();
        let wait_ms = diffs.iter().map(|d| d.wait_total_us()).sum::<u64>() as f64 / 1000.0;
        let p99 = parking_lot::lock_wait_percentile_us(&diffs, 99.0);
        let p99_cell = p99.map_or_else(|| "-".to_string(), |v| v.to_string());
        let contended_pct = if acq > 0 {
            100.0 * waits as f64 / acq as f64
        } else {
            0.0
        };
        println!(
            "{n} clients: {rate:>10.0} syscalls/s  ({speedup:.2}x of single client)  \
             locks: {waits}/{acq} contended ({contended_pct:.2}%), \
             {wait_ms:.1} ms waiting, p99 {p99_cell} us"
        );
        // Single-core hosts cannot show lock scaling: record `-`, not
        // a misleading ~1.0.
        let speedup_cell = if cores >= 2 {
            format!("{speedup:.2}")
        } else {
            "-".to_string()
        };
        rows.push(format!(
            "{n}\t{rate:.0}\t{speedup_cell}\t{acq}\t{waits}\t{wait_ms:.1}\t{p99_cell}\t{cores}"
        ));
    }
    if cores < 2 {
        println!("note: only {cores} core(s) available; client scaling is core-bound");
    }
    idbox_bench::write_tsv(
        "BENCH_contention.tsv",
        "clients\tsyscalls_per_sec\tspeedup_vs_1\tlock_acquisitions\tlock_waits\t\
         lock_wait_ms\tlock_wait_p99_us\thost_cores",
        &rows,
    );
    if std::env::var("IDBOX_BENCH_ASSERT_SCALING").is_ok() {
        match speedup_at_4 {
            Some(s) if cores >= 4 => {
                assert!(
                    s >= 1.5,
                    "sharded kernel failed to scale: {s:.2}x at 4 clients \
                     on a {cores}-core host (want >= 1.5x)"
                );
                println!("scaling assertion passed: {s:.2}x at 4 clients");
            }
            Some(_) | None => {
                println!(
                    "scaling assertion skipped: needs a 4-client level and >= 4 cores \
                     (host has {cores})"
                );
            }
        }
    }
}
