//! Data-plane throughput: the zero-copy extent pipeline vs the copying
//! read path, across payload sizes from 4 KiB to 64 MiB.
//!
//! PR "zero-copy data plane" rebuilt the byte-moving path: `get` (and
//! `pread`) replies carry `Arc`-backed extents borrowed straight from
//! the Vfs chunk store, queued as scatter-gather segments and flushed
//! with vectored writes — the file bytes are never copied into guest
//! memory or a flat connection buffer. This bench drives two servers,
//! one with the pipeline on (default) and one ablated to the old
//! copying path (`copy_data_plane`), and reports MiB/s plus process-
//! wide allocations per operation for each transfer size, into
//! `results/BENCH_dataplane.tsv`.
//!
//! ```text
//! cargo run --release -p idbox-bench --bin dataplane
//! ```
//!
//! Knobs: `IDBOX_BENCH_WINDOW_MS` shrinks the per-mode measurement
//! window (CI smoke); `IDBOX_DATAPLANE_SIZES` (comma-separated bytes)
//! picks the sizes to sweep. With `IDBOX_BENCH_ASSERT_DATAPLANE` set,
//! the run fails unless zero-copy `get` clears 2x the copying path's
//! MiB/s at some size >= 1 MiB — skipped on single-core hosts, where
//! client and server contend for one hardware thread.

use idbox_acl::{Acl, Rights};
use idbox_auth::{CertificateAuthority, ClientCredential, ServerVerifier};
use idbox_chirp::{ChirpClient, ChirpServer, ServerConfig};
use idbox_types::AuthMethod;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Allocation-counting wrapper around the system allocator, so the
/// allocs-per-op column can show the copy path's per-transfer buffer
/// churn against the extent path's near-flat profile. Process-wide:
/// client and server run in this one process, which is the point.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter has no effect on
// allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const WINDOW_MS: u64 = 800;
const MIB: f64 = (1u64 << 20) as f64;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn server(copy_data_plane: bool) -> (idbox_chirp::ChirpServerHandle, CertificateAuthority) {
    let ca = CertificateAuthority::new("/O=UnivNowhere CA", 0xBE7C4);
    let mut verifier = ServerVerifier::new();
    verifier.accept = vec![AuthMethod::Globus];
    verifier.cas.trust(ca.clone());
    let mut root_acl = Acl::empty();
    root_acl.set_reserve("globus:/O=UnivNowhere/*", Rights::LIST, Rights::RWLAX);
    let s = ChirpServer::new(ServerConfig {
        name: "dataplane".into(),
        verifier,
        root_acl,
        copy_data_plane,
        ..Default::default()
    })
    .unwrap();
    (s.spawn().unwrap(), ca)
}

fn connect(handle: &idbox_chirp::ChirpServerHandle, ca: &CertificateAuthority) -> ChirpClient {
    let creds = vec![ClientCredential::Globus(ca.issue("/O=UnivNowhere/CN=Fred"))];
    ChirpClient::connect(handle.addr(), &creds).unwrap()
}

/// Patterned payload: corruption anywhere in the pipeline fails the
/// length/content checks instead of passing silently.
fn payload(size: usize) -> Vec<u8> {
    (0..size as u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
        .collect()
}

/// Run `f` repeatedly for `window` (at least once) and report
/// (ops/s, allocations/op).
fn timed(window: Duration, mut f: impl FnMut()) -> (f64, f64) {
    let t0 = Instant::now();
    let a0 = ALLOC_CALLS.load(Ordering::Relaxed);
    let mut ops = 0u64;
    while ops == 0 || t0.elapsed() < window {
        f();
        ops += 1;
    }
    let dt = t0.elapsed().as_secs_f64();
    let allocs = ALLOC_CALLS.load(Ordering::Relaxed) - a0;
    (ops as f64 / dt, allocs as f64 / ops as f64)
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let window = Duration::from_millis(env_u64("IDBOX_BENCH_WINDOW_MS", WINDOW_MS));
    let warmup = (window / 4).max(Duration::from_millis(50));
    let sizes: Vec<usize> = std::env::var("IDBOX_DATAPLANE_SIZES")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![4 << 10, 64 << 10, 1 << 20, 8 << 20, 64 << 20]);

    let (zc_handle, zc_ca) = server(false);
    let (cp_handle, cp_ca) = server(true);
    let mut zc = connect(&zc_handle, &zc_ca);
    let mut cp = connect(&cp_handle, &cp_ca);
    zc.mkdir("/bench", 0o755).unwrap();
    cp.mkdir("/bench", 0o755).unwrap();

    let mut rows = Vec::new();
    let mut best_large_speedup = 0.0f64;
    println!("{:>10}  {:<14} {:>10}  {:>10}  notes", "size", "mode", "MiB/s", "allocs/op");
    for &size in &sizes {
        let data = payload(size);
        let path = format!("/bench/f{size}.dat");
        zc.put(&path, &data).unwrap();
        cp.put(&path, &data).unwrap();
        let mib = size as f64 / MIB;
        // Pipelining depth scaled so one burst stays near 32 MiB of
        // in-flight replies even at the top of the sweep.
        let depth = ((32 << 20) / size).clamp(2, 8);

        // Ablated baseline: the pre-extent copying path.
        timed(warmup, || assert_eq!(cp.get(&path).unwrap().len(), size));
        let (ops, allocs) = timed(window, || assert_eq!(cp.get(&path).unwrap().len(), size));
        let copy_rate = ops * mib;
        println!("{size:>10}  {:<14} {copy_rate:>10.1}  {allocs:>10.0}  baseline", "get/copy");
        rows.push(format!("get\tcopy\t{size}\t{copy_rate:.1}\t{allocs:.0}\t1.00\t{cores}"));

        // Zero-copy, serial.
        timed(warmup, || assert_eq!(zc.get(&path).unwrap().len(), size));
        let (ops, allocs) = timed(window, || assert_eq!(zc.get(&path).unwrap().len(), size));
        let zc_rate = ops * mib;
        let speedup = zc_rate / copy_rate;
        if size >= 1 << 20 {
            best_large_speedup = best_large_speedup.max(speedup);
        }
        println!("{size:>10}  {:<14} {zc_rate:>10.1}  {allocs:>10.0}  {speedup:.2}x copy", "get/zerocopy");
        rows.push(format!(
            "get\tzerocopy\t{size}\t{zc_rate:.1}\t{allocs:.0}\t{speedup:.2}\t{cores}"
        ));

        // Zero-copy, pipelined: `depth` gets in flight on one
        // connection, replies streamed under backpressure.
        let run_pipe = |c: &mut ChirpClient| {
            let mut p = c.pipeline();
            for _ in 0..depth {
                p.get(&path);
            }
            for r in p.run().unwrap() {
                assert_eq!(r.payload.as_ref().map(Vec::len), Some(size));
            }
        };
        timed(warmup, || run_pipe(&mut zc));
        let (bursts, allocs) = timed(window, || run_pipe(&mut zc));
        let pipe_rate = bursts * depth as f64 * mib;
        let allocs = allocs / depth as f64;
        let speedup = pipe_rate / copy_rate;
        println!(
            "{size:>10}  {:<14} {pipe_rate:>10.1}  {allocs:>10.0}  {speedup:.2}x copy, depth {depth}",
            "get/pipelined"
        );
        rows.push(format!(
            "get-pipelined\tzerocopy\t{size}\t{pipe_rate:.1}\t{allocs:.0}\t{speedup:.2}\t{cores}"
        ));

        // Inbound: `put` through the pooled payload buffers.
        timed(warmup, || zc.put(&path, &data).unwrap());
        let (ops, allocs) = timed(window, || zc.put(&path, &data).unwrap());
        let put_rate = ops * mib;
        println!("{size:>10}  {:<14} {put_rate:>10.1}  {allocs:>10.0}", "put");
        rows.push(format!("put\tzerocopy\t{size}\t{put_rate:.1}\t{allocs:.0}\t-\t{cores}"));
    }

    if cores < 2 {
        println!("note: only {cores} core(s) available; client and server are core-bound");
    }
    // Optional regression gate: the extent pipeline must actually beat
    // the copying path on large transfers. Skipped — not weakened — on
    // single-core hosts.
    if std::env::var("IDBOX_BENCH_ASSERT_DATAPLANE").is_ok() {
        if cores < 2 {
            println!("dataplane assertion skipped: requires >= 2 cores, host has {cores}");
        } else {
            assert!(
                best_large_speedup >= 2.0,
                "zero-copy data plane failed its floor: best 1 MiB+ get speedup \
                 {best_large_speedup:.2}x < 2x the copying path on a {cores}-core host"
            );
            println!("dataplane assertion passed: {best_large_speedup:.2}x copy path at 1 MiB+");
        }
    }

    idbox_bench::write_tsv(
        "BENCH_dataplane.tsv",
        "op\tmode\tsize_bytes\tmib_per_sec\tallocs_per_op\tspeedup_vs_copy\thost_cores",
        &rows,
    );
    let _ = zc.quit();
    let _ = cp.quit();
    zc_handle.shutdown();
    cp_handle.shutdown();
}
