//! Durability tax: what the write-ahead log costs the metadata hot
//! path, and what group commit buys back.
//!
//! One boxed client hammers the contention bench's all-mutating
//! metadata mix — open/write/seek/read/close/unlink, six syscalls per
//! iteration — against three kernels: volatile (no WAL), durable with
//! group commit (25 ms flusher tick / 65536-op burst backstop, the
//! server default), and durable with sync-every-op (an fsync inside
//! every mutation). The interesting number is the group-commit column:
//! the WAL append is a few hundred nanoseconds of in-memory framing
//! under the shard lock and the fsyncs are paced by the timer, so the
//! durable kernel should stay within a few percent of volatile, while
//! sync-every-op pays the full disk round trip per op and serves as
//! the upper bound on the tax.
//!
//! Emits `results/BENCH_durability.tsv`. Knobs:
//!
//! * `IDBOX_BENCH_WINDOW_MS` — timed window per mode (default 400).
//! * `IDBOX_BENCH_ROUNDS` — interleaved measurement rounds (default 5).
//! * `IDBOX_BENCH_ASSERT_DURABILITY` — when set, require the
//!   group-commit mode to hold ≥ 0.90x of the volatile rate. A first
//!   pass under the bar triggers one settle-and-remeasure before the
//!   gate fires: the durable windows are the only ones that touch the
//!   disk, so writeback debt left by earlier work taxes them but not
//!   the volatile baseline, while a real append/flush-path regression
//!   fails the quiet remeasurement too. If the remeasurement still
//!   misses the bar, a direct probe decides: on a measurably degraded
//!   device (400 KiB fdatasync over 1 ms — a noisy shared host) the
//!   assertion self-skips like the CPU-bound gates do on single-core
//!   hosts; on a healthy device it fails, because then the miss is a
//!   real append/flush-path regression.

use idbox_interpose::{share, AllowAll, GuestCtx, SharedKernel, Supervisor};
use idbox_kernel::{Kernel, OpenFlags, Whence};
use idbox_types::Identity;
use idbox_vfs::{Cred, WalConfig, WalStats};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const FILES: usize = 8;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One durability mode under test.
struct Mode {
    name: &'static str,
    /// `None` = volatile kernel; `Some(sync_ops)` = WAL with that
    /// group-commit batch (0 = fsync every op).
    wal: Option<u64>,
}

fn wal_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("idbox-bench-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Build the mode's kernel with the bench working tree in place.
fn build_kernel(mode: &Mode, dir: &Path) -> Kernel {
    let mut k = match mode.wal {
        Some(sync_ops) => {
            let mut cfg = WalConfig::new(dir.to_path_buf());
            cfg.sync_ops = sync_ops;
            cfg.sync_ms = 25;
            Kernel::with_durability(cfg).expect("WAL dir must be writable").0
        }
        None => Kernel::new(),
    };
    let root = k.vfs().root();
    k.vfs_mut().mkdir(root, "/w", 0o755, &Cred::ROOT).unwrap();
    k.vfs_mut().mkdir(root, "/w/c0", 0o755, &Cred::ROOT).unwrap();
    k.vfs_mut().chown(root, "/w/c0", 1000, 1000, &Cred::ROOT).unwrap();
    k
}

/// Run the metadata mix against `kernel` for `window`; returns total
/// syscalls and measured wall time.
fn run_window(kernel: &SharedKernel, window: Duration) -> (u64, Duration) {
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(2));
    let join = {
        let kernel = Arc::clone(kernel);
        let stop = Arc::clone(&stop);
        let total = Arc::clone(&total);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            let pid = {
                let k = kernel.read();
                let pid = k.spawn(Cred::new(1000, 1000), "/w/c0", "durbench").unwrap();
                k.set_identity(pid, Identity::new("globus:/O=Bench/CN=dur"))
                    .unwrap();
                pid
            };
            let mut sup = Supervisor::in_kernel(kernel, Box::new(AllowAll));
            let mut ctx = GuestCtx::new(&mut sup, pid);
            let mut buf = [0u8; 64];
            let mut ops = 0u64;
            let mut j = 0usize;
            barrier.wait();
            while !stop.load(Ordering::Relaxed) {
                let path = format!("/w/c0/f{j}");
                j = (j + 1) % FILES;
                let fd = ctx.open(&path, OpenFlags::rdwr_create(), 0o644).unwrap();
                ctx.write(fd, b"durability tax measurement bytes").unwrap();
                ctx.lseek(fd, 0, Whence::Set).unwrap();
                ctx.read(fd, &mut buf).unwrap();
                ctx.close(fd).unwrap();
                ctx.unlink(&path).unwrap();
                ops += 6;
            }
            ctx.exit(0);
            total.fetch_add(ops, Ordering::Relaxed);
        })
    };
    barrier.wait();
    let t0 = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    join.join().unwrap();
    (total.load(Ordering::Relaxed), t0.elapsed())
}

/// Median of a sample set (destructive).
fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}

#[cfg(unix)]
extern "C" {
    /// `sync(2)`: flush dirty pages before measuring, so writeback debt
    /// from earlier work (the test suite, prior rounds) is not billed
    /// to whichever mode's window it would land in.
    fn sync();
}

fn settle_disk() {
    #[cfg(unix)]
    // SAFETY: sync(2) takes no arguments and cannot fail.
    unsafe {
        sync()
    };
}

/// A healthy disk fdatasyncs a fresh 400 KiB file well under a
/// millisecond (~0.2–0.3 ms on this class of box). Several times that
/// means the device is sharing spindle or host-side CPU with a noisy
/// neighbor, and the group-commit windows are measuring that neighbor,
/// not the WAL.
const DEGRADED_FSYNC: Duration = Duration::from_millis(1);

/// Median cost of one `fdatasync` after writing 400 KiB — roughly one
/// group-commit flush at this bench's append rate.
fn probe_fsync_cost() -> Duration {
    use std::io::Write;
    let path = std::env::temp_dir().join(format!("idbox-dur-probe-{}", std::process::id()));
    let mut costs = Vec::new();
    for _ in 0..5 {
        let mut f = std::fs::File::create(&path).expect("probe file");
        f.write_all(&vec![0u8; 400 << 10]).expect("probe write");
        let t = Instant::now();
        f.sync_data().expect("probe fdatasync");
        costs.push(t.elapsed().as_secs_f64());
    }
    let _ = std::fs::remove_file(&path);
    Duration::from_secs_f64(median(costs))
}

fn main() {
    let window = Duration::from_millis(env_u64("IDBOX_BENCH_WINDOW_MS", 400));
    let rounds = env_u64("IDBOX_BENCH_ROUNDS", 5) as usize;
    let warmup = (window / 4).max(Duration::from_millis(50));
    let modes = [
        Mode { name: "wal-off", wal: None },
        Mode { name: "group-commit", wal: Some(65536) },
        Mode { name: "sync-every-op", wal: Some(0) },
    ];

    // All kernels live at once, measurement windows interleaved
    // round-robin: machine noise (a shared box, a background flush)
    // then lands on every mode roughly equally instead of biasing
    // whichever mode ran while the box was slow. Per-mode rate is the
    // median across rounds. Each round runs the volatile baseline
    // twice — once before the WAL modes, once after — so a round's
    // baseline is the mean of the windows *bracketing* the durable
    // ones and any linear drift across the round (a neighbor VM
    // spinning up, writeback catching up) cancels out of the paired
    // ratio instead of landing on one side of it.
    let kernels: Vec<_> = modes
        .iter()
        .map(|mode| {
            let dir = wal_dir(mode.name);
            let kernel = share(build_kernel(mode, &dir));
            run_window(&kernel, warmup);
            (dir, kernel)
        })
        .collect();
    let sample_pass = |kernels: &[(PathBuf, SharedKernel)]| {
        let mut samples: Vec<Vec<f64>> = vec![Vec::new(); kernels.len()];
        for _ in 0..rounds {
            settle_disk();
            let rate = |kernel| {
                let (ops, elapsed) = run_window(kernel, window);
                ops as f64 / elapsed.as_secs_f64()
            };
            let off_before = rate(&kernels[0].1);
            let durable: Vec<f64> = kernels[1..].iter().map(|(_, k)| rate(k)).collect();
            let off_after = rate(&kernels[0].1);
            samples[0].push((off_before + off_after) / 2.0);
            for (i, r) in durable.into_iter().enumerate() {
                samples[i + 1].push(r);
            }
        }
        samples
    };
    // Median of per-round ratios of mode `i` against the bracketing
    // wal-off windows of the *same* round: adjacent windows share
    // whatever transient state the box is in, so a slow patch cancels
    // out of the ratio instead of skewing one mode.
    let paired_relative = |samples: &[Vec<f64>], i: usize| {
        median(
            samples[i]
                .iter()
                .zip(&samples[0])
                .map(|(m, off)| m / off)
                .collect(),
        )
    };
    let assert_gate = std::env::var("IDBOX_BENCH_ASSERT_DURABILITY").is_ok();
    let mut samples = sample_pass(&kernels);
    if assert_gate && paired_relative(&samples, 1) < 0.90 {
        // The group-commit windows are the only ones that touch the
        // disk, so debt left by whatever ran before this bench (a test
        // suite, another harness) taxes them but not the volatile
        // baseline. A real regression in the append or flush path
        // fails a quiet-box pass too, so: settle and remeasure once.
        // Only the remeasured pass is reported and gated.
        eprintln!(
            "group commit held only {:.2}x on the first pass; \
             settling the disk and remeasuring once",
            paired_relative(&samples, 1)
        );
        settle_disk();
        std::thread::sleep(Duration::from_secs(2));
        settle_disk();
        samples = sample_pass(&kernels);
    }

    let mut rows = Vec::new();
    let mut group_relative = None;
    for (i, mode) in modes.iter().enumerate() {
        let rate = median(samples[i].clone());
        let relative = paired_relative(&samples, i);
        if mode.name == "group-commit" {
            group_relative = Some(relative);
        }
        let (dir, kernel) = &kernels[i];
        let stats: WalStats = kernel
            .read()
            .vfs()
            .wal()
            .map(|w| w.stats())
            .unwrap_or_else(|| WalStats {
                appends: 0,
                append_bytes: 0,
                fsyncs: 0,
                snapshots: 0,
                errors: 0,
                log_bytes: 0,
                since_snapshot: 0,
                replayed: 0,
                torn_tail: false,
                corrupt_frame: false,
                snapshot_loaded: false,
            });
        println!(
            "{:>14}: {rate:>10.0} syscalls/s  ({relative:.2}x of wal-off)  \
             {} appends, {} fsyncs, {} KiB logged",
            mode.name,
            stats.appends,
            stats.fsyncs,
            stats.append_bytes / 1024
        );
        rows.push(format!(
            "{}\t{rate:.0}\t{relative:.2}\t{}\t{}\t{}",
            mode.name, stats.appends, stats.fsyncs, stats.append_bytes
        ));
        let _ = std::fs::remove_dir_all(dir);
    }
    drop(kernels);
    idbox_bench::write_tsv(
        "BENCH_durability.tsv",
        "mode\tsyscalls_per_sec\trelative_to_off\twal_appends\twal_fsyncs\twal_bytes",
        &rows,
    );
    if assert_gate {
        let r = group_relative.expect("group-commit mode always runs");
        if r >= 0.90 {
            println!("durability assertion passed: group commit holds {r:.2}x of wal-off");
        } else {
            // Before failing, check whether the disk itself is healthy
            // enough for the ratio to mean anything: the durable
            // windows are the only ones touching the device, so a
            // shared host in a bad patch taxes them and nothing else.
            // A measured degraded device self-skips (mirroring the
            // single-core self-skips on the CPU-bound gates); a
            // healthy device with a bad ratio is a real regression.
            let probe = probe_fsync_cost();
            assert!(
                probe > DEGRADED_FSYNC,
                "group commit too expensive: {r:.2}x of the volatile rate (want >= 0.90x; \
                 disk is healthy — 400 KiB fdatasync costs {:.2} ms)",
                probe.as_secs_f64() * 1e3
            );
            println!(
                "durability assertion skipped: shared disk is degraded \
                 (400 KiB fdatasync costs {:.1} ms, healthy ceiling {} ms) — \
                 the {r:.2}x ratio measures neighbor I/O, not the WAL",
                probe.as_secs_f64() * 1e3,
                DEGRADED_FSYNC.as_millis()
            );
        }
    }
}
