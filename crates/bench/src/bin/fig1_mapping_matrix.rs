//! Figure 1 — identity-mapping method property matrix, *measured*.
//!
//! Runs the owner/Fred/George/Eve scenario against all seven methods and
//! prints the observed property matrix next to the paper's.
//!
//! ```text
//! cargo run --release -p idbox-bench --bin fig1_mapping_matrix
//! ```

use idbox_mapping::probe::probe_all;
use idbox_mapping::MethodProperties;

/// The paper's Figure 1 rows, for the side-by-side comparison.
/// (method, privilege, protect, privacy, sharing, return, burden)
const PAPER: &[(&str, &str, &str, &str, &str, &str, &str)] = &[
    ("single", "-", "no", "no", "yes", "yes", "-"),
    ("untrusted", "root", "yes", "no", "yes", "yes", "-"),
    ("private", "root", "yes", "yes", "no", "yes", "per user"),
    ("group", "root", "yes", "fixed", "fixed", "yes", "per group"),
    ("anonymous", "root", "yes", "yes", "no", "no", "-"),
    ("pool", "root", "yes", "yes", "no", "no", "per pool"),
    ("identity box", "-", "yes", "yes", "yes", "yes", "-"),
];

fn main() {
    println!("Figure 1: identity mapping methods (measured by scenario probe)");
    println!("{}", "-".repeat(86));
    println!("{}", MethodProperties::table_header());
    println!("{}", "-".repeat(86));
    let rows = probe_all();
    let mut tsv = Vec::new();
    let mut mismatches = 0;
    for r in &rows {
        println!("{}", r.table_row());
        tsv.push(format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.method,
            if r.requires_privilege { "root" } else { "-" },
            if r.protects_owner { "yes" } else { "no" },
            r.allows_privacy,
            r.allows_sharing,
            if r.allows_return { "yes" } else { "no" },
            r.burden_label,
            r.interventions
        ));
        let paper = PAPER.iter().find(|p| p.0 == r.method).expect("paper row");
        let measured = (
            r.method,
            if r.requires_privilege { "root" } else { "-" },
            if r.protects_owner { "yes" } else { "no" },
            r.allows_privacy.to_string(),
            r.allows_sharing.to_string(),
            if r.allows_return { "yes" } else { "no" },
        );
        let matches = measured.1 == paper.1
            && measured.2 == paper.2
            && measured.3 == paper.3
            && measured.4 == paper.4
            && measured.5 == paper.5;
        if !matches {
            mismatches += 1;
            println!("  ^^ MISMATCH vs paper: {paper:?}");
        }
    }
    println!("{}", "-".repeat(86));
    println!(
        "paper agreement: {}/{} rows match Figure 1 exactly",
        rows.len() - mismatches,
        rows.len()
    );
    println!("(`ops` = measured root interventions to admit the 3 scenario users)");
    idbox_bench::write_tsv(
        "fig1_mapping_matrix.tsv",
        "method\tprivilege\tprotect\tprivacy\tsharing\treturn\tburden\tops",
        &tsv,
    );
}
