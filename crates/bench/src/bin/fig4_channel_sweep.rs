//! Figure 4 — the trap mechanism's data paths.
//!
//! Figure 4(b) contrasts the two ways data crosses between supervisor
//! and tracee: word-at-a-time peek/poke for small amounts, the shared
//! I/O channel (one extra copy) for bulk. This sweep reads payloads of
//! increasing size through the box and reports µs/call and effective
//! bandwidth in both modes, locating the crossover that motivates the
//! channel.
//!
//! ```text
//! cargo run --release -p idbox-bench --bin fig4_channel_sweep
//! ```

use idbox_interpose::{share, AllowAll, GuestCtx, Supervisor};
use idbox_kernel::{Kernel, OpenFlags};
use idbox_types::CostModel;
use idbox_vfs::Cred;
use std::time::Instant;

fn time_reads(ctx: &mut GuestCtx<'_>, size: usize, iters: u64) -> f64 {
    let fd = ctx.open("/tmp/sweep.dat", OpenFlags::rdonly(), 0).unwrap();
    let mut buf = vec![0u8; size];
    // Warm up.
    for _ in 0..iters / 10 + 1 {
        ctx.pread(fd, &mut buf, 0).unwrap();
    }
    let start = Instant::now();
    for _ in 0..iters {
        ctx.pread(fd, &mut buf, 0).unwrap();
    }
    let per_call = start.elapsed().as_secs_f64() / iters as f64;
    ctx.close(fd).unwrap();
    per_call
}

fn setup(model: Option<CostModel>) -> (Supervisor, idbox_kernel::Pid) {
    let kernel = share(Kernel::new());
    let pid = kernel.lock().spawn(Cred::ROOT, "/tmp", "sweep").unwrap();
    let sup = match model {
        None => Supervisor::direct(kernel),
        Some(m) => Supervisor::interposed(kernel, Box::new(AllowAll), m),
    };
    (sup, pid)
}

fn main() {
    let model = idbox_bench::bench_model();
    println!("Figure 4(b): data movement — peek/poke vs I/O channel");
    println!(
        "(payloads <= {} bytes cross word-by-word; larger ones take the channel's extra copy)",
        idbox_interpose::SMALL_IO_MAX
    );
    println!("{}", "-".repeat(78));
    println!(
        "{:<10} {:>12} {:>12} {:>8} {:>14} {:>10}",
        "size", "direct µs", "boxed µs", "ratio", "boxed MB/s", "path"
    );
    println!("{}", "-".repeat(78));
    let mut tsv = Vec::new();
    for size in [1usize, 8, 64, 256, 512, 1024, 4096, 8192, 65536, 1 << 20] {
        let iters: u64 = if size >= 65536 { 300 } else { 3000 };
        let (mut dsup, dpid) = setup(None);
        let mut dctx = GuestCtx::new(&mut dsup, dpid);
        let data = vec![0xAB; size.max(1)];
        dctx.write_file("/tmp/sweep.dat", &data).unwrap();
        let direct = time_reads(&mut dctx, size, iters);

        let (mut bsup, bpid) = setup(Some(model));
        let mut bctx = GuestCtx::new(&mut bsup, bpid);
        bctx.write_file("/tmp/sweep.dat", &data).unwrap();
        let boxed = time_reads(&mut bctx, size, iters);

        let path = if size <= idbox_interpose::SMALL_IO_MAX {
            "peek/poke"
        } else {
            "channel"
        };
        let mbps = size as f64 / boxed / 1e6;
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>7.1}x {:>14.1} {:>10}",
            size,
            direct * 1e6,
            boxed * 1e6,
            boxed / direct,
            mbps,
            path
        );
        tsv.push(format!(
            "{size}\t{:.6}\t{:.6}\t{:.2}\t{path}",
            direct * 1e6,
            boxed * 1e6,
            boxed / direct
        ));
    }
    println!("{}", "-".repeat(78));
    println!("expected shape: ratio peaks for tiny calls (fixed trap cost dominates),");
    println!("falls toward ~2 copies/1 copy as the payload amortizes the trap.");
    idbox_bench::write_tsv(
        "fig4_channel_sweep.tsv",
        "size\tdirect_us\tboxed_us\tratio\tpath",
        &tsv,
    );
}
