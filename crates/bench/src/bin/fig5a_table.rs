//! Figure 5(a) — system-call latency, unmodified vs. identity box.
//!
//! The paper times getpid, stat, open/close, and 1 B / 8 KiB reads and
//! writes; each trapped call is slowed "by an order of magnitude". This
//! harness measures the same seven cases over the simulated kernel and
//! prints µs/call in both modes plus the ratio.
//!
//! ```text
//! cargo run --release -p idbox-bench --bin fig5a_table [iters]
//! ```

use idbox_bench::{bench_model, fig5a_paper_ratio_band, measure_fig5a};

fn main() {
    let iters: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    let model = bench_model();
    println!("Figure 5(a): syscall latency (µs/call), {iters} iterations/case");
    println!("{}", "-".repeat(64));
    println!(
        "{:<14} {:>10} {:>14} {:>9}",
        "syscall", "unmodified", "identity box", "ratio"
    );
    println!("{}", "-".repeat(64));
    let rows = measure_fig5a(model, iters);
    let mut tsv = Vec::new();
    for r in &rows {
        println!(
            "{:<14} {:>10.3} {:>14.3} {:>8.1}x",
            r.case.label(),
            r.direct_us,
            r.boxed_us,
            r.ratio()
        );
        tsv.push(format!(
            "{}\t{:.4}\t{:.4}\t{:.2}",
            r.case.label(),
            r.direct_us,
            r.boxed_us,
            r.ratio()
        ));
    }
    println!("{}", "-".repeat(64));
    let (lo, hi) = fig5a_paper_ratio_band();
    let in_band = rows
        .iter()
        .filter(|r| r.ratio() >= lo && r.ratio() <= hi)
        .count();
    println!(
        "paper: every call slowed by an order of magnitude; measured: {}/{} cases in the {lo:.1}x-{hi:.0}x band",
        in_band,
        rows.len()
    );
    idbox_bench::write_tsv(
        "fig5a_syscall_latency.tsv",
        "case\tdirect_us\tboxed_us\tratio",
        &tsv,
    );
}
