//! Figure 5(a) — system-call latency, unmodified vs. identity box.
//!
//! The paper times getpid, stat, open/close, and 1 B / 8 KiB reads and
//! writes; each trapped call is slowed "by an order of magnitude". This
//! harness measures the same seven cases over the simulated kernel and
//! prints µs/call in both modes plus the ratio — and runs the boxed
//! column twice, fast-path caches (dentry + ACL verdict) on and off,
//! so the per-trap-tax ablation is recorded next to the headline
//! numbers. Both runs land in `results/BENCH_syscall.json`.
//!
//! ```text
//! cargo run --release -p idbox-bench --bin fig5a_table [iters]
//! ```

use idbox_bench::{bench_model, fig5a_paper_ratio_band, measure_fig5a_ablation, MicroAblation};

/// Hand-rolled JSON: the report is flat numbers and known-safe labels,
/// so no serializer dependency is warranted.
fn json_report(iters: u64, rows: &[MicroAblation]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"fig5a_syscall_latency\",\n");
    out.push_str(&format!("  \"iters\": {iters},\n"));
    out.push_str(&format!(
        "  \"host_cores\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str("  \"cases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"case\": \"{}\", \"metadata_heavy\": {}, \"direct_us\": {:.4}, \
             \"boxed_cached_us\": {:.4}, \"boxed_uncached_us\": {:.4}, \
             \"ratio_cached\": {:.2}, \"ratio_uncached\": {:.2}, \"cache_speedup\": {:.3}}}{}\n",
            r.case.label(),
            r.is_metadata_heavy(),
            r.direct_us,
            r.boxed_us,
            r.boxed_nocache_us,
            r.ratio(),
            r.nocache_ratio(),
            r.cache_speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let meta: Vec<&MicroAblation> = rows.iter().filter(|r| r.is_metadata_heavy()).collect();
    let cached: f64 = meta.iter().map(|r| r.boxed_us).sum::<f64>() / meta.len().max(1) as f64;
    let uncached: f64 =
        meta.iter().map(|r| r.boxed_nocache_us).sum::<f64>() / meta.len().max(1) as f64;
    out.push_str("  \"metadata_mix\": {\n");
    out.push_str(&format!(
        "    \"cases\": [{}],\n",
        meta.iter()
            .map(|r| format!("\"{}\"", r.case.label()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("    \"boxed_cached_us\": {cached:.4},\n"));
    out.push_str(&format!("    \"boxed_uncached_us\": {uncached:.4},\n"));
    out.push_str(&format!(
        "    \"cache_speedup\": {:.3}\n",
        uncached / cached
    ));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

fn main() {
    let iters: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    let model = bench_model();
    println!("Figure 5(a): syscall latency (µs/call), {iters} iterations/case");
    println!("{}", "-".repeat(88));
    println!(
        "{:<14} {:>10} {:>14} {:>9} {:>14} {:>9}",
        "syscall", "unmodified", "identity box", "ratio", "box, no cache", "ratio"
    );
    println!("{}", "-".repeat(88));
    let rows = measure_fig5a_ablation(model, iters);
    let mut tsv = Vec::new();
    for r in &rows {
        println!(
            "{:<14} {:>10.3} {:>14.3} {:>8.1}x {:>14.3} {:>8.1}x",
            r.case.label(),
            r.direct_us,
            r.boxed_us,
            r.ratio(),
            r.boxed_nocache_us,
            r.nocache_ratio()
        );
        tsv.push(format!(
            "{}\t{:.4}\t{:.4}\t{:.2}\t{:.4}\t{:.2}",
            r.case.label(),
            r.direct_us,
            r.boxed_us,
            r.ratio(),
            r.boxed_nocache_us,
            r.nocache_ratio()
        ));
    }
    println!("{}", "-".repeat(88));
    let (lo, hi) = fig5a_paper_ratio_band();
    let in_band = rows
        .iter()
        .filter(|r| r.ratio() >= lo && r.ratio() <= hi)
        .count();
    println!(
        "paper: every call slowed by an order of magnitude; measured: {}/{} cases in the {lo:.1}x-{hi:.0}x band",
        in_band,
        rows.len()
    );
    let meta: Vec<&MicroAblation> = rows.iter().filter(|r| r.is_metadata_heavy()).collect();
    let speedup = meta.iter().map(|r| r.boxed_nocache_us).sum::<f64>()
        / meta.iter().map(|r| r.boxed_us).sum::<f64>().max(f64::MIN_POSITIVE);
    println!(
        "fast-path caches on the metadata-heavy mix (stat, open-close): {speedup:.2}x less boxed latency than caches off"
    );
    idbox_bench::write_tsv(
        "fig5a_syscall_latency.tsv",
        "case\tdirect_us\tboxed_us\tratio\tboxed_nocache_us\tratio_nocache",
        &tsv,
    );
    idbox_bench::write_text("BENCH_syscall.json", &json_report(iters, &rows));
}
