//! Figure 5(b) — application runtime, unmodified vs. identity box.
//!
//! Runs the six synthetic applications (AMANDA, BLAST, CMS, HF, IBIS,
//! make) in both modes on the simulated kernel and reports the measured
//! slowdown next to the paper's. The paper's shape: five scientific
//! codes at 0.7-6.5 %, make (metadata-intensive) at 35 %.
//!
//! ```text
//! cargo run --release -p idbox-bench --bin fig5b_table [scale] [trials]
//! ```

use idbox_bench::bench_model;
use idbox_workloads::{time_direct_and_boxed, Scale};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1.0);
    let trials: u32 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let model = bench_model();
    println!(
        "Figure 5(b): application runtime overhead (scale={scale}, best of {trials})"
    );
    println!("{}", "-".repeat(78));
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>10} {:>12}",
        "app", "direct (ms)", "boxed (ms)", "measured", "paper", "traps"
    );
    println!("{}", "-".repeat(78));
    let results = time_direct_and_boxed(Scale(scale), model, trials).expect("measure");
    let mut tsv = Vec::new();
    for m in &results {
        println!(
            "{:<8} {:>12.1} {:>12.1} {:>9.1}% {:>9.1}% {:>12}",
            m.name,
            m.direct.as_secs_f64() * 1e3,
            m.boxed.as_secs_f64() * 1e3,
            m.overhead_pct(),
            m.paper_pct,
            m.report.traps
        );
        tsv.push(format!(
            "{}\t{:.4}\t{:.4}\t{:.2}\t{:.1}\t{}",
            m.name,
            m.direct.as_secs_f64(),
            m.boxed.as_secs_f64(),
            m.overhead_pct(),
            m.paper_pct,
            m.report.traps
        ));
    }
    println!("{}", "-".repeat(78));
    // Shape verdicts.
    let make = results.iter().find(|m| m.name == "make").expect("make row");
    let sci: Vec<_> = results.iter().filter(|m| m.name != "make").collect();
    let sci_max = sci
        .iter()
        .map(|m| m.overhead_pct())
        .fold(f64::NAN, f64::max);
    println!(
        "shape: scientific apps {:.1}%..{:.1}% (paper 0.7%..6.5%); make {:.1}% (paper 35%)",
        sci.iter().map(|m| m.overhead_pct()).fold(f64::NAN, f64::min),
        sci_max,
        make.overhead_pct()
    );
    println!(
        "verdict: make dominates = {}; scientific apps stay marginal = {}",
        make.overhead_pct() > sci_max,
        sci_max < 15.0
    );
    idbox_bench::write_tsv(
        "fig5b_applications.tsv",
        "app\tdirect_s\tboxed_s\toverhead_pct\tpaper_pct\ttraps",
        &tsv,
    );
}
