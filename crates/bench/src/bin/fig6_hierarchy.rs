//! Figure 6 / Section 9 — the hierarchical identity namespace, and the
//! in-kernel vs. user-level ablation.
//!
//! Builds the figure's example tree, demonstrates subtree-scoped
//! management, then measures the same identity-box policy running (a)
//! behind the full interposition trap and (b) "in the kernel" (a direct
//! function call), supporting the paper's closing claim that an OS
//! implementation keeps the semantics and sheds the overhead.
//!
//! ```text
//! cargo run --release -p idbox-bench --bin fig6_hierarchy
//! ```

use idbox_core::IdentityBoxPolicy;
use idbox_hier::{DomainTree, HierId, HierPolicy};
use idbox_interpose::{share, GuestCtx, SharedKernel, Supervisor};
use idbox_kernel::Pid;
use idbox_types::CostModel;
use idbox_vfs::Cred;
use parking_lot::Mutex;
use std::sync::Arc;

/// A deferred supervisor constructor (one per ablation config).
type SupFactory = Box<dyn Fn() -> Supervisor>;
use std::time::Instant;

fn policy(domain: &HierId, tree: &Arc<Mutex<DomainTree>>) -> Box<HierPolicy> {
    Box::new(HierPolicy::new(
        domain.clone(),
        Arc::clone(tree),
        IdentityBoxPolicy::new(
            domain.to_identity(),
            Cred::new(1000, 1000),
            "/tmp/.passwd",
            true,
        ),
    ))
}

fn spawn_in(kernel: &SharedKernel, tree: &Arc<Mutex<DomainTree>>, d: &HierId) -> Pid {
    let k = kernel.lock();
    let pid = k.spawn(Cred::new(1000, 1000), "/tmp", "proc").unwrap();
    k.set_identity(pid, d.to_identity()).unwrap();
    tree.lock().assign(pid, d.clone()).unwrap();
    pid
}

fn main() {
    let model = idbox_bench::bench_model();

    // --- The Figure 6 tree.
    let tree = Arc::new(Mutex::new(DomainTree::new()));
    let root = HierId::root();
    {
        let mut t = tree.lock();
        let dthain = t.create(&root, &root, "dthain").unwrap();
        let httpd = t.create(&root, &root, "httpd").unwrap();
        let grid = t.create(&root, &root, "grid").unwrap();
        t.create(&dthain, &dthain, "visitor").unwrap();
        t.create(&httpd, &httpd, "webapp").unwrap();
        for anon in ["anon2", "anon5"] {
            t.create(&grid, &grid, anon).unwrap();
        }
        println!("Figure 6: hierarchical user identity");
        fn show(t: &DomainTree, d: &HierId, depth: usize) {
            println!("{}{}", "  ".repeat(depth), d);
            for c in t.children(d) {
                show(t, &c, depth + 1);
            }
        }
        show(&t, &root, 0);
    }
    println!();

    // --- Ablation: getpid+stat mix under the same policy, three ways.
    let kernel = share(idbox_kernel::Kernel::new());
    let visitor = root
        .child("dthain")
        .unwrap()
        .child("visitor")
        .unwrap();
    assert!(tree.lock().exists(&visitor), "tree built above");
    let iters = 30_000u64;
    println!("Section 9 ablation: identity enforcement cost per call ({iters} iters)");
    println!("{}", "-".repeat(66));
    println!(
        "{:<34} {:>12} {:>12}",
        "configuration", "getpid µs", "stat µs"
    );
    println!("{}", "-".repeat(66));
    let mut tsv = Vec::new();
    let configs: [(&str, SupFactory); 3] = [
        (
            "no identity (plain kernel)",
            Box::new({
                let kernel = Arc::clone(&kernel);
                move || Supervisor::direct(Arc::clone(&kernel))
            }),
        ),
        (
            "identity box, in-kernel (proposed)",
            Box::new({
                let kernel = Arc::clone(&kernel);
                let tree = Arc::clone(&tree);
                let visitor = visitor.clone();
                move || Supervisor::in_kernel(Arc::clone(&kernel), policy(&visitor, &tree))
            }),
        ),
        (
            "identity box, interposed (this paper)",
            Box::new({
                let kernel = Arc::clone(&kernel);
                let tree = Arc::clone(&tree);
                let visitor = visitor.clone();
                move || {
                    Supervisor::interposed(
                        Arc::clone(&kernel),
                        policy(&visitor, &tree),
                        model,
                    )
                }
            }),
        ),
    ];
    for (name, make_sup) in configs {
        let pid = spawn_in(&kernel, &tree, &visitor);
        {
            // Stage the probe file outside any box, world-readable.
            let mut k = kernel.lock();
            let root = k.vfs().root();
            k.vfs_mut()
                .write_file(root, "/tmp/probe.dat", b"x", &Cred::ROOT)
                .unwrap();
            k.vfs_mut()
                .chmod(root, "/tmp/probe.dat", 0o666, &Cred::ROOT)
                .unwrap();
        }
        let mut sup = make_sup();
        let mut ctx = GuestCtx::new(&mut sup, pid);
        // getpid
        for _ in 0..1000 {
            ctx.getpid();
        }
        let start = Instant::now();
        for _ in 0..iters {
            ctx.getpid();
        }
        let getpid_us = start.elapsed().as_secs_f64() / iters as f64 * 1e6;
        // stat
        let start = Instant::now();
        for _ in 0..iters {
            ctx.stat("/tmp/probe.dat").unwrap();
        }
        let stat_us = start.elapsed().as_secs_f64() / iters as f64 * 1e6;
        println!("{name:<34} {getpid_us:>12.3} {stat_us:>12.3}");
        tsv.push(format!("{name}\t{getpid_us:.4}\t{stat_us:.4}"));
        let _ = CostModel::calibrated();
    }
    println!("{}", "-".repeat(66));
    println!("expected shape: in-kernel enforcement costs little over the plain");
    println!("kernel; interposition pays the order-of-magnitude trap penalty.");
    idbox_bench::write_tsv("fig6_hier_ablation.tsv", "config\tgetpid_us\tstat_us", &tsv);
}
