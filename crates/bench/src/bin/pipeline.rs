//! Single-connection metadata throughput: serial vs pipelined vs batch.
//!
//! Wire protocol v1 was strict request/response, so one connection's
//! metadata rate was capped at one round trip per operation no matter
//! how fast the server got. Protocol gen 2 breaks the cap two ways:
//! pipelining (many in-flight frames, `id=`-correlated replies) and the
//! `batch` RPC (many sub-operations in one frame). This bench drives
//! one authenticated connection with a pure `stat` workload in each
//! mode and reports operations per second, plus the speedup over the
//! serial baseline, into `results/BENCH_pipeline.tsv`.
//!
//! ```text
//! cargo run --release -p idbox-bench --bin pipeline
//! ```
//!
//! Each mode also reports *where the time went* on the server: the
//! event-loop lag histogram is diffed around the mode's window, so the
//! `loop_p99_us` column says how long one readiness cycle ran — the
//! number that separates "the wire is the bottleneck" (tiny cycles,
//! many round trips) from "dispatch is" (few cycles, each doing real
//! work).
//!
//! Knobs: `IDBOX_BENCH_WINDOW_MS` shrinks the per-mode measurement
//! window (CI smoke); `IDBOX_PIPELINE_DEPTH` (comma-separated) picks
//! the pipeline depths to sweep, default `4,16,64`. With
//! `IDBOX_BENCH_ASSERT_PIPELINE` set, the run fails unless pipelining
//! at depth >= 16 clears 5x serial — skipped on single-core hosts,
//! where client and server contend for one hardware thread.

use idbox_acl::{Acl, Rights};
use idbox_auth::{CertificateAuthority, ClientCredential, ServerVerifier};
use idbox_chirp::{BatchOp, ChirpClient, ChirpServer, ServerConfig};
use idbox_obs::{lag_percentile_from, LOOP_LAG_BUCKETS};
use idbox_types::AuthMethod;
use std::time::{Duration, Instant};

const WINDOW_MS: u64 = 1500;
const FILE: &str = "/bench/data.dat";

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn server() -> (idbox_chirp::ChirpServerHandle, CertificateAuthority) {
    let ca = CertificateAuthority::new("/O=UnivNowhere CA", 0xBE7C4);
    let mut verifier = ServerVerifier::new();
    verifier.accept = vec![AuthMethod::Globus];
    verifier.cas.trust(ca.clone());
    let mut root_acl = Acl::empty();
    root_acl.set_reserve("globus:/O=UnivNowhere/*", Rights::LIST, Rights::RWLAX);
    let s = ChirpServer::new(ServerConfig {
        name: "pipeline".into(),
        verifier,
        root_acl,
        ..Default::default()
    })
    .unwrap();
    (s.spawn().unwrap(), ca)
}

/// Serial baseline: one `stat` per round trip, v1 style.
fn run_serial(c: &mut ChirpClient, window: Duration) -> f64 {
    let t0 = Instant::now();
    let mut ops = 0u64;
    while t0.elapsed() < window {
        c.stat(FILE).unwrap();
        ops += 1;
    }
    ops as f64 / t0.elapsed().as_secs_f64()
}

/// Pipelined: bursts of `depth` stats per round trip.
fn run_pipelined(c: &mut ChirpClient, depth: usize, window: Duration) -> f64 {
    let t0 = Instant::now();
    let mut ops = 0u64;
    while t0.elapsed() < window {
        let mut p = c.pipeline();
        for _ in 0..depth {
            p.stat(FILE);
        }
        for r in p.run().unwrap() {
            r.result.unwrap();
            ops += 1;
        }
    }
    ops as f64 / t0.elapsed().as_secs_f64()
}

/// Batched: `depth` stat sub-operations per single `batch` frame.
fn run_batched(c: &mut ChirpClient, depth: usize, window: Duration) -> f64 {
    let ops_tmpl: Vec<BatchOp> = (0..depth)
        .map(|_| BatchOp::Stat(FILE.to_string()))
        .collect();
    let t0 = Instant::now();
    let mut ops = 0u64;
    while t0.elapsed() < window {
        for r in c.batch(&ops_tmpl).unwrap() {
            r.stat().unwrap();
            ops += 1;
        }
    }
    ops as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let window = Duration::from_millis(env_u64("IDBOX_BENCH_WINDOW_MS", WINDOW_MS));
    let warmup = (window / 4).max(Duration::from_millis(50));
    let depths: Vec<usize> = std::env::var("IDBOX_PIPELINE_DEPTH")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![4, 16, 64]);

    let (handle, ca) = server();
    let creds = vec![ClientCredential::Globus(ca.issue("/O=UnivNowhere/CN=Fred"))];
    let mut c = ChirpClient::connect(handle.addr(), &creds).unwrap();
    c.mkdir("/bench", 0o755).unwrap();
    c.put(FILE, &vec![7u8; 4096]).unwrap();

    // Loop-lag p99 across one mode's window: diff the server's merged
    // histogram around the run.
    let lag_window = |handle: &idbox_chirp::ChirpServerHandle,
                      before: [u64; LOOP_LAG_BUCKETS]|
     -> String {
        let after = handle.loop_stats().lag_buckets();
        let diff: [u64; LOOP_LAG_BUCKETS] = std::array::from_fn(|i| after[i] - before[i]);
        lag_percentile_from(&diff, 99.0).map_or_else(|| "-".to_string(), |v| v.to_string())
    };

    let mut rows = Vec::new();
    // Warm the caches and the session before the serial baseline so
    // every mode is compared warm-on-warm.
    run_serial(&mut c, warmup);
    let lag0 = handle.loop_stats().lag_buckets();
    let serial = run_serial(&mut c, window);
    let lag = lag_window(&handle, lag0);
    println!("serial        : {serial:>10.0} ops/s  (baseline, loop p99 {lag} us)");
    rows.push(format!("serial\t1\t{serial:.0}\t1.00\t{lag}\t{cores}"));

    let mut deep_speedup = 0.0f64;
    for &depth in &depths {
        run_pipelined(&mut c, depth, warmup);
        let lag0 = handle.loop_stats().lag_buckets();
        let rate = run_pipelined(&mut c, depth, window);
        let lag = lag_window(&handle, lag0);
        let speedup = rate / serial;
        if depth >= 16 {
            deep_speedup = deep_speedup.max(speedup);
        }
        println!(
            "pipeline d={depth:<3}: {rate:>10.0} ops/s  ({speedup:.2}x serial, loop p99 {lag} us)"
        );
        rows.push(format!("pipeline\t{depth}\t{rate:.0}\t{speedup:.2}\t{lag}\t{cores}"));
    }

    let batch_depth = 64;
    run_batched(&mut c, batch_depth, warmup);
    let lag0 = handle.loop_stats().lag_buckets();
    let rate = run_batched(&mut c, batch_depth, window);
    let lag = lag_window(&handle, lag0);
    let speedup = rate / serial;
    println!(
        "batch    n={batch_depth:<2}: {rate:>10.0} ops/s  ({speedup:.2}x serial, loop p99 {lag} us)"
    );
    rows.push(format!("batch\t{batch_depth}\t{rate:.0}\t{speedup:.2}\t{lag}\t{cores}"));

    if cores < 2 {
        println!("note: only {cores} core(s) available; client and server are core-bound");
    }
    // Optional regression gate: pipelining must actually beat the
    // round-trip cap. Skipped — not weakened — on single-core hosts.
    if std::env::var("IDBOX_BENCH_ASSERT_PIPELINE").is_ok() {
        if cores < 2 {
            println!("pipeline assertion skipped: requires >= 2 cores, host has {cores}");
        } else {
            assert!(
                deep_speedup >= 5.0,
                "pipelining failed to clear the round-trip cap: best deep-pipeline \
                 speedup {deep_speedup:.2}x < 5x serial on a {cores}-core host"
            );
            println!("pipeline assertion passed: {deep_speedup:.2}x serial at depth >= 16");
        }
    }

    idbox_bench::write_tsv(
        "BENCH_pipeline.tsv",
        "mode\tdepth\tops_per_sec\tspeedup_vs_serial\tloop_p99_us\thost_cores",
        &rows,
    );
    let _ = c.quit();
    handle.shutdown();
}
