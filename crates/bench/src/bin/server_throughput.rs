//! Server throughput under concurrent clients.
//!
//! Before the reader/writer kernel split, every Chirp request — even a
//! pure read — serialized on one exclusive kernel lock, so adding
//! clients added no throughput. This bench spawns one server and drives
//! it with 1/2/4/8 concurrent authenticated clients running a
//! read-heavy stat/open/pread/close loop, and reports aggregate
//! requests per second at each level, plus per-level p50/p99 dispatch
//! latency from the kernel's histograms (bucket ceilings, ns).
//!
//! Every level runs an untimed warm-up pass first, so `speedup_vs_1`
//! compares warm runs against a warm single-client baseline instead of
//! folding cold-cache startup into whichever level happened to run
//! first. Each row also reports the dentry- and verdict-cache hit rates
//! observed during its timed window.
//!
//! After the levels finish, an admin client pulls the `metrics` RPC and
//! the Prometheus exposition is snapshotted into
//! `results/server_throughput_metrics.prom`, so each bench run leaves
//! the per-identity accounting it generated next to its TSV.
//!
//! ```text
//! cargo run --release -p idbox-bench --bin server_throughput
//! ```
//!
//! `--faults` switches to the degradation-under-faults experiment: a
//! seeded [`FaultProxy`] between clients and server drops a growing
//! fraction of request connections while the server's filesystem
//! reports EIO at the same rate, and retrying clients drive an
//! idempotent workload through the storm. The sweep reports goodput,
//! failures, and retry/reconnect work per fault rate, and writes
//! `results/BENCH_faults.json`. Each client also periodically probes a
//! tree it has no rights to; the run aborts if any probe ever succeeds
//! (a fail-open verdict — faults must never become allows).
//!
//! `--overhead` measures the cost of the self-observation plane: the
//! same read-heavy workload runs in alternating windows with shard-lock
//! profiling + flight recording enabled and disabled, best-of-3 each
//! side, and reports the on/off throughput ratio into
//! `results/BENCH_overhead.tsv`. With `IDBOX_BENCH_ASSERT_OVERHEAD`
//! set (and >= 2 cores, where the ratio is not pure scheduler noise),
//! the run fails if the enabled side falls below 97% of the disabled
//! side — the observability plane must stay cheap enough to leave on.
//!
//! `IDBOX_BENCH_WINDOW_MS` and `IDBOX_BENCH_LEVELS` (comma-separated
//! client counts) shrink the run for CI smoke tests.

use idbox_acl::{Acl, Rights};
use idbox_auth::{CertificateAuthority, ClientCredential, ServerVerifier};
use idbox_chirp::{ChirpClient, ChirpServer, RetryPolicy, ServerConfig};
use idbox_kernel::OpenFlags;
use idbox_testkit::fault::{FaultPlan, FaultProxy};
use idbox_types::AuthMethod;
use idbox_vfs::FaultHook;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Reads per open: the loop is stat, open, PREADS x pread, close —
/// read-heavy, like a real client walking and reading files.
const PREADS: u64 = 8;
const REQS_PER_ROUND: u64 = 3 + PREADS;

/// Default measurement window per concurrency level.
const WINDOW_MS: u64 = 1500;

fn server() -> (idbox_chirp::ChirpServerHandle, CertificateAuthority) {
    let ca = CertificateAuthority::new("/O=UnivNowhere CA", 0xBE7C4);
    let mut verifier = ServerVerifier::new();
    verifier.accept = vec![AuthMethod::Globus];
    verifier.cas.trust(ca.clone());
    let mut root_acl = Acl::empty();
    root_acl.set_reserve("globus:/O=UnivNowhere/*", Rights::LIST, Rights::RWLAX);
    let s = ChirpServer::new(ServerConfig {
        name: "throughput".into(),
        verifier,
        root_acl,
        admins: vec![format!("globus:{ADMIN}")],
        ..Default::default()
    })
    .unwrap();
    (s.spawn().unwrap(), ca)
}

const ADMIN: &str = "/O=UnivNowhere/CN=Admin";

/// Run `n` clients against `addr` for `window`; return total requests
/// served across all of them.
fn run_level(
    addr: std::net::SocketAddr,
    ca: &CertificateAuthority,
    n: usize,
    window: Duration,
) -> (u64, Duration) {
    let start_line = Arc::new(Barrier::new(n + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..n)
        .map(|i| {
            let ca = ca.clone();
            let start_line = Arc::clone(&start_line);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let creds = vec![ClientCredential::Globus(
                    ca.issue(format!("/O=UnivNowhere/CN=User{i}")),
                )];
                let mut c = ChirpClient::connect(addr, &creds).unwrap();
                let file = format!("/u{i}/data.dat");
                // Levels share the server, so the directory may already
                // exist from a smaller level's run.
                match c.mkdir(&format!("/u{i}"), 0o755) {
                    Ok(()) | Err(idbox_types::Errno::EEXIST) => {}
                    Err(e) => panic!("mkdir /u{i}: {e:?}"),
                }
                c.put(&file, &vec![7u8; 4096]).unwrap();
                start_line.wait();
                let mut reqs = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    c.stat(&file).unwrap();
                    let fd = c.open(&file, OpenFlags::rdonly(), 0).unwrap();
                    for _ in 0..PREADS {
                        let data = c.pread(fd, 4096, 0).unwrap();
                        assert_eq!(data.len(), 4096);
                    }
                    c.close(fd).unwrap();
                    reqs += REQS_PER_ROUND;
                }
                let _ = c.quit();
                reqs
            })
        })
        .collect();
    start_line.wait();
    let t0 = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    (total, t0.elapsed())
}

/// Sum a per-identity counter family out of a Prometheus exposition.
fn family_sum(exposition: &str, family: &str) -> u64 {
    exposition
        .lines()
        .filter(|l| l.starts_with(family))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        .sum()
}

/// Verdict-cache (hits, misses) across all identities on the server.
fn verdict_counts(exposition: &str) -> (u64, u64) {
    (
        family_sum(exposition, "idbox_verdict_cache_hits_total{"),
        family_sum(exposition, "idbox_verdict_cache_misses_total{"),
    )
}

fn hit_pct(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        100.0 * hits as f64 / (hits + misses) as f64
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One row of the degradation-under-faults sweep.
struct FaultRow {
    fault_pct: u32,
    reqs_per_sec: f64,
    ok: u64,
    failed: u64,
    fail_open: u64,
    retries: u64,
    reconnects: u64,
    wire_faults: u64,
    vfs_faults: u64,
}

/// Drive `clients` retrying clients through a fault proxy at
/// `fault_pct` (% of request lines dropping their connection, % of
/// filesystem data ops reporting EIO) for `window`.
fn run_fault_level(
    ca: &CertificateAuthority,
    fault_pct: u32,
    clients: usize,
    window: Duration,
    seed: u64,
) -> FaultRow {
    let (handle, _) = {
        // Fresh server per rate, so histograms and counters are not
        // polluted across levels; reuse the caller's CA for clients.
        let mut verifier = ServerVerifier::new();
        verifier.accept = vec![AuthMethod::Globus];
        verifier.cas.trust(ca.clone());
        let mut root_acl = Acl::empty();
        root_acl.set_reserve("globus:/O=UnivNowhere/*", Rights::LIST, Rights::RWLAX);
        let s = ChirpServer::new(ServerConfig {
            name: format!("faults-{fault_pct}"),
            verifier,
            root_acl,
            ..Default::default()
        })
        .unwrap();
        (s.spawn().unwrap(), ())
    };
    let ppm = fault_pct * 10_000; // 1 % = 10_000 ppm
    let plan = FaultPlan::with_rates(seed, ppm, ppm);
    let proxy = FaultProxy::spawn(handle.addr(), plan.clone()).unwrap();

    // Stage each client's file over the clean, direct path — before the
    // filesystem hook arms, so staging cannot eat an injected EIO.
    for i in 0..clients {
        let creds = vec![ClientCredential::Globus(
            ca.issue(format!("/O=UnivNowhere/CN=User{i}")),
        )];
        let mut c = ChirpClient::connect(handle.addr(), &creds).unwrap();
        c.mkdir(&format!("/u{i}"), 0o755).unwrap();
        c.put(&format!("/u{i}/data.dat"), &vec![7u8; 4096]).unwrap();
        let _ = c.quit();
    }
    // A directory no bench client may touch: reserve-created under an
    // identity that never runs a workload. The clients probe it during
    // the storm — a success there would be a fail-open verdict (a fault
    // turned into an allow), which is a bug at any fault rate.
    {
        let creds = vec![ClientCredential::Globus(
            ca.issue("/O=UnivNowhere/CN=Warden"),
        )];
        let mut c = ChirpClient::connect(handle.addr(), &creds).unwrap();
        c.mkdir("/private", 0o700).unwrap();
        c.put("/private/secret", b"keep out").unwrap();
        let _ = c.quit();
    }
    {
        let plan = plan.clone();
        handle
            .kernel()
            .write()
            .vfs_mut()
            .set_fault_hook(Some(FaultHook::new(move |op, _| plan.vfs_fault(op))));
    }

    let start_line = Arc::new(Barrier::new(clients + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let addr = proxy.addr();
    let workers: Vec<_> = (0..clients)
        .map(|i| {
            let ca = ca.clone();
            let start_line = Arc::clone(&start_line);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let creds = vec![ClientCredential::Globus(
                    ca.issue(format!("/O=UnivNowhere/CN=User{i}")),
                )];
                // Deep attempt budget: a retry's *reconnect* re-runs
                // the multi-line auth handshake, where every line draws
                // at the drop rate — so per-attempt failure odds are
                // several times the per-line rate.
                let policy = RetryPolicy {
                    max_attempts: 16,
                    base_delay: Duration::from_millis(1),
                    max_delay: Duration::from_millis(20),
                    budget: Duration::from_secs(10),
                    jitter_seed: seed ^ i as u64,
                    io_timeout: Some(Duration::from_secs(2)),
                    ..Default::default()
                };
                let mut c = ChirpClient::connect_with(addr, &creds, policy).unwrap();
                let file = format!("/u{i}/data.dat");
                let dir = format!("/u{i}");
                start_line.wait();
                let (mut ok, mut failed, mut fail_open) = (0u64, 0u64, 0u64);
                let mut rounds = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Idempotent-only mix: everything here is safe to
                    // retry, so under the policy the storm should cost
                    // latency, not correctness.
                    let results = [
                        c.stat(&file).map(|_| ()),
                        c.get(&file).map(|_| ()),
                        c.readdir(&dir).map(|_| ()),
                    ];
                    for r in results {
                        match r {
                            Ok(()) => ok += 1,
                            Err(_) => failed += 1,
                        }
                    }
                    // Every 32nd round, probe the forbidden tree. The
                    // only acceptable *answer* is EACCES; a success is
                    // fail-open. A transport failure (retry budget spent
                    // mid-storm) is neither — the verdict never arrived.
                    if rounds.is_multiple_of(32) && c.get("/private/secret").is_ok() {
                        fail_open += 1;
                    }
                    rounds += 1;
                }
                (ok, failed, fail_open, c.retries(), c.reconnects())
            })
        })
        .collect();
    start_line.wait();
    let t0 = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let mut row = FaultRow {
        fault_pct,
        reqs_per_sec: 0.0,
        ok: 0,
        failed: 0,
        fail_open: 0,
        retries: 0,
        reconnects: 0,
        wire_faults: 0,
        vfs_faults: 0,
    };
    for w in workers {
        let (ok, failed, fail_open, retries, reconnects) = w.join().unwrap();
        row.ok += ok;
        row.failed += failed;
        row.fail_open += fail_open;
        row.retries += retries;
        row.reconnects += reconnects;
    }
    row.reqs_per_sec = row.ok as f64 / t0.elapsed().as_secs_f64();
    row.wire_faults = plan.wire_injected();
    row.vfs_faults = plan.vfs_injected();
    drop(proxy);
    handle.shutdown();
    row
}

/// The `--faults` experiment: sweep injected-fault rates and report how
/// goodput degrades while the retry layer keeps the failure count at
/// (ideally) zero.
fn run_faults() {
    let ca = CertificateAuthority::new("/O=UnivNowhere CA", 0xBE7C4);
    let window = Duration::from_millis(env_u64("IDBOX_BENCH_WINDOW_MS", WINDOW_MS));
    let clients = env_u64("IDBOX_BENCH_FAULT_CLIENTS", 4) as usize;
    let seed = env_u64("IDBOX_BENCH_FAULT_SEED", 0x1DB0F);
    let mut rows = Vec::new();
    for fault_pct in [0u32, 5, 10, 20] {
        let row = run_fault_level(&ca, fault_pct, clients, window, seed);
        println!(
            "{:>2}% faults: {:>9.0} req/s  ok {} failed {} fail_open {}  retries {} \
             reconnects {}  injected wire {} vfs {}",
            row.fault_pct,
            row.reqs_per_sec,
            row.ok,
            row.failed,
            row.fail_open,
            row.retries,
            row.reconnects,
            row.wire_faults,
            row.vfs_faults
        );
        rows.push(row);
    }
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"server_throughput_faults\",\n");
    json.push_str(&format!("  \"window_ms\": {},\n", window.as_millis()));
    json.push_str(&format!("  \"clients\": {clients},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"fault_pct\": {}, \"reqs_per_sec\": {:.1}, \"ok\": {}, \"failed\": {}, \
             \"fail_open\": {}, \"retries\": {}, \"reconnects\": {}, \"wire_faults\": {}, \
             \"vfs_faults\": {}}}{}\n",
            r.fault_pct,
            r.reqs_per_sec,
            r.ok,
            r.failed,
            r.fail_open,
            r.retries,
            r.reconnects,
            r.wire_faults,
            r.vfs_faults,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    idbox_bench::write_text("BENCH_faults.json", &json);
    if let Some(worst) = rows.iter().find(|r| r.failed > 0) {
        println!(
            "note: {} operations failed at {}% faults (retry budget exhausted)",
            worst.failed, worst.fault_pct
        );
    } else {
        println!("all operations succeeded at every fault rate (faults fully masked)");
    }
    // Not gated behind an env knob: a fail-open verdict — the forbidden
    // probe succeeding because a fault confused the policy path — is a
    // security bug at any fault rate, in any run.
    let fail_open: u64 = rows.iter().map(|r| r.fail_open).sum();
    assert_eq!(
        fail_open, 0,
        "{fail_open} fail-open verdict(s): a denied operation succeeded under injected faults"
    );
    println!("fail-open check passed: every forbidden probe stayed denied under the storm");
}

/// The `--overhead` experiment: is always-on observability actually
/// affordable? Windows alternate enabled/disabled on the same warm
/// server so clock drift and thermal state hit both sides equally, and
/// each side keeps its best of three — comparing best-vs-best filters
/// scheduler hiccups out of both numerator and denominator.
fn run_overhead() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let window = Duration::from_millis(env_u64("IDBOX_BENCH_WINDOW_MS", WINDOW_MS));
    let warmup = (window / 4).max(Duration::from_millis(50));
    let clients = env_u64("IDBOX_BENCH_OVERHEAD_CLIENTS", 2) as usize;
    let (handle, ca) = server();
    let addr = handle.addr();
    run_level(addr, &ca, clients, warmup);
    let set_plane = |on: bool| {
        parking_lot::set_lock_profiling(on);
        idbox_obs::flight::set_flight_enabled(on);
    };
    let (mut best_on, mut best_off) = (0.0f64, 0.0f64);
    for _ in 0..3 {
        set_plane(true);
        let (reqs, elapsed) = run_level(addr, &ca, clients, window);
        best_on = best_on.max(reqs as f64 / elapsed.as_secs_f64());
        set_plane(false);
        let (reqs, elapsed) = run_level(addr, &ca, clients, window);
        best_off = best_off.max(reqs as f64 / elapsed.as_secs_f64());
    }
    // Leave the plane the way production runs it.
    set_plane(true);
    let ratio = if best_off > 0.0 { best_on / best_off } else { 0.0 };
    println!(
        "observation plane on : {best_on:>10.0} req/s\n\
         observation plane off: {best_off:>10.0} req/s\n\
         on/off ratio         : {ratio:.4}  ({:+.2}% overhead)",
        (1.0 - ratio) * 100.0
    );
    idbox_bench::write_tsv(
        "BENCH_overhead.tsv",
        "clients\treqs_per_sec_on\treqs_per_sec_off\ton_over_off\thost_cores",
        &[format!(
            "{clients}\t{best_on:.0}\t{best_off:.0}\t{ratio:.4}\t{cores}"
        )],
    );
    if std::env::var("IDBOX_BENCH_ASSERT_OVERHEAD").is_ok() {
        if cores < 2 {
            println!("overhead assertion skipped: requires >= 2 cores, host has {cores}");
        } else {
            assert!(
                ratio >= 0.97,
                "self-observation plane too expensive: enabled throughput is \
                 {:.1}% of disabled ({best_on:.0} vs {best_off:.0} req/s, want >= 97%)",
                ratio * 100.0
            );
            println!("overhead assertion passed: {:.2}% of disabled", ratio * 100.0);
        }
    }
    handle.shutdown();
}

fn main() {
    if std::env::args().any(|a| a == "--faults") {
        run_faults();
        return;
    }
    if std::env::args().any(|a| a == "--overhead") {
        run_overhead();
        return;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let window = Duration::from_millis(env_u64("IDBOX_BENCH_WINDOW_MS", WINDOW_MS));
    let warmup = (window / 4).max(Duration::from_millis(50));
    let levels: Vec<usize> = std::env::var("IDBOX_BENCH_LEVELS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    let (handle, ca) = server();
    let addr = handle.addr();
    let admin_creds = vec![ClientCredential::Globus(ca.issue(ADMIN))];
    let mut admin = ChirpClient::connect(addr, &admin_creds).unwrap();
    let mut rows = Vec::new();
    let mut single_rate = 0.0f64;
    let mut best_speedup = 0.0f64;
    for n in &levels {
        let n = *n;
        // Untimed warm-up: connections, directories, and the dentry +
        // verdict caches are all hot before the clock starts, at every
        // level — so speedup_vs_1 compares warm against warm.
        run_level(addr, &ca, n, warmup);
        // Snapshot the kernel's latency histograms and the cache
        // counters around the timed window: the diffs isolate this
        // level's dispatches.
        let level_start = handle.kernel().read().latency().snapshot();
        let (d_hits0, d_misses0) = handle.kernel().read().vfs().dentry_stats();
        let (v_hits0, v_misses0) = verdict_counts(&admin.metrics().unwrap());
        let (reqs, elapsed) = run_level(addr, &ca, n, window);
        let level_end = handle.kernel().read().latency().snapshot();
        let (d_hits1, d_misses1) = handle.kernel().read().vfs().dentry_stats();
        let (v_hits1, v_misses1) = verdict_counts(&admin.metrics().unwrap());
        let w = level_end.diff(&level_start);
        let p50 = w.overall_percentile(50.0).unwrap_or(0);
        let p99 = w.overall_percentile(99.0).unwrap_or(0);
        let dentry_pct = hit_pct(d_hits1 - d_hits0, d_misses1 - d_misses0);
        let verdict_pct = hit_pct(v_hits1 - v_hits0, v_misses1 - v_misses0);
        let rate = reqs as f64 / elapsed.as_secs_f64();
        if single_rate == 0.0 {
            single_rate = rate;
        }
        let speedup = rate / single_rate;
        println!(
            "{n} clients: {rate:>10.0} req/s  ({speedup:.2}x of warm single-client)  \
             p50 {p50} ns, p99 {p99} ns, dentry {dentry_pct:.1}% hit, verdict {verdict_pct:.1}% hit"
        );
        // On a single-core host the ratio says nothing about lock
        // scaling (everything is core-bound), so record a `-` rather
        // than a misleading ~1.0.
        let speedup_cell = if cores >= 2 {
            format!("{speedup:.2}")
        } else {
            "-".to_string()
        };
        best_speedup = best_speedup.max(speedup);
        rows.push(format!(
            "{n}\t{rate:.0}\t{speedup_cell}\t{p50}\t{p99}\t{dentry_pct:.1}\t{verdict_pct:.1}\t{cores}"
        ));
    }
    if cores < 2 {
        // Clients and server share one hardware thread here, so
        // aggregate wall-clock throughput cannot exceed ~1x no matter
        // how the kernel locks: the reader/writer split shows up as
        // scaling only when there are cores to run readers on.
        println!("note: only {cores} core(s) available; client scaling is core-bound");
    }
    // Optional regression gate: with IDBOX_BENCH_ASSERT_SCALING set,
    // require multi-client throughput to actually scale. Skipped — not
    // weakened — on single-core hosts, where the ratio is meaningless.
    if std::env::var("IDBOX_BENCH_ASSERT_SCALING").is_ok() {
        if cores < 2 {
            println!("scaling assertion skipped: requires >= 2 cores, host has {cores}");
        } else {
            assert!(
                best_speedup >= 1.2,
                "multi-client throughput failed to scale: best speedup \
                 {best_speedup:.2}x < 1.2x on a {cores}-core host"
            );
            println!("scaling assertion passed: best speedup {best_speedup:.2}x");
        }
    }
    idbox_bench::write_tsv(
        "server_throughput.tsv",
        "clients\treqs_per_sec\tspeedup_vs_1\tp50_ns\tp99_ns\tdentry_hit_pct\tverdict_hit_pct\thost_cores",
        &rows,
    );
    // Snapshot the per-identity accounting the run produced.
    let exposition = admin.metrics().unwrap();
    let path = idbox_bench::results_path("server_throughput_metrics.prom");
    std::fs::write(&path, &exposition).unwrap();
    let identities = exposition
        .lines()
        .filter(|l| l.starts_with("idbox_syscalls_total{"))
        .count();
    println!(
        "metrics: {identities} per-identity syscall samples -> {}",
        path.display()
    );
    let _ = admin.quit();
    handle.shutdown();
}
