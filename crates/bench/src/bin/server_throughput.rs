//! Server throughput under concurrent clients.
//!
//! Before the reader/writer kernel split, every Chirp request — even a
//! pure read — serialized on one exclusive kernel lock, so adding
//! clients added no throughput. This bench spawns one server and drives
//! it with 1/2/4/8 concurrent authenticated clients running a
//! read-heavy stat/open/pread/close loop, and reports aggregate
//! requests per second at each level, plus per-level p50/p99 dispatch
//! latency from the kernel's histograms (bucket ceilings, ns).
//!
//! After the levels finish, an admin client pulls the `metrics` RPC and
//! the Prometheus exposition is snapshotted into
//! `results/server_throughput_metrics.prom`, so each bench run leaves
//! the per-identity accounting it generated next to its TSV.
//!
//! ```text
//! cargo run --release -p idbox-bench --bin server_throughput
//! ```

use idbox_acl::{Acl, Rights};
use idbox_auth::{CertificateAuthority, ClientCredential, ServerVerifier};
use idbox_chirp::{ChirpClient, ChirpServer, ServerConfig};
use idbox_kernel::OpenFlags;
use idbox_types::AuthMethod;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Reads per open: the loop is stat, open, PREADS x pread, close —
/// read-heavy, like a real client walking and reading files.
const PREADS: u64 = 8;
const REQS_PER_ROUND: u64 = 3 + PREADS;

/// Measurement window per concurrency level.
const WINDOW: Duration = Duration::from_millis(1500);

fn server() -> (idbox_chirp::ChirpServerHandle, CertificateAuthority) {
    let ca = CertificateAuthority::new("/O=UnivNowhere CA", 0xBE7C4);
    let mut verifier = ServerVerifier::new();
    verifier.accept = vec![AuthMethod::Globus];
    verifier.cas.trust(ca.clone());
    let mut root_acl = Acl::empty();
    root_acl.set_reserve("globus:/O=UnivNowhere/*", Rights::LIST, Rights::RWLAX);
    let s = ChirpServer::new(ServerConfig {
        name: "throughput".into(),
        verifier,
        root_acl,
        admins: vec![format!("globus:{ADMIN}")],
        ..Default::default()
    })
    .unwrap();
    (s.spawn().unwrap(), ca)
}

const ADMIN: &str = "/O=UnivNowhere/CN=Admin";

/// Run `n` clients against `addr` for [`WINDOW`]; return total requests
/// served across all of them.
fn run_level(addr: std::net::SocketAddr, ca: &CertificateAuthority, n: usize) -> (u64, Duration) {
    let start_line = Arc::new(Barrier::new(n + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..n)
        .map(|i| {
            let ca = ca.clone();
            let start_line = Arc::clone(&start_line);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let creds = vec![ClientCredential::Globus(
                    ca.issue(format!("/O=UnivNowhere/CN=User{i}")),
                )];
                let mut c = ChirpClient::connect(addr, &creds).unwrap();
                let file = format!("/u{i}/data.dat");
                // Levels share the server, so the directory may already
                // exist from a smaller level's run.
                match c.mkdir(&format!("/u{i}"), 0o755) {
                    Ok(()) | Err(idbox_types::Errno::EEXIST) => {}
                    Err(e) => panic!("mkdir /u{i}: {e:?}"),
                }
                c.put(&file, &vec![7u8; 4096]).unwrap();
                start_line.wait();
                let mut reqs = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    c.stat(&file).unwrap();
                    let fd = c.open(&file, OpenFlags::rdonly(), 0).unwrap();
                    for _ in 0..PREADS {
                        let data = c.pread(fd, 4096, 0).unwrap();
                        assert_eq!(data.len(), 4096);
                    }
                    c.close(fd).unwrap();
                    reqs += REQS_PER_ROUND;
                }
                let _ = c.quit();
                reqs
            })
        })
        .collect();
    start_line.wait();
    let t0 = Instant::now();
    std::thread::sleep(WINDOW);
    stop.store(true, Ordering::Relaxed);
    let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    (total, t0.elapsed())
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (handle, ca) = server();
    let addr = handle.addr();
    let mut rows = Vec::new();
    let mut single_rate = 0.0f64;
    // Snapshot the kernel's latency histograms around each level: the
    // diff isolates that level's dispatches.
    let mut level_start = handle.kernel().read().latency().snapshot();
    for n in [1usize, 2, 4, 8] {
        let (reqs, elapsed) = run_level(addr, &ca, n);
        let level_end = handle.kernel().read().latency().snapshot();
        let window = level_end.diff(&level_start);
        level_start = level_end;
        let p50 = window.overall_percentile(50.0).unwrap_or(0);
        let p99 = window.overall_percentile(99.0).unwrap_or(0);
        let rate = reqs as f64 / elapsed.as_secs_f64();
        if n == 1 {
            single_rate = rate;
        }
        let speedup = rate / single_rate;
        println!(
            "{n} clients: {rate:>10.0} req/s  ({speedup:.2}x of single-client)  \
             p50 {p50} ns, p99 {p99} ns"
        );
        rows.push(format!("{n}\t{rate:.0}\t{speedup:.2}\t{p50}\t{p99}\t{cores}"));
    }
    if cores < 2 {
        // Clients and server share one hardware thread here, so
        // aggregate wall-clock throughput cannot exceed ~1x no matter
        // how the kernel locks: the reader/writer split shows up as
        // scaling only when there are cores to run readers on.
        println!("note: only {cores} core(s) available; client scaling is core-bound");
    }
    idbox_bench::write_tsv(
        "server_throughput.tsv",
        "clients\treqs_per_sec\tspeedup_vs_1\tp50_ns\tp99_ns\thost_cores",
        &rows,
    );
    // Snapshot the per-identity accounting the run produced.
    let admin_creds = vec![ClientCredential::Globus(ca.issue(ADMIN))];
    let mut admin = ChirpClient::connect(addr, &admin_creds).unwrap();
    let exposition = admin.metrics().unwrap();
    let path = idbox_bench::results_path("server_throughput_metrics.prom");
    std::fs::write(&path, &exposition).unwrap();
    let identities = exposition
        .lines()
        .filter(|l| l.starts_with("idbox_syscalls_total{"))
        .count();
    println!(
        "metrics: {identities} per-identity syscall samples -> {}",
        path.display()
    );
    let _ = admin.quit();
    handle.shutdown();
}
