//! Shared measurement helpers for the figure-regeneration harnesses.
//!
//! Each table and figure of the paper has a binary here (printed,
//! human-readable reproduction) and, where latency distributions matter,
//! a Criterion bench. Measured rows are also appended as TSV under
//! `results/` at the workspace root so EXPERIMENTS.md can cite them.

use idbox_core::{BoxOptions, IdentityBox};
use idbox_interpose::{share, GuestCtx, Supervisor};
use idbox_kernel::{Account, Kernel};
use idbox_types::CostModel;
use idbox_vfs::Cred;
use idbox_workloads::micro::{self, MicroCase};
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

/// One Figure 5(a) measurement row.
#[derive(Debug, Clone)]
pub struct MicroResult {
    /// Which syscall case.
    pub case: MicroCase,
    /// Microseconds per call, unmodified.
    pub direct_us: f64,
    /// Microseconds per call, inside the identity box.
    pub boxed_us: f64,
}

impl MicroResult {
    /// Boxed / direct latency ratio.
    pub fn ratio(&self) -> f64 {
        self.boxed_us / self.direct_us
    }
}

/// A Figure 5(a) row measured both with the fast-path caches (dentry +
/// ACL verdict) enabled and with them off — the before/after pair the
/// per-trap-tax ablation reports.
#[derive(Debug, Clone)]
pub struct MicroAblation {
    /// Which syscall case.
    pub case: MicroCase,
    /// Microseconds per call, unmodified.
    pub direct_us: f64,
    /// Microseconds per call, boxed, caches on (the shipping config).
    pub boxed_us: f64,
    /// Microseconds per call, boxed, dentry + verdict caches disabled.
    pub boxed_nocache_us: f64,
}

impl MicroAblation {
    /// Boxed (cached) / direct latency ratio — the Figure 5(a) number.
    pub fn ratio(&self) -> f64 {
        self.boxed_us / self.direct_us
    }

    /// Boxed (uncached) / direct latency ratio.
    pub fn nocache_ratio(&self) -> f64 {
        self.boxed_nocache_us / self.direct_us
    }

    /// How much the caches buy on this case: uncached / cached boxed
    /// latency (> 1 means the caches help).
    pub fn cache_speedup(&self) -> f64 {
        self.boxed_nocache_us / self.boxed_us
    }

    /// Whether this case exercises path resolution + ACL evaluation on
    /// every call (the metadata-heavy mix the caches target). Data-path
    /// cases go through an open descriptor and bypass both caches.
    pub fn is_metadata_heavy(&self) -> bool {
        matches!(self.case, MicroCase::Stat | MicroCase::OpenClose)
    }
}

/// The slowdowns the paper's Figure 5(a) chart shows (approximate bar
/// readings): getpid/stat/read-1/write-1 near 10x, open/close near
/// 5.5x, and the 8 KiB transfers near 2.8-3.3x — "an order of
/// magnitude" for the small calls, less once bulk bytes amortize the
/// trap. The band accepts that whole range.
pub fn fig5a_paper_ratio_band() -> (f64, f64) {
    (2.5, 40.0)
}

/// Direct mode: a plain process. Boxed mode: a full identity box (its
/// policy does the real per-call ACL work the paper's numbers include).
/// `caches` toggles the whole fast path at once — the kernel's dentry
/// cache and the box's ACL/verdict caches — for before/after ablations.
fn micro_ctx(model: Option<CostModel>, caches: bool) -> (Supervisor, idbox_kernel::Pid) {
    let mut k = Kernel::new();
    k.accounts_mut()
        .add(Account::new("dthain", 1000, 1000))
        .expect("fresh kernel");
    k.vfs_mut().set_dentry_cache(caches);
    let kernel = share(k);
    let sup_cred = Cred::new(1000, 1000);
    match model {
        None => {
            let pid = kernel
                .lock()
                .spawn(sup_cred, "/tmp", "micro")
                .expect("spawn");
            (Supervisor::direct(kernel), pid)
        }
        Some(m) => {
            let b = IdentityBox::with_options(
                kernel,
                "globus:/O=UnivNowhere/CN=Fred",
                sup_cred,
                BoxOptions {
                    cost_model: m,
                    cache_acls: caches,
                    ..Default::default()
                },
            )
            .expect("create box");
            let pid = b.spawn_process("micro").expect("spawn");
            (b.supervisor(), pid)
        }
    }
}

/// Time one microbenchmark case: seconds per call, best of 3 batches.
pub fn time_micro_case(case: MicroCase, model: Option<CostModel>, iters: u64) -> f64 {
    time_micro_case_cfg(case, model, iters, true)
}

/// [`time_micro_case`] with the fast-path caches configurable.
pub fn time_micro_case_cfg(
    case: MicroCase,
    model: Option<CostModel>,
    iters: u64,
    caches: bool,
) -> f64 {
    let (mut sup, pid) = micro_ctx(model, caches);
    let mut ctx = GuestCtx::new(&mut sup, pid);
    micro::prepare(&mut ctx);
    micro::run_case(&mut ctx, case, iters / 10); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        micro::run_case(&mut ctx, case, iters);
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

/// Measure the whole Figure 5(a) table.
pub fn measure_fig5a(model: CostModel, iters: u64) -> Vec<MicroResult> {
    MicroCase::all()
        .into_iter()
        .map(|case| MicroResult {
            case,
            direct_us: time_micro_case(case, None, iters) * 1e6,
            boxed_us: time_micro_case(case, Some(model), iters) * 1e6,
        })
        .collect()
}

/// Measure the Figure 5(a) table with the boxed column run twice:
/// fast-path caches on and off.
pub fn measure_fig5a_ablation(model: CostModel, iters: u64) -> Vec<MicroAblation> {
    MicroCase::all()
        .into_iter()
        .map(|case| MicroAblation {
            case,
            direct_us: time_micro_case(case, None, iters) * 1e6,
            boxed_us: time_micro_case_cfg(case, Some(model), iters, true) * 1e6,
            boxed_nocache_us: time_micro_case_cfg(case, Some(model), iters, false) * 1e6,
        })
        .collect()
}

/// Where measured rows are recorded (workspace `results/`).
pub fn results_path(name: &str) -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    let _ = std::fs::create_dir_all(&p);
    p.push(name);
    p
}

/// Write a TSV result file (header + rows).
pub fn write_tsv(name: &str, header: &str, rows: &[String]) {
    let path = results_path(name);
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = writeln!(f, "{header}");
        for r in rows {
            let _ = writeln!(f, "{r}");
        }
        eprintln!("(results written to {})", path.display());
    }
}

/// Write a text result file verbatim (used for JSON reports).
pub fn write_text(name: &str, contents: &str) {
    let path = results_path(name);
    if std::fs::write(&path, contents).is_ok() {
        eprintln!("(results written to {})", path.display());
    }
}

/// A standard bench-quality cost model: calibrate quickly toward the
/// paper's 10x getpid target, falling back to the static default under
/// unusual hosts. Set `IDBOX_BENCH_FAST=1` to skip the calibration
/// sweep (CI smoke runs, where absolute ratios do not matter).
pub fn bench_model() -> CostModel {
    if std::env::var_os("IDBOX_BENCH_FAST").is_some() {
        eprintln!("IDBOX_BENCH_FAST set: using the static cost model, no calibration sweep");
        return CostModel::calibrated();
    }
    let (model, ratio) = idbox_interpose::calibrate::calibrate();
    eprintln!(
        "calibrated cost model: footprint={} bytes, boxed/direct getpid = {ratio:.1}x",
        model.switch_footprint_bytes
    );
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_measurement_is_sane() {
        // Tiny iteration counts: this is a smoke test of the harness,
        // not a benchmark.
        let r = time_micro_case(MicroCase::Getpid, None, 200);
        assert!(r > 0.0 && r < 1.0);
    }

    #[test]
    fn cache_off_measurement_is_sane() {
        let r = time_micro_case_cfg(
            MicroCase::Stat,
            Some(CostModel::free_switches()),
            200,
            false,
        );
        assert!(r > 0.0 && r < 1.0);
    }

    #[test]
    fn results_dir_created() {
        let p = results_path("smoke.tsv");
        assert!(p.parent().unwrap().exists());
    }
}
