//! In-tree micro-benchmark harness with a `criterion`-compatible API.
//!
//! The build environment is fully offline, so the external `criterion`
//! crate cannot be fetched; the workspace aliases `criterion` to this
//! crate (see the root `Cargo.toml`) and the `benches/` files compile
//! unchanged. Timing is a plain sample-of-batches loop: per benchmark
//! it warms up, sizes a batch to roughly a few milliseconds, takes
//! `sample_size` samples, and reports the median ns/iter on stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target time for one measured batch.
const BATCH_TARGET: Duration = Duration::from_millis(3);
/// Warmup budget per benchmark.
const WARMUP: Duration = Duration::from_millis(20);

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Logical elements per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark named `function` at parameter point `parameter`.
    pub fn new(function: impl ToString, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.parameter.is_empty() {
            write!(f, "{}", self.function)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            ns_per_iter: None,
        };
        f(&mut b);
        self.report(&id, b.ns_per_iter);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            ns_per_iter: None,
        };
        f(&mut b, input);
        self.report(&id, b.ns_per_iter);
        self
    }

    /// Close the group.
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, ns: Option<f64>) {
        let Some(ns) = ns else {
            println!("{}/{id}: no measurement (b.iter never called)", self.name);
            return;
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if ns > 0.0 => {
                format!("  ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                format!("  ({:.0} elem/s)", n as f64 / ns * 1e9)
            }
            _ => String::new(),
        };
        println!("{}/{id}: {:.0} ns/iter{rate}", self.name, ns);
    }
}

/// Runs the measured closure and records timing.
pub struct Bencher {
    sample_size: usize,
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Measure `f`, called many times per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + batch sizing.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch = ((BATCH_TARGET.as_nanos() as f64 / per_iter.max(1.0)) as u64).clamp(1, 1 << 22);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = Some(samples[samples.len() / 2]);
    }
}

/// Bundle benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit a `main` that runs the given groups, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; accept
            // and ignore them.
            let _ = std::env::args();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_example(c: &mut Criterion) {
        let mut group = c.benchmark_group("example");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(64));
        group.bench_function(BenchmarkId::new("add", 1), |b| {
            b.iter(|| black_box(2u64) + black_box(3u64))
        });
        group.bench_with_input(BenchmarkId::new("mul", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x) * 7)
        });
        group.finish();
    }

    criterion_group!(benches, bench_example);

    #[test]
    fn harness_runs() {
        benches();
    }
}
