//! The catalog: servers report themselves; clients discover them.
//!
//! "A collection of Chirp servers report themselves to a catalog, which
//! then publishes the set of available servers to interested parties"
//! (paper, Section 4). One TCP endpoint, two verbs:
//!
//! ```text
//! register <addr> <name>   -> ok
//! list                     -> ok <count>, then one "<addr> <name> <seq>" line each
//! ```

use crate::codec::{self, decode_word, encode_word};
use idbox_types::{Errno, SysResult};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One advertised server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerInfo {
    /// Where to connect.
    pub addr: String,
    /// Human-readable server name.
    pub name: String,
    /// Registration sequence number (monotonic; a liveness proxy).
    pub seq: u64,
}

#[derive(Default)]
struct CatalogState {
    servers: BTreeMap<String, ServerInfo>,
    seq: u64,
}

/// A running catalog server.
pub struct Catalog {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl Catalog {
    /// Bind and serve on a background thread.
    pub fn spawn() -> std::io::Result<Catalog> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let state = Arc::new(Mutex::new(CatalogState::default()));
        let join = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = handle(stream, &state);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(Catalog {
            addr,
            stop,
            join: Some(join),
        })
    }

    /// The catalog's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for Catalog {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

fn handle(stream: TcpStream, state: &Mutex<CatalogState>) -> SysResult<()> {
    let mut reader = BufReader::new(stream.try_clone().map_err(|_| Errno::EIO)?);
    let mut writer = stream;
    let line = codec::read_line(&mut reader)?;
    let words: Vec<&str> = line.split(' ').filter(|w| !w.is_empty()).collect();
    match words.as_slice() {
        ["register", addr, name] => {
            let mut s = state.lock();
            s.seq += 1;
            let info = ServerInfo {
                addr: decode_word(addr)?,
                name: decode_word(name)?,
                seq: s.seq,
            };
            s.servers.insert(info.addr.clone(), info);
            codec::write_line(&mut writer, "ok")
        }
        ["list"] => {
            let entries: Vec<ServerInfo> = {
                let s = state.lock();
                s.servers.values().cloned().collect()
            };
            codec::write_line(&mut writer, &format!("ok {}", entries.len()))?;
            for e in entries {
                codec::write_line(
                    &mut writer,
                    &format!("{} {} {}", encode_word(&e.addr), encode_word(&e.name), e.seq),
                )?;
            }
            Ok(())
        }
        _ => codec::write_line(&mut writer, &codec::error_line(Errno::EPROTO)),
    }
}

/// Report a server to a catalog.
pub fn register(catalog: SocketAddr, server_addr: &str, name: &str) -> SysResult<()> {
    let stream = TcpStream::connect(catalog).map_err(|_| Errno::ECONNREFUSED)?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|_| Errno::EIO)?);
    let mut writer = stream;
    codec::write_line(
        &mut writer,
        &format!("register {} {}", encode_word(server_addr), encode_word(name)),
    )?;
    codec::parse_response(&codec::read_line(&mut reader)?)?;
    Ok(())
}

/// Fetch the advertised server list.
pub fn list(catalog: SocketAddr) -> SysResult<Vec<ServerInfo>> {
    let stream = TcpStream::connect(catalog).map_err(|_| Errno::ECONNREFUSED)?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|_| Errno::EIO)?);
    let mut writer = stream;
    codec::write_line(&mut writer, "list")?;
    let words = codec::parse_response(&codec::read_line(&mut reader)?)?;
    let count: usize = words
        .first()
        .and_then(|w| w.parse().ok())
        .ok_or(Errno::EPROTO)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let line = codec::read_line(&mut reader)?;
        let ws: Vec<&str> = line.split(' ').filter(|w| !w.is_empty()).collect();
        let [addr, name, seq] = ws.as_slice() else {
            return Err(Errno::EPROTO);
        };
        out.push(ServerInfo {
            addr: decode_word(addr)?,
            name: decode_word(name)?,
            seq: seq.parse().map_err(|_| Errno::EPROTO)?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_list() {
        let cat = Catalog::spawn().unwrap();
        assert_eq!(list(cat.addr()).unwrap(), vec![]);
        register(cat.addr(), "127.0.0.1:9094", "storage.alpha").unwrap();
        register(cat.addr(), "127.0.0.1:9095", "storage beta").unwrap();
        let servers = list(cat.addr()).unwrap();
        assert_eq!(servers.len(), 2);
        assert!(servers.iter().any(|s| s.name == "storage beta"));
    }

    #[test]
    fn reregistration_updates_seq() {
        let cat = Catalog::spawn().unwrap();
        register(cat.addr(), "127.0.0.1:9094", "a").unwrap();
        let first = list(cat.addr()).unwrap()[0].seq;
        register(cat.addr(), "127.0.0.1:9094", "a").unwrap();
        let second = list(cat.addr()).unwrap()[0].seq;
        assert!(second > first);
        assert_eq!(list(cat.addr()).unwrap().len(), 1);
    }
}
