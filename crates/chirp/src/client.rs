//! The Chirp client library.
//!
//! Besides speaking the protocol, the client owns the robustness story
//! for the WAN deployments the paper targets: every RPC runs under a
//! [`RetryPolicy`] (an immediate first retry, then capped
//! decorrelated-jitter backoff under a seeded stream and a
//! wall-clock budget), any transport fault **poisons** the connection
//! so a half-read reply can never be mistaken for the next call's
//! answer, and the next attempt transparently reconnects — re-running
//! auth negotiation and re-stamping the *same* trace id, so a retried
//! request remains one logical operation in the server's audit ring.
//!
//! What retries is decided per verb, not per policy alone:
//!
//! * read-only verbs (`stat`, `get`, `whoami`, …) retry on anything
//!   transient — connection loss, server `EAGAIN` (shed), server `EIO`;
//! * idempotent writes (`put`, `setacl`, `truncate`, non-`O_EXCL`
//!   `open`) retry on connection loss and shed, where re-execution is
//!   harmless;
//! * fd-based verbs (`pread`, `pwrite`, `fstat`, `close`) never retry
//!   across a reconnect — the server-side descriptor died with the
//!   session — but still retry a shed reply, which arrives on a live
//!   connection;
//! * non-idempotent verbs (`mkdir`, `rename`, `exec`, …) surface
//!   connection loss immediately unless the caller opts into
//!   at-least-once semantics with [`RetryPolicy::retry_mutating`].
//!   A shed (`EAGAIN`) reply is still retried: the server refuses
//!   *before* executing, so no double-apply is possible.

use crate::codec::{self, encode_word};
use idbox_acl::Acl;
use idbox_auth::{authenticate_client, AuthTransport, ClientCredential};
use idbox_interpose::abi;
use idbox_kernel::OpenFlags;
use idbox_obs::{next_trace_id, TraceId};
use idbox_types::{Errno, Principal, SysResult};
use idbox_vfs::{DirEntry, StatBuf};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// How a client reacts to transient failures: bounded attempts with
/// capped exponential backoff and seeded jitter, all under one
/// wall-clock budget. The policy sets *how much* to retry; *what* is
/// safe to retry is decided per verb (see the module docs).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per RPC, first try included (1 = never retry).
    pub max_attempts: u32,
    /// Floor of the backoff sleep. The first retry is always
    /// immediate; from the second retry on, each sleep is drawn
    /// uniformly from `[base_delay, 3·previous]` (capped at
    /// [`RetryPolicy::max_delay`]).
    pub base_delay: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_delay: Duration,
    /// Wall-clock budget per RPC across all attempts; once spent, the
    /// last error surfaces even if attempts remain.
    pub budget: Duration,
    /// Seed for the jitter stream, so a test run's sleep schedule is
    /// reproducible.
    pub jitter_seed: u64,
    /// Opt-in at-least-once: also retry non-idempotent verbs (`mkdir`,
    /// `exec`, …) after connection loss. Off by default — a lost reply
    /// does not reveal whether the server executed the request.
    pub retry_mutating: bool,
    /// Socket read/write timeout, so a stalled server becomes a
    /// retryable transport fault instead of a hang. `None` = block
    /// forever (the pre-retry behavior).
    pub io_timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    /// A sane WAN-client default: 5 attempts, 2 ms base backoff capped
    /// at 100 ms, a 5 s budget, idempotent-only.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(100),
            budget: Duration::from_secs(5),
            jitter_seed: 0x1DB0_751D_B075,
            retry_mutating: false,
            io_timeout: None,
        }
    }
}

impl RetryPolicy {
    /// Never retry anything — the policy [`ChirpClient::connect`] uses,
    /// preserving strict fail-fast semantics for callers that manage
    /// failures themselves.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }
}

/// Retry classification of a verb (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verb {
    /// Harmless to re-run any number of times.
    ReadOnly,
    /// A write whose re-execution converges to the same state.
    IdemWrite,
    /// Reads a server-side fd: dies with the session.
    FdRead,
    /// Writes through a server-side fd: dies with the session.
    FdWrite,
    /// Re-execution may double-apply (`mkdir`, `rename`, `exec`, …).
    Mutating,
}

impl Verb {
    /// How reluctantly this class retries, for composing a batch's
    /// class from its members: fd-based verbs never survive a
    /// reconnect, so they dominate everything; mutating dominates the
    /// idempotent classes.
    fn rank(self) -> u8 {
        match self {
            Verb::ReadOnly => 0,
            Verb::IdemWrite => 1,
            Verb::Mutating => 2,
            Verb::FdRead => 3,
            Verb::FdWrite => 4,
        }
    }

    /// The more conservative of two classes.
    fn compose(self, other: Verb) -> Verb {
        if other.rank() > self.rank() {
            other
        } else {
            self
        }
    }
}

/// Why one attempt failed — the split [`codec::parse_response`]
/// conflates: a transport fault poisons the connection, an application
/// error (`error <errno>` reply) arrives on a healthy one.
#[derive(Debug)]
enum Fail {
    /// Could not establish a connection; nothing was ever sent.
    Dial(Errno),
    /// The connection failed mid-RPC (I/O error, EOF, framing
    /// violation): the session state is undefined and the server may or
    /// may not have executed the request.
    Transport(Errno),
    /// The server replied `error <errno>`: the connection is healthy.
    App(Errno),
}

impl Fail {
    fn errno(&self) -> Errno {
        match self {
            Fail::Dial(e) | Fail::Transport(e) | Fail::App(e) => *e,
        }
    }
}

/// Parse a reply line, keeping transport and application errors apart.
fn parse_reply(line: &str) -> Result<Vec<String>, Fail> {
    let words: Vec<&str> = line.split(' ').filter(|w| !w.is_empty()).collect();
    match words.first() {
        Some(&"ok") => words[1..]
            .iter()
            .map(|w| codec::decode_word(w))
            .collect::<SysResult<Vec<String>>>()
            .map_err(Fail::Transport),
        Some(&"error") => {
            let code: i32 = words
                .get(1)
                .and_then(|w| w.parse().ok())
                .ok_or(Fail::Transport(Errno::EPROTO))?;
            Err(Fail::App(Errno::from_code(code).unwrap_or(Errno::EIO)))
        }
        _ => Err(Fail::Transport(Errno::EPROTO)),
    }
}

/// One live connection: a buffered read half and the write half of the
/// same socket.
#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

struct ClientTransport<'a> {
    reader: &'a mut BufReader<TcpStream>,
    writer: &'a mut TcpStream,
}

impl AuthTransport for ClientTransport<'_> {
    fn send_line(&mut self, line: &str) -> Result<(), String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .and_then(|_| self.writer.flush())
            .map_err(|e| e.to_string())
    }

    fn recv_line(&mut self) -> Result<String, String> {
        codec::read_line(self.reader).map_err(|e| e.to_string())
    }
}

/// Open one connection and run auth negotiation over it.
fn dial(
    addr: SocketAddr,
    creds: &[ClientCredential],
    policy: &RetryPolicy,
) -> SysResult<(Conn, Principal)> {
    let stream = TcpStream::connect(addr).map_err(|_| Errno::ECONNREFUSED)?;
    // The protocol is strict request/response on small lines; Nagle
    // plus delayed ACKs would stall every round trip by ~40ms.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(policy.io_timeout);
    let _ = stream.set_write_timeout(policy.io_timeout);
    let mut reader = BufReader::new(stream.try_clone().map_err(|_| Errno::EIO)?);
    let mut writer = stream;
    let principal = {
        let mut t = ClientTransport {
            reader: &mut reader,
            writer: &mut writer,
        };
        authenticate_client(&mut t, creds).map_err(|_| Errno::EACCES)?
    };
    Ok((Conn { reader, writer }, principal))
}

/// Advance a splitmix64 jitter stream.
fn next_jitter(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The sleep before the retry after `failed_attempts` failures.
///
/// The **first** retry goes out immediately: the faults this layer
/// masks (a shed reply, one dropped connection) usually clear at once,
/// and sleeping `base_delay` on every blip produced a visible latency
/// cliff at low fault rates. From the second retry on, the sleep is
/// *decorrelated jitter*: uniform in `[base, 3·prev]` capped at
/// `max_delay`, where `prev` is the previous sleep. The schedule still
/// grows geometrically in expectation, but two clients that failed in
/// lockstep drift apart after one round instead of re-colliding at
/// every power of two.
fn backoff_delay(
    policy: &RetryPolicy,
    failed_attempts: u32,
    prev: &mut Duration,
    jitter: &mut u64,
) -> Duration {
    if failed_attempts <= 1 {
        return Duration::ZERO;
    }
    let lo = policy.base_delay.as_nanos() as u64;
    let cap = policy.max_delay.as_nanos() as u64;
    // `prev` starts at base (set by the caller), so the first sleeping
    // retry picks from [base, 3·base].
    let hi = (prev.as_nanos() as u64).saturating_mul(3).max(lo).min(cap.max(lo));
    let span = hi - lo.min(hi);
    let pick = if span == 0 {
        hi
    } else {
        lo + next_jitter(jitter) % (span + 1)
    };
    let d = Duration::from_nanos(pick.min(cap));
    *prev = d.max(policy.base_delay);
    d
}

/// An authenticated connection to a Chirp server, with transparent
/// retry and reconnect under a [`RetryPolicy`].
#[derive(Debug)]
pub struct ChirpClient {
    addr: SocketAddr,
    creds: Vec<ClientCredential>,
    policy: RetryPolicy,
    /// The live connection; `None` after a transport fault poisons it,
    /// until the next RPC redials. Poisoning is what guarantees a
    /// half-read reply can never satisfy the next call.
    conn: Option<Conn>,
    principal: Principal,
    /// The trace id stamped on the most recently sent request — what a
    /// caller quotes to join server-side audit rows and slow-op spans
    /// to its own operation. Stable across retries of one RPC.
    last_trace: Option<TraceId>,
    /// Bumped on every (re)connect; remote fds minted on an older
    /// generation are dead (see [`crate::driver::ChirpDriver`]).
    generation: u64,
    retries: u64,
    reconnects: u64,
    jitter: u64,
}

impl ChirpClient {
    /// Connect and authenticate, offering `creds` in preference order.
    /// Uses [`RetryPolicy::none`]: failures surface immediately, but a
    /// later RPC on a poisoned connection still redials once.
    pub fn connect(addr: SocketAddr, creds: &[ClientCredential]) -> SysResult<Self> {
        Self::connect_with(addr, creds, RetryPolicy::none())
    }

    /// Connect and authenticate under `policy`; the initial dial itself
    /// retries with the policy's backoff.
    pub fn connect_with(
        addr: SocketAddr,
        creds: &[ClientCredential],
        policy: RetryPolicy,
    ) -> SysResult<Self> {
        let mut jitter = policy.jitter_seed;
        let start = Instant::now();
        let mut attempt = 1u32;
        let mut prev = policy.base_delay;
        let (conn, principal) = loop {
            match dial(addr, creds, &policy) {
                Ok(ok) => break ok,
                Err(e) => {
                    if attempt >= policy.max_attempts || start.elapsed() >= policy.budget {
                        return Err(e);
                    }
                    let d = backoff_delay(&policy, attempt, &mut prev, &mut jitter);
                    if !d.is_zero() {
                        std::thread::sleep(d);
                    }
                    attempt += 1;
                }
            }
        };
        Ok(ChirpClient {
            addr,
            creds: creds.to_vec(),
            policy,
            conn: Some(conn),
            principal,
            last_trace: None,
            generation: 1,
            retries: 0,
            reconnects: 0,
            jitter,
        })
    }

    /// The principal the server knows us by.
    pub fn principal(&self) -> &Principal {
        &self.principal
    }

    /// The trace id carried by the most recently sent request, if any
    /// request has been sent yet. All attempts of one retried RPC carry
    /// the same id.
    pub fn last_trace(&self) -> Option<TraceId> {
        self.last_trace
    }

    /// The connection generation: 1 after connect, +1 per reconnect.
    /// Remote fds are only valid within the generation that opened them.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Retry attempts performed so far (beyond each RPC's first try).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Transparent reconnects performed so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Mint a fresh trace id for one request and remember it.
    fn stamp(&mut self) -> TraceId {
        let id = next_trace_id();
        self.last_trace = Some(id);
        id
    }

    /// The retry engine every RPC runs through: stamp one trace id,
    /// then attempt until success, a non-retryable failure, or the
    /// policy (attempts or budget) is exhausted.
    fn rpc<T>(
        &mut self,
        class: Verb,
        line: &str,
        payload: Option<&[u8]>,
        mut parse: impl FnMut(&mut BufReader<TcpStream>, &[String]) -> SysResult<T>,
    ) -> SysResult<T> {
        let trace = self.stamp();
        let start = Instant::now();
        let start_ns = idbox_obs::now_unix_ns();
        let mut attempt = 1u32;
        let mut prev = self.policy.base_delay;
        loop {
            match self.try_once(line, payload, trace, attempt, &mut parse) {
                Ok(v) => {
                    // The caller-side plane of the flight recorder:
                    // whole-RPC spans including retries and backoff,
                    // joined to the server planes by the trace id.
                    idbox_obs::flight::record_span(
                        "client",
                        line.split(' ').next().unwrap_or("rpc"),
                        Some(trace),
                        start_ns,
                        start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                    );
                    return Ok(v);
                }
                Err(fail) => {
                    if !self.should_retry(class, &fail, attempt, start) {
                        return Err(fail.errno());
                    }
                    self.retries += 1;
                    let d = backoff_delay(&self.policy, attempt, &mut prev, &mut self.jitter);
                    if !d.is_zero() {
                        std::thread::sleep(d);
                    }
                    attempt += 1;
                }
            }
        }
    }

    /// One attempt: reconnect if poisoned, send (re-stamping the same
    /// trace id, plus a `retry=<n>` token past the first attempt so the
    /// server can count retried requests), read and parse the reply.
    /// Any transport fault drops the connection on the floor — poisoned.
    fn try_once<T>(
        &mut self,
        line: &str,
        payload: Option<&[u8]>,
        trace: TraceId,
        attempt: u32,
        parse: &mut impl FnMut(&mut BufReader<TcpStream>, &[String]) -> SysResult<T>,
    ) -> Result<T, Fail> {
        if self.conn.is_none() {
            let (conn, principal) =
                dial(self.addr, &self.creds, &self.policy).map_err(Fail::Dial)?;
            self.conn = Some(conn);
            self.principal = principal;
            self.generation += 1;
            self.reconnects += 1;
        }
        let mut conn = self.conn.take().expect("just ensured a connection");
        let stamped = if attempt > 1 {
            codec::with_trace(&codec::with_retry(line, attempt - 1), trace)
        } else {
            codec::with_trace(line, trace)
        };
        let res = run_attempt(&mut conn, &stamped, payload, parse);
        // An application error leaves the wire in a known state — keep
        // the connection. A transport fault leaves it undefined — drop.
        if !matches!(res, Err(Fail::Transport(_))) {
            self.conn = Some(conn);
        }
        res
    }

    /// Retry ruling for one failed attempt.
    fn should_retry(&self, class: Verb, fail: &Fail, attempt: u32, start: Instant) -> bool {
        if attempt >= self.policy.max_attempts || start.elapsed() >= self.policy.budget {
            return false;
        }
        match fail {
            // Nothing was ever sent: safe for every class.
            Fail::Dial(_) => true,
            // The connection died mid-RPC: the server may or may not
            // have executed the request, and any server-side fd died
            // with the session.
            Fail::Transport(_) => match class {
                Verb::ReadOnly | Verb::IdemWrite => true,
                Verb::Mutating => self.policy.retry_mutating,
                Verb::FdRead | Verb::FdWrite => false,
            },
            // A shed/busy reply: the server refused *before* executing,
            // on a healthy connection. Safe for every class.
            Fail::App(Errno::EAGAIN) => true,
            // Server-side I/O error: only re-reads are harmless.
            Fail::App(Errno::EIO) => class == Verb::ReadOnly,
            // Real answers (ENOENT, EACCES, …) are not failures to mask.
            Fail::App(_) => false,
        }
    }

    fn one_num(words: &[String]) -> SysResult<i64> {
        words
            .first()
            .and_then(|w| w.parse().ok())
            .ok_or(Errno::EPROTO)
    }

    fn stat_words(words: &[String]) -> SysResult<StatBuf> {
        if words.len() != abi::STAT_WORDS {
            return Err(Errno::EPROTO);
        }
        let mut ws = [0u64; abi::STAT_WORDS];
        for (i, w) in words.iter().enumerate() {
            ws[i] = w.parse().map_err(|_| Errno::EPROTO)?;
        }
        abi::decode_stat(&ws)
    }

    // ------------------------------------------------------------------
    // Protocol operations
    // ------------------------------------------------------------------

    /// Who does the server think we are?
    pub fn whoami(&mut self) -> SysResult<Principal> {
        self.rpc(Verb::ReadOnly, "whoami", None, |_, words| {
            let s = words.first().ok_or(Errno::EPROTO)?;
            Principal::parse(s).map_err(|_| Errno::EPROTO)
        })
    }

    /// Remote `stat`.
    pub fn stat(&mut self, path: &str) -> SysResult<StatBuf> {
        let line = format!("stat {}", encode_word(path));
        self.rpc(Verb::ReadOnly, &line, None, |_, words| {
            Self::stat_words(words)
        })
    }

    /// Remote `open`; returns a server-side descriptor valid for the
    /// current [`ChirpClient::generation`] only.
    pub fn open(&mut self, path: &str, flags: OpenFlags, mode: u16) -> SysResult<i64> {
        // O_EXCL makes re-execution observable (the retry finds the
        // file the first attempt created and fails EEXIST); everything
        // else converges.
        let class = if flags.excl {
            Verb::Mutating
        } else if flags.write || flags.create || flags.trunc {
            Verb::IdemWrite
        } else {
            Verb::ReadOnly
        };
        let line = format!("open {} {} {}", encode_word(path), flags.to_bits(), mode);
        self.rpc(class, &line, None, |_, words| Self::one_num(words))
    }

    /// Remote `close`.
    pub fn close(&mut self, fd: i64) -> SysResult<()> {
        let line = format!("close {fd}");
        self.rpc(Verb::FdWrite, &line, None, |_, _| Ok(()))
    }

    /// Remote positioned read.
    pub fn pread(&mut self, fd: i64, len: usize, off: u64) -> SysResult<Vec<u8>> {
        let line = format!("pread {fd} {len} {off}");
        self.rpc(Verb::FdRead, &line, None, read_reply_payload)
    }

    /// Remote positioned write.
    pub fn pwrite(&mut self, fd: i64, data: &[u8], off: u64) -> SysResult<usize> {
        let line = format!("pwrite {fd} {off} {}", data.len());
        self.rpc(Verb::FdWrite, &line, Some(data), |_, words| {
            Ok(Self::one_num(words)? as usize)
        })
    }

    /// Remote `fstat`.
    pub fn fstat(&mut self, fd: i64) -> SysResult<StatBuf> {
        let line = format!("fstat {fd}");
        self.rpc(Verb::FdRead, &line, None, |_, words| {
            Self::stat_words(words)
        })
    }

    /// Remote `mkdir` — subject to the reserve right exactly as local
    /// mkdir inside a box.
    pub fn mkdir(&mut self, path: &str, mode: u16) -> SysResult<()> {
        let line = format!("mkdir {} {}", encode_word(path), mode);
        self.rpc(Verb::Mutating, &line, None, |_, _| Ok(()))
    }

    /// Remote `rmdir`.
    pub fn rmdir(&mut self, path: &str) -> SysResult<()> {
        let line = format!("rmdir {}", encode_word(path));
        self.rpc(Verb::Mutating, &line, None, |_, _| Ok(()))
    }

    /// Remote `unlink`.
    pub fn unlink(&mut self, path: &str) -> SysResult<()> {
        let line = format!("unlink {}", encode_word(path));
        self.rpc(Verb::Mutating, &line, None, |_, _| Ok(()))
    }

    /// Remote `rename`.
    pub fn rename(&mut self, old: &str, new: &str) -> SysResult<()> {
        let line = format!("rename {} {}", encode_word(old), encode_word(new));
        self.rpc(Verb::Mutating, &line, None, |_, _| Ok(()))
    }

    /// Remote `truncate`.
    pub fn truncate(&mut self, path: &str, len: u64) -> SysResult<()> {
        let line = format!("truncate {} {len}", encode_word(path));
        self.rpc(Verb::IdemWrite, &line, None, |_, _| Ok(()))
    }

    /// Remote directory listing.
    pub fn readdir(&mut self, path: &str) -> SysResult<Vec<DirEntry>> {
        let line = format!("readdir {}", encode_word(path));
        let data = self.rpc(Verb::ReadOnly, &line, None, read_reply_payload)?;
        let text = String::from_utf8(data).map_err(|_| Errno::EPROTO)?;
        abi::decode_entries(&text)
    }

    /// Fetch a directory's ACL.
    pub fn getacl(&mut self, path: &str) -> SysResult<Acl> {
        let line = format!("getacl {}", encode_word(path));
        let data = self.rpc(Verb::ReadOnly, &line, None, read_reply_payload)?;
        let text = String::from_utf8(data).map_err(|_| Errno::EPROTO)?;
        Acl::parse(&text).map_err(|_| Errno::EPROTO)
    }

    /// Install a directory's ACL (requires the A right).
    pub fn setacl(&mut self, path: &str, acl: &Acl) -> SysResult<()> {
        let text = acl.to_text();
        let line = format!("setacl {} {}", encode_word(path), text.len());
        self.rpc(Verb::IdemWrite, &line, Some(text.as_bytes()), |_, _| Ok(()))
    }

    /// Stage a whole file onto the server (mode 0644).
    pub fn put(&mut self, path: &str, data: &[u8]) -> SysResult<()> {
        self.put_mode(path, data, 0o644)
    }

    /// Stage a whole file with an explicit creation mode (0755 for
    /// executables, as `chirp_put -m` would).
    pub fn put_mode(&mut self, path: &str, data: &[u8], mode: u16) -> SysResult<()> {
        let line = format!("put {} {} {}", encode_word(path), data.len(), mode);
        self.rpc(Verb::IdemWrite, &line, Some(data), |_, _| Ok(()))
    }

    /// Retrieve a whole file from the server.
    pub fn get(&mut self, path: &str) -> SysResult<Vec<u8>> {
        let line = format!("get {}", encode_word(path));
        self.rpc(Verb::ReadOnly, &line, None, read_reply_payload)
    }

    /// The paper's new call: run a staged program remotely, inside an
    /// identity box carrying our principal. Returns the exit code.
    pub fn exec(&mut self, path: &str, args: &[&str]) -> SysResult<i32> {
        let mut line = format!("exec {}", encode_word(path));
        for a in args {
            line.push(' ');
            line.push_str(&encode_word(a));
        }
        let words = self.rpc(Verb::Mutating, &line, None, |_, words| {
            Ok(words.to_vec())
        })?;
        Ok(Self::one_num(&words)? as i32)
    }

    /// Per-syscall latency statistics from the server's histograms.
    /// Admin principals only — everyone else gets `EACCES`.
    pub fn stats(&mut self) -> SysResult<Vec<StatRow>> {
        let data = self.rpc(Verb::ReadOnly, "stats", None, read_reply_payload)?;
        let text = String::from_utf8(data).map_err(|_| Errno::EPROTO)?;
        parse_stat_rows(&text)
    }

    /// The server's recent policy decisions, oldest first. Admin
    /// principals only — everyone else gets `EACCES`.
    pub fn audit(&mut self) -> SysResult<Vec<AuditRow>> {
        let data = self.rpc(Verb::ReadOnly, "audit", None, read_reply_payload)?;
        let text = String::from_utf8(data).map_err(|_| Errno::EPROTO)?;
        parse_audit_rows(&text)
    }

    /// Incremental tail of the server's policy decisions: events with
    /// `seq >= since`, plus the cursor to pass next time (the server's
    /// write head). A gap between `since` and the first returned seq
    /// means the ring dropped that much history. Admin principals only.
    pub fn audit_since(&mut self, since: u64) -> SysResult<(Vec<AuditRow>, u64)> {
        let line = format!("audit {since}");
        self.rpc(Verb::ReadOnly, &line, None, |r, words| {
            let len: u64 = words
                .first()
                .and_then(|w| w.parse().ok())
                .ok_or(Errno::EPROTO)?;
            let cursor: u64 = words
                .get(1)
                .and_then(|w| w.parse().ok())
                .ok_or(Errno::EPROTO)?;
            let data = codec::read_payload(r, len)?;
            let text = String::from_utf8(data).map_err(|_| Errno::EPROTO)?;
            Ok((parse_audit_rows(&text)?, cursor))
        })
    }

    /// The server's per-identity counters in Prometheus text exposition
    /// format. Admin principals only — everyone else gets `EACCES`.
    pub fn metrics(&mut self) -> SysResult<String> {
        let data = self.rpc(Verb::ReadOnly, "metrics", None, read_reply_payload)?;
        String::from_utf8(data).map_err(|_| Errno::EPROTO)
    }

    /// Force a durability snapshot on the server: the namespace and
    /// account database are written to disk and replayed log history is
    /// truncated. Returns the snapshot's LSN watermark. `ENOSYS` on a
    /// volatile (no-WAL) server; admin principals only.
    pub fn walsnap(&mut self) -> SysResult<u64> {
        self.rpc(Verb::ReadOnly, "walsnap", None, |_, words| {
            words.first().and_then(|w| w.parse().ok()).ok_or(Errno::EPROTO)
        })
    }

    /// Dump the server's flight recorder as Chrome trace-viewer JSON
    /// (loadable in Perfetto / `chrome://tracing`). `window` restricts
    /// the dump to events from the trailing `Some(seconds)`; `None`
    /// returns everything still buffered. Admin principals only.
    pub fn tracedump(&mut self, window: Option<u64>) -> SysResult<String> {
        let line = match window {
            Some(secs) => format!("tracedump {secs}"),
            None => "tracedump".to_string(),
        };
        let data = self.rpc(Verb::ReadOnly, &line, None, read_reply_payload)?;
        String::from_utf8(data).map_err(|_| Errno::EPROTO)
    }

    /// One-line health rollup: event-loop lag p99, shard-lock wait p99,
    /// in-flight requests, shed count, connections, workers, and stall
    /// count. Percentiles are `None` while the underlying histograms
    /// are empty. Admin principals only.
    pub fn health(&mut self) -> SysResult<HealthRow> {
        self.rpc(Verb::ReadOnly, "health", None, |_, words| {
            parse_health_row(words)
        })
    }

    /// The server's recent slow operations, oldest first. Admin
    /// principals only — everyone else gets `EACCES`.
    pub fn slowops(&mut self) -> SysResult<Vec<SlowOpRow>> {
        let data = self.rpc(Verb::ReadOnly, "slowops", None, read_reply_payload)?;
        let text = String::from_utf8(data).map_err(|_| Errno::EPROTO)?;
        parse_slowop_rows(&text)
    }

    /// Start a pipelined run: queue any number of requests, then
    /// [`Pipeline::run`] writes them all in one burst and collects the
    /// replies in order. Wire protocol v2 — each request carries an
    /// `id=<n>` token the server echoes on its reply, so the client can
    /// verify correlation even though replies may have been computed
    /// out of order server-side.
    ///
    /// Pipelined requests do **not** retry: a transport fault mid-run
    /// leaves it ambiguous which queued operations executed, so the
    /// whole run fails and the connection is poisoned. Callers that
    /// need retry semantics should pipeline only idempotent operations
    /// and re-run the batch themselves.
    pub fn pipeline(&mut self) -> Pipeline<'_> {
        Pipeline {
            client: self,
            ops: Vec::new(),
        }
    }

    /// Run many small metadata operations in **one** round trip via the
    /// v2 `batch` RPC: the sub-operations travel as a single payload,
    /// the replies come back as a single payload, and the server runs
    /// the whole batch under one shed check and one in-flight slot.
    ///
    /// Unlike [`ChirpClient::pipeline`], a batch is one wire-level
    /// request, so it runs under the normal retry engine — classified
    /// as conservatively as its most dangerous member (a batch with one
    /// `mkdir` in it retries like a `mkdir`).
    ///
    /// Per-operation failures do not fail the batch: each
    /// [`BatchReply`] carries its own result.
    pub fn batch(&mut self, ops: &[BatchOp]) -> SysResult<Vec<BatchReply>> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        let mut body = String::new();
        for op in ops {
            body.push_str(&op.line());
            body.push('\n');
        }
        let class = ops
            .iter()
            .map(BatchOp::class)
            .fold(Verb::ReadOnly, Verb::compose);
        let line = format!("batch {}", body.len());
        let expected = ops.len();
        self.rpc(class, &line, Some(body.as_bytes()), move |r, words| {
            let len: u64 = words
                .first()
                .and_then(|w| w.parse().ok())
                .ok_or(Errno::EPROTO)?;
            let data = codec::read_payload(r, len)?;
            let text = String::from_utf8(data).map_err(|_| Errno::EPROTO)?;
            let replies: Vec<BatchReply> = text
                .lines()
                .map(parse_batch_line)
                .collect::<SysResult<_>>()?;
            if replies.len() != expected {
                return Err(Errno::EPROTO);
            }
            Ok(replies)
        })
    }

    /// Polite disconnect. A no-op on an already-poisoned connection —
    /// there is nothing left to be polite to.
    pub fn quit(mut self) -> SysResult<()> {
        if self.conn.is_none() {
            return Ok(());
        }
        self.rpc(Verb::FdWrite, "quit", None, |_, _| Ok(()))
    }
}

/// Send one stamped request and read its reply on one connection.
fn run_attempt<T>(
    conn: &mut Conn,
    line: &str,
    payload: Option<&[u8]>,
    parse: &mut impl FnMut(&mut BufReader<TcpStream>, &[String]) -> SysResult<T>,
) -> Result<T, Fail> {
    codec::write_line(&mut conn.writer, line).map_err(Fail::Transport)?;
    if let Some(data) = payload {
        conn.writer
            .write_all(data)
            .map_err(|_| Fail::Transport(Errno::EPIPE))?;
        conn.writer.flush().map_err(|_| Fail::Transport(Errno::EPIPE))?;
    }
    let reply = codec::read_line(&mut conn.reader).map_err(Fail::Transport)?;
    let words = parse_reply(&reply)?;
    // Reply-body errors (short payload, malformed words) leave the
    // stream position undefined: transport faults, poisoning the
    // connection.
    parse(&mut conn.reader, &words).map_err(Fail::Transport)
}

/// Reply parser for `ok <len>` + payload responses.
fn read_reply_payload(r: &mut BufReader<TcpStream>, words: &[String]) -> SysResult<Vec<u8>> {
    let len: u64 = words
        .first()
        .and_then(|w| w.parse().ok())
        .ok_or(Errno::EPROTO)?;
    codec::read_payload(r, len)
}

/// One request queued on a [`Pipeline`].
#[derive(Debug)]
struct QueuedOp {
    line: String,
    payload: Option<Vec<u8>>,
    trace: TraceId,
    /// Whether an `ok` reply announces a payload (`ok <len>` + bytes)
    /// that must be drained to keep the stream framed.
    wants_payload: bool,
}

/// The reply to one pipelined request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipeReply {
    /// The trace id this request carried (joins server audit rows).
    pub trace: TraceId,
    /// Decoded `ok` reply words, or the application errno from an
    /// `error` reply. Transport-level faults fail the whole run
    /// instead of appearing here.
    pub result: SysResult<Vec<String>>,
    /// The reply payload, for operations that return one (`get`,
    /// `readdir`, `pread`, …).
    pub payload: Option<Vec<u8>>,
}

impl PipeReply {
    /// The first reply word parsed as a number (fd, byte count, …).
    pub fn num(&self) -> SysResult<i64> {
        self.result
            .as_ref()
            .map_err(|e| *e)?
            .first()
            .and_then(|w| w.parse().ok())
            .ok_or(Errno::EPROTO)
    }
}

/// A queue of requests sent to the server in one burst (wire protocol
/// v2 pipelining). Build with [`ChirpClient::pipeline`], enqueue
/// operations, then call [`Pipeline::run`].
#[derive(Debug)]
pub struct Pipeline<'a> {
    client: &'a mut ChirpClient,
    ops: Vec<QueuedOp>,
}

impl Pipeline<'_> {
    fn push(&mut self, line: String, payload: Option<Vec<u8>>, wants_payload: bool) -> usize {
        let trace = self.client.stamp();
        self.ops.push(QueuedOp {
            line,
            payload,
            trace,
            wants_payload,
        });
        self.ops.len() - 1
    }

    /// Operations queued so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Queue a `whoami`.
    pub fn whoami(&mut self) -> usize {
        self.push("whoami".to_string(), None, false)
    }

    /// Queue a `stat`.
    pub fn stat(&mut self, path: &str) -> usize {
        self.push(format!("stat {}", encode_word(path)), None, false)
    }

    /// Queue an `open`.
    pub fn open(&mut self, path: &str, flags: OpenFlags, mode: u16) -> usize {
        self.push(
            format!("open {} {} {}", encode_word(path), flags.to_bits(), mode),
            None,
            false,
        )
    }

    /// Queue a `close`.
    pub fn close(&mut self, fd: i64) -> usize {
        self.push(format!("close {fd}"), None, false)
    }

    /// Queue an `fstat`.
    pub fn fstat(&mut self, fd: i64) -> usize {
        self.push(format!("fstat {fd}"), None, false)
    }

    /// Queue a `pread`; the reply payload carries the bytes.
    pub fn pread(&mut self, fd: i64, len: usize, off: u64) -> usize {
        self.push(format!("pread {fd} {len} {off}"), None, true)
    }

    /// Queue a `pwrite`.
    pub fn pwrite(&mut self, fd: i64, data: &[u8], off: u64) -> usize {
        self.push(
            format!("pwrite {fd} {off} {}", data.len()),
            Some(data.to_vec()),
            false,
        )
    }

    /// Queue a `mkdir`.
    pub fn mkdir(&mut self, path: &str, mode: u16) -> usize {
        self.push(format!("mkdir {} {}", encode_word(path), mode), None, false)
    }

    /// Queue an `rmdir`.
    pub fn rmdir(&mut self, path: &str) -> usize {
        self.push(format!("rmdir {}", encode_word(path)), None, false)
    }

    /// Queue an `unlink`.
    pub fn unlink(&mut self, path: &str) -> usize {
        self.push(format!("unlink {}", encode_word(path)), None, false)
    }

    /// Queue a `rename`.
    pub fn rename(&mut self, old: &str, new: &str) -> usize {
        self.push(
            format!("rename {} {}", encode_word(old), encode_word(new)),
            None,
            false,
        )
    }

    /// Queue a `truncate`.
    pub fn truncate(&mut self, path: &str, len: u64) -> usize {
        self.push(format!("truncate {} {len}", encode_word(path)), None, false)
    }

    /// Queue a `readdir`; the reply payload carries the listing.
    pub fn readdir(&mut self, path: &str) -> usize {
        self.push(format!("readdir {}", encode_word(path)), None, true)
    }

    /// Queue a `getacl`; the reply payload carries the ACL text.
    pub fn getacl(&mut self, path: &str) -> usize {
        self.push(format!("getacl {}", encode_word(path)), None, true)
    }

    /// Queue a whole-file `get`; the reply payload carries the bytes.
    pub fn get(&mut self, path: &str) -> usize {
        self.push(format!("get {}", encode_word(path)), None, true)
    }

    /// Queue a whole-file `put` (mode 0644).
    pub fn put(&mut self, path: &str, data: &[u8]) -> usize {
        self.push(
            format!("put {} {} {}", encode_word(path), data.len(), 0o644),
            Some(data.to_vec()),
            false,
        )
    }

    /// Send every queued request in one write, then read the replies
    /// in queue order, verifying each echoed `id=` token. Returns one
    /// [`PipeReply`] per queued operation.
    ///
    /// Any transport fault (including an id mismatch) poisons the
    /// connection and fails the whole run — no retries.
    pub fn run(self) -> SysResult<Vec<PipeReply>> {
        let Pipeline { client, ops } = self;
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        if client.conn.is_none() {
            let (conn, principal) = dial(client.addr, &client.creds, &client.policy)?;
            client.conn = Some(conn);
            client.principal = principal;
            client.generation += 1;
            client.reconnects += 1;
        }
        let mut conn = client.conn.take().expect("just ensured a connection");
        let start = Instant::now();
        let start_ns = idbox_obs::now_unix_ns();
        let res = run_pipeline(&mut conn, &ops);
        // Same poisoning rule as the one-shot path: only a clean run
        // proves the stream is still framed.
        if res.is_ok() {
            client.conn = Some(conn);
            // One caller-side flight span per queued op, all sharing
            // the burst's wall-clock window: the per-op server spans
            // (rpc/dispatch/policy/shard) carve up the interior.
            let dur_ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            for op in &ops {
                idbox_obs::flight::record_span(
                    "client",
                    op.line.split(' ').next().unwrap_or("rpc"),
                    Some(op.trace),
                    start_ns,
                    dur_ns,
                );
            }
        }
        res
    }
}

/// The wire work of [`Pipeline::run`] on one connection: one buffered
/// write for all requests, then an in-order, id-verified read pass.
fn run_pipeline(conn: &mut Conn, ops: &[QueuedOp]) -> SysResult<Vec<PipeReply>> {
    let mut buf = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        // v2 stacking order: `<line> id=<n> trace=<t>` — the trace
        // token stays last on the wire, as v1 servers expect.
        let stamped = codec::with_trace(&codec::with_id(&op.line, (i + 1) as u64), op.trace);
        if stamped.len() + 1 > codec::LINE_MAX {
            return Err(Errno::EINVAL);
        }
        buf.extend_from_slice(stamped.as_bytes());
        buf.push(b'\n');
        if let Some(p) = &op.payload {
            buf.extend_from_slice(p);
        }
    }
    conn.writer.write_all(&buf).map_err(|_| Errno::EPIPE)?;
    conn.writer.flush().map_err(|_| Errno::EPIPE)?;
    let mut replies = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        let raw = codec::read_line(&mut conn.reader)?;
        let (head, id) = codec::strip_id(&raw);
        if id != Some((i + 1) as u64) {
            return Err(Errno::EPROTO);
        }
        let result = match parse_reply(head) {
            Ok(words) => Ok(words),
            Err(Fail::App(e)) => Err(e),
            Err(fail) => return Err(fail.errno()),
        };
        let payload = match (&result, op.wants_payload) {
            (Ok(words), true) => {
                let len: u64 = words
                    .first()
                    .and_then(|w| w.parse().ok())
                    .ok_or(Errno::EPROTO)?;
                Some(codec::read_payload(&mut conn.reader, len)?)
            }
            _ => None,
        };
        replies.push(PipeReply {
            trace: op.trace,
            result,
            payload,
        });
    }
    Ok(replies)
}

/// One operation in a [`ChirpClient::batch`] — the metadata subset of
/// the protocol the server accepts inside a `batch` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp {
    /// Ask the server who we are.
    Whoami,
    /// Stat a path.
    Stat(String),
    /// Stat an open server-side fd.
    Fstat(i64),
    /// Open a path; the sub-reply number is the fd.
    Open {
        /// Client-visible path.
        path: String,
        /// Open flags.
        flags: OpenFlags,
        /// Creation mode.
        mode: u16,
    },
    /// Close a server-side fd.
    Close(i64),
    /// List a directory (sub-reply text is the encoded listing).
    Readdir(String),
    /// Fetch a directory's ACL (sub-reply text is the ACL).
    Getacl(String),
    /// Create a directory.
    Mkdir {
        /// Client-visible path.
        path: String,
        /// Creation mode.
        mode: u16,
    },
    /// Remove a directory.
    Rmdir(String),
    /// Unlink a file.
    Unlink(String),
    /// Rename a path.
    Rename {
        /// Old client-visible path.
        old: String,
        /// New client-visible path.
        new: String,
    },
    /// Truncate a file.
    Truncate {
        /// Client-visible path.
        path: String,
        /// New length.
        len: u64,
    },
}

impl BatchOp {
    /// Render the sub-operation's protocol line.
    fn line(&self) -> String {
        match self {
            BatchOp::Whoami => "whoami".to_string(),
            BatchOp::Stat(p) => format!("stat {}", encode_word(p)),
            BatchOp::Fstat(fd) => format!("fstat {fd}"),
            BatchOp::Open { path, flags, mode } => {
                format!("open {} {} {}", encode_word(path), flags.to_bits(), mode)
            }
            BatchOp::Close(fd) => format!("close {fd}"),
            BatchOp::Readdir(p) => format!("readdir {}", encode_word(p)),
            BatchOp::Getacl(p) => format!("getacl {}", encode_word(p)),
            BatchOp::Mkdir { path, mode } => format!("mkdir {} {}", encode_word(path), mode),
            BatchOp::Rmdir(p) => format!("rmdir {}", encode_word(p)),
            BatchOp::Unlink(p) => format!("unlink {}", encode_word(p)),
            BatchOp::Rename { old, new } => {
                format!("rename {} {}", encode_word(old), encode_word(new))
            }
            BatchOp::Truncate { path, len } => format!("truncate {} {len}", encode_word(path)),
        }
    }

    /// Retry classification (see [`Verb`]).
    fn class(&self) -> Verb {
        match self {
            BatchOp::Whoami | BatchOp::Stat(_) | BatchOp::Readdir(_) | BatchOp::Getacl(_) => {
                Verb::ReadOnly
            }
            BatchOp::Open { flags, .. } => {
                if flags.excl {
                    Verb::Mutating
                } else if flags.write || flags.create || flags.trunc {
                    Verb::IdemWrite
                } else {
                    Verb::ReadOnly
                }
            }
            BatchOp::Fstat(_) => Verb::FdRead,
            BatchOp::Close(_) => Verb::FdWrite,
            BatchOp::Truncate { .. } => Verb::IdemWrite,
            BatchOp::Mkdir { .. }
            | BatchOp::Rmdir(_)
            | BatchOp::Unlink(_)
            | BatchOp::Rename { .. } => Verb::Mutating,
        }
    }
}

/// The result of one [`BatchOp`] inside a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReply {
    /// Decoded sub-reply words, or the operation's errno. Operations
    /// that return bulk text (`readdir`, `getacl`) collapse it into a
    /// single word — see [`BatchReply::text`].
    pub result: SysResult<Vec<String>>,
}

impl BatchReply {
    /// The first reply word parsed as a number (fd, size, exit code).
    pub fn num(&self) -> SysResult<i64> {
        self.result
            .as_ref()
            .map_err(|e| *e)?
            .first()
            .and_then(|w| w.parse().ok())
            .ok_or(Errno::EPROTO)
    }

    /// The sub-reply's bulk text (empty when the reply carried none).
    pub fn text(&self) -> SysResult<String> {
        Ok(self
            .result
            .as_ref()
            .map_err(|e| *e)?
            .first()
            .cloned()
            .unwrap_or_default())
    }

    /// Decode a `stat`/`fstat` sub-reply.
    pub fn stat(&self) -> SysResult<StatBuf> {
        ChirpClient::stat_words(self.result.as_ref().map_err(|e| *e)?)
    }
}

/// Parse one line of a batch reply payload. Transport-shaped garbage
/// (neither `ok` nor `error <code>`) fails the whole batch.
fn parse_batch_line(line: &str) -> SysResult<BatchReply> {
    match parse_reply(line) {
        Ok(words) => Ok(BatchReply { result: Ok(words) }),
        Err(Fail::App(e)) => Ok(BatchReply { result: Err(e) }),
        Err(_) => Err(Errno::EPROTO),
    }
}

/// One line of the `stats` RPC: a syscall's dispatch count and latency
/// percentiles (bucket ceilings, nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatRow {
    /// Syscall name.
    pub name: String,
    /// Dispatches recorded.
    pub count: u64,
    /// Median latency (ns); `None` when the histogram is empty (the
    /// server sends `-`).
    pub p50_ns: Option<u64>,
    /// 99th-percentile latency (ns); `None` when the histogram is
    /// empty.
    pub p99_ns: Option<u64>,
}

/// The `health` RPC rollup: the numbers an operator reaches for first
/// during an incident, in one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthRow {
    /// 99th-percentile event-loop cycle lag in microseconds, merged
    /// across workers; `None` while no readiness cycle has been timed.
    pub loop_p99_us: Option<u64>,
    /// 99th-percentile shard-lock wait in microseconds, merged across
    /// every profiled lock domain; `None` while uncontended.
    pub shard_wait_p99_us: Option<u64>,
    /// Requests currently being served.
    pub inflight: u64,
    /// Requests refused by load shedding (admission + per-identity).
    pub shed: u64,
    /// Connections currently registered with the event loops.
    pub conns: u64,
    /// Event-loop worker threads.
    pub workers: u64,
    /// Loop-stall watchdog trips since the server started.
    pub stalls: u64,
}

/// One line of the `audit` RPC: a policy decision the server recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRow {
    /// Monotonic sequence number (gaps = dropped history).
    pub seq: u64,
    /// The boxed identity the ruling was made for.
    pub identity: String,
    /// Syscall name.
    pub syscall: String,
    /// The path(s) the call named, if any.
    pub path: Option<String>,
    /// `allow`, `deny`, or `reserve-amplified`.
    pub verdict: String,
    /// The errno a denial carried.
    pub errno: Option<Errno>,
    /// The trace id of the request that triggered the ruling, when the
    /// client sent one (and the server is new enough to report it).
    pub trace: Option<TraceId>,
}

/// One line of the `slowops` RPC: a span that crossed the server's
/// slow-op threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowOpRow {
    /// The trace id of the request, when the client sent one.
    pub trace: Option<TraceId>,
    /// Which phase was timed: `rpc`, `policy`, `dispatch`, or `exec`.
    pub phase: String,
    /// What ran: the RPC verb, syscall name, or program path.
    pub name: String,
    /// The principal the work was done for.
    pub identity: String,
    /// Wall-clock start, nanoseconds since the Unix epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Parse `stats` payload lines. Trailing columns beyond the known four
/// are ignored, so a newer server can append more without breaking old
/// clients.
fn parse_stat_rows(text: &str) -> SysResult<Vec<StatRow>> {
    text.lines()
        .map(|line| {
            let mut f = line.split_whitespace();
            let row = (|| {
                let name = f.next()?.to_string();
                let count = f.next()?.parse().ok()?;
                let mut pct = || -> Option<Option<u64>> {
                    match f.next()? {
                        "-" => Some(None),
                        w => Some(Some(w.parse().ok()?)),
                    }
                };
                Some(StatRow {
                    name,
                    count,
                    p50_ns: pct()?,
                    p99_ns: pct()?,
                })
            })();
            row.ok_or(Errno::EPROTO)
        })
        .collect()
}

/// Parse the `health` reply words (`key=value` pairs past the `ok`,
/// already stripped). Unknown keys are ignored so a newer server can
/// append more; `-` means "no data yet" for percentile fields.
fn parse_health_row(words: &[String]) -> SysResult<HealthRow> {
    let mut row = HealthRow {
        loop_p99_us: None,
        shard_wait_p99_us: None,
        inflight: 0,
        shed: 0,
        conns: 0,
        workers: 0,
        stalls: 0,
    };
    for w in words {
        let Some((key, val)) = w.split_once('=') else {
            return Err(Errno::EPROTO);
        };
        let opt = || -> SysResult<Option<u64>> {
            match val {
                "-" => Ok(None),
                v => v.parse().map(Some).map_err(|_| Errno::EPROTO),
            }
        };
        let num = || -> SysResult<u64> { val.parse().map_err(|_| Errno::EPROTO) };
        match key {
            "loop_p99_us" => row.loop_p99_us = opt()?,
            "shard_wait_p99_us" => row.shard_wait_p99_us = opt()?,
            "inflight" => row.inflight = num()?,
            "shed" => row.shed = num()?,
            "conns" => row.conns = num()?,
            "workers" => row.workers = num()?,
            "stalls" => row.stalls = num()?,
            _ => {}
        }
    }
    Ok(row)
}

/// Parse `audit` payload lines. The trace column was appended after
/// the first release, so it is optional; columns beyond it are
/// ignored, preserving the same forward compatibility for the future.
fn parse_audit_rows(text: &str) -> SysResult<Vec<AuditRow>> {
    text.lines()
        .map(|line| {
            let mut f = line.split_whitespace();
            let row = (|| {
                Some(AuditRow {
                    seq: f.next()?.parse().ok()?,
                    identity: codec::decode_word(f.next()?).ok()?,
                    syscall: f.next()?.to_string(),
                    path: match f.next()? {
                        "-" => None,
                        w => Some(codec::decode_word(w).ok()?),
                    },
                    verdict: f.next()?.to_string(),
                    errno: match f.next()? {
                        "-" => None,
                        w => Some(Errno::from_code(w.parse().ok()?)?),
                    },
                    trace: match f.next() {
                        None | Some("-") => None,
                        Some(w) => Some(w.parse().ok()?),
                    },
                })
            })();
            row.ok_or(Errno::EPROTO)
        })
        .collect()
}

/// Parse `slowops` payload lines; trailing unknown columns are ignored.
fn parse_slowop_rows(text: &str) -> SysResult<Vec<SlowOpRow>> {
    text.lines()
        .map(|line| {
            let mut f = line.split_whitespace();
            let row = (|| {
                Some(SlowOpRow {
                    trace: match f.next()? {
                        "-" => None,
                        w => Some(w.parse().ok()?),
                    },
                    phase: f.next()?.to_string(),
                    name: codec::decode_word(f.next()?).ok()?,
                    identity: codec::decode_word(f.next()?).ok()?,
                    start_ns: f.next()?.parse().ok()?,
                    dur_ns: f.next()?.parse().ok()?,
                })
            })();
            row.ok_or(Errno::EPROTO)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_rows_ignore_unknown_trailing_columns() {
        let known = parse_stat_rows("stat 10 100 900\n").unwrap();
        // A newer server appending a p999 column must parse identically.
        let newer = parse_stat_rows("stat 10 100 900 9999 extra\n").unwrap();
        assert_eq!(known, newer);
        assert_eq!(known[0].name, "stat");
        assert_eq!(
            (known[0].count, known[0].p50_ns, known[0].p99_ns),
            (10, Some(100), Some(900))
        );
        assert!(parse_stat_rows("stat 10 100\n").is_err(), "short row is EPROTO");
        // An empty histogram has no percentiles: the server sends `-`.
        let empty = parse_stat_rows("stat 0 - -\n").unwrap();
        assert_eq!((empty[0].p50_ns, empty[0].p99_ns), (None, None));
    }

    #[test]
    fn health_row_parses_dashes_and_ignores_unknown_keys() {
        let words: Vec<String> = "loop_p99_us=120 shard_wait_p99_us=- inflight=3 shed=1 \
             conns=2 workers=4 stalls=0 future_key=9"
            .split_whitespace()
            .map(String::from)
            .collect();
        let row = parse_health_row(&words).unwrap();
        assert_eq!(row.loop_p99_us, Some(120));
        assert_eq!(row.shard_wait_p99_us, None);
        assert_eq!((row.inflight, row.shed, row.conns), (3, 1, 2));
        assert_eq!((row.workers, row.stalls), (4, 0));
        assert_eq!(
            parse_health_row(&["nokey".to_string()]),
            Err(Errno::EPROTO)
        );
    }

    #[test]
    fn audit_rows_parse_with_and_without_trace_column() {
        // A pre-trace server emits six columns...
        let old = parse_audit_rows("5 fred open /a deny 13\n").unwrap();
        assert_eq!(old[0].trace, None);
        assert_eq!(old[0].errno, Some(Errno::EACCES));
        // ...the current one seven ("-" = request carried no id)...
        let now = parse_audit_rows("5 fred open /a deny 13 00000000000000ab\n").unwrap();
        assert_eq!(now[0].trace.unwrap().raw(), 0xab);
        let none = parse_audit_rows("5 fred open - allow - -\n").unwrap();
        assert_eq!(none[0].trace, None);
        assert_eq!(none[0].path, None);
        // ...and a future one may append more columns still.
        let future =
            parse_audit_rows("5 fred open /a deny 13 00000000000000ab whatever 9\n").unwrap();
        assert_eq!(now, future);
        assert!(parse_audit_rows("5 fred open /a deny 13 nothex\n").is_err());
    }

    #[test]
    fn parse_reply_splits_transport_from_app() {
        assert_eq!(parse_reply("ok 42").unwrap(), ["42"]);
        assert!(matches!(
            parse_reply("error 13"),
            Err(Fail::App(Errno::EACCES))
        ));
        assert!(matches!(
            parse_reply("gibberish"),
            Err(Fail::Transport(Errno::EPROTO))
        ));
        assert!(matches!(
            parse_reply("error notanumber"),
            Err(Fail::Transport(Errno::EPROTO))
        ));
    }

    #[test]
    fn first_retry_is_immediate_then_backoff_stays_within_bounds() {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(100),
            ..RetryPolicy::default()
        };
        let mut jitter = 7u64;
        for trial in 0..32 {
            let mut prev = policy.base_delay;
            // The first retry never sleeps — that was the fault-sweep
            // latency cliff.
            assert_eq!(
                backoff_delay(&policy, 1, &mut prev, &mut jitter),
                Duration::ZERO
            );
            for failures in 2..12u32 {
                let hi = (prev * 3).min(policy.max_delay);
                let d = backoff_delay(&policy, failures, &mut prev, &mut jitter);
                assert!(
                    d >= policy.base_delay.min(hi) && d <= policy.max_delay,
                    "trial={trial} failures={failures}: {d:?} outside [base, cap]"
                );
                assert!(d <= hi, "trial={trial} failures={failures}: {d:?} > 3·prev {hi:?}");
            }
        }
        // A zero base never sleeps.
        let zero = RetryPolicy {
            base_delay: Duration::ZERO,
            ..RetryPolicy::default()
        };
        let mut prev = Duration::ZERO;
        assert_eq!(backoff_delay(&zero, 3, &mut prev, &mut jitter), Duration::ZERO);
    }

    #[test]
    fn same_seed_same_backoff_schedule() {
        let policy = RetryPolicy::default();
        let (mut a, mut b) = (99u64, 99u64);
        let (mut pa, mut pb) = (policy.base_delay, policy.base_delay);
        for failures in 1..8 {
            assert_eq!(
                backoff_delay(&policy, failures, &mut pa, &mut a),
                backoff_delay(&policy, failures, &mut pb, &mut b)
            );
        }
        assert_eq!(pa, pb);
    }

    #[test]
    fn batch_ops_render_lines_and_compose_classes() {
        let ops = [
            BatchOp::Whoami,
            BatchOp::Stat("/a dir/f".to_string()),
            BatchOp::Rename {
                old: "/x".to_string(),
                new: "/y".to_string(),
            },
        ];
        assert_eq!(ops[0].line(), "whoami");
        assert_eq!(ops[1].line(), "stat /a%20dir/f");
        assert_eq!(ops[2].line(), "rename /x /y");
        // One mutating member makes the whole batch mutating…
        let class = ops.iter().map(BatchOp::class).fold(Verb::ReadOnly, Verb::compose);
        assert_eq!(class, Verb::Mutating);
        // …and an fd-based member dominates even that.
        assert_eq!(Verb::Mutating.compose(Verb::FdRead), Verb::FdRead);
        assert_eq!(Verb::ReadOnly.compose(Verb::ReadOnly), Verb::ReadOnly);
    }

    #[test]
    fn batch_reply_lines_split_ok_from_error() {
        let ok = parse_batch_line("ok 42").unwrap();
        assert_eq!(ok.num().unwrap(), 42);
        let denied = parse_batch_line("error 13").unwrap();
        assert_eq!(denied.result, Err(Errno::EACCES));
        // Bulk text collapses to one decoded word.
        let listing = parse_batch_line("ok a%0Ab%0A").unwrap();
        assert_eq!(listing.text().unwrap(), "a\nb\n");
        // Garbage is a transport fault for the whole batch.
        assert_eq!(parse_batch_line("gibberish"), Err(Errno::EPROTO));
    }

    #[test]
    fn slowop_rows_parse_and_tolerate_extras() {
        let text = "00000000000000ab exec /export/job%20dir fred 1000 2000\n\
                    - dispatch stat fred 1500 10 future-column\n";
        let rows = parse_slowop_rows(text).unwrap();
        assert_eq!(rows[0].trace.unwrap().raw(), 0xab);
        assert_eq!(rows[0].name, "/export/job dir");
        assert_eq!(rows[1].trace, None);
        assert_eq!(rows[1].phase, "dispatch");
        assert_eq!((rows[1].start_ns, rows[1].dur_ns), (1500, 10));
    }
}
