//! The Chirp client library.

use crate::codec::{self, encode_word, parse_response};
use idbox_acl::Acl;
use idbox_auth::{authenticate_client, AuthTransport, ClientCredential};
use idbox_interpose::abi;
use idbox_kernel::OpenFlags;
use idbox_obs::{next_trace_id, TraceId};
use idbox_types::{Errno, Principal, SysResult};
use idbox_vfs::{DirEntry, StatBuf};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// An authenticated connection to a Chirp server.
#[derive(Debug)]
pub struct ChirpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    principal: Principal,
    /// The trace id stamped on the most recently sent request — what a
    /// caller quotes to join server-side audit rows and slow-op spans
    /// to its own operation.
    last_trace: Option<TraceId>,
}

struct ClientTransport<'a> {
    reader: &'a mut BufReader<TcpStream>,
    writer: &'a mut TcpStream,
}

impl AuthTransport for ClientTransport<'_> {
    fn send_line(&mut self, line: &str) -> Result<(), String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .and_then(|_| self.writer.flush())
            .map_err(|e| e.to_string())
    }

    fn recv_line(&mut self) -> Result<String, String> {
        codec::read_line(self.reader).map_err(|e| e.to_string())
    }
}

impl ChirpClient {
    /// Connect and authenticate, offering `creds` in preference order.
    pub fn connect(addr: SocketAddr, creds: &[ClientCredential]) -> SysResult<Self> {
        let stream = TcpStream::connect(addr).map_err(|_| Errno::ECONNREFUSED)?;
        // The protocol is strict request/response on small lines; Nagle
        // plus delayed ACKs would stall every round trip by ~40ms.
        let _ = stream.set_nodelay(true);
        let mut reader = BufReader::new(stream.try_clone().map_err(|_| Errno::EIO)?);
        let mut writer = stream;
        let principal = {
            let mut t = ClientTransport {
                reader: &mut reader,
                writer: &mut writer,
            };
            authenticate_client(&mut t, creds).map_err(|_| Errno::EACCES)?
        };
        Ok(ChirpClient {
            reader,
            writer,
            principal,
            last_trace: None,
        })
    }

    /// The principal the server knows us by.
    pub fn principal(&self) -> &Principal {
        &self.principal
    }

    /// The trace id carried by the most recently sent request, if any
    /// request has been sent yet.
    pub fn last_trace(&self) -> Option<TraceId> {
        self.last_trace
    }

    /// Mint a fresh trace id for one request and remember it.
    fn stamp(&mut self) -> TraceId {
        let id = next_trace_id();
        self.last_trace = Some(id);
        id
    }

    fn send(&mut self, line: &str) -> SysResult<()> {
        let id = self.stamp();
        codec::write_line(&mut self.writer, &codec::with_trace(line, id))
    }

    fn send_with_payload(&mut self, line: &str, data: &[u8]) -> SysResult<()> {
        let id = self.stamp();
        codec::write_line(&mut self.writer, &codec::with_trace(line, id))?;
        self.writer.write_all(data).map_err(|_| Errno::EPIPE)?;
        self.writer.flush().map_err(|_| Errno::EPIPE)
    }

    fn recv(&mut self) -> SysResult<Vec<String>> {
        let line = codec::read_line(&mut self.reader)?;
        parse_response(&line)
    }

    fn recv_payload(&mut self) -> SysResult<Vec<u8>> {
        let words = self.recv()?;
        let len: u64 = words
            .first()
            .and_then(|w| w.parse().ok())
            .ok_or(Errno::EPROTO)?;
        codec::read_payload(&mut self.reader, len)
    }

    fn round_trip(&mut self, line: &str) -> SysResult<Vec<String>> {
        self.send(line)?;
        self.recv()
    }

    fn one_num(words: &[String]) -> SysResult<i64> {
        words
            .first()
            .and_then(|w| w.parse().ok())
            .ok_or(Errno::EPROTO)
    }

    fn stat_words(words: &[String]) -> SysResult<StatBuf> {
        if words.len() != abi::STAT_WORDS {
            return Err(Errno::EPROTO);
        }
        let mut ws = [0u64; abi::STAT_WORDS];
        for (i, w) in words.iter().enumerate() {
            ws[i] = w.parse().map_err(|_| Errno::EPROTO)?;
        }
        abi::decode_stat(&ws)
    }

    // ------------------------------------------------------------------
    // Protocol operations
    // ------------------------------------------------------------------

    /// Who does the server think we are?
    pub fn whoami(&mut self) -> SysResult<Principal> {
        let words = self.round_trip("whoami")?;
        let s = words.first().ok_or(Errno::EPROTO)?;
        Principal::parse(s).map_err(|_| Errno::EPROTO)
    }

    /// Remote `stat`.
    pub fn stat(&mut self, path: &str) -> SysResult<StatBuf> {
        let words = self.round_trip(&format!("stat {}", encode_word(path)))?;
        Self::stat_words(&words)
    }

    /// Remote `open`; returns a server-side descriptor.
    pub fn open(&mut self, path: &str, flags: OpenFlags, mode: u16) -> SysResult<i64> {
        let words = self.round_trip(&format!(
            "open {} {} {}",
            encode_word(path),
            flags.to_bits(),
            mode
        ))?;
        Self::one_num(&words)
    }

    /// Remote `close`.
    pub fn close(&mut self, fd: i64) -> SysResult<()> {
        self.round_trip(&format!("close {fd}"))?;
        Ok(())
    }

    /// Remote positioned read.
    pub fn pread(&mut self, fd: i64, len: usize, off: u64) -> SysResult<Vec<u8>> {
        self.send(&format!("pread {fd} {len} {off}"))?;
        self.recv_payload()
    }

    /// Remote positioned write.
    pub fn pwrite(&mut self, fd: i64, data: &[u8], off: u64) -> SysResult<usize> {
        self.send_with_payload(&format!("pwrite {fd} {off} {}", data.len()), data)?;
        let words = self.recv()?;
        Ok(Self::one_num(&words)? as usize)
    }

    /// Remote `fstat`.
    pub fn fstat(&mut self, fd: i64) -> SysResult<StatBuf> {
        let words = self.round_trip(&format!("fstat {fd}"))?;
        Self::stat_words(&words)
    }

    /// Remote `mkdir` — subject to the reserve right exactly as local
    /// mkdir inside a box.
    pub fn mkdir(&mut self, path: &str, mode: u16) -> SysResult<()> {
        self.round_trip(&format!("mkdir {} {}", encode_word(path), mode))?;
        Ok(())
    }

    /// Remote `rmdir`.
    pub fn rmdir(&mut self, path: &str) -> SysResult<()> {
        self.round_trip(&format!("rmdir {}", encode_word(path)))?;
        Ok(())
    }

    /// Remote `unlink`.
    pub fn unlink(&mut self, path: &str) -> SysResult<()> {
        self.round_trip(&format!("unlink {}", encode_word(path)))?;
        Ok(())
    }

    /// Remote `rename`.
    pub fn rename(&mut self, old: &str, new: &str) -> SysResult<()> {
        self.round_trip(&format!(
            "rename {} {}",
            encode_word(old),
            encode_word(new)
        ))?;
        Ok(())
    }

    /// Remote `truncate`.
    pub fn truncate(&mut self, path: &str, len: u64) -> SysResult<()> {
        self.round_trip(&format!("truncate {} {len}", encode_word(path)))?;
        Ok(())
    }

    /// Remote directory listing.
    pub fn readdir(&mut self, path: &str) -> SysResult<Vec<DirEntry>> {
        self.send(&format!("readdir {}", encode_word(path)))?;
        let data = self.recv_payload()?;
        let text = String::from_utf8(data).map_err(|_| Errno::EPROTO)?;
        abi::decode_entries(&text)
    }

    /// Fetch a directory's ACL.
    pub fn getacl(&mut self, path: &str) -> SysResult<Acl> {
        self.send(&format!("getacl {}", encode_word(path)))?;
        let data = self.recv_payload()?;
        let text = String::from_utf8(data).map_err(|_| Errno::EPROTO)?;
        Acl::parse(&text).map_err(|_| Errno::EPROTO)
    }

    /// Install a directory's ACL (requires the A right).
    pub fn setacl(&mut self, path: &str, acl: &Acl) -> SysResult<()> {
        let text = acl.to_text();
        self.send_with_payload(
            &format!("setacl {} {}", encode_word(path), text.len()),
            text.as_bytes(),
        )?;
        self.recv()?;
        Ok(())
    }

    /// Stage a whole file onto the server (mode 0644).
    pub fn put(&mut self, path: &str, data: &[u8]) -> SysResult<()> {
        self.put_mode(path, data, 0o644)
    }

    /// Stage a whole file with an explicit creation mode (0755 for
    /// executables, as `chirp_put -m` would).
    pub fn put_mode(&mut self, path: &str, data: &[u8], mode: u16) -> SysResult<()> {
        self.send_with_payload(
            &format!("put {} {} {}", encode_word(path), data.len(), mode),
            data,
        )?;
        self.recv()?;
        Ok(())
    }

    /// Retrieve a whole file from the server.
    pub fn get(&mut self, path: &str) -> SysResult<Vec<u8>> {
        self.send(&format!("get {}", encode_word(path)))?;
        self.recv_payload()
    }

    /// The paper's new call: run a staged program remotely, inside an
    /// identity box carrying our principal. Returns the exit code.
    pub fn exec(&mut self, path: &str, args: &[&str]) -> SysResult<i32> {
        let mut line = format!("exec {}", encode_word(path));
        for a in args {
            line.push(' ');
            line.push_str(&encode_word(a));
        }
        let words = self.round_trip(&line)?;
        Ok(Self::one_num(&words)? as i32)
    }

    /// Per-syscall latency statistics from the server's histograms.
    /// Admin principals only — everyone else gets `EACCES`.
    pub fn stats(&mut self) -> SysResult<Vec<StatRow>> {
        self.send("stats")?;
        let data = self.recv_payload()?;
        let text = String::from_utf8(data).map_err(|_| Errno::EPROTO)?;
        parse_stat_rows(&text)
    }

    /// The server's recent policy decisions, oldest first. Admin
    /// principals only — everyone else gets `EACCES`.
    pub fn audit(&mut self) -> SysResult<Vec<AuditRow>> {
        self.send("audit")?;
        let data = self.recv_payload()?;
        let text = String::from_utf8(data).map_err(|_| Errno::EPROTO)?;
        parse_audit_rows(&text)
    }

    /// Incremental tail of the server's policy decisions: events with
    /// `seq >= since`, plus the cursor to pass next time (the server's
    /// write head). A gap between `since` and the first returned seq
    /// means the ring dropped that much history. Admin principals only.
    pub fn audit_since(&mut self, since: u64) -> SysResult<(Vec<AuditRow>, u64)> {
        self.send(&format!("audit {since}"))?;
        let words = self.recv()?;
        let len: u64 = words
            .first()
            .and_then(|w| w.parse().ok())
            .ok_or(Errno::EPROTO)?;
        let cursor: u64 = words
            .get(1)
            .and_then(|w| w.parse().ok())
            .ok_or(Errno::EPROTO)?;
        let data = codec::read_payload(&mut self.reader, len)?;
        let text = String::from_utf8(data).map_err(|_| Errno::EPROTO)?;
        Ok((parse_audit_rows(&text)?, cursor))
    }

    /// The server's per-identity counters in Prometheus text exposition
    /// format. Admin principals only — everyone else gets `EACCES`.
    pub fn metrics(&mut self) -> SysResult<String> {
        self.send("metrics")?;
        let data = self.recv_payload()?;
        String::from_utf8(data).map_err(|_| Errno::EPROTO)
    }

    /// The server's recent slow operations, oldest first. Admin
    /// principals only — everyone else gets `EACCES`.
    pub fn slowops(&mut self) -> SysResult<Vec<SlowOpRow>> {
        self.send("slowops")?;
        let data = self.recv_payload()?;
        let text = String::from_utf8(data).map_err(|_| Errno::EPROTO)?;
        parse_slowop_rows(&text)
    }

    /// Polite disconnect.
    pub fn quit(mut self) -> SysResult<()> {
        self.round_trip("quit")?;
        Ok(())
    }
}

/// One line of the `stats` RPC: a syscall's dispatch count and latency
/// percentiles (bucket ceilings, nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatRow {
    /// Syscall name.
    pub name: String,
    /// Dispatches recorded.
    pub count: u64,
    /// Median latency (ns).
    pub p50_ns: u64,
    /// 99th-percentile latency (ns).
    pub p99_ns: u64,
}

/// One line of the `audit` RPC: a policy decision the server recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRow {
    /// Monotonic sequence number (gaps = dropped history).
    pub seq: u64,
    /// The boxed identity the ruling was made for.
    pub identity: String,
    /// Syscall name.
    pub syscall: String,
    /// The path(s) the call named, if any.
    pub path: Option<String>,
    /// `allow`, `deny`, or `reserve-amplified`.
    pub verdict: String,
    /// The errno a denial carried.
    pub errno: Option<Errno>,
    /// The trace id of the request that triggered the ruling, when the
    /// client sent one (and the server is new enough to report it).
    pub trace: Option<TraceId>,
}

/// One line of the `slowops` RPC: a span that crossed the server's
/// slow-op threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowOpRow {
    /// The trace id of the request, when the client sent one.
    pub trace: Option<TraceId>,
    /// Which phase was timed: `rpc`, `policy`, `dispatch`, or `exec`.
    pub phase: String,
    /// What ran: the RPC verb, syscall name, or program path.
    pub name: String,
    /// The principal the work was done for.
    pub identity: String,
    /// Wall-clock start, nanoseconds since the Unix epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Parse `stats` payload lines. Trailing columns beyond the known four
/// are ignored, so a newer server can append more without breaking old
/// clients.
fn parse_stat_rows(text: &str) -> SysResult<Vec<StatRow>> {
    text.lines()
        .map(|line| {
            let mut f = line.split_whitespace();
            let row = (|| {
                Some(StatRow {
                    name: f.next()?.to_string(),
                    count: f.next()?.parse().ok()?,
                    p50_ns: f.next()?.parse().ok()?,
                    p99_ns: f.next()?.parse().ok()?,
                })
            })();
            row.ok_or(Errno::EPROTO)
        })
        .collect()
}

/// Parse `audit` payload lines. The trace column was appended after
/// the first release, so it is optional; columns beyond it are
/// ignored, preserving the same forward compatibility for the future.
fn parse_audit_rows(text: &str) -> SysResult<Vec<AuditRow>> {
    text.lines()
        .map(|line| {
            let mut f = line.split_whitespace();
            let row = (|| {
                Some(AuditRow {
                    seq: f.next()?.parse().ok()?,
                    identity: codec::decode_word(f.next()?).ok()?,
                    syscall: f.next()?.to_string(),
                    path: match f.next()? {
                        "-" => None,
                        w => Some(codec::decode_word(w).ok()?),
                    },
                    verdict: f.next()?.to_string(),
                    errno: match f.next()? {
                        "-" => None,
                        w => Some(Errno::from_code(w.parse().ok()?)?),
                    },
                    trace: match f.next() {
                        None | Some("-") => None,
                        Some(w) => Some(w.parse().ok()?),
                    },
                })
            })();
            row.ok_or(Errno::EPROTO)
        })
        .collect()
}

/// Parse `slowops` payload lines; trailing unknown columns are ignored.
fn parse_slowop_rows(text: &str) -> SysResult<Vec<SlowOpRow>> {
    text.lines()
        .map(|line| {
            let mut f = line.split_whitespace();
            let row = (|| {
                Some(SlowOpRow {
                    trace: match f.next()? {
                        "-" => None,
                        w => Some(w.parse().ok()?),
                    },
                    phase: f.next()?.to_string(),
                    name: codec::decode_word(f.next()?).ok()?,
                    identity: codec::decode_word(f.next()?).ok()?,
                    start_ns: f.next()?.parse().ok()?,
                    dur_ns: f.next()?.parse().ok()?,
                })
            })();
            row.ok_or(Errno::EPROTO)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_rows_ignore_unknown_trailing_columns() {
        let known = parse_stat_rows("stat 10 100 900\n").unwrap();
        // A newer server appending a p999 column must parse identically.
        let newer = parse_stat_rows("stat 10 100 900 9999 extra\n").unwrap();
        assert_eq!(known, newer);
        assert_eq!(known[0].name, "stat");
        assert_eq!((known[0].count, known[0].p50_ns, known[0].p99_ns), (10, 100, 900));
        assert!(parse_stat_rows("stat 10 100\n").is_err(), "short row is EPROTO");
    }

    #[test]
    fn audit_rows_parse_with_and_without_trace_column() {
        // A pre-trace server emits six columns...
        let old = parse_audit_rows("5 fred open /a deny 13\n").unwrap();
        assert_eq!(old[0].trace, None);
        assert_eq!(old[0].errno, Some(Errno::EACCES));
        // ...the current one seven ("-" = request carried no id)...
        let now = parse_audit_rows("5 fred open /a deny 13 00000000000000ab\n").unwrap();
        assert_eq!(now[0].trace.unwrap().raw(), 0xab);
        let none = parse_audit_rows("5 fred open - allow - -\n").unwrap();
        assert_eq!(none[0].trace, None);
        assert_eq!(none[0].path, None);
        // ...and a future one may append more columns still.
        let future =
            parse_audit_rows("5 fred open /a deny 13 00000000000000ab whatever 9\n").unwrap();
        assert_eq!(now, future);
        assert!(parse_audit_rows("5 fred open /a deny 13 nothex\n").is_err());
    }

    #[test]
    fn slowop_rows_parse_and_tolerate_extras() {
        let text = "00000000000000ab exec /export/job%20dir fred 1000 2000\n\
                    - dispatch stat fred 1500 10 future-column\n";
        let rows = parse_slowop_rows(text).unwrap();
        assert_eq!(rows[0].trace.unwrap().raw(), 0xab);
        assert_eq!(rows[0].name, "/export/job dir");
        assert_eq!(rows[1].trace, None);
        assert_eq!(rows[1].phase, "dispatch");
        assert_eq!((rows[1].start_ns, rows[1].dur_ns), (1500, 10));
    }
}
