//! Wire encoding: text command lines plus length-prefixed binary
//! payloads, in the spirit of the real Chirp protocol.
//!
//! A command is one line of space-separated words ending in `\n`.
//! Words that may contain arbitrary bytes (paths, principals) are
//! percent-encoded. Bulk data follows a line announcing its length.

use idbox_obs::TraceId;
use idbox_types::{Errno, SysResult};
use std::io::{BufRead, Read, Write};

/// Maximum accepted line length (matches PATH_MAX plus slack).
pub const LINE_MAX: usize = 8192;

/// Maximum accepted payload (64 MiB).
pub const PAYLOAD_MAX: u64 = 64 << 20;

/// Percent-encode a word: `%`, whitespace, control bytes, and all
/// non-ASCII bytes become `%XX`, so any UTF-8 string crosses the wire
/// intact inside a space-separated command line.
pub fn encode_word(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'%' | b' ' | b'\t' | b'\r' | b'\n' => {
                out.push('%');
                out.push_str(&format!("{b:02X}"));
            }
            0x21..=0x7E => out.push(b as char),
            _ => {
                out.push('%');
                out.push_str(&format!("{b:02X}"));
            }
        }
    }
    out
}

/// Decode a percent-encoded word.
pub fn decode_word(s: &str) -> SysResult<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3).ok_or(Errno::EPROTO)?;
            let hi = (hex[0] as char).to_digit(16).ok_or(Errno::EPROTO)?;
            let lo = (hex[1] as char).to_digit(16).ok_or(Errno::EPROTO)?;
            out.push((hi * 16 + lo) as u8);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| Errno::EPROTO)
}

/// Read one `\n`-terminated line (without the terminator).
///
/// Bounded: at most `LINE_MAX + 1` bytes are ever buffered. A peer
/// streaming an endless newline-less line is rejected with `EPROTO`
/// after that bound instead of growing the buffer without limit.
pub fn read_line(r: &mut impl BufRead) -> SysResult<String> {
    let mut line = Vec::new();
    let n = r
        .take(LINE_MAX as u64 + 1)
        .read_until(b'\n', &mut line)
        .map_err(|_| Errno::EIO)?;
    if n == 0 {
        return Err(Errno::EPIPE);
    }
    if n > LINE_MAX {
        return Err(Errno::EPROTO);
    }
    let mut line = String::from_utf8(line).map_err(|_| Errno::EPROTO)?;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Write one line.
pub fn write_line(w: &mut impl Write, line: &str) -> SysResult<()> {
    w.write_all(line.as_bytes()).map_err(|_| Errno::EPIPE)?;
    w.write_all(b"\n").map_err(|_| Errno::EPIPE)?;
    w.flush().map_err(|_| Errno::EPIPE)
}

/// Read an exact-length payload.
pub fn read_payload(r: &mut impl Read, len: u64) -> SysResult<Vec<u8>> {
    if len > PAYLOAD_MAX {
        return Err(Errno::EPROTO);
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf).map_err(|_| Errno::EPIPE)?;
    Ok(buf)
}

/// The spelling of the optional trace token a client may append as the
/// final word of any command line: `trace=` followed by exactly 16
/// lowercase hex digits.
pub const TRACE_PREFIX: &str = "trace=";

/// Append a trace token to a command line.
pub fn with_trace(line: &str, id: TraceId) -> String {
    format!("{line} {TRACE_PREFIX}{id}")
}

/// Split a trailing trace token off a raw (still percent-encoded)
/// command line. Returns the line without the token, and the id when
/// one was present and well-formed.
///
/// Peers that predate tracing never emit the token and are unaffected;
/// conversely a server that predates tracing sees the token as one
/// extra trailing word, which the fixed-arity commands ignore. The
/// token is only recognized after a preceding word (a command line is
/// never empty) and only with the exact 16-hex spelling, so an
/// ordinary final argument is never eaten by accident.
pub fn strip_trace(line: &str) -> (&str, Option<TraceId>) {
    if let Some(idx) = line.rfind(' ') {
        if let Some(hex) = line[idx + 1..].strip_prefix(TRACE_PREFIX) {
            if let Ok(id) = hex.parse::<TraceId>() {
                return (&line[..idx], Some(id));
            }
        }
    }
    (line, None)
}

/// The spelling of the optional retry token a client appends (before
/// the trace token is stripped, after it in line order) when a request
/// is a re-send of an earlier attempt: `retry=` followed by the attempt
/// number (1 = first retry).
pub const RETRY_PREFIX: &str = "retry=";

/// Append a retry token to a command line. `n` is the retry ordinal
/// (how many attempts preceded this one); zero is never emitted — a
/// first attempt carries no token.
pub fn with_retry(line: &str, n: u32) -> String {
    debug_assert!(n > 0, "first attempts carry no retry token");
    format!("{line} {RETRY_PREFIX}{n}")
}

/// Split a trailing retry token off a raw command line (after
/// [`strip_trace`] has removed the trace token, since the trace token
/// is always last). Returns the line without the token and the retry
/// ordinal when one was present and well-formed.
///
/// Same forward/backward-compatibility posture as [`strip_trace`]: the
/// token is only recognized after a preceding word and only with a
/// nonzero all-digit value of sane length, so an ordinary final
/// argument is never eaten, and servers that predate the token see one
/// ignorable trailing word.
pub fn strip_retry(line: &str) -> (&str, Option<u32>) {
    if let Some(idx) = line.rfind(' ') {
        if let Some(digits) = line[idx + 1..].strip_prefix(RETRY_PREFIX) {
            if !digits.is_empty()
                && digits.len() <= 9
                && digits.bytes().all(|b| b.is_ascii_digit())
            {
                if let Ok(n) = digits.parse::<u32>() {
                    if n > 0 {
                        return (&line[..idx], Some(n));
                    }
                }
            }
        }
    }
    (line, None)
}

/// The spelling of the optional request-id token introduced by wire
/// protocol generation 2: `id=` followed by a nonzero decimal ordinal.
///
/// A pipelining client appends `id=<n>` to each request (before the
/// retry and trace tokens in line order, so it is stripped after them),
/// and the server echoes the same token as the final word of the
/// matching reply line. Requests without an id get strict in-order v1
/// replies with no token, so v1 clients are unaffected, and a v1 server
/// sees the token as one ignorable trailing word.
pub const ID_PREFIX: &str = "id=";

/// Append a request-id token to a command or reply line. Zero is never
/// emitted — an un-pipelined request carries no token.
pub fn with_id(line: &str, id: u64) -> String {
    debug_assert!(id > 0, "request ids are 1-based");
    format!("{line} {ID_PREFIX}{id}")
}

/// Split a trailing request-id token off a raw line (after
/// [`strip_trace`] and [`strip_retry`] on requests; replies carry the
/// id token last and alone). Returns the line without the token and the
/// id when one was present and well-formed.
///
/// Same compatibility posture as [`strip_retry`]: recognized only after
/// a preceding word and only with a nonzero all-digit value of sane
/// length, so an ordinary final argument is never eaten.
pub fn strip_id(line: &str) -> (&str, Option<u64>) {
    if let Some(idx) = line.rfind(' ') {
        if let Some(digits) = line[idx + 1..].strip_prefix(ID_PREFIX) {
            if !digits.is_empty()
                && digits.len() <= 18
                && digits.bytes().all(|b| b.is_ascii_digit())
            {
                if let Ok(n) = digits.parse::<u64>() {
                    if n > 0 {
                        return (&line[..idx], Some(n));
                    }
                }
            }
        }
    }
    (line, None)
}

/// Split a command line into decoded words.
pub fn split_words(line: &str) -> SysResult<Vec<String>> {
    line.split(' ')
        .filter(|w| !w.is_empty())
        .map(decode_word)
        .collect()
}

/// Format an `ok` response carrying a numeric result.
pub fn ok_num(n: i64) -> String {
    format!("ok {n}")
}

/// Format an `error` response from an errno.
pub fn error_line(e: Errno) -> String {
    format!("error {}", e.code())
}

/// Parse a response line: `Ok(words-after-ok)` or the carried errno.
pub fn parse_response(line: &str) -> SysResult<Vec<String>> {
    let words: Vec<&str> = line.split(' ').filter(|w| !w.is_empty()).collect();
    match words.first() {
        Some(&"ok") => words[1..].iter().map(|w| decode_word(w)).collect(),
        Some(&"error") => {
            let code: i32 = words
                .get(1)
                .and_then(|w| w.parse().ok())
                .ok_or(Errno::EPROTO)?;
            Err(Errno::from_code(code).unwrap_or(Errno::EIO))
        }
        _ => Err(Errno::EPROTO),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip() {
        for s in [
            "plain",
            "/path/with spaces/file",
            "globus:/O=Univ Nowhere/CN=Fred",
            "100%",
            "tab\there",
            "nl\nhere",
        ] {
            let enc = encode_word(s);
            assert!(!enc.contains(' ') && !enc.contains('\n'), "{enc}");
            assert_eq!(decode_word(&enc).unwrap(), s);
        }
    }

    #[test]
    fn malformed_percent_rejected() {
        assert!(decode_word("%").is_err());
        assert!(decode_word("%2").is_err());
        assert!(decode_word("%zz").is_err());
    }

    #[test]
    fn line_io_roundtrip() {
        let mut buf = Vec::new();
        write_line(&mut buf, "hello world").unwrap();
        let mut r = std::io::BufReader::new(&buf[..]);
        assert_eq!(read_line(&mut r).unwrap(), "hello world");
        assert_eq!(read_line(&mut r), Err(Errno::EPIPE));
    }

    #[test]
    fn oversized_line_rejected_with_bounded_consumption() {
        /// An endless stream of `a` bytes with no newline in sight,
        /// counting how much is ever pulled off the wire.
        struct Endless {
            served: usize,
        }
        impl std::io::Read for Endless {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                for b in buf.iter_mut() {
                    *b = b'a';
                }
                self.served += buf.len();
                Ok(buf.len())
            }
        }
        let mut r = std::io::BufReader::new(Endless { served: 0 });
        assert_eq!(read_line(&mut r), Err(Errno::EPROTO));
        // The reader stops at LINE_MAX + 1 bytes; the BufReader beneath
        // may have read ahead by at most its own buffer. Nothing close
        // to "the whole stream" is ever consumed or held.
        assert!(
            r.get_ref().served <= 3 * LINE_MAX,
            "consumed {} bytes",
            r.get_ref().served
        );
    }

    #[test]
    fn line_at_the_limit_still_accepted() {
        // Content + '\n' totalling exactly LINE_MAX passes; one byte
        // more is EPROTO.
        let ok_line = vec![b'x'; LINE_MAX - 1];
        let mut buf = ok_line.clone();
        buf.push(b'\n');
        let mut r = std::io::BufReader::new(&buf[..]);
        assert_eq!(read_line(&mut r).unwrap().len(), LINE_MAX - 1);
        let mut buf = vec![b'x'; LINE_MAX];
        buf.push(b'\n');
        let mut r = std::io::BufReader::new(&buf[..]);
        assert_eq!(read_line(&mut r), Err(Errno::EPROTO));
    }

    #[test]
    fn payload_roundtrip_and_cap() {
        let data = vec![9u8; 100];
        let mut r = std::io::Cursor::new(data.clone());
        assert_eq!(read_payload(&mut r, 100).unwrap(), data);
        let mut r = std::io::Cursor::new(vec![0u8; 10]);
        assert_eq!(read_payload(&mut r, PAYLOAD_MAX + 1), Err(Errno::EPROTO));
    }

    #[test]
    fn response_parsing() {
        assert_eq!(parse_response("ok 42").unwrap(), ["42"]);
        assert_eq!(parse_response("ok").unwrap(), Vec::<String>::new());
        assert_eq!(parse_response("error 13"), Err(Errno::EACCES));
        assert_eq!(parse_response("gibberish"), Err(Errno::EPROTO));
        assert_eq!(parse_response("error notanumber"), Err(Errno::EPROTO));
    }

    #[test]
    fn split_words_decodes() {
        let words = split_words("open /a%20b 3").unwrap();
        assert_eq!(words, ["open", "/a b", "3"]);
    }

    #[test]
    fn trace_token_round_trips() {
        let id = idbox_obs::next_trace_id();
        let line = with_trace("stat /a", id);
        assert_eq!(line, format!("stat /a trace={id}"));
        assert_eq!(strip_trace(&line), ("stat /a", Some(id)));
    }

    #[test]
    fn retry_token_round_trips() {
        let line = with_retry("stat /a", 2);
        assert_eq!(line, "stat /a retry=2");
        assert_eq!(strip_retry(&line), ("stat /a", Some(2)));
        // Stacked with a trace token: trace strips first, retry second.
        let id = idbox_obs::next_trace_id();
        let full = with_trace(&with_retry("stat /a", 1), id);
        let (rest, got_id) = strip_trace(&full);
        assert_eq!(got_id, Some(id));
        assert_eq!(strip_retry(rest), ("stat /a", Some(1)));
    }

    #[test]
    fn strip_retry_leaves_ordinary_lines_alone() {
        assert_eq!(strip_retry("stat /a"), ("stat /a", None));
        // A lone token with no preceding command is not stripped.
        assert_eq!(strip_retry("retry=1"), ("retry=1", None));
        // Zero, non-digits, and absurd lengths stay in place.
        for bad in [
            "stat /a retry=0",
            "stat /a retry=",
            "stat /a retry=x",
            "stat /a retry=1x",
            "stat /a retry=1234567890",
        ] {
            assert_eq!(strip_retry(bad), (bad, None));
        }
        // A final argument that merely resembles the prefix survives.
        assert_eq!(strip_retry("put retry=x 3"), ("put retry=x 3", None));
    }

    #[test]
    fn id_token_round_trips() {
        let line = with_id("stat /a", 7);
        assert_eq!(line, "stat /a id=7");
        assert_eq!(strip_id(&line), ("stat /a", Some(7)));
        // Full v2 stacking on a request: id, then retry, then trace
        // last-on-wire; stripping runs in reverse wire order.
        let trace = idbox_obs::next_trace_id();
        let full = with_trace(&with_retry(&with_id("stat /a", 3), 1), trace);
        let (rest, got_trace) = strip_trace(&full);
        assert_eq!(got_trace, Some(trace));
        let (rest, got_retry) = strip_retry(rest);
        assert_eq!(got_retry, Some(1));
        assert_eq!(strip_id(rest), ("stat /a", Some(3)));
    }

    #[test]
    fn strip_id_leaves_ordinary_lines_alone() {
        assert_eq!(strip_id("stat /a"), ("stat /a", None));
        // A lone token with no preceding command is not stripped.
        assert_eq!(strip_id("id=1"), ("id=1", None));
        for bad in [
            "stat /a id=0",
            "stat /a id=",
            "stat /a id=x",
            "stat /a id=1x",
            "stat /a id=1234567890123456789",
        ] {
            assert_eq!(strip_id(bad), (bad, None));
        }
        // A final argument that merely resembles the prefix survives.
        assert_eq!(strip_id("put id=x 3"), ("put id=x 3", None));
    }

    #[test]
    fn strip_trace_leaves_ordinary_lines_alone() {
        // No token at all.
        assert_eq!(strip_trace("stat /a"), ("stat /a", None));
        // A lone token with no preceding command is not stripped.
        assert_eq!(
            strip_trace("trace=00000000000000ab"),
            ("trace=00000000000000ab", None)
        );
        // Malformed ids (wrong length, uppercase, zero) stay in place.
        for bad in [
            "stat /a trace=123",
            "stat /a trace=00000000000000AB",
            "stat /a trace=0000000000000000",
            "stat /a trace=000000000000000g",
        ] {
            assert_eq!(strip_trace(bad), (bad, None));
        }
        // A final argument that merely resembles the prefix survives.
        assert_eq!(strip_trace("put trace=x 3"), ("put trace=x 3", None));
    }
}
