//! The Chirp filesystem driver: mounts a remote server into the
//! simulated kernel's namespace, so guest programs open
//! `/chirp/host:port/path` like ordinary files — Parrot's original
//! trick, with the *same identity* enforced on both sides of the wire.

use crate::client::ChirpClient;
use idbox_kernel::{DriverFd, FsDriver, OpenFlags};
use idbox_types::{Errno, Identity, SysResult};
use idbox_vfs::{DirEntry, StatBuf};
use std::collections::BTreeMap;

/// A mounted Chirp connection.
///
/// The connection was authenticated when the driver was built; the
/// per-operation `identity` arguments are checked against that
/// principal — a mismatch means a different boxed identity is trying to
/// ride someone else's authenticated channel, which is refused.
pub struct ChirpDriver {
    client: ChirpClient,
    /// Per driver fd: the client connection generation that minted the
    /// remote fd, and the remote (server-side) fd itself. Server fds
    /// die with their session, so after a transparent reconnect every
    /// fd from an older generation is stale.
    handles: BTreeMap<DriverFd, (u64, i64)>,
    next: DriverFd,
}

impl ChirpDriver {
    /// Wrap an authenticated client.
    pub fn new(client: ChirpClient) -> Self {
        ChirpDriver {
            client,
            handles: BTreeMap::new(),
            next: 1,
        }
    }

    fn check_identity(&self, identity: &Identity) -> SysResult<()> {
        if identity.as_str() == self.client.principal().qualified() {
            Ok(())
        } else {
            Err(Errno::EPERM)
        }
    }

    /// Resolve a driver fd to its remote fd, refusing (and forgetting)
    /// fds minted before the client's last reconnect: their server-side
    /// descriptors no longer exist, and a fresh session might even hand
    /// the same number to a different file.
    fn remote(&mut self, dfd: DriverFd) -> SysResult<i64> {
        let (generation, rfd) = *self.handles.get(&dfd).ok_or(Errno::EBADF)?;
        if generation != self.client.generation() {
            self.handles.remove(&dfd);
            return Err(Errno::EBADF);
        }
        Ok(rfd)
    }
}

impl FsDriver for ChirpDriver {
    fn name(&self) -> &str {
        "chirp"
    }

    fn open(
        &mut self,
        path: &str,
        flags: OpenFlags,
        mode: u16,
        identity: &Identity,
    ) -> SysResult<DriverFd> {
        self.check_identity(identity)?;
        let rfd = self.client.open(path, flags, mode)?;
        let dfd = self.next;
        self.next += 1;
        self.handles.insert(dfd, (self.client.generation(), rfd));
        Ok(dfd)
    }

    fn close(&mut self, dfd: DriverFd) -> SysResult<()> {
        let (generation, rfd) = self.handles.remove(&dfd).ok_or(Errno::EBADF)?;
        if generation != self.client.generation() {
            // The session that owned this fd is gone, and it closed all
            // its fds with it — nothing left to close.
            return Ok(());
        }
        self.client.close(rfd)
    }

    fn pread(&mut self, dfd: DriverFd, len: usize, off: u64) -> SysResult<Vec<u8>> {
        let rfd = self.remote(dfd)?;
        self.client.pread(rfd, len, off)
    }

    fn pwrite(&mut self, dfd: DriverFd, data: &[u8], off: u64) -> SysResult<usize> {
        let rfd = self.remote(dfd)?;
        self.client.pwrite(rfd, data, off)
    }

    fn fstat(&mut self, dfd: DriverFd) -> SysResult<StatBuf> {
        let rfd = self.remote(dfd)?;
        self.client.fstat(rfd)
    }

    fn stat(&mut self, path: &str, identity: &Identity) -> SysResult<StatBuf> {
        self.check_identity(identity)?;
        self.client.stat(path)
    }

    fn mkdir(&mut self, path: &str, mode: u16, identity: &Identity) -> SysResult<()> {
        self.check_identity(identity)?;
        self.client.mkdir(path, mode)
    }

    fn rmdir(&mut self, path: &str, identity: &Identity) -> SysResult<()> {
        self.check_identity(identity)?;
        self.client.rmdir(path)
    }

    fn unlink(&mut self, path: &str, identity: &Identity) -> SysResult<()> {
        self.check_identity(identity)?;
        self.client.unlink(path)
    }

    fn rename(&mut self, old: &str, new: &str, identity: &Identity) -> SysResult<()> {
        self.check_identity(identity)?;
        self.client.rename(old, new)
    }

    fn readdir(&mut self, path: &str, identity: &Identity) -> SysResult<Vec<DirEntry>> {
        self.check_identity(identity)?;
        self.client.readdir(path)
    }

    fn truncate(&mut self, path: &str, len: u64, identity: &Identity) -> SysResult<()> {
        self.check_identity(identity)?;
        self.client.truncate(path, len)
    }
}
