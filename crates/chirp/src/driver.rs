//! The Chirp filesystem driver: mounts a remote server into the
//! simulated kernel's namespace, so guest programs open
//! `/chirp/host:port/path` like ordinary files — Parrot's original
//! trick, with the *same identity* enforced on both sides of the wire.

use crate::client::ChirpClient;
use idbox_kernel::{DriverFd, FsDriver, OpenFlags};
use idbox_types::{Errno, Identity, SysResult};
use idbox_vfs::{DirEntry, StatBuf};
use std::collections::BTreeMap;

/// A mounted Chirp connection.
///
/// The connection was authenticated when the driver was built; the
/// per-operation `identity` arguments are checked against that
/// principal — a mismatch means a different boxed identity is trying to
/// ride someone else's authenticated channel, which is refused.
pub struct ChirpDriver {
    client: ChirpClient,
    /// Remote fd (server-side) per driver fd.
    handles: BTreeMap<DriverFd, i64>,
    next: DriverFd,
}

impl ChirpDriver {
    /// Wrap an authenticated client.
    pub fn new(client: ChirpClient) -> Self {
        ChirpDriver {
            client,
            handles: BTreeMap::new(),
            next: 1,
        }
    }

    fn check_identity(&self, identity: &Identity) -> SysResult<()> {
        if identity.as_str() == self.client.principal().qualified() {
            Ok(())
        } else {
            Err(Errno::EPERM)
        }
    }

    fn remote(&mut self, dfd: DriverFd) -> SysResult<i64> {
        self.handles.get(&dfd).copied().ok_or(Errno::EBADF)
    }
}

impl FsDriver for ChirpDriver {
    fn name(&self) -> &str {
        "chirp"
    }

    fn open(
        &mut self,
        path: &str,
        flags: OpenFlags,
        mode: u16,
        identity: &Identity,
    ) -> SysResult<DriverFd> {
        self.check_identity(identity)?;
        let rfd = self.client.open(path, flags, mode)?;
        let dfd = self.next;
        self.next += 1;
        self.handles.insert(dfd, rfd);
        Ok(dfd)
    }

    fn close(&mut self, dfd: DriverFd) -> SysResult<()> {
        let rfd = self.handles.remove(&dfd).ok_or(Errno::EBADF)?;
        self.client.close(rfd)
    }

    fn pread(&mut self, dfd: DriverFd, len: usize, off: u64) -> SysResult<Vec<u8>> {
        let rfd = self.remote(dfd)?;
        self.client.pread(rfd, len, off)
    }

    fn pwrite(&mut self, dfd: DriverFd, data: &[u8], off: u64) -> SysResult<usize> {
        let rfd = self.remote(dfd)?;
        self.client.pwrite(rfd, data, off)
    }

    fn fstat(&mut self, dfd: DriverFd) -> SysResult<StatBuf> {
        let rfd = self.remote(dfd)?;
        self.client.fstat(rfd)
    }

    fn stat(&mut self, path: &str, identity: &Identity) -> SysResult<StatBuf> {
        self.check_identity(identity)?;
        self.client.stat(path)
    }

    fn mkdir(&mut self, path: &str, mode: u16, identity: &Identity) -> SysResult<()> {
        self.check_identity(identity)?;
        self.client.mkdir(path, mode)
    }

    fn rmdir(&mut self, path: &str, identity: &Identity) -> SysResult<()> {
        self.check_identity(identity)?;
        self.client.rmdir(path)
    }

    fn unlink(&mut self, path: &str, identity: &Identity) -> SysResult<()> {
        self.check_identity(identity)?;
        self.client.unlink(path)
    }

    fn rename(&mut self, old: &str, new: &str, identity: &Identity) -> SysResult<()> {
        self.check_identity(identity)?;
        self.client.rename(old, new)
    }

    fn readdir(&mut self, path: &str, identity: &Identity) -> SysResult<Vec<DirEntry>> {
        self.check_identity(identity)?;
        self.client.readdir(path)
    }

    fn truncate(&mut self, path: &str, len: u64, identity: &Identity) -> SysResult<()> {
        self.check_identity(identity)?;
        self.client.truncate(path, len)
    }
}
