//! The server's readiness-polled event loop.
//!
//! Connections are state machines, not threads: each worker owns a set
//! of connections and multiplexes them over [`crate::poll`]. A
//! connection moves through two phases — authentication (driven by the
//! incremental [`ServerAuthMachine`]) and the session proper, where a
//! framer slices the read buffer into wire-protocol frames (a command
//! line plus, for the payload-bearing verbs, its announced payload) and
//! hands each complete frame to the dispatcher.
//!
//! Wire-protocol generation 2 rides on this structure: a pipelining
//! client may send many frames before reading replies; every frame that
//! carried an `id=<n>` token gets the same token echoed on its reply
//! line, and all replies produced in one readiness cycle are flushed
//! with a single write. Clients that send no ids (generation 1) get the
//! old strict in-order, flush-per-reply behaviour, because they only
//! ever have one frame outstanding.

use crate::codec::{self, error_line};
use crate::poll::{poll_fds, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
use crate::server::{
    announced_payload, dispatch, record_span, ConnRegistry, GuestFn, Reply, SessionCtl,
    SessionGauge, SessionObs, InflightGuard,
};
use idbox_auth::{AuthOutcome, ServerAuthMachine, ServerVerifier};
use idbox_core::{BoxOptions, IdentityBox, Verdict};
use idbox_interpose::{GuestCtx, Supervisor, TraceeVm};
use idbox_kernel::Pid;
use idbox_obs::{now_unix_ns, IdentityCounters, Phase, TraceCell, TraceId};
use idbox_types::{CostModel, Errno, Principal};
use idbox_vfs::{ByteExtent, Cred};
use std::collections::{BTreeMap, VecDeque};
use std::io::{IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Maximum bytes pulled off one socket per readiness cycle, so a
/// fire-hosing peer cannot starve its worker's other connections.
const READ_BUDGET: usize = 256 * 1024;

/// Soft cap on buffered replies: while a connection's write buffer sits
/// above this, no further frames are processed for it (the peer must
/// drain what it already asked for — per-connection backpressure).
const OUT_SOFT_CAP: usize = 1024 * 1024;

/// Poll tick: upper bound on how long a worker sleeps when nothing is
/// ready. Wake sockets make registration and shutdown prompt; the tick
/// only paces the idle sweep.
const POLL_TICK_MS: i32 = 20;

/// Owned pushes below this merge into the queue's trailing owned
/// segment, so a burst of pipelined one-line replies costs one iovec
/// entry instead of hundreds.
const COALESCE_MAX: usize = 16 * 1024;

/// Maximum segments handed to one vectored write. Kernels cap iovec
/// counts (IOV_MAX is 1024 on Linux); staying far below it also bounds
/// the per-flush stack work.
const FLUSH_IOVEC_MAX: usize = 64;

/// Maximum inbound payload buffers a connection keeps pooled between
/// frames.
const POOL_MAX_BUFS: usize = 4;

/// Largest buffer capacity the inbound payload pool retains, resolved
/// once per process from `IDBOX_PAYLOAD_POOL_KIB` (0 disables pooling;
/// default 256 KiB). Oversized buffers are freed after dispatch so one
/// huge `put` cannot pin its high-water allocation forever.
fn payload_pool_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("IDBOX_PAYLOAD_POOL_KIB")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|kib| kib.saturating_mul(1024))
            .unwrap_or(256 * 1024)
    })
}

/// Maximum sub-operations accepted in one `batch` frame.
pub(crate) const BATCH_MAX_OPS: usize = 4096;

/// Everything a worker needs to serve connections, shared across the
/// accept thread and all workers.
pub(crate) struct LoopCtx {
    pub(crate) ctl: SessionCtl,
    pub(crate) programs: Arc<BTreeMap<String, GuestFn>>,
    pub(crate) cost_model: CostModel,
    pub(crate) sup_cred: Cred,
    pub(crate) io_timeout: Option<Duration>,
    pub(crate) conns: ConnRegistry,
    /// Soft watchdog budget for one readiness cycle; `None` disables.
    pub(crate) stall_budget: Option<Duration>,
}

/// A freshly accepted connection, handed from the accept thread to a
/// worker. The stream is already nonblocking; the verifier carries the
/// peer's reverse-lookup hostname.
pub(crate) struct Registration {
    pub(crate) id: u64,
    pub(crate) stream: TcpStream,
    pub(crate) verifier: ServerVerifier,
}

/// The accept thread's handle to one worker: a registration queue plus
/// the write side of the worker's wake socket.
pub(crate) struct WorkerHandle {
    tx: Sender<Registration>,
    wake: TcpStream,
}

impl WorkerHandle {
    /// A second handle to the same worker (the accept thread and the
    /// server handle each hold one).
    pub(crate) fn duplicate(&self) -> std::io::Result<WorkerHandle> {
        Ok(WorkerHandle {
            tx: self.tx.clone(),
            wake: self.wake.try_clone()?,
        })
    }

    /// Hand a connection to this worker and wake it out of `poll`.
    pub(crate) fn submit(&self, reg: Registration) {
        let _ = self.tx.send(reg);
        self.notify();
    }

    /// Wake the worker (used on shutdown, and after `submit`). The wake
    /// socket is nonblocking on both sides; a full buffer already means
    /// a wakeup is pending, so a short write is fine.
    pub(crate) fn notify(&self) {
        let _ = (&self.wake).write(&[1]);
    }
}

/// A local socket pair to interrupt `poll` with (std has no pipe).
fn wake_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let l = TcpListener::bind(("127.0.0.1", 0))?;
    let tx = TcpStream::connect(l.local_addr()?)?;
    let (rx, _) = l.accept()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((tx, rx))
}

/// Spawn `n` event-loop workers. Worker threads are detached — they
/// exit promptly when `stop` is set (shutdown wakes them), and a worker
/// stuck inside a long dispatch must not be able to hang shutdown.
pub(crate) fn spawn_workers(
    n: usize,
    lc: Arc<LoopCtx>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<Vec<WorkerHandle>> {
    let mut handles = Vec::with_capacity(n);
    for widx in 0..n {
        let (wake_tx, wake_rx) = wake_pair()?;
        let (tx, rx) = std::sync::mpsc::channel();
        let lc = Arc::clone(&lc);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || run_worker(widx, rx, wake_rx, lc, stop));
        handles.push(WorkerHandle { tx, wake: wake_tx });
    }
    Ok(handles)
}

fn run_worker(
    widx: usize,
    rx: Receiver<Registration>,
    wake: TcpStream,
    lc: Arc<LoopCtx>,
    stop: Arc<AtomicBool>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut fds: Vec<PollFd> = Vec::new();
    // Watchdog rate limit: at most one `loop-stall` audit row per
    // second per worker, so a persistently stalled loop cannot flood
    // the audit ring out of its useful history.
    let mut last_stall_row: Option<Instant> = None;
    loop {
        while let Ok(reg) = rx.try_recv() {
            conns.push(Conn::new(reg));
        }
        if stop.load(Ordering::Relaxed) {
            for c in conns {
                c.teardown(&lc);
            }
            return;
        }
        fds.clear();
        fds.push(PollFd {
            fd: wake.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        for c in &conns {
            let mut events = 0;
            if c.out.unflushed() <= OUT_SOFT_CAP && !c.close_after_flush {
                events |= POLLIN;
            }
            if !c.out.is_empty() {
                events |= POLLOUT;
            }
            fds.push(PollFd {
                fd: c.stream.as_raw_fd(),
                events,
                revents: 0,
            });
        }
        let _ = poll_fds(&mut fds, POLL_TICK_MS);
        // Readiness → dispatch → flush for every ready connection is
        // one "cycle"; its duration is the loop-lag sample. Idle ticks
        // (nothing ready) are not samples — they would drown the
        // histogram in POLL_TICK_MS-sized noise.
        let cycle_start = Instant::now();
        let ready = fds.iter().any(|f| f.revents != 0);
        let ws = lc.ctl.loop_stats.worker(widx);
        if ready {
            ws.bump_wakeup();
        }
        if fds[0].revents & POLLIN != 0 {
            let mut buf = [0u8; 64];
            while matches!((&wake).read(&mut buf), Ok(n) if n > 0) {}
        }
        for (c, pfd) in conns.iter_mut().zip(fds[1..].iter()) {
            if pfd.revents & (POLLERR | POLLNVAL) != 0 {
                c.dead = true;
                continue;
            }
            if pfd.revents & (POLLIN | POLLHUP) != 0 {
                c.fill();
            }
            loop {
                c.pump(&lc);
                let backlog = c.out.unflushed();
                if backlog > 0 {
                    ws.note_outbuf(backlog);
                    ws.bump_flush();
                }
                c.flush();
                // A backpressure pause means complete frames are still
                // sitting in `inbuf`. If flush just freed queue room,
                // service them now — otherwise a pipelined burst pays a
                // full poll tick per streamed reply while the socket
                // sits idle. When flush could not drain below the cap,
                // POLLOUT wakes the loop as soon as the peer reads.
                if c.dead || !c.pump_paused || c.out.unflushed() > OUT_SOFT_CAP {
                    break;
                }
            }
        }
        if let Some(limit) = lc.io_timeout {
            let now = Instant::now();
            for c in conns.iter_mut() {
                if now.duration_since(c.last_activity) > limit {
                    c.dead = true;
                }
            }
        }
        let mut i = 0;
        while i < conns.len() {
            if conns[i].dead {
                conns.swap_remove(i).teardown(&lc);
            } else {
                i += 1;
            }
        }
        ws.set_conns(conns.len());
        if ready {
            let cycle = cycle_start.elapsed();
            ws.lag.record_us(cycle.as_micros() as u64);
            if let Some(budget) = lc.stall_budget {
                if cycle > budget {
                    ws.bump_stall();
                    idbox_obs::flight::record_instant("loop", "loop-stall", None);
                    let rate_ok = last_stall_row
                        .is_none_or(|t| t.elapsed() >= Duration::from_secs(1));
                    if rate_ok {
                        last_stall_row = Some(Instant::now());
                        lc.ctl.audit.record_named(
                            "(server)",
                            "loop-stall",
                            Some(format!(
                                "worker={widx} cycle_ms={} budget_ms={}",
                                cycle.as_millis(),
                                budget.as_millis()
                            )),
                            Verdict::Deny,
                            Some(Errno::EBUSY),
                            None,
                        );
                    }
                }
            }
        }
    }
}

/// Which phase of its life a connection is in.
enum ConnPhase {
    Auth(ServerAuthMachine),
    Session(Box<Session>),
}

/// A frame whose command line has been read but whose announced payload
/// has not fully arrived yet.
struct PendingFrame {
    words: Vec<String>,
    id: Option<u64>,
    retry: Option<u32>,
    trace: Option<TraceId>,
    payload_len: u64,
}

/// Why `pump` stopped consuming frames.
#[derive(PartialEq)]
enum PumpExit {
    /// Ran out of complete frames; more input is needed.
    Starved,
    /// The write buffer is over the soft cap; resume after a flush.
    Backpressure,
    /// The connection is closing (quit, protocol error, auth refusal).
    Closing,
}

/// One queued output segment: bytes the connection owns (head lines,
/// rendered text replies), or an extent borrowed from the Vfs via an
/// `Arc` — the zero-copy path, where the file's chunks go to the socket
/// without ever being copied into a connection buffer.
enum OutSeg {
    Owned(Vec<u8>),
    Shared(ByteExtent),
}

impl OutSeg {
    fn as_slice(&self) -> &[u8] {
        match self {
            OutSeg::Owned(v) => v,
            OutSeg::Shared(e) => e.as_slice(),
        }
    }
}

/// A streamed reply's completion marker: once `end` total bytes have
/// been flushed, the reply's last byte has left the process and its
/// data-plane `stream` span can close.
struct StreamMark {
    end: u64,
    trace: Option<TraceId>,
    start_ns: u64,
}

/// The connection's write side: a queue of segments flushed with
/// vectored writes. Cumulative `queued`/`flushed` counters replace the
/// old flat buffer's len/pos pair, so backpressure accounting works the
/// same way whether a segment is owned or borrowed.
#[derive(Default)]
struct OutQueue {
    segs: VecDeque<OutSeg>,
    /// Bytes of `segs[0]` already written.
    head_pos: usize,
    /// Total bytes ever queued (monotonic).
    queued: u64,
    /// Total bytes ever flushed (monotonic).
    flushed: u64,
    marks: VecDeque<StreamMark>,
}

impl OutQueue {
    /// Bytes queued but not yet written to the socket.
    fn unflushed(&self) -> usize {
        (self.queued - self.flushed) as usize
    }

    fn is_empty(&self) -> bool {
        self.queued == self.flushed
    }

    /// Queue owned bytes, coalescing small pushes into the trailing
    /// owned segment. Appending to the front segment while `head_pos`
    /// points into it is fine — the flushed prefix is never touched.
    fn push_owned(&mut self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        self.queued += bytes.len() as u64;
        if let Some(OutSeg::Owned(v)) = self.segs.back_mut() {
            if v.len() < COALESCE_MAX {
                v.extend_from_slice(bytes);
                return;
            }
        }
        self.segs.push_back(OutSeg::Owned(bytes.to_vec()));
    }

    /// Queue an owned buffer without copying it (large rendered
    /// replies); small ones still coalesce.
    fn push_owned_vec(&mut self, v: Vec<u8>) {
        if v.len() < COALESCE_MAX {
            self.push_owned(&v);
            return;
        }
        self.queued += v.len() as u64;
        self.segs.push_back(OutSeg::Owned(v));
    }

    /// Queue a borrowed extent. The bytes stay in the Vfs's chunk; the
    /// queue holds only the `Arc`.
    fn push_shared(&mut self, extent: ByteExtent) {
        if extent.is_empty() {
            return;
        }
        self.queued += extent.len() as u64;
        self.segs.push_back(OutSeg::Shared(extent));
    }

    /// Mark the current queue tail as the end of a streamed reply.
    fn push_mark(&mut self, trace: Option<TraceId>, start_ns: u64) {
        self.marks.push_back(StreamMark {
            end: self.queued,
            trace,
            start_ns,
        });
    }

    /// One vectored write of up to [`FLUSH_IOVEC_MAX`] segments.
    fn write_once(&mut self, mut stream: &TcpStream) -> std::io::Result<usize> {
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(self.segs.len().min(FLUSH_IOVEC_MAX));
        for (i, seg) in self.segs.iter().enumerate() {
            if slices.len() == FLUSH_IOVEC_MAX {
                break;
            }
            let s = seg.as_slice();
            let s = if i == 0 { &s[self.head_pos..] } else { s };
            slices.push(IoSlice::new(s));
        }
        stream.write_vectored(&slices)
    }

    /// Account `n` bytes written: pop fully flushed segments (releasing
    /// their `Arc`s) and advance into a partially written head.
    fn advance(&mut self, mut n: usize) {
        self.flushed += n as u64;
        while n > 0 {
            let rem = self
                .segs
                .front()
                .map(|s| s.as_slice().len() - self.head_pos)
                .expect("advanced past the end of the out queue");
            if n >= rem {
                n -= rem;
                self.segs.pop_front();
                self.head_pos = 0;
            } else {
                self.head_pos += n;
                n = 0;
            }
        }
    }

    /// The next streamed reply whose last byte has now been flushed.
    fn pop_done_mark(&mut self) -> Option<StreamMark> {
        if self.marks.front().is_some_and(|m| m.end <= self.flushed) {
            self.marks.pop_front()
        } else {
            None
        }
    }
}

/// One connection's full state: buffers, phase, and liveness.
struct Conn {
    id: u64,
    stream: TcpStream,
    inbuf: Vec<u8>,
    inpos: usize,
    out: OutQueue,
    last_activity: Instant,
    phase: ConnPhase,
    pending: Option<PendingFrame>,
    /// Pooled inbound payload buffers, reused across frames so every
    /// `put` body does not cost a fresh allocation.
    payload_pool: Vec<Vec<u8>>,
    /// The session identity's counters, set once authentication
    /// completes; wire-byte totals before that have no identity to
    /// charge and are not counted.
    counters: Option<Arc<IdentityCounters>>,
    /// `pump` stopped on backpressure with complete frames still
    /// buffered in `inbuf`. The worker loop re-pumps such connections
    /// after `flush` frees queue room, instead of letting the buffered
    /// frames wait out a poll tick on an idle socket.
    pump_paused: bool,
    saw_eof: bool,
    close_after_flush: bool,
    dead: bool,
}

impl Conn {
    fn new(reg: Registration) -> Self {
        Conn {
            id: reg.id,
            stream: reg.stream,
            inbuf: Vec::new(),
            inpos: 0,
            out: OutQueue::default(),
            last_activity: Instant::now(),
            phase: ConnPhase::Auth(ServerAuthMachine::new(reg.verifier)),
            pending: None,
            payload_pool: Vec::new(),
            counters: None,
            pump_paused: false,
            saw_eof: false,
            close_after_flush: false,
            dead: false,
        }
    }

    /// Pull whatever the socket has (bounded by [`READ_BUDGET`]).
    fn fill(&mut self) {
        let mut scratch = [0u8; 16 * 1024];
        let mut total = 0;
        loop {
            match (&self.stream).read(&mut scratch) {
                Ok(0) => {
                    self.saw_eof = true;
                    break;
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&scratch[..n]);
                    self.last_activity = Instant::now();
                    total += n;
                    if total >= READ_BUDGET {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if total > 0 {
            if let Some(c) = &self.counters {
                c.add_bytes_in(total as u64);
            }
        }
    }

    /// Write as much queued output as the socket takes right now, one
    /// vectored write per burst: head lines and borrowed extents go out
    /// as scatter-gather segments, so a streamed file is never copied
    /// into a flat connection buffer first.
    fn flush(&mut self) {
        let before = self.out.flushed;
        while !self.out.is_empty() {
            match self.out.write_once(&self.stream) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.out.advance(n);
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        let wrote = self.out.flushed - before;
        if wrote > 0 {
            if let Some(c) = &self.counters {
                c.add_bytes_out(wrote);
            }
        }
        // A streamed reply's span closes when its last byte has been
        // accepted by the socket — the stream phase `tracedump` shows.
        while let Some(m) = self.out.pop_done_mark() {
            idbox_obs::flight::record_span(
                "data",
                "stream",
                m.trace,
                m.start_ns,
                now_unix_ns().saturating_sub(m.start_ns),
            );
        }
        if self.out.is_empty() && self.close_after_flush {
            self.dead = true;
        }
    }

    fn queue_line(&mut self, line: &str) {
        self.out.push_owned(line.as_bytes());
        self.out.push_owned(b"\n");
    }

    /// Unconsumed input.
    fn avail(&self) -> usize {
        self.inbuf.len() - self.inpos
    }

    fn consume(&mut self, n: usize) {
        self.inpos += n;
        // Compact once the consumed prefix dominates, so long sessions
        // do not accrete an ever-growing buffer.
        if self.inpos > 4096 && self.inpos * 2 >= self.inbuf.len() {
            self.inbuf.drain(..self.inpos);
            self.inpos = 0;
        }
    }

    /// Slice one `\n`-terminated line off the input buffer, enforcing
    /// the same bound as `codec::read_line`: the newline must arrive
    /// within [`codec::LINE_MAX`] bytes.
    fn take_line(&mut self) -> Result<Option<String>, Errno> {
        let buf = &self.inbuf[self.inpos..];
        let window = buf.len().min(codec::LINE_MAX);
        match buf[..window].iter().position(|&b| b == b'\n') {
            Some(i) => {
                let mut line = std::str::from_utf8(&buf[..i])
                    .map_err(|_| Errno::EPROTO)?
                    .to_string();
                while line.ends_with('\r') {
                    line.pop();
                }
                self.consume(i + 1);
                Ok(Some(line))
            }
            None if buf.len() >= codec::LINE_MAX => Err(Errno::EPROTO),
            None => Ok(None),
        }
    }

    /// Consume frames until starved, backpressured, or closing.
    fn pump(&mut self, lc: &LoopCtx) {
        let exit = loop {
            if self.dead {
                break PumpExit::Closing;
            }
            if self.close_after_flush {
                break PumpExit::Closing;
            }
            if self.out.unflushed() > OUT_SOFT_CAP {
                break PumpExit::Backpressure;
            }
            let step = match self.phase {
                ConnPhase::Auth(_) => self.step_auth(lc),
                ConnPhase::Session(_) => self.step_session(lc),
            };
            match step {
                Some(()) => continue,
                None => break PumpExit::Starved,
            }
        };
        self.pump_paused = exit == PumpExit::Backpressure;
        // EOF with no undispatched frame left: nothing more will ever
        // arrive, so finish sending what we owe and close.
        if exit == PumpExit::Starved && self.saw_eof {
            self.close_after_flush = true;
        }
    }

    /// Satellite fix for silent teardown: a protocol violation (overlong
    /// line, invalid UTF-8) now answers `error EPROTO` once, lands in
    /// the audit ring as a shed, and then closes the connection.
    fn protocol_teardown(&mut self, lc: &LoopCtx) {
        let (identity, trace) = match &self.phase {
            ConnPhase::Session(s) => (s.obs.identity.clone(), s.obs.trace.get()),
            ConnPhase::Auth(_) => ("(unauthenticated)".to_string(), None),
        };
        if let ConnPhase::Session(s) = &self.phase {
            s.counters.bump_rpc_shed();
        } else {
            lc.ctl.metrics.bump_admission_shed();
        }
        idbox_obs::flight::record_instant("shed", "proto", trace);
        lc.ctl.audit.record_named(
            &identity,
            "proto-shed",
            None,
            Verdict::Deny,
            Some(Errno::EPROTO),
            trace,
        );
        self.queue_line(&error_line(Errno::EPROTO));
        self.close_after_flush = true;
    }

    /// One auth-phase step: feed a line to the machine, queue its
    /// replies, and promote the connection on success. Returns `Some`
    /// when progress was made.
    fn step_auth(&mut self, lc: &LoopCtx) -> Option<()> {
        let line = match self.take_line() {
            Ok(Some(line)) => line,
            Ok(None) => return None,
            Err(_) => {
                self.protocol_teardown(lc);
                return None;
            }
        };
        let (replies, outcome) = {
            let ConnPhase::Auth(machine) = &mut self.phase else {
                unreachable!("step_auth outside auth phase")
            };
            let mut replies = Vec::new();
            let outcome = machine.step(&line, &mut replies);
            (replies, outcome)
        };
        for r in &replies {
            self.queue_line(r);
        }
        match outcome {
            Ok(AuthOutcome::Continue) => Some(()),
            Ok(AuthOutcome::Authenticated(principal)) => {
                match Session::build(principal, lc) {
                    Ok(session) => {
                        // From here on, wire bytes in both directions
                        // are charged to the authenticated identity.
                        self.counters = Some(Arc::clone(&session.counters));
                        self.phase = ConnPhase::Session(Box::new(session));
                        Some(())
                    }
                    // The box could not be provisioned; the client saw
                    // its welcome but the session cannot exist.
                    Err(_) => {
                        self.close_after_flush = true;
                        None
                    }
                }
            }
            Ok(AuthOutcome::Refused) | Err(_) => {
                self.close_after_flush = true;
                None
            }
        }
    }

    /// One session-phase step: complete a frame (line + payload) and
    /// dispatch it. Returns `Some` when progress was made.
    fn step_session(&mut self, lc: &LoopCtx) -> Option<()> {
        // A frame waiting on its payload blocks the stream (frames are
        // strictly ordered), so nothing else can be parsed before it.
        if let Some(pf) = &self.pending {
            if (self.avail() as u64) < pf.payload_len {
                return None;
            }
            let pf = self.pending.take().expect("pending frame present");
            let payload = self.extract_payload(pf.payload_len as usize);
            self.dispatch_frame(pf, payload, lc);
            return Some(());
        }
        let raw = match self.take_line() {
            Ok(Some(line)) => line,
            Ok(None) => return None,
            Err(_) => {
                self.protocol_teardown(lc);
                return None;
            }
        };
        // v2 token order on the wire: <command> id=<n> retry=<k>
        // trace=<t> — stripped in reverse.
        let (line, trace) = codec::strip_trace(&raw);
        let (line, retry) = codec::strip_retry(line);
        let (line, id) = codec::strip_id(line);
        let words = match codec::split_words(line) {
            Ok(w) if !w.is_empty() => w,
            _ => {
                self.queue_reply(Err(Errno::EPROTO), id, trace);
                return Some(());
            }
        };
        let pf = match announced_payload(&words) {
            Ok(len) => PendingFrame {
                words,
                id,
                retry,
                trace,
                payload_len: len.unwrap_or(0),
            },
            // A bad or oversized announce is answered without waiting
            // for (or allocating) any payload. The peer may still send
            // the bytes, which will fail to parse as a command line —
            // that desync then tears the connection down as a protocol
            // error, which is the best available recovery.
            Err(e) => {
                self.queue_reply(Err(e), id, trace);
                return Some(());
            }
        };
        if (self.avail() as u64) < pf.payload_len {
            self.pending = Some(pf);
            return Some(());
        }
        let payload = self.extract_payload(pf.payload_len as usize);
        self.dispatch_frame(pf, payload, lc);
        Some(())
    }

    /// Slice a frame's announced payload off the input buffer into a
    /// pooled buffer (reused across frames instead of allocated fresh).
    fn extract_payload(&mut self, len: usize) -> Vec<u8> {
        let start = self.inpos;
        let mut payload = self.payload_pool.pop().unwrap_or_default();
        payload.extend_from_slice(&self.inbuf[start..start + len]);
        self.consume(len);
        payload
    }

    /// Return a payload buffer to the pool. A dispatch that consumed
    /// the buffer by value (`setacl`) leaves an empty, capacity-less
    /// vec behind, which is dropped here; so are buffers a huge `put`
    /// grew past the pool cap.
    fn recycle_payload(&mut self, mut buf: Vec<u8>) {
        buf.clear();
        let cap = payload_pool_cap();
        if self.payload_pool.len() < POOL_MAX_BUFS && buf.capacity() > 0 && buf.capacity() <= cap
        {
            self.payload_pool.push(buf);
        }
    }

    /// Dispatch one complete frame through the session and queue its
    /// reply (stamped with the frame's id when it carried one).
    fn dispatch_frame(&mut self, pf: PendingFrame, mut payload: Vec<u8>, lc: &LoopCtx) {
        let ConnPhase::Session(session) = &mut self.phase else {
            unreachable!("frames only exist in session phase")
        };
        let (reply, close) = session.handle_frame(&pf, &mut payload, lc);
        self.recycle_payload(payload);
        // The frame's trace was parked on this thread for the duration
        // of the dispatch; clear it so events from the next frame (or
        // idle work) are not mis-tagged.
        idbox_obs::flight::set_current_trace(None);
        if close {
            self.close_after_flush = true;
        }
        if let Some(r) = reply {
            self.queue_reply(r, pf.id, pf.trace);
        }
    }

    /// Render a reply into the output queue: the head line (id-stamped
    /// when the request was pipelined), then the payload — owned bytes
    /// for rendered replies, borrowed extents for streamed ones.
    fn queue_reply(
        &mut self,
        reply: Result<Reply, Errno>,
        id: Option<u64>,
        trace: Option<TraceId>,
    ) {
        let (head, body) = match reply {
            Ok(Reply::Line(l)) => (l, None),
            Ok(Reply::Payload(head, data)) => (head, Some(Ok(data))),
            Ok(Reply::Stream(head, extents)) => (head, Some(Err(extents))),
            Err(e) => (error_line(e), None),
        };
        let head = match id {
            Some(n) => codec::with_id(&head, n),
            None => head,
        };
        self.queue_line(&head);
        match body {
            Some(Ok(data)) => self.out.push_owned_vec(data),
            Some(Err(extents)) => {
                let start_ns = now_unix_ns();
                for part in extents.parts {
                    self.out.push_shared(part);
                }
                self.out.push_mark(trace, start_ns);
            }
            None => {}
        }
    }

    /// Close out the connection: end the boxed session (if one was
    /// established) and deregister.
    fn teardown(self, lc: &LoopCtx) {
        if let ConnPhase::Session(s) = self.phase {
            s.end();
        }
        lc.conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.id);
    }
}

/// An authenticated session: the identity box's supervisor and guest
/// process, plus per-identity observability state. The tracee VM is
/// kept across dispatches instead of being reallocated per request.
pub(crate) struct Session {
    principal: Principal,
    sup: Supervisor,
    vm: Option<TraceeVm>,
    pid: Pid,
    counters: Arc<IdentityCounters>,
    _gauge: SessionGauge,
    obs: SessionObs,
}

impl Session {
    /// The heart of the design, unchanged from the threaded server:
    /// every connection's operations run inside an identity box
    /// carrying the authenticated principal.
    fn build(principal: Principal, lc: &LoopCtx) -> Result<Session, Errno> {
        let identity = principal.to_identity();
        let counters = lc.ctl.metrics.handle(identity.as_str());
        counters.session_started();
        let gauge = SessionGauge(Arc::clone(&counters));
        let obs = SessionObs {
            trace: Arc::new(TraceCell::new()),
            identity: identity.as_str().to_string(),
        };
        let options = BoxOptions {
            cost_model: lc.cost_model,
            audit_ring: Some(Arc::clone(&lc.ctl.audit)),
            trace: Some(Arc::clone(&obs.trace)),
            metrics: Some(Arc::clone(&lc.ctl.metrics)),
            slow_ops: Some(Arc::clone(&lc.ctl.slow_ops)),
            ..Default::default()
        };
        let b = IdentityBox::with_options(
            Arc::clone(&lc.ctl.kernel),
            identity,
            lc.sup_cred,
            options,
        )?;
        let pid = b.spawn_process("chirp-session")?;
        let sup = b.supervisor();
        Ok(Session {
            principal,
            sup,
            vm: Some(TraceeVm::new()),
            pid,
            counters,
            _gauge: gauge,
            obs,
        })
    }

    /// Handle one complete frame: shed checks, dispatch, span. Returns
    /// the reply (None only for frames that produce no reply — there
    /// are none today) and whether the connection should close.
    fn handle_frame(
        &mut self,
        pf: &PendingFrame,
        payload: &mut Vec<u8>,
        lc: &LoopCtx,
    ) -> (Option<Result<Reply, Errno>>, bool) {
        let ctl = &lc.ctl;
        self.obs.trace.set(pf.trace);
        idbox_obs::flight::set_current_trace(pf.trace);
        if pf.retry.is_some() {
            // The client re-sent an earlier attempt (possibly over a
            // fresh connection); count it so retry pressure is visible
            // per identity.
            self.counters.bump_rpc_retried();
            idbox_obs::flight::record_instant("retry", &pf.words[0], pf.trace);
        }
        if pf.words[0] == "quit" {
            return (Some(Ok(Reply::Line("ok".to_string()))), true);
        }
        // Graceful degradation: refuse work we cannot (drain) or should
        // not (overload) take on, with a fast EAGAIN the retry policy
        // understands. The frame — payload included — is already
        // consumed, so the stream stays synchronized.
        let shed_reason = if ctl.draining.load(Ordering::Relaxed) {
            Some("drain")
        } else if ctl
            .busy_watermark
            .is_some_and(|w| ctl.inflight.load(Ordering::Relaxed) >= w as u64)
        {
            Some("busy")
        } else if ctl
            .max_inflight_per_identity
            .is_some_and(|m| self.counters.inflight() >= m as u64)
        {
            Some("identity-limit")
        } else {
            None
        };
        if let Some(reason) = shed_reason {
            self.counters.bump_rpc_shed();
            idbox_obs::flight::record_instant("shed", reason, pf.trace);
            ctl.audit.record_named(
                &self.obs.identity,
                "rpc-shed",
                Some(format!("{} {reason}", pf.words[0])),
                Verdict::Deny,
                Some(Errno::EAGAIN),
                self.obs.trace.get(),
            );
            return (Some(Err(Errno::EAGAIN)), false);
        }
        let t0 = Instant::now();
        let inflight = InflightGuard::new(&ctl.inflight, &self.counters);
        let vm = self.vm.take().unwrap_or_default();
        let mut ctx = GuestCtx::with_vm(&mut self.sup, self.pid, vm);
        let result = dispatch(
            &pf.words,
            payload,
            &mut ctx,
            &self.principal,
            &lc.programs,
            ctl,
            &self.obs,
        );
        self.vm = Some(ctx.into_vm());
        drop(inflight);
        record_span(ctl, &self.obs, Phase::Rpc, &pf.words[0], t0.elapsed());
        (Some(result), false)
    }

    /// End the boxed session's guest process.
    fn end(mut self) {
        let vm = self.vm.take().unwrap_or_default();
        let mut ctx = GuestCtx::with_vm(&mut self.sup, self.pid, vm);
        ctx.exit(0);
    }
}
