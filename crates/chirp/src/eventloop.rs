//! The server's readiness-polled event loop.
//!
//! Connections are state machines, not threads: each worker owns a set
//! of connections and multiplexes them over [`crate::poll`]. A
//! connection moves through two phases — authentication (driven by the
//! incremental [`ServerAuthMachine`]) and the session proper, where a
//! framer slices the read buffer into wire-protocol frames (a command
//! line plus, for the payload-bearing verbs, its announced payload) and
//! hands each complete frame to the dispatcher.
//!
//! Wire-protocol generation 2 rides on this structure: a pipelining
//! client may send many frames before reading replies; every frame that
//! carried an `id=<n>` token gets the same token echoed on its reply
//! line, and all replies produced in one readiness cycle are flushed
//! with a single write. Clients that send no ids (generation 1) get the
//! old strict in-order, flush-per-reply behaviour, because they only
//! ever have one frame outstanding.

use crate::codec::{self, error_line};
use crate::poll::{poll_fds, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
use crate::server::{
    announced_payload, dispatch, record_span, ConnRegistry, GuestFn, Reply, SessionCtl,
    SessionGauge, SessionObs, InflightGuard,
};
use idbox_auth::{AuthOutcome, ServerAuthMachine, ServerVerifier};
use idbox_core::{BoxOptions, IdentityBox, Verdict};
use idbox_interpose::{GuestCtx, Supervisor, TraceeVm};
use idbox_kernel::Pid;
use idbox_obs::{IdentityCounters, Phase, TraceCell, TraceId};
use idbox_types::{CostModel, Errno, Principal};
use idbox_vfs::Cred;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maximum bytes pulled off one socket per readiness cycle, so a
/// fire-hosing peer cannot starve its worker's other connections.
const READ_BUDGET: usize = 256 * 1024;

/// Soft cap on buffered replies: while a connection's write buffer sits
/// above this, no further frames are processed for it (the peer must
/// drain what it already asked for — per-connection backpressure).
const OUT_SOFT_CAP: usize = 1024 * 1024;

/// Poll tick: upper bound on how long a worker sleeps when nothing is
/// ready. Wake sockets make registration and shutdown prompt; the tick
/// only paces the idle sweep.
const POLL_TICK_MS: i32 = 20;

/// Maximum sub-operations accepted in one `batch` frame.
pub(crate) const BATCH_MAX_OPS: usize = 4096;

/// Everything a worker needs to serve connections, shared across the
/// accept thread and all workers.
pub(crate) struct LoopCtx {
    pub(crate) ctl: SessionCtl,
    pub(crate) programs: Arc<BTreeMap<String, GuestFn>>,
    pub(crate) cost_model: CostModel,
    pub(crate) sup_cred: Cred,
    pub(crate) io_timeout: Option<Duration>,
    pub(crate) conns: ConnRegistry,
    /// Soft watchdog budget for one readiness cycle; `None` disables.
    pub(crate) stall_budget: Option<Duration>,
}

/// A freshly accepted connection, handed from the accept thread to a
/// worker. The stream is already nonblocking; the verifier carries the
/// peer's reverse-lookup hostname.
pub(crate) struct Registration {
    pub(crate) id: u64,
    pub(crate) stream: TcpStream,
    pub(crate) verifier: ServerVerifier,
}

/// The accept thread's handle to one worker: a registration queue plus
/// the write side of the worker's wake socket.
pub(crate) struct WorkerHandle {
    tx: Sender<Registration>,
    wake: TcpStream,
}

impl WorkerHandle {
    /// A second handle to the same worker (the accept thread and the
    /// server handle each hold one).
    pub(crate) fn duplicate(&self) -> std::io::Result<WorkerHandle> {
        Ok(WorkerHandle {
            tx: self.tx.clone(),
            wake: self.wake.try_clone()?,
        })
    }

    /// Hand a connection to this worker and wake it out of `poll`.
    pub(crate) fn submit(&self, reg: Registration) {
        let _ = self.tx.send(reg);
        self.notify();
    }

    /// Wake the worker (used on shutdown, and after `submit`). The wake
    /// socket is nonblocking on both sides; a full buffer already means
    /// a wakeup is pending, so a short write is fine.
    pub(crate) fn notify(&self) {
        let _ = (&self.wake).write(&[1]);
    }
}

/// A local socket pair to interrupt `poll` with (std has no pipe).
fn wake_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let l = TcpListener::bind(("127.0.0.1", 0))?;
    let tx = TcpStream::connect(l.local_addr()?)?;
    let (rx, _) = l.accept()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((tx, rx))
}

/// Spawn `n` event-loop workers. Worker threads are detached — they
/// exit promptly when `stop` is set (shutdown wakes them), and a worker
/// stuck inside a long dispatch must not be able to hang shutdown.
pub(crate) fn spawn_workers(
    n: usize,
    lc: Arc<LoopCtx>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<Vec<WorkerHandle>> {
    let mut handles = Vec::with_capacity(n);
    for widx in 0..n {
        let (wake_tx, wake_rx) = wake_pair()?;
        let (tx, rx) = std::sync::mpsc::channel();
        let lc = Arc::clone(&lc);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || run_worker(widx, rx, wake_rx, lc, stop));
        handles.push(WorkerHandle { tx, wake: wake_tx });
    }
    Ok(handles)
}

fn run_worker(
    widx: usize,
    rx: Receiver<Registration>,
    wake: TcpStream,
    lc: Arc<LoopCtx>,
    stop: Arc<AtomicBool>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut fds: Vec<PollFd> = Vec::new();
    // Watchdog rate limit: at most one `loop-stall` audit row per
    // second per worker, so a persistently stalled loop cannot flood
    // the audit ring out of its useful history.
    let mut last_stall_row: Option<Instant> = None;
    loop {
        while let Ok(reg) = rx.try_recv() {
            conns.push(Conn::new(reg));
        }
        if stop.load(Ordering::Relaxed) {
            for c in conns {
                c.teardown(&lc);
            }
            return;
        }
        fds.clear();
        fds.push(PollFd {
            fd: wake.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        for c in &conns {
            let mut events = 0;
            if c.outbuf.len() - c.outpos <= OUT_SOFT_CAP && !c.close_after_flush {
                events |= POLLIN;
            }
            if c.outpos < c.outbuf.len() {
                events |= POLLOUT;
            }
            fds.push(PollFd {
                fd: c.stream.as_raw_fd(),
                events,
                revents: 0,
            });
        }
        let _ = poll_fds(&mut fds, POLL_TICK_MS);
        // Readiness → dispatch → flush for every ready connection is
        // one "cycle"; its duration is the loop-lag sample. Idle ticks
        // (nothing ready) are not samples — they would drown the
        // histogram in POLL_TICK_MS-sized noise.
        let cycle_start = Instant::now();
        let ready = fds.iter().any(|f| f.revents != 0);
        let ws = lc.ctl.loop_stats.worker(widx);
        if ready {
            ws.bump_wakeup();
        }
        if fds[0].revents & POLLIN != 0 {
            let mut buf = [0u8; 64];
            while matches!((&wake).read(&mut buf), Ok(n) if n > 0) {}
        }
        for (c, pfd) in conns.iter_mut().zip(fds[1..].iter()) {
            if pfd.revents & (POLLERR | POLLNVAL) != 0 {
                c.dead = true;
                continue;
            }
            if pfd.revents & (POLLIN | POLLHUP) != 0 {
                c.fill();
            }
            c.pump(&lc);
            let backlog = c.outbuf.len() - c.outpos;
            if backlog > 0 {
                ws.note_outbuf(backlog);
                ws.bump_flush();
            }
            c.flush();
        }
        if let Some(limit) = lc.io_timeout {
            let now = Instant::now();
            for c in conns.iter_mut() {
                if now.duration_since(c.last_activity) > limit {
                    c.dead = true;
                }
            }
        }
        let mut i = 0;
        while i < conns.len() {
            if conns[i].dead {
                conns.swap_remove(i).teardown(&lc);
            } else {
                i += 1;
            }
        }
        ws.set_conns(conns.len());
        if ready {
            let cycle = cycle_start.elapsed();
            ws.lag.record_us(cycle.as_micros() as u64);
            if let Some(budget) = lc.stall_budget {
                if cycle > budget {
                    ws.bump_stall();
                    idbox_obs::flight::record_instant("loop", "loop-stall", None);
                    let rate_ok = last_stall_row
                        .is_none_or(|t| t.elapsed() >= Duration::from_secs(1));
                    if rate_ok {
                        last_stall_row = Some(Instant::now());
                        lc.ctl.audit.record_named(
                            "(server)",
                            "loop-stall",
                            Some(format!(
                                "worker={widx} cycle_ms={} budget_ms={}",
                                cycle.as_millis(),
                                budget.as_millis()
                            )),
                            Verdict::Deny,
                            Some(Errno::EBUSY),
                            None,
                        );
                    }
                }
            }
        }
    }
}

/// Which phase of its life a connection is in.
enum ConnPhase {
    Auth(ServerAuthMachine),
    Session(Box<Session>),
}

/// A frame whose command line has been read but whose announced payload
/// has not fully arrived yet.
struct PendingFrame {
    words: Vec<String>,
    id: Option<u64>,
    retry: Option<u32>,
    trace: Option<TraceId>,
    payload_len: u64,
}

/// Why `pump` stopped consuming frames.
#[derive(PartialEq)]
enum PumpExit {
    /// Ran out of complete frames; more input is needed.
    Starved,
    /// The write buffer is over the soft cap; resume after a flush.
    Backpressure,
    /// The connection is closing (quit, protocol error, auth refusal).
    Closing,
}

/// One connection's full state: buffers, phase, and liveness.
struct Conn {
    id: u64,
    stream: TcpStream,
    inbuf: Vec<u8>,
    inpos: usize,
    outbuf: Vec<u8>,
    outpos: usize,
    last_activity: Instant,
    phase: ConnPhase,
    pending: Option<PendingFrame>,
    saw_eof: bool,
    close_after_flush: bool,
    dead: bool,
}

impl Conn {
    fn new(reg: Registration) -> Self {
        Conn {
            id: reg.id,
            stream: reg.stream,
            inbuf: Vec::new(),
            inpos: 0,
            outbuf: Vec::new(),
            outpos: 0,
            last_activity: Instant::now(),
            phase: ConnPhase::Auth(ServerAuthMachine::new(reg.verifier)),
            pending: None,
            saw_eof: false,
            close_after_flush: false,
            dead: false,
        }
    }

    /// Pull whatever the socket has (bounded by [`READ_BUDGET`]).
    fn fill(&mut self) {
        let mut scratch = [0u8; 16 * 1024];
        let mut total = 0;
        loop {
            match (&self.stream).read(&mut scratch) {
                Ok(0) => {
                    self.saw_eof = true;
                    break;
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&scratch[..n]);
                    self.last_activity = Instant::now();
                    total += n;
                    if total >= READ_BUDGET {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
    }

    /// Write as much buffered output as the socket takes right now.
    /// This is the single flush point: every reply produced during one
    /// readiness cycle goes out in (at most) one burst of writes.
    fn flush(&mut self) {
        while self.outpos < self.outbuf.len() {
            match (&self.stream).write(&self.outbuf[self.outpos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.outpos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.outpos == self.outbuf.len() {
            self.outbuf.clear();
            self.outpos = 0;
            if self.close_after_flush {
                self.dead = true;
            }
        } else if self.outpos > OUT_SOFT_CAP {
            self.outbuf.drain(..self.outpos);
            self.outpos = 0;
        }
    }

    fn queue_bytes(&mut self, bytes: &[u8]) {
        self.outbuf.extend_from_slice(bytes);
    }

    fn queue_line(&mut self, line: &str) {
        self.outbuf.extend_from_slice(line.as_bytes());
        self.outbuf.push(b'\n');
    }

    /// Unconsumed input.
    fn avail(&self) -> usize {
        self.inbuf.len() - self.inpos
    }

    fn consume(&mut self, n: usize) {
        self.inpos += n;
        // Compact once the consumed prefix dominates, so long sessions
        // do not accrete an ever-growing buffer.
        if self.inpos > 4096 && self.inpos * 2 >= self.inbuf.len() {
            self.inbuf.drain(..self.inpos);
            self.inpos = 0;
        }
    }

    /// Slice one `\n`-terminated line off the input buffer, enforcing
    /// the same bound as `codec::read_line`: the newline must arrive
    /// within [`codec::LINE_MAX`] bytes.
    fn take_line(&mut self) -> Result<Option<String>, Errno> {
        let buf = &self.inbuf[self.inpos..];
        let window = buf.len().min(codec::LINE_MAX);
        match buf[..window].iter().position(|&b| b == b'\n') {
            Some(i) => {
                let mut line = std::str::from_utf8(&buf[..i])
                    .map_err(|_| Errno::EPROTO)?
                    .to_string();
                while line.ends_with('\r') {
                    line.pop();
                }
                self.consume(i + 1);
                Ok(Some(line))
            }
            None if buf.len() >= codec::LINE_MAX => Err(Errno::EPROTO),
            None => Ok(None),
        }
    }

    /// Consume frames until starved, backpressured, or closing.
    fn pump(&mut self, lc: &LoopCtx) {
        let exit = loop {
            if self.dead {
                break PumpExit::Closing;
            }
            if self.close_after_flush {
                break PumpExit::Closing;
            }
            if self.outbuf.len() - self.outpos > OUT_SOFT_CAP {
                break PumpExit::Backpressure;
            }
            let step = match self.phase {
                ConnPhase::Auth(_) => self.step_auth(lc),
                ConnPhase::Session(_) => self.step_session(lc),
            };
            match step {
                Some(()) => continue,
                None => break PumpExit::Starved,
            }
        };
        // EOF with no undispatched frame left: nothing more will ever
        // arrive, so finish sending what we owe and close.
        if exit == PumpExit::Starved && self.saw_eof {
            self.close_after_flush = true;
        }
    }

    /// Satellite fix for silent teardown: a protocol violation (overlong
    /// line, invalid UTF-8) now answers `error EPROTO` once, lands in
    /// the audit ring as a shed, and then closes the connection.
    fn protocol_teardown(&mut self, lc: &LoopCtx) {
        let (identity, trace) = match &self.phase {
            ConnPhase::Session(s) => (s.obs.identity.clone(), s.obs.trace.get()),
            ConnPhase::Auth(_) => ("(unauthenticated)".to_string(), None),
        };
        if let ConnPhase::Session(s) = &self.phase {
            s.counters.bump_rpc_shed();
        } else {
            lc.ctl.metrics.bump_admission_shed();
        }
        idbox_obs::flight::record_instant("shed", "proto", trace);
        lc.ctl.audit.record_named(
            &identity,
            "proto-shed",
            None,
            Verdict::Deny,
            Some(Errno::EPROTO),
            trace,
        );
        self.queue_line(&error_line(Errno::EPROTO));
        self.close_after_flush = true;
    }

    /// One auth-phase step: feed a line to the machine, queue its
    /// replies, and promote the connection on success. Returns `Some`
    /// when progress was made.
    fn step_auth(&mut self, lc: &LoopCtx) -> Option<()> {
        let line = match self.take_line() {
            Ok(Some(line)) => line,
            Ok(None) => return None,
            Err(_) => {
                self.protocol_teardown(lc);
                return None;
            }
        };
        let (replies, outcome) = {
            let ConnPhase::Auth(machine) = &mut self.phase else {
                unreachable!("step_auth outside auth phase")
            };
            let mut replies = Vec::new();
            let outcome = machine.step(&line, &mut replies);
            (replies, outcome)
        };
        for r in &replies {
            self.queue_line(r);
        }
        match outcome {
            Ok(AuthOutcome::Continue) => Some(()),
            Ok(AuthOutcome::Authenticated(principal)) => {
                match Session::build(principal, lc) {
                    Ok(session) => {
                        self.phase = ConnPhase::Session(Box::new(session));
                        Some(())
                    }
                    // The box could not be provisioned; the client saw
                    // its welcome but the session cannot exist.
                    Err(_) => {
                        self.close_after_flush = true;
                        None
                    }
                }
            }
            Ok(AuthOutcome::Refused) | Err(_) => {
                self.close_after_flush = true;
                None
            }
        }
    }

    /// One session-phase step: complete a frame (line + payload) and
    /// dispatch it. Returns `Some` when progress was made.
    fn step_session(&mut self, lc: &LoopCtx) -> Option<()> {
        // A frame waiting on its payload blocks the stream (frames are
        // strictly ordered), so nothing else can be parsed before it.
        if let Some(pf) = &self.pending {
            if (self.avail() as u64) < pf.payload_len {
                return None;
            }
            let pf = self.pending.take().expect("pending frame present");
            let start = self.inpos;
            let payload =
                self.inbuf[start..start + pf.payload_len as usize].to_vec();
            self.consume(pf.payload_len as usize);
            self.dispatch_frame(pf, payload, lc);
            return Some(());
        }
        let raw = match self.take_line() {
            Ok(Some(line)) => line,
            Ok(None) => return None,
            Err(_) => {
                self.protocol_teardown(lc);
                return None;
            }
        };
        // v2 token order on the wire: <command> id=<n> retry=<k>
        // trace=<t> — stripped in reverse.
        let (line, trace) = codec::strip_trace(&raw);
        let (line, retry) = codec::strip_retry(line);
        let (line, id) = codec::strip_id(line);
        let words = match codec::split_words(line) {
            Ok(w) if !w.is_empty() => w,
            _ => {
                self.queue_reply(Err(Errno::EPROTO), id);
                return Some(());
            }
        };
        let pf = match announced_payload(&words) {
            Ok(len) => PendingFrame {
                words,
                id,
                retry,
                trace,
                payload_len: len.unwrap_or(0),
            },
            // A bad or oversized announce is answered without waiting
            // for (or allocating) any payload. The peer may still send
            // the bytes, which will fail to parse as a command line —
            // that desync then tears the connection down as a protocol
            // error, which is the best available recovery.
            Err(e) => {
                self.queue_reply(Err(e), id);
                return Some(());
            }
        };
        if (self.avail() as u64) < pf.payload_len {
            self.pending = Some(pf);
            return Some(());
        }
        let start = self.inpos;
        let payload = self.inbuf[start..start + pf.payload_len as usize].to_vec();
        self.consume(pf.payload_len as usize);
        self.dispatch_frame(pf, payload, lc);
        Some(())
    }

    /// Dispatch one complete frame through the session and queue its
    /// reply (stamped with the frame's id when it carried one).
    fn dispatch_frame(&mut self, pf: PendingFrame, payload: Vec<u8>, lc: &LoopCtx) {
        let ConnPhase::Session(session) = &mut self.phase else {
            unreachable!("frames only exist in session phase")
        };
        let (reply, close) = session.handle_frame(&pf, &payload, lc);
        // The frame's trace was parked on this thread for the duration
        // of the dispatch; clear it so events from the next frame (or
        // idle work) are not mis-tagged.
        idbox_obs::flight::set_current_trace(None);
        if close {
            self.close_after_flush = true;
        }
        if let Some(r) = reply {
            self.queue_reply(r, pf.id);
        }
    }

    /// Render a reply — head line (id-stamped when the request was
    /// pipelined), then any payload — into the write buffer.
    fn queue_reply(&mut self, reply: Result<Reply, Errno>, id: Option<u64>) {
        let (head, data) = match reply {
            Ok(Reply::Line(l)) => (l, None),
            Ok(Reply::Payload(head, data)) => (head, Some(data)),
            Err(e) => (error_line(e), None),
        };
        let head = match id {
            Some(n) => codec::with_id(&head, n),
            None => head,
        };
        self.queue_line(&head);
        if let Some(data) = data {
            self.queue_bytes(&data);
        }
    }

    /// Close out the connection: end the boxed session (if one was
    /// established) and deregister.
    fn teardown(self, lc: &LoopCtx) {
        if let ConnPhase::Session(s) = self.phase {
            s.end();
        }
        lc.conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.id);
    }
}

/// An authenticated session: the identity box's supervisor and guest
/// process, plus per-identity observability state. The tracee VM is
/// kept across dispatches instead of being reallocated per request.
pub(crate) struct Session {
    principal: Principal,
    sup: Supervisor,
    vm: Option<TraceeVm>,
    pid: Pid,
    counters: Arc<IdentityCounters>,
    _gauge: SessionGauge,
    obs: SessionObs,
}

impl Session {
    /// The heart of the design, unchanged from the threaded server:
    /// every connection's operations run inside an identity box
    /// carrying the authenticated principal.
    fn build(principal: Principal, lc: &LoopCtx) -> Result<Session, Errno> {
        let identity = principal.to_identity();
        let counters = lc.ctl.metrics.handle(identity.as_str());
        counters.session_started();
        let gauge = SessionGauge(Arc::clone(&counters));
        let obs = SessionObs {
            trace: Arc::new(TraceCell::new()),
            identity: identity.as_str().to_string(),
        };
        let options = BoxOptions {
            cost_model: lc.cost_model,
            audit_ring: Some(Arc::clone(&lc.ctl.audit)),
            trace: Some(Arc::clone(&obs.trace)),
            metrics: Some(Arc::clone(&lc.ctl.metrics)),
            slow_ops: Some(Arc::clone(&lc.ctl.slow_ops)),
            ..Default::default()
        };
        let b = IdentityBox::with_options(
            Arc::clone(&lc.ctl.kernel),
            identity,
            lc.sup_cred,
            options,
        )?;
        let pid = b.spawn_process("chirp-session")?;
        let sup = b.supervisor();
        Ok(Session {
            principal,
            sup,
            vm: Some(TraceeVm::new()),
            pid,
            counters,
            _gauge: gauge,
            obs,
        })
    }

    /// Handle one complete frame: shed checks, dispatch, span. Returns
    /// the reply (None only for frames that produce no reply — there
    /// are none today) and whether the connection should close.
    fn handle_frame(
        &mut self,
        pf: &PendingFrame,
        payload: &[u8],
        lc: &LoopCtx,
    ) -> (Option<Result<Reply, Errno>>, bool) {
        let ctl = &lc.ctl;
        self.obs.trace.set(pf.trace);
        idbox_obs::flight::set_current_trace(pf.trace);
        if pf.retry.is_some() {
            // The client re-sent an earlier attempt (possibly over a
            // fresh connection); count it so retry pressure is visible
            // per identity.
            self.counters.bump_rpc_retried();
            idbox_obs::flight::record_instant("retry", &pf.words[0], pf.trace);
        }
        if pf.words[0] == "quit" {
            return (Some(Ok(Reply::Line("ok".to_string()))), true);
        }
        // Graceful degradation: refuse work we cannot (drain) or should
        // not (overload) take on, with a fast EAGAIN the retry policy
        // understands. The frame — payload included — is already
        // consumed, so the stream stays synchronized.
        let shed_reason = if ctl.draining.load(Ordering::Relaxed) {
            Some("drain")
        } else if ctl
            .busy_watermark
            .is_some_and(|w| ctl.inflight.load(Ordering::Relaxed) >= w as u64)
        {
            Some("busy")
        } else if ctl
            .max_inflight_per_identity
            .is_some_and(|m| self.counters.inflight() >= m as u64)
        {
            Some("identity-limit")
        } else {
            None
        };
        if let Some(reason) = shed_reason {
            self.counters.bump_rpc_shed();
            idbox_obs::flight::record_instant("shed", reason, pf.trace);
            ctl.audit.record_named(
                &self.obs.identity,
                "rpc-shed",
                Some(format!("{} {reason}", pf.words[0])),
                Verdict::Deny,
                Some(Errno::EAGAIN),
                self.obs.trace.get(),
            );
            return (Some(Err(Errno::EAGAIN)), false);
        }
        let t0 = Instant::now();
        let inflight = InflightGuard::new(&ctl.inflight, &self.counters);
        let vm = self.vm.take().unwrap_or_default();
        let mut ctx = GuestCtx::with_vm(&mut self.sup, self.pid, vm);
        let result = dispatch(
            &pf.words,
            payload,
            &mut ctx,
            &self.principal,
            &lc.programs,
            ctl,
            &self.obs,
        );
        self.vm = Some(ctx.into_vm());
        drop(inflight);
        record_span(ctl, &self.obs, Phase::Rpc, &pf.words[0], t0.elapsed());
        (Some(result), false)
    }

    /// End the boxed session's guest process.
    fn end(mut self) {
        let vm = self.vm.take().unwrap_or_default();
        let mut ctx = GuestCtx::with_vm(&mut self.sup, self.pid, vm);
        ctx.exit(0);
    }
}
