//! The Chirp distributed storage and execution system.
//!
//! A Chirp server is "a personal file server for grid computing": an
//! ordinary user deploys it over any directory, it exports a Unix-like
//! I/O interface over the network, authenticates clients by negotiation
//! (GSI / Kerberos / hostname / unix), and protects everything with the
//! same ACLs the identity box uses — a **fully virtual user space** in
//! which local accounts are invisible and every name is a principal
//! (paper, Section 4).
//!
//! This reproduction runs over real TCP sockets. The defining design
//! choice: every connection's operations execute *inside an identity
//! box* on the server — a per-connection guest process carrying the
//! authenticated principal, supervised by the interposition policy from
//! `idbox-core`. There is exactly one enforcement path for local and
//! remote access, which is the paper's whole point.
//!
//! The `exec` RPC (the paper's addition) runs a staged program in the
//! caller's identity box. Staged executables are scripts of the form
//! `#!guest <name> [args...]`, resolved against the server's registered
//! program table (the substitution for real ELF images — see DESIGN.md);
//! the execute-right check, staging, and identity propagation follow the
//! paper exactly.

pub mod catalog;
mod client;
pub mod codec;
mod driver;
mod eventloop;
mod poll;
mod server;

pub use client::{
    AuditRow, BatchOp, BatchReply, ChirpClient, HealthRow, PipeReply, Pipeline, RetryPolicy,
    SlowOpRow, StatRow,
};
pub use codec::{decode_word, encode_word};
pub use driver::ChirpDriver;
pub use server::{ChirpServer, ChirpServerHandle, GuestFn, ServerConfig};

/// The directory inside the server kernel that backs the exported space.
pub const EXPORT_ROOT: &str = "/export";

/// Map a client-visible path into the server kernel's namespace.
/// Lexically normalized first, so `..` cannot escape the export root.
pub fn export_path(client_path: &str) -> String {
    let norm = idbox_vfs::path::normalize_lexical(&format!("/{client_path}"));
    if norm == "/" {
        EXPORT_ROOT.to_string()
    } else {
        format!("{EXPORT_ROOT}{norm}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_mapping() {
        assert_eq!(export_path("/work/sim.exe"), "/export/work/sim.exe");
        assert_eq!(export_path("work"), "/export/work");
        assert_eq!(export_path("/"), "/export");
        assert_eq!(export_path(""), "/export");
    }

    #[test]
    fn export_mapping_blocks_escape() {
        assert_eq!(export_path("/../etc/passwd"), "/export/etc/passwd");
        assert_eq!(export_path("/work/../../.."), "/export");
    }
}
