//! Minimal readiness polling over raw fds: a hand-rolled binding to
//! `poll(2)`, so the event-loop server stays dependency-free (no mio,
//! no libc crate). Only what the server needs is bound: `POLLIN`,
//! `POLLOUT`, and the level-triggered wait itself.

use std::io;
use std::os::fd::RawFd;

/// `struct pollfd` from `<poll.h>`, laid out exactly as the kernel ABI
/// expects on every platform we target (fd, events, revents — all
/// fixed-width).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The fd to watch (negative entries are ignored by the kernel).
    pub fd: RawFd,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Returned events; includes `POLLERR`/`POLLHUP`/`POLLNVAL` even
    /// when not requested.
    pub revents: i16,
}

/// Data may be read without blocking.
pub const POLLIN: i16 = 0x001;
/// Data may be written without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always reported, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always reported, never requested).
pub const POLLHUP: i16 = 0x010;
/// The fd is not open (always reported, never requested).
pub const POLLNVAL: i16 = 0x020;

#[cfg(unix)]
extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

/// Wait until at least one watched fd is ready or `timeout_ms` passes
/// (`-1` waits forever, `0` polls). Returns the number of entries with
/// nonzero `revents`; `EINTR` is retried internally so callers never
/// see a spurious early return.
#[cfg(unix)]
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // repr(C) pollfd structs for the duration of the call, and the
        // length is passed alongside it.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(not(unix))]
pub fn poll_fds(_fds: &mut [PollFd], _timeout_ms: i32) -> io::Result<usize> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "readiness polling requires a unix platform",
    ))
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn local_pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let (b, _) = l.accept().unwrap();
        (a, b)
    }

    #[test]
    fn reports_readable_after_write() {
        let (mut a, b) = local_pair();
        let mut fds = [PollFd {
            fd: b.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        // Nothing to read yet: times out with zero ready.
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        a.write_all(b"x").unwrap();
        a.flush().unwrap();
        let n = poll_fds(&mut fds, 2000).unwrap();
        assert_eq!(n, 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
    }

    #[test]
    fn reports_writable_on_fresh_socket() {
        let (a, _b) = local_pair();
        let mut fds = [PollFd {
            fd: a.as_raw_fd(),
            events: POLLOUT,
            revents: 0,
        }];
        let n = poll_fds(&mut fds, 2000).unwrap();
        assert_eq!(n, 1);
        assert_ne!(fds[0].revents & POLLOUT, 0);
    }

    #[test]
    fn reports_hangup_or_readable_eof_on_peer_close() {
        let (a, b) = local_pair();
        drop(a);
        let mut fds = [PollFd {
            fd: b.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        let n = poll_fds(&mut fds, 2000).unwrap();
        assert_eq!(n, 1);
        // EOF surfaces as POLLIN (read returns 0) and often POLLHUP.
        assert_ne!(fds[0].revents & (POLLIN | POLLHUP), 0);
    }
}
