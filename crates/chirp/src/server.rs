//! The Chirp server.

use crate::codec::{self, error_line, ok_num};
use crate::eventloop::{self, LoopCtx, Registration, WorkerHandle, BATCH_MAX_OPS};
use crate::export_path;
use idbox_acl::Acl;
use idbox_auth::ServerVerifier;
use idbox_core::{AuditRing, Verdict};
use idbox_interpose::abi;
use idbox_interpose::{share, GuestCtx, SharedKernel};
use idbox_kernel::{Account, Kernel, OpenFlags, Pid, Syscall};
use idbox_obs::{
    now_unix_ns, IdentityCounters, IdentityMetrics, Phase, SlowOpLog, Span, TraceCell,
    IDENTITY_METRICS_DEFAULT_CAP, SLOW_OP_DEFAULT_CAP,
};
use idbox_types::{CostModel, Errno, SysResult};
use idbox_vfs::{Cred, ExtentList};
use std::collections::BTreeMap;
use std::io::Write;
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use std::time::Duration;

/// A registered guest program: what a staged `#!guest <name>` script
/// resolves to.
pub type GuestFn = Arc<dyn Fn(&mut GuestCtx<'_>, &[String]) -> i32 + Send + Sync>;

/// Server configuration.
pub struct ServerConfig {
    /// Server name (advertised to the catalog).
    pub name: String,
    /// Authentication configuration.
    pub verifier: ServerVerifier,
    /// The ACL installed on the export root (the paper's `/` ACL).
    pub root_acl: Acl,
    /// Cost model for the per-connection identity boxes.
    pub cost_model: CostModel,
    /// Reverse-lookup table for the hostname method.
    pub host_db: BTreeMap<IpAddr, String>,
    /// A catalog to report to (the paper's "servers report themselves
    /// to a catalog"), with re-registration on this heartbeat period.
    pub catalog: Option<SocketAddr>,
    /// Heartbeat period for catalog re-registration.
    pub heartbeat: Duration,
    /// Per-socket read/write timeout. An idle connection whose client
    /// neither sends nor receives within this window is disconnected
    /// (slowloris mitigation). `None` waits forever.
    pub io_timeout: Option<Duration>,
    /// Maximum concurrently served connections. Clients over the cap are
    /// refused with a protocol `error` line instead of being accepted.
    pub max_connections: usize,
    /// Qualified principals (`method:name`, e.g.
    /// `globus:/O=UnivNowhere/CN=Admin`) allowed to call the admin
    /// RPCs (`stats`, `audit`, `metrics`, `slowops`, `tracedump`,
    /// `health`, `walsnap`). Everyone else gets `EACCES`; the default
    /// is empty, so observability is off the wire unless explicitly
    /// granted.
    pub admins: Vec<String>,
    /// Operations at least this long are kept as spans in the slow-op
    /// ring (the `slowops` RPC). `Duration::ZERO` keeps everything.
    pub slow_op_threshold: Duration,
    /// Load-shedding watermark: when this many RPCs are already in
    /// dispatch server-wide, new requests are refused with a fast
    /// `error EAGAIN` instead of queueing behind the backlog. The
    /// session stays connected; a retrying client simply backs off.
    /// `None` disables shedding.
    pub busy_watermark: Option<usize>,
    /// Per-identity concurrency cap: an identity already running this
    /// many RPCs has further requests shed with `error EAGAIN`, so one
    /// noisy principal cannot monopolize dispatch. `None` means
    /// unlimited.
    pub max_inflight_per_identity: Option<usize>,
    /// How long shutdown waits for in-flight RPCs to finish before
    /// force-closing their sockets. Bounded so a stuck guest program
    /// cannot hang the embedding process (or CI) forever.
    pub drain_deadline: Duration,
    /// Event-loop worker threads multiplexing connections. `0` (the
    /// default) resolves from `IDBOX_EVENT_LOOPS`, falling back to the
    /// host's parallelism clamped to [2, 8]. At least two workers run
    /// even on one core, so a long-running dispatch (a slow `exec`)
    /// never blocks every other connection.
    pub event_loops: usize,
    /// Soft watchdog budget for one event-loop readiness cycle. A
    /// worker whose cycle (readiness → dispatch → flush) exceeds the
    /// budget bumps its stall counter and emits a rate-limited
    /// `loop-stall` audit row. `None` (the default) resolves from
    /// `IDBOX_LOOP_STALL_MS` (unset or 0 disables the watchdog).
    pub loop_stall: Option<Duration>,
    /// Ablation switch for the zero-copy data plane: when set, `get`
    /// and `pread` fall back to the copying read path (flat buffer
    /// materialized under the shard lock, then copied into the
    /// connection's write buffer), so the extent pipeline can be A/B
    /// benchmarked against the pre-extent behaviour. `false` (the
    /// default) also consults `IDBOX_DATAPLANE_COPY` (set to 1 to force
    /// the copying path at startup).
    pub copy_data_plane: bool,
    /// Directory for the write-ahead log. When set (or when
    /// `IDBOX_WAL_DIR` names a directory), every namespace and account
    /// mutation is logged to disk and replayed on the next boot, so the
    /// export space survives a restart or crash. `None` with the env
    /// unset (the in-memory default) keeps the kernel volatile.
    pub wal_dir: Option<std::path::PathBuf>,
    /// Group-commit burst backstop: the flusher is woken early once
    /// this many records are dirty (the `IDBOX_WAL_SYNC_MS` tick is the
    /// primary pacing). `Some(0)` = fsync every append (strictest).
    /// `None` resolves from `IDBOX_WAL_SYNC_OPS`, default 65536.
    pub wal_sync_ops: Option<u64>,
    /// Group-commit interval: a background flusher fsyncs dirty records
    /// at least this often, in milliseconds. Ignored when syncing every
    /// op. `None` resolves from `IDBOX_WAL_SYNC_MS`, default 25.
    pub wal_sync_ms: Option<u64>,
    /// Auto-snapshot cadence: snapshot + truncate the log whenever this
    /// many records have accumulated since the last snapshot. `Some(0)`
    /// disables auto-snapshots (the `walsnap` RPC still works). `None`
    /// resolves from `IDBOX_WAL_SNAPSHOT_OPS`, default 10000.
    pub wal_snapshot_ops: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let mut host_db = BTreeMap::new();
        host_db.insert(
            IpAddr::from([127, 0, 0, 1]),
            "localhost".to_string(),
        );
        ServerConfig {
            name: "chirp".to_string(),
            verifier: ServerVerifier::new(),
            root_acl: Acl::empty(),
            cost_model: CostModel::free_switches(),
            host_db,
            catalog: None,
            heartbeat: Duration::from_secs(60),
            io_timeout: None,
            max_connections: 1024,
            admins: Vec::new(),
            slow_op_threshold: Duration::from_millis(1),
            busy_watermark: None,
            max_inflight_per_identity: None,
            drain_deadline: Duration::from_secs(1),
            event_loops: 0,
            loop_stall: None,
            copy_data_plane: false,
            wal_dir: None,
            wal_sync_ops: None,
            wal_sync_ms: None,
            wal_snapshot_ops: None,
        }
    }
}

/// Resolve the WAL directory: explicit config wins, then the
/// `IDBOX_WAL_DIR` environment knob (unset or empty = durability off).
fn resolve_wal_dir(configured: &Option<std::path::PathBuf>) -> Option<std::path::PathBuf> {
    if configured.is_some() {
        return configured.clone();
    }
    std::env::var("IDBOX_WAL_DIR")
        .ok()
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
        .map(std::path::PathBuf::from)
}

/// Resolve a numeric WAL knob: explicit config wins, then the named
/// environment variable, then the default. Zero is a meaningful value
/// (sync-every-op / auto-snapshot off), not "unset".
fn resolve_wal_knob(configured: Option<u64>, env: &str, default: u64) -> u64 {
    if let Some(v) = configured {
        return v;
    }
    std::env::var(env)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(default)
}

/// Resolve the data-plane ablation switch: explicit config wins, then
/// the `IDBOX_DATAPLANE_COPY` environment knob (1 = copying path).
fn resolve_copy_data_plane(configured: bool) -> bool {
    configured
        || std::env::var("IDBOX_DATAPLANE_COPY")
            .ok()
            .and_then(|v| v.trim().parse::<u8>().ok())
            .is_some_and(|v| v != 0)
}

/// Resolve the stall-watchdog budget: explicit config wins, then the
/// `IDBOX_LOOP_STALL_MS` environment knob; unset or 0 disables.
fn resolve_loop_stall(configured: Option<Duration>) -> Option<Duration> {
    if let Some(d) = configured {
        return (d > Duration::ZERO).then_some(d);
    }
    std::env::var("IDBOX_LOOP_STALL_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis)
}

/// Resolve the worker count: explicit config wins, then the
/// `IDBOX_EVENT_LOOPS` environment knob, then host parallelism clamped
/// to [2, 8].
fn resolve_event_loops(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    if let Some(n) = std::env::var("IDBOX_EVENT_LOOPS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8)
}

/// Live-connection registry: duplicated stream handles keyed by a
/// connection id, used both to gate admission (`len()` against
/// `max_connections`) and to signal lingering sessions on shutdown
/// (`TcpStream::shutdown` unblocks their reads).
pub(crate) type ConnRegistry = Arc<std::sync::Mutex<std::collections::HashMap<u64, TcpStream>>>;

/// A Chirp server ready to be spawned.
pub struct ChirpServer {
    config: ServerConfig,
    kernel: SharedKernel,
    programs: BTreeMap<String, GuestFn>,
    sup_cred: Cred,
    audit: Arc<AuditRing>,
    metrics: Arc<IdentityMetrics>,
    slow_ops: Arc<SlowOpLog>,
    /// Auto-snapshot cadence in records (0 = off); meaningful only when
    /// the kernel carries a WAL.
    wal_snapshot_every: u64,
    /// The recovery report from boot, when a WAL directory was
    /// configured.
    recovery: Option<idbox_vfs::RecoveryReport>,
}

/// The kernel's syscall name table, as the `'static` slice the metrics
/// registry sizes and labels its per-syscall counters with.
const SYSCALL_NAMES: &[&str] = &Syscall::NAMES;

impl ChirpServer {
    /// Build a server with its own simulated kernel: the export space
    /// lives at [`crate::EXPORT_ROOT`] and carries `config.root_acl`.
    /// The server runs as an ordinary user (`chirp`, uid 1000) — no
    /// privileges anywhere.
    ///
    /// Setup failures (account clash, export-root creation, a root ACL
    /// that cannot be installed) come back as errors so a bad config
    /// cannot kill the embedding process.
    pub fn new(config: ServerConfig) -> SysResult<Self> {
        // Durable mode: boot the kernel from the WAL directory's
        // snapshot + log instead of from scratch.
        let wal_dir = resolve_wal_dir(&config.wal_dir);
        let (mut k, recovery) = match &wal_dir {
            Some(dir) => {
                let mut wal_cfg = idbox_vfs::WalConfig::new(dir.clone());
                wal_cfg.sync_ops = resolve_wal_knob(config.wal_sync_ops, "IDBOX_WAL_SYNC_OPS", 65536);
                wal_cfg.sync_ms = resolve_wal_knob(config.wal_sync_ms, "IDBOX_WAL_SYNC_MS", 25);
                let (k, report) = Kernel::with_durability(wal_cfg).map_err(|_| Errno::EIO)?;
                (k, Some(report))
            }
            None => (Kernel::new(), None),
        };
        let wal_snapshot_every = if wal_dir.is_some() {
            resolve_wal_knob(config.wal_snapshot_ops, "IDBOX_WAL_SNAPSHOT_OPS", 10_000)
        } else {
            0
        };
        let restored = recovery.as_ref().is_some_and(|r| r.restored);
        // Setup is idempotent across restarts: on a restored namespace
        // the account and export root already exist, and the operator's
        // live ACL and ownership (possibly changed since first boot via
        // `setacl`) are preserved rather than clobbered with the
        // config's bootstrap values.
        if k.accounts().lookup("chirp").is_none() {
            k.account_add(Account::new("chirp", 1000, 1000))?;
        }
        let sup_cred = Cred::new(1000, 1000);
        let root = k.vfs().root();
        let export = k
            .vfs_mut()
            .mkdir_all(root, crate::EXPORT_ROOT, 0o755, &Cred::ROOT)?;
        if !restored {
            k.vfs_mut()
                .chown(root, crate::EXPORT_ROOT, 1000, 1000, &Cred::ROOT)?;
            idbox_core::write_acl(k.vfs_mut(), export, &config.root_acl, &sup_cred)?;
        }
        let slow_ops = Arc::new(SlowOpLog::new(
            SLOW_OP_DEFAULT_CAP,
            config.slow_op_threshold.as_nanos().min(u128::from(u64::MAX)) as u64,
        ));
        Ok(ChirpServer {
            config,
            kernel: share(k),
            programs: BTreeMap::new(),
            sup_cred,
            audit: Arc::new(AuditRing::default()),
            metrics: Arc::new(IdentityMetrics::new(
                SYSCALL_NAMES,
                IDENTITY_METRICS_DEFAULT_CAP,
            )),
            slow_ops,
            wal_snapshot_every,
            recovery,
        })
    }

    /// The boot recovery report, when a WAL directory was configured.
    pub fn recovery(&self) -> Option<&idbox_vfs::RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Register a guest program for `exec` (resolved from staged
    /// `#!guest <name>` scripts).
    pub fn register_program(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&mut GuestCtx<'_>, &[String]) -> i32 + Send + Sync + 'static,
    ) {
        self.programs.insert(name.into(), Arc::new(f));
    }

    /// The server's kernel (tests inspect the export space through it).
    pub fn kernel(&self) -> &SharedKernel {
        &self.kernel
    }

    /// Bind to a local port and serve connections from a readiness-
    /// polled event loop: an accept thread admits connections and
    /// hands them to worker threads, each multiplexing its share of
    /// connections as nonblocking state machines. Returns a handle
    /// carrying the bound address.
    pub fn spawn(self) -> std::io::Result<ChirpServerHandle> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let verifier = Arc::new(self.config.verifier);
        let host_db = Arc::new(self.config.host_db);
        let max_connections = self.config.max_connections;
        let audit = Arc::clone(&self.audit);
        let metrics = Arc::clone(&self.metrics);
        let drain_deadline = self.config.drain_deadline;
        let draining = Arc::new(AtomicBool::new(false));
        let inflight = Arc::new(AtomicU64::new(0));
        let conns: ConnRegistry = Arc::default();
        let conns2 = Arc::clone(&conns);
        let n_workers = resolve_event_loops(self.config.event_loops);
        let loop_stats = Arc::new(idbox_obs::LoopStats::new(n_workers));
        // First server in the process wires the lock shim's contention
        // hook into the flight recorder (idempotent).
        idbox_obs::flight::install_lock_hook();
        let ctl = SessionCtl {
            kernel: Arc::clone(&self.kernel),
            admins: Arc::new(self.config.admins),
            audit: Arc::clone(&self.audit),
            metrics: Arc::clone(&self.metrics),
            slow_ops: Arc::clone(&self.slow_ops),
            loop_stats: Arc::clone(&loop_stats),
            draining: Arc::clone(&draining),
            inflight: Arc::clone(&inflight),
            busy_watermark: self.config.busy_watermark,
            max_inflight_per_identity: self.config.max_inflight_per_identity,
            copy_data_plane: resolve_copy_data_plane(self.config.copy_data_plane),
        };
        let lc = Arc::new(LoopCtx {
            ctl,
            programs: Arc::new(self.programs),
            cost_model: self.config.cost_model,
            sup_cred: self.sup_cred,
            io_timeout: self.config.io_timeout,
            conns: Arc::clone(&conns),
            stall_budget: resolve_loop_stall(self.config.loop_stall),
        });
        let workers = eventloop::spawn_workers(n_workers, lc, Arc::clone(&stop))?;
        let wakers: Vec<WorkerHandle> = workers
            .iter()
            .map(|w| w.duplicate())
            .collect::<std::io::Result<_>>()?;
        // Auto-snapshot: when the kernel is durable and a cadence is
        // configured, a background thread snapshots the namespace and
        // truncates the log whenever enough records accumulate. Taking
        // the snapshot under the shared kernel lock lets RPCs proceed;
        // the vfs shard read locks inside `snapshot_cut` provide the
        // consistency point.
        let wal = self.kernel.read().vfs().wal().cloned();
        if let (Some(wal), every) = (wal, self.wal_snapshot_every) {
            if every > 0 {
                let kernel = Arc::clone(&self.kernel);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        if wal.since_snapshot() >= every {
                            let _ = kernel.read().wal_snapshot();
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                });
            }
        }
        // Catalog heartbeat: register now and on every period until
        // shutdown.
        if let Some(catalog) = self.config.catalog {
            let name = self.config.name.clone();
            let stop = Arc::clone(&stop);
            let period = self.config.heartbeat;
            let addr_str = addr.to_string();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = crate::catalog::register(catalog, &addr_str, &name);
                    // Sleep in small slices so shutdown is prompt.
                    let mut remaining = period;
                    while !stop.load(Ordering::Relaxed) && remaining > Duration::ZERO {
                        let slice = remaining.min(Duration::from_millis(20));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
            });
        }
        let join = std::thread::spawn(move || {
            let mut next_id: u64 = 0;
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((mut stream, peer)) => {
                        // Admission gate: over the cap, the client gets
                        // a protocol error line, never a session. The
                        // refusal happens before authentication, so it
                        // is counted against the server (the label-less
                        // `idbox_admission_shed_total` sample), not an
                        // identity, and audited under a placeholder.
                        let mut registry = conns2.lock().unwrap_or_else(|e| e.into_inner());
                        if registry.len() >= max_connections {
                            drop(registry);
                            metrics.bump_admission_shed();
                            audit.record_named(
                                "(unauthenticated)",
                                "admission-shed",
                                None,
                                Verdict::Deny,
                                Some(Errno::EAGAIN),
                                None,
                            );
                            let _ = stream
                                .write_all(error_line(Errno::EAGAIN).as_bytes())
                                .and_then(|_| stream.write_all(b"\n"));
                            continue;
                        }
                        let id = next_id;
                        next_id += 1;
                        if let Ok(dup) = stream.try_clone() {
                            registry.insert(id, dup);
                        }
                        drop(registry);
                        // Small request/response lines: without nodelay
                        // every reply stalls on Nagle + delayed ACK.
                        let _ = stream.set_nodelay(true);
                        if stream.set_nonblocking(true).is_err() {
                            conns2
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .remove(&id);
                            continue;
                        }
                        let mut verifier = (*verifier).clone();
                        verifier.peer_hostname = host_db.get(&peer.ip()).cloned();
                        workers[id as usize % workers.len()].submit(Registration {
                            id,
                            stream,
                            verifier,
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(ChirpServerHandle {
            addr,
            stop,
            join: Some(join),
            kernel: Arc::clone(&self.kernel),
            conns,
            audit: Arc::clone(&self.audit),
            metrics: Arc::clone(&self.metrics),
            slow_ops: Arc::clone(&self.slow_ops),
            loop_stats,
            draining,
            inflight,
            drain_deadline,
            wakers,
        })
    }
}

/// A running server; shuts down when dropped.
pub struct ChirpServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
    kernel: SharedKernel,
    conns: ConnRegistry,
    audit: Arc<AuditRing>,
    metrics: Arc<IdentityMetrics>,
    slow_ops: Arc<SlowOpLog>,
    loop_stats: Arc<idbox_obs::LoopStats>,
    draining: Arc<AtomicBool>,
    inflight: Arc<AtomicU64>,
    drain_deadline: Duration,
    wakers: Vec<WorkerHandle>,
}

impl ChirpServerHandle {
    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's kernel.
    pub fn kernel(&self) -> &SharedKernel {
        &self.kernel
    }

    /// The server-wide policy-decision audit ring.
    pub fn audit_ring(&self) -> &Arc<AuditRing> {
        &self.audit
    }

    /// The server-wide per-identity metrics registry.
    pub fn metrics(&self) -> &Arc<IdentityMetrics> {
        &self.metrics
    }

    /// The server-wide slow-operation span ring.
    pub fn slow_ops(&self) -> &Arc<SlowOpLog> {
        &self.slow_ops
    }

    /// Per-worker event-loop health counters.
    pub fn loop_stats(&self) -> &Arc<idbox_obs::LoopStats> {
        &self.loop_stats
    }

    /// Number of connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.conns.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// RPCs currently in dispatch, server-wide.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Put the server into drain mode without shutting it down: every
    /// subsequent request on every session is shed with `error EAGAIN`
    /// while in-flight RPCs run to completion.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Relaxed);
    }

    /// Leave drain mode: requests are served normally again. Pairs with
    /// [`ChirpServerHandle::begin_drain`] for maintenance windows that
    /// end without a shutdown.
    pub fn end_drain(&self) {
        self.draining.store(false, Ordering::Relaxed);
    }

    /// Graceful shutdown: enter drain mode, stop accepting, let
    /// in-flight RPCs finish (bounded by the configured
    /// `drain_deadline`), then signal every lingering connection —
    /// their sockets are shut down, so blocked reads return immediately
    /// and the session threads exit instead of waiting for their peers
    /// to hang up.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.join.is_none() {
            return; // already shut down (explicit shutdown, then drop)
        }
        // Drain first: sessions shed new work while in-flight RPCs run
        // to completion (or the deadline passes — a stuck guest program
        // must not be able to hang the embedding process).
        self.draining.store(true, Ordering::Relaxed);
        self.stop.store(true, Ordering::Relaxed);
        // Kick every worker out of `poll` so they observe the stop flag
        // promptly (workers are detached; only the accept thread joins).
        for w in &self.wakers {
            w.notify();
        }
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
        let deadline = std::time::Instant::now() + self.drain_deadline;
        let mut clean = true;
        while self.inflight.load(Ordering::Relaxed) > 0 {
            if std::time::Instant::now() >= deadline {
                clean = false;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // The drain outcome lands in the same audit ring as every other
        // policy decision: Allow when all in-flight work finished, Deny
        // + EBUSY when the deadline force-closed stragglers.
        if clean {
            self.audit
                .record_named("server", "drain", None, Verdict::Allow, None, None);
        } else {
            self.audit.record_named(
                "server",
                "drain",
                None,
                Verdict::Deny,
                Some(Errno::EBUSY),
                None,
            );
        }
        let registry = std::mem::take(
            &mut *self.conns.lock().unwrap_or_else(|e| e.into_inner()),
        );
        for stream in registry.values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        // The shutdown sockets report readable in the workers' poll
        // sets; one more wake covers workers sleeping on an empty set.
        for w in &self.wakers {
            w.notify();
        }
    }
}

impl Drop for ChirpServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Server-wide observability state a session can reach from `dispatch`:
/// the shared kernel (latency histograms live inside it), the admin
/// list, and the audit ring.
pub(crate) struct SessionCtl {
    pub(crate) kernel: SharedKernel,
    pub(crate) admins: Arc<Vec<String>>,
    pub(crate) audit: Arc<AuditRing>,
    pub(crate) metrics: Arc<IdentityMetrics>,
    pub(crate) slow_ops: Arc<SlowOpLog>,
    pub(crate) loop_stats: Arc<idbox_obs::LoopStats>,
    /// Set when the server is draining: every request is shed so
    /// in-flight work can finish and sessions wind down.
    pub(crate) draining: Arc<AtomicBool>,
    /// Server-wide count of RPCs currently in dispatch, shared with the
    /// handle (shutdown polls it) and checked against `busy_watermark`.
    pub(crate) inflight: Arc<AtomicU64>,
    pub(crate) busy_watermark: Option<usize>,
    pub(crate) max_inflight_per_identity: Option<usize>,
    /// When set, `get`/`pread` use the copying read path instead of
    /// streamed extents (the data-plane ablation switch).
    pub(crate) copy_data_plane: bool,
}

impl SessionCtl {
    /// `Ok` when `principal` may call the observability RPCs.
    fn require_admin(&self, principal: &idbox_types::Principal) -> SysResult<()> {
        let who = principal.to_string();
        if self.admins.iter().any(|a| a == &who) {
            Ok(())
        } else {
            Err(Errno::EACCES)
        }
    }
}

/// Per-session observability state threaded into `dispatch`: the cell
/// holding the current request's trace id and the identity string spans
/// are labeled with.
pub(crate) struct SessionObs {
    pub(crate) trace: Arc<TraceCell>,
    pub(crate) identity: String,
}

/// Decrements an identity's active-session gauge when the session ends,
/// on every exit path.
pub(crate) struct SessionGauge(pub(crate) Arc<IdentityCounters>);

impl Drop for SessionGauge {
    fn drop(&mut self) {
        self.0.session_ended();
    }
}

/// Marks one RPC in dispatch, in both the server-wide counter (the
/// load-shedding watermark and the drain poll read it) and the
/// identity's gauge. Dropped on every exit path, so a panicking dispatch
/// cannot leak an in-flight slot and wedge shutdown.
pub(crate) struct InflightGuard {
    global: Arc<AtomicU64>,
    counters: Arc<IdentityCounters>,
}

impl InflightGuard {
    pub(crate) fn new(global: &Arc<AtomicU64>, counters: &Arc<IdentityCounters>) -> Self {
        global.fetch_add(1, Ordering::Relaxed);
        counters.rpc_started();
        InflightGuard {
            global: Arc::clone(global),
            counters: Arc::clone(counters),
        }
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        let _ = self
            .global
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
        self.counters.rpc_finished();
    }
}

/// Payload length announced by a request line, for the verbs that carry
/// a payload after it: `Ok(None)` for payload-less verbs, `Ok(Some(n))`
/// for a valid announce, and the errno to answer with for a malformed
/// or oversized one (which the framer answers *without* waiting for any
/// payload bytes — no announce can make the server reserve more than
/// [`codec::PAYLOAD_MAX`]).
pub(crate) fn announced_payload(words: &[String]) -> Result<Option<u64>, Errno> {
    let (idx, oversize) = match words[0].as_str() {
        "pwrite" => (3, Errno::EPROTO),
        // `put` historically refuses an oversized announce with EINVAL;
        // the others surface the payload reader's EPROTO.
        "put" => (2, Errno::EINVAL),
        "setacl" => (2, Errno::EPROTO),
        "batch" => (1, Errno::EPROTO),
        _ => return Ok(None),
    };
    let len: u64 = words
        .get(idx)
        .and_then(|w| w.parse().ok())
        .ok_or(Errno::EPROTO)?;
    if len > codec::PAYLOAD_MAX {
        return Err(oversize);
    }
    Ok(Some(len))
}

/// Offer one timed phase of the current request to the slow-op ring
/// (which applies its threshold).
pub(crate) fn record_span(
    ctl: &SessionCtl,
    obs: &SessionObs,
    phase: Phase,
    name: &str,
    dur: Duration,
) {
    let dur_ns = dur.as_nanos().min(u128::from(u64::MAX)) as u64;
    let trace = obs.trace.get();
    if trace.is_some() {
        let plane = match phase {
            Phase::Rpc => "rpc",
            Phase::Policy => "policy",
            Phase::Dispatch => "dispatch",
            Phase::Exec => "exec",
        };
        idbox_obs::flight::record_span(
            plane,
            name,
            trace,
            now_unix_ns().saturating_sub(dur_ns),
            dur_ns,
        );
    }
    ctl.slow_ops.record(Span {
        trace,
        phase,
        name: name.to_string(),
        identity: obs.identity.clone(),
        start_ns: now_unix_ns().saturating_sub(dur_ns),
        dur_ns,
    });
}

pub(crate) enum Reply {
    Line(String),
    Payload(String, Vec<u8>),
    /// Head line plus extents borrowed from the Vfs via `Arc` — the
    /// zero-copy reply path. The event loop queues the extents as
    /// scatter-gather segments and streams them with vectored writes;
    /// the file bytes are never copied into a connection buffer.
    Stream(String, ExtentList),
}

fn parse_num<T: std::str::FromStr>(w: Option<&String>) -> SysResult<T> {
    w.and_then(|s| s.parse().ok()).ok_or(Errno::EPROTO)
}

/// Time a data-plane read (the Vfs extent fetch) and record it on the
/// flight recorder's `data` plane, joined to the request's trace id.
/// The matching `stream` span closes in the event loop when the reply's
/// last byte is flushed.
fn data_read_span<T>(obs: &SessionObs, f: impl FnOnce() -> SysResult<T>) -> SysResult<T> {
    let t0 = std::time::Instant::now();
    let result = f();
    if let Some(trace) = obs.trace.get() {
        let dur_ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        idbox_obs::flight::record_span(
            "data",
            "read",
            Some(trace),
            now_unix_ns().saturating_sub(dur_ns),
            dur_ns,
        );
    }
    result
}

/// Dispatch one framed request. `payload` is the request's announced
/// payload, already sliced off the wire by the framer (empty for
/// payload-less verbs), so dispatch never touches the socket. It is
/// passed as an owned buffer so verbs that keep the bytes (`setacl`)
/// can take them without another copy; the framer recycles whatever is
/// left behind.
pub(crate) fn dispatch(
    words: &[String],
    payload: &mut Vec<u8>,
    ctx: &mut GuestCtx<'_>,
    principal: &idbox_types::Principal,
    programs: &BTreeMap<String, GuestFn>,
    ctl: &SessionCtl,
    obs: &SessionObs,
) -> SysResult<Reply> {
    let cmd = words[0].as_str();
    let arg = |i: usize| -> SysResult<&String> { words.get(i).ok_or(Errno::EPROTO) };
    match cmd {
        "whoami" => Ok(Reply::Line(format!(
            "ok {}",
            codec::encode_word(&principal.to_string())
        ))),
        "stat" => {
            let st = ctx.stat(&export_path(arg(1)?))?;
            let ws = abi::encode_stat(&st);
            let mut line = "ok".to_string();
            for w in ws {
                line.push(' ');
                line.push_str(&w.to_string());
            }
            Ok(Reply::Line(line))
        }
        "open" => {
            let flags = OpenFlags::from_bits(parse_num(words.get(2))?);
            let mode: u16 = parse_num(words.get(3))?;
            let fd = ctx.open(&export_path(arg(1)?), flags, mode)?;
            Ok(Reply::Line(ok_num(fd)))
        }
        "close" => {
            ctx.close(parse_num(words.get(1))?)?;
            Ok(Reply::Line("ok".to_string()))
        }
        "pread" => {
            let fd: i64 = parse_num(words.get(1))?;
            let len: usize = parse_num(words.get(2))?;
            let off: u64 = parse_num(words.get(3))?;
            if len as u64 > codec::PAYLOAD_MAX {
                return Err(Errno::EINVAL);
            }
            if ctl.copy_data_plane {
                let mut buf = vec![0u8; len];
                let n = ctx.pread(fd, &mut buf, off)?;
                buf.truncate(n);
                return Ok(Reply::Payload(ok_num(n as i64), buf));
            }
            let extents = data_read_span(obs, || ctx.pread_extents(fd, len, off))?;
            Ok(Reply::Stream(ok_num(extents.total as i64), extents))
        }
        "pwrite" => {
            let fd: i64 = parse_num(words.get(1))?;
            let off: u64 = parse_num(words.get(2))?;
            let n = ctx.pwrite(fd, payload, off)?;
            Ok(Reply::Line(ok_num(n as i64)))
        }
        "fstat" => {
            let st = ctx.fstat(parse_num(words.get(1))?)?;
            let ws = abi::encode_stat(&st);
            let mut line = "ok".to_string();
            for w in ws {
                line.push(' ');
                line.push_str(&w.to_string());
            }
            Ok(Reply::Line(line))
        }
        "mkdir" => {
            ctx.mkdir(&export_path(arg(1)?), parse_num(words.get(2))?)?;
            Ok(Reply::Line("ok".to_string()))
        }
        "rmdir" => {
            ctx.rmdir(&export_path(arg(1)?))?;
            Ok(Reply::Line("ok".to_string()))
        }
        "unlink" => {
            ctx.unlink(&export_path(arg(1)?))?;
            Ok(Reply::Line("ok".to_string()))
        }
        "rename" => {
            ctx.rename(&export_path(arg(1)?), &export_path(arg(2)?))?;
            Ok(Reply::Line("ok".to_string()))
        }
        "truncate" => {
            ctx.truncate(&export_path(arg(1)?), parse_num(words.get(2))?)?;
            Ok(Reply::Line("ok".to_string()))
        }
        "readdir" => {
            let entries = ctx.readdir(&export_path(arg(1)?))?;
            let text = abi::encode_entries(&entries);
            Ok(Reply::Payload(
                ok_num(text.len() as i64),
                text.into_bytes(),
            ))
        }
        "getacl" => {
            let dir = export_path(arg(1)?);
            let acl_path = format!("{dir}/{}", idbox_types::ACL_FILE_NAME);
            let data = ctx.read_file(&acl_path)?;
            Ok(Reply::Payload(ok_num(data.len() as i64), data))
        }
        "setacl" => {
            let dir = export_path(arg(1)?);
            // Validate before installing: a bad ACL must not brick the
            // directory. The payload buffer is taken by value — no
            // intermediate copy on the way to the UTF-8 check.
            let text =
                String::from_utf8(std::mem::take(payload)).map_err(|_| Errno::EINVAL)?;
            Acl::parse(&text).map_err(|_| Errno::EINVAL)?;
            let acl_path = format!("{dir}/{}", idbox_types::ACL_FILE_NAME);
            ctx.write_file(&acl_path, text.as_bytes())?;
            Ok(Reply::Line("ok".to_string()))
        }
        "put" => {
            let path = export_path(arg(1)?);
            let mode: u16 = match words.get(3) {
                Some(w) => w.parse().map_err(|_| Errno::EPROTO)?,
                None => 0o644,
            };
            ctx.write_file_mode(&path, payload, mode)?;
            Ok(Reply::Line("ok".to_string()))
        }
        "get" => {
            let path = export_path(arg(1)?);
            if ctl.copy_data_plane {
                let data = ctx.read_file(&path)?;
                return Ok(Reply::Payload(ok_num(data.len() as i64), data));
            }
            let extents = data_read_span(obs, || ctx.read_file_extents(&path))?;
            Ok(Reply::Stream(ok_num(extents.total as i64), extents))
        }
        // Wire protocol v2: many small metadata ops in one frame. The
        // payload is one command line per sub-op (same word encoding as
        // top-level requests, no trailing tokens); the reply payload is
        // one reply line per sub-op, in order — `ok ...` with any bulk
        // result percent-encoded as a single word, or `error <code>`.
        // Sub-ops fail independently; the batch itself only errors on a
        // malformed envelope. One shed check and one in-flight slot
        // cover the whole frame — that is the point: cross the
        // expensive boundary once per batch, not once per call.
        "batch" => {
            let text = std::str::from_utf8(payload).map_err(|_| Errno::EINVAL)?;
            let lines: Vec<&str> = text
                .split('\n')
                .filter(|l| !l.trim().is_empty())
                .collect();
            if lines.len() > BATCH_MAX_OPS {
                return Err(Errno::EINVAL);
            }
            let mut out = String::new();
            for line in lines {
                out.push_str(&batch_sub_op(line, ctx, principal, programs, ctl, obs));
                out.push('\n');
            }
            Ok(Reply::Payload(ok_num(out.len() as i64), out.into_bytes()))
        }
        "exec" => {
            let path = export_path(arg(1)?);
            let args: Vec<String> = words[2..].to_vec();
            // The boxed child inherits the session's environment across
            // fork, so the request's trace id follows the visitor into
            // the program it runs — the third plane of the join.
            if let Some(id) = obs.trace.get() {
                ctl.kernel
                    .read()
                    .set_env(ctx.pid(), abi::TRACE_ENV, id.to_string())?;
            }
            let t0 = std::time::Instant::now();
            let result = run_exec(ctx, &path, &args, programs);
            record_span(ctl, obs, Phase::Exec, &path, t0.elapsed());
            Ok(Reply::Line(ok_num(result? as i64)))
        }
        // Observability RPCs: restricted to configured admin
        // principals; everyone else is refused before any state is
        // touched.
        "stats" => {
            ctl.require_admin(principal)?;
            let snap = ctl.kernel.read().latency().snapshot();
            let mut text = String::new();
            for (name, count, p50, p99) in snap.rows() {
                // An empty histogram has no percentiles; emit `-` rather
                // than a fake 0 ns that reads as "instant".
                let p50 = p50.map_or_else(|| "-".to_string(), |v| v.to_string());
                let p99 = p99.map_or_else(|| "-".to_string(), |v| v.to_string());
                text.push_str(&format!("{name} {count} {p50} {p99}\n"));
            }
            Ok(Reply::Payload(ok_num(text.len() as i64), text.into_bytes()))
        }
        "audit" => {
            ctl.require_admin(principal)?;
            // Optional cursor: only events with seq >= since. The reply
            // head carries the next cursor (the ring's write head) as a
            // second word, which pre-cursor clients never read.
            let since: u64 = match words.get(1) {
                Some(w) => w.parse().map_err(|_| Errno::EPROTO)?,
                None => 0,
            };
            let next = ctl.audit.total_recorded();
            let mut text = String::new();
            for e in ctl.audit.snapshot_since(since) {
                let path = match &e.path {
                    Some(p) => codec::encode_word(p),
                    None => "-".to_string(),
                };
                let errno = match e.errno {
                    Some(err) => err.code().to_string(),
                    None => "-".to_string(),
                };
                let trace = match e.trace {
                    Some(t) => t.to_string(),
                    None => "-".to_string(),
                };
                text.push_str(&format!(
                    "{} {} {} {} {} {} {}\n",
                    e.seq,
                    codec::encode_word(&e.identity),
                    e.syscall,
                    path,
                    e.verdict.as_str(),
                    errno,
                    trace
                ));
            }
            Ok(Reply::Payload(
                format!("ok {} {}", text.len(), next),
                text.into_bytes(),
            ))
        }
        "metrics" => {
            ctl.require_admin(principal)?;
            let mut text = ctl.metrics.render_prometheus();
            text.push_str(&idbox_obs::render_lock_prometheus(
                &parking_lot::lock_snapshot(),
            ));
            text.push_str(&ctl.loop_stats.render_prometheus());
            // Durable servers expose the WAL families too. The stats
            // come from the vfs layer; obs only sees a snapshot struct.
            let wal = ctl.kernel.read().vfs().wal().cloned();
            if let Some(wal) = wal {
                let s = wal.stats();
                text.push_str(&idbox_obs::render_wal_prometheus(&idbox_obs::WalCounters {
                    appends: s.appends,
                    bytes: s.append_bytes,
                    fsyncs: s.fsyncs,
                    snapshots: s.snapshots,
                    errors: s.errors,
                    log_bytes: s.log_bytes,
                    since_snapshot: s.since_snapshot,
                    replayed: s.replayed,
                    torn_tails: u64::from(s.torn_tail),
                    corrupt_frames: u64::from(s.corrupt_frame),
                }));
            }
            Ok(Reply::Payload(ok_num(text.len() as i64), text.into_bytes()))
        }
        // Force a durability snapshot now (admin-only): cuts the log at
        // a consistent point and truncates replayed history. `ENOSYS`
        // on a volatile (no-WAL) server, `EIO` when the disk fails.
        "walsnap" => {
            ctl.require_admin(principal)?;
            match ctl.kernel.read().wal_snapshot() {
                Ok(Some(watermark)) => Ok(Reply::Line(format!("ok {watermark}"))),
                Ok(None) => Err(Errno::ENOSYS),
                Err(_) => Err(Errno::EIO),
            }
        }
        // Flight-recorder dump: every buffered structured event (spans,
        // shard waits, sheds, retries) rendered as Chrome trace-viewer
        // JSON, loadable in Perfetto / chrome://tracing. An optional
        // seconds argument restricts the dump to the trailing window.
        "tracedump" => {
            ctl.require_admin(principal)?;
            let since_ns = match words.get(1) {
                Some(w) => {
                    let secs: u64 = w.parse().map_err(|_| Errno::EPROTO)?;
                    now_unix_ns().saturating_sub(secs.saturating_mul(1_000_000_000))
                }
                None => 0,
            };
            let events = idbox_obs::flight::snapshot_since(since_ns);
            let text = idbox_obs::flight::render_chrome_trace(&events);
            Ok(Reply::Payload(ok_num(text.len() as i64), text.into_bytes()))
        }
        // One-line health rollup: the numbers an operator reaches for
        // first during an incident, without scraping full Prometheus
        // text. Percentiles are `-` while the histograms are empty.
        "health" => {
            ctl.require_admin(principal)?;
            let loop_p99 = ctl
                .loop_stats
                .lag_percentile_us(99.0)
                .map_or_else(|| "-".to_string(), |v| v.to_string());
            let locks = parking_lot::lock_snapshot();
            let shard_p99 = parking_lot::lock_wait_percentile_us(&locks, 99.0)
                .map_or_else(|| "-".to_string(), |v| v.to_string());
            let mut inflight = 0u64;
            let mut shed = ctl.metrics.admission_shed();
            for (_, c) in ctl.metrics.snapshot() {
                inflight += c.inflight();
                shed += c.rpcs_shed();
            }
            Ok(Reply::Line(format!(
                "ok loop_p99_us={} shard_wait_p99_us={} inflight={} shed={} conns={} workers={} stalls={}",
                loop_p99,
                shard_p99,
                inflight,
                shed,
                ctl.loop_stats.conns_total(),
                ctl.loop_stats.workers().len(),
                ctl.loop_stats.stalls_total(),
            )))
        }
        "slowops" => {
            ctl.require_admin(principal)?;
            let mut text = String::new();
            for s in ctl.slow_ops.snapshot() {
                let trace = match s.trace {
                    Some(t) => t.to_string(),
                    None => "-".to_string(),
                };
                text.push_str(&format!(
                    "{} {} {} {} {} {}\n",
                    trace,
                    s.phase.as_str(),
                    codec::encode_word(&s.name),
                    codec::encode_word(&s.identity),
                    s.start_ns,
                    s.dur_ns
                ));
            }
            Ok(Reply::Payload(ok_num(text.len() as i64), text.into_bytes()))
        }
        _ => Err(Errno::ENOSYS),
    }
}

/// Verbs a `batch` frame may carry: the small metadata ops whose
/// round-trip tax batching exists to amortize. Payload-bearing verbs,
/// `exec`, the admin RPCs, and `batch` itself are excluded — they keep
/// their own frames.
const BATCH_VERBS: &[&str] = &[
    "whoami", "stat", "fstat", "open", "close", "readdir", "getacl", "mkdir", "rmdir", "unlink",
    "rename", "truncate",
];

/// Run one batch sub-op and render its reply line. Bulk replies
/// (readdir listings, ACL text) are percent-encoded into a single word
/// so every sub-reply stays a one-liner.
fn batch_sub_op(
    line: &str,
    ctx: &mut GuestCtx<'_>,
    principal: &idbox_types::Principal,
    programs: &BTreeMap<String, GuestFn>,
    ctl: &SessionCtl,
    obs: &SessionObs,
) -> String {
    let words = match codec::split_words(line) {
        Ok(w) if !w.is_empty() => w,
        _ => return error_line(Errno::EPROTO),
    };
    if !BATCH_VERBS.contains(&words[0].as_str()) {
        return error_line(Errno::ENOSYS);
    }
    match dispatch(&words, &mut Vec::new(), ctx, principal, programs, ctl, obs) {
        Ok(Reply::Line(l)) => l,
        Ok(Reply::Payload(_, data)) => match String::from_utf8(data) {
            Ok(text) => format!("ok {}", codec::encode_word(&text)),
            Err(_) => error_line(Errno::EIO),
        },
        // No batch verb streams today, but collapse extents the same
        // way a rendered payload collapses if one ever does.
        Ok(Reply::Stream(_, extents)) => match String::from_utf8(extents.to_vec()) {
            Ok(text) => format!("ok {}", codec::encode_word(&text)),
            Err(_) => error_line(Errno::EIO),
        },
        Err(e) => error_line(e),
    }
}

/// Reap the specific child `pid`. The kernel's `wait` returns *any*
/// zombie, so a leftover from an earlier `exec` on this connection could
/// otherwise be mistaken for the child just spawned; statuses of
/// strangers are discarded until ours arrives.
fn reap_exactly(ctx: &mut GuestCtx<'_>, pid: Pid) -> SysResult<i32> {
    loop {
        let (reaped, code) = ctx.wait()?;
        if reaped == pid {
            return Ok(code);
        }
    }
}

/// The paper's `exec` call: the staged program runs in a child process
/// of this connection's identity box, in the staged file's directory.
///
/// Supervisor-side failures inside the child (cannot enter the work
/// directory, cannot write the captured output) propagate as real
/// errnos through a side channel — the child's exit code is reserved
/// for the guest program itself.
fn run_exec(
    ctx: &mut GuestCtx<'_>,
    path: &str,
    args: &[String],
    programs: &BTreeMap<String, GuestFn>,
) -> SysResult<i32> {
    use std::cell::Cell;
    use std::rc::Rc;

    // The x (and r) rights are enforced by the box policy here.
    ctx.exec(path)?;
    let image = ctx.read_file(path)?;
    let workdir = idbox_vfs::path::split_parent(path)
        .map(|(d, _)| d.to_string())
        .ok_or(Errno::EINVAL)?;
    let fault: Rc<Cell<Option<Errno>>> = Rc::new(Cell::new(None));

    // A staged GuestScript program: the code itself travelled over the
    // wire; interpret it in a child of the box, capturing `echo` output
    // into `script.out` next to the program.
    let child = if idbox_workloads::is_script(&image) {
        let fault = Rc::clone(&fault);
        ctx.run_child(move |c| {
            if let Err(e) = c.chdir(&workdir) {
                fault.set(Some(e));
                return 0;
            }
            let result = idbox_workloads::run_script(c, &image);
            if let Err(e) = c.write_file("script.out", result.output.as_bytes()) {
                fault.set(Some(e));
                return 0;
            }
            result.code
        })?
    } else {
        // Otherwise: a registered compiled program named by the shebang.
        let text = String::from_utf8_lossy(&image);
        let first = text.lines().next().unwrap_or("");
        let prog_name = first
            .strip_prefix("#!guest ")
            .map(str::trim)
            .ok_or(Errno::ENOSYS)?;
        let prog = programs.get(prog_name).cloned().ok_or(Errno::ENOSYS)?;
        let args = args.to_vec();
        let fault = Rc::clone(&fault);
        ctx.run_child(move |c| {
            if let Err(e) = c.chdir(&workdir) {
                fault.set(Some(e));
                return 0;
            }
            prog(c, &args)
        })?
    };
    let code = reap_exactly(ctx, child)?;
    if let Some(e) = fault.take() {
        return Err(e);
    }
    Ok(code)
}
