//! Property tests for the Chirp wire codec: any string survives
//! word-encoding; any payload survives the length-prefixed framing; the
//! response grammar round-trips.

use idbox_chirp::{decode_word, encode_word};
use proptest::prelude::*;

proptest! {
    #[test]
    fn word_roundtrip_any_string(s in ".*{0,200}") {
        let enc = encode_word(&s);
        // Encoded form never contains protocol metacharacters.
        prop_assert!(!enc.contains(' '));
        prop_assert!(!enc.contains('\n'));
        prop_assert!(!enc.contains('\t'));
        prop_assert!(!enc.contains('\r'));
        prop_assert_eq!(decode_word(&enc).unwrap(), s);
    }

    #[test]
    fn word_roundtrip_pathological(s in proptest::collection::vec("[%\\s]|[a-z]", 0..64)) {
        let s: String = s.concat();
        prop_assert_eq!(decode_word(&encode_word(&s)).unwrap(), s);
    }

    #[test]
    fn decode_never_panics(s in "\\PC{0,100}") {
        // Arbitrary input: clean Ok or Err, never a panic.
        let _ = decode_word(&s);
    }

    #[test]
    fn double_encode_is_not_identity_but_still_reversible(s in "[a-z %]{1,40}") {
        let twice = encode_word(&encode_word(&s));
        let back = decode_word(&decode_word(&twice).unwrap()).unwrap();
        prop_assert_eq!(back, s);
    }
}
