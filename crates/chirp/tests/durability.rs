//! End-to-end durability: a Chirp server whose export space survives
//! restarts through the write-ahead log.
//!
//! Three successive server lifetimes share one WAL directory. The
//! first populates the namespace and tightens an ACL; the second must
//! see the data *and* keep enforcing the operator's live ACL (recovery
//! must never fail open), then cuts a snapshot over the wire; the
//! third boots from snapshot + log suffix and must see every lifetime's
//! writes. A volatile control server answers `walsnap` with `ENOSYS`.

use idbox_acl::{Acl, Rights};
use idbox_auth::{CertificateAuthority, ClientCredential, ServerVerifier};
use idbox_chirp::{ChirpClient, ChirpServer, ServerConfig};
use idbox_types::{AuthMethod, Errno};
use std::path::{Path, PathBuf};

fn gsi_setup() -> (CertificateAuthority, ServerVerifier) {
    let ca = CertificateAuthority::new("/O=UnivNowhere CA", 0xCA11AB1E);
    let mut v = ServerVerifier::new();
    v.accept = vec![AuthMethod::Globus];
    v.cas.trust(ca.clone());
    (ca, v)
}

fn creds(ca: &CertificateAuthority, cn: &str) -> Vec<ClientCredential> {
    vec![ClientCredential::Globus(
        ca.issue(format!("/O=UnivNowhere/CN={cn}")),
    )]
}

fn root_acl() -> Acl {
    let mut acl = Acl::empty();
    acl.set_reserve("globus:/O=UnivNowhere/*", Rights::LIST, Rights::RWLAX);
    acl
}

/// A durable config pointed at `dir`, syncing every op (the test kills
/// servers at arbitrary moments, so no group-commit loss window) with
/// auto-snapshots off — the test drives snapshots via the RPC.
fn durable_config(dir: &Path) -> ServerConfig {
    let (_, verifier) = gsi_setup();
    ServerConfig {
        name: "durable".to_string(),
        verifier,
        root_acl: root_acl(),
        admins: vec!["globus:/O=UnivNowhere/CN=Admin".to_string()],
        wal_dir: Some(dir.to_path_buf()),
        wal_sync_ops: Some(0),
        wal_snapshot_ops: Some(0),
        ..Default::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("idbox-chirp-dur-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn export_space_survives_restarts_and_acls_stay_closed() {
    let dir = tmpdir("e2e");
    let (ca, _) = gsi_setup();

    // ---- Lifetime 1: populate, then tighten /work's ACL. ----------
    {
        let server = ChirpServer::new(durable_config(&dir)).unwrap();
        let report = server.recovery().expect("durable server has a report");
        assert!(!report.restored, "first boot must start empty");
        let handle = server.spawn().unwrap();
        let mut fred = ChirpClient::connect(handle.addr(), &creds(&ca, "Fred")).unwrap();
        fred.mkdir("/work", 0o755).unwrap();
        fred.put("/work/data", b"survives the restart").unwrap();
        // Reserve-created ACL names Fred; add George as read-only,
        // the live ACL state recovery must reproduce exactly.
        let mut acl = fred.getacl("/work").unwrap();
        acl.set("globus:/O=UnivNowhere/CN=George", Rights::READ);
        fred.setacl("/work", &acl).unwrap();
    } // handle drops: server shuts down

    // ---- Lifetime 2: everything is back, nothing leaks. -----------
    {
        let server = ChirpServer::new(durable_config(&dir)).unwrap();
        let report = *server.recovery().unwrap();
        assert!(report.restored, "second boot must replay the log");
        assert!(report.replayed > 0, "mutations came from log records");
        assert!(!report.corrupt_frame, "clean shutdown leaves no corruption");
        let handle = server.spawn().unwrap();

        let mut fred = ChirpClient::connect(handle.addr(), &creds(&ca, "Fred")).unwrap();
        assert_eq!(fred.get("/work/data").unwrap(), b"survives the restart");

        // George holds exactly the recovered grant: read, nothing more.
        let mut george = ChirpClient::connect(handle.addr(), &creds(&ca, "George")).unwrap();
        assert_eq!(george.get("/work/data").unwrap(), b"survives the restart");
        assert_eq!(
            george.put("/work/evil", b"nope").unwrap_err(),
            Errno::EACCES,
            "recovered ACL must not fail open"
        );
        // Helen was never granted anything.
        let mut helen = ChirpClient::connect(handle.addr(), &creds(&ca, "Helen")).unwrap();
        assert_eq!(helen.get("/work/data").unwrap_err(), Errno::EACCES);

        // The WAL metrics families are on the wire for admins.
        let mut admin = ChirpClient::connect(handle.addr(), &creds(&ca, "Admin")).unwrap();
        let metrics = admin.metrics().unwrap();
        assert!(metrics.contains("idbox_wal_appends_total"));
        assert!(metrics.contains("idbox_wal_fsyncs_total"));
        assert!(!metrics.contains("idbox_wal_replayed_records_total 0\n"));
        // Snapshot over the wire: admin-gated, returns the watermark.
        assert_eq!(fred.walsnap().unwrap_err(), Errno::EACCES);
        let watermark = admin.walsnap().unwrap();
        assert!(watermark > 0, "snapshot watermark covers the replayed ops");
        let metrics = admin.metrics().unwrap();
        assert!(metrics.contains("idbox_wal_snapshots_total 1\n"));

        // Post-snapshot mutations land in the log suffix.
        fred.put("/work/later", b"after the snapshot").unwrap();
    }

    // ---- Lifetime 3: snapshot + suffix boot. ----------------------
    {
        let server = ChirpServer::new(durable_config(&dir)).unwrap();
        let report = *server.recovery().unwrap();
        assert!(report.restored);
        assert!(report.snapshot_loaded, "third boot starts from the snapshot");
        let handle = server.spawn().unwrap();
        let mut fred = ChirpClient::connect(handle.addr(), &creds(&ca, "Fred")).unwrap();
        assert_eq!(fred.get("/work/data").unwrap(), b"survives the restart");
        assert_eq!(fred.get("/work/later").unwrap(), b"after the snapshot");
        let mut helen = ChirpClient::connect(handle.addr(), &creds(&ca, "Helen")).unwrap();
        assert_eq!(helen.get("/work/data").unwrap_err(), Errno::EACCES);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn volatile_server_reports_walsnap_unsupported() {
    let (ca, verifier) = gsi_setup();
    let handle = ChirpServer::new(ServerConfig {
        name: "volatile".to_string(),
        verifier,
        root_acl: root_acl(),
        admins: vec!["globus:/O=UnivNowhere/CN=Admin".to_string()],
        ..Default::default()
    })
    .unwrap()
    .spawn()
    .unwrap();
    let mut admin = ChirpClient::connect(handle.addr(), &creds(&ca, "Admin")).unwrap();
    assert_eq!(admin.walsnap().unwrap_err(), Errno::ENOSYS);
    // No WAL: the metrics exposition carries no WAL families.
    assert!(!admin.metrics().unwrap().contains("idbox_wal_"));
}
