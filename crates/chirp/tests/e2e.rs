//! End-to-end Chirp tests over real TCP on localhost.

use idbox_acl::{Acl, Rights};
use idbox_auth::{CertificateAuthority, ClientCredential, ServerVerifier};
use idbox_chirp::{catalog, ChirpClient, ChirpDriver, ChirpServer, ServerConfig};
use idbox_interpose::{share, GuestCtx, Supervisor};
use idbox_kernel::{Kernel, OpenFlags};
use idbox_types::{AuthMethod, Errno};
use idbox_vfs::Cred;

/// A CA + verifier trusting `/O=UnivNowhere`.
fn gsi_setup() -> (CertificateAuthority, ServerVerifier) {
    let ca = CertificateAuthority::new("/O=UnivNowhere CA", 0xCA11AB1E);
    let mut v = ServerVerifier::new();
    v.accept = vec![AuthMethod::Globus, AuthMethod::Hostname];
    v.cas.trust(ca.clone());
    (ca, v)
}

fn fred_creds(ca: &CertificateAuthority) -> Vec<ClientCredential> {
    vec![ClientCredential::Globus(
        ca.issue("/O=UnivNowhere/CN=Fred"),
    )]
}

/// The paper's root ACL for Figure 3: hosts in nowhere.edu may read and
/// run what is there; UnivNowhere certificate holders may reserve fresh
/// directories with full rights.
fn figure3_root_acl() -> Acl {
    let mut acl = Acl::empty();
    acl.set(
        "hostname:*.nowhere.edu",
        Rights::READ | Rights::LIST | Rights::EXECUTE,
    );
    acl.set_reserve("globus:/O=UnivNowhere/*", Rights::LIST, Rights::RWLAX);
    acl
}

fn spawn_figure3_server() -> (idbox_chirp::ChirpServerHandle, CertificateAuthority) {
    let (ca, verifier) = gsi_setup();
    let mut server = ChirpServer::new(ServerConfig {
        name: "figure3".to_string(),
        verifier,
        root_acl: figure3_root_acl(),
        ..Default::default()
    })
    .unwrap();
    // The "sim.exe" program: reads its staged input, computes, writes
    // out.dat in its working directory.
    server.register_program("sim", |ctx, args| {
        let scale: u64 = args
            .first()
            .and_then(|a| a.parse().ok())
            .unwrap_or(10);
        let Ok(input) = ctx.read_file("input.dat") else {
            return 1;
        };
        let mut acc = 0u64;
        for (i, b) in input.iter().enumerate() {
            acc = acc.wrapping_mul(31).wrapping_add(*b as u64) ^ scale ^ i as u64;
        }
        let out = format!("simulated result: {acc:016x}\n");
        match ctx.write_file("out.dat", out.as_bytes()) {
            Ok(()) => 0,
            Err(_) => 1,
        }
    });
    (server.spawn().unwrap(), ca)
}

#[test]
fn figure3_full_workflow() {
    let (handle, ca) = spawn_figure3_server();
    let mut client = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    assert_eq!(
        client.whoami().unwrap().to_string(),
        "globus:/O=UnivNowhere/CN=Fred"
    );

    // 1. mkdir /work — allowed only through the reserve right.
    client.mkdir("/work", 0o755).unwrap();
    // The fresh ACL names Fred literally with rwlax.
    let acl = client.getacl("/work").unwrap();
    let fred = idbox_types::Identity::new("globus:/O=UnivNowhere/CN=Fred");
    assert!(acl.allows(&fred, Rights::RWLAX));
    let george = idbox_types::Identity::new("globus:/O=UnivNowhere/CN=George");
    assert_eq!(acl.rights_for(&george), Rights::NONE);

    // 2-3. cd /work; put sim.exe (and its input).
    client
        .put_mode("/work/sim.exe", b"#!guest sim\n(simulated executable image)\n", 0o755)
        .unwrap();
    client.put("/work/input.dat", b"input particles 12345").unwrap();

    // 4. exec sim.exe — runs in an identity box named by Fred's
    // credentials, on the server.
    let code = client.exec("/work/sim.exe", &["42"]).unwrap();
    assert_eq!(code, 0);

    // 5. get out.dat.
    let out = client.get("/work/out.dat").unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.starts_with("simulated result: "), "{text}");

    client.quit().unwrap();
    handle.shutdown();
}

#[test]
fn visitors_cannot_touch_without_rights() {
    let (handle, ca) = spawn_figure3_server();
    // George holds a valid UnivNowhere certificate too...
    let creds = vec![ClientCredential::Globus(
        ca.issue("/O=UnivNowhere/CN=George"),
    )];
    let mut fred = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    let mut george = ChirpClient::connect(handle.addr(), &creds).unwrap();
    fred.mkdir("/work", 0o755).unwrap();
    fred.put("/work/data", b"private").unwrap();
    // ...but Fred's reserved directory excludes him entirely.
    assert_eq!(george.get("/work/data"), Err(Errno::EACCES));
    assert_eq!(george.put("/work/evil", b"x"), Err(Errno::EACCES));
    assert_eq!(george.readdir("/work"), Err(Errno::EACCES));
    // Until Fred, holding A, extends the ACL by grid name.
    let mut acl = fred.getacl("/work").unwrap();
    acl.set(
        "globus:/O=UnivNowhere/CN=George",
        Rights::READ | Rights::LIST,
    );
    fred.setacl("/work", &acl).unwrap();
    assert_eq!(george.get("/work/data").unwrap(), b"private");
    // Read-only: still no writing.
    assert_eq!(george.put("/work/evil", b"x"), Err(Errno::EACCES));
    handle.shutdown();
}

#[test]
fn mid_session_acl_revocation_is_observed_immediately() {
    // The server caches ACL verdicts keyed by the filesystem change
    // generation. A revocation — rewriting the `.__acl`, or renaming it
    // away entirely — must be observed by an *already connected* client
    // on its very next request: a stale cached allow is a security hole.
    let (handle, ca) = spawn_figure3_server();
    let creds = vec![ClientCredential::Globus(
        ca.issue("/O=UnivNowhere/CN=George"),
    )];
    let mut fred = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    let mut george = ChirpClient::connect(handle.addr(), &creds).unwrap();
    // 0o700: once the ACL is gone the unix-as-nobody fallback must deny,
    // so the rename leg below distinguishes "revoked" from "stale allow".
    fred.mkdir("/work", 0o700).unwrap();
    fred.put("/work/data", b"private").unwrap();
    let mut shared = fred.getacl("/work").unwrap();
    shared.set(
        "globus:/O=UnivNowhere/CN=George",
        Rights::READ | Rights::LIST,
    );
    fred.setacl("/work", &shared).unwrap();

    // Warm George's verdict cache with repeated allowed reads.
    for _ in 0..5 {
        assert_eq!(george.get("/work/data").unwrap(), b"private");
    }

    // Revocation 1: setacl rewrites the `.__acl` mid-session.
    let mut fred_only = Acl::empty();
    fred_only.set("globus:/O=UnivNowhere/CN=Fred", Rights::RWLAX);
    fred.setacl("/work", &fred_only).unwrap();
    assert_eq!(george.get("/work/data"), Err(Errno::EACCES));
    assert_eq!(george.stat("/work/data").map(|_| ()), Err(Errno::EACCES));

    // Re-grant: the invalidation must not stick either.
    fred.setacl("/work", &shared).unwrap();
    assert_eq!(george.get("/work/data").unwrap(), b"private");

    // Revocation 2: rename the ACL file away (revoking without
    // unlinking). The directory falls back to unix-as-nobody, and 0o700
    // gives nobody nothing.
    fred.rename(
        &format!("/work/{}", idbox_types::ACL_FILE_NAME),
        "/work/shelved_acl",
    )
    .unwrap();
    assert_eq!(george.get("/work/data"), Err(Errno::EACCES));

    // Fred's own warm verdicts are just as dead: with the ACL shelved
    // and 0o700 unix bits, the fallback locks out even the owner — no
    // identity keeps a stale allow.
    assert_eq!(fred.get("/work/data"), Err(Errno::EACCES));
    assert_eq!(
        fred.rename(
            "/work/shelved_acl",
            &format!("/work/{}", idbox_types::ACL_FILE_NAME),
        ),
        Err(Errno::EACCES)
    );

    handle.shutdown();
}

#[test]
fn exec_requires_the_x_right() {
    let (handle, ca) = spawn_figure3_server();
    let mut fred = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    fred.mkdir("/work", 0o755).unwrap();
    fred.put_mode("/work/sim.exe", b"#!guest sim\n", 0o755).unwrap();
    fred.put("/work/input.dat", b"data").unwrap();
    // Fred drops his own x right (keeping a to be able to do so).
    let mut acl = fred.getacl("/work").unwrap();
    acl.set(
        "globus:/O=UnivNowhere/CN=Fred",
        Rights::READ | Rights::WRITE | Rights::LIST | Rights::ADMIN,
    );
    fred.setacl("/work", &acl).unwrap();
    assert_eq!(fred.exec("/work/sim.exe", &[]), Err(Errno::EACCES));
    // Restore x: execution works again.
    let mut acl = fred.getacl("/work").unwrap();
    acl.set("globus:/O=UnivNowhere/CN=Fred", Rights::FULL);
    fred.setacl("/work", &acl).unwrap();
    assert_eq!(fred.exec("/work/sim.exe", &[]).unwrap(), 0);
    handle.shutdown();
}

#[test]
fn hostname_clients_can_run_but_not_stage() {
    // The paper's ACL: nowhere.edu hosts hold rlx — they may run
    // existing programs but cannot stage in new ones.
    let (ca, mut verifier) = gsi_setup();
    verifier.peer_hostname = None; // set per-connection by host_db
    let mut config = ServerConfig {
        name: "rlx".to_string(),
        verifier,
        root_acl: {
            let mut acl = Acl::empty();
            acl.set(
                "hostname:*.nowhere.edu",
                Rights::READ | Rights::LIST | Rights::EXECUTE,
            );
            acl.set_reserve("globus:/O=UnivNowhere/*", Rights::LIST, Rights::RWLAX);
            acl
        },
        ..Default::default()
    };
    config
        .host_db
        .insert([127, 0, 0, 1].into(), "laptop.cs.nowhere.edu".to_string());
    let mut server = ChirpServer::new(config).unwrap();
    server.register_program("hello", |ctx, _| {
        ctx.write_file("/tmp/hello-ran", b"yes").map(|_| 0).unwrap_or(1)
    });
    let handle = server.spawn().unwrap();

    // Fred (globus) stages a program into his reserved directory, then
    // opens it to the world.
    let mut fred = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    fred.mkdir("/apps", 0o755).unwrap();
    fred.put_mode("/apps/hello.exe", b"#!guest hello\n", 0o755).unwrap();
    let mut acl = fred.getacl("/apps").unwrap();
    acl.set(
        "hostname:*.nowhere.edu",
        Rights::READ | Rights::LIST | Rights::EXECUTE,
    );
    fred.setacl("/apps", &acl).unwrap();

    // The hostname-authenticated visitor may list and execute...
    let host_cred = vec![ClientCredential::Hostname(
        "laptop.cs.nowhere.edu".to_string(),
    )];
    let mut host = ChirpClient::connect(handle.addr(), &host_cred).unwrap();
    assert_eq!(
        host.whoami().unwrap().to_string(),
        "hostname:laptop.cs.nowhere.edu"
    );
    assert!(host.readdir("/apps").is_ok());
    assert_eq!(host.exec("/apps/hello.exe", &[]).unwrap(), 0);
    // ...but cannot stage in programs anywhere.
    assert_eq!(host.put("/apps/own.exe", b"#!guest hello\n"), Err(Errno::EACCES));
    assert_eq!(host.mkdir("/host-dir", 0o755), Err(Errno::EACCES));
    handle.shutdown();
}

#[test]
fn untrusted_ca_is_refused_at_connect() {
    let (handle, _ca) = spawn_figure3_server();
    let rogue = CertificateAuthority::new("/O=Rogue CA", 0xBAD);
    let creds = vec![ClientCredential::Globus(
        rogue.issue("/O=UnivNowhere/CN=Fred"),
    )];
    assert_eq!(
        ChirpClient::connect(handle.addr(), &creds).unwrap_err(),
        Errno::EACCES
    );
    handle.shutdown();
}

#[test]
fn fd_based_io_and_stat_over_the_wire() {
    let (handle, ca) = spawn_figure3_server();
    let mut client = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    client.mkdir("/work", 0o755).unwrap();
    let fd = client
        .open("/work/notes", OpenFlags::wronly_create_trunc(), 0o644)
        .unwrap();
    assert_eq!(client.pwrite(fd, b"hello chirp", 0).unwrap(), 11);
    client.close(fd).unwrap();
    let st = client.stat("/work/notes").unwrap();
    assert_eq!(st.size, 11);
    let fd = client.open("/work/notes", OpenFlags::rdonly(), 0).unwrap();
    assert_eq!(client.pread(fd, 5, 6).unwrap(), b"chirp");
    let fst = client.fstat(fd).unwrap();
    assert_eq!(fst.size, 11);
    client.close(fd).unwrap();
    // rename + unlink + rmdir round out the namespace ops.
    client.rename("/work/notes", "/work/notes2").unwrap();
    assert_eq!(client.stat("/work/notes"), Err(Errno::ENOENT));
    client.unlink("/work/notes2").unwrap();
    client.unlink("/work/sim.exe").ok();
    handle.shutdown();
}

#[test]
fn chirp_driver_mounts_into_guest_namespace() {
    let (handle, ca) = spawn_figure3_server();
    // Prepare remote state as Fred.
    let mut c = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    c.mkdir("/work", 0o755).unwrap();
    c.put("/work/remote.txt", b"over the wire").unwrap();

    // A *local* kernel mounts the server under /chirp/srv; the guest
    // carries Fred's identity, which the driver presents remotely.
    let client2 = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    let kernel = share(Kernel::new());
    let pid = {
        let mut k = kernel.lock();
        k.mount("/chirp/srv", Box::new(ChirpDriver::new(client2)));
        let pid = k.spawn(Cred::new(1000, 1000), "/tmp", "guest").unwrap();
        k.set_identity(pid, idbox_types::Identity::new("globus:/O=UnivNowhere/CN=Fred"))
            .unwrap();
        pid
    };
    let mut sup = Supervisor::direct(kernel);
    let mut ctx = GuestCtx::new(&mut sup, pid);
    // Remote files appear as ordinary paths.
    assert_eq!(
        ctx.read_file("/chirp/srv/work/remote.txt").unwrap(),
        b"over the wire"
    );
    ctx.write_file("/chirp/srv/work/pushed.txt", b"from guest").unwrap();
    let st = ctx.stat("/chirp/srv/work/pushed.txt").unwrap();
    assert_eq!(st.size, 10);
    let names: Vec<String> = ctx
        .readdir("/chirp/srv/work")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert!(names.contains(&"remote.txt".to_string()));
    assert!(names.contains(&"pushed.txt".to_string()));
    handle.shutdown();
}

#[test]
fn catalog_discovery_roundtrip() {
    let cat = catalog::Catalog::spawn().unwrap();
    let (handle, ca) = spawn_figure3_server();
    catalog::register(cat.addr(), &handle.addr().to_string(), "figure3").unwrap();
    let servers = catalog::list(cat.addr()).unwrap();
    assert_eq!(servers.len(), 1);
    // A client discovers the server through the catalog and uses it.
    let addr: std::net::SocketAddr = servers[0].addr.parse().unwrap();
    let mut client = ChirpClient::connect(addr, &fred_creds(&ca)).unwrap();
    assert!(client.whoami().is_ok());
    handle.shutdown();
}

#[test]
fn concurrent_clients_share_one_server() {
    let (handle, ca) = spawn_figure3_server();
    let mut threads = Vec::new();
    for i in 0..4 {
        let addr = handle.addr();
        let cert = ca.issue(format!("/O=UnivNowhere/CN=User{i}"));
        threads.push(std::thread::spawn(move || {
            let creds = vec![ClientCredential::Globus(cert)];
            let mut c = ChirpClient::connect(addr, &creds).unwrap();
            let dir = format!("/u{i}");
            c.mkdir(&dir, 0o755).unwrap();
            for j in 0..5 {
                c.put(&format!("{dir}/f{j}"), format!("{i}-{j}").as_bytes())
                    .unwrap();
            }
            for j in 0..5 {
                let data = c.get(&format!("{dir}/f{j}")).unwrap();
                assert_eq!(data, format!("{i}-{j}").as_bytes());
            }
            // Everyone's namespace is private.
            let other = format!("/u{}/f0", (i + 1) % 4);
            let r = c.get(&other);
            assert!(
                r == Err(Errno::EACCES) || r == Err(Errno::ENOENT),
                "{r:?}"
            );
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    handle.shutdown();
}

#[test]
fn guestscript_programs_run_over_the_wire() {
    let (handle, ca) = spawn_figure3_server();
    let mut fred = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    fred.mkdir("/work", 0o755).unwrap();
    // The program *is* the staged content: no registration needed.
    let script = b"#!guestscript\n\
                   read input.dat\n\
                   checksum\n\
                   stat input.dat\n\
                   write out.dat bytes=$SIZE digest=$SUM\n\
                   echo analysis complete\n\
                   exit 0\n";
    fred.put_mode("/work/analyze.x", script, 0o755).unwrap();
    fred.put("/work/input.dat", b"sequence data").unwrap();
    assert_eq!(fred.exec("/work/analyze.x", &[]).unwrap(), 0);
    let out = String::from_utf8(fred.get("/work/out.dat").unwrap()).unwrap();
    assert!(out.starts_with("bytes=13 digest="), "{out}");
    let echoed = String::from_utf8(fred.get("/work/script.out").unwrap()).unwrap();
    assert_eq!(echoed, "analysis complete\n");
    handle.shutdown();
}

#[test]
fn guestscript_is_contained_by_the_box() {
    let (handle, ca) = spawn_figure3_server();
    let mut fred = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    fred.mkdir("/work", 0o755).unwrap();
    // A hostile script: tries to escape the export space and read the
    // server's own files. The box must contain it, and the failure must
    // be a clean nonzero exit with a recorded error.
    let script = b"#!guestscript\n\
                   read /etc/shadow\n\
                   echo never reached\n";
    fred.put_mode("/work/evil.x", script, 0o755).unwrap();
    let code = fred.exec("/work/evil.x", &[]).unwrap();
    assert_eq!(code, 1);
    let log = String::from_utf8(fred.get("/work/script.out").unwrap()).unwrap();
    assert!(log.contains("script error"), "{log}");
    assert!(!log.contains("never reached"));
    handle.shutdown();
}

#[test]
fn server_heartbeats_to_catalog() {
    let cat = catalog::Catalog::spawn().unwrap();
    let (ca, verifier) = gsi_setup();
    let server = ChirpServer::new(ServerConfig {
        name: "heartbeater".to_string(),
        verifier,
        root_acl: figure3_root_acl(),
        catalog: Some(cat.addr()),
        heartbeat: std::time::Duration::from_millis(50),
        ..Default::default()
    })
    .unwrap();
    let handle = server.spawn().unwrap();
    // Wait for at least two heartbeats: the seq must advance.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let mut first_seq = None;
    let advanced = loop {
        if std::time::Instant::now() > deadline {
            break false;
        }
        let servers = catalog::list(cat.addr()).unwrap();
        if let Some(info) = servers.iter().find(|s| s.name == "heartbeater") {
            match first_seq {
                None => first_seq = Some(info.seq),
                Some(s0) if info.seq > s0 => break true,
                Some(_) => {}
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    assert!(advanced, "heartbeat never re-registered");
    // The advertised address really serves.
    let servers = catalog::list(cat.addr()).unwrap();
    let info = servers.iter().find(|s| s.name == "heartbeater").unwrap();
    let addr: std::net::SocketAddr = info.addr.parse().unwrap();
    let mut c = ChirpClient::connect(addr, &fred_creds(&ca)).unwrap();
    assert!(c.whoami().is_ok());
    handle.shutdown();
}

#[test]
fn reserved_directory_cleanup_over_the_wire() {
    // A visitor who created /work through the reserve right can dissolve
    // it again once it is empty — the ACL file itself does not count as
    // content.
    let (handle, ca) = spawn_figure3_server();
    let mut fred = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    fred.mkdir("/work", 0o755).unwrap();
    fred.put("/work/tmp.dat", b"x").unwrap();
    // Not empty yet.
    assert_eq!(fred.rmdir("/work"), Err(Errno::ENOTEMPTY));
    fred.unlink("/work/tmp.dat").unwrap();
    fred.rmdir("/work").unwrap();
    assert_eq!(fred.stat("/work"), Err(Errno::ENOENT));
    // And the namespace is reusable.
    fred.mkdir("/work", 0o755).unwrap();
    handle.shutdown();
}

/// A client streaming an endless newline-less "command" is cut off by
/// the bounded line reader instead of growing a buffer without limit —
/// and the server keeps serving everyone else afterwards.
#[test]
fn oversized_line_client_is_disconnected() {
    use std::io::Write;
    let (handle, ca) = spawn_figure3_server();
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    raw.set_write_timeout(Some(std::time::Duration::from_secs(2)))
        .unwrap();
    // Pump far more than LINE_MAX without ever sending '\n'. The server
    // must close the connection once its bound trips; our writes then
    // fail as soon as the socket buffers drain into a dead peer.
    let chunk = vec![b'a'; 64 * 1024];
    let mut sent = 0usize;
    let cut_off = loop {
        match raw.write_all(&chunk) {
            Ok(()) => {
                sent += chunk.len();
                // 64 MiB without a rejection would mean the server is
                // swallowing the stream.
                if sent > 64 << 20 {
                    break false;
                }
            }
            Err(_) => break true,
        }
    };
    assert!(cut_off, "server accepted {sent} newline-less bytes");
    drop(raw);
    // Liveness: the server still serves a well-behaved client.
    let mut c = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    assert!(c.whoami().is_ok());
    // And the rejecting session really went away.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while handle.active_connections() > 1 {
        assert!(std::time::Instant::now() < deadline, "rogue session lingers");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    handle.shutdown();
}

/// With `io_timeout` set, a connection that goes silent is disconnected
/// and drains out of the server's registry.
#[test]
fn idle_connection_times_out() {
    let (ca, verifier) = gsi_setup();
    let server = ChirpServer::new(ServerConfig {
        name: "impatient".to_string(),
        verifier,
        root_acl: figure3_root_acl(),
        io_timeout: Some(std::time::Duration::from_millis(150)),
        ..Default::default()
    })
    .unwrap();
    let handle = server.spawn().unwrap();
    let mut c = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    assert!(c.whoami().is_ok());
    // Go idle past the timeout: the server hangs up on us.
    std::thread::sleep(std::time::Duration::from_millis(600));
    assert!(c.whoami().is_err(), "idle connection was not dropped");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while handle.active_connections() > 0 {
        assert!(std::time::Instant::now() < deadline, "session never drained");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    handle.shutdown();
}

/// Clients over `max_connections` are refused with an `error` line
/// up front; a slot freed by a departing client is reusable.
#[test]
fn connection_cap_refuses_excess_clients() {
    let (ca, verifier) = gsi_setup();
    let server = ChirpServer::new(ServerConfig {
        name: "tiny".to_string(),
        verifier,
        root_acl: figure3_root_acl(),
        max_connections: 1,
        ..Default::default()
    })
    .unwrap();
    let handle = server.spawn().unwrap();
    let mut first = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    assert!(first.whoami().is_ok());
    // The second client is turned away before authentication.
    assert!(
        ChirpClient::connect(handle.addr(), &fred_creds(&ca)).is_err(),
        "cap of 1 admitted a second client"
    );
    // Departure frees the slot.
    first.quit().unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while handle.active_connections() > 0 {
        assert!(std::time::Instant::now() < deadline, "slot never freed");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let mut next = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    assert!(next.whoami().is_ok());
    handle.shutdown();
}

/// `shutdown()` must not wait forever on sessions whose clients never
/// hang up: it signals them and returns.
#[test]
fn shutdown_signals_lingering_connections() {
    let (handle, ca) = spawn_figure3_server();
    let mut c = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    assert!(c.whoami().is_ok());
    // Client stays connected and idle — shutdown still completes (the
    // test would hang here otherwise) because the server shuts the
    // socket down under the lingering session.
    handle.shutdown();
    assert!(c.whoami().is_err(), "connection survived server shutdown");
}

/// A server whose config names an admin principal, for the
/// observability RPC tests.
fn spawn_observable_server() -> (idbox_chirp::ChirpServerHandle, CertificateAuthority) {
    let (ca, verifier) = gsi_setup();
    let server = ChirpServer::new(ServerConfig {
        name: "observable".to_string(),
        verifier,
        root_acl: figure3_root_acl(),
        admins: vec!["globus:/O=UnivNowhere/CN=Admin".to_string()],
        ..Default::default()
    })
    .unwrap();
    (server.spawn().unwrap(), ca)
}

/// The tentpole acceptance scenario: after real traffic, an admin can
/// pull non-zero latency histograms over the wire, and a scripted
/// denied access shows up in the audit ring with the denied identity
/// and errno.
#[test]
fn stats_and_audit_rpcs_expose_latency_and_denials() {
    let (handle, ca) = spawn_observable_server();

    // Fred generates allowed traffic.
    let mut fred = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    fred.mkdir("/work", 0o755).unwrap();
    fred.put("/work/data", b"private bytes").unwrap();
    assert_eq!(fred.get("/work/data").unwrap(), b"private bytes");

    // George is denied: his certificate gives him no rights in Fred's
    // reserved directory.
    let george_creds = vec![ClientCredential::Globus(
        ca.issue("/O=UnivNowhere/CN=George"),
    )];
    let mut george = ChirpClient::connect(handle.addr(), &george_creds).unwrap();
    assert_eq!(george.get("/work/data"), Err(Errno::EACCES));

    // The admin reads both snapshots over the wire.
    let admin_creds = vec![ClientCredential::Globus(
        ca.issue("/O=UnivNowhere/CN=Admin"),
    )];
    let mut admin = ChirpClient::connect(handle.addr(), &admin_creds).unwrap();

    let stats = admin.stats().unwrap();
    assert!(!stats.is_empty(), "no latency rows after real traffic");
    let total: u64 = stats.iter().map(|r| r.count).sum();
    assert!(total > 0);
    for row in &stats {
        assert!(row.count > 0, "zero-count row {row:?} should be omitted");
        let (p50, p99) = (row.p50_ns.unwrap(), row.p99_ns.unwrap());
        assert!(p50 > 0, "histogram bucket ceilings start at 1ns");
        assert!(p50 <= p99, "p50 > p99 in {row:?}");
    }
    // The traffic above certainly opened files.
    assert!(stats.iter().any(|r| r.name == "open"), "{stats:?}");

    let audit = admin.audit().unwrap();
    let deny = audit
        .iter()
        .find(|e| e.verdict == "deny" && e.identity == "globus:/O=UnivNowhere/CN=George")
        .unwrap_or_else(|| panic!("George's denial not in audit: {audit:?}"));
    assert_eq!(deny.errno, Some(Errno::EACCES));
    assert!(
        deny.path.as_deref().unwrap_or("").contains("/work/data"),
        "denied path missing: {deny:?}"
    );
    // Fred's allowed operations are audited too, and sequence numbers
    // are strictly increasing.
    assert!(audit
        .iter()
        .any(|e| e.verdict == "allow" && e.identity == "globus:/O=UnivNowhere/CN=Fred"));
    // Fred's mkdir in the reserved export root is the amplification case.
    assert!(audit
        .iter()
        .any(|e| e.verdict == "reserve-amplified" && e.syscall == "mkdir"));
    assert!(audit.windows(2).all(|w| w[0].seq < w[1].seq));

    handle.shutdown();
}

/// Non-admin principals get `EACCES` from both observability RPCs —
/// even ones that can otherwise use the server.
#[test]
fn stats_and_audit_require_admin() {
    let (handle, ca) = spawn_observable_server();
    let mut fred = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    assert!(fred.whoami().is_ok());
    assert_eq!(fred.stats().unwrap_err(), Errno::EACCES);
    assert_eq!(fred.audit().unwrap_err(), Errno::EACCES);
    // The session is still healthy afterwards.
    assert!(fred.whoami().is_ok());
    handle.shutdown();

    // On a default-config server, *nobody* is an admin.
    let (handle, ca) = spawn_figure3_server();
    let mut fred = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    assert_eq!(fred.stats().unwrap_err(), Errno::EACCES);
    handle.shutdown();
}

/// A server wired for the tracing acceptance scenario: an admin
/// principal, a zero slow-op threshold (every span is kept), and a
/// guest program that reports the trace id it finds in its box
/// environment.
fn spawn_traced_server() -> (idbox_chirp::ChirpServerHandle, CertificateAuthority) {
    let (ca, verifier) = gsi_setup();
    let mut server = ChirpServer::new(ServerConfig {
        name: "traced".to_string(),
        verifier,
        root_acl: figure3_root_acl(),
        admins: vec!["globus:/O=UnivNowhere/CN=Admin".to_string()],
        slow_op_threshold: std::time::Duration::ZERO,
        ..Default::default()
    })
    .unwrap();
    server.register_program("trace-probe", |ctx, _| {
        match ctx.getenv(idbox_interpose::abi::TRACE_ENV) {
            Ok(v) => ctx.write_file("trace.out", v.as_bytes()).map(|_| 0).unwrap_or(1),
            Err(_) => 2,
        }
    });
    (server.spawn().unwrap(), ca)
}

/// The value of the first sample line starting with `head`, if any.
fn prometheus_sample(text: &str, head: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.starts_with(head))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
}

/// Minimal structural validation of Prometheus text exposition: every
/// sample is `name{labels} value` with a numeric value, and every
/// sample's family has a preceding `# TYPE` header.
fn assert_prometheus_shape(text: &str) {
    let mut families = std::collections::HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            families.insert(rest.split(' ').next().unwrap().to_string());
        } else if !line.starts_with('#') && !line.is_empty() {
            let (head, value) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("sample without value: {line:?}"));
            assert!(value.parse::<f64>().is_ok(), "bad value: {line:?}");
            let name = head.split('{').next().unwrap();
            // Histogram samples carry the conventional suffixes under
            // the base family's single TYPE header.
            let base = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|s| name.strip_suffix(s))
                .filter(|b| families.contains(*b));
            assert!(
                families.contains(name) || base.is_some(),
                "sample {name} without TYPE header"
            );
        }
    }
}

/// The tentpole acceptance scenario: one client request's trace id is
/// visible (1) in the audit ring rows its policy rulings produced,
/// (2) in the environment of the boxed child the `exec` RPC spawned,
/// and (3) in the slow-op spans the request left behind — and the
/// `metrics` RPC renders valid Prometheus text whose per-identity
/// counters match the workload that just ran.
#[test]
fn one_trace_id_joins_rpc_audit_and_exec() {
    let (handle, ca) = spawn_traced_server();

    // Fred's workload: reserve a directory, stage the probe, run it.
    let mut fred = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    fred.mkdir("/work", 0o755).unwrap();
    fred.put_mode("/work/probe.exe", b"#!guest trace-probe\n", 0o755)
        .unwrap();
    assert_eq!(fred.exec("/work/probe.exe", &[]).unwrap(), 0);
    let exec_trace = fred.last_trace().expect("client stamps every request");

    // Plane 2 first: the boxed child saw the exec request's id in its
    // environment and wrote it next to itself.
    let reported = String::from_utf8(fred.get("/work/trace.out").unwrap()).unwrap();
    assert_eq!(reported, exec_trace.to_string());

    // George's denial gives the metrics a nonzero denial counter.
    let george_creds = vec![ClientCredential::Globus(
        ca.issue("/O=UnivNowhere/CN=George"),
    )];
    let mut george = ChirpClient::connect(handle.addr(), &george_creds).unwrap();
    assert_eq!(george.get("/work/probe.exe"), Err(Errno::EACCES));

    let admin_creds = vec![ClientCredential::Globus(
        ca.issue("/O=UnivNowhere/CN=Admin"),
    )];
    let mut admin = ChirpClient::connect(handle.addr(), &admin_creds).unwrap();

    // Plane 1: the exec request's policy rulings carry its trace id —
    // including the ruling on the exec syscall itself.
    let audit = admin.audit().unwrap();
    let stamped: Vec<_> = audit
        .iter()
        .filter(|e| e.trace == Some(exec_trace))
        .collect();
    assert!(
        stamped.iter().any(|e| e.syscall == "exec"
            && e.identity == "globus:/O=UnivNowhere/CN=Fred"
            && e.verdict == "allow"),
        "exec ruling not joined to its trace: {stamped:?}"
    );
    // Other requests' rulings carry *different* ids: the join is
    // per-request, not per-session.
    assert!(audit
        .iter()
        .any(|e| e.trace.is_some() && e.trace != Some(exec_trace)));

    // Plane 3: the spans. With threshold zero, the exec request left an
    // rpc span, an exec span, and dispatch spans, all under its id.
    let spans = admin.slowops().unwrap();
    let mine: Vec<_> = spans
        .iter()
        .filter(|s| s.trace == Some(exec_trace))
        .collect();
    for phase in ["rpc", "exec", "dispatch", "policy"] {
        assert!(
            mine.iter().any(|s| s.phase == phase),
            "no {phase} span for the exec request: {mine:?}"
        );
    }
    let rpc = mine.iter().find(|s| s.phase == "rpc").unwrap();
    assert_eq!(rpc.name, "exec");
    assert_eq!(rpc.identity, "globus:/O=UnivNowhere/CN=Fred");
    // The whole-RPC span contains its exec phase.
    let exec_span = mine.iter().find(|s| s.phase == "exec").unwrap();
    assert!(rpc.dur_ns >= exec_span.dur_ns);

    // The metrics exposition is valid Prometheus and matches the
    // workload: Fred opened files, wrote bytes, and triggered the
    // reserve amplification; George was denied; all three sessions are
    // still open.
    let text = admin.metrics().unwrap();
    assert_prometheus_shape(&text);
    let fred_id = "identity=\"globus:/O=UnivNowhere/CN=Fred\"";
    let george_id = "identity=\"globus:/O=UnivNowhere/CN=George\"";
    assert!(
        prometheus_sample(&text, &format!("idbox_syscalls_total{{{fred_id},syscall=\"open\"}}"))
            .unwrap()
            >= 1.0
    );
    assert!(
        prometheus_sample(&text, &format!("idbox_bytes_written_total{{{fred_id}}}")).unwrap()
            >= b"#!guest trace-probe\n".len() as f64
    );
    assert!(
        prometheus_sample(&text, &format!("idbox_reserve_amplifications_total{{{fred_id}}}"))
            .unwrap()
            >= 1.0
    );
    assert!(
        prometheus_sample(&text, &format!("idbox_denials_total{{{george_id}}}")).unwrap() >= 1.0
    );
    assert_eq!(
        prometheus_sample(&text, &format!("idbox_active_sessions{{{fred_id}}}")),
        Some(1.0)
    );

    // Sessions drain out of the gauge when clients leave.
    fred.quit().unwrap();
    george.quit().unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let text = admin.metrics().unwrap();
        let open = prometheus_sample(&text, &format!("idbox_active_sessions{{{fred_id}}}"));
        if open == Some(0.0) {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "gauge never drained");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    handle.shutdown();
}

/// The `audit <since>` cursor pages incrementally: the returned cursor
/// resumes exactly where the previous fetch ended, and a cursor at the
/// write head returns nothing.
#[test]
fn audit_cursor_pages_incrementally() {
    let (handle, ca) = spawn_traced_server();
    let mut fred = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    fred.mkdir("/work", 0o755).unwrap();
    fred.put("/work/a", b"one").unwrap();

    let admin_creds = vec![ClientCredential::Globus(
        ca.issue("/O=UnivNowhere/CN=Admin"),
    )];
    let mut admin = ChirpClient::connect(handle.addr(), &admin_creds).unwrap();
    let (first, cursor) = admin.audit_since(0).unwrap();
    assert!(!first.is_empty());
    assert!(first.windows(2).all(|w| w[0].seq < w[1].seq));
    assert_eq!(cursor, first.last().unwrap().seq + 1, "cursor is the write head");

    // New traffic lands beyond the cursor...
    fred.put("/work/b", b"two").unwrap();
    let (tail, cursor2) = admin.audit_since(cursor).unwrap();
    assert!(!tail.is_empty());
    assert!(tail.iter().all(|e| e.seq >= cursor));
    assert!(cursor2 > cursor);
    // ...and no event is reported twice across the two pages.
    let firsts: std::collections::HashSet<u64> = first.iter().map(|e| e.seq).collect();
    assert!(tail.iter().all(|e| !firsts.contains(&e.seq)));

    // A cursor at the head is an empty (but successful) fetch. The
    // admin's own audit RPC may add rulings between the two calls, so
    // re-read the head first.
    let (_, head) = admin.audit_since(cursor2).unwrap();
    let (empty, _) = admin.audit_since(head + 1).unwrap();
    assert!(empty.is_empty(), "{empty:?}");
    handle.shutdown();
}

/// The new observability RPCs are admin-gated like `stats`/`audit`.
#[test]
fn metrics_and_slowops_require_admin() {
    let (handle, ca) = spawn_traced_server();
    let mut fred = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    assert_eq!(fred.metrics().unwrap_err(), Errno::EACCES);
    assert_eq!(fred.slowops().unwrap_err(), Errno::EACCES);
    assert_eq!(fred.audit_since(0).unwrap_err(), Errno::EACCES);
    // The session is still healthy afterwards.
    assert!(fred.whoami().is_ok());
    handle.shutdown();
}

/// A `put` whose announced length exceeds PAYLOAD_MAX is refused up
/// front — before the server allocates or reads anything — and the
/// session survives in protocol sync.
#[test]
fn oversized_put_announce_is_rejected_before_allocation() {
    use idbox_auth::AuthTransport;
    use std::io::{BufRead, Write};

    struct RawTransport {
        reader: std::io::BufReader<std::net::TcpStream>,
        writer: std::net::TcpStream,
    }
    impl AuthTransport for RawTransport {
        fn send_line(&mut self, line: &str) -> Result<(), String> {
            self.writer
                .write_all(line.as_bytes())
                .and_then(|_| self.writer.write_all(b"\n"))
                .and_then(|_| self.writer.flush())
                .map_err(|e| e.to_string())
        }
        fn recv_line(&mut self) -> Result<String, String> {
            let mut line = String::new();
            self.reader.read_line(&mut line).map_err(|e| e.to_string())?;
            Ok(line.trim_end_matches(['\r', '\n']).to_string())
        }
    }

    let (handle, ca) = spawn_figure3_server();
    let stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    let mut t = RawTransport {
        reader: std::io::BufReader::new(stream.try_clone().unwrap()),
        writer: stream,
    };
    idbox_auth::authenticate_client(&mut t, &fred_creds(&ca)).unwrap();

    // Announce a payload no honest client could send (PAYLOAD_MAX is
    // 64 MiB) and transmit no payload bytes at all. A server that
    // tried to read the payload first would block on the read timeout
    // instead of answering.
    t.send_line(&format!("put /huge {} 420", (64u64 << 20) + 1)).unwrap();
    let resp = t.recv_line().unwrap();
    assert_eq!(resp, format!("error {}", Errno::EINVAL.code()), "{resp}");

    // Protocol sync: the very next command still round-trips.
    t.send_line("whoami").unwrap();
    let resp = t.recv_line().unwrap();
    assert!(resp.starts_with("ok "), "session out of sync: {resp}");

    handle.shutdown();
}

/// Replies larger than the event loop's 1 MiB backpressure watermark
/// must be delivered completely — serially and pipelined — instead of
/// deadlocking behind the soft cap or tearing the connection down. This
/// exercises the streamed extent path end to end: the 3 MiB body
/// crosses the cap three times over, so the worker has to interleave
/// flushes with the peer draining.
#[test]
fn oversized_replies_stream_without_deadlock_or_teardown() {
    let (handle, ca) = spawn_figure3_server();
    let mut fred = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    fred.mkdir("/work", 0o755).unwrap();
    // Patterned so truncation or reordering cannot pass unnoticed.
    let big: Vec<u8> = (0..3u32 * 1024 * 1024)
        .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
        .collect();
    fred.put("/work/big.dat", &big).unwrap();

    // Serial: one oversized get on a fresh connection.
    assert_eq!(fred.get("/work/big.dat").unwrap(), big);

    // Pipelined: three oversized gets in one burst on one connection.
    // The server queues ~9 MiB of replies against a 1 MiB soft cap and
    // must stream them out in order while the client drains.
    let mut p = fred.pipeline();
    for _ in 0..3 {
        p.get("/work/big.dat");
    }
    let replies = p.run().unwrap();
    assert_eq!(replies.len(), 3);
    for r in &replies {
        assert_eq!(r.num().unwrap() as usize, big.len());
        assert_eq!(r.payload.as_deref().unwrap(), &big[..]);
    }

    // The connection survived: an ordinary RPC still round-trips.
    assert!(fred.stat("/work/big.dat").is_ok());
    handle.shutdown();
}

/// The data-plane ablation switch must preserve wire behaviour exactly:
/// with `copy_data_plane` set, the same oversized transfer flows
/// through the copying path (flat buffer materialized, then queued as
/// one owned segment).
#[test]
fn ablated_copy_path_serves_oversized_replies_identically() {
    let (ca, verifier) = gsi_setup();
    let server = ChirpServer::new(ServerConfig {
        name: "ablated".to_string(),
        verifier,
        root_acl: figure3_root_acl(),
        copy_data_plane: true,
        ..Default::default()
    })
    .unwrap();
    let handle = server.spawn().unwrap();
    let mut fred = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    fred.mkdir("/work", 0o755).unwrap();
    let big = vec![0xA7u8; 2 * 1024 * 1024];
    fred.put("/work/big.dat", &big).unwrap();
    assert_eq!(fred.get("/work/big.dat").unwrap(), big);
    handle.shutdown();
}
