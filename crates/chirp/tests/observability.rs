//! End-to-end tests for the runtime self-observation plane: the
//! flight recorder (`tracedump`), the health rollup (`health`), the
//! event-loop stall watchdog, and the lock/loop Prometheus families.
//!
//! These run against real servers over TCP on localhost. The flight
//! recorder's rings are process-global, so plane-join assertions can
//! inspect them directly with [`idbox_obs::flight::snapshot_since`]
//! while wire-level assertions go through the admin RPCs.

use idbox_acl::{Acl, Rights};
use idbox_auth::{CertificateAuthority, ClientCredential, ServerVerifier};
use idbox_chirp::{ChirpClient, ChirpServer, ServerConfig};
use idbox_kernel::OpenFlags;
use idbox_obs::flight;
use idbox_types::{AuthMethod, Errno};
use idbox_vfs::FaultHook;
use proptest::fault::FaultPlan;
use std::time::Duration;

fn gsi_setup() -> (CertificateAuthority, ServerVerifier) {
    let ca = CertificateAuthority::new("/O=UnivNowhere CA", 0xCA11AB1E);
    let mut v = ServerVerifier::new();
    v.accept = vec![AuthMethod::Globus, AuthMethod::Hostname];
    v.cas.trust(ca.clone());
    (ca, v)
}

fn creds(ca: &CertificateAuthority, cn: &str) -> Vec<ClientCredential> {
    vec![ClientCredential::Globus(
        ca.issue(format!("/O=UnivNowhere/CN={cn}")),
    )]
}

fn root_acl() -> Acl {
    let mut acl = Acl::empty();
    acl.set_reserve("globus:/O=UnivNowhere/*", Rights::LIST, Rights::RWLAX);
    acl
}

fn observed_config(name: &str) -> ServerConfig {
    let (_, verifier) = gsi_setup();
    ServerConfig {
        name: name.to_string(),
        verifier,
        root_acl: root_acl(),
        admins: vec!["globus:/O=UnivNowhere/CN=Admin".to_string()],
        ..Default::default()
    }
}

fn spawn_observed(name: &str) -> (idbox_chirp::ChirpServerHandle, CertificateAuthority) {
    let (ca, _) = gsi_setup();
    let handle = ChirpServer::new(observed_config(name)).unwrap().spawn().unwrap();
    (handle, ca)
}

/// A strict little JSON syntax checker: panics with position context on
/// the first violation. Deliberately hand-rolled — the point is that
/// the tracedump output loads in an *external* viewer, so the test must
/// not share any code with the renderer it is checking.
fn assert_valid_json(s: &str) {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }
    impl P<'_> {
        fn err(&self, what: &str) -> ! {
            let at = String::from_utf8_lossy(
                &self.b[self.i.saturating_sub(20)..(self.i + 20).min(self.b.len())],
            )
            .into_owned();
            panic!("invalid JSON at byte {}: {what} (near {at:?})", self.i);
        }
        fn ws(&mut self) {
            while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            }
        }
        fn eat(&mut self, c: u8) {
            if self.i >= self.b.len() || self.b[self.i] != c {
                self.err(&format!("expected {:?}", c as char));
            }
            self.i += 1;
        }
        fn string(&mut self) {
            self.eat(b'"');
            loop {
                match self.b.get(self.i) {
                    None => self.err("unterminated string"),
                    Some(b'"') => {
                        self.i += 1;
                        return;
                    }
                    Some(b'\\') => {
                        self.i += 1;
                        match self.b.get(self.i) {
                            Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                                self.i += 1;
                            }
                            Some(b'u') => {
                                for k in 1..=4 {
                                    if !self
                                        .b
                                        .get(self.i + k)
                                        .is_some_and(|c| c.is_ascii_hexdigit())
                                    {
                                        self.err("bad \\u escape");
                                    }
                                }
                                self.i += 5;
                            }
                            _ => self.err("bad escape"),
                        }
                    }
                    Some(&c) if c < 0x20 => self.err("raw control character in string"),
                    Some(_) => self.i += 1,
                }
            }
        }
        fn number(&mut self) {
            if self.b.get(self.i) == Some(&b'-') {
                self.i += 1;
            }
            let start = self.i;
            while self
                .b
                .get(self.i)
                .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                self.i += 1;
            }
            if self.i == start {
                self.err("expected number");
            }
        }
        fn value(&mut self) {
            self.ws();
            match self.b.get(self.i) {
                Some(b'{') => {
                    self.i += 1;
                    self.ws();
                    if self.b.get(self.i) == Some(&b'}') {
                        self.i += 1;
                        return;
                    }
                    loop {
                        self.ws();
                        self.string();
                        self.ws();
                        self.eat(b':');
                        self.value();
                        self.ws();
                        match self.b.get(self.i) {
                            Some(b',') => self.i += 1,
                            Some(b'}') => {
                                self.i += 1;
                                return;
                            }
                            _ => self.err("expected , or } in object"),
                        }
                    }
                }
                Some(b'[') => {
                    self.i += 1;
                    self.ws();
                    if self.b.get(self.i) == Some(&b']') {
                        self.i += 1;
                        return;
                    }
                    loop {
                        self.value();
                        self.ws();
                        match self.b.get(self.i) {
                            Some(b',') => self.i += 1,
                            Some(b']') => {
                                self.i += 1;
                                return;
                            }
                            _ => self.err("expected , or ] in array"),
                        }
                    }
                }
                Some(b'"') => self.string(),
                Some(b't') => {
                    if !self.b[self.i..].starts_with(b"true") {
                        self.err("bad literal");
                    }
                    self.i += 4;
                }
                Some(b'f') => {
                    if !self.b[self.i..].starts_with(b"false") {
                        self.err("bad literal");
                    }
                    self.i += 5;
                }
                Some(b'n') => {
                    if !self.b[self.i..].starts_with(b"null") {
                        self.err("bad literal");
                    }
                    self.i += 4;
                }
                Some(&c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => self.err("expected a value"),
            }
        }
    }
    let mut p = P { b: s.as_bytes(), i: 0 };
    p.value();
    p.ws();
    assert_eq!(p.i, p.b.len(), "trailing garbage after JSON document");
}

/// Tentpole acceptance, part 1: `tracedump` is admin-gated, renders
/// syntactically valid Chrome trace-viewer JSON, and honours the
/// trailing-window argument.
#[test]
fn tracedump_is_admin_gated_valid_chrome_json() {
    let (handle, ca) = spawn_observed("tracedump");
    let mut fred = ChirpClient::connect(handle.addr(), &creds(&ca, "Fred")).unwrap();
    fred.mkdir("/work", 0o755).unwrap();
    fred.put("/work/a", b"payload").unwrap();
    fred.stat("/work/a").unwrap();

    // Not an admin: refused before any ring is touched.
    assert_eq!(fred.tracedump(None).unwrap_err(), Errno::EACCES);
    assert_eq!(fred.health().unwrap_err(), Errno::EACCES);

    let mut admin = ChirpClient::connect(handle.addr(), &creds(&ca, "Admin")).unwrap();
    let dump = admin.tracedump(None).unwrap();
    assert_valid_json(&dump);
    assert!(
        dump.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
        "not a Chrome trace envelope: {}",
        &dump[..dump.len().min(60)]
    );
    assert!(dump.contains("\"ph\":\"X\""), "no complete-span events");
    // Fred's last request must be in the dump, joined by its trace id.
    let trace = fred.last_trace().unwrap();
    assert!(
        dump.contains(&trace.to_string()),
        "trace {trace} missing from dump"
    );

    // A trailing window of an hour still holds everything above; a
    // zero-second window is empty (or nearly — only events racing this
    // very call) yet still a valid document.
    let hour = admin.tracedump(Some(3600)).unwrap();
    assert_valid_json(&hour);
    assert!(hour.contains(&trace.to_string()));
    let nothing = admin.tracedump(Some(0)).unwrap();
    assert_valid_json(&nothing);

    handle.shutdown();
}

/// Tentpole acceptance, part 2: one pipelined request's trace id joins
/// the caller plane, the event-loop rpc plane, and the supervisor's
/// dispatch and policy planes in the flight recorder.
#[test]
fn pipelined_request_trace_joins_client_loop_and_policy_planes() {
    let (handle, ca) = spawn_observed("planes");
    let mut fred = ChirpClient::connect(handle.addr(), &creds(&ca, "Fred")).unwrap();
    fred.mkdir("/join", 0o755).unwrap();
    fred.put("/join/f", b"x").unwrap();

    let mut pipe = fred.pipeline();
    let idx = pipe.stat("/join/f");
    pipe.whoami();
    let replies = pipe.run().unwrap();
    let trace = replies[idx].trace;
    assert!(replies[idx].result.is_ok());

    let planes: std::collections::BTreeSet<&'static str> = flight::snapshot_since(0)
        .into_iter()
        .filter(|e| e.trace == Some(trace))
        .map(|e| e.plane)
        .collect();
    for plane in ["client", "rpc", "dispatch", "policy"] {
        assert!(
            planes.contains(plane),
            "plane {plane} missing for trace {trace}; saw {planes:?}"
        );
    }
    handle.shutdown();
}

/// The per-thread rings hold to their byte budget no matter how much
/// traffic pours through: after a 10k-RPC storm every ring is at or
/// under `IDBOX_TRACE_RING_KB` (the 256 KiB default here).
#[test]
fn flight_rings_stay_bounded_under_rpc_storm() {
    let (handle, ca) = spawn_observed("storm");
    let mut fred = ChirpClient::connect(handle.addr(), &creds(&ca, "Fred")).unwrap();
    fred.mkdir("/storm", 0o755).unwrap();
    fred.put("/storm/f", b"y").unwrap();
    for _ in 0..1000 {
        let mut pipe = fred.pipeline();
        for _ in 0..10 {
            pipe.stat("/storm/f");
        }
        pipe.run().unwrap();
    }
    let budget = flight::ring_budget_bytes();
    assert!(budget > 0, "recording must be on for this test");
    for (tid, events, bytes) in flight::ring_usage() {
        assert!(
            bytes <= budget,
            "ring tid={tid} holds {bytes} bytes ({events} events) over budget {budget}"
        );
    }
    // The storm certainly overflowed at least one server ring: 10k
    // traced requests × several events each never fit in 256 KiB.
    let total: usize = flight::ring_usage().iter().map(|(_, _, b)| b).sum();
    assert!(total > 0, "storm left no events at all");
    handle.shutdown();
}

/// The soft watchdog: a seeded slow-disk fault wedges one event-loop
/// worker past `loop_stall`; exactly one `loop-stall` audit row names
/// that worker, the other worker keeps serving throughout, and the
/// `health` rollup counts the stall.
#[test]
fn loop_stall_watchdog_flags_wedged_worker_and_others_keep_serving() {
    let (ca, verifier) = gsi_setup();
    let mut config = observed_config("watchdog");
    config.verifier = verifier;
    config.event_loops = 2;
    config.loop_stall = Some(Duration::from_millis(40));
    let handle = ChirpServer::new(config).unwrap().spawn().unwrap();

    // A slow disk, armed per operation: the hook sleeps, then asks the
    // errno stream (which stays empty here).
    let plan = FaultPlan::new(0x5EED);
    let hook_plan = plan.clone();
    handle.kernel().write().vfs_mut().set_fault_hook(Some(FaultHook::new(
        move |op, _ino| {
            if let Some(d) = hook_plan.vfs_slow(op) {
                std::thread::sleep(d);
            }
            hook_plan.vfs_fault(op)
        },
    )));

    // Connection ids are assigned round-robin to workers, so two
    // consecutive clients land on different event loops.
    let mut slow = ChirpClient::connect(handle.addr(), &creds(&ca, "Fred")).unwrap();
    let mut fast = ChirpClient::connect(handle.addr(), &creds(&ca, "Fred")).unwrap();
    slow.mkdir("/w", 0o755).unwrap();
    slow.put("/w/f", b"data").unwrap();
    let fd = slow.open("/w/f", OpenFlags::rdonly(), 0).unwrap();

    // Wedge `slow`'s worker for 150 ms — well past the 40 ms budget.
    plan.arm_vfs_slow(Duration::from_millis(150));
    let stalled = std::thread::spawn(move || {
        let t0 = std::time::Instant::now();
        slow.pread(fd, 4, 0).unwrap();
        t0.elapsed()
    });
    // Meanwhile the other worker's connection answers promptly.
    std::thread::sleep(Duration::from_millis(20));
    let t0 = std::time::Instant::now();
    fast.whoami().unwrap();
    let fast_elapsed = t0.elapsed();
    let stall_elapsed = stalled.join().unwrap();
    assert!(
        stall_elapsed >= Duration::from_millis(150),
        "pread should have been wedged, took {stall_elapsed:?}"
    );
    assert!(
        fast_elapsed < Duration::from_millis(100),
        "other worker stopped serving during the stall: {fast_elapsed:?}"
    );

    let mut admin = ChirpClient::connect(handle.addr(), &creds(&ca, "Admin")).unwrap();
    let stalls: Vec<_> = admin
        .audit()
        .unwrap()
        .into_iter()
        .filter(|e| e.syscall == "loop-stall")
        .collect();
    assert_eq!(stalls.len(), 1, "expected exactly one stall row: {stalls:?}");
    assert_eq!(stalls[0].identity, "(server)");
    assert_eq!(stalls[0].verdict, "deny");
    let detail = stalls[0].path.as_deref().unwrap_or("");
    assert!(
        detail.contains("worker=") && detail.contains("cycle_ms="),
        "stall row lacks worker/cycle detail: {detail:?}"
    );

    let health = admin.health().unwrap();
    assert_eq!(health.stalls, 1);
    assert_eq!(health.workers, 2);
    handle.shutdown();
}

/// The `health` rollup reflects the runtime it summarizes: worker
/// count, live connections, loop-lag percentiles once traffic has run,
/// and zero stalls on a healthy server.
#[test]
fn health_rolls_up_runtime_counters() {
    let (handle, ca) = spawn_observed("health");
    let mut fred = ChirpClient::connect(handle.addr(), &creds(&ca, "Fred")).unwrap();
    fred.mkdir("/h", 0o755).unwrap();
    for i in 0..50 {
        fred.put(&format!("/h/f{i}"), b"z").unwrap();
    }
    let mut admin = ChirpClient::connect(handle.addr(), &creds(&ca, "Admin")).unwrap();
    let h = admin.health().unwrap();
    assert!(h.workers >= 2, "at least two event loops: {h:?}");
    assert!(h.conns >= 2, "both clients registered: {h:?}");
    assert_eq!(h.stalls, 0);
    assert!(
        h.loop_p99_us.is_some(),
        "traffic ran, so loop lag must have samples: {h:?}"
    );
    // The health RPC itself is in-flight while being counted.
    assert!(h.inflight >= 1, "{h:?}");
    handle.shutdown();
}

/// The `metrics` RPC exposes the new shard-lock and event-loop
/// families alongside the per-identity ones, every sample well-formed
/// — including under a hostile identity whose distinguished name
/// carries quotes and backslashes that must be escaped in labels.
#[test]
fn metrics_expose_lock_and_loop_families_with_hostile_identity_escaped() {
    let (handle, ca) = spawn_observed("families");
    let mut evil = ChirpClient::connect(handle.addr(), &creds(&ca, "Ev\"il\\Lab")).unwrap();
    evil.mkdir("/evil", 0o755).unwrap();
    evil.put("/evil/f", b"mwah").unwrap();

    let mut admin = ChirpClient::connect(handle.addr(), &creds(&ca, "Admin")).unwrap();
    let text = admin.metrics().unwrap();

    for family in [
        "idbox_shard_lock_acquisitions_total",
        "idbox_shard_lock_waits_total",
        "idbox_shard_lock_wait_us_bucket",
        "idbox_loop_lag_us_bucket",
        "idbox_loop_wakeups_total",
        "idbox_loop_flushes_total",
        "idbox_loop_stalls_total",
        "idbox_loop_connections",
        "idbox_loop_outbuf_high_watermark_bytes",
    ] {
        assert!(text.contains(family), "family {family} missing");
    }
    // The vfs domain did real work above; its acquisition counter must
    // be a live sample, not just a header.
    assert!(
        text.lines()
            .any(|l| l.starts_with("idbox_shard_lock_acquisitions_total{domain=\"vfs\"")),
        "no vfs shard samples"
    );
    // The hostile DN appears exactly once per family it labels, with
    // its quote and backslash escaped.
    assert!(
        text.contains("Ev\\\"il\\\\Lab"),
        "hostile identity not escaped in exposition"
    );
    assert!(
        !text.contains("Ev\"il\\Lab\""),
        "raw unescaped identity leaked into a label"
    );

    // Structural check: every sample line is `name{{labels}} value`
    // with a numeric value and a TYPE header for its family
    // (histogram suffixes roll up to the base family).
    let mut families = std::collections::HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            families.insert(rest.split(' ').next().unwrap().to_string());
        } else if !line.starts_with('#') && !line.is_empty() {
            let (head, value) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("sample without value: {line:?}"));
            assert!(value.parse::<f64>().is_ok(), "bad value: {line:?}");
            let name = head.split('{').next().unwrap();
            let base_ok = ["_bucket", "_sum", "_count"]
                .iter()
                .filter_map(|s| name.strip_suffix(s))
                .any(|b| families.contains(b));
            assert!(
                families.contains(name) || base_ok,
                "sample {name} without TYPE header"
            );
        }
    }
    handle.shutdown();
}
