//! Wire protocol v2 tests: pipelining and batch RPCs.
//!
//! The core property: a pipelined transcript of mixed RPCs — including
//! frames shed while the server drains and seeded filesystem faults —
//! produces **byte-identical** per-request replies to the same ops run
//! serially in v1 style (no `id=` tokens, one request in flight).
//! Two identical deterministic servers are used as twins: one takes the
//! serial transcript, the other the pipelined one, and every reply head
//! and payload must match.
//!
//! Set `IDBOX_PROP_SEED` to reproduce a property-test failure exactly.

use idbox_acl::{Acl, Rights};
use idbox_auth::{
    authenticate_client, AuthTransport, CertificateAuthority, ClientCredential, ServerVerifier,
};
use idbox_chirp::{codec, BatchOp, ChirpClient, ChirpServer, ServerConfig};
use idbox_core::Verdict;
use idbox_types::{AuthMethod, Errno};
use idbox_vfs::FaultHook;
use proptest::fault::FaultPlan;
use proptest::prelude::*;
use std::io::{BufReader, Write};
use std::net::TcpStream;

fn gsi_setup() -> (CertificateAuthority, ServerVerifier) {
    let ca = CertificateAuthority::new("/O=UnivNowhere CA", 0xCA11AB1E);
    let mut v = ServerVerifier::new();
    v.accept = vec![AuthMethod::Globus, AuthMethod::Hostname];
    v.cas.trust(ca.clone());
    (ca, v)
}

fn fred_creds(ca: &CertificateAuthority) -> Vec<ClientCredential> {
    vec![ClientCredential::Globus(
        ca.issue("/O=UnivNowhere/CN=Fred"),
    )]
}

fn root_acl() -> Acl {
    let mut acl = Acl::empty();
    acl.set_reserve("globus:/O=UnivNowhere/*", Rights::LIST, Rights::RWLAX);
    acl
}

fn spawn_twin(name: &str) -> idbox_chirp::ChirpServerHandle {
    let (_, verifier) = gsi_setup();
    ChirpServer::new(ServerConfig {
        name: name.to_string(),
        verifier,
        root_acl: root_acl(),
        ..Default::default()
    })
    .unwrap()
    .spawn()
    .unwrap()
}

/// Wire a plan's Vfs errno stream into a server's filesystem.
fn hook_vfs(handle: &idbox_chirp::ChirpServerHandle, plan: &FaultPlan) {
    let plan = plan.clone();
    handle
        .kernel()
        .write()
        .vfs_mut()
        .set_fault_hook(Some(FaultHook::new(move |op, _ino| plan.vfs_fault(op))));
}

// ---------------------------------------------------------------------------
// A raw protocol client, for byte-level control over framing
// ---------------------------------------------------------------------------

struct RawClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

struct RawTransport<'a> {
    reader: &'a mut BufReader<TcpStream>,
    writer: &'a mut TcpStream,
}

impl AuthTransport for RawTransport<'_> {
    fn send_line(&mut self, line: &str) -> Result<(), String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .and_then(|_| self.writer.flush())
            .map_err(|e| e.to_string())
    }

    fn recv_line(&mut self) -> Result<String, String> {
        codec::read_line(self.reader).map_err(|e| format!("{e:?}"))
    }
}

impl RawClient {
    fn connect(addr: std::net::SocketAddr, creds: &[ClientCredential]) -> RawClient {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        {
            let mut t = RawTransport {
                reader: &mut reader,
                writer: &mut writer,
            };
            authenticate_client(&mut t, creds).unwrap();
        }
        RawClient { reader, writer }
    }

    /// Read one reply for a request whose `ok` replies announce a
    /// payload iff `wants_payload`; returns the head line and payload.
    fn read_reply(&mut self, wants_payload: bool) -> (String, Option<Vec<u8>>) {
        let head = codec::read_line(&mut self.reader).unwrap();
        let payload = if wants_payload && head.starts_with("ok") {
            let len: u64 = head
                .split(' ')
                .nth(1)
                .and_then(|w| w.parse().ok())
                .expect("payload announce");
            Some(codec::read_payload(&mut self.reader, len).unwrap())
        } else {
            None
        };
        (head, payload)
    }
}

// ---------------------------------------------------------------------------
// The generated operation mix
// ---------------------------------------------------------------------------

/// One generated request over a small path universe (`/p0` … `/p5`,
/// nested files `/p<i>/f<j>`). Collisions (EEXIST, ENOENT, ENOTDIR…)
/// are the point: error replies must match byte-for-byte too.
#[derive(Debug, Clone)]
enum Op {
    Whoami,
    Mkdir(u32),
    Stat(u32, u32),
    Put(u32, u32, u32),
    Get(u32, u32),
    Readdir(u32),
    Getacl(u32),
    Unlink(u32, u32),
    Truncate(u32, u32, u32),
    Rename(u32, u32),
}

fn dir(d: u32) -> String {
    format!("/p{}", d % 6)
}

fn file(d: u32, f: u32) -> String {
    format!("/p{}/f{}", d % 6, f % 4)
}

impl Op {
    fn from_tuple((k, a, b, c): (u32, u32, u32, u32)) -> Op {
        match k % 10 {
            0 => Op::Whoami,
            1 => Op::Mkdir(a),
            2 => Op::Stat(a, b),
            3 => Op::Put(a, b, c),
            4 => Op::Get(a, b),
            5 => Op::Readdir(a),
            6 => Op::Getacl(a),
            7 => Op::Unlink(a, b),
            8 => Op::Truncate(a, b, c),
            _ => Op::Rename(a, b),
        }
    }

    /// The request line and payload.
    fn render(&self) -> (String, Vec<u8>) {
        match self {
            Op::Whoami => ("whoami".to_string(), Vec::new()),
            Op::Mkdir(d) => (format!("mkdir {} 493", dir(*d)), Vec::new()),
            Op::Stat(d, f) => (format!("stat {}", file(*d, *f)), Vec::new()),
            Op::Put(d, f, n) => {
                let data = vec![b'x'; (*n % 50) as usize];
                (
                    format!("put {} {} 420", file(*d, *f), data.len()),
                    data,
                )
            }
            Op::Get(d, f) => (format!("get {}", file(*d, *f)), Vec::new()),
            Op::Readdir(d) => (format!("readdir {}", dir(*d)), Vec::new()),
            Op::Getacl(d) => (format!("getacl {}", dir(*d)), Vec::new()),
            Op::Unlink(d, f) => (format!("unlink {}", file(*d, *f)), Vec::new()),
            Op::Truncate(d, f, n) => {
                (format!("truncate {} {}", file(*d, *f), n % 80), Vec::new())
            }
            Op::Rename(a, b) => (format!("rename {} {}", dir(*a), dir(*b)), Vec::new()),
        }
    }

    /// Whether an `ok` reply announces a payload.
    fn wants_payload(&self) -> bool {
        matches!(self, Op::Get(..) | Op::Readdir(..) | Op::Getacl(..))
    }
}

/// Run `ops` serially, v1 style: one request on the wire at a time, no
/// `id=` token. Drain is toggled at the segment boundaries.
fn run_serial(
    handle: &idbox_chirp::ChirpServerHandle,
    creds: &[ClientCredential],
    ops: &[Op],
    seg: (usize, usize),
) -> Vec<(String, Option<Vec<u8>>)> {
    let mut c = RawClient::connect(handle.addr(), creds);
    let mut out = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        if i == seg.0 {
            handle.begin_drain();
        }
        if i == seg.1 {
            handle.end_drain();
        }
        let (line, payload) = op.render();
        c.writer.write_all(line.as_bytes()).unwrap();
        c.writer.write_all(b"\n").unwrap();
        c.writer.write_all(&payload).unwrap();
        c.writer.flush().unwrap();
        out.push(c.read_reply(op.wants_payload()));
    }
    out
}

/// Run `ops` pipelined, v2 style: each segment goes out as one burst of
/// `id=`-stamped frames, replies are read back in order and their ids
/// verified. Drain is toggled between bursts, as in the serial run.
fn run_pipelined(
    handle: &idbox_chirp::ChirpServerHandle,
    creds: &[ClientCredential],
    ops: &[Op],
    seg: (usize, usize),
) -> Vec<(String, Option<Vec<u8>>)> {
    let mut c = RawClient::connect(handle.addr(), creds);
    let mut out = Vec::with_capacity(ops.len());
    let bounds = [0, seg.0, seg.1, ops.len()];
    for w in bounds.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if lo == seg.0 {
            handle.begin_drain();
        }
        if lo == seg.1 {
            handle.end_drain();
        }
        let mut burst = Vec::new();
        for (i, op) in ops[lo..hi].iter().enumerate() {
            let (line, payload) = op.render();
            let stamped = codec::with_id(&line, (i + 1) as u64);
            burst.extend_from_slice(stamped.as_bytes());
            burst.push(b'\n');
            burst.extend_from_slice(&payload);
        }
        if burst.is_empty() {
            continue;
        }
        c.writer.write_all(&burst).unwrap();
        c.writer.flush().unwrap();
        for (i, op) in ops[lo..hi].iter().enumerate() {
            let raw = codec::read_line(&mut c.reader).unwrap();
            let (head, id) = codec::strip_id(&raw);
            assert_eq!(id, Some((i + 1) as u64), "reply id mismatch on {raw:?}");
            let head = head.to_string();
            let payload = if op.wants_payload() && head.starts_with("ok") {
                let len: u64 = head
                    .split(' ')
                    .nth(1)
                    .and_then(|w| w.parse().ok())
                    .expect("payload announce");
                Some(codec::read_payload(&mut c.reader, len).unwrap())
            } else {
                None
            };
            out.push((head, payload));
        }
    }
    out
}

proptest! {
    // Each case spawns two full servers; keep the count tight.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole equivalence property: pipelining changes the wire
    /// schedule, never the answers. Mixed metadata and data RPCs — with
    /// a drain window shedding EAGAIN mid-transcript and seeded vfs
    /// faults injecting EIOs — reply byte-identically to a serial v1
    /// run of the same transcript against an identical twin server.
    #[test]
    fn pipelined_transcript_matches_serial(
        raw_ops in proptest::collection::vec(
            (0u32..10u32, 0u32..6u32, 0u32..6u32, 0u32..100u32),
            1..32usize,
        ),
        cut_a in 0u32..100u32,
        cut_b in 0u32..100u32,
        eio_ppm in 0u32..150_000u32,
    ) {
        let ops: Vec<Op> = raw_ops.into_iter().map(Op::from_tuple).collect();
        // Two boundaries inside the transcript: drain begins at the
        // first, ends at the second.
        let mut s0 = (cut_a as usize) % (ops.len() + 1);
        let mut s1 = (cut_b as usize) % (ops.len() + 1);
        if s0 > s1 {
            std::mem::swap(&mut s0, &mut s1);
        }
        let (ca, _) = gsi_setup();
        let creds = fred_creds(&ca);

        // Twin servers with twin fault plans: the same seeded EIO
        // stream strikes the same vfs operations on both sides.
        let serial = spawn_twin("twin-serial");
        let piped = spawn_twin("twin-piped");
        let plan_s = FaultPlan::with_rates(0xFA17, 0, eio_ppm);
        let plan_p = FaultPlan::with_rates(0xFA17, 0, eio_ppm);
        hook_vfs(&serial, &plan_s);
        hook_vfs(&piped, &plan_p);

        let want = run_serial(&serial, &creds, &ops, (s0, s1));
        let got = run_pipelined(&piped, &creds, &ops, (s0, s1));
        prop_assert_eq!(want, got);
        serial.shutdown();
        piped.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Batch RPC
// ---------------------------------------------------------------------------

/// A batch executes many metadata ops in one frame, reports per-op
/// results (including per-op errors), and costs one in-flight slot.
#[test]
fn batch_runs_many_metadata_ops_in_one_frame() {
    let (ca, _) = gsi_setup();
    let handle = spawn_twin("batch");
    let mut c = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    c.mkdir("/work", 0o755).unwrap();
    c.put("/work/a", b"aaa").unwrap();
    c.put("/work/b", b"bb").unwrap();

    let replies = c
        .batch(&[
            BatchOp::Whoami,
            BatchOp::Stat("/work/a".to_string()),
            BatchOp::Stat("/missing".to_string()),
            BatchOp::Readdir("/work".to_string()),
            BatchOp::Rename {
                old: "/work/b".to_string(),
                new: "/work/c".to_string(),
            },
            BatchOp::Stat("/work/c".to_string()),
            BatchOp::Getacl("/work".to_string()),
        ])
        .unwrap();
    assert_eq!(replies.len(), 7);
    assert_eq!(
        replies[0].text().unwrap(),
        "globus:/O=UnivNowhere/CN=Fred"
    );
    assert_eq!(replies[1].stat().unwrap().size, 3);
    // A failed member does not fail the batch.
    assert_eq!(replies[2].result, Err(Errno::ENOENT));
    let listing = replies[3].text().unwrap();
    assert!(listing.contains('a') && listing.contains('b'), "{listing}");
    assert!(replies[4].result.is_ok());
    assert_eq!(replies[5].stat().unwrap().size, 2);
    assert!(replies[6].text().unwrap().contains("Fred"));

    // The batch really did execute: the rename is visible after.
    assert!(c.stat("/work/b").is_err());
    assert_eq!(c.stat("/work/c").unwrap().size, 2);
    c.quit().unwrap();
    handle.shutdown();
}

/// Sub-operations outside the metadata whitelist (payload-carrying or
/// exec-class verbs) are refused per-op with ENOSYS, not executed.
#[test]
fn batch_whitelist_refuses_non_metadata_verbs() {
    let (ca, _) = gsi_setup();
    let handle = spawn_twin("batch-wl");
    let mut raw = RawClient::connect(handle.addr(), &fred_creds(&ca));
    let body = "whoami\nget /etc/passwd\nexec /x\nquit\n";
    raw.writer
        .write_all(format!("batch {}\n{}", body.len(), body).as_bytes())
        .unwrap();
    raw.writer.flush().unwrap();
    let (head, payload) = raw.read_reply(true);
    assert!(head.starts_with("ok"), "{head}");
    let text = String::from_utf8(payload.unwrap()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4);
    assert!(lines[0].starts_with("ok "), "{}", lines[0]);
    let enosys = format!("error {}", Errno::ENOSYS.code());
    assert_eq!(lines[1], enosys, "get must not run inside a batch");
    assert_eq!(lines[2], enosys, "exec must not run inside a batch");
    assert_eq!(lines[3], enosys, "quit must not run inside a batch");
    // The connection survives a batch with refused members.
    raw.writer.write_all(b"whoami\n").unwrap();
    raw.writer.flush().unwrap();
    let (head, _) = raw.read_reply(false);
    assert!(head.starts_with("ok"), "{head}");
    handle.shutdown();
}

/// An oversized batch (too many sub-ops) is refused whole with EINVAL.
#[test]
fn batch_over_the_op_cap_is_refused() {
    let (ca, _) = gsi_setup();
    let handle = spawn_twin("batch-cap");
    let mut c = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    let ops: Vec<BatchOp> = (0..4097).map(|_| BatchOp::Whoami).collect();
    assert_eq!(c.batch(&ops), Err(Errno::EINVAL));
    // The connection is still healthy afterwards.
    assert!(c.whoami().is_ok());
    c.quit().unwrap();
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Protocol-error teardown (satellite: no more silent close)
// ---------------------------------------------------------------------------

/// A framing violation after auth — invalid UTF-8 in a command line —
/// is answered with `error EPROTO`, audited as a proto-shed, and only
/// then is the connection closed.
#[test]
fn protocol_error_replies_eproto_and_audits_before_close() {
    let (ca, _) = gsi_setup();
    let handle = spawn_twin("proto");
    let mut raw = RawClient::connect(handle.addr(), &fred_creds(&ca));
    raw.writer.write_all(b"stat \xff\xfe\xfd\n").unwrap();
    raw.writer.flush().unwrap();
    let reply = codec::read_line(&mut raw.reader).unwrap();
    assert_eq!(reply, format!("error {}", Errno::EPROTO.code()));
    // …and then EOF, not a hang.
    assert_eq!(codec::read_line(&mut raw.reader), Err(Errno::EPIPE));
    let proto_rows: Vec<_> = handle
        .audit_ring()
        .snapshot()
        .into_iter()
        .filter(|e| e.syscall == "proto-shed")
        .collect();
    assert_eq!(proto_rows.len(), 1, "one audit row per violation");
    assert_eq!(proto_rows[0].verdict, Verdict::Deny);
    assert_eq!(proto_rows[0].errno, Some(Errno::EPROTO));
    assert_eq!(proto_rows[0].identity, "globus:/O=UnivNowhere/CN=Fred");
    handle.shutdown();
}

/// The same teardown before authentication completes: the violation is
/// audited against the placeholder identity.
#[test]
fn preauth_protocol_error_is_audited_unauthenticated() {
    let (_, verifier) = gsi_setup();
    let handle = ChirpServer::new(ServerConfig {
        name: "proto-preauth".to_string(),
        verifier,
        root_acl: root_acl(),
        ..Default::default()
    })
    .unwrap()
    .spawn()
    .unwrap();
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writer.write_all(b"\xffgarbage\n").unwrap();
    writer.flush().unwrap();
    let reply = codec::read_line(&mut reader).unwrap();
    assert_eq!(reply, format!("error {}", Errno::EPROTO.code()));
    assert_eq!(codec::read_line(&mut reader), Err(Errno::EPIPE));
    let rows: Vec<_> = handle
        .audit_ring()
        .snapshot()
        .into_iter()
        .filter(|e| e.syscall == "proto-shed")
        .collect();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].identity, "(unauthenticated)");
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Drain interleaving and recovery
// ---------------------------------------------------------------------------

/// `end_drain` reopens a drained server without a restart: sheds stop,
/// in-flight sessions continue, and the shed window is fully audited.
#[test]
fn drain_window_sheds_then_end_drain_recovers() {
    let (ca, _) = gsi_setup();
    let handle = spawn_twin("drain-window");
    let mut c = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    c.mkdir("/work", 0o755).unwrap();

    handle.begin_drain();
    assert_eq!(c.whoami(), Err(Errno::EAGAIN));
    assert_eq!(c.stat("/work"), Err(Errno::EAGAIN));
    handle.end_drain();
    assert!(c.whoami().is_ok(), "end_drain must reopen the session");
    assert!(c.stat("/work").is_ok());

    let drain_sheds = handle
        .audit_ring()
        .snapshot()
        .into_iter()
        .filter(|e| {
            e.syscall == "rpc-shed" && e.path.as_deref().unwrap_or("").contains("drain")
        })
        .count();
    assert_eq!(drain_sheds, 2);
    c.quit().unwrap();
    handle.shutdown();
}

/// A pipelined burst straddling a drain toggle answers every frame:
/// sheds reply EAGAIN in order, with ids, and the connection survives.
#[test]
fn pipelined_burst_during_drain_sheds_every_frame_in_order() {
    let (ca, _) = gsi_setup();
    let handle = spawn_twin("drain-burst");
    let creds = fred_creds(&ca);
    let mut setup = ChirpClient::connect(handle.addr(), &creds).unwrap();
    setup.mkdir("/work", 0o755).unwrap();
    setup.quit().unwrap();

    let mut raw = RawClient::connect(handle.addr(), &creds);
    handle.begin_drain();
    let mut burst = Vec::new();
    for i in 1..=8u64 {
        let line = codec::with_id("stat /work", i);
        burst.extend_from_slice(line.as_bytes());
        burst.push(b'\n');
    }
    raw.writer.write_all(&burst).unwrap();
    raw.writer.flush().unwrap();
    for i in 1..=8u64 {
        let reply = codec::read_line(&mut raw.reader).unwrap();
        let (head, id) = codec::strip_id(&reply);
        assert_eq!(id, Some(i));
        assert_eq!(head, format!("error {}", Errno::EAGAIN.code()));
    }
    handle.end_drain();
    // The same connection serves real work once the drain lifts.
    raw.writer
        .write_all(codec::with_id("stat /work", 9).as_bytes())
        .unwrap();
    raw.writer.write_all(b"\n").unwrap();
    raw.writer.flush().unwrap();
    let reply = codec::read_line(&mut raw.reader).unwrap();
    let (head, id) = codec::strip_id(&reply);
    assert_eq!(id, Some(9));
    assert!(head.starts_with("ok"), "{head}");
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Pipeline client API
// ---------------------------------------------------------------------------

/// The high-level [`Pipeline`] builder: mixed queued ops come back in
/// order with per-op results and payloads.
#[test]
fn pipeline_builder_round_trips_mixed_ops() {
    let (ca, _) = gsi_setup();
    let handle = spawn_twin("pipe-api");
    let mut c = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    c.mkdir("/work", 0o755).unwrap();
    c.put("/work/data", b"pipelined bytes").unwrap();

    let mut p = c.pipeline();
    let i_who = p.whoami();
    let i_stat = p.stat("/work/data");
    let i_get = p.get("/work/data");
    let i_miss = p.stat("/nope");
    let i_dir = p.readdir("/work");
    assert_eq!(p.len(), 5);
    let replies = p.run().unwrap();
    assert_eq!(replies.len(), 5);
    assert_eq!(
        replies[i_who].result.as_ref().unwrap()[0],
        "globus:/O=UnivNowhere/CN=Fred"
    );
    assert!(replies[i_stat].result.is_ok());
    assert_eq!(
        replies[i_get].payload.as_deref(),
        Some(b"pipelined bytes".as_ref())
    );
    assert_eq!(replies[i_miss].result, Err(Errno::ENOENT));
    assert!(replies[i_dir].payload.is_some());
    // Each queued op carried its own trace id.
    assert_ne!(replies[i_who].trace, replies[i_get].trace);

    // The connection stays healthy for ordinary RPCs afterwards.
    assert!(c.whoami().is_ok());
    c.quit().unwrap();
    handle.shutdown();
}
