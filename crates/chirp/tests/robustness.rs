//! Robustness end-to-end tests: seeded fault injection against the
//! real Chirp stack over TCP.
//!
//! A [`FaultProxy`] sits between the client and the server injecting
//! wire faults from a seeded [`FaultPlan`]; the same plan drives a Vfs
//! errno hook inside the server's kernel. The retrying client must mask
//! every injected fault for idempotent RPCs, surface them for
//! non-idempotent ones, and never turn a denial into an allow.
//!
//! Set `IDBOX_PROP_SEED` to reproduce a property-test failure exactly.

use idbox_acl::{Acl, Rights};
use idbox_auth::{CertificateAuthority, ClientCredential, ServerVerifier};
use idbox_chirp::{ChirpClient, ChirpServer, RetryPolicy, ServerConfig};
use idbox_core::Verdict;
use idbox_types::{AuthMethod, Errno};
use idbox_vfs::FaultHook;
use proptest::fault::{Dir, Fault, FaultPlan, FaultProxy};
use std::time::Duration;

fn gsi_setup() -> (CertificateAuthority, ServerVerifier) {
    let ca = CertificateAuthority::new("/O=UnivNowhere CA", 0xCA11AB1E);
    let mut v = ServerVerifier::new();
    v.accept = vec![AuthMethod::Globus, AuthMethod::Hostname];
    v.cas.trust(ca.clone());
    (ca, v)
}

fn fred_creds(ca: &CertificateAuthority) -> Vec<ClientCredential> {
    vec![ClientCredential::Globus(
        ca.issue("/O=UnivNowhere/CN=Fred"),
    )]
}

const FRED: &str = "globus:/O=UnivNowhere/CN=Fred";

fn root_acl() -> Acl {
    let mut acl = Acl::empty();
    acl.set_reserve("globus:/O=UnivNowhere/*", Rights::LIST, Rights::RWLAX);
    acl
}

/// A fast retry policy for tests: tight backoff, generous attempts.
fn test_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 10,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(10),
        budget: Duration::from_secs(10),
        jitter_seed: 0xFA17,
        retry_mutating: false,
        io_timeout: Some(Duration::from_secs(2)),
    }
}

fn spawn_server(config: ServerConfig) -> idbox_chirp::ChirpServerHandle {
    ChirpServer::new(config).unwrap().spawn().unwrap()
}

fn default_server() -> idbox_chirp::ChirpServerHandle {
    let (_, verifier) = gsi_setup();
    spawn_server(ServerConfig {
        name: "robust".to_string(),
        verifier,
        root_acl: root_acl(),
        ..Default::default()
    })
}

/// Wire the plan's Vfs errno stream into the server's filesystem.
fn hook_vfs(handle: &idbox_chirp::ChirpServerHandle, plan: &FaultPlan) {
    let plan = plan.clone();
    handle
        .kernel()
        .write()
        .vfs_mut()
        .set_fault_hook(Some(FaultHook::new(move |op, _ino| plan.vfs_fault(op))));
}

/// A mid-RPC transport fault must poison the connection — the next RPC
/// runs on a *fresh* authenticated session (new generation), never on
/// the half-dead socket.
#[test]
fn transport_fault_poisons_connection_and_reconnect_recovers() {
    let (ca, verifier) = gsi_setup();
    let handle = spawn_server(ServerConfig {
        name: "poison".to_string(),
        verifier,
        root_acl: root_acl(),
        ..Default::default()
    });
    let plan = FaultPlan::new(11);
    let proxy = FaultProxy::spawn(handle.addr(), plan.clone()).unwrap();
    // Plain `connect`: no automatic retry, so the fault surfaces.
    let mut c = ChirpClient::connect(proxy.addr(), &fred_creds(&ca)).unwrap();
    c.mkdir("/work", 0o755).unwrap();
    assert_eq!(c.generation(), 1);

    // Truncate the next reply: the RPC fails and the session is dead.
    plan.arm(Dir::Rx, Fault::Truncate(3));
    assert!(c.stat("/work").is_err(), "truncated reply must fail");

    // The next RPC transparently redials, re-authenticates, and works.
    let st = c.stat("/work").unwrap();
    assert!(st.size > 0 || st.mode > 0);
    assert_eq!(c.generation(), 2, "reconnect must bump the generation");
    assert_eq!(c.reconnects(), 1);
    handle.shutdown();
}

/// Armed wire and filesystem faults are fully masked by the retry
/// policy for idempotent RPCs: the caller sees only success.
#[test]
fn seeded_faults_are_masked_for_idempotent_rpcs() {
    let (ca, verifier) = gsi_setup();
    let handle = spawn_server(ServerConfig {
        name: "masked".to_string(),
        verifier,
        root_acl: root_acl(),
        ..Default::default()
    });
    let plan = FaultPlan::new(22);
    hook_vfs(&handle, &plan);
    let proxy = FaultProxy::spawn(handle.addr(), plan.clone()).unwrap();
    let mut c = ChirpClient::connect_with(proxy.addr(), &fred_creds(&ca), test_policy()).unwrap();
    c.mkdir("/work", 0o755).unwrap();
    c.put("/work/data", b"survives faults").unwrap();

    // Drop the request on the wire: stat must still succeed.
    plan.arm(Dir::Tx, Fault::Drop);
    assert_eq!(c.stat("/work/data").unwrap().size, 15);

    // Truncate the reply: get must still deliver the bytes.
    plan.arm(Dir::Rx, Fault::Truncate(5));
    assert_eq!(c.get("/work/data").unwrap(), b"survives faults");

    // An EIO deep inside the server's filesystem read path: retried.
    plan.arm_vfs(Errno::EIO);
    assert_eq!(c.get("/work/data").unwrap(), b"survives faults");

    assert!(c.retries() >= 2, "faults should have forced retries");
    assert!(c.reconnects() >= 2, "wire drops should have reconnected");
    assert!(plan.wire_injected() >= 2 && plan.vfs_injected() >= 1);
    handle.shutdown();
}

/// Connection loss during a non-idempotent RPC surfaces as an error —
/// the client must not silently re-run `mkdir`/`exec`, because a lost
/// reply does not say whether the server already executed the request.
#[test]
fn non_idempotent_failures_surface_instead_of_retrying() {
    let (ca, verifier) = gsi_setup();
    let handle = spawn_server(ServerConfig {
        name: "at-most-once".to_string(),
        verifier,
        root_acl: root_acl(),
        ..Default::default()
    });
    let plan = FaultPlan::new(33);
    let proxy = FaultProxy::spawn(handle.addr(), plan.clone()).unwrap();
    let mut c = ChirpClient::connect_with(proxy.addr(), &fred_creds(&ca), test_policy()).unwrap();

    // The reply to mkdir is dropped: the error surfaces, unretried.
    plan.arm(Dir::Rx, Fault::Drop);
    assert!(c.mkdir("/work", 0o755).is_err());
    assert_eq!(c.retries(), 0, "mutating RPCs must not auto-retry");

    // The ambiguity is real: the server *did* run the mkdir before the
    // reply was lost. The caller decides how to resolve it — here, by
    // observing the directory exists on the next (reconnected) RPC.
    assert!(c.stat("/work").is_ok());

    // Opting in to at-least-once retries mutating verbs too; mkdir of
    // an existing directory then surfaces the server's EEXIST.
    let mut optin = test_policy();
    optin.retry_mutating = true;
    let mut c2 = ChirpClient::connect_with(proxy.addr(), &fred_creds(&ca), optin).unwrap();
    plan.arm(Dir::Rx, Fault::Drop);
    assert_eq!(c2.mkdir("/work", 0o755), Err(Errno::EEXIST));
    assert!(c2.retries() >= 1);
    handle.shutdown();
}

/// The value of the first Prometheus sample line starting with `head`.
fn sample(text: &str, head: &str) -> f64 {
    text.lines()
        .find(|l| l.starts_with(head))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or_else(|| panic!("no sample {head:?} in:\n{text}"))
}

/// One identity over its concurrency cap is shed with EAGAIN while its
/// long RPC runs; a retrying client masks the shed, and both the shed
/// and the retries are visible in Prometheus and the audit ring.
#[test]
fn per_identity_limit_sheds_and_retry_masks_it() {
    let (ca, verifier) = gsi_setup();
    let mut server = ChirpServer::new(ServerConfig {
        name: "limited".to_string(),
        verifier,
        root_acl: root_acl(),
        max_inflight_per_identity: Some(1),
        ..Default::default()
    })
    .unwrap();
    server.register_program("sleeper", |_, args| {
        let ms: u64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(100);
        std::thread::sleep(Duration::from_millis(ms));
        0
    });
    let handle = server.spawn().unwrap();

    let mut a = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    a.mkdir("/work", 0o755).unwrap();
    a.put_mode("/work/sleep.exe", b"#!guest sleeper\n", 0o755)
        .unwrap();

    // A holds Fred's one slot for ~600 ms...
    let exec = std::thread::spawn(move || {
        a.exec("/work/sleep.exe", &["600"]).unwrap();
        a
    });
    std::thread::sleep(Duration::from_millis(150));

    // ...so B (same identity) is shed — and a patient retry policy
    // masks the shed entirely.
    let patient = RetryPolicy {
        max_attempts: 100,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(25),
        budget: Duration::from_secs(10),
        ..test_policy()
    };
    let mut b = ChirpClient::connect_with(handle.addr(), &fred_creds(&ca), patient).unwrap();
    assert!(b.stat("/work/sleep.exe").is_ok());
    assert!(b.retries() >= 1, "the shed should have forced a retry");
    let a = exec.join().unwrap();

    // The degradation is observable: per-identity shed and retry
    // counters in the Prometheus exposition, and an `rpc-shed` row in
    // the same audit ring as every policy ruling.
    let text = handle.metrics().render_prometheus();
    let fred = format!("identity=\"{FRED}\"");
    assert!(sample(&text, &format!("idbox_rpcs_shed_total{{{fred}}}")) >= 1.0);
    assert!(sample(&text, &format!("idbox_rpcs_retried_total{{{fred}}}")) >= 1.0);
    let shed_rows: Vec<_> = handle
        .audit_ring()
        .snapshot()
        .into_iter()
        .filter(|e| e.syscall == "rpc-shed")
        .collect();
    assert!(!shed_rows.is_empty(), "shed must be audited");
    let row = &shed_rows[0];
    assert_eq!(row.identity, FRED);
    assert_eq!(row.verdict, Verdict::Deny);
    assert_eq!(row.errno, Some(Errno::EAGAIN));
    assert!(
        row.path.as_deref().unwrap_or("").contains("identity-limit"),
        "{row:?}"
    );
    a.quit().unwrap();
    b.quit().unwrap();
    handle.shutdown();
}

/// A draining server sheds every RPC; `begin_drain` is observable from
/// a connected session without shutting the server down.
#[test]
fn drain_mode_sheds_new_work() {
    let (ca, _) = gsi_setup();
    let handle = {
        let (_, verifier) = gsi_setup();
        spawn_server(ServerConfig {
            name: "draining".to_string(),
            verifier,
            root_acl: root_acl(),
            ..Default::default()
        })
    };
    let mut c = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    assert!(c.whoami().is_ok());
    handle.begin_drain();
    assert_eq!(c.whoami(), Err(Errno::EAGAIN));
    let drain_rows = handle
        .audit_ring()
        .snapshot()
        .into_iter()
        .filter(|e| e.syscall == "rpc-shed" && e.path.as_deref().unwrap_or("").contains("drain"))
        .count();
    assert!(drain_rows >= 1);
    handle.shutdown();
}

/// Shutdown waits for in-flight RPCs but no longer than the configured
/// drain deadline: a stuck guest program cannot hang the embedding
/// process, and the timeout is audited as a deny.
#[test]
fn drain_deadline_bounds_shutdown() {
    let (ca, verifier) = gsi_setup();
    let mut server = ChirpServer::new(ServerConfig {
        name: "bounded".to_string(),
        verifier,
        root_acl: root_acl(),
        drain_deadline: Duration::from_millis(200),
        ..Default::default()
    })
    .unwrap();
    server.register_program("sleeper", |_, _| {
        std::thread::sleep(Duration::from_secs(5));
        0
    });
    let handle = server.spawn().unwrap();
    let audit = std::sync::Arc::clone(handle.audit_ring());

    let mut c = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    c.mkdir("/work", 0o755).unwrap();
    c.put_mode("/work/stuck.exe", b"#!guest sleeper\n", 0o755)
        .unwrap();
    let exec = std::thread::spawn(move || {
        let _ = c.exec("/work/stuck.exe", &[]);
    });
    // Wait until the exec is really in flight.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while handle.inflight() == 0 {
        assert!(std::time::Instant::now() < deadline, "exec never started");
        std::thread::sleep(Duration::from_millis(5));
    }

    let t0 = std::time::Instant::now();
    handle.shutdown();
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "shutdown took {elapsed:?} despite a 200ms drain deadline"
    );
    let drain = audit
        .snapshot()
        .into_iter()
        .find(|e| e.syscall == "drain")
        .expect("drain outcome must be audited");
    assert_eq!(drain.verdict, Verdict::Deny);
    assert_eq!(drain.errno, Some(Errno::EBUSY));
    exec.join().unwrap();

    // An idle server, by contrast, drains clean: verdict allow.
    let handle = default_server();
    let audit = std::sync::Arc::clone(handle.audit_ring());
    handle.shutdown();
    let drain = audit
        .snapshot()
        .into_iter()
        .find(|e| e.syscall == "drain")
        .unwrap();
    assert_eq!(drain.verdict, Verdict::Allow);
    assert_eq!(drain.errno, None);
}

/// The acceptance scenario: sustained seeded faults — 10 % of request
/// lines lose their connection, 10 % of filesystem data ops report EIO
/// — and every idempotent RPC still succeeds through retry/reconnect,
/// while denials stay denials (zero fail-open).
#[test]
fn sustained_faults_are_fully_masked_and_never_fail_open() {
    let (ca, verifier) = gsi_setup();
    let handle = spawn_server(ServerConfig {
        name: "storm".to_string(),
        verifier,
        root_acl: root_acl(),
        ..Default::default()
    });
    // Seed the export space over a clean, direct connection first.
    let mut setup = ChirpClient::connect(handle.addr(), &fred_creds(&ca)).unwrap();
    setup.mkdir("/work", 0o755).unwrap();
    setup.put("/work/data", b"payload under fire").unwrap();
    setup.quit().unwrap();

    // 100_000 ppm = 10 % per request line / per data op.
    let plan = FaultPlan::with_rates(0x1DB0, 100_000, 100_000);
    hook_vfs(&handle, &plan);
    let proxy = FaultProxy::spawn(handle.addr(), plan.clone()).unwrap();

    let mut fred =
        ChirpClient::connect_with(proxy.addr(), &fred_creds(&ca), test_policy()).unwrap();
    for i in 0..200 {
        match i % 4 {
            0 => assert_eq!(fred.stat("/work/data").unwrap().size, 18, "op {i}"),
            1 => assert_eq!(fred.get("/work/data").unwrap(), b"payload under fire", "op {i}"),
            2 => assert!(!fred.readdir("/work").unwrap().is_empty(), "op {i}"),
            _ => assert!(fred.getacl("/work").unwrap().allows(
                &idbox_types::Identity::new(FRED),
                Rights::READ
            )),
        }
    }
    assert!(plan.wire_injected() > 0, "the storm never struck the wire");
    assert!(plan.vfs_injected() > 0, "the storm never struck the vfs");
    assert!(fred.retries() > 0 && fred.reconnects() > 0);

    // Zero fail-open: George has no rights in /work, and no amount of
    // injected failure and retrying may ever flip a deny into an allow.
    let george_creds = vec![ClientCredential::Globus(
        ca.issue("/O=UnivNowhere/CN=George"),
    )];
    let mut george =
        ChirpClient::connect_with(proxy.addr(), &george_creds, test_policy()).unwrap();
    for _ in 0..20 {
        assert_eq!(george.get("/work/data"), Err(Errno::EACCES));
    }
    let denials = handle
        .audit_ring()
        .snapshot()
        .into_iter()
        .filter(|e| {
            e.identity == "globus:/O=UnivNowhere/CN=George" && e.verdict == Verdict::Deny
        })
        .count();
    assert!(denials >= 20, "denials under faults: {denials}");
    handle.shutdown();
}

mod properties {
    use idbox_core::{AuditRing, Verdict};
    use idbox_obs::IdentityMetrics;
    use idbox_types::Errno;
    use proptest::prelude::*;

    proptest::proptest! {
        /// Any interleaving of shed / retry / start / finish events
        /// keeps the Prometheus tallies equal to the event log, keeps
        /// the inflight gauge exactly consistent (never negative, even
        /// with spurious finishes), and lands one audit row per shed.
        #[test]
        fn shed_and_retry_accounting_is_consistent(
            events in proptest::collection::vec(0u32..5u32, 1..120usize),
        ) {
            let metrics = IdentityMetrics::new(&["open"], 64);
            let ring = AuditRing::default();
            let c = metrics.handle("globus:/O=UnivNowhere/CN=Fred");
            let (mut shed, mut retried, mut inflight, mut admission) =
                (0u64, 0u64, 0u64, 0u64);
            for e in events {
                match e {
                    0 => {
                        c.bump_rpc_shed();
                        ring.record_named(
                            "globus:/O=UnivNowhere/CN=Fred",
                            "rpc-shed",
                            None,
                            Verdict::Deny,
                            Some(Errno::EAGAIN),
                            None,
                        );
                        shed += 1;
                    }
                    1 => {
                        c.bump_rpc_retried();
                        retried += 1;
                    }
                    2 => {
                        c.rpc_started();
                        inflight += 1;
                    }
                    3 => {
                        // May be spurious (more finishes than starts):
                        // the gauge must saturate at zero, not wrap.
                        c.rpc_finished();
                        inflight = inflight.saturating_sub(1);
                    }
                    _ => {
                        metrics.bump_admission_shed();
                        admission += 1;
                    }
                }
            }
            prop_assert_eq!(c.rpcs_shed(), shed);
            prop_assert_eq!(c.rpcs_retried(), retried);
            prop_assert_eq!(c.inflight(), inflight);
            prop_assert_eq!(metrics.admission_shed(), admission);
            prop_assert_eq!(ring.total_recorded(), shed);

            let text = metrics.render_prometheus();
            let fred = "identity=\"globus:/O=UnivNowhere/CN=Fred\"";
            prop_assert!(text.contains(&format!(
                "idbox_rpcs_shed_total{{{fred}}} {shed}"
            )));
            prop_assert!(text.contains(&format!(
                "idbox_rpcs_retried_total{{{fred}}} {retried}"
            )));
            prop_assert!(text.contains(&format!(
                "idbox_inflight_requests{{{fred}}} {inflight}"
            )));
            prop_assert!(text.contains(&format!(
                "idbox_admission_shed_total {admission}"
            )));
        }
    }
}
