//! Reading and writing `.__acl` files, and computing effective rights.

use idbox_acl::{Acl, Rights};
use idbox_types::{Errno, Identity, SysResult, ACL_FILE_NAME, NOBODY};
use idbox_vfs::{Access, Cred, Ino, Vfs};

/// The Unix credential of the `nobody` account used by the fallback.
pub const NOBODY_CRED: Cred = Cred {
    uid: 65534,
    gid: 65534,
};

/// What governs a visitor's access to a directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EffectiveRights {
    /// The directory carries an ACL; these are the identity's rights
    /// under it (plus the reserve grant, when held).
    Acl(Rights, Option<Rights>),
    /// No ACL anywhere: Unix permissions apply, evaluated as `nobody`.
    UnixAsNobody,
}

/// Read the ACL of a directory, if present. The supervisor reads with its
/// own credential — it owns the box areas — so visitors' rights never
/// gate the *lookup* of the policy that governs them.
///
/// Only `ENOENT` means "this directory has no ACL"; any other failure
/// (I/O error, loop, lookup refusal) propagates so callers fail closed
/// instead of quietly dropping to Unix-as-nobody semantics.
pub fn read_acl(vfs: &Vfs, dir: Ino, sup: &Cred) -> SysResult<Option<Acl>> {
    let acl_ino = match vfs.resolve(dir, ACL_FILE_NAME, false, sup) {
        Ok(ino) => ino,
        Err(Errno::ENOENT) => return Ok(None),
        Err(e) => return Err(e),
    };
    let text = String::from_utf8(vfs.file_data(acl_ino)?.to_vec())
        .map_err(|_| Errno::EIO)?;
    // A malformed ACL file fails closed: treat as empty (deny everyone)
    // rather than falling back to Unix permissions.
    Ok(Some(Acl::parse(&text).unwrap_or_default()))
}

/// Write (create or replace) the ACL of a directory.
pub fn write_acl(vfs: &Vfs, dir: Ino, acl: &Acl, sup: &Cred) -> SysResult<()> {
    vfs.write_file(dir, ACL_FILE_NAME, acl.to_text().as_bytes(), sup)?;
    Ok(())
}

/// Compute what governs `identity`'s access to the directory `dir`.
pub fn effective_rights(
    vfs: &Vfs,
    dir: Ino,
    identity: &Identity,
    sup: &Cred,
) -> SysResult<EffectiveRights> {
    match read_acl(vfs, dir, sup)? {
        Some(acl) => Ok(EffectiveRights::Acl(
            acl.rights_for(identity),
            acl.reserve_grant_for(identity),
        )),
        None => Ok(EffectiveRights::UnixAsNobody),
    }
}

impl EffectiveRights {
    /// Does this grant permission for an operation needing `needed` ACL
    /// rights (ACL case) / `unix_want` access bits on `unix_target`
    /// (fallback case)?
    pub fn permits(
        &self,
        vfs: &Vfs,
        needed: Rights,
        unix_target: Option<Ino>,
        unix_want: Access,
    ) -> bool {
        match self {
            EffectiveRights::Acl(rights, _) => rights.contains(needed),
            EffectiveRights::UnixAsNobody => match unix_target {
                Some(ino) => vfs.check_access(ino, &nobody_cred(), unix_want).is_ok(),
                None => false,
            },
        }
    }
}

/// The `nobody` credential (looked up here so a future configurable
/// account is a one-line change).
pub fn nobody_cred() -> Cred {
    let _ = NOBODY; // name documented in idbox-types
    NOBODY_CRED
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_acl::AclEntry;

    fn setup() -> (Vfs, Ino) {
        let v = Vfs::new();
        let root = v.root();
        let d = v.mkdir(root, "/box", 0o755, &Cred::ROOT).unwrap();
        (v, d)
    }

    #[test]
    fn missing_acl_is_none() {
        let (v, d) = setup();
        assert_eq!(read_acl(&v, d, &Cred::ROOT).unwrap(), None);
        assert_eq!(
            effective_rights(&v, d, &Identity::new("fred"), &Cred::ROOT).unwrap(),
            EffectiveRights::UnixAsNobody
        );
    }

    #[test]
    fn write_then_read_acl() {
        let (v, d) = setup();
        let acl = Acl::from_entries([AclEntry::new("fred", Rights::RWLAX)]);
        write_acl(&v, d, &acl, &Cred::ROOT).unwrap();
        assert_eq!(read_acl(&v, d, &Cred::ROOT).unwrap(), Some(acl));
    }

    #[test]
    fn effective_rights_reads_entries() {
        let (v, d) = setup();
        let mut acl = Acl::empty();
        acl.set("f*", Rights::READ | Rights::LIST);
        acl.set_reserve("globus:*", Rights::NONE, Rights::RWLAX);
        write_acl(&v, d, &acl, &Cred::ROOT).unwrap();
        match effective_rights(&v, d, &Identity::new("fred"), &Cred::ROOT).unwrap() {
            EffectiveRights::Acl(r, grant) => {
                assert!(r.contains(Rights::READ | Rights::LIST));
                assert_eq!(grant, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        match effective_rights(
            &v,
            d,
            &Identity::new("globus:/O=X/CN=Y"),
            &Cred::ROOT,
        )
        .unwrap()
        {
            EffectiveRights::Acl(r, grant) => {
                assert!(r.contains(Rights::RESERVE));
                assert_eq!(grant, Some(Rights::RWLAX));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_acl_fails_closed() {
        let (v, d) = setup();
        v.write_file(d, ACL_FILE_NAME, b"not a valid acl line", &Cred::ROOT)
            .unwrap();
        match effective_rights(&v, d, &Identity::new("fred"), &Cred::ROOT).unwrap() {
            EffectiveRights::Acl(r, grant) => {
                assert!(r.is_empty());
                assert_eq!(grant, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn permits_acl_and_unix_paths() {
        let (v, d) = setup();
        // ACL case.
        let acl = Acl::from_entries([AclEntry::new("fred", Rights::READ)]);
        write_acl(&v, d, &acl, &Cred::ROOT).unwrap();
        let er = effective_rights(&v, d, &Identity::new("fred"), &Cred::ROOT).unwrap();
        assert!(er.permits(&v, Rights::READ, None, Access::R));
        assert!(!er.permits(&v, Rights::WRITE, None, Access::W));
        // Unix-as-nobody case: a world-readable file is visible, a
        // supervisor-private one is not.
        let root = v.root();
        let pub_f = v.create(root, "/pub.txt", 0o644, &Cred::ROOT).unwrap();
        let priv_f = v.create(root, "/priv.txt", 0o600, &Cred::ROOT).unwrap();
        let er = EffectiveRights::UnixAsNobody;
        assert!(er.permits(&v, Rights::READ, Some(pub_f), Access::R));
        assert!(!er.permits(&v, Rights::READ, Some(priv_f), Access::R));
        assert!(!er.permits(&v, Rights::READ, None, Access::R));
    }
}
