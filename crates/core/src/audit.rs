//! Bounded audit ring for policy decisions.
//!
//! The paper's security argument — and McNab's grid ACL work — rest on
//! every access decision being made in terms of the *global* identity.
//! This module makes those decisions observable: the policy appends one
//! [`AuditEvent`] per ruling (identity, syscall, path, verdict, errno)
//! into a fixed-capacity ring that drops its oldest entry on overflow,
//! so a long-lived server can always answer "who was denied what,
//! recently" without unbounded memory.
//!
//! Recording goes through `&self` (the ring keeps its own small mutex),
//! because rulings on read-only calls happen under the *shared* side of
//! the kernel lock.

use idbox_kernel::Syscall;
use idbox_obs::TraceId;
use idbox_types::Errno;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default ring capacity: enough for a burst of recent history, small
/// enough to be harmless on a long-lived server.
pub const AUDIT_RING_DEFAULT_CAP: usize = 1024;

/// How a policy ruled on one system call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The call was allowed (including allowed-after-rewrite, e.g. the
    /// passwd redirection).
    Allow,
    /// The call was refused with an errno.
    Deny,
    /// A `mkdir` allowed *only* because the identity holds the reserve
    /// right in the parent — Section 4's amplification.
    ReserveAmplified,
}

impl Verdict {
    /// Stable wire/report spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Allow => "allow",
            Verdict::Deny => "deny",
            Verdict::ReserveAmplified => "reserve-amplified",
        }
    }
}

/// One recorded policy decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEvent {
    /// Monotonic sequence number (survives ring overflow, so gaps in a
    /// snapshot reveal how much history was dropped).
    pub seq: u64,
    /// The boxed identity the decision was made for.
    pub identity: String,
    /// Syscall name, as in [`Syscall::name`].
    pub syscall: &'static str,
    /// The path(s) the call named, when it named any.
    pub path: Option<String>,
    /// The ruling.
    pub verdict: Verdict,
    /// The errno a denial carried.
    pub errno: Option<Errno>,
    /// The trace id of the RPC being served when the ruling was made,
    /// when the client sent one — what joins audit rows to request
    /// spans and to exec'd children.
    pub trace: Option<TraceId>,
}

/// A fixed-capacity, oldest-out ring of [`AuditEvent`]s.
#[derive(Debug)]
pub struct AuditRing {
    cap: usize,
    seq: AtomicU64,
    events: Mutex<VecDeque<AuditEvent>>,
}

impl Default for AuditRing {
    fn default() -> Self {
        AuditRing::new(AUDIT_RING_DEFAULT_CAP)
    }
}

impl AuditRing {
    /// An empty ring holding at most `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        AuditRing {
            cap: cap.max(1),
            seq: AtomicU64::new(0),
            events: Mutex::new(VecDeque::with_capacity(cap.clamp(1, 1024))),
        }
    }

    /// Append one decision, evicting the oldest event when full.
    /// `trace` is the id of the RPC being served, when known.
    pub fn record(
        &self,
        identity: &str,
        call: &Syscall,
        verdict: Verdict,
        errno: Option<Errno>,
        trace: Option<TraceId>,
    ) {
        self.record_named(identity, call.name(), call_path(call), verdict, errno, trace);
    }

    /// Append one decision that is not a syscall ruling — degradation
    /// events from the server (`"rpc-shed"`, `"admission-shed"`,
    /// `"drain"`) use this so every shed/drain decision lands in the
    /// same ring, with the same cursor, as the policy verdicts it sits
    /// between. `op` becomes the event's `syscall` column.
    pub fn record_named(
        &self,
        identity: &str,
        op: &'static str,
        path: Option<String>,
        verdict: Verdict,
        errno: Option<Errno>,
        trace: Option<TraceId>,
    ) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = AuditEvent {
            seq,
            identity: identity.to_string(),
            syscall: op,
            path,
            verdict,
            errno,
            trace,
        };
        let mut ring = self.events.lock();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Oldest-first copy of the retained events.
    pub fn snapshot(&self) -> Vec<AuditEvent> {
        self.events.lock().iter().cloned().collect()
    }

    /// Oldest-first copy of the retained events with `seq >= since`.
    /// The incremental-tailing primitive behind the `audit <since>`
    /// RPC cursor: a client that remembers the last cursor it was
    /// handed fetches only what it has not seen, and a gap between its
    /// cursor and the first returned seq tells it exactly how much
    /// history the ring dropped.
    pub fn snapshot_since(&self, since: u64) -> Vec<AuditEvent> {
        self.events
            .lock()
            .iter()
            .filter(|e| e.seq >= since)
            .cloned()
            .collect()
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total decisions ever recorded, including evicted ones.
    pub fn total_recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

/// The path(s) a call names, for the audit record. Two-path calls keep
/// both names, arrow-joined, since either side can be what a reviewer
/// is looking for.
fn call_path(call: &Syscall) -> Option<String> {
    use Syscall::*;
    match call {
        Stat(p) | Lstat(p) | Open(p, ..) | Mkdir(p, _) | Rmdir(p) | Unlink(p)
        | Readlink(p) | Truncate(p, _) | AccessCheck(p, _) | Readdir(p) | Chmod(p, _)
        | Chown(p, ..) | Chdir(p) | Exec(p) => Some(p.clone()),
        Link(old, new) | Symlink(old, new) | Rename(old, new) => {
            Some(format!("{old} -> {new}"))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_stays_bounded_and_seq_is_monotonic() {
        let ring = AuditRing::new(8);
        for i in 0..100u64 {
            ring.record(
                "globus:/O=UnivNowhere/CN=Fred",
                &Syscall::Stat(format!("/f{i}")),
                Verdict::Allow,
                None,
                None,
            );
        }
        assert_eq!(ring.len(), 8);
        assert_eq!(ring.capacity(), 8);
        assert_eq!(ring.total_recorded(), 100);
        let snap = ring.snapshot();
        // The newest 8 events survive, in order.
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (92..100).collect::<Vec<_>>());
        assert_eq!(snap.last().unwrap().path.as_deref(), Some("/f99"));
    }

    #[test]
    fn events_carry_identity_verdict_and_errno() {
        let ring = AuditRing::default();
        let trace = idbox_obs::next_trace_id();
        ring.record(
            "kerberos:fred@nd.edu",
            &Syscall::Open("/box/secret".into(), idbox_kernel::OpenFlags::rdonly(), 0),
            Verdict::Deny,
            Some(Errno::EACCES),
            Some(trace),
        );
        ring.record(
            "kerberos:fred@nd.edu",
            &Syscall::Mkdir("/box/fred".into(), 0o755),
            Verdict::ReserveAmplified,
            None,
            None,
        );
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].identity, "kerberos:fred@nd.edu");
        assert_eq!(snap[0].syscall, "open");
        assert_eq!(snap[0].path.as_deref(), Some("/box/secret"));
        assert_eq!(snap[0].verdict, Verdict::Deny);
        assert_eq!(snap[0].errno, Some(Errno::EACCES));
        assert_eq!(snap[0].trace, Some(trace));
        assert_eq!(snap[1].verdict.as_str(), "reserve-amplified");
        assert_eq!(snap[1].errno, None);
        assert_eq!(snap[1].trace, None);
    }

    #[test]
    fn snapshot_since_tails_incrementally() {
        let ring = AuditRing::new(8);
        for i in 0..12u64 {
            ring.record(
                "fred",
                &Syscall::Stat(format!("/f{i}")),
                Verdict::Allow,
                None,
                None,
            );
        }
        // The ring holds seqs 4..12. A cursor inside the window tails
        // only the unseen suffix...
        let tail = ring.snapshot_since(9);
        assert_eq!(tail.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![9, 10, 11]);
        // ...a cursor older than the window reveals the gap (first seq
        // returned > cursor) instead of silently resuming...
        let all = ring.snapshot_since(0);
        assert_eq!(all.first().unwrap().seq, 4);
        // ...and a cursor at the write head returns nothing.
        assert!(ring.snapshot_since(ring.total_recorded()).is_empty());
    }

    #[test]
    fn two_path_calls_keep_both_names() {
        assert_eq!(
            call_path(&Syscall::Rename("/a".into(), "/b".into())).as_deref(),
            Some("/a -> /b")
        );
        assert_eq!(call_path(&Syscall::Getpid), None);
    }
}
