//! Creating and running identity boxes.

use crate::aclfs;
use crate::audit::AuditRing;
use crate::policy::{IdentityBoxPolicy, PolicyStats};
use idbox_acl::Acl;
use idbox_interpose::{GuestCtx, SharedKernel, Supervisor, TraceSink};
use idbox_kernel::Pid;
use idbox_types::{CostModel, Identity, SysResult, TrapCostReport};
use idbox_vfs::Cred;
use std::sync::Arc;

/// Configuration of an identity box.
#[derive(Debug, Clone)]
pub struct BoxOptions {
    /// Where visitor home directories are provisioned.
    pub home_root: String,
    /// Cache parsed ACLs (validated by mtime). On by default; the
    /// ablation bench turns it off.
    pub cache_acls: bool,
    /// The cost model for the interposition supervisor.
    pub cost_model: CostModel,
    /// Record every trapped call for forensic review (Section 9's
    /// "recording the objects accessed and the activities taken").
    pub audit: bool,
    /// A (typically server-wide) ring receiving every policy decision —
    /// identity, syscall, path, verdict, errno. Unlike the forensic
    /// trace this is bounded, so it is safe to leave attached forever.
    pub audit_ring: Option<Arc<AuditRing>>,
    /// The current-trace cell of the serving session. When attached,
    /// audit events and slow-op spans carry the trace id of the RPC
    /// being served.
    pub trace: Option<Arc<idbox_obs::TraceCell>>,
    /// A (typically server-wide) per-identity metrics registry. When
    /// attached, this box's supervisors count syscalls, bytes moved,
    /// denials, and reserve amplifications under the boxed identity.
    pub metrics: Option<Arc<idbox_obs::IdentityMetrics>>,
    /// A (typically server-wide) ring receiving dispatch/policy spans
    /// that crossed the slow-op threshold. Only consulted when
    /// `metrics` is also attached.
    pub slow_ops: Option<Arc<idbox_obs::SlowOpLog>>,
}

impl Default for BoxOptions {
    fn default() -> Self {
        BoxOptions {
            home_root: "/home/boxes".to_string(),
            cache_acls: true,
            cost_model: CostModel::calibrated(),
            audit: false,
            audit_ring: None,
            trace: None,
            metrics: None,
            slow_ops: None,
        }
    }
}

/// An identity box: a named protection domain created on the fly, with
/// no reference to any account database (paper, Section 3).
///
/// Creating a box provisions a fresh home directory (ACL granting the
/// visitor full control) and a private copy of `/etc/passwd` whose first
/// entry is the visiting identity. [`IdentityBox::supervisor`] then
/// yields an interposed supervisor enforcing the box policy;
/// [`IdentityBox::run`] is the one-call convenience that the
/// `parrot_identity_box` command-line wraps.
pub struct IdentityBox {
    kernel: SharedKernel,
    identity: Identity,
    sup_cred: Cred,
    home: String,
    passwd_copy: String,
    options: BoxOptions,
    stats: Arc<PolicyStats>,
    audit: Option<TraceSink>,
}

impl IdentityBox {
    /// Create a box for `identity`, supervised by the Unix user
    /// `sup_cred`, with default options.
    pub fn create(
        kernel: SharedKernel,
        identity: impl Into<Identity>,
        sup_cred: Cred,
    ) -> SysResult<Self> {
        IdentityBox::with_options(kernel, identity, sup_cred, BoxOptions::default())
    }

    /// Create a box with explicit options.
    pub fn with_options(
        kernel: SharedKernel,
        identity: impl Into<Identity>,
        sup_cred: Cred,
        options: BoxOptions,
    ) -> SysResult<Self> {
        let identity = identity.into();
        let (home, passwd_copy) = {
            let mut k = kernel.lock();
            let root = k.vfs().root();
            // The home root is world-writable system furniture (like
            // /tmp): any unprivileged user may provision boxes under it.
            // Created once, as a side effect of the first box.
            k.vfs_mut()
                .mkdir_all(root, &options.home_root, 0o777, &Cred::ROOT)?;
            // Fresh home directory with an ACL giving the visitor
            // complete access (Figure 2's "mydata" directory).
            let home = format!("{}/{}", options.home_root, identity.home_component());
            let home_ino = match k.vfs_mut().mkdir(root, &home, 0o755, &sup_cred) {
                Ok(ino) => ino,
                // Returning visitor: the home (and its ACL) already exist.
                Err(idbox_types::Errno::EEXIST) => {
                    k.vfs().resolve(root, &home, true, &sup_cred)?
                }
                Err(e) => return Err(e),
            };
            aclfs::write_acl(k.vfs_mut(), home_ino, &Acl::owner(&identity), &sup_cred)?;
            // Private passwd copy: visiting identity first, then the
            // system entries. Neither plays any role in access control.
            let system = k.accounts().passwd_file();
            let passwd = format!(
                "{}:x:{}:{}:identity box visitor:{}:/bin/sh\n{}",
                identity.as_str(),
                sup_cred.uid,
                sup_cred.gid,
                home,
                system
            );
            let passwd_copy = format!("{home}/.passwd");
            k.vfs_mut()
                .write_file(root, &passwd_copy, passwd.as_bytes(), &sup_cred)?;
            (home, passwd_copy)
        };
        let policy = IdentityBoxPolicy::new(
            identity.clone(),
            sup_cred,
            passwd_copy.clone(),
            options.cache_acls,
        );
        let stats = policy.stats();
        let audit = options.audit.then(TraceSink::new);
        Ok(IdentityBox {
            kernel,
            identity,
            sup_cred,
            home,
            passwd_copy,
            options,
            stats,
            audit,
        })
    }

    /// The boxed identity.
    pub fn identity(&self) -> &Identity {
        &self.identity
    }

    /// The visitor's provisioned home directory.
    pub fn home(&self) -> &str {
        &self.home
    }

    /// Path of the private passwd copy.
    pub fn passwd_copy(&self) -> &str {
        &self.passwd_copy
    }

    /// The shared kernel.
    pub fn kernel(&self) -> &SharedKernel {
        &self.kernel
    }

    /// Policy counters (checks / denials / rewrites / cache hits).
    pub fn stats(&self) -> &Arc<PolicyStats> {
        &self.stats
    }

    /// The forensic audit log (present when `BoxOptions::audit` is set).
    /// Records accumulate across every supervisor this box spawns.
    pub fn audit(&self) -> Option<&TraceSink> {
        self.audit.as_ref()
    }

    /// The policy-decision audit ring, when one was attached through
    /// [`BoxOptions::audit_ring`].
    pub fn audit_ring(&self) -> Option<&Arc<AuditRing>> {
        self.options.audit_ring.as_ref()
    }

    /// Build an interposed supervisor enforcing this box.
    pub fn supervisor(&self) -> Supervisor {
        let mut policy = IdentityBoxPolicy::new(
            self.identity.clone(),
            self.sup_cred,
            self.passwd_copy.clone(),
            self.options.cache_acls,
        );
        policy.use_stats(Arc::clone(&self.stats));
        if let Some(ring) = &self.options.audit_ring {
            policy.use_audit(Arc::clone(ring));
        }
        if let Some(cell) = &self.options.trace {
            policy.use_trace(Arc::clone(cell));
        }
        let obs = self.options.metrics.as_ref().map(|registry| {
            let counters = registry.handle(self.identity.as_str());
            policy.use_metrics(Arc::clone(&counters));
            idbox_interpose::ObsHooks {
                identity: self.identity.as_str().to_string(),
                counters,
                // Without a slow-op ring, spans have nowhere to go: use
                // a never-recording stub so counters still accumulate.
                slow_ops: self
                    .options
                    .slow_ops
                    .clone()
                    .unwrap_or_else(|| Arc::new(idbox_obs::SlowOpLog::new(1, u64::MAX))),
                trace: self
                    .options
                    .trace
                    .clone()
                    .unwrap_or_else(|| Arc::new(idbox_obs::TraceCell::new())),
            }
        });
        let mut sup = Supervisor::interposed(
            Arc::clone(&self.kernel),
            Box::new(policy),
            self.options.cost_model,
        );
        if let Some(sink) = &self.audit {
            sup.attach_trace(sink.clone());
        }
        if let Some(hooks) = obs {
            sup.attach_obs(hooks);
        }
        sup
    }

    /// Spawn a kernel process inside the box: it runs under the
    /// supervising user's uid, starts in the visitor's home, and carries
    /// the visiting identity.
    pub fn spawn_process(&self, comm: &str) -> SysResult<Pid> {
        let k = self.kernel.lock();
        let pid = k.spawn(self.sup_cred, &self.home, comm)?;
        k.set_identity(pid, self.identity.clone())?;
        Ok(pid)
    }

    /// Run a guest program inside the box to completion. Returns the
    /// exit code and the trap-cost report of its supervisor.
    pub fn run(
        &self,
        comm: &str,
        prog: impl FnOnce(&mut GuestCtx<'_>) -> i32,
    ) -> SysResult<(i32, TrapCostReport)> {
        let pid = self.spawn_process(comm)?;
        let mut sup = self.supervisor();
        let mut ctx = GuestCtx::new(&mut sup, pid);
        let code = prog(&mut ctx);
        ctx.exit(code);
        Ok((code, sup.cost_report()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_kernel::{Kernel, OpenFlags};
    use idbox_types::Errno;

    fn kernel_with_dthain() -> (SharedKernel, Cred) {
        let mut k = Kernel::new();
        k.accounts_mut()
            .add(idbox_kernel::Account::new("dthain", 1000, 1000))
            .unwrap();
        let root = k.vfs().root();
        k.vfs_mut()
            .mkdir(root, "/home/dthain", 0o700, &Cred::ROOT)
            .unwrap();
        k.vfs_mut()
            .chown(root, "/home/dthain", 1000, 1000, &Cred::ROOT)
            .unwrap();
        k.sync_passwd_file();
        (idbox_interpose::share(k), Cred::new(1000, 1000))
    }

    #[test]
    fn create_provisions_home_and_passwd() {
        let (kernel, sup) = kernel_with_dthain();
        let b = IdentityBox::create(kernel.clone(), "Freddy", sup).unwrap();
        assert_eq!(b.home(), "/home/boxes/Freddy");
        let mut k = kernel.lock();
        let root = k.vfs().root();
        let st = k.vfs().stat(root, b.home(), true, &sup).unwrap();
        assert!(st.is_dir());
        let passwd = k.vfs_mut().read_file(root, b.passwd_copy(), &sup).unwrap();
        let text = String::from_utf8(passwd).unwrap();
        assert!(text.starts_with("Freddy:x:1000:1000:"));
        assert!(text.contains("root:x:0:0"));
    }

    #[test]
    fn figure2_transcript_semantics() {
        // dthain creates `secret` in his home; Freddy's box denies it but
        // allows work in Freddy's fresh home.
        let (kernel, sup) = kernel_with_dthain();
        {
            let mut k = kernel.lock();
            let root = k.vfs().root();
            k.vfs_mut()
                .write_file(root, "/home/dthain/secret", b"secret!", &sup)
                .unwrap();
            k.vfs_mut()
                .chmod(root, "/home/dthain/secret", 0o600, &sup)
                .unwrap();
        }
        let b = IdentityBox::create(kernel.clone(), "Freddy", sup).unwrap();
        let (code, report) = b
            .run("tcsh", |ctx| {
                // whoami: the new syscall reports the boxed identity.
                assert_eq!(ctx.get_user_name().unwrap().as_str(), "Freddy");
                // cat ~dthain/secret: permission denied.
                assert_eq!(
                    ctx.open("/home/dthain/secret", OpenFlags::rdonly(), 0),
                    Err(Errno::EACCES)
                );
                // vi mydata in the fresh home: allowed by its ACL.
                ctx.write_file("/home/boxes/Freddy/mydata", b"freddy's data")
                    .unwrap();
                assert_eq!(
                    ctx.read_file("/home/boxes/Freddy/mydata").unwrap(),
                    b"freddy's data"
                );
                0
            })
            .unwrap();
        assert_eq!(code, 0);
        assert!(report.traps > 0, "the box must actually interpose");
    }

    #[test]
    fn whoami_via_private_passwd() {
        let (kernel, sup) = kernel_with_dthain();
        let b = IdentityBox::create(kernel, "Anonymous429", sup).unwrap();
        b.run("whoami", |ctx| {
            let passwd = ctx.read_file("/etc/passwd").unwrap();
            let text = String::from_utf8(passwd).unwrap();
            // The first entry is the visiting identity: whoami-style
            // tools produce sensible output.
            assert!(text.starts_with("Anonymous429:x:"));
            0
        })
        .unwrap();
    }

    #[test]
    fn two_boxes_isolated_from_each_other() {
        let (kernel, sup) = kernel_with_dthain();
        let fred = IdentityBox::create(kernel.clone(), "Fred", sup).unwrap();
        let george = IdentityBox::create(kernel.clone(), "George", sup).unwrap();
        fred.run("sh", |ctx| {
            ctx.write_file("/home/boxes/Fred/private", b"fred's").unwrap();
            0
        })
        .unwrap();
        george
            .run("sh", |ctx| {
                // George cannot read Fred's home (ACL names only Fred).
                assert_eq!(
                    ctx.read_file("/home/boxes/Fred/private"),
                    Err(Errno::EACCES)
                );
                0
            })
            .unwrap();
    }

    #[test]
    fn sharing_via_acl_admin() {
        let (kernel, sup) = kernel_with_dthain();
        let fred = IdentityBox::create(kernel.clone(), "Fred", sup).unwrap();
        let george = IdentityBox::create(kernel.clone(), "George", sup).unwrap();
        // Fred, holding A in his home, extends read+list to George by
        // editing the ACL file through ordinary file I/O.
        fred.run("sh", |ctx| {
            ctx.write_file("/home/boxes/Fred/shared.txt", b"for george")
                .unwrap();
            let acl = ctx.read_file("/home/boxes/Fred/.__acl").unwrap();
            let mut text = String::from_utf8(acl).unwrap();
            text.push_str("George rl\n");
            ctx.write_file("/home/boxes/Fred/.__acl", text.as_bytes())
                .unwrap();
            0
        })
        .unwrap();
        george
            .run("sh", |ctx| {
                assert_eq!(
                    ctx.read_file("/home/boxes/Fred/shared.txt").unwrap(),
                    b"for george"
                );
                // Read+list only: no writing.
                assert_eq!(
                    ctx.write_file("/home/boxes/Fred/intruder", b"x"),
                    Err(Errno::EACCES)
                );
                0
            })
            .unwrap();
    }

    #[test]
    fn return_to_stored_data() {
        // The "allow return" property of Figure 1: a visitor stores data,
        // leaves, and a later session under the same identity finds it.
        let (kernel, sup) = kernel_with_dthain();
        {
            let b = IdentityBox::create(kernel.clone(), "Fred", sup).unwrap();
            b.run("job1", |ctx| {
                ctx.write_file("/home/boxes/Fred/results.dat", b"run 1")
                    .unwrap();
                0
            })
            .unwrap();
        }
        // A brand-new box for the same identity sees the same home.
        let b2 = IdentityBox::create(kernel, "Fred", sup).unwrap();
        b2.run("job2", |ctx| {
            assert_eq!(
                ctx.read_file("/home/boxes/Fred/results.dat").unwrap(),
                b"run 1"
            );
            0
        })
        .unwrap();
    }

    #[test]
    fn identity_inherited_across_fork() {
        let (kernel, sup) = kernel_with_dthain();
        let b = IdentityBox::create(kernel, "Fred", sup).unwrap();
        b.run("parent", |ctx| {
            let child = ctx
                .run_child(|c| {
                    assert_eq!(c.get_user_name().unwrap().as_str(), "Fred");
                    0
                })
                .unwrap();
            let (reaped, code) = ctx.wait().unwrap();
            assert_eq!(reaped, child);
            assert_eq!(code, 0);
            0
        })
        .unwrap();
    }
}
