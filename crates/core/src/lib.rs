//! The identity box.
//!
//! An identity box is a secure execution space in which every process and
//! resource is associated with an external, free-form identity — a name
//! like `globus:/O=UnivNowhere/CN=Fred` — that need not have any
//! relationship to the local account database (paper, Section 3).
//!
//! The box is implemented as a [`idbox_interpose::SyscallPolicy`] plugged into the
//! interposition supervisor:
//!
//! * **ACL enforcement** — every path-naming call is checked against the
//!   `.__acl` file of the directory that *really* contains the target
//!   (symlinks followed to their destination; hard links to unreadable
//!   files refused — the "indirect paths" pitfall of Section 6);
//! * **`nobody` fallback** — in directories without an ACL, Unix
//!   permissions are enforced as if the visitor were the account
//!   `nobody`, protecting the supervising user's data;
//! * **reserve right** — `mkdir` in a directory where the visitor holds
//!   only `v(rights)` succeeds and stamps the fresh directory with an ACL
//!   naming the visitor literally (Section 4's amplification);
//! * **ACL inheritance** — ordinary `mkdir` copies the parent's ACL;
//! * **passwd virtualization** — accesses to `/etc/passwd` are redirected
//!   to a private copy whose first entry is the visiting identity, so
//!   `whoami` makes sense inside the box;
//! * **same-identity signals** — a boxed process may signal only
//!   processes carrying the same identity;
//! * **`get_user_name`** — the new system call reporting the caller's
//!   high-level name.
//!
//! The supervising user needs no privileges: the box runs under their
//! ordinary uid, and with respect to visitors they are effectively root.

mod aclfs;
mod audit;
mod boxer;
mod policy;

pub use aclfs::{effective_rights, read_acl, write_acl, EffectiveRights};
pub use audit::{AuditEvent, AuditRing, Verdict, AUDIT_RING_DEFAULT_CAP};
pub use boxer::{BoxOptions, IdentityBox};
pub use policy::IdentityBoxPolicy;
