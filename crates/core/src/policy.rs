//! The identity box as a syscall policy.

use crate::aclfs::{self, EffectiveRights};
use crate::audit::{AuditRing, Verdict};
use idbox_acl::{Acl, Rights};
use idbox_interpose::{PolicyDecision, SyscallPolicy};
use idbox_kernel::{Kernel, Pid, Syscall, SysRet};
use idbox_types::{Errno, Identity, SysResult, ACL_FILE_NAME};
use idbox_vfs::{Access, Cred, Ino};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Upper bound on each policy cache (ACL contents and verdicts). Both
/// are keyed by directory inode, and inodes of removed directories can
/// be recycled, so the maps must not grow without limit on a long-lived
/// server; past the cap an arbitrary entry is evicted (dropping a cache
/// entry is always safe — the next check re-reads from the filesystem).
const ACL_CACHE_CAP: usize = 1024;

/// Evict-then-insert keeping `cache` at or under [`ACL_CACHE_CAP`].
fn bounded_insert<V>(cache: &mut HashMap<Ino, V>, key: Ino, value: V) {
    if cache.len() >= ACL_CACHE_CAP && !cache.contains_key(&key) {
        let victim = cache.keys().next().copied();
        if let Some(victim) = victim {
            cache.remove(&victim);
        }
    }
    cache.insert(key, value);
}

/// Counters describing the box's policy activity.
#[derive(Debug, Default)]
pub struct PolicyStats {
    /// Path calls checked against ACLs.
    pub checks: AtomicU64,
    /// Calls denied.
    pub denials: AtomicU64,
    /// Calls rewritten (passwd redirection).
    pub rewrites: AtomicU64,
    /// Cache hits across both policy caches (when caching is enabled):
    /// a verdict served without re-deriving it, or an ACL text served
    /// without re-parsing it.
    pub cache_hits: AtomicU64,
    /// Effective-rights verdicts served straight from the
    /// generation-keyed verdict cache.
    pub verdict_hits: AtomicU64,
    /// Effective-rights verdicts that had to re-read the directory's
    /// ACL (cold, evicted, or invalidated by a filesystem change).
    pub verdict_misses: AtomicU64,
}

impl PolicyStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot (checks, denials, rewrites, cache hits).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.checks.load(Ordering::Relaxed),
            self.denials.load(Ordering::Relaxed),
            self.rewrites.load(Ordering::Relaxed),
            self.cache_hits.load(Ordering::Relaxed),
        )
    }

    /// Snapshot of the verdict cache alone: (hits, misses).
    pub fn verdict_snapshot(&self) -> (u64, u64) {
        (
            self.verdict_hits.load(Ordering::Relaxed),
            self.verdict_misses.load(Ordering::Relaxed),
        )
    }
}

/// What `post` must do after a successful `mkdir`.
#[derive(Debug, Clone)]
enum PendingMkdir {
    /// Created under the reserve right: stamp a fresh ACL naming the
    /// visitor literally with the granted rights.
    Reserved(Rights),
    /// Ordinary creation: the new directory inherits this parent ACL
    /// (when the parent had one).
    Inherit(Option<Acl>),
}

/// The identity box policy: ACLs first, `nobody` fallback second.
pub struct IdentityBoxPolicy {
    identity: Identity,
    sup_cred: Cred,
    /// Absolute path of the private passwd copy.
    passwd_copy: String,
    cache_acls: bool,
    /// ACL *content* cache: directory inode → (vfs change generation,
    /// parsed ACL — `None` for "no ACL file here"). An entry is valid
    /// only while the filesystem's change generation is unchanged, so
    /// any mutation (including a `setacl` rewrite, an `unlink`, or a
    /// `rename` of the ACL file itself) invalidates it wholesale — no
    /// mtime-tick collisions, no eager eviction bookkeeping, and
    /// recycled inodes can never revive a dead ACL (the recycling
    /// mutation bumped the generation). Behind its own small mutex so
    /// lookups work through `&self` — the concurrent read path rules
    /// under a *shared* kernel borrow. Bounded by [`ACL_CACHE_CAP`].
    acl_cache: Mutex<HashMap<Ino, (u64, Option<Acl>)>>,
    /// Verdict cache: directory inode → (vfs change generation, this
    /// identity's [`EffectiveRights`] there). Sits in front of the
    /// content cache: a hit skips the `.__acl` resolution *and* the
    /// rights derivation. The full decision for any rights mask is a
    /// pure function of the cached value (`rights.contains(needed)`),
    /// so caching per-directory effective rights caches every
    /// `(identity, dir, mask)` verdict at once — while the
    /// Unix-as-nobody fallback, whose answer also depends on the
    /// *target* file's mode, keeps running live. Same generation
    /// keying, same mutex discipline, same bound.
    verdict_cache: Mutex<HashMap<Ino, (u64, EffectiveRights)>>,
    pending_mkdir: Option<(String, PendingMkdir)>,
    stats: Arc<PolicyStats>,
    /// Optional audit ring: when attached, every ruling made through
    /// [`SyscallPolicy::check`] is recorded with identity, syscall,
    /// path, verdict, and errno.
    audit: Option<Arc<AuditRing>>,
    /// Optional current-trace cell (shared with the serving session):
    /// when attached, every audit event is stamped with the trace id of
    /// the RPC being served, making rulings joinable to requests.
    trace: Option<Arc<idbox_obs::TraceCell>>,
    /// Optional per-identity counters: denials and reserve
    /// amplifications are bumped as they are ruled.
    metrics: Option<Arc<idbox_obs::IdentityCounters>>,
}

impl IdentityBoxPolicy {
    /// Build a policy enforcing `identity` with the supervising user's
    /// credential and a passwd-copy path for redirection.
    pub fn new(
        identity: Identity,
        sup_cred: Cred,
        passwd_copy: impl Into<String>,
        cache_acls: bool,
    ) -> Self {
        IdentityBoxPolicy {
            identity,
            sup_cred,
            passwd_copy: passwd_copy.into(),
            cache_acls,
            acl_cache: Mutex::new(HashMap::new()),
            verdict_cache: Mutex::new(HashMap::new()),
            pending_mkdir: None,
            stats: Arc::new(PolicyStats::default()),
            audit: None,
            trace: None,
            metrics: None,
        }
    }

    /// A handle to the policy's counters (remains valid while the
    /// supervisor runs).
    pub fn stats(&self) -> Arc<PolicyStats> {
        Arc::clone(&self.stats)
    }

    /// Share a counters block with another owner (e.g. the
    /// [`IdentityBox`](crate::IdentityBox) aggregating over all the
    /// supervisors it spawns).
    pub fn use_stats(&mut self, stats: Arc<PolicyStats>) {
        self.stats = stats;
    }

    /// Attach an audit ring (typically shared server-wide) that will
    /// receive every ruling this policy makes.
    pub fn use_audit(&mut self, ring: Arc<AuditRing>) {
        self.audit = Some(ring);
    }

    /// Attach a current-trace cell (shared with the serving session);
    /// audit events are thereafter stamped with the RPC's trace id.
    pub fn use_trace(&mut self, cell: Arc<idbox_obs::TraceCell>) {
        self.trace = Some(cell);
    }

    /// Attach this identity's counters; denials and reserve
    /// amplifications are counted as they are ruled.
    pub fn use_metrics(&mut self, counters: Arc<idbox_obs::IdentityCounters>) {
        self.metrics = Some(counters);
    }

    /// Record one ruling into the attached ring, if any. Called from the
    /// `check` trait entry point — *not* from the
    /// (recursive) decision procedure — so one guest call yields exactly
    /// one event.
    fn record_audit(&self, call: &Syscall, decision: &PolicyDecision) {
        let (verdict, errno) = match decision {
            PolicyDecision::Deny(e) => (Verdict::Deny, Some(*e)),
            PolicyDecision::Allow | PolicyDecision::Rewrite(_) => {
                // A mkdir allowed purely through the reserve right has
                // just scheduled a reserved ACL stamp; surface the
                // amplification in the audit trail.
                if matches!(
                    self.pending_mkdir,
                    Some((_, PendingMkdir::Reserved(_)))
                ) {
                    (Verdict::ReserveAmplified, None)
                } else {
                    (Verdict::Allow, None)
                }
            }
        };
        if let Some(counters) = &self.metrics {
            match verdict {
                Verdict::Deny => counters.bump_denial(),
                Verdict::ReserveAmplified => counters.bump_reserve_amplification(),
                Verdict::Allow => {}
            }
        }
        let Some(ring) = &self.audit else { return };
        let trace = self.trace.as_ref().and_then(|cell| cell.get());
        ring.record(self.identity.as_str(), call, verdict, errno, trace);
    }

    /// The boxed identity.
    pub fn identity(&self) -> &Identity {
        &self.identity
    }

    // ------------------------------------------------------------------
    // ACL machinery
    // ------------------------------------------------------------------

    /// Effective rights of the boxed identity in directory `dir`, using
    /// the generation-keyed verdict cache when enabled.
    ///
    /// Cached and uncached modes must be indistinguishable to the guest:
    /// the cached path derives its answer from [`Self::cached_acl`],
    /// which mirrors [`aclfs::read_acl`]'s error semantics exactly —
    /// only `ENOENT` means "no ACL here" (Unix-as-nobody fallback); any
    /// other resolve failure propagates (and is never cached), and the
    /// caller denies — failing *closed* rather than open. Both caches
    /// validate against [`idbox_vfs::Vfs::change_generation`], which
    /// every mutating operation bumps, so no filesystem change — ACL
    /// rewrite, unlink, rename, or an inode recycle after any of those —
    /// can be served stale.
    fn rights_in(&self, kernel: &Kernel, dir: Ino) -> SysResult<EffectiveRights> {
        let vfs = kernel.vfs();
        if !self.cache_acls {
            return aclfs::effective_rights(vfs, dir, &self.identity, &self.sup_cred);
        }
        let generation = vfs.change_generation();
        if let Some((cached_gen, er)) = self.verdict_cache.lock().get(&dir) {
            if *cached_gen == generation {
                PolicyStats::bump(&self.stats.cache_hits);
                PolicyStats::bump(&self.stats.verdict_hits);
                if let Some(counters) = &self.metrics {
                    counters.bump_verdict_hit();
                }
                return Ok(er.clone());
            }
        }
        PolicyStats::bump(&self.stats.verdict_misses);
        if let Some(counters) = &self.metrics {
            counters.bump_verdict_miss();
        }
        let er = match self.cached_acl(vfs, dir, generation)? {
            Some(acl) => EffectiveRights::Acl(
                acl.rights_for(&self.identity),
                acl.reserve_grant_for(&self.identity),
            ),
            None => EffectiveRights::UnixAsNobody,
        };
        bounded_insert(&mut self.verdict_cache.lock(), dir, (generation, er.clone()));
        Ok(er)
    }

    /// The directory's parsed ACL (or `None` when it has no ACL file)
    /// through the generation-keyed content cache. Lookup failures are
    /// propagated and never cached, so an error path re-checks the
    /// filesystem every time, exactly like the uncached read.
    fn cached_acl(&self, vfs: &idbox_vfs::Vfs, dir: Ino, generation: u64) -> SysResult<Option<Acl>> {
        if !self.cache_acls {
            return aclfs::read_acl(vfs, dir, &self.sup_cred);
        }
        if let Some((cached_gen, acl)) = self.acl_cache.lock().get(&dir) {
            if *cached_gen == generation {
                PolicyStats::bump(&self.stats.cache_hits);
                return Ok(acl.clone());
            }
        }
        let acl = aclfs::read_acl(vfs, dir, &self.sup_cred)?;
        bounded_insert(&mut self.acl_cache.lock(), dir, (generation, acl.clone()));
        Ok(acl)
    }

    /// Resolve a path to (containing dir, final name, target inode),
    /// following symlinks to where the object really lives.
    fn locate(
        &self,
        kernel: &Kernel,
        pid: Pid,
        path: &str,
    ) -> SysResult<(Ino, String, Option<Ino>)> {
        let cwd = kernel.process(pid)?.cwd;
        kernel.vfs().resolve_entry(cwd, path, &self.sup_cred)
    }

    /// The core check: does the boxed identity hold `needed` on the
    /// directory containing `path`? In ACL-less directories, fall back to
    /// a Unix check as `nobody` using `unix_want` against the target (or,
    /// when the target does not exist yet, against the directory itself
    /// with `unix_dir_want`).
    fn permit(
        &mut self,
        kernel: &Kernel,
        pid: Pid,
        path: &str,
        needed: Rights,
        unix_want: Access,
        unix_dir_want: Option<Access>,
    ) -> PolicyDecision {
        PolicyStats::bump(&self.stats.checks);
        let (dir, name, target) = match self.locate(kernel, pid, path) {
            Ok(x) => x,
            // Unresolvable paths flow through: the kernel produces the
            // natural error (ENOENT, ELOOP, ...) with no rights leaked.
            Err(_) => return PolicyDecision::Allow,
        };
        // The ACL file itself is special: reads need LIST, any mutation
        // needs ADMIN (otherwise a visitor with `w` could grant
        // themselves everything).
        let needed = if name == ACL_FILE_NAME
            && needed & (Rights::WRITE | Rights::DELETE) != Rights::NONE
        {
            needed | Rights::ADMIN
        } else {
            needed
        };
        let er = match self.rights_in(kernel, dir) {
            Ok(er) => er,
            Err(_) => return PolicyDecision::Deny(Errno::EACCES),
        };
        let _ = (dir, target);
        let ok = match &er {
            EffectiveRights::Acl(rights, _) => rights.contains(needed),
            EffectiveRights::UnixAsNobody => {
                self.nobody_allows(kernel, pid, path, unix_want, unix_dir_want)
            }
        };
        if ok {
            PolicyDecision::Allow
        } else {
            PolicyStats::bump(&self.stats.denials);
            PolicyDecision::Deny(Errno::EACCES)
        }
    }

    /// The full `nobody` fallback: resolve the path *as nobody* (so
    /// traversal permissions apply, exactly as they would to a real
    /// `nobody` process) and check the operation's access bits on the
    /// target — or, for creation, on the containing directory.
    fn nobody_allows(
        &self,
        kernel: &Kernel,
        pid: Pid,
        path: &str,
        unix_want: Access,
        unix_dir_want: Option<Access>,
    ) -> bool {
        let Ok(proc_entry) = kernel.process(pid) else {
            return false;
        };
        let cwd = proc_entry.cwd;
        let vfs = kernel.vfs();
        let nobody = aclfs::nobody_cred();
        match vfs.resolve(cwd, path, true, &nobody) {
            Ok(ino) => vfs.check_access(ino, &nobody, unix_want).is_ok(),
            Err(Errno::ENOENT) => match unix_dir_want {
                Some(want) => match vfs.resolve_parent(cwd, path, &nobody) {
                    Ok((dir, _)) => vfs.check_access(dir, &nobody, want).is_ok(),
                    Err(_) => false,
                },
                None => false,
            },
            Err(_) => false,
        }
    }

    /// "Either of these rights suffices" — deletion is allowed to holders
    /// of `d` or full `w` (the paper's examples grant `rwlax` and expect
    /// cleanup to work).
    #[allow(clippy::too_many_arguments)] // mirrors permit() plus the alternative right
    fn permit_either(
        &mut self,
        kernel: &Kernel,
        pid: Pid,
        path: &str,
        a: Rights,
        b: Rights,
        unix_want: Access,
        unix_dir_want: Option<Access>,
    ) -> PolicyDecision {
        match self.permit(kernel, pid, path, a, unix_want, unix_dir_want) {
            PolicyDecision::Deny(_) => {
                // Retry under the alternative right (stat counters count
                // this as a second check, which it is).
                self.permit(kernel, pid, path, b, unix_want, unix_dir_want)
            }
            other => other,
        }
    }

    /// The LIST check against a directory's *own* ACL (readdir/chdir).
    /// Falls back to the containing directory when the path does not
    /// name a directory (the kernel will report the real error).
    fn permit_dir_itself(
        &mut self,
        kernel: &Kernel,
        pid: Pid,
        path: &str,
        unix_want: Access,
    ) -> PolicyDecision {
        PolicyStats::bump(&self.stats.checks);
        let target = match self.locate(kernel, pid, path) {
            Ok((_, _, Some(ino))) => ino,
            // Missing or unresolvable: the kernel produces the error.
            _ => return PolicyDecision::Allow,
        };
        let is_dir = kernel
            .vfs()
            .fstat(target)
            .map(|st| st.is_dir())
            .unwrap_or(false);
        if !is_dir {
            return self.permit(kernel, pid, path, Rights::LIST, unix_want, None);
        }
        let er = match self.rights_in(kernel, target) {
            Ok(er) => er,
            Err(_) => return PolicyDecision::Deny(Errno::EACCES),
        };
        let ok = match &er {
            EffectiveRights::Acl(rights, _) => rights.contains(Rights::LIST),
            EffectiveRights::UnixAsNobody => {
                self.nobody_allows(kernel, pid, path, unix_want, None)
            }
        };
        if ok {
            PolicyDecision::Allow
        } else {
            PolicyStats::bump(&self.stats.denials);
            PolicyDecision::Deny(Errno::EACCES)
        }
    }

    /// The reserved-directory self-removal rule: an empty directory may
    /// be removed by an identity holding `d` — or full control (`w`+`a`)
    /// — in the directory's *own* ACL, even without rights in the
    /// parent. `deny` is returned unchanged when that does not hold.
    fn permit_own_removal(
        &mut self,
        kernel: &Kernel,
        pid: Pid,
        path: &str,
        deny: PolicyDecision,
    ) -> PolicyDecision {
        let Ok((_, _, Some(target))) = self.locate(kernel, pid, path) else {
            return deny;
        };
        let is_dir = kernel
            .vfs()
            .fstat(target)
            .map(|st| st.is_dir())
            .unwrap_or(false);
        if !is_dir {
            return deny;
        }
        match self.rights_in(kernel, target) {
            Ok(EffectiveRights::Acl(rights, _))
                if rights.contains(Rights::DELETE)
                    || rights.contains(Rights::WRITE | Rights::ADMIN) =>
            {
                PolicyDecision::Allow
            }
            _ => deny,
        }
    }

    /// Rewrite `/etc/passwd` accesses to the box's private copy.
    fn rewrite_passwd(&self, call: &Syscall) -> Option<Syscall> {
        let swap = |p: &str| -> Option<String> {
            (p == "/etc/passwd").then(|| self.passwd_copy.clone())
        };
        Some(match call {
            Syscall::Open(p, f, m) => Syscall::Open(swap(p)?, *f, *m),
            Syscall::Stat(p) => Syscall::Stat(swap(p)?),
            Syscall::Lstat(p) => Syscall::Lstat(swap(p)?),
            Syscall::AccessCheck(p, w) => Syscall::AccessCheck(swap(p)?, *w),
            _ => return None,
        })
    }

    /// The mkdir special case: ordinary `w` creates with ACL inheritance;
    /// the reserve right alone creates with a fresh, amplified ACL.
    fn check_mkdir(&mut self, kernel: &Kernel, pid: Pid, path: &str) -> PolicyDecision {
        PolicyStats::bump(&self.stats.checks);
        let (dir, _name, _target) = match self.locate(kernel, pid, path) {
            Ok(x) => x,
            Err(_) => return PolicyDecision::Allow,
        };
        let er = match self.rights_in(kernel, dir) {
            Ok(er) => er,
            Err(_) => return PolicyDecision::Deny(Errno::EACCES),
        };
        match er {
            EffectiveRights::Acl(rights, grant) => {
                if rights.contains(Rights::WRITE) {
                    let generation = kernel.vfs().change_generation();
                    let parent = self
                        .cached_acl(kernel.vfs(), dir, generation)
                        .ok()
                        .flatten();
                    self.pending_mkdir =
                        Some((path.to_string(), PendingMkdir::Inherit(parent)));
                    PolicyDecision::Allow
                } else if let Some(grant) = grant {
                    self.pending_mkdir =
                        Some((path.to_string(), PendingMkdir::Reserved(grant)));
                    PolicyDecision::Allow
                } else {
                    PolicyStats::bump(&self.stats.denials);
                    PolicyDecision::Deny(Errno::EACCES)
                }
            }
            EffectiveRights::UnixAsNobody => {
                let ok = kernel
                    .vfs()
                    .check_access(dir, &aclfs::nobody_cred(), Access::W.and(Access::X))
                    .is_ok();
                if ok {
                    self.pending_mkdir = Some((path.to_string(), PendingMkdir::Inherit(None)));
                    PolicyDecision::Allow
                } else {
                    PolicyStats::bump(&self.stats.denials);
                    PolicyDecision::Deny(Errno::EACCES)
                }
            }
        }
    }

    /// Hard links: refused unless the boxed identity can read the target
    /// where it really lives (the Section 6 "indirect paths" rule — no
    /// ACL can be checked through the new name afterwards).
    fn check_link(
        &mut self,
        kernel: &Kernel,
        pid: Pid,
        old: &str,
        new: &str,
    ) -> PolicyDecision {
        match self.permit(kernel, pid, old, Rights::READ, Access::R, None) {
            PolicyDecision::Allow => {}
            deny => return deny,
        }
        self.permit(
            kernel,
            pid,
            new,
            Rights::WRITE,
            Access::W,
            Some(Access::W.and(Access::X)),
        )
    }
}

impl IdentityBoxPolicy {
    /// The single decision procedure behind [`SyscallPolicy::check`].
    /// Every rule reads the kernel through a shared borrow, so policy
    /// rulings never force a dispatch path onto the exclusive side of
    /// the kernel's structure lock.
    fn decide(&mut self, kernel: &Kernel, pid: Pid, call: &Syscall) -> PolicyDecision {
        use Syscall::*;
        self.pending_mkdir = None;

        // Passwd virtualization: the rewritten call is then checked like
        // any other (the private copy lives in the box home, which the
        // visitor can read).
        if let Some(rewritten) = self.rewrite_passwd(call) {
            PolicyStats::bump(&self.stats.rewrites);
            return match self.decide(kernel, pid, &rewritten) {
                PolicyDecision::Allow => PolicyDecision::Rewrite(rewritten),
                PolicyDecision::Rewrite(_) => PolicyDecision::Rewrite(rewritten),
                deny => deny,
            };
        }

        let wx = Access::W.and(Access::X);
        match call {
            // Process-local calls carry no object names: always allowed.
            // (Pipes are anonymous, process-private objects: creating one
            // names nothing.)
            Getpid | Getppid | Getuid | Getcwd | Umask(_) | Fork | Exit(_) | Wait
            | SigPending | Pipe | GetUserName | Getenv(_) => PolicyDecision::Allow,

            // fd-based calls were authorized at open time.
            Close(_) | Read(..) | Write(..) | Pread(..) | Preadx(..) | Pwrite(..)
            | Lseek(..) | Dup(_) | Fstat(_) => PolicyDecision::Allow,

            // Signals: only to processes carrying the same identity
            // (paper, Section 3).
            Kill(target, _) => match kernel.process(*target) {
                Ok(t) if t.identity.as_ref() == Some(&self.identity) => {
                    PolicyDecision::Allow
                }
                Ok(_) => {
                    PolicyStats::bump(&self.stats.denials);
                    PolicyDecision::Deny(Errno::EPERM)
                }
                Err(e) => PolicyDecision::Deny(e),
            },

            // stat needs only to *reach* the object under Unix rules
            // (traversal is enforced by the nobody-resolution itself).
            Stat(p) | Lstat(p) | Readlink(p) => {
                self.permit(kernel, pid, p, Rights::LIST, Access::NONE, Some(Access::NONE))
            }
            // Listing or entering a directory is an action on that
            // directory itself: its own ACL (the one governing "files in
            // that directory") is consulted, not its parent's.
            Readdir(p) => self.permit_dir_itself(kernel, pid, p, Access::R),
            Chdir(p) => self.permit_dir_itself(kernel, pid, p, Access::X),

            Open(p, flags, _mode) => {
                let mut needed = Rights::NONE;
                let mut unix = 0u8;
                if flags.read {
                    needed |= Rights::READ;
                    unix |= Access::R.0;
                }
                if flags.write || flags.create || flags.trunc {
                    needed |= Rights::WRITE;
                    unix |= Access::W.0;
                }
                let dir_want = flags.create.then_some(wx);
                self.permit(kernel, pid, p, needed, Access(unix), dir_want)
            }

            Truncate(p, _) => self.permit(kernel, pid, p, Rights::WRITE, Access::W, None),

            Unlink(p) => self.permit_either(
                kernel,
                pid,
                p,
                Rights::DELETE,
                Rights::WRITE,
                Access::W,
                Some(wx),
            ),

            // rmdir normally needs d (or w) in the parent — but the
            // owner of a *reserved* directory holds rights only inside
            // it, so full control of the directory itself (d, or w+a)
            // also suffices: you may dissolve what you reserved.
            Rmdir(p) => {
                match self.permit_either(
                    kernel,
                    pid,
                    p,
                    Rights::DELETE,
                    Rights::WRITE,
                    Access::W,
                    Some(wx),
                ) {
                    PolicyDecision::Allow => PolicyDecision::Allow,
                    deny => self.permit_own_removal(kernel, pid, p, deny),
                }
            }

            Mkdir(p, _mode) => self.check_mkdir(kernel, pid, p),

            Symlink(_target, linkp) => self.permit(
                kernel,
                pid,
                linkp,
                Rights::WRITE,
                Access::W,
                Some(wx),
            ),

            Link(old, new) => self.check_link(kernel, pid, old, new),

            Rename(old, new) => {
                match self.permit_either(
                    kernel,
                    pid,
                    old,
                    Rights::DELETE,
                    Rights::WRITE,
                    Access::W,
                    Some(wx),
                ) {
                    PolicyDecision::Allow => {}
                    deny => return deny,
                }
                self.permit(kernel, pid, new, Rights::WRITE, Access::W, Some(wx))
            }

            AccessCheck(p, want) => {
                let mut needed = Rights::NONE;
                if want.0 & Access::R.0 != 0 {
                    needed |= Rights::READ;
                }
                if want.0 & Access::W.0 != 0 {
                    needed |= Rights::WRITE;
                }
                if want.0 & Access::X.0 != 0 {
                    needed |= Rights::EXECUTE;
                }
                self.permit(kernel, pid, p, needed, *want, None)
            }

            Exec(p) => self.permit(
                kernel,
                pid,
                p,
                Rights::READ | Rights::EXECUTE,
                Access::R.and(Access::X),
                None,
            ),

            // Unix modes and ownership are meaningless under ACLs; only
            // an administrator of the directory may touch the bits, and
            // ownership changes are refused outright.
            Chmod(p, _) => self.permit(kernel, pid, p, Rights::ADMIN, Access::W, None),
            Chown(..) => {
                PolicyStats::bump(&self.stats.denials);
                PolicyDecision::Deny(Errno::EPERM)
            }
        }
    }
}

impl SyscallPolicy for IdentityBoxPolicy {
    fn name(&self) -> &str {
        "identity-box"
    }

    fn check(&mut self, kernel: &Kernel, pid: Pid, call: &Syscall) -> PolicyDecision {
        // No eager eviction is needed for an unlink/rename of an ACL
        // file: executing the call bumps the filesystem's change
        // generation, which invalidates every cached verdict and ACL
        // before the dead inode can be recycled.
        let decision = self.decide(kernel, pid, call);
        self.record_audit(call, &decision);
        decision
    }

    fn post(
        &mut self,
        kernel: &Kernel,
        pid: Pid,
        call: &Syscall,
        result: &mut SysResult<SysRet>,
    ) {
        // The ACL file is box infrastructure, invisible to the guest: a
        // directory holding nothing else is "empty". When an authorized
        // rmdir fails only because of it, remove it and retry.
        if let (Syscall::Rmdir(path), Err(Errno::ENOTEMPTY)) = (call, &result) {
            if let Ok((_, _, Some(dir))) = self.locate(kernel, pid, path) {
                let vfs = kernel.vfs();
                let only_acl = vfs
                    .readdir(dir, ".", &self.sup_cred)
                    .map(|es| {
                        es.iter()
                            .all(|e| e.name == "." || e.name == ".." || e.name == ACL_FILE_NAME)
                    })
                    .unwrap_or(false);
                if only_acl {
                    // The unlink bumps the change generation, so the
                    // caches drop the directory's ACL on their own.
                    let _ = vfs.unlink(dir, ACL_FILE_NAME, &self.sup_cred);
                    *result = kernel.syscall_shared(pid, call.clone());
                }
            }
        }

        // Stamp the ACL of a directory that was just created.
        if !matches!(call, Syscall::Mkdir(..)) {
            return;
        }
        let Some((path, pending)) = self.pending_mkdir.take() else {
            return;
        };
        if result.is_ok() {
            if let Ok((_, _, Some(new_dir))) = self.locate(kernel, pid, &path) {
                let acl = match pending {
                    PendingMkdir::Reserved(grant) => {
                        Some(Acl::reserved(&self.identity, grant))
                    }
                    PendingMkdir::Inherit(parent) => parent,
                };
                if let Some(acl) = acl {
                    let _ = aclfs::write_acl(kernel.vfs(), new_dir, &acl, &self.sup_cred);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_acl::AclEntry;
    use idbox_kernel::OpenFlags;

    fn setup() -> (Kernel, Pid, IdentityBoxPolicy) {
        let mut k = Kernel::new();
        // Supervising user dthain, uid 1000.
        k.accounts_mut()
            .add(idbox_kernel::Account::new("dthain", 1000, 1000))
            .unwrap();
        let sup = Cred::new(1000, 1000);
        let root = k.vfs().root();
        k.vfs_mut().mkdir(root, "/box", 0o755, &Cred::ROOT).unwrap();
        k.vfs_mut().chown(root, "/box", 1000, 1000, &Cred::ROOT).unwrap();
        let fred = Identity::new("globus:/O=UnivNowhere/CN=Fred");
        let acl = Acl::from_entries([AclEntry::new(fred.as_str(), Rights::FULL)]);
        let dir = k.vfs().resolve(root, "/box", true, &sup).unwrap();
        aclfs::write_acl(k.vfs_mut(), dir, &acl, &sup).unwrap();
        // Private passwd copy.
        k.vfs_mut()
            .write_file(root, "/box/.passwd", b"fred:x:1000:1000:::\n", &sup)
            .unwrap();
        let pid = k.spawn(sup, "/box", "guest").unwrap();
        k.set_identity(pid, fred.clone()).unwrap();
        let policy = IdentityBoxPolicy::new(fred, sup, "/box/.passwd", false);
        (k, pid, policy)
    }

    fn open_r(p: &str) -> Syscall {
        Syscall::Open(p.into(), OpenFlags::rdonly(), 0)
    }

    fn open_w(p: &str) -> Syscall {
        Syscall::Open(p.into(), OpenFlags::wronly_create_trunc(), 0o644)
    }

    #[test]
    fn acl_grants_inside_box() {
        let (k, pid, mut pol) = setup();
        assert_eq!(
            pol.check(&k, pid, &open_w("/box/data")),
            PolicyDecision::Allow
        );
        assert_eq!(
            pol.check(&k, pid, &Syscall::Readdir("/box".into())),
            PolicyDecision::Allow
        );
    }

    #[test]
    fn no_acl_means_nobody_rules() {
        let (mut k, pid, mut pol) = setup();
        let root = k.vfs().root();
        // Supervisor-private file outside any ACL.
        k.vfs_mut()
            .write_file(root, "/home/secret", b"s", &Cred::ROOT)
            .unwrap();
        k.vfs_mut()
            .chmod(root, "/home/secret", 0o600, &Cred::ROOT)
            .unwrap();
        assert_eq!(
            pol.check(&k, pid, &open_r("/home/secret")),
            PolicyDecision::Deny(Errno::EACCES)
        );
        // World-readable file: nobody may read it.
        k.vfs_mut()
            .write_file(root, "/home/public", b"p", &Cred::ROOT)
            .unwrap();
        assert_eq!(
            pol.check(&k, pid, &open_r("/home/public")),
            PolicyDecision::Allow
        );
        // But nobody cannot create anywhere non-world-writable.
        assert_eq!(
            pol.check(&k, pid, &open_w("/home/newfile")),
            PolicyDecision::Deny(Errno::EACCES)
        );
    }

    #[test]
    fn wrong_identity_denied_by_acl() {
        let (k, pid, _) = setup();
        let george = Identity::new("globus:/O=UnivNowhere/CN=George");
        let sup = Cred::new(1000, 1000);
        let mut pol = IdentityBoxPolicy::new(george, sup, "/box/.passwd", false);
        assert_eq!(
            pol.check(&k, pid, &open_r("/box/anything")),
            PolicyDecision::Deny(Errno::EACCES)
        );
    }

    #[test]
    fn passwd_is_rewritten() {
        let (k, pid, mut pol) = setup();
        match pol.check(&k, pid, &open_r("/etc/passwd")) {
            PolicyDecision::Rewrite(Syscall::Open(p, ..)) => {
                assert_eq!(p, "/box/.passwd");
            }
            other => panic!("unexpected {other:?}"),
        }
        match pol.check(&k, pid, &Syscall::Stat("/etc/passwd".into())) {
            PolicyDecision::Rewrite(Syscall::Stat(p)) => assert_eq!(p, "/box/.passwd"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mkdir_with_write_inherits_parent_acl() {
        let (mut k, pid, mut pol) = setup();
        assert_eq!(
            pol.check(&k, pid, &Syscall::Mkdir("/box/sub".into(), 0o755)),
            PolicyDecision::Allow
        );
        let mut result = k.syscall(pid, Syscall::Mkdir("/box/sub".into(), 0o755));
        pol.post(&k, pid, &Syscall::Mkdir("/box/sub".into(), 0o755), &mut result);
        result.unwrap();
        let sup = Cred::new(1000, 1000);
        let root = k.vfs().root();
        let sub = k.vfs().resolve(root, "/box/sub", true, &sup).unwrap();
        let acl = aclfs::read_acl(k.vfs_mut(), sub, &sup).unwrap().unwrap();
        assert!(acl.allows(
            &Identity::new("globus:/O=UnivNowhere/CN=Fred"),
            Rights::FULL
        ));
    }

    #[test]
    fn reserve_right_amplifies() {
        let (mut k, pid, _) = setup();
        let sup = Cred::new(1000, 1000);
        // Root dir of the box grants Fred only v(rwlax).
        let root = k.vfs().root();
        let dir = k.vfs().resolve(root, "/box", true, &sup).unwrap();
        let mut acl = Acl::empty();
        acl.set_reserve("globus:/O=UnivNowhere/*", Rights::NONE, Rights::RWLAX);
        aclfs::write_acl(k.vfs_mut(), dir, &acl, &sup).unwrap();
        let fred = Identity::new("globus:/O=UnivNowhere/CN=Fred");
        let mut pol = IdentityBoxPolicy::new(fred.clone(), sup, "/box/.passwd", false);
        // Plain create denied (no w).
        assert_eq!(
            pol.check(&k, pid, &open_w("/box/file")),
            PolicyDecision::Deny(Errno::EACCES)
        );
        // mkdir allowed through the reserve right...
        let call = Syscall::Mkdir("/box/work".into(), 0o755);
        assert_eq!(pol.check(&k, pid, &call), PolicyDecision::Allow);
        let mut result = k.syscall(pid, call.clone());
        pol.post(&k, pid, &call, &mut result);
        result.unwrap();
        // ... and the fresh ACL names Fred literally with the grant.
        let work = k.vfs().resolve(root, "/box/work", true, &sup).unwrap();
        let work_acl = aclfs::read_acl(k.vfs_mut(), work, &sup).unwrap().unwrap();
        assert!(work_acl.allows(&fred, Rights::RWLAX));
        assert_eq!(work_acl.entries().len(), 1);
        assert!(!work_acl.entries()[0].subject.is_wildcard());
        // George gets nothing in /box/work.
        let george = Identity::new("globus:/O=UnivNowhere/CN=George");
        assert_eq!(work_acl.rights_for(&george), Rights::NONE);
    }

    #[test]
    fn reserved_directory_owner_can_dissolve_it() {
        let (mut k, pid, _) = setup();
        let sup = Cred::new(1000, 1000);
        let root = k.vfs().root();
        let dir = k.vfs().resolve(root, "/box", true, &sup).unwrap();
        // Fred holds only the reserve right in /box.
        let mut acl = Acl::empty();
        acl.set_reserve("globus:/O=UnivNowhere/*", Rights::NONE, Rights::RWLAX);
        aclfs::write_acl(k.vfs_mut(), dir, &acl, &sup).unwrap();
        let fred = Identity::new("globus:/O=UnivNowhere/CN=Fred");
        let mut pol = IdentityBoxPolicy::new(fred.clone(), sup, "/box/.passwd", false);
        // Reserve /box/work.
        let mk = Syscall::Mkdir("/box/work".into(), 0o755);
        assert_eq!(pol.check(&k, pid, &mk), PolicyDecision::Allow);
        let mut result = k.syscall(pid, mk.clone());
        pol.post(&k, pid, &mk, &mut result);
        result.unwrap();
        // With only v in the parent, rmdir is still allowed: Fred holds
        // full control (w+a) of the reserved directory itself.
        assert_eq!(
            pol.check(&k, pid, &Syscall::Rmdir("/box/work".into())),
            PolicyDecision::Allow
        );
        // George, with no rights anywhere, may not.
        let george = Identity::new("globus:/O=Elsewhere/CN=George");
        let mut gpol = IdentityBoxPolicy::new(george, sup, "/box/.passwd", false);
        assert_eq!(
            gpol.check(&k, pid, &Syscall::Rmdir("/box/work".into())),
            PolicyDecision::Deny(Errno::EACCES)
        );
    }

    #[test]
    fn acl_file_needs_admin_to_modify() {
        let (mut k, pid, mut pol) = setup();
        // Fred holds FULL (includes ADMIN): may rewrite the ACL.
        assert_eq!(
            pol.check(&k, pid, &open_w("/box/.__acl")),
            PolicyDecision::Allow
        );
        // Downgrade Fred to rwlx (no admin).
        let sup = Cred::new(1000, 1000);
        let root = k.vfs().root();
        let dir = k.vfs().resolve(root, "/box", true, &sup).unwrap();
        let acl = Acl::from_entries([AclEntry::new(
            "globus:/O=UnivNowhere/CN=Fred",
            Rights::READ | Rights::WRITE | Rights::LIST | Rights::EXECUTE,
        )]);
        aclfs::write_acl(k.vfs_mut(), dir, &acl, &sup).unwrap();
        assert_eq!(
            pol.check(&k, pid, &open_w("/box/.__acl")),
            PolicyDecision::Deny(Errno::EACCES)
        );
        assert_eq!(
            pol.check(&k, pid, &Syscall::Unlink("/box/.__acl".into())),
            PolicyDecision::Deny(Errno::EACCES)
        );
        // Reading it only takes LIST.
        assert_eq!(
            pol.check(&k, pid, &open_r("/box/.__acl")),
            PolicyDecision::Allow
        );
    }

    #[test]
    fn symlink_target_directory_governs() {
        let (mut k, pid, mut pol) = setup();
        let root = k.vfs().root();
        // A link inside the box pointing at a supervisor-private file.
        k.vfs_mut()
            .write_file(root, "/home/secret", b"s", &Cred::ROOT)
            .unwrap();
        k.vfs_mut()
            .chmod(root, "/home/secret", 0o600, &Cred::ROOT)
            .unwrap();
        k.vfs_mut()
            .symlink(root, "/home/secret", "/box/innocent", &Cred::ROOT)
            .unwrap();
        // Opening through the box path must check the *target's* home:
        // no ACL there, nobody can't read 0600 — denied, despite Fred
        // having FULL rights in /box.
        assert_eq!(
            pol.check(&k, pid, &open_r("/box/innocent")),
            PolicyDecision::Deny(Errno::EACCES)
        );
    }

    #[test]
    fn hard_link_to_unreadable_refused() {
        let (mut k, pid, mut pol) = setup();
        let root = k.vfs().root();
        k.vfs_mut()
            .write_file(root, "/home/secret", b"s", &Cred::ROOT)
            .unwrap();
        k.vfs_mut()
            .chmod(root, "/home/secret", 0o600, &Cred::ROOT)
            .unwrap();
        assert_eq!(
            pol.check(
                &k,
                pid,
                &Syscall::Link("/home/secret".into(), "/box/steal".into())
            ),
            PolicyDecision::Deny(Errno::EACCES)
        );
        // Linking a file Fred can read is fine.
        assert_eq!(
            pol.check(
                &k,
                pid,
                &Syscall::Link("/box/.passwd".into(), "/box/copy".into())
            ),
            PolicyDecision::Allow
        );
    }

    #[test]
    fn signals_require_same_identity() {
        let (k, pid, mut pol) = setup();
        let sup = Cred::new(1000, 1000);
        // Same identity: allowed.
        let peer = k.spawn(sup, "/box", "peer").unwrap();
        k.set_identity(peer, Identity::new("globus:/O=UnivNowhere/CN=Fred"))
            .unwrap();
        assert_eq!(
            pol.check(
                &k,
                pid,
                &Syscall::Kill(peer, idbox_kernel::Signal::Term)
            ),
            PolicyDecision::Allow
        );
        // Different identity, same Unix uid: denied by the box even
        // though the kernel's uid rule would allow it.
        let other = k.spawn(sup, "/box", "other").unwrap();
        k.set_identity(other, Identity::new("globus:/O=UnivNowhere/CN=George"))
            .unwrap();
        assert_eq!(
            pol.check(
                &k,
                pid,
                &Syscall::Kill(other, idbox_kernel::Signal::Term)
            ),
            PolicyDecision::Deny(Errno::EPERM)
        );
        // Unboxed process (no identity): denied too.
        let unboxed = k.spawn(sup, "/", "plain").unwrap();
        assert_eq!(
            pol.check(
                &k,
                pid,
                &Syscall::Kill(unboxed, idbox_kernel::Signal::Term)
            ),
            PolicyDecision::Deny(Errno::EPERM)
        );
    }

    #[test]
    fn chown_always_denied_chmod_needs_admin() {
        let (k, pid, mut pol) = setup();
        assert_eq!(
            pol.check(&k, pid, &Syscall::Chown("/box/f".into(), 1, 1)),
            PolicyDecision::Deny(Errno::EPERM)
        );
        // Fred has ADMIN in /box.
        assert_eq!(
            pol.check(&k, pid, &Syscall::Chmod("/box/.passwd".into(), 0o600)),
            PolicyDecision::Allow
        );
    }

    #[test]
    fn exec_needs_x_right() {
        let (mut k, pid, mut pol) = setup();
        // Fred has FULL (includes x): allowed.
        assert_eq!(
            pol.check(&k, pid, &Syscall::Exec("/box/sim.exe".into())),
            PolicyDecision::Allow
        );
        // Downgrade to rwl: denied.
        let sup = Cred::new(1000, 1000);
        let root = k.vfs().root();
        let dir = k.vfs().resolve(root, "/box", true, &sup).unwrap();
        let acl = Acl::from_entries([AclEntry::new(
            "globus:/O=UnivNowhere/CN=Fred",
            Rights::READ | Rights::WRITE | Rights::LIST,
        )]);
        aclfs::write_acl(k.vfs_mut(), dir, &acl, &sup).unwrap();
        assert_eq!(
            pol.check(&k, pid, &Syscall::Exec("/box/sim.exe".into())),
            PolicyDecision::Deny(Errno::EACCES)
        );
    }

    #[test]
    fn stats_count() {
        let (k, pid, mut pol) = setup();
        let stats = pol.stats();
        pol.check(&k, pid, &open_r("/box/x"));
        pol.check(&k, pid, &Syscall::Chown("/x".into(), 0, 0));
        pol.check(&k, pid, &open_r("/etc/passwd"));
        let (checks, denials, rewrites, _) = stats.snapshot();
        assert!(checks >= 2);
        assert_eq!(denials, 1);
        assert_eq!(rewrites, 1);
    }

    #[test]
    fn cached_mode_fails_closed_like_uncached() {
        let (mut k, pid, _) = setup();
        let root = k.vfs().root();
        // A directory the supervisor itself cannot search (group 1000
        // gets no bits) but `nobody` could (world rwx): the supervisor's
        // ACL lookup fails with EACCES, not ENOENT. Falling back to the
        // Unix-as-nobody rule here would *grant* access on a lookup
        // error — both cache modes must deny instead.
        k.vfs_mut()
            .mkdir(root, "/box/odd", 0o707, &Cred::ROOT)
            .unwrap();
        k.vfs_mut()
            .chown(root, "/box/odd", 0, 1000, &Cred::ROOT)
            .unwrap();
        let sup = Cred::new(1000, 1000);
        let fred = Identity::new("globus:/O=UnivNowhere/CN=Fred");
        for cache in [false, true] {
            let mut pol =
                IdentityBoxPolicy::new(fred.clone(), sup, "/box/.passwd", cache);
            assert_eq!(
                pol.check(&k, pid, &Syscall::Readdir("/box/odd".into())),
                PolicyDecision::Deny(Errno::EACCES),
                "cache={cache}: non-ENOENT ACL lookup errors must fail closed"
            );
        }
    }

    #[test]
    fn unlinking_acl_file_invalidates_cached_verdict() {
        let (mut k, pid, _) = setup();
        let sup = Cred::new(1000, 1000);
        let fred = Identity::new("globus:/O=UnivNowhere/CN=Fred");
        let mut pol = IdentityBoxPolicy::new(fred, sup, "/box/.passwd", true);
        // Warm both caches with an allow under the FULL-rights ACL.
        assert_eq!(pol.check(&k, pid, &open_r("/box/a")), PolicyDecision::Allow);
        assert_eq!(pol.check(&k, pid, &open_r("/box/a")), PolicyDecision::Allow);
        assert!(pol.stats().verdict_snapshot().0 > 0, "warm check hit the cache");
        // Fred holds ADMIN, so unlinking the ACL file is permitted.
        assert_eq!(
            pol.check(&k, pid, &Syscall::Unlink("/box/.__acl".into())),
            PolicyDecision::Allow
        );
        k.syscall(pid, Syscall::Unlink("/box/.__acl".into())).unwrap();
        // The unlink bumped the change generation: the cached ACL
        // verdict is dead, and /box now rules as Unix-as-nobody — the
        // missing file is no longer readable by grace of a stale FULL.
        assert_eq!(
            pol.check(&k, pid, &open_r("/box/a")),
            PolicyDecision::Deny(Errno::EACCES),
            "stale allow served after the ACL file was unlinked"
        );
        // A fresh ACL naming only someone else must rule immediately,
        // even though its file may recycle the dead ACL's inode.
        let root = k.vfs().root();
        let dir = k.vfs().resolve(root, "/box", true, &sup).unwrap();
        let acl = Acl::from_entries([AclEntry::new("someone-else", Rights::FULL)]);
        aclfs::write_acl(k.vfs_mut(), dir, &acl, &sup).unwrap();
        assert_eq!(
            pol.check(&k, pid, &open_r("/box/a")),
            PolicyDecision::Deny(Errno::EACCES),
            "revoked identity allowed through a stale cache entry"
        );
    }

    #[test]
    fn renaming_acl_file_invalidates_cached_verdict() {
        let (mut k, pid, _) = setup();
        let sup = Cred::new(1000, 1000);
        let fred = Identity::new("globus:/O=UnivNowhere/CN=Fred");
        let mut pol = IdentityBoxPolicy::new(fred, sup, "/box/.passwd", true);
        assert_eq!(pol.check(&k, pid, &open_r("/box/a")), PolicyDecision::Allow);
        // Renaming the ACL file away (allowed: Fred holds ADMIN) must
        // not leave the old verdict behind.
        let mv = Syscall::Rename("/box/.__acl".into(), "/box/plain".into());
        assert_eq!(pol.check(&k, pid, &mv), PolicyDecision::Allow);
        k.syscall(pid, mv).unwrap();
        assert_eq!(
            pol.check(&k, pid, &open_r("/box/a")),
            PolicyDecision::Deny(Errno::EACCES),
            "stale allow served after the ACL file was renamed away"
        );
    }

    #[test]
    fn acl_cache_is_bounded() {
        let (mut k, pid, _) = setup();
        let sup = Cred::new(1000, 1000);
        let root = k.vfs().root();
        let fred = Identity::new("globus:/O=UnivNowhere/CN=Fred");
        let acl = Acl::from_entries([AclEntry::new(fred.as_str(), Rights::FULL)]);
        let n = super::ACL_CACHE_CAP + 32;
        for i in 0..n {
            let d = k
                .vfs_mut()
                .mkdir(root, &format!("/box/d{i}"), 0o755, &sup)
                .unwrap();
            aclfs::write_acl(k.vfs_mut(), d, &acl, &sup).unwrap();
        }
        let mut pol = IdentityBoxPolicy::new(fred, sup, "/box/.passwd", true);
        for i in 0..n {
            assert_eq!(
                pol.check(&k, pid, &Syscall::Stat(format!("/box/d{i}/x"))),
                PolicyDecision::Allow
            );
        }
        assert!(
            pol.acl_cache.lock().len() <= super::ACL_CACHE_CAP,
            "ACL content cache must not grow past the cap"
        );
        assert!(
            pol.verdict_cache.lock().len() <= super::ACL_CACHE_CAP,
            "verdict cache must not grow past the cap"
        );
    }

    #[test]
    fn check_rules_every_call_kind_under_a_shared_borrow() {
        let (k, pid, _) = setup();
        let sup = Cred::new(1000, 1000);
        let fred = Identity::new("globus:/O=UnivNowhere/CN=Fred");
        // Read-only, rewrite, fallback, fd-local, *and* mutating calls:
        // since the kernel sharded, every ruling happens through `&Kernel`.
        let calls = [
            Syscall::Stat("/box/.passwd".into()),
            Syscall::Lstat("/box/nope".into()),
            Syscall::Readdir("/box".into()),
            Syscall::AccessCheck("/box/.passwd".into(), Access::R),
            Syscall::Stat("/etc/passwd".into()), // rewrite path
            Syscall::Stat("/home".into()),       // nobody fallback
            Syscall::Readlink("/box/.passwd".into()),
            Syscall::Read(3, 16),
            Syscall::Getpid,
            Syscall::GetUserName,
            Syscall::Unlink("/box/a".into()),
            Syscall::Mkdir("/box/newdir".into(), 0o755),
            Syscall::Fork,
        ];
        for call in &calls {
            let mut cached =
                IdentityBoxPolicy::new(fred.clone(), sup, "/box/.passwd", true);
            let mut uncached =
                IdentityBoxPolicy::new(fred.clone(), sup, "/box/.passwd", false);
            let a = cached.check(&k, pid, call);
            let b = uncached.check(&k, pid, call);
            assert_eq!(a, b, "cached vs uncached on {call:?}");
            // And the ruling is stable on repeat (warm caches included).
            assert_eq!(cached.check(&k, pid, call), a, "warm repeat on {call:?}");
        }
    }

    #[test]
    fn acl_cache_hits_and_invalidates() {
        let (mut k, pid, _) = setup();
        let sup = Cred::new(1000, 1000);
        let fred = Identity::new("globus:/O=UnivNowhere/CN=Fred");
        let mut pol = IdentityBoxPolicy::new(fred.clone(), sup, "/box/.passwd", true);
        let stats = pol.stats();
        assert_eq!(pol.check(&k, pid, &open_r("/box/a")), PolicyDecision::Allow);
        assert_eq!(pol.check(&k, pid, &open_r("/box/b")), PolicyDecision::Allow);
        let (_, _, _, hits) = stats.snapshot();
        assert_eq!(hits, 1, "second lookup must hit the cache");
        let (vhits, vmisses) = stats.verdict_snapshot();
        assert_eq!((vhits, vmisses), (1, 1), "one cold verdict, one cached");
        // Rewriting the ACL bumps the change generation, invalidating
        // the cached verdict.
        let root = k.vfs().root();
        let dir = k.vfs().resolve(root, "/box", true, &sup).unwrap();
        let acl = Acl::from_entries([AclEntry::new("someone-else", Rights::FULL)]);
        aclfs::write_acl(k.vfs_mut(), dir, &acl, &sup).unwrap();
        assert_eq!(
            pol.check(&k, pid, &open_r("/box/c")),
            PolicyDecision::Deny(Errno::EACCES)
        );
    }

    #[test]
    fn audit_ring_records_denials_with_identity_and_errno() {
        let (k, pid, _) = setup();
        let george = Identity::new("globus:/O=UnivNowhere/CN=George");
        let sup = Cred::new(1000, 1000);
        let mut pol = IdentityBoxPolicy::new(george, sup, "/box/.passwd", false);
        let ring = Arc::new(AuditRing::default());
        pol.use_audit(Arc::clone(&ring));
        assert_eq!(
            pol.check(&k, pid, &open_r("/box/secret")),
            PolicyDecision::Deny(Errno::EACCES)
        );
        // A wrong-identity kill denies with EPERM, not EACCES.
        assert_eq!(
            pol.check(&k, pid, &Syscall::Chown("/box/secret".into(), 0, 0)),
            PolicyDecision::Deny(Errno::EPERM)
        );
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].identity, "globus:/O=UnivNowhere/CN=George");
        assert_eq!(snap[0].syscall, "open");
        assert_eq!(snap[0].path.as_deref(), Some("/box/secret"));
        assert_eq!(snap[0].verdict, Verdict::Deny);
        assert_eq!(snap[0].errno, Some(Errno::EACCES));
        assert_eq!(snap[1].verdict, Verdict::Deny);
        assert_eq!(snap[1].errno, Some(Errno::EPERM));
    }

    #[test]
    fn audit_ring_records_allow_and_reserve_amplification() {
        let (mut k, pid, mut pol) = setup();
        let ring = Arc::new(AuditRing::default());
        pol.use_audit(Arc::clone(&ring));
        assert_eq!(pol.check(&k, pid, &open_r("/box/x")), PolicyDecision::Allow);
        // Switch the box ACL to reserve-only: mkdir amplifies.
        let sup = Cred::new(1000, 1000);
        let root = k.vfs().root();
        let dir = k.vfs().resolve(root, "/box", true, &sup).unwrap();
        let mut acl = Acl::empty();
        acl.set_reserve("globus:/O=UnivNowhere/*", Rights::NONE, Rights::RWLAX);
        aclfs::write_acl(k.vfs_mut(), dir, &acl, &sup).unwrap();
        assert_eq!(
            pol.check(&k, pid, &Syscall::Mkdir("/box/mine".into(), 0o755)),
            PolicyDecision::Allow
        );
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].verdict, Verdict::Allow);
        assert_eq!(snap[1].syscall, "mkdir");
        assert_eq!(snap[1].verdict, Verdict::ReserveAmplified);
        assert_eq!(snap[1].errno, None);
    }

    #[test]
    fn audit_ring_records_shared_borrow_rulings_too() {
        let (k, pid, _) = setup();
        let george = Identity::new("globus:/O=UnivNowhere/CN=George");
        let sup = Cred::new(1000, 1000);
        let mut pol = IdentityBoxPolicy::new(george, sup, "/box/.passwd", false);
        let ring = Arc::new(AuditRing::default());
        pol.use_audit(Arc::clone(&ring));
        assert_eq!(
            pol.check(&k, pid, &Syscall::Stat("/box/secret".into())),
            PolicyDecision::Deny(Errno::EACCES)
        );
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].syscall, "stat");
        assert_eq!(snap[0].verdict, Verdict::Deny);
        assert_eq!(snap[0].errno, Some(Errno::EACCES));
    }

    #[test]
    fn audit_ring_stays_bounded_under_policy_churn() {
        let (k, pid, mut pol) = setup();
        let ring = Arc::new(AuditRing::new(16));
        pol.use_audit(Arc::clone(&ring));
        for i in 0..200 {
            let _ = pol.check(&k, pid, &open_r(&format!("/box/f{i}")));
        }
        assert_eq!(ring.len(), 16);
        assert_eq!(ring.total_recorded(), 200);
        // The retained window is the newest decisions, in order.
        let snap = ring.snapshot();
        assert_eq!(snap.first().unwrap().seq, 184);
        assert_eq!(snap.last().unwrap().seq, 199);
        assert_eq!(snap.last().unwrap().path.as_deref(), Some("/box/f199"));
    }
}
