//! Property test: the policy caches are a pure optimization.
//!
//! A cached identity-box policy and an uncached one, asked about the
//! same call against the same kernel state, must produce identical
//! `PolicyDecision`s — across ACL rewrites (change-generation
//! invalidation), ACL removal (ENOENT fallback), renames of the ACL
//! file itself, symlinks pointing across directories, subdirectory
//! creation and removal (inode recycling), permission flips on the
//! containing directory (non-ENOENT lookup errors, which must fail
//! closed in both modes), and the shared-borrow fast path
//! (`check_read`). Every check is asked twice of the cached policy so
//! the warm verdict-cache path is exercised explicitly.

use idbox_acl::{Acl, AclEntry, Rights};
use idbox_core::{write_acl, IdentityBoxPolicy};
use idbox_interpose::SyscallPolicy;
use idbox_kernel::{Account, Kernel, OpenFlags, Syscall};
use idbox_types::Identity;
use idbox_vfs::{Access, Cred};
use proptest::prelude::*;

const NDIRS: usize = 6;

#[derive(Debug, Clone)]
enum Op {
    /// Ask both policies about a call touching directory `d`.
    Check(usize, usize),
    /// Install ACL variant `v` on directory `d`.
    SetAcl(usize, usize),
    /// Remove directory `d`'s ACL file.
    DropAcl(usize),
    /// Flip directory `d`'s Unix mode (and owner, for the 0o707 case:
    /// supervisor locked out by group bits, `nobody` allowed by world
    /// bits — the non-ENOENT lookup-error scenario).
    Chmod(usize, u16),
    /// Rename directory `d`'s ACL file to a plain name (revoking the
    /// ACL without unlinking it) — or back, restoring it.
    RenameAcl(usize, bool),
    /// Create (`true`) or remove (`false`) subdirectory `d`/sub —
    /// churns inodes so recycled numbers land in live cache keys.
    Subdir(usize, bool),
    /// Plant (`true`) or unlink (`false`) a symlink at `a`/ln pointing
    /// into `b`'s namespace (the target's directory governs access).
    SymlinkAt(usize, usize, bool),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0usize..NDIRS), (0usize..10)).prop_map(|(d, k)| Op::Check(d, k)),
        ((0usize..NDIRS), (0usize..6)).prop_map(|(d, v)| Op::SetAcl(d, v)),
        (0usize..NDIRS).prop_map(Op::DropAcl),
        (
            (0usize..NDIRS),
            prop_oneof![
                Just(0o755u16),
                Just(0o700u16),
                Just(0o707u16),
                Just(0o777u16),
                Just(0o000u16)
            ]
        )
            .prop_map(|(d, m)| Op::Chmod(d, m)),
        ((0usize..NDIRS), any::<bool>()).prop_map(|(d, away)| Op::RenameAcl(d, away)),
        ((0usize..NDIRS), any::<bool>()).prop_map(|(d, mk)| Op::Subdir(d, mk)),
        ((0usize..NDIRS), (0usize..NDIRS), any::<bool>())
            .prop_map(|(a, b, mk)| Op::SymlinkAt(a, b, mk)),
    ]
}

fn dir_path(d: usize) -> String {
    format!("/w/d{d}")
}

fn acl_variant(v: usize) -> Acl {
    let fred = "globus:/O=UnivNowhere/CN=Fred";
    match v {
        0 => Acl::from_entries([AclEntry::new(fred, Rights::FULL)]),
        1 => Acl::from_entries([AclEntry::new(fred, Rights::READ | Rights::LIST)]),
        2 => {
            let mut acl = Acl::empty();
            acl.set("globus:*", Rights::READ | Rights::LIST);
            acl.set_reserve("globus:*", Rights::NONE, Rights::RWLAX);
            acl
        }
        3 => Acl::empty(),
        4 => Acl::from_entries([AclEntry::new("kerberos:george@realm", Rights::FULL)]),
        _ => Acl::from_entries([AclEntry::new(fred, Rights::RWLAX)]),
    }
}

fn call_kind(d: usize, k: usize) -> Syscall {
    let dir = dir_path(d);
    match k {
        0 => Syscall::Stat(format!("{dir}/file")),
        1 => Syscall::Open(format!("{dir}/file"), OpenFlags::rdonly(), 0),
        2 => Syscall::Open(format!("{dir}/new"), OpenFlags::wronly_create_trunc(), 0o644),
        3 => Syscall::Readdir(dir),
        4 => Syscall::Unlink(format!("{dir}/file")),
        5 => Syscall::Mkdir(format!("{dir}/sub"), 0o755),
        6 => Syscall::AccessCheck(format!("{dir}/file"), Access::R),
        7 => Syscall::Stat(format!("{dir}/ln")), // through a symlink
        8 => Syscall::Open(format!("{dir}/ln"), OpenFlags::rdonly(), 0),
        _ => Syscall::Stat("/etc/passwd".to_string()), // rewrite path
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cached_and_uncached_decisions_agree(ops in proptest::collection::vec(op(), 1..60)) {
        let mut k = Kernel::new();
        k.accounts_mut().add(Account::new("dthain", 1000, 1000)).unwrap();
        let sup = Cred::new(1000, 1000);
        let root = k.vfs().root();
        k.vfs_mut().mkdir(root, "/w", 0o755, &Cred::ROOT).unwrap();
        k.vfs_mut().chown(root, "/w", 1000, 1000, &Cred::ROOT).unwrap();
        for d in 0..NDIRS {
            let dir = k.vfs_mut().mkdir(root, &dir_path(d), 0o755, &sup).unwrap();
            write_acl(k.vfs_mut(), dir, &acl_variant(0), &sup).unwrap();
            k.vfs_mut()
                .write_file(root, &format!("{}/file", dir_path(d)), b"x", &sup)
                .unwrap();
        }
        k.vfs_mut().write_file(root, "/w/.passwd", b"fred:x::\n", &sup).unwrap();
        let pid = k.spawn(sup, "/w", "prop").unwrap();
        let fred = Identity::new("globus:/O=UnivNowhere/CN=Fred");
        k.set_identity(pid, fred.clone()).unwrap();

        let mut cached = IdentityBoxPolicy::new(fred.clone(), sup, "/w/.passwd", true);
        let mut uncached = IdentityBoxPolicy::new(fred, sup, "/w/.passwd", false);

        for op in ops {
            match op {
                Op::Check(d, kind) => {
                    let call = call_kind(d, kind);
                    let a = cached.check(&k, pid, &call);
                    let b = uncached.check(&k, pid, &call);
                    prop_assert_eq!(&a, &b, "cached vs uncached on {:?}", call);
                    // Ask again: the verdict cache is warm now, and the
                    // answer must not change.
                    let warm = cached.check(&k, pid, &call);
                    prop_assert_eq!(&warm, &b, "warm cache changed ruling on {:?}", call);
                }
                Op::SetAcl(d, v) => {
                    let dir = k
                        .vfs()
                        .resolve(root, &dir_path(d), true, &Cred::ROOT)
                        .unwrap();
                    write_acl(k.vfs_mut(), dir, &acl_variant(v), &Cred::ROOT).unwrap();
                }
                Op::DropAcl(d) => {
                    let dir = k
                        .vfs()
                        .resolve(root, &dir_path(d), true, &Cred::ROOT)
                        .unwrap();
                    let _ = k
                        .vfs_mut()
                        .unlink(dir, idbox_types::ACL_FILE_NAME, &Cred::ROOT);
                }
                Op::Chmod(d, mode) => {
                    let path = dir_path(d);
                    let (uid, gid) = if mode == 0o707 { (0, 1000) } else { (1000, 1000) };
                    k.vfs_mut().chown(root, &path, uid, gid, &Cred::ROOT).unwrap();
                    k.vfs_mut().chmod(root, &path, mode, &Cred::ROOT).unwrap();
                }
                Op::RenameAcl(d, away) => {
                    let dir = dir_path(d);
                    let acl = format!("{dir}/{}", idbox_types::ACL_FILE_NAME);
                    let plain = format!("{dir}/was_acl");
                    let (from, to) = if away { (acl, plain) } else { (plain, acl) };
                    // Fails cleanly when the source is absent.
                    let _ = k.vfs_mut().rename(root, &from, &to, &Cred::ROOT);
                }
                Op::Subdir(d, mk) => {
                    let sub = format!("{}/sub", dir_path(d));
                    if mk {
                        let _ = k.vfs_mut().mkdir(root, &sub, 0o755, &Cred::ROOT);
                    } else {
                        let _ = k.vfs_mut().rmdir(root, &sub, &Cred::ROOT);
                    }
                }
                Op::SymlinkAt(a, b, mk) => {
                    let ln = format!("{}/ln", dir_path(a));
                    if mk {
                        let target = format!("{}/file", dir_path(b));
                        let _ = k.vfs_mut().symlink(root, &target, &ln, &Cred::ROOT);
                    } else {
                        let _ = k.vfs_mut().unlink(root, &ln, &Cred::ROOT);
                    }
                }
            }
        }
    }
}
