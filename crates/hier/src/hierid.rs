//! Hierarchical identity names.

use std::fmt;

/// A hierarchical identity: colon-separated segments rooted at `root`,
/// e.g. `root:dthain:visitor` (Figure 6).
///
/// ```
/// use idbox_hier::HierId;
///
/// let dthain = HierId::root().child("dthain").unwrap();
/// let visitor = dthain.child("visitor").unwrap();
/// assert_eq!(visitor.to_string(), "root:dthain:visitor");
/// assert!(dthain.is_same_or_ancestor_of(&visitor));
/// assert!(!visitor.is_same_or_ancestor_of(&dthain));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HierId {
    segments: Vec<String>,
}

/// Errors constructing hierarchical names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierIdError {
    /// Empty name or empty segment.
    Empty,
    /// A segment contained `:` or other forbidden characters.
    BadSegment(String),
    /// The name did not start at `root`.
    NotRooted(String),
}

impl fmt::Display for HierIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierIdError::Empty => write!(f, "empty hierarchical name"),
            HierIdError::BadSegment(s) => write!(f, "bad segment: {s:?}"),
            HierIdError::NotRooted(s) => write!(f, "name not rooted at 'root': {s:?}"),
        }
    }
}

impl std::error::Error for HierIdError {}

fn check_segment(seg: &str) -> Result<(), HierIdError> {
    if seg.is_empty() {
        return Err(HierIdError::Empty);
    }
    if seg.contains(':') || seg.contains(char::is_whitespace) {
        return Err(HierIdError::BadSegment(seg.to_string()));
    }
    Ok(())
}

impl HierId {
    /// The namespace root.
    pub fn root() -> Self {
        HierId {
            segments: vec!["root".to_string()],
        }
    }

    /// Parse a full name such as `root:dthain:visitor`.
    pub fn parse(s: &str) -> Result<HierId, HierIdError> {
        if s.is_empty() {
            return Err(HierIdError::Empty);
        }
        let segments: Vec<String> = s.split(':').map(str::to_string).collect();
        for seg in &segments {
            check_segment(seg)?;
        }
        if segments[0] != "root" {
            return Err(HierIdError::NotRooted(s.to_string()));
        }
        Ok(HierId { segments })
    }

    /// Derive a child name.
    pub fn child(&self, name: &str) -> Result<HierId, HierIdError> {
        check_segment(name)?;
        let mut segments = self.segments.clone();
        segments.push(name.to_string());
        Ok(HierId { segments })
    }

    /// The parent domain; `None` for the root.
    pub fn parent(&self) -> Option<HierId> {
        if self.segments.len() <= 1 {
            return None;
        }
        Some(HierId {
            segments: self.segments[..self.segments.len() - 1].to_vec(),
        })
    }

    /// Depth below the root (root = 0).
    pub fn depth(&self) -> usize {
        self.segments.len() - 1
    }

    /// The final segment.
    pub fn leaf(&self) -> &str {
        self.segments.last().expect("never empty")
    }

    /// True when `self` is `other` or one of its ancestors — the
    /// relationship that grants management rights over a subtree.
    pub fn is_same_or_ancestor_of(&self, other: &HierId) -> bool {
        other.segments.len() >= self.segments.len()
            && other.segments[..self.segments.len()] == self.segments[..]
    }

    /// Convert to the flat identity string used in ACLs and boxes.
    pub fn to_identity(&self) -> idbox_types::Identity {
        idbox_types::Identity::new(self.to_string())
    }
}

impl fmt::Display for HierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.segments.join(":"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["root", "root:dthain", "root:dthain:visitor", "root:grid:anon5"] {
            assert_eq!(HierId::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn rejects_malformed_names() {
        assert_eq!(HierId::parse(""), Err(HierIdError::Empty));
        assert!(matches!(
            HierId::parse("dthain:visitor"),
            Err(HierIdError::NotRooted(_))
        ));
        assert_eq!(HierId::parse("root::x"), Err(HierIdError::Empty));
        assert!(matches!(
            HierId::parse("root:has space"),
            Err(HierIdError::BadSegment(_))
        ));
    }

    #[test]
    fn child_and_parent() {
        let dthain = HierId::root().child("dthain").unwrap();
        let visitor = dthain.child("visitor").unwrap();
        assert_eq!(visitor.to_string(), "root:dthain:visitor");
        assert_eq!(visitor.parent(), Some(dthain.clone()));
        assert_eq!(visitor.leaf(), "visitor");
        assert_eq!(visitor.depth(), 2);
        assert_eq!(HierId::root().parent(), None);
        assert!(dthain.child("a:b").is_err());
    }

    #[test]
    fn ancestry_grants_subtree_only() {
        let root = HierId::root();
        let dthain = root.child("dthain").unwrap();
        let visitor = dthain.child("visitor").unwrap();
        let httpd = root.child("httpd").unwrap();
        assert!(root.is_same_or_ancestor_of(&visitor));
        assert!(dthain.is_same_or_ancestor_of(&visitor));
        assert!(dthain.is_same_or_ancestor_of(&dthain));
        assert!(!visitor.is_same_or_ancestor_of(&dthain));
        assert!(!httpd.is_same_or_ancestor_of(&visitor));
        assert!(!dthain.is_same_or_ancestor_of(&httpd));
    }

    #[test]
    fn prefix_is_segment_wise_not_textual() {
        // "root:dt" is not an ancestor of "root:dthain".
        let dt = HierId::parse("root:dt").unwrap();
        let dthain = HierId::parse("root:dthain").unwrap();
        assert!(!dt.is_same_or_ancestor_of(&dthain));
    }

    #[test]
    fn identity_conversion_matches_figure6() {
        let v = HierId::parse("root:dthain:visitor").unwrap();
        assert_eq!(v.to_identity().as_str(), "root:dthain:visitor");
    }
}
