//! The hierarchical identity namespace of Figure 6 / Section 9.
//!
//! The paper's conclusion proposes that future operating systems let
//! *ordinary users* create new protection domains with high-level names
//! on the fly. Because anyone may mint names, a hierarchy is needed to
//! prevent conflicts, like DNS: an ordinary user is `root:dthain`, a
//! visitor they admit becomes `root:dthain:visitor`, a web server's
//! service process `root:httpd:webapp`, a grid server's guests
//! `root:grid:anon5` — and each domain may manage (signal, destroy)
//! exactly its own subtree.
//!
//! This crate implements that future-work design: hierarchical
//! [`HierId`] names, the [`DomainTree`] registry with
//! create-under-yourself semantics, and a [`HierPolicy`] enforcing
//! subtree-scoped process management. Combined with
//! `Supervisor::in_kernel`, it realizes the paper's claim that a kernel
//! implementation provides "the benefits of identity boxing with the
//! performance and assurance of an operating system" — measured by the
//! `fig6_hier_ablation` bench.

mod hierid;
mod policy;
mod tree;

pub use hierid::{HierId, HierIdError};
pub use policy::HierPolicy;
pub use tree::DomainTree;
