//! Hierarchical enforcement as a syscall policy.

use crate::hierid::HierId;
use crate::tree::DomainTree;
use idbox_core::IdentityBoxPolicy;
use idbox_interpose::{PolicyDecision, SyscallPolicy};
use idbox_kernel::{Kernel, Pid, Syscall, SysRet};
use idbox_types::{Errno, SysResult};
use parking_lot::Mutex;
use std::sync::Arc;

/// The identity-box policy generalized to a hierarchical namespace:
/// file access is governed by ACLs exactly as in [`IdentityBoxPolicy`]
/// (the subject is the full hierarchical name, so patterns like
/// `root:dthain:*` work), while **process management follows the
/// tree** — a process may signal processes in its own domain *or any
/// descendant domain*, replacing the flat same-identity rule.
pub struct HierPolicy {
    domain: HierId,
    tree: Arc<Mutex<DomainTree>>,
    inner: IdentityBoxPolicy,
}

impl HierPolicy {
    /// Build a policy for a process tree living in `domain`.
    pub fn new(
        domain: HierId,
        tree: Arc<Mutex<DomainTree>>,
        inner: IdentityBoxPolicy,
    ) -> Self {
        HierPolicy {
            domain,
            tree,
            inner,
        }
    }

    /// The domain this policy enforces.
    pub fn domain(&self) -> &HierId {
        &self.domain
    }
}

impl SyscallPolicy for HierPolicy {
    fn name(&self) -> &str {
        "hierarchical-identity-box"
    }

    fn check(&mut self, kernel: &Kernel, pid: Pid, call: &Syscall) -> PolicyDecision {
        if let Syscall::Kill(target, _) = call {
            let tree = self.tree.lock();
            return match tree.domain_of(*target) {
                Some(target_dom) if self.domain.is_same_or_ancestor_of(target_dom) => {
                    PolicyDecision::Allow
                }
                Some(_) => PolicyDecision::Deny(Errno::EPERM),
                // Unassigned processes are outside every box: opaque.
                None => PolicyDecision::Deny(Errno::EPERM),
            };
        }
        self.inner.check(kernel, pid, call)
    }

    fn post(
        &mut self,
        kernel: &Kernel,
        pid: Pid,
        call: &Syscall,
        result: &mut SysResult<SysRet>,
    ) {
        // New children stay in the parent's domain.
        if let (Syscall::Fork, Ok(SysRet::Num(child))) = (call, &result) {
            let _ = self
                .tree
                .lock()
                .assign(Pid(*child as u32), self.domain.clone());
        }
        self.inner.post(kernel, pid, call, result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_interpose::{share, GuestCtx, SharedKernel, Supervisor};
    use idbox_kernel::Signal;
    use idbox_types::CostModel;
    use idbox_vfs::Cred;

    /// Two domains under dthain: the visitor and a sibling service.
    fn setup() -> (SharedKernel, Arc<Mutex<DomainTree>>, HierId, HierId, HierId) {
        let kernel = share(idbox_kernel::Kernel::new());
        let tree = Arc::new(Mutex::new(DomainTree::new()));
        let root = HierId::root();
        let dthain = root.child("dthain").unwrap();
        let visitor = dthain.child("visitor").unwrap();
        let service = dthain.child("service").unwrap();
        {
            let mut t = tree.lock();
            t.create(&root, &root, "dthain").unwrap();
            t.create(&dthain, &dthain, "visitor").unwrap();
            t.create(&dthain, &dthain, "service").unwrap();
        }
        (kernel, tree, dthain, visitor, service)
    }

    fn spawn_in(
        kernel: &SharedKernel,
        tree: &Arc<Mutex<DomainTree>>,
        domain: &HierId,
        comm: &str,
    ) -> Pid {
        let k = kernel.lock();
        let pid = k.spawn(Cred::new(1000, 1000), "/tmp", comm).unwrap();
        k.set_identity(pid, domain.to_identity()).unwrap();
        tree.lock().assign(pid, domain.clone()).unwrap();
        pid
    }

    fn policy_for(
        domain: &HierId,
        tree: &Arc<Mutex<DomainTree>>,
    ) -> HierPolicy {
        let inner = IdentityBoxPolicy::new(
            domain.to_identity(),
            Cred::new(1000, 1000),
            "/tmp/.passwd",
            false,
        );
        HierPolicy::new(domain.clone(), Arc::clone(tree), inner)
    }

    #[test]
    fn parent_signals_child_domain_but_not_vice_versa() {
        let (kernel, tree, dthain, visitor, _) = setup();
        let dthain_pid = spawn_in(&kernel, &tree, &dthain, "dthain-shell");
        let visitor_pid = spawn_in(&kernel, &tree, &visitor, "visitor-job");

        let mut parent_pol = policy_for(&dthain, &tree);
        let mut child_pol = policy_for(&visitor, &tree);
        let k = kernel.lock();
        // dthain may signal down into the visitor domain.
        assert_eq!(
            parent_pol.check(&k, dthain_pid, &Syscall::Kill(visitor_pid, Signal::Term)),
            PolicyDecision::Allow
        );
        // The visitor may not signal up.
        assert_eq!(
            child_pol.check(&k, visitor_pid, &Syscall::Kill(dthain_pid, Signal::Term)),
            PolicyDecision::Deny(Errno::EPERM)
        );
        // The visitor may signal within its own domain.
        assert_eq!(
            child_pol.check(&k, visitor_pid, &Syscall::Kill(visitor_pid, Signal::Usr1)),
            PolicyDecision::Allow
        );
    }

    #[test]
    fn siblings_are_isolated() {
        let (kernel, tree, _, visitor, service) = setup();
        let v_pid = spawn_in(&kernel, &tree, &visitor, "v");
        let s_pid = spawn_in(&kernel, &tree, &service, "s");
        let mut v_pol = policy_for(&visitor, &tree);
        let k = kernel.lock();
        assert_eq!(
            v_pol.check(&k, v_pid, &Syscall::Kill(s_pid, Signal::Term)),
            PolicyDecision::Deny(Errno::EPERM)
        );
    }

    #[test]
    fn fork_keeps_children_in_the_domain() {
        let (kernel, tree, _, visitor, _) = setup();
        let pid = spawn_in(&kernel, &tree, &visitor, "v");
        let mut sup = Supervisor::in_kernel(
            Arc::clone(&kernel),
            Box::new(policy_for(&visitor, &tree)),
        );
        let mut ctx = GuestCtx::new(&mut sup, pid);
        let child = ctx.fork().unwrap();
        assert_eq!(tree.lock().domain_of(child), Some(&visitor));
        // And the child can be signalled by its own domain.
        ctx.kill(child, Signal::Term).unwrap();
    }

    #[test]
    fn in_kernel_mode_enforces_like_interposed() {
        // The Section 9 claim: same semantics, different cost. Run the
        // same denied operation under both modes.
        let (kernel, tree, dthain, visitor, _) = setup();
        let d_pid = spawn_in(&kernel, &tree, &dthain, "d");
        for interposed in [false, true] {
            let v_pid = spawn_in(&kernel, &tree, &visitor, "v");
            let pol = Box::new(policy_for(&visitor, &tree));
            let mut sup = if interposed {
                Supervisor::interposed(Arc::clone(&kernel), pol, CostModel::calibrated())
            } else {
                Supervisor::in_kernel(Arc::clone(&kernel), pol)
            };
            let mut ctx = GuestCtx::new(&mut sup, v_pid);
            assert_eq!(ctx.kill(d_pid, Signal::Term), Err(Errno::EPERM));
            assert_eq!(ctx.kill(v_pid, Signal::Usr1), Ok(()));
        }
    }

    #[test]
    fn file_checks_still_apply() {
        let (kernel, tree, _, visitor, _) = setup();
        let pid = spawn_in(&kernel, &tree, &visitor, "v");
        {
            let mut k = kernel.lock();
            let root = k.vfs().root();
            k.vfs_mut()
                .write_file(root, "/home/private", b"x", &Cred::ROOT)
                .unwrap();
            k.vfs_mut()
                .chmod(root, "/home/private", 0o600, &Cred::ROOT)
                .unwrap();
        }
        let mut sup = Supervisor::in_kernel(
            Arc::clone(&kernel),
            Box::new(policy_for(&visitor, &tree)),
        );
        let mut ctx = GuestCtx::new(&mut sup, pid);
        assert_eq!(ctx.read_file("/home/private"), Err(Errno::EACCES));
    }
}
