//! The protection-domain registry.

use crate::hierid::HierId;
use idbox_kernel::Pid;
use idbox_types::{Errno, SysResult};
use std::collections::{BTreeMap, BTreeSet};

/// The tree of live protection domains plus the assignment of kernel
/// processes to domains.
///
/// The operation the paper's conclusion asks for: **any** domain may
/// create children under itself — no account database, no privilege.
/// Destruction is likewise subtree-scoped.
#[derive(Debug, Default)]
pub struct DomainTree {
    domains: BTreeSet<HierId>,
    processes: BTreeMap<Pid, HierId>,
}

impl DomainTree {
    /// A tree containing only the root domain.
    pub fn new() -> Self {
        let mut t = DomainTree::default();
        t.domains.insert(HierId::root());
        t
    }

    /// Number of live domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.domains.len() <= 1
    }

    /// Does a domain exist?
    pub fn exists(&self, id: &HierId) -> bool {
        self.domains.contains(id)
    }

    /// `actor` creates a child domain under `parent`. Allowed when the
    /// actor is the parent or an ancestor of it, and the parent exists.
    pub fn create(
        &mut self,
        actor: &HierId,
        parent: &HierId,
        name: &str,
    ) -> SysResult<HierId> {
        if !self.domains.contains(parent) {
            return Err(Errno::ENOENT);
        }
        if !actor.is_same_or_ancestor_of(parent) {
            return Err(Errno::EPERM);
        }
        let child = parent.child(name).map_err(|_| Errno::EINVAL)?;
        if !self.domains.insert(child.clone()) {
            return Err(Errno::EEXIST);
        }
        Ok(child)
    }

    /// `actor` destroys `target` and its whole subtree (processes in it
    /// are unassigned; the caller decides whether to kill them). The
    /// root is indestructible.
    pub fn destroy(&mut self, actor: &HierId, target: &HierId) -> SysResult<Vec<Pid>> {
        if target == &HierId::root() {
            return Err(Errno::EPERM);
        }
        if !self.domains.contains(target) {
            return Err(Errno::ENOENT);
        }
        // Destroying requires true authority over the target: an
        // ancestor, not the domain itself (a visitor cannot dissolve
        // their own sandbox).
        let authorized = actor.is_same_or_ancestor_of(target) && actor != target;
        if !authorized {
            return Err(Errno::EPERM);
        }
        self.domains.retain(|d| !target.is_same_or_ancestor_of(d));
        let mut orphaned = Vec::new();
        self.processes.retain(|pid, dom| {
            if target.is_same_or_ancestor_of(dom) {
                orphaned.push(*pid);
                false
            } else {
                true
            }
        });
        Ok(orphaned)
    }

    /// Assign a process to a domain (the domain must exist).
    pub fn assign(&mut self, pid: Pid, domain: HierId) -> SysResult<()> {
        if !self.domains.contains(&domain) {
            return Err(Errno::ENOENT);
        }
        self.processes.insert(pid, domain);
        Ok(())
    }

    /// The domain of a process.
    pub fn domain_of(&self, pid: Pid) -> Option<&HierId> {
        self.processes.get(&pid)
    }

    /// Processes assigned within a subtree.
    pub fn processes_under(&self, root: &HierId) -> Vec<Pid> {
        self.processes
            .iter()
            .filter(|(_, d)| root.is_same_or_ancestor_of(d))
            .map(|(p, _)| *p)
            .collect()
    }

    /// Direct children of a domain (for display).
    pub fn children(&self, parent: &HierId) -> Vec<HierId> {
        self.domains
            .iter()
            .filter(|d| d.parent().as_ref() == Some(parent))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (HierId, HierId, HierId) {
        let root = HierId::root();
        let dthain = root.child("dthain").unwrap();
        let visitor = dthain.child("visitor").unwrap();
        (root, dthain, visitor)
    }

    #[test]
    fn figure6_tree() {
        // root -> {dthain, httpd, grid}; dthain -> visitor;
        // httpd -> webapp; grid -> {anon2, anon5}.
        let (root, dthain, _) = ids();
        let mut t = DomainTree::new();
        t.create(&root, &root, "dthain").unwrap();
        t.create(&root, &root, "httpd").unwrap();
        t.create(&root, &root, "grid").unwrap();
        t.create(&dthain, &dthain, "visitor").unwrap();
        let httpd = root.child("httpd").unwrap();
        t.create(&httpd, &httpd, "webapp").unwrap();
        let grid = root.child("grid").unwrap();
        t.create(&grid, &grid, "anon2").unwrap();
        t.create(&grid, &grid, "anon5").unwrap();
        assert_eq!(t.len(), 8);
        assert_eq!(t.children(&root).len(), 3);
        assert_eq!(t.children(&grid).len(), 2);
    }

    #[test]
    fn ordinary_domains_create_their_own_children() {
        let (root, dthain, _) = ids();
        let mut t = DomainTree::new();
        t.create(&root, &root, "dthain").unwrap();
        // dthain needs nobody's help below himself...
        let v = t.create(&dthain, &dthain, "visitor").unwrap();
        assert!(t.exists(&v));
        // ...but cannot create under a sibling.
        t.create(&root, &root, "httpd").unwrap();
        let httpd = root.child("httpd").unwrap();
        assert_eq!(t.create(&dthain, &httpd, "evil"), Err(Errno::EPERM));
    }

    #[test]
    fn duplicate_and_missing_parents() {
        let (root, dthain, _) = ids();
        let mut t = DomainTree::new();
        t.create(&root, &root, "dthain").unwrap();
        assert_eq!(t.create(&root, &root, "dthain"), Err(Errno::EEXIST));
        let ghost = root.child("ghost").unwrap();
        assert_eq!(t.create(&dthain, &ghost, "x"), Err(Errno::ENOENT));
    }

    #[test]
    fn destroy_is_subtree_scoped() {
        let (root, dthain, visitor) = ids();
        let mut t = DomainTree::new();
        t.create(&root, &root, "dthain").unwrap();
        t.create(&dthain, &dthain, "visitor").unwrap();
        t.assign(Pid(5), visitor.clone()).unwrap();
        t.assign(Pid(6), dthain.clone()).unwrap();
        // The visitor cannot dissolve itself, nor its parent.
        assert_eq!(t.destroy(&visitor, &visitor), Err(Errno::EPERM));
        assert_eq!(t.destroy(&visitor, &dthain), Err(Errno::EPERM));
        // dthain destroys the visitor subtree; pid 5 is orphaned.
        let orphans = t.destroy(&dthain, &visitor).unwrap();
        assert_eq!(orphans, vec![Pid(5)]);
        assert!(!t.exists(&visitor));
        assert!(t.exists(&dthain));
        assert_eq!(t.domain_of(Pid(6)), Some(&dthain));
        // Root is indestructible.
        assert_eq!(t.destroy(&root, &HierId::root()), Err(Errno::EPERM));
    }

    #[test]
    fn destroy_removes_whole_subtree() {
        let (root, dthain, visitor) = ids();
        let mut t = DomainTree::new();
        t.create(&root, &root, "dthain").unwrap();
        t.create(&dthain, &dthain, "visitor").unwrap();
        t.create(&dthain, &visitor, "nested").unwrap();
        let orphans = t.destroy(&root, &dthain).unwrap();
        assert!(orphans.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn process_assignment() {
        let (root, dthain, visitor) = ids();
        let mut t = DomainTree::new();
        t.create(&root, &root, "dthain").unwrap();
        t.create(&dthain, &dthain, "visitor").unwrap();
        t.assign(Pid(10), visitor.clone()).unwrap();
        t.assign(Pid(11), dthain.clone()).unwrap();
        assert_eq!(t.processes_under(&dthain).len(), 2);
        assert_eq!(t.processes_under(&visitor), vec![Pid(10)]);
        let ghost = root.child("ghost").unwrap();
        assert_eq!(t.assign(Pid(12), ghost), Err(Errno::ENOENT));
    }
}
