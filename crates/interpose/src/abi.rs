//! The register-level system-call ABI.
//!
//! Guest programs marshal calls into [`TraceeVm`](crate::TraceeVm)
//! registers and memory using these conventions; the supervisor decodes
//! them back. Numbers follow Linux x86-64 where a counterpart exists, so
//! traces read naturally; calls the simulated kernel adds (like
//! `get_user_name`, the identity box's new syscall) live above 1000.

use idbox_kernel::{Signal, Whence};
use idbox_types::{Errno, SysResult};
use idbox_vfs::{DirEntry, FileKind, Ino, StatBuf};

/// Syscall numbers.
pub mod nr {
    /// read(fd, buf, len)
    pub const READ: u64 = 0;
    /// write(fd, buf, len)
    pub const WRITE: u64 = 1;
    /// open(path, pathlen, flags, mode)
    pub const OPEN: u64 = 2;
    /// close(fd)
    pub const CLOSE: u64 = 3;
    /// stat(path, pathlen, statbuf)
    pub const STAT: u64 = 4;
    /// fstat(fd, statbuf)
    pub const FSTAT: u64 = 5;
    /// lstat(path, pathlen, statbuf)
    pub const LSTAT: u64 = 6;
    /// lseek(fd, off, whence)
    pub const LSEEK: u64 = 8;
    /// pread(fd, buf, len, off)
    pub const PREAD: u64 = 17;
    /// pwrite(fd, buf, len, off)
    pub const PWRITE: u64 = 18;
    /// access(path, pathlen, mask)
    pub const ACCESS: u64 = 21;
    /// pipe(fdsbuf) — two u64 slots receive (read fd, write fd)
    pub const PIPE: u64 = 22;
    /// dup(fd)
    pub const DUP: u64 = 32;
    /// getpid()
    pub const GETPID: u64 = 39;
    /// fork()
    pub const FORK: u64 = 57;
    /// exec(path, pathlen)
    pub const EXEC: u64 = 59;
    /// exit(code)
    pub const EXIT: u64 = 60;
    /// wait(statusbuf)
    pub const WAIT: u64 = 61;
    /// kill(pid, sig)
    pub const KILL: u64 = 62;
    /// truncate(path, pathlen, size)
    pub const TRUNCATE: u64 = 76;
    /// getcwd(buf, cap)
    pub const GETCWD: u64 = 79;
    /// chdir(path, pathlen)
    pub const CHDIR: u64 = 80;
    /// rename(old, oldlen, new, newlen)
    pub const RENAME: u64 = 82;
    /// mkdir(path, pathlen, mode)
    pub const MKDIR: u64 = 83;
    /// rmdir(path, pathlen)
    pub const RMDIR: u64 = 84;
    /// link(old, oldlen, new, newlen)
    pub const LINK: u64 = 86;
    /// unlink(path, pathlen)
    pub const UNLINK: u64 = 87;
    /// symlink(target, targetlen, linkpath, linklen)
    pub const SYMLINK: u64 = 88;
    /// readlink(path, pathlen, buf, cap)
    pub const READLINK: u64 = 89;
    /// chmod(path, pathlen, mode)
    pub const CHMOD: u64 = 90;
    /// chown(path, pathlen, uid, gid)
    pub const CHOWN: u64 = 92;
    /// umask(mask)
    pub const UMASK: u64 = 95;
    /// getuid()
    pub const GETUID: u64 = 102;
    /// getppid()
    pub const GETPPID: u64 = 110;
    /// readdir(path, pathlen, buf, cap) — simulated kernel's directory API
    pub const READDIR: u64 = 1000;
    /// get_user_name(buf, cap) — the identity box's new syscall
    pub const GET_USER_NAME: u64 = 1001;
    /// sigpending(buf, cap_words)
    pub const SIGPENDING: u64 = 1002;
    /// getenv(name, namelen, buf, cap) — read one environment variable
    pub const GETENV: u64 = 1003;
    /// preadx(fd, len, off) — positioned read answered with borrowed
    /// extents held supervisor-side (the zero-copy data plane): the
    /// bytes never enter guest memory, only the total length returns.
    pub const PREADX: u64 = 1004;
}

/// The environment variable a boxed child spawned by the `exec` RPC
/// finds its request's trace id in (via `getenv`).
pub const TRACE_ENV: &str = "IDBOX_TRACE_ID";

/// Encoded size of a stat buffer: ten 64-bit words.
pub const STAT_WORDS: usize = 10;

/// Byte size of an encoded stat buffer.
pub const STAT_BYTES: usize = STAT_WORDS * 8;

/// Serialize a [`StatBuf`] into ten words.
pub fn encode_stat(st: &StatBuf) -> [u64; STAT_WORDS] {
    [
        st.ino.0,
        kind_code(st.kind),
        st.mode as u64,
        st.uid as u64,
        st.gid as u64,
        st.nlink as u64,
        st.size,
        st.atime,
        st.mtime,
        st.ctime,
    ]
}

/// Deserialize a stat buffer.
pub fn decode_stat(words: &[u64; STAT_WORDS]) -> SysResult<StatBuf> {
    Ok(StatBuf {
        ino: Ino(words[0]),
        kind: kind_from_code(words[1])?,
        mode: words[2] as u16,
        uid: words[3] as u32,
        gid: words[4] as u32,
        nlink: words[5] as u32,
        size: words[6],
        atime: words[7],
        mtime: words[8],
        ctime: words[9],
    })
}

/// On-wire code of a file kind.
pub fn kind_code(kind: FileKind) -> u64 {
    match kind {
        FileKind::File => 0,
        FileKind::Dir => 1,
        FileKind::Symlink => 2,
    }
}

/// Decode a file kind.
pub fn kind_from_code(code: u64) -> SysResult<FileKind> {
    Ok(match code {
        0 => FileKind::File,
        1 => FileKind::Dir,
        2 => FileKind::Symlink,
        _ => return Err(Errno::EINVAL),
    })
}

/// On-wire code of an lseek origin.
pub fn whence_code(w: Whence) -> u64 {
    match w {
        Whence::Set => 0,
        Whence::Cur => 1,
        Whence::End => 2,
    }
}

/// Decode an lseek origin.
pub fn whence_from_code(code: u64) -> SysResult<Whence> {
    Ok(match code {
        0 => Whence::Set,
        1 => Whence::Cur,
        2 => Whence::End,
        _ => return Err(Errno::EINVAL),
    })
}

/// Serialize directory entries as `name\tino\tkind` lines (what the
/// kernel writes into the guest's readdir buffer).
pub fn encode_entries(entries: &[DirEntry]) -> String {
    let mut s = String::new();
    for e in entries {
        s.push_str(&e.name);
        s.push('\t');
        s.push_str(&e.ino.0.to_string());
        s.push('\t');
        s.push_str(&kind_code(e.kind).to_string());
        s.push('\n');
    }
    s
}

/// Parse serialized directory entries.
pub fn decode_entries(text: &str) -> SysResult<Vec<DirEntry>> {
    let mut out = Vec::new();
    for line in text.lines() {
        let mut f = line.rsplitn(3, '\t');
        let kind = f.next().ok_or(Errno::EPROTO)?;
        let ino = f.next().ok_or(Errno::EPROTO)?;
        let name = f.next().ok_or(Errno::EPROTO)?;
        out.push(DirEntry {
            name: name.to_string(),
            ino: Ino(ino.parse().map_err(|_| Errno::EPROTO)?),
            kind: kind_from_code(kind.parse().map_err(|_| Errno::EPROTO)?)?,
        });
    }
    Ok(out)
}

/// Serialize pending signals as their numbers.
pub fn encode_signals(sigs: &[Signal]) -> Vec<u64> {
    sigs.iter().map(|s| s.number() as u64).collect()
}

/// Decode pending signals.
pub fn decode_signals(words: &[u64]) -> Vec<Signal> {
    words
        .iter()
        .filter_map(|&w| Signal::from_number(w as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_roundtrip() {
        let st = StatBuf {
            ino: Ino(42),
            kind: FileKind::Symlink,
            mode: 0o644,
            uid: 1000,
            gid: 1001,
            nlink: 3,
            size: 12345,
            atime: 1,
            mtime: 2,
            ctime: 3,
        };
        let words = encode_stat(&st);
        assert_eq!(decode_stat(&words).unwrap(), st);
    }

    #[test]
    fn bad_kind_code_rejected() {
        assert_eq!(kind_from_code(9), Err(Errno::EINVAL));
    }

    #[test]
    fn whence_roundtrip() {
        for w in [Whence::Set, Whence::Cur, Whence::End] {
            assert_eq!(whence_from_code(whence_code(w)).unwrap(), w);
        }
        assert!(whence_from_code(7).is_err());
    }

    #[test]
    fn entries_roundtrip() {
        let entries = vec![
            DirEntry {
                name: ".".into(),
                ino: Ino(1),
                kind: FileKind::Dir,
            },
            DirEntry {
                name: "with\ttab? no, names can't have tabs in practice".into(),
                ino: Ino(7),
                kind: FileKind::File,
            },
            DirEntry {
                name: "link".into(),
                ino: Ino(9),
                kind: FileKind::Symlink,
            },
        ];
        let text = encode_entries(&entries);
        let back = decode_entries(&text).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn signals_roundtrip() {
        let sigs = vec![Signal::Usr1, Signal::Term, Signal::Int];
        assert_eq!(decode_signals(&encode_signals(&sigs)), sigs);
    }

    #[test]
    fn garbage_entries_rejected() {
        assert!(decode_entries("nonsense").is_err());
        assert!(decode_entries("a\tnotanumber\t0\n").is_err());
    }
}
