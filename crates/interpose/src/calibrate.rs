//! Cost-model calibration.
//!
//! Figure 5(a)'s headline is that a trapped system call costs **an order
//! of magnitude** more than a direct one. Our substrate reaches the
//! kernel by function call, so the six context switches of a real trap
//! are performed explicitly by the [`idbox_types::SwitchEngine`]; this module measures
//! the host and picks the switch footprint that lands boxed `getpid` at
//! the target ratio (10x by default). Every other number in the
//! evaluation — stat vs. read, 1-byte vs. 8-kilobyte transfers, whole-
//! application overheads — then *emerges* from the mechanism rather than
//! being dialed in.

use crate::guest::GuestCtx;
use crate::{share, AllowAll, Supervisor};
use idbox_kernel::Kernel;
use idbox_types::CostModel;
use idbox_vfs::Cred;
use std::time::Instant;

/// The slowdown Figure 5(a) reports for trapped `getpid`.
pub const TARGET_RATIO: f64 = 10.0;

/// Iterations per measurement batch.
const BATCH: u32 = 20_000;

/// Measure the per-call cost of `getpid` under a fresh supervisor.
fn measure_getpid(interposed: Option<CostModel>) -> f64 {
    let kernel = share(Kernel::new());
    let pid = kernel
        .lock()
        .spawn(Cred::ROOT, "/tmp", "calibrate")
        .expect("spawn");
    let mut sup = match interposed {
        None => Supervisor::direct(kernel),
        Some(model) => Supervisor::interposed(kernel, Box::new(AllowAll), model),
    };
    let mut ctx = GuestCtx::new(&mut sup, pid);
    // Warm up caches and the switch footprint.
    for _ in 0..2_000 {
        ctx.getpid();
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..BATCH {
            ctx.getpid();
        }
        let per_call = start.elapsed().as_secs_f64() / BATCH as f64;
        best = best.min(per_call);
    }
    best
}

/// Measure the boxed/direct `getpid` latency ratio under `model`.
pub fn measure_ratio(model: CostModel) -> f64 {
    let direct = measure_getpid(None);
    let boxed = measure_getpid(Some(model));
    boxed / direct
}

/// Find a cost model whose boxed/direct `getpid` ratio is close to
/// `target`. Binary-searches the switch footprint; returns the model and
/// the achieved ratio.
pub fn calibrate_to(target: f64) -> (CostModel, f64) {
    let base = CostModel::calibrated();
    // The mechanism alone (peeks, pokes, nullified call, bookkeeping) has
    // a floor; if it already exceeds the target, run with free switches.
    let floor = measure_ratio(CostModel::free_switches());
    if floor >= target {
        return (CostModel::free_switches(), floor);
    }
    let (mut lo, mut hi) = (64usize, 1 << 22);
    let mut best = (base, f64::INFINITY);
    for _ in 0..14 {
        let mid = (lo + hi) / 2;
        let model = CostModel {
            switch_footprint_bytes: mid,
            ..base
        };
        let ratio = measure_ratio(model);
        if (ratio - target).abs() < (best.1 - target).abs() {
            best = (model, ratio);
        }
        if (ratio - target).abs() / target < 0.05 {
            return (model, ratio);
        }
        if ratio < target {
            lo = mid + 1;
        } else {
            hi = mid.saturating_sub(1).max(64);
        }
        if lo >= hi {
            break;
        }
    }
    best
}

/// Calibrate to the paper's 10x target.
pub fn calibrate() -> (CostModel, f64) {
    calibrate_to(TARGET_RATIO)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interposition_is_slower_than_direct() {
        // Even without asserting the exact ratio (CI machines vary), the
        // boxed path must cost measurably more.
        let ratio = measure_ratio(CostModel::calibrated());
        assert!(ratio > 1.5, "boxed/direct getpid ratio {ratio} too low");
    }

    #[test]
    fn bigger_footprint_costs_more() {
        let small = measure_ratio(CostModel::calibrated().scaled(0.25));
        let large = measure_ratio(CostModel::calibrated().scaled(16.0));
        assert!(
            large > small,
            "footprint scaling had no effect: {small} vs {large}"
        );
    }
}
