//! The I/O channel: the shared buffer used for bulk data movement.
//!
//! Recent Linux kernels refused writes to `/proc/x/mem`, so Parrot moves
//! bulk data through a small in-memory file shared between the supervisor
//! and all of its children: the supervisor copies data into the channel,
//! rewrites the application's `read` into a `pread` on the channel fd,
//! and the application itself pulls the data in (paper, Section 5 and
//! Figure 4b). The cost that matters — and that this type reproduces —
//! is the **extra copy**: channel transfers always move each byte twice.

/// Default channel capacity (8 MiB, enough for any single transfer the
/// workloads make; grows on demand like a memory-backed file).
pub const DEFAULT_CHANNEL: usize = 8 << 20;

/// The shared bulk-transfer buffer.
#[derive(Debug, Clone)]
pub struct IoChannel {
    buf: Vec<u8>,
    /// Bytes staged by the most recent transfer.
    staged: usize,
    /// Lifetime counter of bytes moved through the channel.
    total_bytes: u64,
    /// Lifetime counter of transfers.
    transfers: u64,
}

impl Default for IoChannel {
    fn default() -> Self {
        IoChannel::new()
    }
}

impl IoChannel {
    /// A channel with the default capacity.
    pub fn new() -> Self {
        IoChannel::with_capacity(DEFAULT_CHANNEL)
    }

    /// A channel with a specific initial capacity.
    pub fn with_capacity(cap: usize) -> Self {
        IoChannel {
            buf: vec![0; cap],
            staged: 0,
            total_bytes: 0,
            transfers: 0,
        }
    }

    /// Supervisor side: copy `data` into the channel (copy #1 of the bulk
    /// path). Returns the in-channel offset (always 0: transfers are
    /// serialized per supervisor, like Parrot's per-child channel slots).
    pub fn stage(&mut self, data: &[u8]) -> u64 {
        if data.len() > self.buf.len() {
            self.buf.resize(data.len(), 0);
        }
        self.buf[..data.len()].copy_from_slice(data);
        self.staged = data.len();
        self.total_bytes += data.len() as u64;
        self.transfers += 1;
        0
    }

    /// Application side: pull the staged bytes out of the channel into a
    /// destination buffer (copy #2 — the `pread` the application was
    /// coerced into).
    pub fn fetch(&self, out: &mut [u8]) -> usize {
        let n = out.len().min(self.staged);
        out[..n].copy_from_slice(&self.buf[..n]);
        n
    }

    /// Application side: copy outgoing data into the channel (the
    /// `pwrite` direction), making it visible to the supervisor.
    pub fn submit(&mut self, data: &[u8]) {
        self.stage(data);
    }

    /// Supervisor side: borrow the staged bytes (the supervisor maps the
    /// channel, so its access is zero-copy).
    pub fn staged_bytes(&self) -> &[u8] {
        &self.buf[..self.staged]
    }

    /// Lifetime bytes moved through the channel.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Lifetime number of transfers.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_then_fetch() {
        let mut ch = IoChannel::with_capacity(16);
        ch.stage(b"hello world");
        let mut out = [0u8; 11];
        assert_eq!(ch.fetch(&mut out), 11);
        assert_eq!(&out, b"hello world");
    }

    #[test]
    fn fetch_respects_out_len() {
        let mut ch = IoChannel::with_capacity(16);
        ch.stage(b"abcdef");
        let mut out = [0u8; 3];
        assert_eq!(ch.fetch(&mut out), 3);
        assert_eq!(&out, b"abc");
    }

    #[test]
    fn grows_beyond_capacity() {
        let mut ch = IoChannel::with_capacity(4);
        let big = vec![7u8; 1000];
        ch.stage(&big);
        let mut out = vec![0u8; 1000];
        assert_eq!(ch.fetch(&mut out), 1000);
        assert_eq!(out, big);
    }

    #[test]
    fn counters_accumulate() {
        let mut ch = IoChannel::new();
        ch.stage(b"xxxx");
        ch.submit(b"yy");
        assert_eq!(ch.total_bytes(), 6);
        assert_eq!(ch.transfers(), 2);
    }

    #[test]
    fn staged_bytes_view() {
        let mut ch = IoChannel::new();
        ch.submit(b"payload");
        assert_eq!(ch.staged_bytes(), b"payload");
    }
}
