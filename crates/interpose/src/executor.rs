//! The supervisor: decode, police, delegate, nullify, reply.

use crate::abi::{self, nr};
use crate::channel::IoChannel;
use crate::policy::{AllowAll, PolicyDecision, SyscallPolicy};
use crate::trace::TraceSink;
use crate::vm::{reg, TraceeVm};
use crate::{SharedKernel, SMALL_IO_MAX};
use idbox_kernel::{ExtentList, LatencyStats, OpenFlags, Pid, Signal, Syscall, SysRet};
use idbox_obs::{IdentityCounters, Phase, SlowOpLog, Span, TraceCell};
use idbox_types::{CostModel, Errno, SwitchEngine, SysResult, TrapCostReport};
use idbox_vfs::Access;
use std::sync::Arc;
use std::time::Instant;

/// Per-identity observability hooks an identity box attaches to its
/// supervisor ([`Supervisor::attach_obs`]).
///
/// The counters are this identity's row in a server-wide
/// [`idbox_obs::IdentityMetrics`] registry; the slow-op ring and trace
/// cell are shared with the serving session, so dispatch and policy
/// spans recorded here carry the trace id of the RPC being served.
pub struct ObsHooks {
    /// The boxed identity, stamped into spans.
    pub identity: String,
    /// This identity's counters (syscalls, bytes, denials...).
    pub counters: Arc<IdentityCounters>,
    /// Ring of spans that crossed the slow-op threshold.
    pub slow_ops: Arc<SlowOpLog>,
    /// The trace id of the request currently being served, if any.
    pub trace: Arc<TraceCell>,
}

/// How the supervisor reaches the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Baseline: straight function call, slice copies, no policy.
    Direct,
    /// Identity-box path: full trap round trip with peek/poke and the
    /// I/O channel.
    Interposed,
    /// The paper's Section 9 proposal: the policy runs *inside the
    /// kernel* — same checks as `Interposed`, but at function-call cost
    /// (no traps, no word-at-a-time copies, no extra data copy).
    InKernel,
}

/// Where a call's reply payload must land in guest memory.
#[derive(Debug, Clone, Copy)]
enum OutSpec {
    /// No out-of-band output.
    None,
    /// A byte buffer (read, readdir, getcwd, readlink, get_user_name).
    Buf { addr: u64, cap: usize },
    /// An encoded stat record.
    Stat { addr: u64 },
    /// A wait status word.
    Status { addr: u64 },
    /// A signal-number word array.
    Sigs { addr: u64, cap_words: usize },
    /// A pipe's two fd words.
    PipeFds { addr: u64 },
}

/// The supervisor process: runs guest programs and services their
/// system calls.
///
/// One supervisor corresponds to one `parrot` invocation: it supervises a
/// process tree, owns the per-supervisor [`IoChannel`], the simulated
/// context-switch engine, and the [`SyscallPolicy`] (for an identity box,
/// the policy *is* the box).
pub struct Supervisor {
    kernel: SharedKernel,
    mode: ExecMode,
    policy: Box<dyn SyscallPolicy>,
    engine: SwitchEngine,
    channel: IoChannel,
    trace: Option<TraceSink>,
    /// Latency-histogram handle cloned out of the kernel at
    /// construction, so dispatch timings are recorded without taking
    /// either side of the kernel lock.
    latency: Arc<LatencyStats>,
    /// Per-identity accounting + slow-op spans, when a box attached
    /// them. All hooks are atomics bumped through `&self` — nothing
    /// here adds a lock to the dispatch path.
    obs: Option<ObsHooks>,
    /// The last `preadx` reply's extents, parked out-of-band: extent
    /// payloads never enter flat guest memory (that copy is the whole
    /// thing being avoided), so `execute` stashes them here and the
    /// embedding context collects them with [`Supervisor::take_extents`].
    pending_extents: Option<ExtentList>,
}

impl Supervisor {
    /// A baseline supervisor: system calls go straight to the kernel.
    pub fn direct(kernel: SharedKernel) -> Self {
        let latency = Arc::clone(kernel.read().latency());
        Supervisor {
            kernel,
            mode: ExecMode::Direct,
            policy: Box::new(AllowAll),
            engine: SwitchEngine::new(CostModel::free_switches()),
            channel: IoChannel::new(),
            trace: None,
            obs: None,
            latency,
            pending_extents: None,
        }
    }

    /// A kernel-resident policy: the checks of `policy` run on every
    /// call, but at native cost — what Section 9 argues future operating
    /// systems should provide.
    pub fn in_kernel(kernel: SharedKernel, policy: Box<dyn SyscallPolicy>) -> Self {
        let latency = Arc::clone(kernel.read().latency());
        Supervisor {
            kernel,
            mode: ExecMode::InKernel,
            policy,
            engine: SwitchEngine::new(CostModel::free_switches()),
            channel: IoChannel::new(),
            trace: None,
            obs: None,
            latency,
            pending_extents: None,
        }
    }

    /// An interposed supervisor with a policy and a cost model.
    pub fn interposed(
        kernel: SharedKernel,
        policy: Box<dyn SyscallPolicy>,
        model: CostModel,
    ) -> Self {
        let latency = Arc::clone(kernel.read().latency());
        Supervisor {
            kernel,
            mode: ExecMode::Interposed,
            policy,
            engine: SwitchEngine::new(model),
            channel: IoChannel::new(),
            trace: None,
            obs: None,
            latency,
            pending_extents: None,
        }
    }

    /// Attach a forensic trace sink: every trapped call (and its
    /// outcome) is recorded (paper, Section 9's forensic use).
    pub fn attach_trace(&mut self, sink: TraceSink) {
        self.trace = Some(sink);
    }

    /// Attach per-identity accounting and slow-op span hooks (what an
    /// identity box does when the server runs with a metrics registry).
    pub fn attach_obs(&mut self, hooks: ObsHooks) {
        self.obs = Some(hooks);
    }

    /// The shared kernel handle.
    pub fn kernel(&self) -> &SharedKernel {
        &self.kernel
    }

    /// Execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The policy in force.
    pub fn policy_name(&self) -> String {
        self.policy.name().to_string()
    }

    /// Accumulated trap-cost counters.
    pub fn cost_report(&self) -> TrapCostReport {
        self.engine.report()
    }

    /// Reset the trap-cost counters.
    pub fn reset_cost_report(&mut self) {
        self.engine.reset_report();
    }

    /// Bytes moved through the I/O channel so far.
    pub fn channel_bytes(&self) -> u64 {
        self.channel.total_bytes()
    }

    /// Collect the extents parked by the last `preadx` reply, if any.
    /// The guest saw only the total length in its return register; the
    /// bytes themselves stay supervisor-side as `Arc` borrows, and the
    /// embedding context (the Chirp server's `get`) streams them from
    /// here without a copy.
    pub fn take_extents(&mut self) -> Option<ExtentList> {
        self.pending_extents.take()
    }

    /// Park an extent reply and translate it into the register-visible
    /// result (`Num(total)`): extents never pass through `write_reply`,
    /// whose catch-all would reject the unknown shape as `EPROTO`.
    fn park_extents(&mut self, result: SysResult<SysRet>) -> SysResult<SysRet> {
        match result {
            Ok(SysRet::Extents(x)) => {
                let total = x.total as i64;
                self.pending_extents = Some(x);
                Ok(SysRet::Num(total))
            }
            other => other,
        }
    }

    /// Service the system call currently loaded in `vm`'s registers on
    /// behalf of `pid`. On return, `RET` and any output buffers are
    /// filled in.
    pub fn execute(&mut self, pid: Pid, vm: &mut TraceeVm) {
        match self.mode {
            ExecMode::Direct => self.execute_direct(pid, vm, false),
            ExecMode::InKernel => self.execute_direct(pid, vm, true),
            ExecMode::Interposed => self.execute_interposed(pid, vm),
        }
    }

    /// Baseline path: one decode by slice access, one kernel entry, one
    /// copy out. With `with_policy`, the policy rules first (the
    /// in-kernel identity box of Section 9), still at native cost.
    fn execute_direct(&mut self, pid: Pid, vm: &mut TraceeVm, with_policy: bool) {
        let decoded = decode_call(vm, &mut NoCount);
        let (call, out) = match decoded {
            Ok(x) => x,
            Err(e) => {
                vm.set_ret(e.as_ret());
                return;
            }
        };
        let result = if with_policy {
            self.dispatch_policed(pid, &call, false)
        } else {
            self.dispatch_plain(pid, &call)
        };
        if let Some(trace) = &self.trace {
            trace.record(pid, &call, &result);
        }
        let result = self.park_extents(result);
        if let Err(e) = write_reply(vm, result, out, &mut DirectData) {
            vm.set_ret(e.as_ret());
        }
    }

    /// Kernel dispatch without a policy: every call — mutating ones
    /// included — runs under the *shared* side of the structure lock;
    /// the kernel's internal shard locks provide the mutual exclusion.
    fn dispatch_plain(&mut self, pid: Pid, call: &Syscall) -> SysResult<SysRet> {
        let t0 = Instant::now();
        let result = self.kernel.read().syscall_shared(pid, call.clone());
        let nanos = t0.elapsed().as_nanos() as u64;
        self.latency.record(call, nanos);
        self.observe_dispatch(call, &result, nanos);
        result
    }

    /// Policy ruling plus kernel dispatch.
    ///
    /// The whole sequence — policy check, kernel entry, post-processing,
    /// and (with `nullify`) the nullified `getpid` that really enters
    /// the kernel (Figure 4(a), steps 4-5) — runs under one *shared*
    /// guard of the structure lock. Concurrent supervisors therefore
    /// never serialize here; any contention happens inside the kernel,
    /// on the shard locks of the state the calls actually touch.
    ///
    /// Dispatch is timed into the kernel's latency histograms: the clock
    /// covers the policy ruling plus the kernel entry, i.e. what the
    /// guest experiences for the call.
    fn dispatch_policed(&mut self, pid: Pid, call: &Syscall, nullify: bool) -> SysResult<SysRet> {
        let t0 = Instant::now();
        let result = self.dispatch_policed_inner(pid, call, nullify);
        let nanos = t0.elapsed().as_nanos() as u64;
        self.latency.record(call, nanos);
        self.observe_dispatch(call, &result, nanos);
        result
    }

    /// Per-identity accounting for one dispatched call: the syscall
    /// counter, byte counters for the data-moving calls, and — when the
    /// dispatch crossed the slow-op threshold — a `dispatch` span
    /// stamped with the current trace id.
    fn observe_dispatch(&self, call: &Syscall, result: &SysResult<SysRet>, nanos: u64) {
        let Some(obs) = &self.obs else { return };
        obs.counters.bump_syscall(call.slot());
        if let Ok(ret) = result {
            match (call, ret) {
                (Syscall::Read(..) | Syscall::Pread(..), SysRet::Data(data)) => {
                    obs.counters.add_bytes_read(data.len() as u64);
                }
                (Syscall::Preadx(..), SysRet::Extents(x)) => {
                    obs.counters.add_bytes_read(x.total as u64);
                }
                (Syscall::Write(..) | Syscall::Pwrite(..), SysRet::Num(n)) if *n > 0 => {
                    obs.counters.add_bytes_written(*n as u64);
                }
                _ => {}
            }
        }
        Self::observe_span(obs, Phase::Dispatch, call.name(), nanos);
    }

    /// Record one phase span: into the flight recorder when the
    /// request is traced (every span, so a tracedump shows the whole
    /// request), and into the slow-op ring if it is slow enough.
    fn observe_span(obs: &ObsHooks, phase: Phase, name: &str, nanos: u64) {
        let trace = obs.trace.get();
        if trace.is_some() {
            let plane = match phase {
                Phase::Rpc => "rpc",
                Phase::Policy => "policy",
                Phase::Dispatch => "dispatch",
                Phase::Exec => "exec",
            };
            idbox_obs::flight::record_span(
                plane,
                name,
                trace,
                idbox_obs::now_unix_ns().saturating_sub(nanos),
                nanos,
            );
        }
        if nanos >= obs.slow_ops.threshold_ns() {
            obs.slow_ops.record(Span {
                trace: obs.trace.get(),
                phase,
                name: name.to_string(),
                identity: obs.identity.clone(),
                start_ns: idbox_obs::now_unix_ns().saturating_sub(nanos),
                dur_ns: nanos,
            });
        }
    }

    fn dispatch_policed_inner(
        &mut self,
        pid: Pid,
        call: &Syscall,
        nullify: bool,
    ) -> SysResult<SysRet> {
        let kernel = self.kernel.read();
        let p0 = Instant::now();
        let decision = self.policy.check(&kernel, pid, call);
        if let Some(obs) = &self.obs {
            Self::observe_span(obs, Phase::Policy, call.name(), p0.elapsed().as_nanos() as u64);
        }
        let mut result = match decision {
            PolicyDecision::Allow => kernel.syscall_shared(pid, call.clone()),
            PolicyDecision::Rewrite(replacement) => kernel.syscall_shared(pid, replacement),
            PolicyDecision::Deny(errno) => Err(errno),
        };
        self.policy.post(&kernel, pid, call, &mut result);
        if nullify {
            let _ = kernel.null_syscall(pid);
        }
        result
    }

    /// The Figure 4(a) control flow, step by step.
    fn execute_interposed(&mut self, pid: Pid, vm: &mut TraceeVm) {
        // Steps 1-2: the attempted call stops the child; the kernel
        // notifies the supervisor. Two mode switches in, two out at the
        // end, plus the nullified call's own pair: six total, charged as
        // one round trip.
        self.engine.trap_round_trip();

        // Step 2 (continued): the supervisor examines the call. Registers
        // arrive via one GETREGS; small memory-resident arguments cross
        // via peek one word at a time, bulk write payloads through the
        // I/O channel (the child is coerced into submitting them).
        let mut peeker = PeekOrChannel {
            engine: &mut self.engine,
            channel: &mut self.channel,
        };
        let decoded = decode_call(vm, &mut peeker);
        let (call, out) = match decoded {
            Ok(x) => x,
            Err(e) => {
                vm.set_ret(e.as_ret());
                return;
            }
        };

        // Step 3: the supervisor implements the action itself, after the
        // policy (the identity box) has ruled on it. Steps 4-5 happen
        // inside the dispatcher: the original call is nullified into a
        // getpid() that really enters the kernel — under whichever side
        // of the kernel lock the call was served on.
        let result = self.dispatch_policed(pid, &call, true);
        if let Some(trace) = &self.trace {
            trace.record(pid, &call, &result);
        }
        // Extent replies stay supervisor-side: only the length crosses
        // back into the guest — no pokes, no channel bytes. That *is*
        // the zero copy.
        let result = self.park_extents(result);

        // Step 6: the supervisor modifies the result into the child:
        // registers and small payloads by poke, bulk payloads through the
        // I/O channel (the child is coerced into pulling them in).
        let mut writer = ChannelOrPoke {
            engine: &mut self.engine,
            channel: &mut self.channel,
        };
        if let Err(e) = write_reply(vm, result, out, &mut writer) {
            vm.set_ret(e.as_ret());
        }
        // Step 7: the child resumes with the reply visible (switches for
        // the resume were charged in the round trip above).
    }
}

// ----------------------------------------------------------------------
// Memory access strategies
// ----------------------------------------------------------------------

/// How the supervisor reads argument bytes out of the tracee.
trait ArgReader {
    fn read_bytes(&mut self, vm: &TraceeVm, addr: u64, len: usize) -> SysResult<Vec<u8>>;
}

/// Direct slice access (the kernel reading user memory natively).
struct NoCount;

impl ArgReader for NoCount {
    fn read_bytes(&mut self, vm: &TraceeVm, addr: u64, len: usize) -> SysResult<Vec<u8>> {
        Ok(vm.guest_slice(addr, len)?.to_vec())
    }
}

/// The interposed argument path: one ranged peek for small arguments,
/// the I/O channel for bulk write payloads. The ranged transfer is
/// charged its words-equivalent peek count, so the Figure 4 accounting
/// is identical to the word-at-a-time loop it replaces — only the host
/// copy got cheaper.
struct PeekOrChannel<'a> {
    engine: &'a mut SwitchEngine,
    channel: &'a mut IoChannel,
}

impl ArgReader for PeekOrChannel<'_> {
    fn read_bytes(&mut self, vm: &TraceeVm, addr: u64, len: usize) -> SysResult<Vec<u8>> {
        if len > SMALL_IO_MAX {
            // The child is coerced into submitting the payload to the
            // channel (copy #1); the supervisor then reads it out of its
            // own mapping (copy #2, into the typed call).
            let src = vm.guest_slice(addr, len)?;
            self.channel.submit(src);
            self.engine.count_channel(len as u64);
            return Ok(self.channel.staged_bytes().to_vec());
        }
        let out = vm.peek_bytes(addr, len)?;
        self.engine.count_peeks(len.div_ceil(8) as u64);
        Ok(out)
    }
}

/// How the supervisor writes reply bytes into the tracee.
trait ReplyWriter {
    fn write_bytes(&mut self, vm: &mut TraceeVm, addr: u64, data: &[u8]) -> SysResult<()>;

    /// Write a word array (stat buffers, signal lists): always poke-sized.
    fn write_words(&mut self, vm: &mut TraceeVm, addr: u64, words: &[u64]) -> SysResult<()>;
}

/// Direct slice writes (the kernel's single copy-out).
struct DirectData;

impl ReplyWriter for DirectData {
    fn write_bytes(&mut self, vm: &mut TraceeVm, addr: u64, data: &[u8]) -> SysResult<()> {
        vm.guest_write(addr, data)
    }

    fn write_words(&mut self, vm: &mut TraceeVm, addr: u64, words: &[u64]) -> SysResult<()> {
        for (i, &w) in words.iter().enumerate() {
            vm.poke_word(addr + (i * 8) as u64, w)?;
        }
        Ok(())
    }
}

/// The interposed write-back: one ranged poke for small payloads, the
/// I/O channel (with its extra copy) for bulk ones. Charged
/// words-equivalent, including the extra read-modify-write peek the
/// word loop paid for a trailing partial word.
struct ChannelOrPoke<'a> {
    engine: &'a mut SwitchEngine,
    channel: &'a mut IoChannel,
}

impl ReplyWriter for ChannelOrPoke<'_> {
    fn write_bytes(&mut self, vm: &mut TraceeVm, addr: u64, data: &[u8]) -> SysResult<()> {
        if data.len() <= SMALL_IO_MAX {
            vm.poke_bytes(addr, data)?;
            self.engine.count_pokes(data.len().div_ceil(8) as u64);
            if !data.len().is_multiple_of(8) {
                // The trailing partial word is a read-modify-write,
                // like real ptrace: one peek's worth of cost.
                self.engine.count_peek();
            }
            Ok(())
        } else {
            // Bulk: supervisor copies into the channel, then the child is
            // coerced into pulling it into its own buffer (copy #2).
            self.channel.stage(data);
            self.engine.count_channel(data.len() as u64);
            let n = data.len();
            let dst = vm.guest_slice_mut(addr, n)?;
            let copied = self.channel.fetch(dst);
            debug_assert_eq!(copied, n);
            Ok(())
        }
    }

    fn write_words(&mut self, vm: &mut TraceeVm, addr: u64, words: &[u64]) -> SysResult<()> {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        vm.poke_bytes(addr, &bytes)?;
        self.engine.count_pokes(words.len() as u64);
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Decode / reply
// ----------------------------------------------------------------------

fn read_str(reader: &mut dyn ArgReader, vm: &TraceeVm, addr: u64, len: u64) -> SysResult<String> {
    if len as usize > idbox_vfs::path::PATH_MAX {
        return Err(Errno::ENAMETOOLONG);
    }
    let bytes = reader.read_bytes(vm, addr, len as usize)?;
    String::from_utf8(bytes).map_err(|_| Errno::EINVAL)
}

/// Decode the registers (and any memory-resident arguments) into a typed
/// call plus the location where its reply payload belongs.
fn decode_call(vm: &TraceeVm, reader: &mut dyn ArgReader) -> SysResult<(Syscall, OutSpec)> {
    let r = &vm.regs;
    let (n, a0, a1, a2, a3) = (r[reg::NR], r[reg::A0], r[reg::A1], r[reg::A2], r[reg::A3]);
    let call = match n {
        nr::GETPID => (Syscall::Getpid, OutSpec::None),
        nr::GETPPID => (Syscall::Getppid, OutSpec::None),
        nr::GETUID => (Syscall::Getuid, OutSpec::None),
        nr::OPEN => {
            let path = read_str(reader, vm, a0, a1)?;
            (
                Syscall::Open(path, OpenFlags::from_bits(a2), a3 as u16),
                OutSpec::None,
            )
        }
        nr::CLOSE => (Syscall::Close(a0 as usize), OutSpec::None),
        nr::READ => (
            Syscall::Read(a0 as usize, a2 as usize),
            OutSpec::Buf {
                addr: a1,
                cap: a2 as usize,
            },
        ),
        nr::PREAD => (
            Syscall::Pread(a0 as usize, a2 as usize, a3),
            OutSpec::Buf {
                addr: a1,
                cap: a2 as usize,
            },
        ),
        // Zero-copy read: the reply is held supervisor-side as borrowed
        // extents, so there is no output buffer to fill.
        nr::PREADX => (Syscall::Preadx(a0 as usize, a1 as usize, a2), OutSpec::None),
        nr::WRITE => {
            let data = reader.read_bytes(vm, a1, a2 as usize)?;
            (Syscall::Write(a0 as usize, data), OutSpec::None)
        }
        nr::PWRITE => {
            let data = reader.read_bytes(vm, a1, a2 as usize)?;
            (Syscall::Pwrite(a0 as usize, data, a3), OutSpec::None)
        }
        nr::LSEEK => (
            Syscall::Lseek(a0 as usize, a1 as i64, abi::whence_from_code(a2)?),
            OutSpec::None,
        ),
        nr::DUP => (Syscall::Dup(a0 as usize), OutSpec::None),
        nr::STAT => (
            Syscall::Stat(read_str(reader, vm, a0, a1)?),
            OutSpec::Stat { addr: a2 },
        ),
        nr::LSTAT => (
            Syscall::Lstat(read_str(reader, vm, a0, a1)?),
            OutSpec::Stat { addr: a2 },
        ),
        nr::FSTAT => (
            Syscall::Fstat(a0 as usize),
            OutSpec::Stat { addr: a1 },
        ),
        nr::MKDIR => (
            Syscall::Mkdir(read_str(reader, vm, a0, a1)?, a2 as u16),
            OutSpec::None,
        ),
        nr::RMDIR => (Syscall::Rmdir(read_str(reader, vm, a0, a1)?), OutSpec::None),
        nr::UNLINK => (Syscall::Unlink(read_str(reader, vm, a0, a1)?), OutSpec::None),
        nr::LINK => (
            Syscall::Link(
                read_str(reader, vm, a0, a1)?,
                read_str(reader, vm, a2, a3)?,
            ),
            OutSpec::None,
        ),
        nr::SYMLINK => (
            Syscall::Symlink(
                read_str(reader, vm, a0, a1)?,
                read_str(reader, vm, a2, a3)?,
            ),
            OutSpec::None,
        ),
        nr::READLINK => (
            Syscall::Readlink(read_str(reader, vm, a0, a1)?),
            OutSpec::Buf {
                addr: a2,
                cap: a3 as usize,
            },
        ),
        nr::RENAME => (
            Syscall::Rename(
                read_str(reader, vm, a0, a1)?,
                read_str(reader, vm, a2, a3)?,
            ),
            OutSpec::None,
        ),
        nr::TRUNCATE => (
            Syscall::Truncate(read_str(reader, vm, a0, a1)?, a2),
            OutSpec::None,
        ),
        nr::ACCESS => (
            Syscall::AccessCheck(read_str(reader, vm, a0, a1)?, Access(a2 as u8)),
            OutSpec::None,
        ),
        nr::READDIR => (
            Syscall::Readdir(read_str(reader, vm, a0, a1)?),
            OutSpec::Buf {
                addr: a2,
                cap: a3 as usize,
            },
        ),
        nr::CHMOD => (
            Syscall::Chmod(read_str(reader, vm, a0, a1)?, a2 as u16),
            OutSpec::None,
        ),
        nr::CHOWN => (
            Syscall::Chown(read_str(reader, vm, a0, a1)?, a2 as u32, a3 as u32),
            OutSpec::None,
        ),
        nr::CHDIR => (Syscall::Chdir(read_str(reader, vm, a0, a1)?), OutSpec::None),
        nr::GETCWD => (
            Syscall::Getcwd,
            OutSpec::Buf {
                addr: a0,
                cap: a1 as usize,
            },
        ),
        nr::UMASK => (Syscall::Umask(a0 as u16), OutSpec::None),
        nr::FORK => (Syscall::Fork, OutSpec::None),
        nr::EXEC => (Syscall::Exec(read_str(reader, vm, a0, a1)?), OutSpec::None),
        nr::EXIT => (Syscall::Exit(a0 as i64 as i32), OutSpec::None),
        nr::WAIT => (Syscall::Wait, OutSpec::Status { addr: a0 }),
        nr::KILL => {
            let sig = Signal::from_number(a1 as u32).ok_or(Errno::EINVAL)?;
            (Syscall::Kill(Pid(a0 as u32), sig), OutSpec::None)
        }
        nr::PIPE => (Syscall::Pipe, OutSpec::PipeFds { addr: a0 }),
        nr::SIGPENDING => (
            Syscall::SigPending,
            OutSpec::Sigs {
                addr: a0,
                cap_words: a1 as usize,
            },
        ),
        nr::GET_USER_NAME => (
            Syscall::GetUserName,
            OutSpec::Buf {
                addr: a0,
                cap: a1 as usize,
            },
        ),
        nr::GETENV => (
            Syscall::Getenv(read_str(reader, vm, a0, a1)?),
            OutSpec::Buf {
                addr: a2,
                cap: a3 as usize,
            },
        ),
        _ => return Err(Errno::ENOSYS),
    };
    Ok(call)
}

/// Materialize a kernel result into the tracee: return register plus any
/// out-of-band payload.
fn write_reply(
    vm: &mut TraceeVm,
    result: SysResult<SysRet>,
    out: OutSpec,
    writer: &mut dyn ReplyWriter,
) -> SysResult<()> {
    let ret = match result {
        Err(e) => {
            vm.set_ret(e.as_ret());
            return Ok(());
        }
        Ok(ret) => ret,
    };
    let ret_val: i64 = match (ret, out) {
        (SysRet::Unit, _) => 0,
        (SysRet::Num(n), _) => n,
        (SysRet::Data(data), OutSpec::Buf { addr, cap }) => {
            if data.len() > cap {
                return Err(Errno::EINVAL);
            }
            writer.write_bytes(vm, addr, &data)?;
            data.len() as i64
        }
        (SysRet::Text(s), OutSpec::Buf { addr, cap }) => {
            if s.len() > cap {
                return Err(Errno::ERANGE);
            }
            writer.write_bytes(vm, addr, s.as_bytes())?;
            s.len() as i64
        }
        (SysRet::Name(id), OutSpec::Buf { addr, cap }) => {
            let s = id.as_str();
            if s.len() > cap {
                return Err(Errno::ERANGE);
            }
            writer.write_bytes(vm, addr, s.as_bytes())?;
            s.len() as i64
        }
        (SysRet::Entries(entries), OutSpec::Buf { addr, cap }) => {
            let text = abi::encode_entries(&entries);
            if text.len() > cap {
                return Err(Errno::ERANGE);
            }
            writer.write_bytes(vm, addr, text.as_bytes())?;
            text.len() as i64
        }
        (SysRet::Stat(st), OutSpec::Stat { addr }) => {
            writer.write_words(vm, addr, &abi::encode_stat(&st))?;
            0
        }
        (SysRet::Reaped(pid, code), OutSpec::Status { addr }) => {
            writer.write_words(vm, addr, &[code as u64])?;
            pid.0 as i64
        }
        (SysRet::Signals(sigs), OutSpec::Sigs { addr, cap_words }) => {
            if sigs.len() > cap_words {
                return Err(Errno::ERANGE);
            }
            writer.write_words(vm, addr, &abi::encode_signals(&sigs))?;
            sigs.len() as i64
        }
        (SysRet::PipeFds(rfd, wfd), OutSpec::PipeFds { addr }) => {
            writer.write_words(vm, addr, &[rfd as u64, wfd as u64])?;
            0
        }
        // A result shape that does not match its out spec is a supervisor
        // bug surfaced as EPROTO rather than a panic.
        _ => return Err(Errno::EPROTO),
    };
    vm.set_ret(ret_val);
    Ok(())
}
