//! The guest program's view of the system.
//!
//! A guest program is a Rust function that receives a [`GuestCtx`] and
//! makes system calls through it. Each call is marshalled into the
//! tracee's registers and memory — strings copied into the string area,
//! data into the data buffer — exactly as a real program's libc would
//! prepare a syscall, and then handed to the [`Supervisor`], which
//! services it in direct or interposed mode. The guest cannot bypass
//! the supervisor: there is no other path to the kernel.

use crate::abi::{self, nr};
use crate::executor::Supervisor;
use crate::vm::TraceeVm;
use idbox_kernel::{ExtentList, OpenFlags, Pid, Signal, Whence};
use idbox_types::{Errno, Identity, SysResult};
use idbox_vfs::{Access, DirEntry, StatBuf};

/// Guest memory layout: first path argument.
const STR_A: u64 = 0x0100;
/// Guest memory layout: second path argument.
const STR_B: u64 = 0x1100;
/// Guest memory layout: stat / wait-status / signal area.
const META: u64 = 0x2100;
/// Guest memory layout: textual output buffer.
const OUT: u64 = 0x3000;
/// Capacity of the textual output buffer.
const OUT_CAP: usize = 0xD000;
/// Guest memory layout: bulk data buffer.
const DATA: u64 = 0x10000;

/// A running guest process: its VM plus a handle to its supervisor.
pub struct GuestCtx<'a> {
    sup: &'a mut Supervisor,
    vm: TraceeVm,
    pid: Pid,
}

impl<'a> GuestCtx<'a> {
    /// Create a context for an existing kernel process.
    pub fn new(sup: &'a mut Supervisor, pid: Pid) -> Self {
        GuestCtx {
            sup,
            vm: TraceeVm::new(),
            pid,
        }
    }

    /// Create a context reusing an already-allocated VM. Long-lived
    /// sessions that drive a guest process one request at a time (the
    /// Chirp event loop) keep the VM across dispatches instead of
    /// reallocating its memory image per call.
    pub fn with_vm(sup: &'a mut Supervisor, pid: Pid, vm: TraceeVm) -> Self {
        GuestCtx { sup, vm, pid }
    }

    /// Take the VM back out for reuse by a later [`GuestCtx::with_vm`].
    pub fn into_vm(self) -> TraceeVm {
        self.vm
    }

    /// The process this context drives.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The supervisor (for cost reports in benchmarks).
    pub fn supervisor(&mut self) -> &mut Supervisor {
        self.sup
    }

    fn call(&mut self, n: u64, args: &[u64]) -> i64 {
        self.vm.load_call(n, args);
        self.sup.execute(self.pid, &mut self.vm);
        self.vm.ret()
    }

    fn call_checked(&mut self, n: u64, args: &[u64]) -> SysResult<i64> {
        let ret = self.call(n, args);
        match Errno::from_ret(ret) {
            Some(e) => Err(e),
            None => Ok(ret),
        }
    }

    fn put_str(&mut self, area: u64, s: &str) -> SysResult<(u64, u64)> {
        if s.len() > idbox_vfs::path::PATH_MAX {
            return Err(Errno::ENAMETOOLONG);
        }
        self.vm.guest_write(area, s.as_bytes())?;
        Ok((area, s.len() as u64))
    }

    fn read_out(&self, len: usize) -> SysResult<String> {
        let bytes = self.vm.guest_slice(OUT, len)?.to_vec();
        String::from_utf8(bytes).map_err(|_| Errno::EINVAL)
    }

    /// Ensure the data buffer can hold `len` bytes, growing the VM if
    /// needed (a real program would mmap; we keep it simple).
    fn ensure_data_capacity(&mut self, len: usize) {
        let need = DATA as usize + len;
        if need > self.vm.mem_len() {
            let mut bigger = TraceeVm::with_memory(need.next_power_of_two());
            // Carry over the low memory (scratch areas).
            let low = self
                .vm
                .guest_slice(0, DATA as usize)
                .expect("low memory present")
                .to_vec();
            bigger.guest_write(0, &low).expect("fits");
            bigger.regs = self.vm.regs;
            self.vm = bigger;
        }
    }

    // ------------------------------------------------------------------
    // Process calls
    // ------------------------------------------------------------------

    /// `getpid()`.
    pub fn getpid(&mut self) -> i64 {
        self.call(nr::GETPID, &[])
    }

    /// `getppid()`.
    pub fn getppid(&mut self) -> i64 {
        self.call(nr::GETPPID, &[])
    }

    /// `getuid()`.
    pub fn getuid(&mut self) -> i64 {
        self.call(nr::GETUID, &[])
    }

    /// `fork()` — returns the child pid. The child is a kernel process;
    /// drive it with [`GuestCtx::run_child`] or a fresh context.
    pub fn fork(&mut self) -> SysResult<Pid> {
        Ok(Pid(self.call_checked(nr::FORK, &[])? as u32))
    }

    /// `exec(path)` — checks nothing locally; the policy layer enforces
    /// the execute right.
    pub fn exec(&mut self, path: &str) -> SysResult<()> {
        let (p, l) = self.put_str(STR_A, path)?;
        self.call_checked(nr::EXEC, &[p, l])?;
        Ok(())
    }

    /// `exit(code)`.
    pub fn exit(&mut self, code: i32) {
        let _ = self.call(nr::EXIT, &[code as u32 as u64]);
    }

    /// `wait()` — reap any zombie child. `EAGAIN` when children are
    /// still running, `ECHILD` when there are none.
    pub fn wait(&mut self) -> SysResult<(Pid, i32)> {
        let ret = self.call_checked(nr::WAIT, &[META])?;
        let status = self.vm.peek_word(META)? as i64 as i32;
        Ok((Pid(ret as u32), status))
    }

    /// `kill(pid, sig)`.
    pub fn kill(&mut self, pid: Pid, sig: Signal) -> SysResult<()> {
        self.call_checked(nr::KILL, &[pid.0 as u64, sig.number() as u64])?;
        Ok(())
    }

    /// `pipe()` — returns (read fd, write fd). Reads on an empty pipe
    /// with a live writer return `EAGAIN` (the simulation has no
    /// blocking); with no writer they return 0 (EOF). Writes with no
    /// reader fail `EPIPE` and queue a termination signal.
    pub fn pipe(&mut self) -> SysResult<(i64, i64)> {
        self.call_checked(nr::PIPE, &[META])?;
        let rfd = self.vm.peek_word(META)? as i64;
        let wfd = self.vm.peek_word(META + 8)? as i64;
        Ok((rfd, wfd))
    }

    /// Poll and clear pending signals.
    pub fn sigpending(&mut self) -> SysResult<Vec<Signal>> {
        let n = self.call_checked(nr::SIGPENDING, &[META, 16])? as usize;
        let mut words = Vec::with_capacity(n);
        for i in 0..n {
            words.push(self.vm.peek_word(META + (i * 8) as u64)?);
        }
        Ok(abi::decode_signals(&words))
    }

    /// The identity box's new system call: the caller's high-level name
    /// (paper, Section 3).
    pub fn get_user_name(&mut self) -> SysResult<Identity> {
        let n = self.call_checked(nr::GET_USER_NAME, &[OUT, OUT_CAP as u64])? as usize;
        Ok(Identity::new(self.read_out(n)?))
    }

    /// `getenv(name)` — read one variable from the process environment
    /// (seeded by the supervisor, inherited across `fork`). `ENOENT`
    /// when the name is unset.
    pub fn getenv(&mut self, name: &str) -> SysResult<String> {
        let (p, l) = self.put_str(STR_A, name)?;
        let n = self.call_checked(nr::GETENV, &[p, l, OUT, OUT_CAP as u64])? as usize;
        self.read_out(n)
    }

    /// Fork, run `child` to completion in the child process, and return
    /// the child's pid (already exited; reap it with [`GuestCtx::wait`]).
    pub fn run_child(
        &mut self,
        child: impl FnOnce(&mut GuestCtx<'_>) -> i32,
    ) -> SysResult<Pid> {
        let pid = self.fork()?;
        let mut ctx = GuestCtx::new(self.sup, pid);
        let code = child(&mut ctx);
        ctx.exit(code);
        Ok(pid)
    }

    // ------------------------------------------------------------------
    // File calls
    // ------------------------------------------------------------------

    /// `open(path, flags, mode)`.
    pub fn open(&mut self, path: &str, flags: OpenFlags, mode: u16) -> SysResult<i64> {
        let (p, l) = self.put_str(STR_A, path)?;
        self.call_checked(nr::OPEN, &[p, l, flags.to_bits(), mode as u64])
    }

    /// `close(fd)`.
    pub fn close(&mut self, fd: i64) -> SysResult<()> {
        self.call_checked(nr::CLOSE, &[fd as u64])?;
        Ok(())
    }

    /// `read(fd, buf)` — sequential read into `buf`.
    pub fn read(&mut self, fd: i64, buf: &mut [u8]) -> SysResult<usize> {
        self.ensure_data_capacity(buf.len());
        let n =
            self.call_checked(nr::READ, &[fd as u64, DATA, buf.len() as u64])? as usize;
        buf[..n].copy_from_slice(self.vm.guest_slice(DATA, n)?);
        Ok(n)
    }

    /// `pread(fd, buf, off)`.
    pub fn pread(&mut self, fd: i64, buf: &mut [u8], off: u64) -> SysResult<usize> {
        self.ensure_data_capacity(buf.len());
        let n = self.call_checked(nr::PREAD, &[fd as u64, DATA, buf.len() as u64, off])?
            as usize;
        buf[..n].copy_from_slice(self.vm.guest_slice(DATA, n)?);
        Ok(n)
    }

    /// `preadx(fd, len, off)` — the zero-copy positioned read. The
    /// reply's bytes never enter guest memory: the supervisor parks
    /// them as borrowed `Arc` extents and the embedding context
    /// collects them here. One trap round trip, zero pokes, zero
    /// channel bytes.
    pub fn pread_extents(&mut self, fd: i64, len: usize, off: u64) -> SysResult<ExtentList> {
        let n = self.call_checked(nr::PREADX, &[fd as u64, len as u64, off])? as usize;
        let extents = self.sup.take_extents().unwrap_or_default();
        debug_assert_eq!(extents.total, n, "parked extents disagree with ret");
        Ok(extents)
    }

    /// `write(fd, data)`.
    pub fn write(&mut self, fd: i64, data: &[u8]) -> SysResult<usize> {
        self.ensure_data_capacity(data.len());
        self.vm.guest_write(DATA, data)?;
        let n = self.call_checked(nr::WRITE, &[fd as u64, DATA, data.len() as u64])?;
        Ok(n as usize)
    }

    /// `pwrite(fd, data, off)`.
    pub fn pwrite(&mut self, fd: i64, data: &[u8], off: u64) -> SysResult<usize> {
        self.ensure_data_capacity(data.len());
        self.vm.guest_write(DATA, data)?;
        let n =
            self.call_checked(nr::PWRITE, &[fd as u64, DATA, data.len() as u64, off])?;
        Ok(n as usize)
    }

    /// `lseek(fd, off, whence)`.
    pub fn lseek(&mut self, fd: i64, off: i64, whence: Whence) -> SysResult<u64> {
        let pos =
            self.call_checked(nr::LSEEK, &[fd as u64, off as u64, abi::whence_code(whence)])?;
        Ok(pos as u64)
    }

    /// `dup(fd)`.
    pub fn dup(&mut self, fd: i64) -> SysResult<i64> {
        self.call_checked(nr::DUP, &[fd as u64])
    }

    /// `stat(path)`.
    pub fn stat(&mut self, path: &str) -> SysResult<StatBuf> {
        let (p, l) = self.put_str(STR_A, path)?;
        self.call_checked(nr::STAT, &[p, l, META])?;
        self.read_stat()
    }

    /// `lstat(path)`.
    pub fn lstat(&mut self, path: &str) -> SysResult<StatBuf> {
        let (p, l) = self.put_str(STR_A, path)?;
        self.call_checked(nr::LSTAT, &[p, l, META])?;
        self.read_stat()
    }

    /// `fstat(fd)`.
    pub fn fstat(&mut self, fd: i64) -> SysResult<StatBuf> {
        self.call_checked(nr::FSTAT, &[fd as u64, META])?;
        self.read_stat()
    }

    fn read_stat(&self) -> SysResult<StatBuf> {
        let mut words = [0u64; abi::STAT_WORDS];
        for (i, w) in words.iter_mut().enumerate() {
            *w = self.vm.peek_word(META + (i * 8) as u64)?;
        }
        abi::decode_stat(&words)
    }

    /// `truncate(path, len)`.
    pub fn truncate(&mut self, path: &str, len: u64) -> SysResult<()> {
        let (p, l) = self.put_str(STR_A, path)?;
        self.call_checked(nr::TRUNCATE, &[p, l, len])?;
        Ok(())
    }

    /// `access(path, mask)`.
    pub fn access(&mut self, path: &str, want: Access) -> SysResult<()> {
        let (p, l) = self.put_str(STR_A, path)?;
        self.call_checked(nr::ACCESS, &[p, l, want.0 as u64])?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Namespace calls
    // ------------------------------------------------------------------

    /// `mkdir(path, mode)`.
    pub fn mkdir(&mut self, path: &str, mode: u16) -> SysResult<()> {
        let (p, l) = self.put_str(STR_A, path)?;
        self.call_checked(nr::MKDIR, &[p, l, mode as u64])?;
        Ok(())
    }

    /// `rmdir(path)`.
    pub fn rmdir(&mut self, path: &str) -> SysResult<()> {
        let (p, l) = self.put_str(STR_A, path)?;
        self.call_checked(nr::RMDIR, &[p, l])?;
        Ok(())
    }

    /// `unlink(path)`.
    pub fn unlink(&mut self, path: &str) -> SysResult<()> {
        let (p, l) = self.put_str(STR_A, path)?;
        self.call_checked(nr::UNLINK, &[p, l])?;
        Ok(())
    }

    /// `link(old, new)`.
    pub fn link(&mut self, old: &str, new: &str) -> SysResult<()> {
        let (p0, l0) = self.put_str(STR_A, old)?;
        let (p1, l1) = self.put_str(STR_B, new)?;
        self.call_checked(nr::LINK, &[p0, l0, p1, l1])?;
        Ok(())
    }

    /// `symlink(target, linkpath)`.
    pub fn symlink(&mut self, target: &str, linkpath: &str) -> SysResult<()> {
        let (p0, l0) = self.put_str(STR_A, target)?;
        let (p1, l1) = self.put_str(STR_B, linkpath)?;
        self.call_checked(nr::SYMLINK, &[p0, l0, p1, l1])?;
        Ok(())
    }

    /// `readlink(path)`.
    pub fn readlink(&mut self, path: &str) -> SysResult<String> {
        let (p, l) = self.put_str(STR_A, path)?;
        let n = self.call_checked(nr::READLINK, &[p, l, OUT, OUT_CAP as u64])? as usize;
        self.read_out(n)
    }

    /// `rename(old, new)`.
    pub fn rename(&mut self, old: &str, new: &str) -> SysResult<()> {
        let (p0, l0) = self.put_str(STR_A, old)?;
        let (p1, l1) = self.put_str(STR_B, new)?;
        self.call_checked(nr::RENAME, &[p0, l0, p1, l1])?;
        Ok(())
    }

    /// `readdir(path)`.
    pub fn readdir(&mut self, path: &str) -> SysResult<Vec<DirEntry>> {
        let (p, l) = self.put_str(STR_A, path)?;
        let n = self.call_checked(nr::READDIR, &[p, l, OUT, OUT_CAP as u64])? as usize;
        abi::decode_entries(&self.read_out(n)?)
    }

    /// `chmod(path, mode)`.
    pub fn chmod(&mut self, path: &str, mode: u16) -> SysResult<()> {
        let (p, l) = self.put_str(STR_A, path)?;
        self.call_checked(nr::CHMOD, &[p, l, mode as u64])?;
        Ok(())
    }

    /// `chown(path, uid, gid)`.
    pub fn chown(&mut self, path: &str, uid: u32, gid: u32) -> SysResult<()> {
        let (p, l) = self.put_str(STR_A, path)?;
        self.call_checked(nr::CHOWN, &[p, l, uid as u64, gid as u64])?;
        Ok(())
    }

    /// `chdir(path)`.
    pub fn chdir(&mut self, path: &str) -> SysResult<()> {
        let (p, l) = self.put_str(STR_A, path)?;
        self.call_checked(nr::CHDIR, &[p, l])?;
        Ok(())
    }

    /// `getcwd()`.
    pub fn getcwd(&mut self) -> SysResult<String> {
        let n = self.call_checked(nr::GETCWD, &[OUT, OUT_CAP as u64])? as usize;
        self.read_out(n)
    }

    /// `umask(mask)` — returns the previous mask.
    pub fn umask(&mut self, mask: u16) -> SysResult<u16> {
        Ok(self.call_checked(nr::UMASK, &[mask as u64])? as u16)
    }

    // ------------------------------------------------------------------
    // Composite helpers (libc-style conveniences; every byte still moves
    // through the syscall interface above)
    // ------------------------------------------------------------------

    /// Read an entire file (sizing the buffer by `fstat` first, the way
    /// a real libc slurp does).
    pub fn read_file(&mut self, path: &str) -> SysResult<Vec<u8>> {
        let fd = self.open(path, OpenFlags::rdonly(), 0)?;
        let result = (|| {
            let size = self.fstat(fd)?.size as usize;
            let mut out = Vec::new();
            let mut buf = vec![0u8; size.clamp(512, 262_144)];
            loop {
                let n = self.read(fd, &mut buf)?;
                if n == 0 {
                    break;
                }
                out.extend_from_slice(&buf[..n]);
            }
            Ok(out)
        })();
        let _ = self.close(fd);
        result
    }

    /// Read an entire file as borrowed extents (open → fstat → preadx
    /// → close): the zero-copy slurp backing the Chirp server's `get`.
    /// The returned extents are `Arc` clones of the file's chunks — a
    /// point-in-time snapshot that stays valid however the file is
    /// rewritten afterwards.
    pub fn read_file_extents(&mut self, path: &str) -> SysResult<ExtentList> {
        let fd = self.open(path, OpenFlags::rdonly(), 0)?;
        let result = (|| {
            let size = self.fstat(fd)?.size as usize;
            self.pread_extents(fd, size, 0)
        })();
        let _ = self.close(fd);
        result
    }

    /// Create or replace a file with the given contents.
    pub fn write_file(&mut self, path: &str, data: &[u8]) -> SysResult<()> {
        self.write_file_mode(path, data, 0o644)
    }

    /// Create or replace a file with the given contents and creation
    /// mode (staging executables needs 0o755).
    pub fn write_file_mode(&mut self, path: &str, data: &[u8], mode: u16) -> SysResult<()> {
        let fd = self.open(path, OpenFlags::wronly_create_trunc(), mode)?;
        let mut off = 0;
        while off < data.len() {
            let chunk = &data[off..(off + 65536).min(data.len())];
            match self.write(fd, chunk) {
                Ok(n) => off += n,
                Err(e) => {
                    let _ = self.close(fd);
                    return Err(e);
                }
            }
        }
        self.close(fd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{share, Supervisor};
    use idbox_kernel::Kernel;
    use idbox_types::CostModel;
    use idbox_vfs::Cred;

    fn setup(mode_interposed: bool) -> (Supervisor, Pid) {
        let kernel = share(Kernel::new());
        let pid = kernel
            .lock()
            .spawn(Cred::ROOT, "/tmp", "test")
            .expect("spawn");
        let sup = if mode_interposed {
            Supervisor::interposed(
                kernel,
                Box::new(crate::AllowAll),
                CostModel::calibrated(),
            )
        } else {
            Supervisor::direct(kernel)
        };
        (sup, pid)
    }

    /// Every behavioural test runs in both modes: interposition must be
    /// transparent.
    fn both_modes(test: impl Fn(&mut GuestCtx<'_>)) {
        for interposed in [false, true] {
            let (mut sup, pid) = setup(interposed);
            let mut ctx = GuestCtx::new(&mut sup, pid);
            test(&mut ctx);
        }
    }

    #[test]
    fn getpid_matches_kernel_pid() {
        both_modes(|ctx| {
            assert_eq!(ctx.getpid(), ctx.pid().0 as i64);
        });
    }

    #[test]
    fn file_roundtrip_small() {
        both_modes(|ctx| {
            ctx.write_file("/tmp/small", b"hello world").unwrap();
            assert_eq!(ctx.read_file("/tmp/small").unwrap(), b"hello world");
        });
    }

    #[test]
    fn file_roundtrip_bulk() {
        both_modes(|ctx| {
            let data: Vec<u8> = (0..100_000u32).map(|i| (i * 7) as u8).collect();
            ctx.write_file("/tmp/bulk", &data).unwrap();
            assert_eq!(ctx.read_file("/tmp/bulk").unwrap(), data);
        });
    }

    #[test]
    fn stat_and_readdir() {
        both_modes(|ctx| {
            ctx.mkdir("/tmp/d", 0o755).unwrap();
            ctx.write_file("/tmp/d/f", b"x").unwrap();
            let st = ctx.stat("/tmp/d/f").unwrap();
            assert_eq!(st.size, 1);
            let names: Vec<_> = ctx
                .readdir("/tmp/d")
                .unwrap()
                .into_iter()
                .map(|e| e.name)
                .collect();
            assert_eq!(names, [".", "..", "f"]);
        });
    }

    #[test]
    fn seek_and_pread() {
        both_modes(|ctx| {
            ctx.write_file("/tmp/f", b"0123456789").unwrap();
            let fd = ctx.open("/tmp/f", OpenFlags::rdonly(), 0).unwrap();
            let mut buf = [0u8; 4];
            assert_eq!(ctx.pread(fd, &mut buf, 3).unwrap(), 4);
            assert_eq!(&buf, b"3456");
            ctx.lseek(fd, 8, Whence::Set).unwrap();
            let n = ctx.read(fd, &mut buf).unwrap();
            assert_eq!(&buf[..n], b"89");
            ctx.close(fd).unwrap();
        });
    }

    #[test]
    fn fork_wait_roundtrip() {
        both_modes(|ctx| {
            let child = ctx
                .run_child(|c| {
                    c.write_file("/tmp/from_child", b"hi").unwrap();
                    7
                })
                .unwrap();
            let (reaped, code) = ctx.wait().unwrap();
            assert_eq!(reaped, child);
            assert_eq!(code, 7);
            assert_eq!(ctx.read_file("/tmp/from_child").unwrap(), b"hi");
        });
    }

    #[test]
    fn symlink_readlink_rename() {
        both_modes(|ctx| {
            ctx.write_file("/tmp/t", b"x").unwrap();
            ctx.symlink("/tmp/t", "/tmp/l").unwrap();
            assert_eq!(ctx.readlink("/tmp/l").unwrap(), "/tmp/t");
            assert_eq!(ctx.read_file("/tmp/l").unwrap(), b"x");
            ctx.rename("/tmp/t", "/tmp/t2").unwrap();
            assert_eq!(ctx.read_file("/tmp/l"), Err(Errno::ENOENT));
        });
    }

    #[test]
    fn cwd_and_relative_ops() {
        both_modes(|ctx| {
            ctx.mkdir("/tmp/w", 0o755).unwrap();
            ctx.chdir("/tmp/w").unwrap();
            assert_eq!(ctx.getcwd().unwrap(), "/tmp/w");
            ctx.write_file("rel.txt", b"r").unwrap();
            assert_eq!(ctx.read_file("/tmp/w/rel.txt").unwrap(), b"r");
        });
    }

    #[test]
    fn errors_cross_the_boundary() {
        both_modes(|ctx| {
            assert_eq!(ctx.read_file("/no/such/file"), Err(Errno::ENOENT));
            ctx.write_file("/tmp/occupant", b"x").unwrap();
            assert_eq!(ctx.rmdir("/tmp"), Err(Errno::ENOTEMPTY));
            assert_eq!(ctx.close(999), Err(Errno::EBADF));
        });
    }

    #[test]
    fn get_user_name_reports_account() {
        both_modes(|ctx| {
            assert_eq!(ctx.get_user_name().unwrap().as_str(), "root");
        });
    }

    #[test]
    fn interposed_counts_costs() {
        let (mut sup, pid) = setup(true);
        let mut ctx = GuestCtx::new(&mut sup, pid);
        ctx.getpid();
        ctx.write_file("/tmp/x", b"abc").unwrap();
        let report = ctx.supervisor().cost_report();
        // open + write + close + getpid = 4 traps, 6 switches each.
        assert_eq!(report.traps, 4);
        assert_eq!(report.switches, 24);
        assert!(report.peeks > 0, "path bytes must be peeked");
    }

    #[test]
    fn bulk_write_uses_channel() {
        let (mut sup, pid) = setup(true);
        let mut ctx = GuestCtx::new(&mut sup, pid);
        let big = vec![1u8; 10_000];
        ctx.write_file("/tmp/big", &big).unwrap();
        let report = ctx.supervisor().cost_report();
        assert!(
            report.channel_bytes >= 10_000,
            "bulk payload must cross the channel, got {}",
            report.channel_bytes
        );
    }

    #[test]
    fn small_read_uses_pokes_not_channel() {
        let (mut sup, pid) = setup(true);
        let mut ctx = GuestCtx::new(&mut sup, pid);
        ctx.write_file("/tmp/s", b"tiny").unwrap();
        ctx.supervisor().reset_cost_report();
        let _ = ctx.read_file("/tmp/s").unwrap();
        let report = ctx.supervisor().cost_report();
        assert!(report.pokes > 0);
        assert_eq!(report.channel_bytes, 0);
    }

    #[test]
    fn extent_read_matches_flat_read() {
        both_modes(|ctx| {
            let data: Vec<u8> = (0..200_000u32).map(|i| (i * 13) as u8).collect();
            ctx.write_file("/tmp/x", &data).unwrap();
            let x = ctx.read_file_extents("/tmp/x").unwrap();
            assert_eq!(x.total, data.len());
            assert_eq!(x.to_vec(), data);
            // Windowed positioned reads agree with pread.
            let fd = ctx.open("/tmp/x", OpenFlags::rdonly(), 0).unwrap();
            let w = ctx.pread_extents(fd, 1000, 99_500).unwrap();
            assert_eq!(w.to_vec(), &data[99_500..100_500]);
            // Past EOF: empty, not an error.
            assert!(ctx.pread_extents(fd, 10, 1 << 30).unwrap().is_empty());
            ctx.close(fd).unwrap();
        });
    }

    #[test]
    fn extent_read_is_zero_copy_on_the_wire() {
        let (mut sup, pid) = setup(true);
        let mut ctx = GuestCtx::new(&mut sup, pid);
        let big = vec![3u8; 300_000];
        ctx.write_file("/tmp/big", &big).unwrap();
        ctx.supervisor().reset_cost_report();
        let fd = ctx.open("/tmp/big", OpenFlags::rdonly(), 0).unwrap();
        let x = ctx.pread_extents(fd, big.len(), 0).unwrap();
        ctx.close(fd).unwrap();
        assert_eq!(x.total, big.len());
        let report = ctx.supervisor().cost_report();
        // open + preadx + close: three traps, and the payload crossed
        // neither the channel nor the poke path — only the length
        // register came back. That is the zero copy.
        assert_eq!(report.traps, 3);
        assert_eq!(report.channel_bytes, 0);
        assert_eq!(report.pokes, 0);
    }

    #[test]
    fn direct_mode_counts_nothing() {
        let (mut sup, pid) = setup(false);
        let mut ctx = GuestCtx::new(&mut sup, pid);
        ctx.write_file("/tmp/x", b"abc").unwrap();
        let report = ctx.supervisor().cost_report();
        assert_eq!(report.traps, 0);
        assert_eq!(report.peeks, 0);
        assert_eq!(report.channel_bytes, 0);
    }

    #[test]
    fn pipe_ipc_between_parent_and_child() {
        both_modes(|ctx| {
            let (rfd, wfd) = ctx.pipe().unwrap();
            ctx.run_child(move |c| {
                // The child inherits both ends; it writes and closes.
                c.write(wfd, b"pipeline message").unwrap();
                c.close(wfd).unwrap();
                c.close(rfd).unwrap();
                0
            })
            .unwrap();
            ctx.wait().unwrap();
            ctx.close(wfd).unwrap();
            let mut buf = [0u8; 32];
            let n = ctx.read(rfd, &mut buf).unwrap();
            assert_eq!(&buf[..n], b"pipeline message");
            // All writers gone and drained: EOF.
            assert_eq!(ctx.read(rfd, &mut buf).unwrap(), 0);
            ctx.close(rfd).unwrap();
        });
    }

    #[test]
    fn unknown_syscall_is_enosys() {
        let (mut sup, pid) = setup(true);
        let mut ctx = GuestCtx::new(&mut sup, pid);
        let ret = ctx.call(9999, &[]);
        assert_eq!(Errno::from_ret(ret), Some(Errno::ENOSYS));
    }
}
