//! The Parrot-style system-call interposition agent.
//!
//! This crate reproduces the *mechanism* of the paper's Section 5 and
//! Figure 4. A guest program runs against a [`TraceeVm`] — simulated
//! registers plus a flat byte memory, standing in for a `ptrace`d child.
//! Every system call the guest makes is marshalled into the VM's
//! registers and memory exactly once (a real application does the same
//! when it loads the syscall ABI), and then executed by a
//! [`Supervisor`] in one of two modes:
//!
//! * **Direct** — the baseline: the call is decoded straight out of the
//!   VM by slice access and dispatched to the kernel, with one
//!   kernel-side copy for data. This models an ordinary, untraced
//!   system call.
//! * **Interposed** — the identity-box path, following Figure 4(a)
//!   step by step: the supervisor gains control (context switches), reads
//!   the call **word by word** via [`TraceeVm::peek_word`], consults a
//!   [`SyscallPolicy`] (the identity box), implements the call itself,
//!   **nullifies** the original call into a `getpid()` that really enters
//!   the kernel, pokes the result back word by word — or, for bulk data,
//!   stages it through the shared [`IoChannel`] and coerces the
//!   application into pulling it in, paying the extra copy of
//!   Figure 4(b).
//!
//! The context switches do not happen by themselves in a simulation, so
//! the supervisor *performs* them through
//! [`idbox_types::SwitchEngine`]; [`calibrate`] picks the switch cost so
//! a boxed `getpid` lands near the paper's order-of-magnitude slowdown,
//! and every other number emerges from the mechanism.

pub mod abi;
mod channel;
mod executor;
mod guest;
mod policy;
mod trace;
mod vm;

pub mod calibrate;

pub use channel::IoChannel;
pub use executor::{ExecMode, ObsHooks, Supervisor};
pub use guest::GuestCtx;
pub use policy::{AllowAll, DenyAll, PolicyDecision, SyscallPolicy};
pub use trace::{TraceRecord, TraceSink};
pub use vm::TraceeVm;

use idbox_kernel::Kernel;
use parking_lot::RwLock;
use std::sync::Arc;

/// The kernel handle shared between supervisors (and, in the distributed
/// system, server threads).
///
/// Since the kernel became internally sharded, this outer lock is a
/// rarely-written **structure lock**, not the syscall serialization
/// point: *every* system call — mutating ones included — dispatches
/// under the shared side via [`Kernel::syscall_shared`], and the
/// kernel's own per-domain locks (vfs inode shards, process-table
/// shards, the pipe and mount tables) provide mutual exclusion where
/// state actually collides. The exclusive side (`write()`, or the
/// `lock()` alias) is reserved for structural surgery that genuinely
/// needs `&mut Kernel` — mounting drivers, installing fault hooks,
/// swapping the dentry cache, editing accounts — which happens at
/// setup/admin time, not per call.
pub type SharedKernel = Arc<RwLock<Kernel>>;

/// Wrap a kernel for sharing.
pub fn share(kernel: Kernel) -> SharedKernel {
    Arc::new(RwLock::new(kernel))
}

/// Payloads at or below this size move word-by-word through peek/poke;
/// larger payloads go through the I/O channel (paper, Section 5).
pub const SMALL_IO_MAX: usize = 256;
