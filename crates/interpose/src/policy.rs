//! Syscall policies: what the supervisor decides per trapped call.
//!
//! Parrot is a *delegation* architecture (like Ostia): the supervisor
//! implements every call itself, so policy is a pure function from the
//! decoded call to a decision — allow it, rewrite it (e.g. redirect
//! `/etc/passwd` to the box's private copy), or deny it with an errno.
//! Containment is achieved through access control, never by outlawing an
//! interface (Garfinkel's "incorrect subsetting" pitfall), and denial is
//! always a clean error return (his "side effects of denying" pitfall).
//!
//! Every policy entry point takes the kernel by **shared** borrow: since
//! the kernel became internally sharded, all syscalls — mutating ones
//! included — dispatch through `&Kernel`, and policies rule the same
//! way. A policy that needs to mutate kernel state (e.g. stamping a
//! fresh directory's ACL in [`SyscallPolicy::post`]) goes through the
//! kernel's own interior-locked operations.

use idbox_kernel::{Kernel, Pid, Syscall, SysRet};
use idbox_types::{Errno, SysResult};

/// The supervisor's decision about one trapped call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyDecision {
    /// Execute the call as decoded.
    Allow,
    /// Execute a rewritten call instead (the guest never knows).
    Rewrite(Syscall),
    /// Refuse with this errno; the kernel is not entered.
    Deny(Errno),
}

/// A policy consulted on every trapped system call.
pub trait SyscallPolicy: Send {
    /// Policy name for diagnostics.
    fn name(&self) -> &str;

    /// Decide what to do with `call` before it reaches the kernel.
    fn check(&mut self, kernel: &Kernel, pid: Pid, call: &Syscall) -> PolicyDecision;

    /// Post-process a result (e.g. initialize the ACL of a directory
    /// created under the reserve right). May replace the result.
    fn post(
        &mut self,
        kernel: &Kernel,
        pid: Pid,
        call: &Syscall,
        result: &mut SysResult<SysRet>,
    ) {
        let _ = (kernel, pid, call, result);
    }
}

/// The transparent policy: interposition cost without access control.
/// This is "plain Parrot" — what the paper's Figure 5 baseline-with-agent
/// measurements run.
#[derive(Debug, Default, Clone, Copy)]
pub struct AllowAll;

impl SyscallPolicy for AllowAll {
    fn name(&self) -> &str {
        "allow-all"
    }

    fn check(&mut self, _: &Kernel, _: Pid, _: &Syscall) -> PolicyDecision {
        PolicyDecision::Allow
    }
}

/// A policy denying every path-naming call with `EACCES` (non-path calls
/// pass). Used by tests that verify denial is a clean errno, never a
/// killed process.
#[derive(Debug, Default, Clone, Copy)]
pub struct DenyAll;

impl SyscallPolicy for DenyAll {
    fn name(&self) -> &str {
        "deny-all"
    }

    fn check(&mut self, _: &Kernel, _: Pid, call: &Syscall) -> PolicyDecision {
        if call.is_path_call() {
            PolicyDecision::Deny(Errno::EACCES)
        } else {
            PolicyDecision::Allow
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_kernel::OpenFlags;

    #[test]
    fn allow_all_allows() {
        let k = Kernel::new();
        let mut p = AllowAll;
        assert_eq!(p.check(&k, Pid(1), &Syscall::Getpid), PolicyDecision::Allow);
        assert_eq!(p.name(), "allow-all");
    }

    #[test]
    fn deny_all_denies_paths_only() {
        let k = Kernel::new();
        let mut p = DenyAll;
        assert_eq!(
            p.check(
                &k,
                Pid(1),
                &Syscall::Open("/etc/passwd".into(), OpenFlags::rdonly(), 0)
            ),
            PolicyDecision::Deny(Errno::EACCES)
        );
        assert_eq!(p.check(&k, Pid(1), &Syscall::Getpid), PolicyDecision::Allow);
    }
}
