//! Syscall policies: what the supervisor decides per trapped call.
//!
//! Parrot is a *delegation* architecture (like Ostia): the supervisor
//! implements every call itself, so policy is a pure function from the
//! decoded call to a decision — allow it, rewrite it (e.g. redirect
//! `/etc/passwd` to the box's private copy), or deny it with an errno.
//! Containment is achieved through access control, never by outlawing an
//! interface (Garfinkel's "incorrect subsetting" pitfall), and denial is
//! always a clean error return (his "side effects of denying" pitfall).

use idbox_kernel::{Kernel, Pid, Syscall, SysRet};
use idbox_types::{Errno, SysResult};

/// The supervisor's decision about one trapped call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyDecision {
    /// Execute the call as decoded.
    Allow,
    /// Execute a rewritten call instead (the guest never knows).
    Rewrite(Syscall),
    /// Refuse with this errno; the kernel is not entered.
    Deny(Errno),
}

/// A policy consulted on every trapped system call.
pub trait SyscallPolicy: Send {
    /// Policy name for diagnostics.
    fn name(&self) -> &str;

    /// Decide what to do with `call` before it reaches the kernel.
    fn check(&mut self, kernel: &mut Kernel, pid: Pid, call: &Syscall) -> PolicyDecision;

    /// Decide what to do with a *read-only* call under a **shared**
    /// kernel borrow — the concurrent fast path. Returning `None`
    /// declines to rule, sending the call down the exclusive path where
    /// [`SyscallPolicy::check`] runs as usual.
    ///
    /// Contract for implementors: a `Some` ruling must be identical to
    /// what `check` would have decided for the same call and kernel
    /// state, and [`SyscallPolicy::post`] is **not** invoked for calls
    /// ruled here (read-only calls must not rely on post-processing).
    /// The default declines everything, which is always safe.
    fn check_read(&mut self, kernel: &Kernel, pid: Pid, call: &Syscall) -> Option<PolicyDecision> {
        let _ = (kernel, pid, call);
        None
    }

    /// Post-process a result (e.g. initialize the ACL of a directory
    /// created under the reserve right). May replace the result.
    fn post(
        &mut self,
        kernel: &mut Kernel,
        pid: Pid,
        call: &Syscall,
        result: &mut SysResult<SysRet>,
    ) {
        let _ = (kernel, pid, call, result);
    }
}

/// The transparent policy: interposition cost without access control.
/// This is "plain Parrot" — what the paper's Figure 5 baseline-with-agent
/// measurements run.
#[derive(Debug, Default, Clone, Copy)]
pub struct AllowAll;

impl SyscallPolicy for AllowAll {
    fn name(&self) -> &str {
        "allow-all"
    }

    fn check(&mut self, _: &mut Kernel, _: Pid, _: &Syscall) -> PolicyDecision {
        PolicyDecision::Allow
    }

    fn check_read(&mut self, _: &Kernel, _: Pid, _: &Syscall) -> Option<PolicyDecision> {
        Some(PolicyDecision::Allow)
    }
}

/// A policy denying every path-naming call with `EACCES` (non-path calls
/// pass). Used by tests that verify denial is a clean errno, never a
/// killed process.
#[derive(Debug, Default, Clone, Copy)]
pub struct DenyAll;

impl SyscallPolicy for DenyAll {
    fn name(&self) -> &str {
        "deny-all"
    }

    fn check(&mut self, _: &mut Kernel, _: Pid, call: &Syscall) -> PolicyDecision {
        if call.is_path_call() {
            PolicyDecision::Deny(Errno::EACCES)
        } else {
            PolicyDecision::Allow
        }
    }

    fn check_read(&mut self, _: &Kernel, _: Pid, call: &Syscall) -> Option<PolicyDecision> {
        Some(if call.is_path_call() {
            PolicyDecision::Deny(Errno::EACCES)
        } else {
            PolicyDecision::Allow
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_kernel::OpenFlags;

    #[test]
    fn allow_all_allows() {
        let mut k = Kernel::new();
        let mut p = AllowAll;
        assert_eq!(
            p.check(&mut k, Pid(1), &Syscall::Getpid),
            PolicyDecision::Allow
        );
        assert_eq!(p.name(), "allow-all");
    }

    #[test]
    fn deny_all_denies_paths_only() {
        let mut k = Kernel::new();
        let mut p = DenyAll;
        assert_eq!(
            p.check(
                &mut k,
                Pid(1),
                &Syscall::Open("/etc/passwd".into(), OpenFlags::rdonly(), 0)
            ),
            PolicyDecision::Deny(Errno::EACCES)
        );
        assert_eq!(
            p.check(&mut k, Pid(1), &Syscall::Getpid),
            PolicyDecision::Allow
        );
    }

    #[test]
    fn check_read_agrees_with_check() {
        let mut k = Kernel::new();
        let calls = [
            Syscall::Getpid,
            Syscall::Stat("/etc".into()),
            Syscall::Readdir("/".into()),
            Syscall::Read(0, 4),
        ];
        for call in &calls {
            let mut a = AllowAll;
            let fast = a.check_read(&k, Pid(1), call);
            assert_eq!(fast, Some(a.check(&mut k, Pid(1), call)));
            let mut d = DenyAll;
            let fast = d.check_read(&k, Pid(1), call);
            assert_eq!(fast, Some(d.check(&mut k, Pid(1), call)));
        }
    }
}
