//! Forensic tracing of trapped system calls.
//!
//! Section 9 suggests the identity box "could be used for forensic
//! purposes, recording the objects accessed and the activities taken by
//! the untrusted user". The supervisor sees every call and its outcome,
//! so the record is complete by construction: attach a [`TraceSink`] and
//! every trapped syscall appends one strace-like [`TraceRecord`].

use idbox_kernel::{Pid, Syscall, SysRet};
use idbox_types::{Errno, SysResult};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// One recorded system call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Sequence number within the sink.
    pub seq: u64,
    /// The calling process.
    pub pid: Pid,
    /// Syscall name.
    pub name: &'static str,
    /// The object(s) named by the call (paths, targets), if any.
    pub detail: String,
    /// Rendered outcome: `ok`, `= <num>`, or the errno.
    pub outcome: String,
    /// True when the call failed (including policy denials).
    pub denied: bool,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>5}] {} {}({}) {}",
            self.seq, self.pid, self.name, self.detail, self.outcome
        )
    }
}

/// A shared, append-only record of everything a supervisor's processes
/// did. Clone the handle to keep reading after the box is running.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    inner: Arc<Mutex<Vec<TraceRecord>>>,
}

impl TraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// Record one call (used by the supervisor).
    pub fn record(&self, pid: Pid, call: &Syscall, result: &SysResult<SysRet>) {
        let mut log = self.inner.lock();
        let seq = log.len() as u64;
        log.push(make_record(seq, pid, call, result));
    }

    /// Snapshot all records.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.inner.lock().clone()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Only the denied operations — the forensic highlights.
    pub fn denials(&self) -> Vec<TraceRecord> {
        self.inner.lock().iter().filter(|r| r.denied).cloned().collect()
    }

    /// The distinct objects (paths) touched, in first-access order —
    /// "recording the objects accessed".
    pub fn objects_accessed(&self) -> Vec<String> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for r in self.inner.lock().iter() {
            for path in r.detail.split(" -> ") {
                // Strip the open-mode annotation (`/a [r]` -> `/a`).
                let path = path.split(" [").next().unwrap_or("").trim();
                if !path.is_empty() && path.starts_with('/') && seen.insert(path.to_string())
                {
                    out.push(path.to_string());
                }
            }
        }
        out
    }

    /// Render the whole log, one line per record.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for r in self.inner.lock().iter() {
            s.push_str(&r.to_string());
            s.push('\n');
        }
        s
    }
}

fn call_detail(call: &Syscall) -> String {
    use Syscall::*;
    match call {
        Stat(p) | Lstat(p) | Rmdir(p) | Unlink(p) | Readlink(p) | Chdir(p)
        | Readdir(p) | Exec(p) => p.clone(),
        Open(p, flags, _) => {
            let mut s = p.clone();
            s.push_str(if flags.write { " [w]" } else { " [r]" });
            s
        }
        Mkdir(p, _) | Truncate(p, _) | Chmod(p, _) => p.clone(),
        Chown(p, uid, gid) => format!("{p} -> {uid}:{gid}"),
        Link(a, b) | Symlink(a, b) | Rename(a, b) => format!("{a} -> {b}"),
        AccessCheck(p, _) => p.clone(),
        Read(fd, len) | Pread(fd, len, _) | Preadx(fd, len, _) => format!("fd{fd}, {len}b"),
        Write(fd, data) | Pwrite(fd, data, _) => format!("fd{fd}, {}b", data.len()),
        Close(fd) | Dup(fd) | Fstat(fd) => format!("fd{fd}"),
        Lseek(fd, off, _) => format!("fd{fd}, {off}"),
        Kill(pid, sig) => format!("{pid}, {sig:?}"),
        Getenv(name) => name.clone(),
        Exit(code) => format!("{code}"),
        Umask(m) => format!("{m:o}"),
        Getpid | Getppid | Getuid | Getcwd | Fork | Wait | SigPending | Pipe
        | GetUserName => String::new(),
    }
}

fn make_record(seq: u64, pid: Pid, call: &Syscall, result: &SysResult<SysRet>) -> TraceRecord {
    let (outcome, denied) = match result {
        Ok(SysRet::Num(n)) => (format!("= {n}"), false),
        Ok(_) => ("= ok".to_string(), false),
        Err(e @ (Errno::EACCES | Errno::EPERM)) => (format!("= {e:?} DENIED"), true),
        Err(e) => (format!("= {e:?}"), false),
    };
    TraceRecord {
        seq,
        pid,
        name: call.name(),
        detail: call_detail(call),
        outcome,
        denied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_kernel::OpenFlags;

    fn rec(call: Syscall, result: SysResult<SysRet>) -> TraceRecord {
        make_record(0, Pid(7), &call, &result)
    }

    #[test]
    fn open_records_path_and_mode() {
        let r = rec(
            Syscall::Open("/etc/passwd".into(), OpenFlags::rdonly(), 0),
            Ok(SysRet::Num(3)),
        );
        assert_eq!(r.detail, "/etc/passwd [r]");
        assert_eq!(r.outcome, "= 3");
        assert!(!r.denied);
    }

    #[test]
    fn denials_are_flagged() {
        let r = rec(
            Syscall::Unlink("/home/dthain/secret".into()),
            Err(Errno::EACCES),
        );
        assert!(r.denied);
        assert!(r.outcome.contains("DENIED"));
        let r = rec(Syscall::Stat("/missing".into()), Err(Errno::ENOENT));
        assert!(!r.denied, "ENOENT is not a policy denial");
    }

    #[test]
    fn sink_accumulates_and_filters() {
        let sink = TraceSink::new();
        sink.record(Pid(1), &Syscall::Getpid, &Ok(SysRet::Num(1)));
        sink.record(
            Pid(1),
            &Syscall::Open("/a".into(), OpenFlags::rdonly(), 0),
            &Err(Errno::EACCES),
        );
        sink.record(
            Pid(1),
            &Syscall::Rename("/b".into(), "/c".into()),
            &Ok(SysRet::Unit),
        );
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.denials().len(), 1);
        assert_eq!(sink.objects_accessed(), ["/a", "/b", "/c"]);
        let text = sink.render();
        assert!(text.contains("open(/a [r]) = EACCES DENIED"), "{text}");
    }

    #[test]
    fn display_format() {
        let r = rec(Syscall::Exec("/work/sim.exe".into()), Ok(SysRet::Unit));
        assert_eq!(r.to_string(), "[    0] pid7 exec(/work/sim.exe) = ok");
    }
}
