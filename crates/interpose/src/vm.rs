//! The tracee's registers and memory.

use idbox_types::{Errno, SysResult};

/// Number of register slots (the size of `user_regs_struct` on x86-64,
/// which a real `PTRACE_GETREGS` transfers in full).
pub const NREGS: usize = 27;

/// Register indices used by the syscall ABI.
pub mod reg {
    /// Syscall number on entry; result on exit.
    pub const NR: usize = 0;
    /// First argument.
    pub const A0: usize = 1;
    /// Second argument.
    pub const A1: usize = 2;
    /// Third argument.
    pub const A2: usize = 3;
    /// Fourth argument.
    pub const A3: usize = 4;
    /// Fifth argument (reserved: no current call uses more than four
    /// arguments, but the ABI transfers the full register file).
    #[allow(dead_code)]
    pub const A4: usize = 5;
    /// Sixth argument (reserved, as above).
    #[allow(dead_code)]
    pub const A5: usize = 6;
    /// Return value.
    pub const RET: usize = 7;
}

/// Default guest memory size (1 MiB).
pub const DEFAULT_MEM: usize = 1 << 20;

/// A simulated traced process: a register file and a flat byte memory.
///
/// The supervisor may only touch the tracee through [`TraceeVm::peek_word`]
/// and [`TraceeVm::poke_word`] (the `PTRACE_PEEKDATA`/`POKEDATA`
/// equivalents, one machine word at a time) plus whole-register-file
/// transfers; the *guest program itself* accesses its memory freely, the
/// way real code does.
#[derive(Debug, Clone)]
pub struct TraceeVm {
    /// The register file.
    pub regs: [u64; NREGS],
    mem: Vec<u8>,
}

impl Default for TraceeVm {
    fn default() -> Self {
        TraceeVm::new()
    }
}

impl TraceeVm {
    /// A VM with the default memory size.
    pub fn new() -> Self {
        TraceeVm::with_memory(DEFAULT_MEM)
    }

    /// A VM with a specific memory size (rounded up to 8 bytes).
    pub fn with_memory(bytes: usize) -> Self {
        TraceeVm {
            regs: [0; NREGS],
            mem: vec![0; bytes.div_ceil(8) * 8],
        }
    }

    /// Memory size in bytes.
    pub fn mem_len(&self) -> usize {
        self.mem.len()
    }

    /// Supervisor-side: read one aligned-enough word (8 bytes) of tracee
    /// memory. Fails with `EFAULT` outside the address space, like a real
    /// `PTRACE_PEEKDATA`.
    #[inline]
    pub fn peek_word(&self, addr: u64) -> SysResult<u64> {
        let a = addr as usize;
        let end = a.checked_add(8).ok_or(Errno::EFAULT)?;
        if end > self.mem.len() {
            return Err(Errno::EFAULT);
        }
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.mem[a..end]);
        Ok(u64::from_le_bytes(b))
    }

    /// Supervisor-side: write one word of tracee memory.
    #[inline]
    pub fn poke_word(&mut self, addr: u64, word: u64) -> SysResult<()> {
        let a = addr as usize;
        let end = a.checked_add(8).ok_or(Errno::EFAULT)?;
        if end > self.mem.len() {
            return Err(Errno::EFAULT);
        }
        self.mem[a..end].copy_from_slice(&word.to_le_bytes());
        Ok(())
    }

    /// The word-granular span a ranged transfer of `len` bytes covers:
    /// a `peek_word`/`poke_word` loop always moves whole words, so the
    /// trailing partial word must lie fully inside the address space.
    fn word_span(&self, addr: u64, len: usize) -> SysResult<usize> {
        let a = addr as usize;
        let span = len.div_ceil(8).checked_mul(8).ok_or(Errno::EFAULT)?;
        let end = a.checked_add(span).ok_or(Errno::EFAULT)?;
        if end > self.mem.len() {
            return Err(Errno::EFAULT);
        }
        Ok(a)
    }

    /// Supervisor-side: read `len` bytes of tracee memory in one ranged
    /// transfer (the `process_vm_readv` upgrade over a `PTRACE_PEEKDATA`
    /// loop). Faults exactly where the word loop it replaces would:
    /// bounds are word-granular, so a read whose trailing partial word
    /// pokes past the address space is `EFAULT` even if the requested
    /// bytes themselves would fit.
    pub fn peek_bytes(&self, addr: u64, len: usize) -> SysResult<Vec<u8>> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let a = self.word_span(addr, len)?;
        Ok(self.mem[a..a + len].to_vec())
    }

    /// Supervisor-side: write `data` into tracee memory in one ranged
    /// transfer (the `process_vm_writev` upgrade over a
    /// `PTRACE_POKEDATA` loop). Word-granular bounds, like
    /// [`TraceeVm::peek_bytes`]; bytes beyond `data` in the trailing
    /// partial word are preserved, matching the word loop's
    /// read-modify-write.
    pub fn poke_bytes(&mut self, addr: u64, data: &[u8]) -> SysResult<()> {
        if data.is_empty() {
            return Ok(());
        }
        let a = self.word_span(addr, data.len())?;
        self.mem[a..a + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Guest-side: borrow a memory range (the application touching its
    /// own address space — no supervisor involved, no per-word cost).
    pub fn guest_slice(&self, addr: u64, len: usize) -> SysResult<&[u8]> {
        let a = addr as usize;
        let end = a.checked_add(len).ok_or(Errno::EFAULT)?;
        if end > self.mem.len() {
            return Err(Errno::EFAULT);
        }
        Ok(&self.mem[a..end])
    }

    /// Guest-side: mutably borrow a memory range.
    pub fn guest_slice_mut(&mut self, addr: u64, len: usize) -> SysResult<&mut [u8]> {
        let a = addr as usize;
        let end = a.checked_add(len).ok_or(Errno::EFAULT)?;
        if end > self.mem.len() {
            return Err(Errno::EFAULT);
        }
        Ok(&mut self.mem[a..end])
    }

    /// Guest-side: copy data into memory.
    pub fn guest_write(&mut self, addr: u64, data: &[u8]) -> SysResult<()> {
        self.guest_slice_mut(addr, data.len())?.copy_from_slice(data);
        Ok(())
    }

    /// Set up the register file for a syscall: number plus up to six
    /// arguments.
    pub fn load_call(&mut self, nr: u64, args: &[u64]) {
        debug_assert!(args.len() <= 6);
        self.regs[reg::NR] = nr;
        for (i, &a) in args.iter().enumerate() {
            self.regs[reg::A0 + i] = a;
        }
        for i in args.len()..6 {
            self.regs[reg::A0 + i] = 0;
        }
    }

    /// The raw return value register.
    pub fn ret(&self) -> i64 {
        self.regs[reg::RET] as i64
    }

    /// Set the return value register.
    pub fn set_ret(&mut self, v: i64) {
        self.regs[reg::RET] = v as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peek_poke_roundtrip() {
        let mut vm = TraceeVm::with_memory(64);
        vm.poke_word(8, 0xDEAD_BEEF_0BAD_F00D).unwrap();
        assert_eq!(vm.peek_word(8).unwrap(), 0xDEAD_BEEF_0BAD_F00D);
    }

    #[test]
    fn peek_out_of_bounds_is_efault() {
        let vm = TraceeVm::with_memory(16);
        assert_eq!(vm.peek_word(16), Err(Errno::EFAULT));
        assert_eq!(vm.peek_word(9), Err(Errno::EFAULT));
        assert_eq!(vm.peek_word(u64::MAX), Err(Errno::EFAULT));
    }

    #[test]
    fn poke_out_of_bounds_is_efault() {
        let mut vm = TraceeVm::with_memory(16);
        assert_eq!(vm.poke_word(16, 1), Err(Errno::EFAULT));
    }

    #[test]
    fn peek_bytes_matches_word_loop() {
        let mut vm = TraceeVm::with_memory(64);
        vm.guest_write(3, b"ranged transfer!").unwrap();
        for len in 0..=16usize {
            let ranged = vm.peek_bytes(3, len).unwrap();
            // The loop peek_bytes replaces: whole words, truncated.
            let mut word_loop = Vec::new();
            let mut i = 0;
            while i < len {
                let bytes = vm.peek_word(3 + i as u64).unwrap().to_le_bytes();
                let take = (len - i).min(8);
                word_loop.extend_from_slice(&bytes[..take]);
                i += 8;
            }
            assert_eq!(ranged, word_loop, "len={len}");
        }
    }

    #[test]
    fn poke_bytes_roundtrips_and_preserves_partial_word_tail() {
        let mut vm = TraceeVm::with_memory(64);
        vm.guest_write(0, &[0xEE; 32]).unwrap();
        vm.poke_bytes(5, b"hello world").unwrap();
        assert_eq!(vm.guest_slice(5, 11).unwrap(), b"hello world");
        // RMW semantics: bytes beyond the payload in the trailing
        // partial word are untouched.
        assert_eq!(vm.guest_slice(16, 8).unwrap(), &[0xEE; 8]);
        assert_eq!(vm.guest_slice(0, 5).unwrap(), &[0xEE; 5]);
    }

    #[test]
    fn ranged_transfers_use_word_granular_bounds() {
        let mut vm = TraceeVm::with_memory(16);
        // 7 bytes at addr 9 fit byte-wise (9+7=16) but the word loop
        // would peek the word at 9..17 — EFAULT, and the ranged
        // transfer must fault identically.
        assert_eq!(vm.peek_bytes(9, 7), Err(Errno::EFAULT));
        assert_eq!(vm.poke_bytes(9, &[1; 7]), Err(Errno::EFAULT));
        // Word-aligned spans inside the space are fine.
        assert!(vm.peek_bytes(8, 8).is_ok());
        assert!(vm.poke_bytes(8, &[1; 8]).is_ok());
        // Zero-length transfers never fault, wherever they point.
        assert_eq!(vm.peek_bytes(u64::MAX, 0).unwrap(), Vec::<u8>::new());
        assert!(vm.poke_bytes(u64::MAX, &[]).is_ok());
        // Overflowing spans fault instead of wrapping.
        assert_eq!(vm.peek_bytes(u64::MAX, 9), Err(Errno::EFAULT));
        assert_eq!(vm.peek_bytes(0, usize::MAX), Err(Errno::EFAULT));
    }

    #[test]
    fn guest_access() {
        let mut vm = TraceeVm::with_memory(64);
        vm.guest_write(10, b"hello").unwrap();
        assert_eq!(vm.guest_slice(10, 5).unwrap(), b"hello");
        assert_eq!(vm.guest_slice(60, 8), Err(Errno::EFAULT));
    }

    #[test]
    fn word_and_byte_views_agree() {
        let mut vm = TraceeVm::with_memory(64);
        vm.guest_write(0, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        assert_eq!(
            vm.peek_word(0).unwrap(),
            u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8])
        );
    }

    #[test]
    fn load_call_clears_stale_args() {
        let mut vm = TraceeVm::new();
        vm.load_call(1, &[1, 2, 3, 4, 5, 6]);
        vm.load_call(2, &[9]);
        assert_eq!(vm.regs[reg::NR], 2);
        assert_eq!(vm.regs[reg::A0], 9);
        assert_eq!(vm.regs[reg::A1], 0);
        assert_eq!(vm.regs[reg::A5], 0);
    }

    #[test]
    fn ret_roundtrips_negative() {
        let mut vm = TraceeVm::new();
        vm.set_ret(-13);
        assert_eq!(vm.ret(), -13);
    }
}
