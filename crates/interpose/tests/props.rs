//! Property tests for the interposition layer.
//!
//! The headline invariant: **interposition is transparent** — any
//! sequence of guest operations produces identical observable results in
//! direct and interposed modes. Plus robustness: arbitrary register
//! garbage never panics the supervisor (Garfinkel's "boundary
//! conditions" resistance), and the peek/poke word paths reassemble
//! bytes exactly.

use idbox_interpose::{share, AllowAll, GuestCtx, Supervisor, TraceeVm};
use idbox_kernel::{Kernel, OpenFlags, Pid};
use idbox_types::CostModel;
use idbox_vfs::Cred;
use proptest::prelude::*;

/// A random guest operation over a small namespace.
#[derive(Debug, Clone)]
enum Op {
    Write(String, Vec<u8>),
    Read(String),
    Mkdir(String),
    Unlink(String),
    Rename(String, String),
    Stat(String),
    Readdir(String),
    Symlink(String, String),
    Chdir(String),
}

fn name() -> impl Strategy<Value = String> {
    "[ab]{1,2}".prop_map(|s| s)
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (name(), proptest::collection::vec(any::<u8>(), 0..600))
            .prop_map(|(n, d)| Op::Write(n, d)),
        name().prop_map(Op::Read),
        name().prop_map(Op::Mkdir),
        name().prop_map(Op::Unlink),
        (name(), name()).prop_map(|(a, b)| Op::Rename(a, b)),
        name().prop_map(Op::Stat),
        name().prop_map(Op::Readdir),
        (name(), name()).prop_map(|(a, b)| Op::Symlink(a, b)),
        name().prop_map(Op::Chdir),
    ]
}

/// Apply one op, rendering its observable outcome as a string.
fn apply(ctx: &mut GuestCtx<'_>, op: &Op) -> String {
    match op {
        Op::Write(p, d) => format!("{:?}", ctx.write_file(p, d)),
        Op::Read(p) => format!("{:?}", ctx.read_file(p)),
        Op::Mkdir(p) => format!("{:?}", ctx.mkdir(p, 0o755)),
        Op::Unlink(p) => format!("{:?}", ctx.unlink(p)),
        Op::Rename(a, b) => format!("{:?}", ctx.rename(a, b)),
        Op::Stat(p) => match ctx.stat(p) {
            // Inode numbers and logical times may differ run to run;
            // compare the stable facts.
            Ok(st) => format!("Ok(kind={:?},size={},nlink={})", st.kind, st.size, st.nlink),
            Err(e) => format!("Err({e:?})"),
        },
        Op::Readdir(p) => match ctx.readdir(p) {
            Ok(es) => format!(
                "Ok({:?})",
                es.iter().map(|e| e.name.clone()).collect::<Vec<_>>()
            ),
            Err(e) => format!("Err({e:?})"),
        },
        Op::Symlink(t, l) => format!("{:?}", ctx.symlink(t, l)),
        Op::Chdir(p) => format!("{:?}", ctx.chdir(p)),
    }
}

fn fresh(mode_interposed: bool) -> (Supervisor, Pid) {
    let kernel = share(Kernel::new());
    let pid = kernel.lock().spawn(Cred::ROOT, "/tmp", "prop").unwrap();
    let sup = if mode_interposed {
        Supervisor::interposed(kernel, Box::new(AllowAll), CostModel::free_switches())
    } else {
        Supervisor::direct(kernel)
    };
    (sup, pid)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Transparency: direct and interposed runs observe the same world.
    #[test]
    fn interposition_is_transparent(ops in proptest::collection::vec(op(), 1..25)) {
        let (mut d_sup, d_pid) = fresh(false);
        let (mut i_sup, i_pid) = fresh(true);
        let mut d_ctx = GuestCtx::new(&mut d_sup, d_pid);
        let mut i_ctx = GuestCtx::new(&mut i_sup, i_pid);
        for op in &ops {
            let direct = apply(&mut d_ctx, op);
            let boxed = apply(&mut i_ctx, op);
            prop_assert_eq!(direct, boxed, "diverged on {:?}", op);
        }
    }

    /// Garbage registers never panic; every outcome is a clean retcode.
    #[test]
    fn random_registers_never_panic(
        nr in any::<u64>(),
        args in proptest::collection::vec(any::<u64>(), 6),
        interposed in any::<bool>(),
    ) {
        let (mut sup, pid) = fresh(interposed);
        let mut vm = TraceeVm::new();
        vm.load_call(nr, &args);
        sup.execute(pid, &mut vm);
        let _ = vm.ret(); // reached without panicking
    }

    /// Data written through the boxed path (pokes or channel) reads back
    /// byte-identical through either path.
    #[test]
    fn byte_fidelity_across_paths(
        data in proptest::collection::vec(any::<u8>(), 0..10_000),
        offset in 0u64..512,
    ) {
        let (mut sup, pid) = fresh(true);
        let mut ctx = GuestCtx::new(&mut sup, pid);
        let fd = ctx.open("/tmp/fidelity", OpenFlags::rdwr_create(), 0o644).unwrap();
        ctx.pwrite(fd, &data, offset).unwrap();
        let mut back = vec![0u8; data.len()];
        let n = ctx.pread(fd, &mut back, offset).unwrap();
        prop_assert_eq!(n, data.len());
        prop_assert_eq!(&back, &data);
        ctx.close(fd).unwrap();
        // And the direct view agrees.
        let (mut d_sup, d_pid) = fresh(false);
        let mut _d_ctx = GuestCtx::new(&mut d_sup, d_pid);
        let kernel = sup.kernel().clone();
        let mut k = kernel.lock();
        let root = k.vfs().root();
        let whole = k.vfs_mut().read_file(root, "/tmp/fidelity", &Cred::ROOT).unwrap();
        prop_assert_eq!(&whole[offset as usize..], &data[..]);
    }

    /// Cost accounting: traps equal the number of syscalls issued, in
    /// any mix.
    #[test]
    fn trap_count_matches_syscalls(ops in proptest::collection::vec(op(), 1..15)) {
        let (mut sup, pid) = fresh(true);
        let before_kernel = sup.kernel().lock().total_syscalls();
        let mut ctx = GuestCtx::new(&mut sup, pid);
        for op in &ops {
            let _ = apply(&mut ctx, op);
        }
        let report = sup.cost_report();
        let kernel_calls = sup.kernel().lock().total_syscalls() - before_kernel;
        prop_assert_eq!(report.traps, kernel_calls, "every kernel entry is a trap");
        prop_assert_eq!(report.switches, report.traps * 6);
    }
}
