//! The local account database (`/etc/passwd`).
//!
//! The identity box renders this database *irrelevant for access control*,
//! but it still exists: the supervising user's account lives here, mapping
//! methods (Figure 1) create accounts here, and the box synthesizes a
//! private copy of the passwd file so `whoami` inside the box reports the
//! visiting identity (paper, Section 3).

use idbox_types::{Errno, SysResult};
use std::collections::BTreeMap;
use std::fmt;

/// One `/etc/passwd` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Account {
    /// Account name.
    pub name: String,
    /// Numeric user id.
    pub uid: u32,
    /// Primary group id.
    pub gid: u32,
    /// Free-form description (GECOS field).
    pub gecos: String,
    /// Home directory path.
    pub home: String,
    /// Login shell.
    pub shell: String,
}

impl Account {
    /// Build an account with conventional defaults.
    pub fn new(name: impl Into<String>, uid: u32, gid: u32) -> Self {
        let name = name.into();
        Account {
            home: format!("/home/{name}"),
            gecos: String::new(),
            shell: "/bin/sh".to_string(),
            name,
            uid,
            gid,
        }
    }

    /// Render as a passwd line (`name:x:uid:gid:gecos:home:shell`).
    pub fn passwd_line(&self) -> String {
        format!(
            "{}:x:{}:{}:{}:{}:{}",
            self.name, self.uid, self.gid, self.gecos, self.home, self.shell
        )
    }

    /// Parse a passwd line.
    pub fn parse_line(line: &str) -> Option<Account> {
        let mut f = line.split(':');
        let name = f.next()?.to_string();
        let _password = f.next()?;
        let uid = f.next()?.parse().ok()?;
        let gid = f.next()?.parse().ok()?;
        let gecos = f.next()?.to_string();
        let home = f.next()?.to_string();
        let shell = f.next()?.to_string();
        Some(Account {
            name,
            uid,
            gid,
            gecos,
            home,
            shell,
        })
    }
}

impl fmt::Display for Account {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.passwd_line())
    }
}

/// The account database.
///
/// Mutations that would require root on a real system (`add`, `remove`)
/// are *counted*: the mapping-method evaluation (Figure 1) uses these
/// counters to measure the administrative burden of each scheme.
#[derive(Debug, Clone, Default)]
pub struct AccountDb {
    by_name: BTreeMap<String, Account>,
    next_uid: u32,
    /// Number of account creations (root-only administrative actions).
    pub admin_creations: u64,
    /// Number of account removals (root-only administrative actions).
    pub admin_removals: u64,
}

impl AccountDb {
    /// A database pre-seeded with `root` (uid 0) and `nobody` (uid 65534).
    pub fn with_system_accounts() -> Self {
        let mut db = AccountDb {
            next_uid: 1000,
            ..Default::default()
        };
        let mut root = Account::new("root", 0, 0);
        root.home = "/root".to_string();
        db.insert_raw(root);
        let mut nobody = Account::new("nobody", 65534, 65534);
        nobody.home = "/".to_string();
        nobody.shell = "/sbin/nologin".to_string();
        db.insert_raw(nobody);
        db
    }

    fn insert_raw(&mut self, acct: Account) {
        self.by_name.insert(acct.name.clone(), acct);
    }

    /// Add an account, counting the administrative action. Fails when the
    /// name or uid is taken.
    pub fn add(&mut self, acct: Account) -> SysResult<()> {
        if self.by_name.contains_key(&acct.name) || self.lookup_uid(acct.uid).is_some() {
            return Err(Errno::EEXIST);
        }
        self.admin_creations += 1;
        self.insert_raw(acct);
        Ok(())
    }

    /// Remove an account by name, counting the administrative action.
    pub fn remove(&mut self, name: &str) -> SysResult<Account> {
        let acct = self.by_name.remove(name).ok_or(Errno::ENOENT)?;
        self.admin_removals += 1;
        Ok(acct)
    }

    /// Find by name.
    pub fn lookup(&self, name: &str) -> Option<&Account> {
        self.by_name.get(name)
    }

    /// Find by uid.
    pub fn lookup_uid(&self, uid: u32) -> Option<&Account> {
        self.by_name.values().find(|a| a.uid == uid)
    }

    /// Allocate the next free ordinary uid (>= 1000).
    pub fn next_free_uid(&mut self) -> u32 {
        loop {
            let uid = self.next_uid;
            self.next_uid += 1;
            if self.lookup_uid(uid).is_none() {
                return uid;
            }
        }
    }

    /// Number of accounts.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// All accounts in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Account> {
        self.by_name.values()
    }

    /// Render the whole database as an `/etc/passwd` file.
    pub fn passwd_file(&self) -> String {
        let mut s = String::new();
        for a in self.by_name.values() {
            s.push_str(&a.passwd_line());
            s.push('\n');
        }
        s
    }

    /// Parse an `/etc/passwd` file into a database (no admin actions are
    /// counted; this is bootstrap, not administration).
    pub fn parse_passwd(text: &str) -> Self {
        let mut db = AccountDb::default();
        let mut max_uid = 999;
        for line in text.lines() {
            if let Some(a) = Account::parse_line(line) {
                if a.uid > max_uid && a.uid < 60000 {
                    max_uid = a.uid;
                }
                db.insert_raw(a);
            }
        }
        db.next_uid = max_uid + 1;
        db
    }

    // ------------------------------------------------------------------
    // Durability (WAL snapshot blob + record replay)
    // ------------------------------------------------------------------

    /// Serialize the full database — accounts *and* allocator/counter
    /// state, which `passwd_file` does not carry — for the WAL snapshot.
    pub fn to_blob(&self) -> Vec<u8> {
        let mut s = String::from("idbox-accounts v1\n");
        s.push_str(&format!("next_uid {}\n", self.next_uid));
        s.push_str(&format!("creations {}\n", self.admin_creations));
        s.push_str(&format!("removals {}\n", self.admin_removals));
        s.push_str(&self.passwd_file());
        s.into_bytes()
    }

    /// Rebuild a database from a [`AccountDb::to_blob`] image. `None`
    /// when the header does not parse (a corrupt snapshot).
    pub fn from_blob(blob: &[u8]) -> Option<Self> {
        let text = std::str::from_utf8(blob).ok()?;
        let mut lines = text.lines();
        if lines.next()? != "idbox-accounts v1" {
            return None;
        }
        let field = |line: &str, key: &str| -> Option<u64> {
            line.strip_prefix(key)?.trim().parse().ok()
        };
        let next_uid = field(lines.next()?, "next_uid ")? as u32;
        let admin_creations = field(lines.next()?, "creations ")?;
        let admin_removals = field(lines.next()?, "removals ")?;
        let mut db = AccountDb {
            next_uid,
            admin_creations,
            admin_removals,
            ..Default::default()
        };
        for line in lines {
            if let Some(a) = Account::parse_line(line) {
                db.insert_raw(a);
            }
        }
        Some(db)
    }

    /// Redo one logged account creation. Tolerant by design — a replayed
    /// record describes an operation that already succeeded, so a
    /// malformed line or duplicate is skipped, never an error. Counts
    /// the admin action (the live operation counted it too) and keeps
    /// the uid allocator ahead of every replayed uid.
    pub fn replay_add(&mut self, line: &str) {
        if let Some(a) = Account::parse_line(line) {
            if self.by_name.contains_key(&a.name) {
                return;
            }
            self.admin_creations += 1;
            if a.uid >= self.next_uid && a.uid < 60000 {
                self.next_uid = a.uid + 1;
            }
            self.insert_raw(a);
        }
    }

    /// Redo one logged account removal (tolerant, like
    /// [`AccountDb::replay_add`]).
    pub fn replay_remove(&mut self, name: &str) {
        if self.by_name.remove(name).is_some() {
            self.admin_removals += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passwd_line_roundtrip() {
        let a = Account::new("dthain", 1000, 1000);
        let line = a.passwd_line();
        assert_eq!(line, "dthain:x:1000:1000::/home/dthain:/bin/sh");
        assert_eq!(Account::parse_line(&line).unwrap(), a);
    }

    #[test]
    fn system_accounts_present() {
        let db = AccountDb::with_system_accounts();
        assert_eq!(db.lookup("root").unwrap().uid, 0);
        assert_eq!(db.lookup("nobody").unwrap().uid, 65534);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn add_counts_admin_burden() {
        let mut db = AccountDb::with_system_accounts();
        db.add(Account::new("fred", 1000, 1000)).unwrap();
        db.add(Account::new("george", 1001, 1001)).unwrap();
        assert_eq!(db.admin_creations, 2);
        db.remove("fred").unwrap();
        assert_eq!(db.admin_removals, 1);
    }

    #[test]
    fn duplicate_name_or_uid_rejected() {
        let mut db = AccountDb::with_system_accounts();
        db.add(Account::new("fred", 1000, 1000)).unwrap();
        assert_eq!(db.add(Account::new("fred", 1001, 1001)), Err(Errno::EEXIST));
        assert_eq!(db.add(Account::new("other", 1000, 1000)), Err(Errno::EEXIST));
    }

    #[test]
    fn next_free_uid_skips_taken() {
        let mut db = AccountDb::with_system_accounts();
        let u1 = db.next_free_uid();
        db.add(Account::new("a", u1, u1)).unwrap();
        let u2 = db.next_free_uid();
        assert_ne!(u1, u2);
        assert!(db.lookup_uid(u2).is_none());
    }

    #[test]
    fn passwd_file_parse_roundtrip() {
        let mut db = AccountDb::with_system_accounts();
        db.add(Account::new("fred", 1000, 1000)).unwrap();
        let text = db.passwd_file();
        let db2 = AccountDb::parse_passwd(&text);
        assert_eq!(db2.len(), db.len());
        assert_eq!(db2.lookup("fred").unwrap().uid, 1000);
    }

    #[test]
    fn malformed_lines_skipped() {
        let db = AccountDb::parse_passwd("garbage\nfred:x:1000:1000::/h:/s\n:::\n");
        assert_eq!(db.len(), 1);
    }
}
