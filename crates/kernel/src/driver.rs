//! Filesystem drivers and the mount table.
//!
//! Parrot "directs system calls to device drivers" — filesystem-like
//! services attached under path prefixes, so that opening
//! `/chirp/server/path` transparently reaches a remote Chirp server. The
//! kernel's mount table reproduces this: any path under a mounted prefix
//! is forwarded to the mount's [`FsDriver`], carrying the caller's global
//! identity so the remote side can enforce *its* ACLs against the same
//! name used locally — the whole point of consistent global identity.

use crate::process::OpenFlags;
use idbox_types::{Identity, SysResult};
use idbox_vfs::{DirEntry, StatBuf};

/// A driver-private open-file descriptor.
pub type DriverFd = u64;

/// A filesystem-like service mounted under a path prefix.
///
/// Paths passed in are relative to the mount point (always absolute,
/// beginning with `/`). The `identity` argument is the caller's global
/// identity — drivers for remote services present it for access control
/// on the far side.
pub trait FsDriver: Send + Sync {
    /// Human-readable driver name (`chirp`, `null`, ...).
    fn name(&self) -> &str;

    /// Open a file; returns a driver-private descriptor.
    fn open(
        &mut self,
        path: &str,
        flags: OpenFlags,
        mode: u16,
        identity: &Identity,
    ) -> SysResult<DriverFd>;

    /// Close a driver descriptor.
    fn close(&mut self, dfd: DriverFd) -> SysResult<()>;

    /// Positioned read.
    fn pread(&mut self, dfd: DriverFd, len: usize, off: u64) -> SysResult<Vec<u8>>;

    /// Positioned write; returns bytes written.
    fn pwrite(&mut self, dfd: DriverFd, data: &[u8], off: u64) -> SysResult<usize>;

    /// Metadata of an open descriptor.
    fn fstat(&mut self, dfd: DriverFd) -> SysResult<StatBuf>;

    /// Metadata by path.
    fn stat(&mut self, path: &str, identity: &Identity) -> SysResult<StatBuf>;

    /// Create a directory.
    fn mkdir(&mut self, path: &str, mode: u16, identity: &Identity) -> SysResult<()>;

    /// Remove an empty directory.
    fn rmdir(&mut self, path: &str, identity: &Identity) -> SysResult<()>;

    /// Remove a file.
    fn unlink(&mut self, path: &str, identity: &Identity) -> SysResult<()>;

    /// Rename within this mount.
    fn rename(&mut self, old: &str, new: &str, identity: &Identity) -> SysResult<()>;

    /// List a directory.
    fn readdir(&mut self, path: &str, identity: &Identity) -> SysResult<Vec<DirEntry>>;

    /// Truncate a file by path.
    fn truncate(&mut self, path: &str, len: u64, identity: &Identity) -> SysResult<()>;
}

/// The mount table: ordered (longest-prefix-wins) path prefixes.
#[derive(Default)]
pub struct MountTable {
    mounts: Vec<(String, Box<dyn FsDriver>)>,
}

impl std::fmt::Debug for MountTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<_> = self
            .mounts
            .iter()
            .map(|(p, d)| format!("{} -> {}", p, d.name()))
            .collect();
        write!(f, "MountTable({names:?})")
    }
}

impl MountTable {
    /// Mount a driver under an absolute prefix (e.g. `/chirp/localhost`).
    /// Returns the mount index.
    pub fn mount(&mut self, prefix: impl Into<String>, driver: Box<dyn FsDriver>) -> usize {
        let mut prefix = prefix.into();
        while prefix.len() > 1 && prefix.ends_with('/') {
            prefix.pop();
        }
        self.mounts.push((prefix, driver));
        self.mounts.len() - 1
    }

    /// Number of mounts.
    pub fn len(&self) -> usize {
        self.mounts.len()
    }

    /// True when no mounts exist.
    pub fn is_empty(&self) -> bool {
        self.mounts.is_empty()
    }

    /// Find the mount owning `path`, if any: returns the mount index and
    /// the path *relative to the mount* (always absolute; `/` for the
    /// mount root). Longest matching prefix wins.
    pub fn route(&self, path: &str) -> Option<(usize, String)> {
        let mut best: Option<(usize, usize)> = None; // (mount idx, prefix len)
        for (i, (prefix, _)) in self.mounts.iter().enumerate() {
            let owns = path == prefix
                || (path.starts_with(prefix) && path.as_bytes()[prefix.len()] == b'/');
            if owns && best.map(|(_, l)| prefix.len() > l).unwrap_or(true) {
                best = Some((i, prefix.len()));
            }
        }
        best.map(|(i, l)| {
            let rest = &path[l..];
            let rel = if rest.is_empty() {
                "/".to_string()
            } else {
                rest.to_string()
            };
            (i, rel)
        })
    }

    /// Borrow a mounted driver by index.
    pub fn driver_mut(&mut self, idx: usize) -> Option<&mut dyn FsDriver> {
        match self.mounts.get_mut(idx) {
            Some((_, d)) => Some(&mut **d),
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_types::Errno;

    /// A trivial driver for routing tests.
    struct NullDriver;

    impl FsDriver for NullDriver {
        fn name(&self) -> &str {
            "null"
        }
        fn open(&mut self, _: &str, _: OpenFlags, _: u16, _: &Identity) -> SysResult<DriverFd> {
            Err(Errno::ENOSYS)
        }
        fn close(&mut self, _: DriverFd) -> SysResult<()> {
            Err(Errno::ENOSYS)
        }
        fn pread(&mut self, _: DriverFd, _: usize, _: u64) -> SysResult<Vec<u8>> {
            Err(Errno::ENOSYS)
        }
        fn pwrite(&mut self, _: DriverFd, _: &[u8], _: u64) -> SysResult<usize> {
            Err(Errno::ENOSYS)
        }
        fn fstat(&mut self, _: DriverFd) -> SysResult<StatBuf> {
            Err(Errno::ENOSYS)
        }
        fn stat(&mut self, _: &str, _: &Identity) -> SysResult<StatBuf> {
            Err(Errno::ENOSYS)
        }
        fn mkdir(&mut self, _: &str, _: u16, _: &Identity) -> SysResult<()> {
            Err(Errno::ENOSYS)
        }
        fn rmdir(&mut self, _: &str, _: &Identity) -> SysResult<()> {
            Err(Errno::ENOSYS)
        }
        fn unlink(&mut self, _: &str, _: &Identity) -> SysResult<()> {
            Err(Errno::ENOSYS)
        }
        fn rename(&mut self, _: &str, _: &str, _: &Identity) -> SysResult<()> {
            Err(Errno::ENOSYS)
        }
        fn readdir(&mut self, _: &str, _: &Identity) -> SysResult<Vec<DirEntry>> {
            Err(Errno::ENOSYS)
        }
        fn truncate(&mut self, _: &str, _: u64, _: &Identity) -> SysResult<()> {
            Err(Errno::ENOSYS)
        }
    }

    #[test]
    fn routing_prefers_longest_prefix() {
        let mut t = MountTable::default();
        t.mount("/chirp", Box::new(NullDriver));
        t.mount("/chirp/special", Box::new(NullDriver));
        let (idx, rel) = t.route("/chirp/special/file").unwrap();
        assert_eq!(idx, 1);
        assert_eq!(rel, "/file");
        let (idx, rel) = t.route("/chirp/other/file").unwrap();
        assert_eq!(idx, 0);
        assert_eq!(rel, "/other/file");
    }

    #[test]
    fn mount_root_routes_to_slash() {
        let mut t = MountTable::default();
        t.mount("/chirp/host", Box::new(NullDriver));
        let (_, rel) = t.route("/chirp/host").unwrap();
        assert_eq!(rel, "/");
    }

    #[test]
    fn non_prefix_paths_do_not_route() {
        let mut t = MountTable::default();
        t.mount("/chirp", Box::new(NullDriver));
        assert!(t.route("/chirpy/file").is_none());
        assert!(t.route("/local/file").is_none());
        assert!(t.route("/").is_none());
    }

    #[test]
    fn trailing_slash_on_mount_normalized() {
        let mut t = MountTable::default();
        t.mount("/m/", Box::new(NullDriver));
        let (_, rel) = t.route("/m/x").unwrap();
        assert_eq!(rel, "/x");
    }
}
