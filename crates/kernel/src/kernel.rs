//! The kernel proper: process table + syscall dispatch.

use crate::accounts::AccountDb;
use crate::driver::{FsDriver, MountTable};
use crate::process::{
    FileBacking, OpenFile, OpenFlags, Pid, PipeEnd, ProcState, Process, Signal,
};
use crate::stats::{LatencyStats, SyscallStats};
use crate::syscall::{SysRet, Syscall, Whence};
use idbox_types::{Errno, Identity, SysResult};
use idbox_vfs::{path as vpath, Access, Cred, FileKind, Ino, Vfs};
use std::collections::BTreeMap;

/// The initial process (everything reparents to it).
const INIT: Pid = Pid(1);

/// The simulated kernel.
///
/// Owns the filesystem, the mount table, the process table, and the
/// account database. All interaction happens through [`Kernel::syscall`]
/// (the trapped interface) or through supervisor-only methods such as
/// [`Kernel::spawn`] and [`Kernel::set_identity`], which model actions the
/// supervisor performs directly rather than on behalf of a guest.
pub struct Kernel {
    vfs: Vfs,
    mounts: MountTable,
    procs: BTreeMap<u32, Process>,
    next_pid: u32,
    accounts: AccountDb,
    pipes: Vec<Option<PipeBuf>>,
    /// Per-syscall-name invocation counters (workload characterization).
    /// Atomic so both dispatch paths — exclusive *and* shared-lock — can
    /// record calls; see [`SyscallStats`].
    pub stats: SyscallStats,
    /// Per-syscall latency histograms. Behind an `Arc` so supervisors
    /// can clone the handle once at construction and record timings
    /// without holding either side of the kernel lock.
    latency: std::sync::Arc<LatencyStats>,
}

/// An in-kernel pipe: a byte queue plus end reference counts.
#[derive(Debug, Default)]
struct PipeBuf {
    data: std::collections::VecDeque<u8>,
    readers: u32,
    writers: u32,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Kernel({} procs, {} inodes, {} mounts)",
            self.procs.len(),
            self.vfs.live_inodes(),
            self.mounts.len()
        )
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new()
    }
}

impl Kernel {
    /// A fresh kernel with the standard filesystem layout (`/etc`,
    /// `/home`, `/tmp`, `/root`, `/bin`), system accounts, an
    /// `/etc/passwd` file, and an init process (pid 1) running as root.
    pub fn new() -> Self {
        let mut vfs = Vfs::new();
        let root = vfs.root();
        let r = &Cred::ROOT;
        vfs.mkdir(root, "/etc", 0o755, r).unwrap();
        vfs.mkdir(root, "/home", 0o755, r).unwrap();
        vfs.mkdir(root, "/tmp", 0o777, r).unwrap();
        vfs.mkdir(root, "/root", 0o700, r).unwrap();
        vfs.mkdir(root, "/bin", 0o755, r).unwrap();
        // Standard executables (content is a placeholder; the simulated
        // exec checks existence and execute permission, not ELF headers).
        for bin in ["sh", "cc", "ls", "cp", "mv", "rm", "make", "whoami"] {
            let ino = vfs
                .create(root, &format!("/bin/{bin}"), 0o755, r)
                .unwrap();
            vfs.write_at(ino, 0, b"#!simulated\n").unwrap();
        }
        let accounts = AccountDb::with_system_accounts();
        vfs.write_file(root, "/etc/passwd", accounts.passwd_file().as_bytes(), r)
            .unwrap();
        let mut procs = BTreeMap::new();
        procs.insert(
            INIT.0,
            Process {
                pid: INIT,
                ppid: INIT,
                cred: Cred::ROOT,
                identity: None,
                cwd: root,
                cwd_path: "/".to_string(),
                fds: Vec::new(),
                state: ProcState::Running,
                pending: Vec::new(),
                umask: 0o022,
                comm: "init".to_string(),
                env: Default::default(),
            },
        );
        Kernel {
            vfs,
            mounts: MountTable::default(),
            procs,
            next_pid: 2,
            accounts,
            pipes: Vec::new(),
            stats: SyscallStats::new(),
            latency: std::sync::Arc::new(LatencyStats::new()),
        }
    }

    /// The shared latency-histogram handle for this kernel.
    pub fn latency(&self) -> &std::sync::Arc<LatencyStats> {
        &self.latency
    }

    // ------------------------------------------------------------------
    // Supervisor-side (non-trapped) interface
    // ------------------------------------------------------------------

    /// Borrow the filesystem.
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Mutably borrow the filesystem (supervisor acts with full power).
    pub fn vfs_mut(&mut self) -> &mut Vfs {
        &mut self.vfs
    }

    /// Borrow the account database.
    pub fn accounts(&self) -> &AccountDb {
        &self.accounts
    }

    /// Mutably borrow the account database (administrative action).
    pub fn accounts_mut(&mut self) -> &mut AccountDb {
        &mut self.accounts
    }

    /// Rewrite `/etc/passwd` from the account database.
    pub fn sync_passwd_file(&mut self) {
        let text = self.accounts.passwd_file();
        let root = self.vfs.root();
        self.vfs
            .write_file(root, "/etc/passwd", text.as_bytes(), &Cred::ROOT)
            .expect("passwd file is always writable by root");
    }

    /// Mount a filesystem driver under a path prefix. Returns the mount
    /// index.
    pub fn mount(&mut self, prefix: impl Into<String>, driver: Box<dyn FsDriver>) -> usize {
        self.mounts.mount(prefix, driver)
    }

    /// Create a new process as a child of init.
    pub fn spawn(&mut self, cred: Cred, cwd_path: &str, comm: &str) -> SysResult<Pid> {
        let cwd = self.vfs.resolve(self.vfs.root(), cwd_path, true, &cred)?;
        if self.vfs.fstat(cwd)?.kind != FileKind::Dir {
            return Err(Errno::ENOTDIR);
        }
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.procs.insert(
            pid.0,
            Process {
                pid,
                ppid: INIT,
                cred,
                identity: None,
                cwd,
                cwd_path: vpath::normalize_lexical(cwd_path),
                fds: Vec::new(),
                state: ProcState::Running,
                pending: Vec::new(),
                umask: 0o022,
                comm: comm.to_string(),
                env: Default::default(),
            },
        );
        Ok(pid)
    }

    /// Attach a global identity to a process (what the identity box does
    /// when it admits a visitor). Supervisor-only: there is deliberately
    /// no trapped syscall for this.
    pub fn set_identity(&mut self, pid: Pid, identity: Identity) -> SysResult<()> {
        self.proc_mut(pid)?.identity = Some(identity);
        Ok(())
    }

    /// Set one environment variable on a process. Supervisor-only, like
    /// [`Kernel::set_identity`]: guests can only *read* the table (via
    /// `getenv`), and children inherit it across `fork` — how a boxed
    /// child learns the trace id of the request that spawned it.
    pub fn set_env(
        &mut self,
        pid: Pid,
        key: impl Into<String>,
        value: impl Into<String>,
    ) -> SysResult<()> {
        self.proc_mut(pid)?.env.insert(key.into(), value.into());
        Ok(())
    }

    /// Borrow a process entry.
    pub fn process(&self, pid: Pid) -> SysResult<&Process> {
        self.procs.get(&pid.0).ok_or(Errno::ESRCH)
    }

    /// All live pids.
    pub fn pids(&self) -> Vec<Pid> {
        self.procs.values().map(|p| p.pid).collect()
    }

    /// Total number of syscalls dispatched.
    pub fn total_syscalls(&self) -> u64 {
        self.stats.total()
    }

    /// The null system call: what a nullified (trapped-and-replaced) call
    /// becomes. Does the same work as `getpid` — a real kernel entry with
    /// a process-table lookup — but is not recorded in the per-name stats,
    /// so workload characterization counts only the guest's own calls.
    pub fn null_syscall(&self, pid: Pid) -> i64 {
        match self.procs.get(&pid.0) {
            Some(p) => p.pid.0 as i64,
            None => Errno::ESRCH.as_ret(),
        }
    }

    fn proc_mut(&mut self, pid: Pid) -> SysResult<&mut Process> {
        self.procs.get_mut(&pid.0).ok_or(Errno::ESRCH)
    }

    /// Caller's cred; error if the process is gone or a zombie.
    fn live_cred(&self, pid: Pid) -> SysResult<(Cred, Ino)> {
        let p = self.process(pid)?;
        if !p.is_alive() {
            return Err(Errno::ESRCH);
        }
        Ok((p.cred, p.cwd))
    }

    /// The identity presented to mounted drivers for this process: the
    /// box identity when present, otherwise `unix:<account>`.
    fn driver_identity(&self, pid: Pid) -> SysResult<Identity> {
        let p = self.process(pid)?;
        if let Some(id) = &p.identity {
            return Ok(id.clone());
        }
        let name = self
            .accounts
            .lookup_uid(p.cred.uid)
            .map(|a| a.name.clone())
            .unwrap_or_else(|| format!("uid{}", p.cred.uid));
        Ok(Identity::new(format!("unix:{name}")))
    }

    /// Make a path absolute with respect to the process cwd (textually;
    /// structural resolution happens later in the VFS).
    fn absolutize(&self, pid: Pid, p: &str) -> SysResult<String> {
        let proc = self.process(pid)?;
        Ok(if vpath::is_absolute(p) {
            p.to_string()
        } else {
            vpath::join(&proc.cwd_path, p)
        })
    }

    /// Route a path: `Some((mount, rel))` for mounted prefixes, `None`
    /// for the local filesystem.
    fn route(&self, pid: Pid, p: &str) -> SysResult<Option<(usize, String)>> {
        if self.mounts.is_empty() {
            return Ok(None);
        }
        let abs = vpath::normalize_lexical(&self.absolutize(pid, p)?);
        Ok(self.mounts.route(&abs))
    }

    // ------------------------------------------------------------------
    // The trapped interface
    // ------------------------------------------------------------------

    /// Dispatch one system call on behalf of `pid`.
    pub fn syscall(&mut self, pid: Pid, call: Syscall) -> SysResult<SysRet> {
        self.stats.bump(&call);
        // Route through the shared-path implementation first so both
        // lock modes run byte-identical code for read-only calls.
        if let Some(result) = self.dispatch_read(pid, &call) {
            return result;
        }
        self.dispatch_mut(pid, call)
    }

    /// Dispatch a read-only call through a **shared** borrow.
    ///
    /// This is the concurrent fast path: supervisors holding only the
    /// read side of the kernel lock call this for calls classified by
    /// [`Syscall::is_read_only`]. Returns `None` when the call must take
    /// the exclusive [`Kernel::syscall`] path after all — it is not
    /// read-only, the path routes to a mounted driver, the fd is
    /// driver-backed, or it is a consuming pipe read. A `Some(Err(..))`
    /// is a final answer, identical to what the exclusive path would
    /// have produced.
    pub fn syscall_read(&self, pid: Pid, call: &Syscall) -> Option<SysResult<SysRet>> {
        let result = self.dispatch_read(pid, call)?;
        self.stats.bump(call);
        Some(result)
    }

    /// The shared-borrow dispatcher: `Some` for calls fully served here,
    /// `None` for anything needing `&mut self`.
    fn dispatch_read(&self, pid: Pid, call: &Syscall) -> Option<SysResult<SysRet>> {
        use Syscall::*;
        match call {
            Getpid => Some(Ok(SysRet::Num(pid.0 as i64))),
            Getppid => Some(self.process(pid).map(|p| SysRet::Num(p.ppid.0 as i64))),
            Getuid => Some(self.process(pid).map(|p| SysRet::Num(p.cred.uid as i64))),
            Getcwd => Some(self.process(pid).map(|p| SysRet::Text(p.cwd_path.clone()))),
            GetUserName => Some(self.read_user_name(pid)),
            Getenv(name) => Some(self.read_env(pid, name)),
            Stat(p) => self.read_path_local(pid, p, |k, cred, cwd| {
                Ok(SysRet::Stat(k.vfs.stat(cwd, p, true, &cred)?))
            }),
            Lstat(p) => self.read_path_local(pid, p, |k, cred, cwd| {
                Ok(SysRet::Stat(k.vfs.stat(cwd, p, false, &cred)?))
            }),
            Readlink(p) => self.read_readlink(pid, p),
            AccessCheck(p, want) => self.read_path_local(pid, p, |k, cred, cwd| {
                k.vfs.access(cwd, p, *want, &cred)?;
                Ok(SysRet::Unit)
            }),
            Readdir(p) => self.read_path_local(pid, p, |k, cred, cwd| {
                Ok(SysRet::Entries(k.vfs.readdir(cwd, p, &cred)?))
            }),
            Fstat(fd) => self.read_fstat(pid, *fd),
            Read(fd, len) => self.read_data(pid, *fd, *len, None),
            Pread(fd, len, off) => self.read_data(pid, *fd, *len, Some(*off)),
            Lseek(fd, off, whence) => self.read_lseek(pid, *fd, *off, *whence),
            _ => None,
        }
    }

    /// Run a path-naming read against the local VFS; `None` when the
    /// path routes to a mount (drivers require the exclusive path).
    fn read_path_local(
        &self,
        pid: Pid,
        p: &str,
        f: impl FnOnce(&Self, Cred, Ino) -> SysResult<SysRet>,
    ) -> Option<SysResult<SysRet>> {
        match self.route(pid, p) {
            Err(e) => Some(Err(e)),
            Ok(Some(_)) => None,
            Ok(None) => Some(match self.live_cred(pid) {
                Err(e) => Err(e),
                Ok((cred, cwd)) => f(self, cred, cwd),
            }),
        }
    }

    /// `readlink` never routes to drivers (mount paths answer `EINVAL`),
    /// so the whole call is servable under the shared lock.
    fn read_readlink(&self, pid: Pid, p: &str) -> Option<SysResult<SysRet>> {
        Some((|| {
            if self.route(pid, p)?.is_some() {
                return Err(Errno::EINVAL);
            }
            let (cred, cwd) = self.live_cred(pid)?;
            Ok(SysRet::Text(self.vfs.readlink(cwd, p, &cred)?))
        })())
    }

    fn read_user_name(&self, pid: Pid) -> SysResult<SysRet> {
        let p = self.process(pid)?;
        let id = match &p.identity {
            Some(id) => id.clone(),
            None => {
                let name = self
                    .accounts
                    .lookup_uid(p.cred.uid)
                    .map(|a| a.name.clone())
                    .unwrap_or_else(|| format!("uid{}", p.cred.uid));
                Identity::new(name)
            }
        };
        Ok(SysRet::Name(id))
    }

    /// `getenv`: a process-table read, servable under the shared lock.
    /// Unset names answer `ENOENT` (distinct from an empty value).
    fn read_env(&self, pid: Pid, name: &str) -> SysResult<SysRet> {
        let p = self.process(pid)?;
        match p.env.get(name) {
            Some(v) => Ok(SysRet::Text(v.clone())),
            None => Err(Errno::ENOENT),
        }
    }

    /// `fstat` under the shared lock; `None` for driver-backed fds.
    fn read_fstat(&self, pid: Pid, fd: usize) -> Option<SysResult<SysRet>> {
        let proc = match self.process(pid) {
            Ok(p) => p,
            Err(e) => return Some(Err(e)),
        };
        let file = match proc.file(fd) {
            Some(f) => f,
            None => return Some(Err(Errno::EBADF)),
        };
        match file.backing {
            FileBacking::Local(ino) => Some(self.vfs.fstat(ino).map(SysRet::Stat)),
            FileBacking::Pipe { id, .. } => Some(self.pipe_fstat(pid, id)),
            FileBacking::Driver { .. } => None,
        }
    }

    fn pipe_fstat(&self, pid: Pid, id: usize) -> SysResult<SysRet> {
        let buffered = match self.pipes.get(id) {
            Some(Some(p)) => p.data.len() as u64,
            _ => 0,
        };
        let cred = self.process(pid)?.cred;
        Ok(SysRet::Stat(idbox_vfs::StatBuf {
            ino: Ino(0),
            kind: FileKind::File,
            mode: 0o600,
            uid: cred.uid,
            gid: cred.gid,
            nlink: 1,
            size: buffered,
            atime: 0,
            mtime: 0,
            ctime: 0,
        }))
    }

    /// `read`/`pread` on a local file under the shared lock: the only
    /// state change is the caller's private fd offset, which is atomic.
    /// `None` for driver fds and pipes (consuming a pipe mutates the
    /// shared queue).
    fn read_data(
        &self,
        pid: Pid,
        fd: usize,
        len: usize,
        at: Option<u64>,
    ) -> Option<SysResult<SysRet>> {
        let proc = match self.process(pid) {
            Ok(p) => p,
            Err(e) => return Some(Err(e)),
        };
        let file = match proc.file(fd) {
            Some(f) => f,
            None => return Some(Err(Errno::EBADF)),
        };
        if !file.flags.read {
            return Some(Err(Errno::EBADF));
        }
        match file.backing {
            FileBacking::Local(ino) => {
                let off = at.unwrap_or(file.offset());
                let mut buf = vec![0u8; len];
                let n = match self.vfs.read_into(ino, off, &mut buf) {
                    Ok(n) => n,
                    Err(e) => return Some(Err(e)),
                };
                buf.truncate(n);
                if at.is_none() {
                    file.set_offset(off + n as u64);
                }
                Some(Ok(SysRet::Data(buf)))
            }
            FileBacking::Driver { .. } | FileBacking::Pipe { .. } => None,
        }
    }

    /// `lseek` under the shared lock: local fds only (`None` defers
    /// driver fds; pipes answer `ESPIPE` either way).
    fn read_lseek(
        &self,
        pid: Pid,
        fd: usize,
        off: i64,
        whence: Whence,
    ) -> Option<SysResult<SysRet>> {
        let proc = match self.process(pid) {
            Ok(p) => p,
            Err(e) => return Some(Err(e)),
        };
        let file = match proc.file(fd) {
            Some(f) => f,
            None => return Some(Err(Errno::EBADF)),
        };
        let size = match file.backing {
            FileBacking::Local(ino) => match self.vfs.fstat(ino) {
                Ok(st) => st.size,
                Err(e) => return Some(Err(e)),
            },
            FileBacking::Pipe { .. } => return Some(Err(Errno::ESPIPE)),
            FileBacking::Driver { .. } => return None,
        };
        let base = match whence {
            Whence::Set => 0i64,
            Whence::Cur => file.offset() as i64,
            Whence::End => size as i64,
        };
        let new = match base.checked_add(off) {
            Some(n) if n >= 0 => n,
            _ => return Some(Err(Errno::EINVAL)),
        };
        file.set_offset(new as u64);
        Some(Ok(SysRet::Num(new)))
    }

    /// The exclusive-path dispatcher (everything `dispatch_read` does
    /// not serve).
    fn dispatch_mut(&mut self, pid: Pid, call: Syscall) -> SysResult<SysRet> {
        use Syscall::*;
        match call {
            Getpid => Ok(SysRet::Num(pid.0 as i64)),
            Getppid => Ok(SysRet::Num(self.process(pid)?.ppid.0 as i64)),
            Getuid => Ok(SysRet::Num(self.process(pid)?.cred.uid as i64)),
            Stat(p) => self.do_stat(pid, &p, true),
            Lstat(p) => self.do_stat(pid, &p, false),
            Fstat(fd) => self.do_fstat(pid, fd),
            Open(p, flags, mode) => self.do_open(pid, &p, flags, mode),
            Close(fd) => self.do_close(pid, fd),
            Read(fd, len) => self.do_read(pid, fd, len, None),
            Pread(fd, len, off) => self.do_read(pid, fd, len, Some(off)),
            Write(fd, data) => self.do_write(pid, fd, &data, None),
            Pwrite(fd, data, off) => self.do_write(pid, fd, &data, Some(off)),
            Lseek(fd, off, whence) => self.do_lseek(pid, fd, off, whence),
            Dup(fd) => self.do_dup(pid, fd),
            Mkdir(p, mode) => self.do_mkdir(pid, &p, mode),
            Rmdir(p) => self.do_rmdir(pid, &p),
            Unlink(p) => self.do_unlink(pid, &p),
            Link(old, new) => self.do_link(pid, &old, &new),
            Symlink(target, linkp) => self.do_symlink(pid, &target, &linkp),
            Readlink(p) => self.do_readlink(pid, &p),
            Rename(old, new) => self.do_rename(pid, &old, &new),
            Truncate(p, len) => self.do_truncate(pid, &p, len),
            AccessCheck(p, want) => self.do_access(pid, &p, want),
            Readdir(p) => self.do_readdir(pid, &p),
            Chmod(p, mode) => self.do_chmod(pid, &p, mode),
            Chown(p, uid, gid) => self.do_chown(pid, &p, uid, gid),
            Chdir(p) => self.do_chdir(pid, &p),
            Getcwd => Ok(SysRet::Text(self.process(pid)?.cwd_path.clone())),
            Umask(mask) => {
                let p = self.proc_mut(pid)?;
                let old = p.umask;
                p.umask = mask & 0o777;
                Ok(SysRet::Num(old as i64))
            }
            Fork => self.do_fork(pid),
            Exec(name) => self.do_exec(pid, name),
            Exit(code) => self.do_exit(pid, code),
            Wait => self.do_wait(pid),
            Kill(target, sig) => self.do_kill(pid, target, sig),
            SigPending => {
                let p = self.proc_mut(pid)?;
                Ok(SysRet::Signals(std::mem::take(&mut p.pending)))
            }
            Pipe => self.do_pipe(pid),
            GetUserName => self.read_user_name(pid),
            Getenv(name) => self.read_env(pid, &name),
        }
    }

    // ------------------------------------------------------------------
    // File operations
    // ------------------------------------------------------------------

    fn do_stat(&mut self, pid: Pid, p: &str, follow: bool) -> SysResult<SysRet> {
        if let Some((m, rel)) = self.route(pid, p)? {
            let id = self.driver_identity(pid)?;
            let d = self.mounts.driver_mut(m).ok_or(Errno::EIO)?;
            return Ok(SysRet::Stat(d.stat(&rel, &id)?));
        }
        let (cred, cwd) = self.live_cred(pid)?;
        Ok(SysRet::Stat(self.vfs.stat(cwd, p, follow, &cred)?))
    }

    /// Adjust a pipe's end counts; frees the slot when both reach zero.
    fn pipe_release(&mut self, id: usize, end: PipeEnd) {
        if let Some(Some(p)) = self.pipes.get_mut(id) {
            match end {
                PipeEnd::Read => p.readers = p.readers.saturating_sub(1),
                PipeEnd::Write => p.writers = p.writers.saturating_sub(1),
            }
            if p.readers == 0 && p.writers == 0 {
                self.pipes[id] = None;
            }
        }
    }

    fn pipe_retain(&mut self, id: usize, end: PipeEnd) {
        if let Some(Some(p)) = self.pipes.get_mut(id) {
            match end {
                PipeEnd::Read => p.readers += 1,
                PipeEnd::Write => p.writers += 1,
            }
        }
    }

    fn do_pipe(&mut self, pid: Pid) -> SysResult<SysRet> {
        let id = match self.pipes.iter().position(Option::is_none) {
            Some(i) => {
                self.pipes[i] = Some(PipeBuf {
                    readers: 1,
                    writers: 1,
                    ..Default::default()
                });
                i
            }
            None => {
                self.pipes.push(Some(PipeBuf {
                    readers: 1,
                    writers: 1,
                    ..Default::default()
                }));
                self.pipes.len() - 1
            }
        };
        let proc = self.proc_mut(pid)?;
        let (rfd, wfd) = match (proc.alloc_fd(), ()) {
            (Some(rfd), ()) => {
                proc.fds[rfd] = Some(OpenFile::new(
                    FileBacking::Pipe {
                        id,
                        end: PipeEnd::Read,
                    },
                    OpenFlags::rdonly(),
                ));
                match proc.alloc_fd() {
                    Some(wfd) => {
                        proc.fds[wfd] = Some(OpenFile::new(
                            FileBacking::Pipe {
                                id,
                                end: PipeEnd::Write,
                            },
                            OpenFlags {
                                write: true,
                                ..Default::default()
                            },
                        ));
                        (rfd, wfd)
                    }
                    None => {
                        proc.fds[rfd] = None;
                        self.pipes[id] = None;
                        return Err(Errno::EMFILE);
                    }
                }
            }
            _ => {
                self.pipes[id] = None;
                return Err(Errno::EMFILE);
            }
        };
        Ok(SysRet::PipeFds(rfd, wfd))
    }

    fn do_fstat(&mut self, pid: Pid, fd: usize) -> SysResult<SysRet> {
        if let Some(result) = self.read_fstat(pid, fd) {
            return result; // local and pipe fds: shared-path implementation
        }
        let backing = self
            .process(pid)?
            .file(fd)
            .ok_or(Errno::EBADF)?
            .backing
            .clone();
        match backing {
            FileBacking::Driver { mount, dfd } => {
                let d = self.mounts.driver_mut(mount).ok_or(Errno::EIO)?;
                Ok(SysRet::Stat(d.fstat(dfd)?))
            }
            _ => unreachable!("read_fstat serves local and pipe fds"),
        }
    }

    fn do_open(&mut self, pid: Pid, p: &str, flags: OpenFlags, mode: u16) -> SysResult<SysRet> {
        if !flags.read && !flags.write {
            return Err(Errno::EINVAL);
        }
        if let Some((m, rel)) = self.route(pid, p)? {
            let id = self.driver_identity(pid)?;
            let d = self.mounts.driver_mut(m).ok_or(Errno::EIO)?;
            let dfd = d.open(&rel, flags, mode, &id)?;
            let proc = self.proc_mut(pid)?;
            let fd = proc.alloc_fd().ok_or(Errno::EMFILE)?;
            proc.fds[fd] = Some(OpenFile::new(FileBacking::Driver { mount: m, dfd }, flags));
            return Ok(SysRet::Num(fd as i64));
        }
        let (cred, cwd) = self.live_cred(pid)?;
        let umask = self.process(pid)?.umask;
        let (dir, name, existing) = self.vfs.resolve_entry(cwd, p, &cred)?;
        let ino = match existing {
            Some(ino) => {
                if flags.create && flags.excl {
                    return Err(Errno::EEXIST);
                }
                let kind = self.vfs.fstat(ino)?.kind;
                if kind == FileKind::Dir && flags.write {
                    return Err(Errno::EISDIR);
                }
                if flags.read {
                    self.vfs.check_access(ino, &cred, Access::R)?;
                }
                if flags.write {
                    self.vfs.check_access(ino, &cred, Access::W)?;
                }
                if flags.trunc && kind == FileKind::File {
                    self.vfs.truncate(ino, 0)?;
                }
                ino
            }
            None => {
                if !flags.create {
                    return Err(Errno::ENOENT);
                }
                self.vfs.create(dir, &name, mode & !umask, &cred)?
            }
        };
        self.vfs.pin(ino)?;
        let proc = self.proc_mut(pid)?;
        let fd = match proc.alloc_fd() {
            Some(fd) => fd,
            None => {
                self.vfs.unpin(ino)?;
                return Err(Errno::EMFILE);
            }
        };
        proc.fds[fd] = Some(OpenFile::new(FileBacking::Local(ino), flags));
        Ok(SysRet::Num(fd as i64))
    }

    fn do_close(&mut self, pid: Pid, fd: usize) -> SysResult<SysRet> {
        let file = self
            .proc_mut(pid)?
            .fds
            .get_mut(fd)
            .and_then(Option::take)
            .ok_or(Errno::EBADF)?;
        match file.backing {
            FileBacking::Local(ino) => self.vfs.unpin(ino)?,
            FileBacking::Driver { mount, dfd } => {
                let d = self.mounts.driver_mut(mount).ok_or(Errno::EIO)?;
                d.close(dfd)?;
            }
            FileBacking::Pipe { id, end } => self.pipe_release(id, end),
        }
        Ok(SysRet::Unit)
    }

    fn do_read(
        &mut self,
        pid: Pid,
        fd: usize,
        len: usize,
        at: Option<u64>,
    ) -> SysResult<SysRet> {
        if let Some(result) = self.read_data(pid, fd, len, at) {
            return result; // local files: shared-path implementation
        }
        let file = self.process(pid)?.file(fd).ok_or(Errno::EBADF)?.clone();
        if !file.flags.read {
            return Err(Errno::EBADF);
        }
        let off = at.unwrap_or(file.offset());
        let data = match file.backing {
            FileBacking::Local(_) => unreachable!("read_data serves local fds"),
            FileBacking::Driver { mount, dfd } => {
                let d = self.mounts.driver_mut(mount).ok_or(Errno::EIO)?;
                d.pread(dfd, len, off)?
            }
            FileBacking::Pipe { id, end } => {
                if end != PipeEnd::Read || at.is_some() {
                    return Err(if at.is_some() { Errno::ESPIPE } else { Errno::EBADF });
                }
                let p = match self.pipes.get_mut(id) {
                    Some(Some(p)) => p,
                    _ => return Err(Errno::EBADF),
                };
                if p.data.is_empty() {
                    if p.writers == 0 {
                        Vec::new() // EOF
                    } else {
                        return Err(Errno::EAGAIN); // nothing yet, writer alive
                    }
                } else {
                    let n = len.min(p.data.len());
                    p.data.drain(..n).collect()
                }
            }
        };
        if at.is_none() {
            self.process(pid)?
                .file(fd)
                .ok_or(Errno::EBADF)?
                .set_offset(off + data.len() as u64);
        }
        Ok(SysRet::Data(data))
    }

    fn do_write(
        &mut self,
        pid: Pid,
        fd: usize,
        data: &[u8],
        at: Option<u64>,
    ) -> SysResult<SysRet> {
        let file = self.process(pid)?.file(fd).ok_or(Errno::EBADF)?.clone();
        if !file.flags.write {
            return Err(Errno::EBADF);
        }
        if let FileBacking::Pipe { id, end } = file.backing {
            if end != PipeEnd::Write || at.is_some() {
                return Err(if at.is_some() { Errno::ESPIPE } else { Errno::EBADF });
            }
            let has_readers = matches!(self.pipes.get(id), Some(Some(p)) if p.readers > 0);
            if !has_readers {
                // Writing with no reader: broken pipe (and a signal, as
                // in a real kernel).
                self.proc_mut(pid)?.pending.push(Signal::Term);
                return Err(Errno::EPIPE);
            }
            let p = match self.pipes.get_mut(id) {
                Some(Some(p)) => p,
                _ => return Err(Errno::EBADF),
            };
            p.data.extend(data.iter().copied());
            return Ok(SysRet::Num(data.len() as i64));
        }
        let off = match (at, file.flags.append) {
            (Some(off), _) => off,
            (None, true) => match file.backing {
                FileBacking::Local(ino) => self.vfs.fstat(ino)?.size,
                FileBacking::Driver { mount, dfd } => {
                    let d = self.mounts.driver_mut(mount).ok_or(Errno::EIO)?;
                    d.fstat(dfd)?.size
                }
                FileBacking::Pipe { .. } => unreachable!("handled above"),
            },
            (None, false) => file.offset(),
        };
        let n = match file.backing {
            FileBacking::Local(ino) => self.vfs.write_at(ino, off, data)?,
            FileBacking::Driver { mount, dfd } => {
                let d = self.mounts.driver_mut(mount).ok_or(Errno::EIO)?;
                d.pwrite(dfd, data, off)?
            }
            FileBacking::Pipe { .. } => unreachable!("handled above"),
        };
        if at.is_none() {
            self.process(pid)?
                .file(fd)
                .ok_or(Errno::EBADF)?
                .set_offset(off + n as u64);
        }
        Ok(SysRet::Num(n as i64))
    }

    fn do_lseek(&mut self, pid: Pid, fd: usize, off: i64, whence: Whence) -> SysResult<SysRet> {
        if let Some(result) = self.read_lseek(pid, fd, off, whence) {
            return result; // local fds and pipes: shared-path implementation
        }
        let file = self.process(pid)?.file(fd).ok_or(Errno::EBADF)?.clone();
        let size = match file.backing {
            FileBacking::Driver { mount, dfd } => {
                let d = self.mounts.driver_mut(mount).ok_or(Errno::EIO)?;
                d.fstat(dfd)?.size
            }
            _ => unreachable!("read_lseek serves local fds and pipes"),
        };
        let base = match whence {
            Whence::Set => 0i64,
            Whence::Cur => file.offset() as i64,
            Whence::End => size as i64,
        };
        let new = base.checked_add(off).ok_or(Errno::EINVAL)?;
        if new < 0 {
            return Err(Errno::EINVAL);
        }
        self.process(pid)?
            .file(fd)
            .ok_or(Errno::EBADF)?
            .set_offset(new as u64);
        Ok(SysRet::Num(new))
    }

    fn do_dup(&mut self, pid: Pid, fd: usize) -> SysResult<SysRet> {
        let file = self.process(pid)?.file(fd).ok_or(Errno::EBADF)?.clone();
        match file.backing {
            FileBacking::Local(ino) => self.vfs.pin(ino)?,
            FileBacking::Pipe { id, end } => self.pipe_retain(id, end),
            // Driver handles are not duplicable (the remote side owns
            // them); mirrors the fork limitation documented in DESIGN.md.
            FileBacking::Driver { .. } => return Err(Errno::EINVAL),
        }
        let proc = self.proc_mut(pid)?;
        let nfd = proc.alloc_fd().ok_or(Errno::EMFILE)?;
        proc.fds[nfd] = Some(file);
        Ok(SysRet::Num(nfd as i64))
    }

    // ------------------------------------------------------------------
    // Namespace operations
    // ------------------------------------------------------------------

    fn do_mkdir(&mut self, pid: Pid, p: &str, mode: u16) -> SysResult<SysRet> {
        if let Some((m, rel)) = self.route(pid, p)? {
            let id = self.driver_identity(pid)?;
            let d = self.mounts.driver_mut(m).ok_or(Errno::EIO)?;
            d.mkdir(&rel, mode, &id)?;
            return Ok(SysRet::Unit);
        }
        let (cred, cwd) = self.live_cred(pid)?;
        let umask = self.process(pid)?.umask;
        self.vfs.mkdir(cwd, p, mode & !umask, &cred)?;
        Ok(SysRet::Unit)
    }

    fn do_rmdir(&mut self, pid: Pid, p: &str) -> SysResult<SysRet> {
        if let Some((m, rel)) = self.route(pid, p)? {
            let id = self.driver_identity(pid)?;
            let d = self.mounts.driver_mut(m).ok_or(Errno::EIO)?;
            d.rmdir(&rel, &id)?;
            return Ok(SysRet::Unit);
        }
        let (cred, cwd) = self.live_cred(pid)?;
        self.vfs.rmdir(cwd, p, &cred)?;
        Ok(SysRet::Unit)
    }

    fn do_unlink(&mut self, pid: Pid, p: &str) -> SysResult<SysRet> {
        if let Some((m, rel)) = self.route(pid, p)? {
            let id = self.driver_identity(pid)?;
            let d = self.mounts.driver_mut(m).ok_or(Errno::EIO)?;
            d.unlink(&rel, &id)?;
            return Ok(SysRet::Unit);
        }
        let (cred, cwd) = self.live_cred(pid)?;
        self.vfs.unlink(cwd, p, &cred)?;
        Ok(SysRet::Unit)
    }

    fn do_link(&mut self, pid: Pid, old: &str, new: &str) -> SysResult<SysRet> {
        let ro = self.route(pid, old)?;
        let rn = self.route(pid, new)?;
        if ro.is_some() || rn.is_some() {
            return Err(Errno::EXDEV); // no hard links across/to mounts
        }
        let (cred, cwd) = self.live_cred(pid)?;
        self.vfs.link(cwd, old, new, &cred)?;
        Ok(SysRet::Unit)
    }

    fn do_symlink(&mut self, pid: Pid, target: &str, linkp: &str) -> SysResult<SysRet> {
        if self.route(pid, linkp)?.is_some() {
            return Err(Errno::EXDEV);
        }
        let (cred, cwd) = self.live_cred(pid)?;
        self.vfs.symlink(cwd, target, linkp, &cred)?;
        Ok(SysRet::Unit)
    }

    fn do_readlink(&mut self, pid: Pid, p: &str) -> SysResult<SysRet> {
        if self.route(pid, p)?.is_some() {
            return Err(Errno::EINVAL);
        }
        let (cred, cwd) = self.live_cred(pid)?;
        Ok(SysRet::Text(self.vfs.readlink(cwd, p, &cred)?))
    }

    fn do_rename(&mut self, pid: Pid, old: &str, new: &str) -> SysResult<SysRet> {
        let ro = self.route(pid, old)?;
        let rn = self.route(pid, new)?;
        match (ro, rn) {
            (Some((mo, relo)), Some((mn, reln))) if mo == mn => {
                let id = self.driver_identity(pid)?;
                let d = self.mounts.driver_mut(mo).ok_or(Errno::EIO)?;
                d.rename(&relo, &reln, &id)?;
                Ok(SysRet::Unit)
            }
            (None, None) => {
                let (cred, cwd) = self.live_cred(pid)?;
                self.vfs.rename(cwd, old, new, &cred)?;
                Ok(SysRet::Unit)
            }
            _ => Err(Errno::EXDEV),
        }
    }

    fn do_truncate(&mut self, pid: Pid, p: &str, len: u64) -> SysResult<SysRet> {
        if let Some((m, rel)) = self.route(pid, p)? {
            let id = self.driver_identity(pid)?;
            let d = self.mounts.driver_mut(m).ok_or(Errno::EIO)?;
            d.truncate(&rel, len, &id)?;
            return Ok(SysRet::Unit);
        }
        let (cred, cwd) = self.live_cred(pid)?;
        let ino = self.vfs.resolve(cwd, p, true, &cred)?;
        self.vfs.check_access(ino, &cred, Access::W)?;
        self.vfs.truncate(ino, len)?;
        Ok(SysRet::Unit)
    }

    fn do_access(&mut self, pid: Pid, p: &str, want: Access) -> SysResult<SysRet> {
        if let Some((m, rel)) = self.route(pid, p)? {
            let id = self.driver_identity(pid)?;
            let d = self.mounts.driver_mut(m).ok_or(Errno::EIO)?;
            d.stat(&rel, &id)?; // existence check only; rights are remote
            return Ok(SysRet::Unit);
        }
        let (cred, cwd) = self.live_cred(pid)?;
        self.vfs.access(cwd, p, want, &cred)?;
        Ok(SysRet::Unit)
    }

    fn do_readdir(&mut self, pid: Pid, p: &str) -> SysResult<SysRet> {
        if let Some((m, rel)) = self.route(pid, p)? {
            let id = self.driver_identity(pid)?;
            let d = self.mounts.driver_mut(m).ok_or(Errno::EIO)?;
            return Ok(SysRet::Entries(d.readdir(&rel, &id)?));
        }
        let (cred, cwd) = self.live_cred(pid)?;
        Ok(SysRet::Entries(self.vfs.readdir(cwd, p, &cred)?))
    }

    fn do_chmod(&mut self, pid: Pid, p: &str, mode: u16) -> SysResult<SysRet> {
        if self.route(pid, p)?.is_some() {
            return Err(Errno::ENOSYS); // remote ACLs, not modes
        }
        let (cred, cwd) = self.live_cred(pid)?;
        self.vfs.chmod(cwd, p, mode, &cred)?;
        Ok(SysRet::Unit)
    }

    fn do_chown(&mut self, pid: Pid, p: &str, uid: u32, gid: u32) -> SysResult<SysRet> {
        if self.route(pid, p)?.is_some() {
            return Err(Errno::ENOSYS);
        }
        let (cred, cwd) = self.live_cred(pid)?;
        self.vfs.chown(cwd, p, uid, gid, &cred)?;
        Ok(SysRet::Unit)
    }

    fn do_chdir(&mut self, pid: Pid, p: &str) -> SysResult<SysRet> {
        let abs = vpath::normalize_lexical(&self.absolutize(pid, p)?);
        if self.route(pid, p)?.is_some() {
            // cwd inside a mount is not supported; stay on the local fs.
            return Err(Errno::EXDEV);
        }
        let (cred, cwd) = self.live_cred(pid)?;
        let ino = self.vfs.resolve(cwd, p, true, &cred)?;
        if self.vfs.fstat(ino)?.kind != FileKind::Dir {
            return Err(Errno::ENOTDIR);
        }
        self.vfs.check_access(ino, &cred, Access::X)?;
        let proc = self.proc_mut(pid)?;
        proc.cwd = ino;
        proc.cwd_path = abs;
        Ok(SysRet::Unit)
    }

    // ------------------------------------------------------------------
    // Process operations
    // ------------------------------------------------------------------

    fn do_fork(&mut self, pid: Pid) -> SysResult<SysRet> {
        let parent = self.process(pid)?.clone();
        if !parent.is_alive() {
            return Err(Errno::ESRCH);
        }
        let child_pid = Pid(self.next_pid);
        self.next_pid += 1;
        let mut fds = Vec::with_capacity(parent.fds.len());
        for slot in &parent.fds {
            match slot {
                Some(f) => match f.backing {
                    FileBacking::Local(ino) => {
                        self.vfs.pin(ino)?;
                        fds.push(Some(f.clone()));
                    }
                    FileBacking::Pipe { id, end } => {
                        self.pipe_retain(id, end);
                        fds.push(Some(f.clone()));
                    }
                    // Driver handles are connection-private: not inherited.
                    FileBacking::Driver { .. } => fds.push(None),
                },
                None => fds.push(None),
            }
        }
        self.procs.insert(
            child_pid.0,
            Process {
                pid: child_pid,
                ppid: pid,
                fds,
                pending: Vec::new(),
                state: ProcState::Running,
                ..parent
            },
        );
        Ok(SysRet::Num(child_pid.0 as i64))
    }

    /// `exec`: verify the image exists and is executable, then record it
    /// as the process's program. (The simulation does not load code —
    /// guest programs are host functions — but the permission semantics
    /// are real.)
    fn do_exec(&mut self, pid: Pid, name: String) -> SysResult<SysRet> {
        if let Some((m, rel)) = self.route(pid, &name)? {
            let id = self.driver_identity(pid)?;
            let d = self.mounts.driver_mut(m).ok_or(Errno::EIO)?;
            d.stat(&rel, &id)?; // existence; rights are the remote's call
        } else {
            let (cred, cwd) = self.live_cred(pid)?;
            let ino = self.vfs.resolve(cwd, &name, true, &cred)?;
            if self.vfs.fstat(ino)?.kind != FileKind::File {
                return Err(Errno::EACCES);
            }
            self.vfs.check_access(ino, &cred, Access::X)?;
        }
        self.proc_mut(pid)?.comm = name;
        Ok(SysRet::Unit)
    }

    fn do_exit(&mut self, pid: Pid, code: i32) -> SysResult<SysRet> {
        self.terminate(pid, code)?;
        Ok(SysRet::Unit)
    }

    /// Shared by `exit` and lethal signals.
    fn terminate(&mut self, pid: Pid, code: i32) -> SysResult<()> {
        // Close all fds.
        let fds = std::mem::take(&mut self.proc_mut(pid)?.fds);
        for f in fds.into_iter().flatten() {
            match f.backing {
                FileBacking::Local(ino) => {
                    let _ = self.vfs.unpin(ino);
                }
                FileBacking::Driver { mount, dfd } => {
                    if let Some(d) = self.mounts.driver_mut(mount) {
                        let _ = d.close(dfd);
                    }
                }
                FileBacking::Pipe { id, end } => self.pipe_release(id, end),
            }
        }
        // Reparent children to init.
        let children: Vec<u32> = self
            .procs
            .values()
            .filter(|p| p.ppid == pid && p.pid != pid)
            .map(|p| p.pid.0)
            .collect();
        for c in children {
            if let Some(p) = self.procs.get_mut(&c) {
                p.ppid = INIT;
            }
        }
        self.proc_mut(pid)?.state = ProcState::Zombie(code);
        Ok(())
    }

    fn do_wait(&mut self, pid: Pid) -> SysResult<SysRet> {
        let mut have_child = false;
        let mut reap: Option<(Pid, i32)> = None;
        for p in self.procs.values() {
            if p.ppid == pid && p.pid != pid {
                have_child = true;
                if let ProcState::Zombie(code) = p.state {
                    reap = Some((p.pid, code));
                    break;
                }
            }
        }
        match reap {
            Some((cpid, code)) => {
                self.procs.remove(&cpid.0);
                Ok(SysRet::Reaped(cpid, code))
            }
            None if have_child => Err(Errno::EAGAIN),
            None => Err(Errno::ECHILD),
        }
    }

    fn do_kill(&mut self, pid: Pid, target: Pid, sig: Signal) -> SysResult<SysRet> {
        let sender_cred = self.process(pid)?.cred;
        let t = self.process(target)?;
        if !t.is_alive() {
            return Err(Errno::ESRCH);
        }
        // Unix rule: root, or matching uid. (The identity box adds the
        // stricter same-identity rule above this layer.)
        if sender_cred.uid != 0 && sender_cred.uid != t.cred.uid {
            return Err(Errno::EPERM);
        }
        if sig == Signal::Kill {
            self.terminate(target, 128 + sig.number() as i32)?;
        } else {
            self.proc_mut(target)?.pending.push(sig);
        }
        Ok(SysRet::Unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_with_user(name: &str) -> (Kernel, Pid, Cred) {
        let mut k = Kernel::new();
        let uid = k.accounts_mut().next_free_uid();
        k.accounts_mut()
            .add(crate::Account::new(name, uid, uid))
            .unwrap();
        k.sync_passwd_file();
        let cred = Cred::new(uid, uid);
        let root = k.vfs().root();
        k.vfs_mut()
            .mkdir(root, &format!("/home/{name}"), 0o755, &Cred::ROOT)
            .unwrap();
        k.vfs_mut()
            .chown(root, &format!("/home/{name}"), uid, uid, &Cred::ROOT)
            .unwrap();
        let pid = k.spawn(cred, &format!("/home/{name}"), "sh").unwrap();
        (k, pid, cred)
    }

    #[test]
    fn boot_layout() {
        let mut k = Kernel::new();
        let pid = k.spawn(Cred::ROOT, "/", "probe").unwrap();
        for dir in ["/etc", "/home", "/tmp", "/root", "/bin"] {
            let st = k.syscall(pid, Syscall::Stat(dir.into())).unwrap();
            match st {
                SysRet::Stat(s) => assert!(s.is_dir(), "{dir} should be a dir"),
                other => panic!("unexpected {other:?}"),
            }
        }
        let passwd = k.syscall(pid, Syscall::Stat("/etc/passwd".into())).unwrap();
        assert!(matches!(passwd, SysRet::Stat(s) if s.is_file()));
    }

    #[test]
    fn open_write_read_close() {
        let (mut k, pid, _) = kernel_with_user("dthain");
        let fd = k
            .syscall(
                pid,
                Syscall::Open("notes".into(), OpenFlags::wronly_create_trunc(), 0o644),
            )
            .unwrap()
            .num() as usize;
        let n = k
            .syscall(pid, Syscall::Write(fd, b"hello".to_vec()))
            .unwrap()
            .num();
        assert_eq!(n, 5);
        k.syscall(pid, Syscall::Close(fd)).unwrap();
        let fd = k
            .syscall(pid, Syscall::Open("notes".into(), OpenFlags::rdonly(), 0))
            .unwrap()
            .num() as usize;
        let data = k.syscall(pid, Syscall::Read(fd, 100)).unwrap();
        assert_eq!(data.data(), b"hello");
        // Sequential read advances: next read is empty.
        let more = k.syscall(pid, Syscall::Read(fd, 100)).unwrap();
        assert!(more.data().is_empty());
        k.syscall(pid, Syscall::Close(fd)).unwrap();
    }

    #[test]
    fn pread_pwrite_do_not_move_offset() {
        let (mut k, pid, _) = kernel_with_user("u");
        let fd = k
            .syscall(
                pid,
                Syscall::Open("f".into(), OpenFlags::rdwr_create(), 0o644),
            )
            .unwrap_or_else(|_| panic!("open"))
            .num() as usize;
        k.syscall(pid, Syscall::Pwrite(fd, b"abcdef".to_vec(), 0)).unwrap();
        let d = k.syscall(pid, Syscall::Pread(fd, 3, 2)).unwrap();
        assert_eq!(d.data(), b"cde");
        // Offset still 0: sequential read sees the start.
        let d = k.syscall(pid, Syscall::Read(fd, 2)).unwrap();
        assert_eq!(d.data(), b"ab");
    }

    #[test]
    fn append_mode() {
        let (mut k, pid, _) = kernel_with_user("u");
        let fd = k
            .syscall(
                pid,
                Syscall::Open("log".into(), OpenFlags::append_create(), 0o644),
            )
            .unwrap()
            .num() as usize;
        k.syscall(pid, Syscall::Write(fd, b"one".to_vec())).unwrap();
        k.syscall(pid, Syscall::Write(fd, b"two".to_vec())).unwrap();
        k.syscall(pid, Syscall::Close(fd)).unwrap();
        let fd = k
            .syscall(pid, Syscall::Open("log".into(), OpenFlags::rdonly(), 0))
            .unwrap()
            .num() as usize;
        let d = k.syscall(pid, Syscall::Read(fd, 100)).unwrap();
        assert_eq!(d.data(), b"onetwo");
    }

    #[test]
    fn lseek_whences() {
        let (mut k, pid, _) = kernel_with_user("u");
        let fd = k
            .syscall(
                pid,
                Syscall::Open("f".into(), OpenFlags::rdwr_create(), 0o644),
            )
            .unwrap()
            .num() as usize;
        k.syscall(pid, Syscall::Write(fd, b"0123456789".to_vec())).unwrap();
        assert_eq!(
            k.syscall(pid, Syscall::Lseek(fd, 2, Whence::Set)).unwrap().num(),
            2
        );
        assert_eq!(
            k.syscall(pid, Syscall::Lseek(fd, 3, Whence::Cur)).unwrap().num(),
            5
        );
        assert_eq!(
            k.syscall(pid, Syscall::Lseek(fd, -1, Whence::End)).unwrap().num(),
            9
        );
        assert_eq!(
            k.syscall(pid, Syscall::Lseek(fd, -100, Whence::Cur)),
            Err(Errno::EINVAL)
        );
    }

    #[test]
    fn umask_applies_to_create() {
        let (mut k, pid, _) = kernel_with_user("u");
        k.syscall(pid, Syscall::Umask(0o077)).unwrap();
        let fd = k
            .syscall(
                pid,
                Syscall::Open("f".into(), OpenFlags::wronly_create_trunc(), 0o666),
            )
            .unwrap()
            .num() as usize;
        k.syscall(pid, Syscall::Close(fd)).unwrap();
        let st = k.syscall(pid, Syscall::Stat("f".into())).unwrap();
        assert!(matches!(st, SysRet::Stat(s) if s.mode == 0o600));
    }

    #[test]
    fn fork_wait_exit() {
        let (mut k, pid, _) = kernel_with_user("u");
        let child = Pid(k.syscall(pid, Syscall::Fork).unwrap().num() as u32);
        // Child exits 42; parent reaps it.
        k.syscall(child, Syscall::Exit(42)).unwrap();
        match k.syscall(pid, Syscall::Wait).unwrap() {
            SysRet::Reaped(cpid, code) => {
                assert_eq!(cpid, child);
                assert_eq!(code, 42);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(k.syscall(pid, Syscall::Wait), Err(Errno::ECHILD));
    }

    #[test]
    fn wait_with_running_child_is_eagain() {
        let (mut k, pid, _) = kernel_with_user("u");
        let _child = k.syscall(pid, Syscall::Fork).unwrap().num();
        assert_eq!(k.syscall(pid, Syscall::Wait), Err(Errno::EAGAIN));
    }

    #[test]
    fn fork_inherits_fds_with_pins() {
        let (mut k, pid, _) = kernel_with_user("u");
        let fd = k
            .syscall(
                pid,
                Syscall::Open("f".into(), OpenFlags::rdwr_create(), 0o644),
            )
            .unwrap()
            .num() as usize;
        k.syscall(pid, Syscall::Write(fd, b"x".to_vec())).unwrap();
        let child = Pid(k.syscall(pid, Syscall::Fork).unwrap().num() as u32);
        // Parent unlinks and closes; child's fd must still work.
        k.syscall(pid, Syscall::Unlink("f".into())).unwrap();
        k.syscall(pid, Syscall::Close(fd)).unwrap();
        let d = k.syscall(child, Syscall::Pread(fd, 1, 0)).unwrap();
        assert_eq!(d.data(), b"x");
        k.syscall(child, Syscall::Exit(0)).unwrap();
    }

    #[test]
    fn kill_permissions_follow_uid() {
        let (mut k, alice_pid, _) = kernel_with_user("alice");
        let bob_uid = k.accounts_mut().next_free_uid();
        k.accounts_mut()
            .add(crate::Account::new("bob", bob_uid, bob_uid))
            .unwrap();
        let bob_pid = k.spawn(Cred::new(bob_uid, bob_uid), "/tmp", "sh").unwrap();
        // Bob cannot signal alice.
        assert_eq!(
            k.syscall(bob_pid, Syscall::Kill(alice_pid, Signal::Term)),
            Err(Errno::EPERM)
        );
        // Alice can signal herself.
        k.syscall(alice_pid, Syscall::Kill(alice_pid, Signal::Usr1))
            .unwrap();
        match k.syscall(alice_pid, Syscall::SigPending).unwrap() {
            SysRet::Signals(sigs) => assert_eq!(sigs, vec![Signal::Usr1]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sigkill_terminates_immediately() {
        let (mut k, pid, _) = kernel_with_user("u");
        let child = Pid(k.syscall(pid, Syscall::Fork).unwrap().num() as u32);
        k.syscall(pid, Syscall::Kill(child, Signal::Kill)).unwrap();
        assert!(!k.process(child).unwrap().is_alive());
        match k.syscall(pid, Syscall::Wait).unwrap() {
            SysRet::Reaped(_, code) => assert_eq!(code, 137),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn chdir_and_getcwd() {
        let (mut k, pid, _) = kernel_with_user("u");
        k.syscall(pid, Syscall::Mkdir("sub".into(), 0o755)).unwrap();
        k.syscall(pid, Syscall::Chdir("sub".into())).unwrap();
        match k.syscall(pid, Syscall::Getcwd).unwrap() {
            SysRet::Text(p) => assert_eq!(p, "/home/u/sub"),
            other => panic!("unexpected {other:?}"),
        }
        k.syscall(pid, Syscall::Chdir("..".into())).unwrap();
        match k.syscall(pid, Syscall::Getcwd).unwrap() {
            SysRet::Text(p) => assert_eq!(p, "/home/u"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn get_user_name_without_box_is_account() {
        let (mut k, pid, _) = kernel_with_user("dthain");
        match k.syscall(pid, Syscall::GetUserName).unwrap() {
            SysRet::Name(id) => assert_eq!(id.as_str(), "dthain"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn get_user_name_with_identity() {
        let (mut k, pid, _) = kernel_with_user("dthain");
        k.set_identity(pid, Identity::new("globus:/O=UnivNowhere/CN=Fred"))
            .unwrap();
        match k.syscall(pid, Syscall::GetUserName).unwrap() {
            SysRet::Name(id) => {
                assert_eq!(id.as_str(), "globus:/O=UnivNowhere/CN=Fred")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn permission_denied_for_other_users_files() {
        let (mut k, alice_pid, alice) = kernel_with_user("alice");
        let root = k.vfs().root();
        // Alice makes a private file.
        k.vfs_mut()
            .write_file(root, "/home/alice/secret", b"shh", &alice)
            .unwrap();
        k.vfs_mut()
            .chmod(root, "/home/alice/secret", 0o600, &alice)
            .unwrap();
        k.vfs_mut()
            .chmod(root, "/home/alice", 0o700, &alice)
            .unwrap();
        let bob_uid = k.accounts_mut().next_free_uid();
        k.accounts_mut()
            .add(crate::Account::new("bob", bob_uid, bob_uid))
            .unwrap();
        let bob_pid = k.spawn(Cred::new(bob_uid, bob_uid), "/tmp", "sh").unwrap();
        assert_eq!(
            k.syscall(
                bob_pid,
                Syscall::Open("/home/alice/secret".into(), OpenFlags::rdonly(), 0)
            ),
            Err(Errno::EACCES)
        );
        // Alice herself is fine.
        assert!(k
            .syscall(
                alice_pid,
                Syscall::Open("/home/alice/secret".into(), OpenFlags::rdonly(), 0)
            )
            .is_ok());
    }

    #[test]
    fn stats_count_calls() {
        let (mut k, pid, _) = kernel_with_user("u");
        k.syscall(pid, Syscall::Getpid).unwrap();
        k.syscall(pid, Syscall::Getpid).unwrap();
        let _ = k.syscall(pid, Syscall::Stat("/none".into()));
        assert_eq!(k.stats.count("getpid"), 2);
        assert_eq!(k.stats.count("stat"), 1);
        assert_eq!(k.total_syscalls(), 3);
    }

    #[test]
    fn read_path_matches_exclusive_path() {
        // Every classified read-only call must produce the same result
        // through `syscall_read` (shared borrow) as through `syscall`
        // (exclusive borrow) against identical kernel state.
        let build = || {
            let (mut k, pid, _) = kernel_with_user("u");
            let root = k.vfs().root();
            k.vfs_mut()
                .write_file(root, "/tmp/f", b"hello world", &Cred::ROOT)
                .unwrap();
            k.vfs_mut()
                .symlink(root, "/tmp/f", "/tmp/ln", &Cred::ROOT)
                .unwrap();
            let fd = k
                .syscall(pid, Syscall::Open("/tmp/f".into(), OpenFlags::rdonly(), 0))
                .unwrap()
                .num() as usize;
            (k, pid, fd)
        };
        let calls = |fd: usize| {
            vec![
                Syscall::Getpid,
                Syscall::Getppid,
                Syscall::Getuid,
                Syscall::Getcwd,
                Syscall::GetUserName,
                Syscall::Stat("/tmp/f".into()),
                Syscall::Stat("/none".into()),
                Syscall::Lstat("/tmp/ln".into()),
                Syscall::Fstat(fd),
                Syscall::Fstat(99),
                Syscall::Readlink("/tmp/ln".into()),
                Syscall::Readlink("/tmp/f".into()),
                Syscall::AccessCheck("/tmp/f".into(), Access::R),
                Syscall::Readdir("/tmp".into()),
                Syscall::Pread(fd, 5, 6),
                Syscall::Read(fd, 4),
                Syscall::Lseek(fd, 2, Whence::Set),
                Syscall::Read(fd, 4),
                Syscall::Lseek(fd, -1, Whence::End),
                Syscall::Lseek(fd, -100, Whence::Cur),
            ]
        };
        let (mut k_mut, pid_a, fd_a) = build();
        let (k_shared, pid_b, fd_b) = build();
        for (a, b) in calls(fd_a).into_iter().zip(calls(fd_b)) {
            let via_mut = k_mut.syscall(pid_a, a.clone());
            let via_read = k_shared
                .syscall_read(pid_b, &b)
                .expect("classified read-only call must be served on the shared path");
            assert_eq!(via_mut, via_read, "diverged on {}", a.name());
        }
        assert_eq!(k_mut.total_syscalls(), k_shared.total_syscalls());
    }

    #[test]
    fn read_path_declines_what_it_cannot_serve() {
        let (mut k, pid, _) = kernel_with_user("u");
        // Mutating calls are never served on the shared path.
        assert!(k.syscall_read(pid, &Syscall::Fork).is_none());
        assert!(k
            .syscall_read(pid, &Syscall::Open("/tmp/x".into(), OpenFlags::rdwr_create(), 0o644))
            .is_none());
        assert!(k.syscall_read(pid, &Syscall::SigPending).is_none());
        assert!(k.syscall_read(pid, &Syscall::Umask(0)).is_none());
        // A consuming pipe read falls back, but pipe lseek answers ESPIPE.
        let (rfd, wfd) = match k.syscall(pid, Syscall::Pipe).unwrap() {
            SysRet::PipeFds(r, w) => (r, w),
            other => panic!("expected PipeFds, got {other:?}"),
        };
        k.syscall(pid, Syscall::Write(wfd, b"x".to_vec())).unwrap();
        assert!(k.syscall_read(pid, &Syscall::Read(rfd, 1)).is_none());
        assert_eq!(
            k.syscall_read(pid, &Syscall::Lseek(rfd, 0, Whence::Cur)),
            Some(Err(Errno::ESPIPE))
        );
        // Declined calls must not be counted twice once they fall back.
        let before = k.total_syscalls();
        assert!(k.syscall_read(pid, &Syscall::Read(rfd, 1)).is_none());
        assert_eq!(k.total_syscalls(), before);
        k.syscall(pid, Syscall::Read(rfd, 1)).unwrap();
        assert_eq!(k.total_syscalls(), before + 1);
    }

    #[test]
    fn shared_readers_run_concurrently_across_threads() {
        use std::sync::{Arc, RwLock};
        let (mut k, pid, _) = kernel_with_user("u");
        let root = k.vfs().root();
        k.vfs_mut()
            .write_file(root, "/tmp/f", b"shared data", &Cred::ROOT)
            .unwrap();
        let k = Arc::new(RwLock::new(k));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let k = Arc::clone(&k);
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        let g = k.read().unwrap();
                        let r = g
                            .syscall_read(pid, &Syscall::Stat("/tmp/f".into()))
                            .expect("stat is shared-servable");
                        assert!(r.is_ok());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(k.read().unwrap().stats.count("stat"), 1000);
    }

    #[test]
    fn open_requires_read_or_write() {
        let (mut k, pid, _) = kernel_with_user("u");
        assert_eq!(
            k.syscall(
                pid,
                Syscall::Open("f".into(), OpenFlags::default(), 0o644)
            ),
            Err(Errno::EINVAL)
        );
    }

    #[test]
    fn excl_create_fails_on_existing() {
        let (mut k, pid, _) = kernel_with_user("u");
        let mut fl = OpenFlags::wronly_create_trunc();
        fl.excl = true;
        let fd = k
            .syscall(pid, Syscall::Open("f".into(), fl, 0o644))
            .unwrap()
            .num() as usize;
        k.syscall(pid, Syscall::Close(fd)).unwrap();
        assert_eq!(
            k.syscall(pid, Syscall::Open("f".into(), fl, 0o644)),
            Err(Errno::EEXIST)
        );
    }

    #[test]
    fn exit_closes_fds_and_reparents_children() {
        let (mut k, pid, _) = kernel_with_user("u");
        let fd = k
            .syscall(
                pid,
                Syscall::Open("f".into(), OpenFlags::rdwr_create(), 0o644),
            )
            .unwrap()
            .num() as usize;
        let child = Pid(k.syscall(pid, Syscall::Fork).unwrap().num() as u32);
        let grandchild = Pid(k.syscall(child, Syscall::Fork).unwrap().num() as u32);
        k.syscall(child, Syscall::Exit(0)).unwrap();
        // Grandchild reparented to init (pid 1).
        assert_eq!(k.process(grandchild).unwrap().ppid, Pid(1));
        // Parent's fd still valid, child's pins released.
        k.syscall(pid, Syscall::Write(fd, b"ok".to_vec())).unwrap();
        k.syscall(grandchild, Syscall::Exit(0)).unwrap();
    }

    #[test]
    fn pipe_roundtrip_and_eof() {
        let (mut k, pid, _) = kernel_with_user("u");
        let fds = k.syscall(pid, Syscall::Pipe).unwrap();
        let (rfd, wfd) = match fds {
            SysRet::PipeFds(r, w) => (r, w),
            other => panic!("unexpected {other:?}"),
        };
        // Empty pipe with live writer: EAGAIN.
        assert_eq!(k.syscall(pid, Syscall::Read(rfd, 10)), Err(Errno::EAGAIN));
        k.syscall(pid, Syscall::Write(wfd, b"through the pipe".to_vec()))
            .unwrap();
        let d = k.syscall(pid, Syscall::Read(rfd, 7)).unwrap();
        assert_eq!(d.data(), b"through");
        let d = k.syscall(pid, Syscall::Read(rfd, 100)).unwrap();
        assert_eq!(d.data(), b" the pipe");
        // Close the writer: drained pipe now reports EOF.
        k.syscall(pid, Syscall::Close(wfd)).unwrap();
        let d = k.syscall(pid, Syscall::Read(rfd, 10)).unwrap();
        assert!(d.data().is_empty());
        k.syscall(pid, Syscall::Close(rfd)).unwrap();
    }

    #[test]
    fn pipe_epipe_on_writer_without_reader() {
        let (mut k, pid, _) = kernel_with_user("u");
        let (rfd, wfd) = match k.syscall(pid, Syscall::Pipe).unwrap() {
            SysRet::PipeFds(r, w) => (r, w),
            other => panic!("unexpected {other:?}"),
        };
        k.syscall(pid, Syscall::Close(rfd)).unwrap();
        assert_eq!(
            k.syscall(pid, Syscall::Write(wfd, b"x".to_vec())),
            Err(Errno::EPIPE)
        );
        // And a termination signal was queued, as in a real kernel.
        match k.syscall(pid, Syscall::SigPending).unwrap() {
            SysRet::Signals(sigs) => assert_eq!(sigs, vec![Signal::Term]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pipe_crosses_fork() {
        let (mut k, pid, _) = kernel_with_user("u");
        let (rfd, wfd) = match k.syscall(pid, Syscall::Pipe).unwrap() {
            SysRet::PipeFds(r, w) => (r, w),
            other => panic!("unexpected {other:?}"),
        };
        let child = Pid(k.syscall(pid, Syscall::Fork).unwrap().num() as u32);
        // Child writes, closes both ends, exits.
        k.syscall(child, Syscall::Write(wfd, b"from child".to_vec()))
            .unwrap();
        k.syscall(child, Syscall::Exit(0)).unwrap();
        // Parent closes its write end; reads the child's message; then EOF.
        k.syscall(pid, Syscall::Close(wfd)).unwrap();
        let d = k.syscall(pid, Syscall::Read(rfd, 100)).unwrap();
        assert_eq!(d.data(), b"from child");
        let d = k.syscall(pid, Syscall::Read(rfd, 100)).unwrap();
        assert!(d.data().is_empty(), "EOF after all writers gone");
        k.syscall(pid, Syscall::Wait).unwrap();
    }

    #[test]
    fn pipe_misuse_is_clean_errors() {
        let (mut k, pid, _) = kernel_with_user("u");
        let (rfd, wfd) = match k.syscall(pid, Syscall::Pipe).unwrap() {
            SysRet::PipeFds(r, w) => (r, w),
            other => panic!("unexpected {other:?}"),
        };
        // Wrong-direction I/O.
        assert_eq!(
            k.syscall(pid, Syscall::Write(rfd, b"x".to_vec())),
            Err(Errno::EBADF)
        );
        assert_eq!(k.syscall(pid, Syscall::Read(wfd, 1)), Err(Errno::EBADF));
        // Pipes are not seekable and have no positioned I/O.
        assert_eq!(
            k.syscall(pid, Syscall::Lseek(rfd, 0, Whence::Set)),
            Err(Errno::ESPIPE)
        );
        assert_eq!(k.syscall(pid, Syscall::Pread(rfd, 1, 0)), Err(Errno::ESPIPE));
        // fstat reports the buffered byte count.
        k.syscall(pid, Syscall::Write(wfd, b"abc".to_vec())).unwrap();
        match k.syscall(pid, Syscall::Fstat(rfd)).unwrap() {
            SysRet::Stat(st) => assert_eq!(st.size, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn readdir_via_syscall() {
        let (mut k, pid, _) = kernel_with_user("u");
        k.syscall(pid, Syscall::Mkdir("d".into(), 0o755)).unwrap();
        let fd = k
            .syscall(
                pid,
                Syscall::Open("d/f".into(), OpenFlags::wronly_create_trunc(), 0o644),
            )
            .unwrap()
            .num() as usize;
        k.syscall(pid, Syscall::Close(fd)).unwrap();
        match k.syscall(pid, Syscall::Readdir("d".into())).unwrap() {
            SysRet::Entries(es) => {
                let names: Vec<_> = es.iter().map(|e| e.name.as_str()).collect();
                assert_eq!(names, [".", "..", "f"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
