//! The kernel proper: process table + syscall dispatch.
//!
//! # Concurrency model: sharded syscall domains
//!
//! The kernel used to be one monolithic struct behind a single
//! `Arc<RwLock<Kernel>>`: every mutating syscall from every boxed
//! connection serialized on that lock, which flat-lined server throughput
//! as clients were added. The state is now split into independently
//! locked **domains**, so two identities touching disjoint state never
//! contend:
//!
//! * **vfs** — internally sharded by inode number (see `idbox_vfs::Vfs`);
//!   every operation takes `&self` and locks only the shards it touches.
//! * **procs** — a process table sharded by pid, plus a pid allocator
//!   behind its own mutex. Each process entry *owns* its fd table, so fd
//!   operations lock only that process's shard.
//! * **pipes** — a slot table behind one mutex, with generation-tagged
//!   slots (see [`FileBacking::Pipe`]).
//! * **accounts** — an `RwLock` (reads vastly outnumber admin writes).
//! * **mounts** — a mutex around the mount table; driver calls serialize
//!   per-kernel (drivers model remote I/O and were serialized before).
//!
//! Dispatch goes through [`Kernel::syscall_shared`], which needs only
//! `&self`: supervisors share one kernel behind an `Arc` (or the
//! read-side of the legacy `RwLock`) and run syscalls concurrently.
//!
//! ## Lock ordering
//!
//! Deadlock freedom rests on a strict domain hierarchy:
//!
//! 1. A syscall locks **one process shard at a time**, except through
//!    `ShardSet`'s ordered batch helpers (`write_pair` in `fork`,
//!    ascending sweeps in `terminate`/`wait`), which always acquire in
//!    ascending shard order.
//! 2. While holding a process-shard guard, code may take **vfs**,
//!    **pipe**, or **mount** locks (e.g. `fork` pins inherited fds).
//!    Nothing in those domains ever takes a process lock, so the edge is
//!    one-way: `procs → {vfs, pipes, mounts}`.
//! 3. The pid-allocator mutex is a leaf: it is held only over its own
//!    bookkeeping, never while acquiring any other lock. (Its liveness
//!    probe reads a process shard *between* reservations, not under the
//!    allocator lock.)
//! 4. `vfs`, `pipes`, `mounts`, and `accounts` locks are never held
//!    while acquiring one another; calls into each domain are sequenced.
//! 5. The write-ahead log's internal mutex (durability; see
//!    `idbox_vfs::wal`) is a leaf below the vfs shard locks: the vfs
//!    appends while holding shard write locks, and nothing acquired
//!    under the WAL mutex can take any other lock. Snapshot capture
//!    takes every vfs shard read lock, then the WAL mutex — the same
//!    downward direction.

use crate::accounts::AccountDb;
use crate::driver::{FsDriver, MountTable};
use crate::process::{
    FileBacking, OpenFile, OpenFlags, Pid, PipeEnd, ProcState, Process, Signal,
};
use crate::stats::{LatencyStats, SyscallStats};
use crate::syscall::{SysRet, Syscall, Whence};
use crate::accounts::Account;
use idbox_types::{Errno, Identity, SysResult};
use idbox_vfs::wal::{AccountOp, RecoveryReport, Wal, WalConfig, WalRecordRef};
use idbox_vfs::{path as vpath, Access, Cred, ExtentList, FileKind, Ino, Vfs};
use parking_lot::{ProfiledMutex, ProfiledRwLock, ShardSet};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::{Arc, OnceLock};

/// The initial process (everything reparents to it).
const INIT: Pid = Pid(1);

/// Process-table shard count: `IDBOX_PROC_SHARDS` (clamped to 1..=1024),
/// default 8. Read once per process.
fn default_proc_shards() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("IDBOX_PROC_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map_or(8, |n| n.clamp(1, 1024))
    })
}

/// The pid allocator: a wrapping counter over `[2, max_pid]` plus a
/// reservation set for pids handed out but not yet inserted into the
/// table. Lives behind its own mutex (a leaf lock; see the module doc).
#[derive(Debug)]
struct PidAlloc {
    /// Next candidate pid. Wraps to 2 past `max_pid` instead of
    /// overflowing (the old `next_pid += 1` was an unchecked `u32`
    /// increment: debug-panic / silent pid collision in release).
    next: u32,
    /// Upper bound of the pid space (inclusive). `u32::MAX` in
    /// production; tests shrink it to exercise wrap and exhaustion.
    max_pid: u32,
    /// Pids allocated but not yet visible in a shard.
    reserved: HashSet<u32>,
}

/// The sharded process table.
struct ProcTable {
    /// `pid % shard_count` → that pid's entry. Each entry owns its fd
    /// table, so fd ops lock exactly one shard.
    shards: ShardSet<BTreeMap<u32, Process>>,
    alloc: ProfiledMutex<PidAlloc>,
}

impl ProcTable {
    fn with_shards(n: usize) -> Self {
        ProcTable {
            shards: ShardSet::from_fn_named("proc", n, |_| BTreeMap::new()),
            alloc: ProfiledMutex::new("pid-alloc", PidAlloc {
                next: 2,
                max_pid: u32::MAX,
                reserved: HashSet::new(),
            }),
        }
    }

    fn shard_of(&self, pid: Pid) -> usize {
        self.shards.shard_of(pid.0 as u64)
    }
}

/// An in-kernel pipe: a byte queue plus end reference counts.
#[derive(Debug, Default)]
struct PipeBuf {
    data: VecDeque<u8>,
    readers: u32,
    writers: u32,
}

/// One slot in the pipe table. Slots are recycled once both end counts
/// reach zero; `gen` is bumped on every reuse so an fd minted against an
/// earlier life of the slot can never alias the current pipe (it fails
/// the generation check with `EBADF` instead).
#[derive(Debug, Default)]
struct PipeSlot {
    gen: u64,
    buf: Option<PipeBuf>,
}

/// The pipe domain: all slots behind one mutex (pipe traffic is tiny
/// compared to vfs traffic; a single leaf lock suffices).
struct PipeTable {
    slots: ProfiledMutex<Vec<PipeSlot>>,
}

/// The simulated kernel.
///
/// Owns the filesystem, the mount table, the process table, and the
/// account database, each behind its own locking domain (see the module
/// doc). All interaction happens through [`Kernel::syscall_shared`] (the
/// trapped interface, `&self`) or through supervisor-only methods such
/// as [`Kernel::spawn`] and [`Kernel::set_identity`], which model actions
/// the supervisor performs directly rather than on behalf of a guest.
pub struct Kernel {
    vfs: Vfs,
    mounts: ProfiledMutex<MountTable>,
    procs: ProcTable,
    accounts: ProfiledRwLock<AccountDb>,
    pipes: PipeTable,
    /// Per-syscall-name invocation counters (workload characterization).
    /// Atomic, so every concurrent dispatch records calls; see
    /// [`SyscallStats`].
    pub stats: SyscallStats,
    /// Per-syscall latency histograms. Behind an `Arc` so supervisors
    /// can clone the handle once at construction and record timings
    /// without touching any kernel lock.
    latency: Arc<LatencyStats>,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nprocs: usize = self.procs.shards.read_all().iter().map(|g| g.len()).sum();
        write!(
            f,
            "Kernel({} procs, {} inodes, {} mounts)",
            nprocs,
            self.vfs.live_inodes(),
            self.mounts.lock().len()
        )
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new()
    }
}

impl Kernel {
    /// A fresh kernel with the standard filesystem layout (`/etc`,
    /// `/home`, `/tmp`, `/root`, `/bin`), system accounts, an
    /// `/etc/passwd` file, and an init process (pid 1) running as root.
    pub fn new() -> Self {
        Self::build(Vfs::new(), default_proc_shards())
    }

    /// A kernel with an explicit shard count for both the vfs and the
    /// process table. `with_shards(1)` degenerates to one lock per
    /// domain — the behavioral twin of the old single-lock kernel, used
    /// by the equivalence suite as the reference implementation.
    pub fn with_shards(n: usize) -> Self {
        let n = n.clamp(1, 1024);
        Self::build(Vfs::with_shards(n), n)
    }

    fn build(vfs: Vfs, proc_shards: usize) -> Self {
        let accounts = Self::layout(&vfs);
        Self::assemble(vfs, accounts, proc_shards)
    }

    /// Open (or create) a durable kernel whose namespace lives in the
    /// write-ahead log at `cfg.dir`. A fresh directory boots the same
    /// standard layout as [`Kernel::new`] — with every operation logged,
    /// so the log alone can always rebuild the namespace — while a
    /// directory holding a previous incarnation's snapshot/log restores
    /// that namespace (files, ACL files, accounts) and resumes logging
    /// after it. Process table, pipes, and mounts are volatile by
    /// design: processes do not survive a restart. Returns the kernel
    /// plus the replay report ([`RecoveryReport::restored`]
    /// distinguishes the two paths).
    pub fn with_durability(cfg: WalConfig) -> std::io::Result<(Self, RecoveryReport)> {
        let (wal, recovered) = Wal::open(cfg)?;
        let wal = Arc::new(wal);
        let report = recovered.report;
        let kernel = match recovered.vfs {
            Some(mut vfs) => {
                let mut accounts = match recovered.accounts.as_deref() {
                    Some(blob) => {
                        AccountDb::from_blob(blob).ok_or_else(|| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                "corrupt account blob in WAL snapshot",
                            )
                        })?
                    }
                    None => AccountDb::with_system_accounts(),
                };
                for op in &recovered.account_ops {
                    match op {
                        AccountOp::Add(line) => accounts.replay_add(line),
                        AccountOp::Remove(name) => accounts.replay_remove(name),
                    }
                }
                // Resume logging on the restored namespace.
                vfs.set_wal(Some(Arc::clone(&wal)));
                Self::assemble(vfs, accounts, default_proc_shards())
            }
            None => {
                // First boot: arm the log *before* the standard layout
                // is created, so the log covers the namespace from its
                // root-only origin — replay can then always start from
                // `Vfs::new()` when no snapshot exists yet.
                let mut vfs = Vfs::new();
                vfs.set_wal(Some(Arc::clone(&wal)));
                let accounts = Self::layout(&vfs);
                Self::assemble(vfs, accounts, default_proc_shards())
            }
        };
        wal.start_flusher();
        Ok((kernel, report))
    }

    /// Create the standard filesystem layout on a root-only filesystem
    /// and return the matching system account database.
    fn layout(vfs: &Vfs) -> AccountDb {
        let root = vfs.root();
        let r = &Cred::ROOT;
        vfs.mkdir(root, "/etc", 0o755, r).unwrap();
        vfs.mkdir(root, "/home", 0o755, r).unwrap();
        vfs.mkdir(root, "/tmp", 0o777, r).unwrap();
        vfs.mkdir(root, "/root", 0o700, r).unwrap();
        vfs.mkdir(root, "/bin", 0o755, r).unwrap();
        // Standard executables (content is a placeholder; the simulated
        // exec checks existence and execute permission, not ELF headers).
        for bin in ["sh", "cc", "ls", "cp", "mv", "rm", "make", "whoami"] {
            let ino = vfs
                .create(root, &format!("/bin/{bin}"), 0o755, r)
                .unwrap();
            vfs.write_at(ino, 0, b"#!simulated\n").unwrap();
        }
        let accounts = AccountDb::with_system_accounts();
        vfs.write_file(root, "/etc/passwd", accounts.passwd_file().as_bytes(), r)
            .unwrap();
        accounts
    }

    /// Wrap an existing namespace and account database in the volatile
    /// kernel state (process table with init, pipes, mounts, counters).
    fn assemble(vfs: Vfs, accounts: AccountDb, proc_shards: usize) -> Self {
        let root = vfs.root();
        let procs = ProcTable::with_shards(proc_shards);
        procs.shards.write(procs.shard_of(INIT)).insert(
            INIT.0,
            Process {
                pid: INIT,
                ppid: INIT,
                cred: Cred::ROOT,
                identity: None,
                cwd: root,
                cwd_path: "/".to_string(),
                fds: Vec::new(),
                state: ProcState::Running,
                pending: Vec::new(),
                umask: 0o022,
                comm: "init".to_string(),
                env: Default::default(),
            },
        );
        Kernel {
            vfs,
            mounts: ProfiledMutex::new("mounts", MountTable::default()),
            procs,
            accounts: ProfiledRwLock::new("accounts", accounts),
            pipes: PipeTable {
                slots: ProfiledMutex::new("pipes", Vec::new()),
            },
            stats: SyscallStats::new(),
            latency: Arc::new(LatencyStats::new()),
        }
    }

    /// The shared latency-histogram handle for this kernel.
    pub fn latency(&self) -> &Arc<LatencyStats> {
        &self.latency
    }

    /// Number of process-table shards (diagnostics).
    pub fn proc_shard_count(&self) -> usize {
        self.procs.shards.len()
    }

    // ------------------------------------------------------------------
    // Supervisor-side (non-trapped) interface
    // ------------------------------------------------------------------

    /// Borrow the filesystem. All `Vfs` operations take `&self`, so this
    /// is the working handle for supervisors too.
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Mutably borrow the filesystem (needed only for structural knobs
    /// such as `set_dentry_cache` / `set_fault_hook`).
    pub fn vfs_mut(&mut self) -> &mut Vfs {
        &mut self.vfs
    }

    /// Read-lock the account database. Drop the guard before calling
    /// anything that might write accounts.
    pub fn accounts(&self) -> parking_lot::RwLockReadGuard<'_, AccountDb> {
        self.accounts.read()
    }

    /// Mutably borrow the account database (administrative action).
    pub fn accounts_mut(&mut self) -> &mut AccountDb {
        self.accounts.get_mut()
    }

    /// Rewrite `/etc/passwd` from the account database.
    pub fn sync_passwd_file(&self) {
        let text = self.accounts.read().passwd_file();
        let root = self.vfs.root();
        self.vfs
            .write_file(root, "/etc/passwd", text.as_bytes(), &Cred::ROOT)
            .expect("passwd file is always writable by root");
    }

    /// Add an account, logging it to the WAL when one is attached. Use
    /// this (not `accounts_mut().add(..)` directly) for any account
    /// creation that must survive a restart. Exclusive access (`&mut
    /// self`) orders the database change and its log record against
    /// concurrent snapshots, which hold the shared side of the kernel
    /// lock.
    pub fn account_add(&mut self, account: Account) -> SysResult<()> {
        let line = account.passwd_line();
        self.accounts.get_mut().add(account)?;
        if let Some(wal) = self.vfs.wal() {
            wal.append(WalRecordRef::AccountAdd { line: &line });
        }
        Ok(())
    }

    /// Remove an account by name, logging it to the WAL when one is
    /// attached (the durable counterpart of `accounts_mut().remove(..)`).
    pub fn account_remove(&mut self, name: &str) -> SysResult<Account> {
        let removed = self.accounts.get_mut().remove(name)?;
        if let Some(wal) = self.vfs.wal() {
            wal.append(WalRecordRef::AccountRemove { name });
        }
        Ok(removed)
    }

    /// Snapshot the durable state (namespace + accounts) and truncate
    /// the log. `Ok(None)` when no WAL is attached; otherwise the
    /// snapshot's LSN watermark.
    ///
    /// Safe against concurrent syscalls: the namespace is serialized
    /// under every vfs shard read lock, at a log rotation point captured
    /// under those same locks. The account blob is captured just before
    /// — account *mutations* go through `&mut self`
    /// ([`Kernel::account_add`] / [`Kernel::account_remove`]), so a
    /// shared borrow cannot race one, and reads of the blob stay
    /// consistent with the rotation.
    pub fn wal_snapshot(&self) -> std::io::Result<Option<u64>> {
        let Some(wal) = self.vfs.wal().cloned() else {
            return Ok(None);
        };
        let accounts_blob = self.accounts.read().to_blob();
        let (vfs_blob, watermark) = self.vfs.snapshot_cut()?;
        wal.install_snapshot(watermark, &vfs_blob, &accounts_blob)?;
        Ok(Some(watermark))
    }

    /// Mount a filesystem driver under a path prefix. Returns the mount
    /// index.
    pub fn mount(&mut self, prefix: impl Into<String>, driver: Box<dyn FsDriver>) -> usize {
        self.mounts.get_mut().mount(prefix, driver)
    }

    /// Shrink the pid space to `[2, max]` (testing knob: makes wrap and
    /// exhaustion reachable without four billion spawns).
    pub fn set_max_pid(&self, max: u32) {
        let mut a = self.procs.alloc.lock();
        a.max_pid = max.max(2);
        if a.next > a.max_pid {
            a.next = 2;
        }
    }

    /// Allocate a fresh pid: a checked, wrapping increment that skips
    /// live and reserved pids and answers `EAGAIN` once the whole pid
    /// space is in use.
    fn alloc_pid(&self) -> SysResult<Pid> {
        let mut attempts: u64 = 0;
        loop {
            let cand = {
                let mut a = self.procs.alloc.lock();
                let span = a.max_pid as u64;
                loop {
                    if attempts >= span {
                        return Err(Errno::EAGAIN);
                    }
                    attempts += 1;
                    let c = a.next;
                    a.next = if c >= a.max_pid { 2 } else { c + 1 };
                    if c >= 2 && !a.reserved.contains(&c) {
                        a.reserved.insert(c);
                        break c;
                    }
                }
            };
            // Liveness probe *outside* the allocator lock (lock order:
            // the allocator mutex is a leaf and never wraps a shard
            // acquisition).
            let live = self
                .procs
                .shards
                .read(self.procs.shards.shard_of(cand as u64))
                .contains_key(&cand);
            if !live {
                return Ok(Pid(cand));
            }
            self.procs.alloc.lock().reserved.remove(&cand);
        }
    }

    /// Drop the reservation made by [`Kernel::alloc_pid`] (called after
    /// the pid is inserted into its shard, or on an abandoned spawn).
    fn release_pid(&self, pid: Pid) {
        self.procs.alloc.lock().reserved.remove(&pid.0);
    }

    /// Create a new process as a child of init.
    pub fn spawn(&self, cred: Cred, cwd_path: &str, comm: &str) -> SysResult<Pid> {
        let cwd = self.vfs.resolve(self.vfs.root(), cwd_path, true, &cred)?;
        if self.vfs.fstat(cwd)?.kind != FileKind::Dir {
            return Err(Errno::ENOTDIR);
        }
        let pid = self.alloc_pid()?;
        self.procs.shards.write(self.procs.shard_of(pid)).insert(
            pid.0,
            Process {
                pid,
                ppid: INIT,
                cred,
                identity: None,
                cwd,
                cwd_path: vpath::normalize_lexical(cwd_path),
                fds: Vec::new(),
                state: ProcState::Running,
                pending: Vec::new(),
                umask: 0o022,
                comm: comm.to_string(),
                env: Default::default(),
            },
        );
        self.release_pid(pid);
        Ok(pid)
    }

    /// Attach a global identity to a process (what the identity box does
    /// when it admits a visitor). Supervisor-only: there is deliberately
    /// no trapped syscall for this.
    pub fn set_identity(&self, pid: Pid, identity: Identity) -> SysResult<()> {
        self.with_proc_mut(pid, |p| p.identity = Some(identity))
    }

    /// Set one environment variable on a process. Supervisor-only, like
    /// [`Kernel::set_identity`]: guests can only *read* the table (via
    /// `getenv`), and children inherit it across `fork` — how a boxed
    /// child learns the trace id of the request that spawned it.
    pub fn set_env(
        &self,
        pid: Pid,
        key: impl Into<String>,
        value: impl Into<String>,
    ) -> SysResult<()> {
        let (key, value) = (key.into(), value.into());
        self.with_proc_mut(pid, |p| {
            p.env.insert(key, value);
        })
    }

    /// A snapshot of a process entry.
    pub fn process(&self, pid: Pid) -> SysResult<Process> {
        self.with_proc(pid, |p| p.clone())
    }

    /// All live pids, ascending.
    pub fn pids(&self) -> Vec<Pid> {
        let mut out: Vec<Pid> = self
            .procs
            .shards
            .read_all()
            .iter()
            .flat_map(|g| g.values().map(|p| p.pid))
            .collect();
        out.sort();
        out
    }

    /// Total number of syscalls dispatched.
    pub fn total_syscalls(&self) -> u64 {
        self.stats.total()
    }

    /// The null system call: what a nullified (trapped-and-replaced) call
    /// becomes. Does the same work as `getpid` — a real kernel entry with
    /// a process-table lookup — but is not recorded in the per-name stats,
    /// so workload characterization counts only the guest's own calls.
    pub fn null_syscall(&self, pid: Pid) -> i64 {
        match self.with_proc(pid, |p| p.pid.0 as i64) {
            Ok(n) => n,
            Err(e) => e.as_ret(),
        }
    }

    /// Run `f` against a process entry under its shard's read lock.
    fn with_proc<T>(&self, pid: Pid, f: impl FnOnce(&Process) -> T) -> SysResult<T> {
        let g = self.procs.shards.read(self.procs.shard_of(pid));
        g.get(&pid.0).map(f).ok_or(Errno::ESRCH)
    }

    /// Run `f` against a process entry under its shard's write lock.
    fn with_proc_mut<T>(&self, pid: Pid, f: impl FnOnce(&mut Process) -> T) -> SysResult<T> {
        let mut g = self.procs.shards.write(self.procs.shard_of(pid));
        g.get_mut(&pid.0).map(f).ok_or(Errno::ESRCH)
    }

    /// Caller's cred; error if the process is gone or a zombie.
    fn live_cred(&self, pid: Pid) -> SysResult<(Cred, Ino)> {
        self.with_proc(pid, |p| {
            if p.is_alive() {
                Ok((p.cred, p.cwd))
            } else {
                Err(Errno::ESRCH)
            }
        })?
    }

    /// The identity presented to mounted drivers for this process: the
    /// box identity when present, otherwise `unix:<account>`.
    fn driver_identity(&self, pid: Pid) -> SysResult<Identity> {
        let (identity, uid) = self.with_proc(pid, |p| (p.identity.clone(), p.cred.uid))?;
        if let Some(id) = identity {
            return Ok(id);
        }
        let name = self
            .accounts
            .read()
            .lookup_uid(uid)
            .map(|a| a.name.clone())
            .unwrap_or_else(|| format!("uid{uid}"));
        Ok(Identity::new(format!("unix:{name}")))
    }

    /// Make a path absolute with respect to the process cwd (textually;
    /// structural resolution happens later in the VFS).
    fn absolutize(&self, pid: Pid, p: &str) -> SysResult<String> {
        self.with_proc(pid, |proc| {
            if vpath::is_absolute(p) {
                p.to_string()
            } else {
                vpath::join(&proc.cwd_path, p)
            }
        })
    }

    /// Route a path: `Some((mount, rel))` for mounted prefixes, `None`
    /// for the local filesystem.
    fn route(&self, pid: Pid, p: &str) -> SysResult<Option<(usize, String)>> {
        if self.mounts.lock().is_empty() {
            return Ok(None);
        }
        let abs = vpath::normalize_lexical(&self.absolutize(pid, p)?);
        Ok(self.mounts.lock().route(&abs))
    }

    // ------------------------------------------------------------------
    // The trapped interface
    // ------------------------------------------------------------------

    /// Dispatch one system call on behalf of `pid` (exclusive borrow).
    ///
    /// A compatibility shim over [`Kernel::syscall_shared`]: every call
    /// is dispatched through the shared-borrow path, so the two entry
    /// points are byte-identical in behavior.
    pub fn syscall(&mut self, pid: Pid, call: Syscall) -> SysResult<SysRet> {
        self.syscall_shared(pid, call)
    }

    /// Dispatch one system call on behalf of `pid` through a **shared**
    /// borrow. This is the concurrent path: each syscall locks only the
    /// domains (and shards) it touches, so supervisors on different
    /// threads proceed in parallel whenever their state is disjoint.
    pub fn syscall_shared(&self, pid: Pid, call: Syscall) -> SysResult<SysRet> {
        self.stats.bump(&call);
        self.dispatch(pid, call)
    }

    /// Dispatch a call through a shared borrow, by reference.
    ///
    /// Always `Some`: since the kernel went sharded, *every* call —
    /// mutating ones included — is servable without `&mut self`. The
    /// `Option` return survives for callers written against the old
    /// read-path contract (where `None` meant "take the exclusive
    /// path").
    pub fn syscall_read(&self, pid: Pid, call: &Syscall) -> Option<SysResult<SysRet>> {
        Some(self.syscall_shared(pid, call.clone()))
    }

    /// The single dispatcher: every call through `&self`.
    fn dispatch(&self, pid: Pid, call: Syscall) -> SysResult<SysRet> {
        use Syscall::*;
        match call {
            Getpid => Ok(SysRet::Num(pid.0 as i64)),
            Getppid => self.with_proc(pid, |p| SysRet::Num(p.ppid.0 as i64)),
            Getuid => self.with_proc(pid, |p| SysRet::Num(p.cred.uid as i64)),
            Getcwd => self.with_proc(pid, |p| SysRet::Text(p.cwd_path.clone())),
            GetUserName => self.read_user_name(pid),
            Getenv(name) => self.read_env(pid, &name),
            Stat(p) => self.do_stat(pid, &p, true),
            Lstat(p) => self.do_stat(pid, &p, false),
            Fstat(fd) => self.do_fstat(pid, fd),
            Open(p, flags, mode) => self.do_open(pid, &p, flags, mode),
            Close(fd) => self.do_close(pid, fd),
            Read(fd, len) => self.do_read(pid, fd, len, None),
            Pread(fd, len, off) => self.do_read(pid, fd, len, Some(off)),
            Preadx(fd, len, off) => self.do_read_extents(pid, fd, len, off),
            Write(fd, data) => self.do_write(pid, fd, &data, None),
            Pwrite(fd, data, off) => self.do_write(pid, fd, &data, Some(off)),
            Lseek(fd, off, whence) => self.do_lseek(pid, fd, off, whence),
            Dup(fd) => self.do_dup(pid, fd),
            Mkdir(p, mode) => self.do_mkdir(pid, &p, mode),
            Rmdir(p) => self.do_rmdir(pid, &p),
            Unlink(p) => self.do_unlink(pid, &p),
            Link(old, new) => self.do_link(pid, &old, &new),
            Symlink(target, linkp) => self.do_symlink(pid, &target, &linkp),
            Readlink(p) => self.do_readlink(pid, &p),
            Rename(old, new) => self.do_rename(pid, &old, &new),
            Truncate(p, len) => self.do_truncate(pid, &p, len),
            AccessCheck(p, want) => self.do_access(pid, &p, want),
            Readdir(p) => self.do_readdir(pid, &p),
            Chmod(p, mode) => self.do_chmod(pid, &p, mode),
            Chown(p, uid, gid) => self.do_chown(pid, &p, uid, gid),
            Chdir(p) => self.do_chdir(pid, &p),
            Umask(mask) => self.with_proc_mut(pid, |p| {
                let old = p.umask;
                p.umask = mask & 0o777;
                SysRet::Num(old as i64)
            }),
            Fork => self.do_fork(pid),
            Exec(name) => self.do_exec(pid, name),
            Exit(code) => self.do_exit(pid, code),
            Wait => self.do_wait(pid),
            Kill(target, sig) => self.do_kill(pid, target, sig),
            SigPending => self.with_proc_mut(pid, |p| {
                SysRet::Signals(std::mem::take(&mut p.pending))
            }),
            Pipe => self.do_pipe(pid),
        }
    }

    fn read_user_name(&self, pid: Pid) -> SysResult<SysRet> {
        let (identity, uid) = self.with_proc(pid, |p| (p.identity.clone(), p.cred.uid))?;
        let id = match identity {
            Some(id) => id,
            None => {
                let name = self
                    .accounts
                    .read()
                    .lookup_uid(uid)
                    .map(|a| a.name.clone())
                    .unwrap_or_else(|| format!("uid{uid}"));
                Identity::new(name)
            }
        };
        Ok(SysRet::Name(id))
    }

    /// `getenv`: a process-table read. Unset names answer `ENOENT`
    /// (distinct from an empty value).
    fn read_env(&self, pid: Pid, name: &str) -> SysResult<SysRet> {
        self.with_proc(pid, |p| p.env.get(name).cloned())?
            .map(SysRet::Text)
            .ok_or(Errno::ENOENT)
    }

    // ------------------------------------------------------------------
    // File operations
    // ------------------------------------------------------------------

    fn do_stat(&self, pid: Pid, p: &str, follow: bool) -> SysResult<SysRet> {
        if let Some((m, rel)) = self.route(pid, p)? {
            let id = self.driver_identity(pid)?;
            let mut mounts = self.mounts.lock();
            let d = mounts.driver_mut(m).ok_or(Errno::EIO)?;
            return Ok(SysRet::Stat(d.stat(&rel, &id)?));
        }
        let (cred, cwd) = self.live_cred(pid)?;
        Ok(SysRet::Stat(self.vfs.stat(cwd, p, follow, &cred)?))
    }

    /// Adjust a pipe's end counts; frees the slot when both reach zero.
    /// Generation-checked: a stale reference is a silent no-op.
    fn pipe_release(&self, id: usize, gen: u64, end: PipeEnd) {
        let mut slots = self.pipes.slots.lock();
        if let Some(slot) = slots.get_mut(id) {
            if slot.gen != gen {
                return;
            }
            if let Some(p) = &mut slot.buf {
                match end {
                    PipeEnd::Read => p.readers = p.readers.saturating_sub(1),
                    PipeEnd::Write => p.writers = p.writers.saturating_sub(1),
                }
                if p.readers == 0 && p.writers == 0 {
                    slot.buf = None;
                }
            }
        }
    }

    fn pipe_retain(&self, id: usize, gen: u64, end: PipeEnd) {
        let mut slots = self.pipes.slots.lock();
        if let Some(slot) = slots.get_mut(id) {
            if slot.gen != gen {
                return;
            }
            if let Some(p) = &mut slot.buf {
                match end {
                    PipeEnd::Read => p.readers += 1,
                    PipeEnd::Write => p.writers += 1,
                }
            }
        }
    }

    fn do_pipe(&self, pid: Pid) -> SysResult<SysRet> {
        // Allocate a slot first; reused slots get a fresh generation so
        // stale fds minted against the previous life answer EBADF.
        let (id, gen) = {
            let mut slots = self.pipes.slots.lock();
            let fresh = PipeBuf {
                readers: 1,
                writers: 1,
                ..Default::default()
            };
            match slots.iter().position(|s| s.buf.is_none()) {
                Some(i) => {
                    slots[i].gen += 1;
                    slots[i].buf = Some(fresh);
                    (i, slots[i].gen)
                }
                None => {
                    slots.push(PipeSlot {
                        gen: 1,
                        buf: Some(fresh),
                    });
                    (slots.len() - 1, 1)
                }
            }
        };
        let planted = self.with_proc_mut(pid, |proc| {
            let Some(rfd) = proc.alloc_fd() else {
                return Err(Errno::EMFILE);
            };
            proc.fds[rfd] = Some(OpenFile::new(
                FileBacking::Pipe {
                    id,
                    gen,
                    end: PipeEnd::Read,
                },
                OpenFlags::rdonly(),
            ));
            match proc.alloc_fd() {
                Some(wfd) => {
                    proc.fds[wfd] = Some(OpenFile::new(
                        FileBacking::Pipe {
                            id,
                            gen,
                            end: PipeEnd::Write,
                        },
                        OpenFlags {
                            write: true,
                            ..Default::default()
                        },
                    ));
                    Ok((rfd, wfd))
                }
                None => {
                    proc.fds[rfd] = None;
                    Err(Errno::EMFILE)
                }
            }
        });
        match planted {
            Ok(Ok((rfd, wfd))) => Ok(SysRet::PipeFds(rfd, wfd)),
            Ok(Err(e)) | Err(e) => {
                // Roll the slot back; the generation stays burned.
                let mut slots = self.pipes.slots.lock();
                if let Some(slot) = slots.get_mut(id) {
                    if slot.gen == gen {
                        slot.buf = None;
                    }
                }
                Err(e)
            }
        }
    }

    fn pipe_fstat(&self, pid: Pid, id: usize, gen: u64) -> SysResult<SysRet> {
        let buffered = {
            let slots = self.pipes.slots.lock();
            match slots.get(id) {
                Some(s) if s.gen == gen => s.buf.as_ref().map_or(0, |p| p.data.len() as u64),
                _ => return Err(Errno::EBADF),
            }
        };
        let cred = self.with_proc(pid, |p| p.cred)?;
        Ok(SysRet::Stat(idbox_vfs::StatBuf {
            ino: Ino(0),
            kind: FileKind::File,
            mode: 0o600,
            uid: cred.uid,
            gid: cred.gid,
            nlink: 1,
            size: buffered,
            atime: 0,
            mtime: 0,
            ctime: 0,
        }))
    }

    fn do_fstat(&self, pid: Pid, fd: usize) -> SysResult<SysRet> {
        let backing = self
            .with_proc(pid, |p| p.file(fd).map(|f| f.backing.clone()))?
            .ok_or(Errno::EBADF)?;
        match backing {
            FileBacking::Local(ino) => Ok(SysRet::Stat(self.vfs.fstat(ino)?)),
            FileBacking::Pipe { id, gen, .. } => self.pipe_fstat(pid, id, gen),
            FileBacking::Driver { mount, dfd } => {
                let mut mounts = self.mounts.lock();
                let d = mounts.driver_mut(mount).ok_or(Errno::EIO)?;
                Ok(SysRet::Stat(d.fstat(dfd)?))
            }
        }
    }

    fn do_open(&self, pid: Pid, p: &str, flags: OpenFlags, mode: u16) -> SysResult<SysRet> {
        if !flags.read && !flags.write {
            return Err(Errno::EINVAL);
        }
        if let Some((m, rel)) = self.route(pid, p)? {
            let id = self.driver_identity(pid)?;
            let dfd = {
                let mut mounts = self.mounts.lock();
                let d = mounts.driver_mut(m).ok_or(Errno::EIO)?;
                d.open(&rel, flags, mode, &id)?
            };
            let fd = self
                .with_proc_mut(pid, |proc| {
                    proc.alloc_fd().inspect(|&fd| {
                        proc.fds[fd] =
                            Some(OpenFile::new(FileBacking::Driver { mount: m, dfd }, flags));
                    })
                })?
                .ok_or(Errno::EMFILE)?;
            return Ok(SysRet::Num(fd as i64));
        }
        let (cred, cwd, umask) = self.with_proc(pid, |p| {
            if p.is_alive() {
                Ok((p.cred, p.cwd, p.umask))
            } else {
                Err(Errno::ESRCH)
            }
        })??;
        let (dir, name, existing) = self.vfs.resolve_entry(cwd, p, &cred)?;
        let ino = match existing {
            Some(ino) => {
                if flags.create && flags.excl {
                    return Err(Errno::EEXIST);
                }
                let kind = self.vfs.fstat(ino)?.kind;
                if kind == FileKind::Dir && flags.write {
                    return Err(Errno::EISDIR);
                }
                if flags.read {
                    self.vfs.check_access(ino, &cred, Access::R)?;
                }
                if flags.write {
                    self.vfs.check_access(ino, &cred, Access::W)?;
                }
                if flags.trunc && kind == FileKind::File {
                    self.vfs.truncate(ino, 0)?;
                }
                ino
            }
            None => {
                if !flags.create {
                    return Err(Errno::ENOENT);
                }
                self.vfs.create(dir, &name, mode & !umask, &cred)?
            }
        };
        self.vfs.pin(ino)?;
        let fd = self.with_proc_mut(pid, |proc| {
            proc.alloc_fd().inspect(|&fd| {
                proc.fds[fd] = Some(OpenFile::new(FileBacking::Local(ino), flags));
            })
        })?;
        match fd {
            Some(fd) => Ok(SysRet::Num(fd as i64)),
            None => {
                self.vfs.unpin(ino)?;
                Err(Errno::EMFILE)
            }
        }
    }

    fn do_close(&self, pid: Pid, fd: usize) -> SysResult<SysRet> {
        let file = self
            .with_proc_mut(pid, |p| p.fds.get_mut(fd).and_then(Option::take))?
            .ok_or(Errno::EBADF)?;
        match file.backing {
            FileBacking::Local(ino) => self.vfs.unpin(ino)?,
            FileBacking::Driver { mount, dfd } => {
                let mut mounts = self.mounts.lock();
                let d = mounts.driver_mut(mount).ok_or(Errno::EIO)?;
                d.close(dfd)?;
            }
            FileBacking::Pipe { id, gen, end } => self.pipe_release(id, gen, end),
        }
        Ok(SysRet::Unit)
    }

    fn do_read(
        &self,
        pid: Pid,
        fd: usize,
        len: usize,
        at: Option<u64>,
    ) -> SysResult<SysRet> {
        let file = self
            .with_proc(pid, |p| p.file(fd).cloned())?
            .ok_or(Errno::EBADF)?;
        if !file.flags.read {
            return Err(Errno::EBADF);
        }
        let off = at.unwrap_or(file.offset());
        let data = match file.backing {
            FileBacking::Local(ino) => {
                let mut buf = vec![0u8; len];
                let n = self.vfs.read_into(ino, off, &mut buf)?;
                buf.truncate(n);
                buf
            }
            FileBacking::Driver { mount, dfd } => {
                let mut mounts = self.mounts.lock();
                let d = mounts.driver_mut(mount).ok_or(Errno::EIO)?;
                d.pread(dfd, len, off)?
            }
            FileBacking::Pipe { id, gen, end } => {
                if end != PipeEnd::Read || at.is_some() {
                    return Err(if at.is_some() { Errno::ESPIPE } else { Errno::EBADF });
                }
                let mut slots = self.pipes.slots.lock();
                let p = match slots.get_mut(id) {
                    Some(s) if s.gen == gen => s.buf.as_mut().ok_or(Errno::EBADF)?,
                    _ => return Err(Errno::EBADF),
                };
                if p.data.is_empty() {
                    if p.writers == 0 {
                        Vec::new() // EOF
                    } else {
                        return Err(Errno::EAGAIN); // nothing yet, writer alive
                    }
                } else {
                    let n = len.min(p.data.len());
                    p.data.drain(..n).collect()
                }
            }
        };
        if at.is_none() {
            self.with_proc(pid, |p| {
                p.file(fd).map(|f| f.set_offset(off + data.len() as u64))
            })?
            .ok_or(Errno::EBADF)?;
        }
        Ok(SysRet::Data(data))
    }

    /// `preadx`: the zero-copy read. Local files answer borrowed
    /// `Arc` extents straight from the Vfs chunks — no byte is copied
    /// under or after the shard lock. Driver-backed files have no
    /// chunk structure to share, so their bytes come back as a single
    /// owned extent; pipes are unseekable, so a positioned read is
    /// `ESPIPE`. Always positioned: the fd offset never moves.
    fn do_read_extents(&self, pid: Pid, fd: usize, len: usize, off: u64) -> SysResult<SysRet> {
        let file = self
            .with_proc(pid, |p| p.file(fd).cloned())?
            .ok_or(Errno::EBADF)?;
        if !file.flags.read {
            return Err(Errno::EBADF);
        }
        let extents = match file.backing {
            FileBacking::Local(ino) => self.vfs.file_extents(ino, off, len)?,
            FileBacking::Driver { mount, dfd } => {
                let mut mounts = self.mounts.lock();
                let d = mounts.driver_mut(mount).ok_or(Errno::EIO)?;
                ExtentList::single(d.pread(dfd, len, off)?)
            }
            FileBacking::Pipe { .. } => return Err(Errno::ESPIPE),
        };
        Ok(SysRet::Extents(extents))
    }

    fn do_write(
        &self,
        pid: Pid,
        fd: usize,
        data: &[u8],
        at: Option<u64>,
    ) -> SysResult<SysRet> {
        let file = self
            .with_proc(pid, |p| p.file(fd).cloned())?
            .ok_or(Errno::EBADF)?;
        if !file.flags.write {
            return Err(Errno::EBADF);
        }
        if let FileBacking::Pipe { id, gen, end } = file.backing {
            if end != PipeEnd::Write || at.is_some() {
                return Err(if at.is_some() { Errno::ESPIPE } else { Errno::EBADF });
            }
            let written = {
                let mut slots = self.pipes.slots.lock();
                match slots.get_mut(id) {
                    Some(s) if s.gen == gen => match &mut s.buf {
                        Some(p) if p.readers > 0 => {
                            p.data.extend(data.iter().copied());
                            Ok(data.len())
                        }
                        // Live slot, no readers: broken pipe.
                        Some(_) => Err(Errno::EPIPE),
                        None => Err(Errno::EBADF),
                    },
                    _ => Err(Errno::EBADF),
                }
            };
            return match written {
                Ok(n) => Ok(SysRet::Num(n as i64)),
                Err(Errno::EPIPE) => {
                    // Writing with no reader: broken pipe (and a signal,
                    // as in a real kernel).
                    self.with_proc_mut(pid, |p| p.pending.push(Signal::Term))?;
                    Err(Errno::EPIPE)
                }
                Err(e) => Err(e),
            };
        }
        let off = match (at, file.flags.append) {
            (Some(off), _) => off,
            (None, true) => match file.backing {
                FileBacking::Local(ino) => self.vfs.fstat(ino)?.size,
                FileBacking::Driver { mount, dfd } => {
                    let mut mounts = self.mounts.lock();
                    let d = mounts.driver_mut(mount).ok_or(Errno::EIO)?;
                    d.fstat(dfd)?.size
                }
                FileBacking::Pipe { .. } => unreachable!("handled above"),
            },
            (None, false) => file.offset(),
        };
        let n = match file.backing {
            FileBacking::Local(ino) => self.vfs.write_at(ino, off, data)?,
            FileBacking::Driver { mount, dfd } => {
                let mut mounts = self.mounts.lock();
                let d = mounts.driver_mut(mount).ok_or(Errno::EIO)?;
                d.pwrite(dfd, data, off)?
            }
            FileBacking::Pipe { .. } => unreachable!("handled above"),
        };
        if at.is_none() {
            self.with_proc(pid, |p| {
                p.file(fd).map(|f| f.set_offset(off + n as u64))
            })?
            .ok_or(Errno::EBADF)?;
        }
        Ok(SysRet::Num(n as i64))
    }

    fn do_lseek(&self, pid: Pid, fd: usize, off: i64, whence: Whence) -> SysResult<SysRet> {
        let file = self
            .with_proc(pid, |p| p.file(fd).cloned())?
            .ok_or(Errno::EBADF)?;
        let size = match file.backing {
            FileBacking::Local(ino) => self.vfs.fstat(ino)?.size,
            FileBacking::Pipe { .. } => return Err(Errno::ESPIPE),
            FileBacking::Driver { mount, dfd } => {
                let mut mounts = self.mounts.lock();
                let d = mounts.driver_mut(mount).ok_or(Errno::EIO)?;
                d.fstat(dfd)?.size
            }
        };
        let base = match whence {
            Whence::Set => 0i64,
            Whence::Cur => file.offset() as i64,
            Whence::End => size as i64,
        };
        let new = match base.checked_add(off) {
            Some(n) if n >= 0 => n,
            _ => return Err(Errno::EINVAL),
        };
        self.with_proc(pid, |p| p.file(fd).map(|f| f.set_offset(new as u64)))?
            .ok_or(Errno::EBADF)?;
        Ok(SysRet::Num(new))
    }

    fn do_dup(&self, pid: Pid, fd: usize) -> SysResult<SysRet> {
        let file = self
            .with_proc(pid, |p| p.file(fd).cloned())?
            .ok_or(Errno::EBADF)?;
        let backing = file.backing.clone();
        match backing {
            FileBacking::Local(ino) => self.vfs.pin(ino)?,
            FileBacking::Pipe { id, gen, end } => self.pipe_retain(id, gen, end),
            // Driver handles are not duplicable (the remote side owns
            // them); mirrors the fork limitation documented in DESIGN.md.
            FileBacking::Driver { .. } => return Err(Errno::EINVAL),
        }
        let nfd = self.with_proc_mut(pid, move |proc| {
            proc.alloc_fd().inspect(|&nfd| {
                proc.fds[nfd] = Some(file);
            })
        })?;
        match nfd {
            Some(nfd) => Ok(SysRet::Num(nfd as i64)),
            None => {
                match backing {
                    FileBacking::Local(ino) => {
                        let _ = self.vfs.unpin(ino);
                    }
                    FileBacking::Pipe { id, gen, end } => self.pipe_release(id, gen, end),
                    FileBacking::Driver { .. } => {}
                }
                Err(Errno::EMFILE)
            }
        }
    }

    // ------------------------------------------------------------------
    // Namespace operations
    // ------------------------------------------------------------------

    fn do_mkdir(&self, pid: Pid, p: &str, mode: u16) -> SysResult<SysRet> {
        if let Some((m, rel)) = self.route(pid, p)? {
            let id = self.driver_identity(pid)?;
            let mut mounts = self.mounts.lock();
            let d = mounts.driver_mut(m).ok_or(Errno::EIO)?;
            d.mkdir(&rel, mode, &id)?;
            return Ok(SysRet::Unit);
        }
        let (cred, cwd) = self.live_cred(pid)?;
        let umask = self.with_proc(pid, |p| p.umask)?;
        self.vfs.mkdir(cwd, p, mode & !umask, &cred)?;
        Ok(SysRet::Unit)
    }

    fn do_rmdir(&self, pid: Pid, p: &str) -> SysResult<SysRet> {
        if let Some((m, rel)) = self.route(pid, p)? {
            let id = self.driver_identity(pid)?;
            let mut mounts = self.mounts.lock();
            let d = mounts.driver_mut(m).ok_or(Errno::EIO)?;
            d.rmdir(&rel, &id)?;
            return Ok(SysRet::Unit);
        }
        let (cred, cwd) = self.live_cred(pid)?;
        self.vfs.rmdir(cwd, p, &cred)?;
        Ok(SysRet::Unit)
    }

    fn do_unlink(&self, pid: Pid, p: &str) -> SysResult<SysRet> {
        if let Some((m, rel)) = self.route(pid, p)? {
            let id = self.driver_identity(pid)?;
            let mut mounts = self.mounts.lock();
            let d = mounts.driver_mut(m).ok_or(Errno::EIO)?;
            d.unlink(&rel, &id)?;
            return Ok(SysRet::Unit);
        }
        let (cred, cwd) = self.live_cred(pid)?;
        self.vfs.unlink(cwd, p, &cred)?;
        Ok(SysRet::Unit)
    }

    fn do_link(&self, pid: Pid, old: &str, new: &str) -> SysResult<SysRet> {
        let ro = self.route(pid, old)?;
        let rn = self.route(pid, new)?;
        if ro.is_some() || rn.is_some() {
            return Err(Errno::EXDEV); // no hard links across/to mounts
        }
        let (cred, cwd) = self.live_cred(pid)?;
        self.vfs.link(cwd, old, new, &cred)?;
        Ok(SysRet::Unit)
    }

    fn do_symlink(&self, pid: Pid, target: &str, linkp: &str) -> SysResult<SysRet> {
        if self.route(pid, linkp)?.is_some() {
            return Err(Errno::EXDEV);
        }
        let (cred, cwd) = self.live_cred(pid)?;
        self.vfs.symlink(cwd, target, linkp, &cred)?;
        Ok(SysRet::Unit)
    }

    fn do_readlink(&self, pid: Pid, p: &str) -> SysResult<SysRet> {
        if self.route(pid, p)?.is_some() {
            return Err(Errno::EINVAL);
        }
        let (cred, cwd) = self.live_cred(pid)?;
        Ok(SysRet::Text(self.vfs.readlink(cwd, p, &cred)?))
    }

    fn do_rename(&self, pid: Pid, old: &str, new: &str) -> SysResult<SysRet> {
        let ro = self.route(pid, old)?;
        let rn = self.route(pid, new)?;
        match (ro, rn) {
            (Some((mo, relo)), Some((mn, reln))) if mo == mn => {
                let id = self.driver_identity(pid)?;
                let mut mounts = self.mounts.lock();
                let d = mounts.driver_mut(mo).ok_or(Errno::EIO)?;
                d.rename(&relo, &reln, &id)?;
                Ok(SysRet::Unit)
            }
            (None, None) => {
                let (cred, cwd) = self.live_cred(pid)?;
                self.vfs.rename(cwd, old, new, &cred)?;
                Ok(SysRet::Unit)
            }
            _ => Err(Errno::EXDEV),
        }
    }

    fn do_truncate(&self, pid: Pid, p: &str, len: u64) -> SysResult<SysRet> {
        if let Some((m, rel)) = self.route(pid, p)? {
            let id = self.driver_identity(pid)?;
            let mut mounts = self.mounts.lock();
            let d = mounts.driver_mut(m).ok_or(Errno::EIO)?;
            d.truncate(&rel, len, &id)?;
            return Ok(SysRet::Unit);
        }
        let (cred, cwd) = self.live_cred(pid)?;
        let ino = self.vfs.resolve(cwd, p, true, &cred)?;
        self.vfs.check_access(ino, &cred, Access::W)?;
        self.vfs.truncate(ino, len)?;
        Ok(SysRet::Unit)
    }

    fn do_access(&self, pid: Pid, p: &str, want: Access) -> SysResult<SysRet> {
        if let Some((m, rel)) = self.route(pid, p)? {
            let id = self.driver_identity(pid)?;
            let mut mounts = self.mounts.lock();
            let d = mounts.driver_mut(m).ok_or(Errno::EIO)?;
            d.stat(&rel, &id)?; // existence check only; rights are remote
            return Ok(SysRet::Unit);
        }
        let (cred, cwd) = self.live_cred(pid)?;
        self.vfs.access(cwd, p, want, &cred)?;
        Ok(SysRet::Unit)
    }

    fn do_readdir(&self, pid: Pid, p: &str) -> SysResult<SysRet> {
        if let Some((m, rel)) = self.route(pid, p)? {
            let id = self.driver_identity(pid)?;
            let mut mounts = self.mounts.lock();
            let d = mounts.driver_mut(m).ok_or(Errno::EIO)?;
            return Ok(SysRet::Entries(d.readdir(&rel, &id)?));
        }
        let (cred, cwd) = self.live_cred(pid)?;
        Ok(SysRet::Entries(self.vfs.readdir(cwd, p, &cred)?))
    }

    fn do_chmod(&self, pid: Pid, p: &str, mode: u16) -> SysResult<SysRet> {
        if self.route(pid, p)?.is_some() {
            return Err(Errno::ENOSYS); // remote ACLs, not modes
        }
        let (cred, cwd) = self.live_cred(pid)?;
        self.vfs.chmod(cwd, p, mode, &cred)?;
        Ok(SysRet::Unit)
    }

    fn do_chown(&self, pid: Pid, p: &str, uid: u32, gid: u32) -> SysResult<SysRet> {
        if self.route(pid, p)?.is_some() {
            return Err(Errno::ENOSYS);
        }
        let (cred, cwd) = self.live_cred(pid)?;
        self.vfs.chown(cwd, p, uid, gid, &cred)?;
        Ok(SysRet::Unit)
    }

    fn do_chdir(&self, pid: Pid, p: &str) -> SysResult<SysRet> {
        let abs = vpath::normalize_lexical(&self.absolutize(pid, p)?);
        if self.route(pid, p)?.is_some() {
            // cwd inside a mount is not supported; stay on the local fs.
            return Err(Errno::EXDEV);
        }
        let (cred, cwd) = self.live_cred(pid)?;
        let ino = self.vfs.resolve(cwd, p, true, &cred)?;
        if self.vfs.fstat(ino)?.kind != FileKind::Dir {
            return Err(Errno::ENOTDIR);
        }
        self.vfs.check_access(ino, &cred, Access::X)?;
        self.with_proc_mut(pid, |proc| {
            proc.cwd = ino;
            proc.cwd_path = abs;
        })?;
        Ok(SysRet::Unit)
    }

    // ------------------------------------------------------------------
    // Process operations
    // ------------------------------------------------------------------

    fn do_fork(&self, pid: Pid) -> SysResult<SysRet> {
        let child_pid = self.alloc_pid()?;
        let sp = self.procs.shard_of(pid);
        let sc = self.procs.shard_of(child_pid);
        let forked = (|| -> SysResult<()> {
            // Parent and child shards, ascending (one guard if equal).
            let (mut ga, mut gb) = self.procs.shards.write_pair(sp, sc);
            let parent = ga.get(&pid.0).ok_or(Errno::ESRCH)?.clone();
            if !parent.is_alive() {
                return Err(Errno::ESRCH);
            }
            // Pin / retain inherited fds. vfs and pipe locks taken under
            // the process-shard guards: allowed by the lock hierarchy
            // (procs → {vfs, pipes}).
            let mut fds = Vec::with_capacity(parent.fds.len());
            for slot in &parent.fds {
                match slot {
                    Some(f) => match f.backing {
                        FileBacking::Local(ino) => {
                            self.vfs.pin(ino)?;
                            fds.push(Some(f.clone()));
                        }
                        FileBacking::Pipe { id, gen, end } => {
                            self.pipe_retain(id, gen, end);
                            fds.push(Some(f.clone()));
                        }
                        // Driver handles are connection-private: not inherited.
                        FileBacking::Driver { .. } => fds.push(None),
                    },
                    None => fds.push(None),
                }
            }
            let child = Process {
                pid: child_pid,
                ppid: pid,
                fds,
                pending: Vec::new(),
                state: ProcState::Running,
                ..parent
            };
            match &mut gb {
                Some(g) => g.insert(child_pid.0, child),
                None => ga.insert(child_pid.0, child),
            };
            Ok(())
        })();
        self.release_pid(child_pid);
        forked?;
        Ok(SysRet::Num(child_pid.0 as i64))
    }

    /// `exec`: verify the image exists and is executable, then record it
    /// as the process's program. (The simulation does not load code —
    /// guest programs are host functions — but the permission semantics
    /// are real.)
    fn do_exec(&self, pid: Pid, name: String) -> SysResult<SysRet> {
        if let Some((m, rel)) = self.route(pid, &name)? {
            let id = self.driver_identity(pid)?;
            let mut mounts = self.mounts.lock();
            let d = mounts.driver_mut(m).ok_or(Errno::EIO)?;
            d.stat(&rel, &id)?; // existence; rights are the remote's call
        } else {
            let (cred, cwd) = self.live_cred(pid)?;
            let ino = self.vfs.resolve(cwd, &name, true, &cred)?;
            if self.vfs.fstat(ino)?.kind != FileKind::File {
                return Err(Errno::EACCES);
            }
            self.vfs.check_access(ino, &cred, Access::X)?;
        }
        self.with_proc_mut(pid, |p| p.comm = name)?;
        Ok(SysRet::Unit)
    }

    fn do_exit(&self, pid: Pid, code: i32) -> SysResult<SysRet> {
        self.terminate(pid, code)?;
        Ok(SysRet::Unit)
    }

    /// Shared by `exit` and lethal signals.
    fn terminate(&self, pid: Pid, code: i32) -> SysResult<()> {
        // Close all fds (taken under the shard lock, released outside it).
        let fds = self.with_proc_mut(pid, |p| std::mem::take(&mut p.fds))?;
        for f in fds.into_iter().flatten() {
            match f.backing {
                FileBacking::Local(ino) => {
                    let _ = self.vfs.unpin(ino);
                }
                FileBacking::Driver { mount, dfd } => {
                    if let Some(d) = self.mounts.lock().driver_mut(mount) {
                        let _ = d.close(dfd);
                    }
                }
                FileBacking::Pipe { id, gen, end } => self.pipe_release(id, gen, end),
            }
        }
        // Reparent children to init: sweep the shards one at a time (no
        // cross-shard atomicity needed — ppid edges are per-entry).
        for i in 0..self.procs.shards.len() {
            let mut g = self.procs.shards.write(i);
            for p in g.values_mut() {
                if p.ppid == pid && p.pid != pid {
                    p.ppid = INIT;
                }
            }
        }
        self.with_proc_mut(pid, |p| p.state = ProcState::Zombie(code))?;
        Ok(())
    }

    fn do_wait(&self, pid: Pid) -> SysResult<SysRet> {
        loop {
            // Snapshot all shards (ascending acquisition) and pick the
            // lowest-pid zombie child — the same child the single-lock
            // kernel's ascending scan reaped.
            let (have_child, candidate) = {
                let guards = self.procs.shards.read_all();
                let mut have_child = false;
                let mut candidate: Option<Pid> = None;
                for g in &guards {
                    for p in g.values() {
                        if p.ppid == pid && p.pid != pid {
                            have_child = true;
                            if matches!(p.state, ProcState::Zombie(_)) {
                                candidate = Some(candidate.map_or(p.pid, |c| c.min(p.pid)));
                            }
                        }
                    }
                }
                (have_child, candidate)
            };
            match candidate {
                Some(cpid) => {
                    let mut g = self.procs.shards.write(self.procs.shard_of(cpid));
                    // Revalidate: another waiter may have reaped it
                    // between the snapshot and this write lock.
                    if let Some(p) = g.get(&cpid.0) {
                        if p.ppid == pid {
                            if let ProcState::Zombie(code) = p.state {
                                g.remove(&cpid.0);
                                return Ok(SysRet::Reaped(cpid, code));
                            }
                        }
                    }
                    continue;
                }
                None if have_child => return Err(Errno::EAGAIN),
                None => return Err(Errno::ECHILD),
            }
        }
    }

    fn do_kill(&self, pid: Pid, target: Pid, sig: Signal) -> SysResult<SysRet> {
        let sender_uid = self.with_proc(pid, |p| p.cred.uid)?;
        let target_uid = self.with_proc(target, |t| {
            if t.is_alive() {
                Ok(t.cred.uid)
            } else {
                Err(Errno::ESRCH)
            }
        })??;
        // Unix rule: root, or matching uid. (The identity box adds the
        // stricter same-identity rule above this layer.)
        if sender_uid != 0 && sender_uid != target_uid {
            return Err(Errno::EPERM);
        }
        if sig == Signal::Kill {
            self.terminate(target, 128 + sig.number() as i32)?;
        } else {
            self.with_proc_mut(target, |t| t.pending.push(sig))?;
        }
        Ok(SysRet::Unit)
    }

    /// Plant an arbitrary fd into a process table (regression-test rig:
    /// lets tests manufacture a stale pipe fd that survived a full
    /// close, the scenario the generation tag defends against).
    #[cfg(test)]
    fn plant_fd(&self, pid: Pid, backing: FileBacking, flags: OpenFlags) -> usize {
        self.with_proc_mut(pid, |p| {
            let fd = p.alloc_fd().expect("fd table full");
            p.fds[fd] = Some(OpenFile::new(backing, flags));
            fd
        })
        .expect("live process")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_with_user(name: &str) -> (Kernel, Pid, Cred) {
        let mut k = Kernel::new();
        let uid = k.accounts_mut().next_free_uid();
        k.accounts_mut()
            .add(crate::Account::new(name, uid, uid))
            .unwrap();
        k.sync_passwd_file();
        let cred = Cred::new(uid, uid);
        let root = k.vfs().root();
        k.vfs()
            .mkdir(root, &format!("/home/{name}"), 0o755, &Cred::ROOT)
            .unwrap();
        k.vfs()
            .chown(root, &format!("/home/{name}"), uid, uid, &Cred::ROOT)
            .unwrap();
        let pid = k.spawn(cred, &format!("/home/{name}"), "sh").unwrap();
        (k, pid, cred)
    }

    #[test]
    fn boot_layout() {
        let mut k = Kernel::new();
        let pid = k.spawn(Cred::ROOT, "/", "probe").unwrap();
        for dir in ["/etc", "/home", "/tmp", "/root", "/bin"] {
            let st = k.syscall(pid, Syscall::Stat(dir.into())).unwrap();
            match st {
                SysRet::Stat(s) => assert!(s.is_dir(), "{dir} should be a dir"),
                other => panic!("unexpected {other:?}"),
            }
        }
        let passwd = k.syscall(pid, Syscall::Stat("/etc/passwd".into())).unwrap();
        assert!(matches!(passwd, SysRet::Stat(s) if s.is_file()));
    }

    #[test]
    fn open_write_read_close() {
        let (mut k, pid, _) = kernel_with_user("dthain");
        let fd = k
            .syscall(
                pid,
                Syscall::Open("notes".into(), OpenFlags::wronly_create_trunc(), 0o644),
            )
            .unwrap()
            .num() as usize;
        let n = k
            .syscall(pid, Syscall::Write(fd, b"hello".to_vec()))
            .unwrap()
            .num();
        assert_eq!(n, 5);
        k.syscall(pid, Syscall::Close(fd)).unwrap();
        let fd = k
            .syscall(pid, Syscall::Open("notes".into(), OpenFlags::rdonly(), 0))
            .unwrap()
            .num() as usize;
        let data = k.syscall(pid, Syscall::Read(fd, 100)).unwrap();
        assert_eq!(data.data(), b"hello");
        // Sequential read advances: next read is empty.
        let more = k.syscall(pid, Syscall::Read(fd, 100)).unwrap();
        assert!(more.data().is_empty());
        k.syscall(pid, Syscall::Close(fd)).unwrap();
    }

    #[test]
    fn pread_pwrite_do_not_move_offset() {
        let (mut k, pid, _) = kernel_with_user("u");
        let fd = k
            .syscall(
                pid,
                Syscall::Open("f".into(), OpenFlags::rdwr_create(), 0o644),
            )
            .unwrap_or_else(|_| panic!("open"))
            .num() as usize;
        k.syscall(pid, Syscall::Pwrite(fd, b"abcdef".to_vec(), 0)).unwrap();
        let d = k.syscall(pid, Syscall::Pread(fd, 3, 2)).unwrap();
        assert_eq!(d.data(), b"cde");
        // Offset still 0: sequential read sees the start.
        let d = k.syscall(pid, Syscall::Read(fd, 2)).unwrap();
        assert_eq!(d.data(), b"ab");
    }

    #[test]
    fn append_mode() {
        let (mut k, pid, _) = kernel_with_user("u");
        let fd = k
            .syscall(
                pid,
                Syscall::Open("log".into(), OpenFlags::append_create(), 0o644),
            )
            .unwrap()
            .num() as usize;
        k.syscall(pid, Syscall::Write(fd, b"one".to_vec())).unwrap();
        k.syscall(pid, Syscall::Write(fd, b"two".to_vec())).unwrap();
        k.syscall(pid, Syscall::Close(fd)).unwrap();
        let fd = k
            .syscall(pid, Syscall::Open("log".into(), OpenFlags::rdonly(), 0))
            .unwrap()
            .num() as usize;
        let d = k.syscall(pid, Syscall::Read(fd, 100)).unwrap();
        assert_eq!(d.data(), b"onetwo");
    }

    #[test]
    fn lseek_whences() {
        let (mut k, pid, _) = kernel_with_user("u");
        let fd = k
            .syscall(
                pid,
                Syscall::Open("f".into(), OpenFlags::rdwr_create(), 0o644),
            )
            .unwrap()
            .num() as usize;
        k.syscall(pid, Syscall::Write(fd, b"0123456789".to_vec())).unwrap();
        assert_eq!(
            k.syscall(pid, Syscall::Lseek(fd, 2, Whence::Set)).unwrap().num(),
            2
        );
        assert_eq!(
            k.syscall(pid, Syscall::Lseek(fd, 3, Whence::Cur)).unwrap().num(),
            5
        );
        assert_eq!(
            k.syscall(pid, Syscall::Lseek(fd, -1, Whence::End)).unwrap().num(),
            9
        );
        assert_eq!(
            k.syscall(pid, Syscall::Lseek(fd, -100, Whence::Cur)),
            Err(Errno::EINVAL)
        );
    }

    #[test]
    fn umask_applies_to_create() {
        let (mut k, pid, _) = kernel_with_user("u");
        k.syscall(pid, Syscall::Umask(0o077)).unwrap();
        let fd = k
            .syscall(
                pid,
                Syscall::Open("f".into(), OpenFlags::wronly_create_trunc(), 0o666),
            )
            .unwrap()
            .num() as usize;
        k.syscall(pid, Syscall::Close(fd)).unwrap();
        let st = k.syscall(pid, Syscall::Stat("f".into())).unwrap();
        assert!(matches!(st, SysRet::Stat(s) if s.mode == 0o600));
    }

    #[test]
    fn fork_wait_exit() {
        let (mut k, pid, _) = kernel_with_user("u");
        let child = Pid(k.syscall(pid, Syscall::Fork).unwrap().num() as u32);
        // Child exits 42; parent reaps it.
        k.syscall(child, Syscall::Exit(42)).unwrap();
        match k.syscall(pid, Syscall::Wait).unwrap() {
            SysRet::Reaped(cpid, code) => {
                assert_eq!(cpid, child);
                assert_eq!(code, 42);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(k.syscall(pid, Syscall::Wait), Err(Errno::ECHILD));
    }

    #[test]
    fn wait_with_running_child_is_eagain() {
        let (mut k, pid, _) = kernel_with_user("u");
        let _child = k.syscall(pid, Syscall::Fork).unwrap().num();
        assert_eq!(k.syscall(pid, Syscall::Wait), Err(Errno::EAGAIN));
    }

    #[test]
    fn fork_inherits_fds_with_pins() {
        let (mut k, pid, _) = kernel_with_user("u");
        let fd = k
            .syscall(
                pid,
                Syscall::Open("f".into(), OpenFlags::rdwr_create(), 0o644),
            )
            .unwrap()
            .num() as usize;
        k.syscall(pid, Syscall::Write(fd, b"x".to_vec())).unwrap();
        let child = Pid(k.syscall(pid, Syscall::Fork).unwrap().num() as u32);
        // Parent unlinks and closes; child's fd must still work.
        k.syscall(pid, Syscall::Unlink("f".into())).unwrap();
        k.syscall(pid, Syscall::Close(fd)).unwrap();
        let d = k.syscall(child, Syscall::Pread(fd, 1, 0)).unwrap();
        assert_eq!(d.data(), b"x");
        k.syscall(child, Syscall::Exit(0)).unwrap();
    }

    #[test]
    fn kill_permissions_follow_uid() {
        let (mut k, alice_pid, _) = kernel_with_user("alice");
        let bob_uid = k.accounts_mut().next_free_uid();
        k.accounts_mut()
            .add(crate::Account::new("bob", bob_uid, bob_uid))
            .unwrap();
        let bob_pid = k.spawn(Cred::new(bob_uid, bob_uid), "/tmp", "sh").unwrap();
        // Bob cannot signal alice.
        assert_eq!(
            k.syscall(bob_pid, Syscall::Kill(alice_pid, Signal::Term)),
            Err(Errno::EPERM)
        );
        // Alice can signal herself.
        k.syscall(alice_pid, Syscall::Kill(alice_pid, Signal::Usr1))
            .unwrap();
        match k.syscall(alice_pid, Syscall::SigPending).unwrap() {
            SysRet::Signals(sigs) => assert_eq!(sigs, vec![Signal::Usr1]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sigkill_terminates_immediately() {
        let (mut k, pid, _) = kernel_with_user("u");
        let child = Pid(k.syscall(pid, Syscall::Fork).unwrap().num() as u32);
        k.syscall(pid, Syscall::Kill(child, Signal::Kill)).unwrap();
        assert!(!k.process(child).unwrap().is_alive());
        match k.syscall(pid, Syscall::Wait).unwrap() {
            SysRet::Reaped(_, code) => assert_eq!(code, 137),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn chdir_and_getcwd() {
        let (mut k, pid, _) = kernel_with_user("u");
        k.syscall(pid, Syscall::Mkdir("sub".into(), 0o755)).unwrap();
        k.syscall(pid, Syscall::Chdir("sub".into())).unwrap();
        match k.syscall(pid, Syscall::Getcwd).unwrap() {
            SysRet::Text(p) => assert_eq!(p, "/home/u/sub"),
            other => panic!("unexpected {other:?}"),
        }
        k.syscall(pid, Syscall::Chdir("..".into())).unwrap();
        match k.syscall(pid, Syscall::Getcwd).unwrap() {
            SysRet::Text(p) => assert_eq!(p, "/home/u"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn get_user_name_without_box_is_account() {
        let (mut k, pid, _) = kernel_with_user("dthain");
        match k.syscall(pid, Syscall::GetUserName).unwrap() {
            SysRet::Name(id) => assert_eq!(id.as_str(), "dthain"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn get_user_name_with_identity() {
        let (mut k, pid, _) = kernel_with_user("dthain");
        k.set_identity(pid, Identity::new("globus:/O=UnivNowhere/CN=Fred"))
            .unwrap();
        match k.syscall(pid, Syscall::GetUserName).unwrap() {
            SysRet::Name(id) => {
                assert_eq!(id.as_str(), "globus:/O=UnivNowhere/CN=Fred")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn permission_denied_for_other_users_files() {
        let (mut k, alice_pid, alice) = kernel_with_user("alice");
        let root = k.vfs().root();
        // Alice makes a private file.
        k.vfs()
            .write_file(root, "/home/alice/secret", b"shh", &alice)
            .unwrap();
        k.vfs()
            .chmod(root, "/home/alice/secret", 0o600, &alice)
            .unwrap();
        k.vfs()
            .chmod(root, "/home/alice", 0o700, &alice)
            .unwrap();
        let bob_uid = k.accounts_mut().next_free_uid();
        k.accounts_mut()
            .add(crate::Account::new("bob", bob_uid, bob_uid))
            .unwrap();
        let bob_pid = k.spawn(Cred::new(bob_uid, bob_uid), "/tmp", "sh").unwrap();
        assert_eq!(
            k.syscall(
                bob_pid,
                Syscall::Open("/home/alice/secret".into(), OpenFlags::rdonly(), 0)
            ),
            Err(Errno::EACCES)
        );
        // Alice herself is fine.
        assert!(k
            .syscall(
                alice_pid,
                Syscall::Open("/home/alice/secret".into(), OpenFlags::rdonly(), 0)
            )
            .is_ok());
    }

    #[test]
    fn stats_count_calls() {
        let (mut k, pid, _) = kernel_with_user("u");
        k.syscall(pid, Syscall::Getpid).unwrap();
        k.syscall(pid, Syscall::Getpid).unwrap();
        let _ = k.syscall(pid, Syscall::Stat("/none".into()));
        assert_eq!(k.stats.count("getpid"), 2);
        assert_eq!(k.stats.count("stat"), 1);
        assert_eq!(k.total_syscalls(), 3);
    }

    #[test]
    fn read_path_matches_exclusive_path() {
        // Every call must produce the same result through `syscall_read`
        // (shared borrow) as through `syscall` (exclusive borrow) against
        // identical kernel state.
        let build = || {
            let (mut k, pid, _) = kernel_with_user("u");
            let root = k.vfs().root();
            k.vfs()
                .write_file(root, "/tmp/f", b"hello world", &Cred::ROOT)
                .unwrap();
            k.vfs()
                .symlink(root, "/tmp/f", "/tmp/ln", &Cred::ROOT)
                .unwrap();
            let fd = k
                .syscall(pid, Syscall::Open("/tmp/f".into(), OpenFlags::rdonly(), 0))
                .unwrap()
                .num() as usize;
            (k, pid, fd)
        };
        let calls = |fd: usize| {
            vec![
                Syscall::Getpid,
                Syscall::Getppid,
                Syscall::Getuid,
                Syscall::Getcwd,
                Syscall::GetUserName,
                Syscall::Stat("/tmp/f".into()),
                Syscall::Stat("/none".into()),
                Syscall::Lstat("/tmp/ln".into()),
                Syscall::Fstat(fd),
                Syscall::Fstat(99),
                Syscall::Readlink("/tmp/ln".into()),
                Syscall::Readlink("/tmp/f".into()),
                Syscall::AccessCheck("/tmp/f".into(), Access::R),
                Syscall::Readdir("/tmp".into()),
                Syscall::Pread(fd, 5, 6),
                Syscall::Read(fd, 4),
                Syscall::Lseek(fd, 2, Whence::Set),
                Syscall::Read(fd, 4),
                Syscall::Lseek(fd, -1, Whence::End),
                Syscall::Lseek(fd, -100, Whence::Cur),
            ]
        };
        let (mut k_mut, pid_a, fd_a) = build();
        let (k_shared, pid_b, fd_b) = build();
        for (a, b) in calls(fd_a).into_iter().zip(calls(fd_b)) {
            let via_mut = k_mut.syscall(pid_a, a.clone());
            let via_read = k_shared
                .syscall_read(pid_b, &b)
                .expect("every call is served on the shared path");
            assert_eq!(via_mut, via_read, "diverged on {}", a.name());
        }
        assert_eq!(k_mut.total_syscalls(), k_shared.total_syscalls());
    }

    #[test]
    fn shared_path_serves_every_call() {
        // Since the kernel went sharded, the shared-borrow path serves
        // everything — mutating calls included — and counts each exactly
        // once. (Before the shard split, `syscall_read` declined mutating
        // calls with `None` and callers fell back to the exclusive lock.)
        let (mut k, pid, _) = kernel_with_user("u");
        let before = k.total_syscalls();
        let child = Pid(
            k.syscall_read(pid, &Syscall::Fork)
                .expect("served")
                .unwrap()
                .num() as u32,
        );
        let fd = k
            .syscall_read(
                pid,
                &Syscall::Open("/tmp/x".into(), OpenFlags::rdwr_create(), 0o644),
            )
            .expect("served")
            .unwrap()
            .num() as usize;
        k.syscall_read(pid, &Syscall::Write(fd, b"hi".to_vec()))
            .expect("served")
            .unwrap();
        assert!(k.syscall_read(pid, &Syscall::Umask(0o022)).expect("served").is_ok());
        assert!(k.syscall_read(pid, &Syscall::SigPending).expect("served").is_ok());
        let (rfd, wfd) = match k.syscall_read(pid, &Syscall::Pipe).expect("served").unwrap() {
            SysRet::PipeFds(r, w) => (r, w),
            other => panic!("unexpected {other:?}"),
        };
        k.syscall_read(pid, &Syscall::Write(wfd, b"x".to_vec()))
            .expect("served")
            .unwrap();
        assert_eq!(
            k.syscall_read(pid, &Syscall::Read(rfd, 1))
                .expect("served")
                .unwrap()
                .data(),
            b"x"
        );
        // Shared and exclusive entry points feed the same counters.
        k.syscall(child, Syscall::Exit(0)).unwrap();
        k.syscall(pid, Syscall::Wait).unwrap();
        assert_eq!(k.total_syscalls(), before + 10);
    }

    #[test]
    fn shared_readers_run_concurrently_across_threads() {
        use std::sync::{Arc, RwLock};
        let (k, pid, _) = kernel_with_user("u");
        let root = k.vfs().root();
        k.vfs()
            .write_file(root, "/tmp/f", b"shared data", &Cred::ROOT)
            .unwrap();
        let k = Arc::new(RwLock::new(k));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let k = Arc::clone(&k);
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        let g = k.read().unwrap();
                        let r = g
                            .syscall_read(pid, &Syscall::Stat("/tmp/f".into()))
                            .expect("stat is shared-servable");
                        assert!(r.is_ok());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(k.read().unwrap().stats.count("stat"), 1000);
    }

    #[test]
    fn open_requires_read_or_write() {
        let (mut k, pid, _) = kernel_with_user("u");
        assert_eq!(
            k.syscall(
                pid,
                Syscall::Open("f".into(), OpenFlags::default(), 0o644)
            ),
            Err(Errno::EINVAL)
        );
    }

    #[test]
    fn excl_create_fails_on_existing() {
        let (mut k, pid, _) = kernel_with_user("u");
        let mut fl = OpenFlags::wronly_create_trunc();
        fl.excl = true;
        let fd = k
            .syscall(pid, Syscall::Open("f".into(), fl, 0o644))
            .unwrap()
            .num() as usize;
        k.syscall(pid, Syscall::Close(fd)).unwrap();
        assert_eq!(
            k.syscall(pid, Syscall::Open("f".into(), fl, 0o644)),
            Err(Errno::EEXIST)
        );
    }

    #[test]
    fn exit_closes_fds_and_reparents_children() {
        let (mut k, pid, _) = kernel_with_user("u");
        let fd = k
            .syscall(
                pid,
                Syscall::Open("f".into(), OpenFlags::rdwr_create(), 0o644),
            )
            .unwrap()
            .num() as usize;
        let child = Pid(k.syscall(pid, Syscall::Fork).unwrap().num() as u32);
        let grandchild = Pid(k.syscall(child, Syscall::Fork).unwrap().num() as u32);
        k.syscall(child, Syscall::Exit(0)).unwrap();
        // Grandchild reparented to init (pid 1).
        assert_eq!(k.process(grandchild).unwrap().ppid, Pid(1));
        // Parent's fd still valid, child's pins released.
        k.syscall(pid, Syscall::Write(fd, b"ok".to_vec())).unwrap();
        k.syscall(grandchild, Syscall::Exit(0)).unwrap();
    }

    #[test]
    fn pipe_roundtrip_and_eof() {
        let (mut k, pid, _) = kernel_with_user("u");
        let fds = k.syscall(pid, Syscall::Pipe).unwrap();
        let (rfd, wfd) = match fds {
            SysRet::PipeFds(r, w) => (r, w),
            other => panic!("unexpected {other:?}"),
        };
        // Empty pipe with live writer: EAGAIN.
        assert_eq!(k.syscall(pid, Syscall::Read(rfd, 10)), Err(Errno::EAGAIN));
        k.syscall(pid, Syscall::Write(wfd, b"through the pipe".to_vec()))
            .unwrap();
        let d = k.syscall(pid, Syscall::Read(rfd, 7)).unwrap();
        assert_eq!(d.data(), b"through");
        let d = k.syscall(pid, Syscall::Read(rfd, 100)).unwrap();
        assert_eq!(d.data(), b" the pipe");
        // Close the writer: drained pipe now reports EOF.
        k.syscall(pid, Syscall::Close(wfd)).unwrap();
        let d = k.syscall(pid, Syscall::Read(rfd, 10)).unwrap();
        assert!(d.data().is_empty());
        k.syscall(pid, Syscall::Close(rfd)).unwrap();
    }

    #[test]
    fn pipe_epipe_on_writer_without_reader() {
        let (mut k, pid, _) = kernel_with_user("u");
        let (rfd, wfd) = match k.syscall(pid, Syscall::Pipe).unwrap() {
            SysRet::PipeFds(r, w) => (r, w),
            other => panic!("unexpected {other:?}"),
        };
        k.syscall(pid, Syscall::Close(rfd)).unwrap();
        assert_eq!(
            k.syscall(pid, Syscall::Write(wfd, b"x".to_vec())),
            Err(Errno::EPIPE)
        );
        // And a termination signal was queued, as in a real kernel.
        match k.syscall(pid, Syscall::SigPending).unwrap() {
            SysRet::Signals(sigs) => assert_eq!(sigs, vec![Signal::Term]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pipe_crosses_fork() {
        let (mut k, pid, _) = kernel_with_user("u");
        let (rfd, wfd) = match k.syscall(pid, Syscall::Pipe).unwrap() {
            SysRet::PipeFds(r, w) => (r, w),
            other => panic!("unexpected {other:?}"),
        };
        let child = Pid(k.syscall(pid, Syscall::Fork).unwrap().num() as u32);
        // Child writes, closes both ends, exits.
        k.syscall(child, Syscall::Write(wfd, b"from child".to_vec()))
            .unwrap();
        k.syscall(child, Syscall::Exit(0)).unwrap();
        // Parent closes its write end; reads the child's message; then EOF.
        k.syscall(pid, Syscall::Close(wfd)).unwrap();
        let d = k.syscall(pid, Syscall::Read(rfd, 100)).unwrap();
        assert_eq!(d.data(), b"from child");
        let d = k.syscall(pid, Syscall::Read(rfd, 100)).unwrap();
        assert!(d.data().is_empty(), "EOF after all writers gone");
        k.syscall(pid, Syscall::Wait).unwrap();
    }

    #[test]
    fn pipe_misuse_is_clean_errors() {
        let (mut k, pid, _) = kernel_with_user("u");
        let (rfd, wfd) = match k.syscall(pid, Syscall::Pipe).unwrap() {
            SysRet::PipeFds(r, w) => (r, w),
            other => panic!("unexpected {other:?}"),
        };
        // Wrong-direction I/O.
        assert_eq!(
            k.syscall(pid, Syscall::Write(rfd, b"x".to_vec())),
            Err(Errno::EBADF)
        );
        assert_eq!(k.syscall(pid, Syscall::Read(wfd, 1)), Err(Errno::EBADF));
        // Pipes are not seekable and have no positioned I/O.
        assert_eq!(
            k.syscall(pid, Syscall::Lseek(rfd, 0, Whence::Set)),
            Err(Errno::ESPIPE)
        );
        assert_eq!(k.syscall(pid, Syscall::Pread(rfd, 1, 0)), Err(Errno::ESPIPE));
        // fstat reports the buffered byte count.
        k.syscall(pid, Syscall::Write(wfd, b"abc".to_vec())).unwrap();
        match k.syscall(pid, Syscall::Fstat(rfd)).unwrap() {
            SysRet::Stat(st) => assert_eq!(st.size, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn readdir_via_syscall() {
        let (mut k, pid, _) = kernel_with_user("u");
        k.syscall(pid, Syscall::Mkdir("d".into(), 0o755)).unwrap();
        let fd = k
            .syscall(
                pid,
                Syscall::Open("d/f".into(), OpenFlags::wronly_create_trunc(), 0o644),
            )
            .unwrap()
            .num() as usize;
        k.syscall(pid, Syscall::Close(fd)).unwrap();
        match k.syscall(pid, Syscall::Readdir("d".into())).unwrap() {
            SysRet::Entries(es) => {
                let names: Vec<_> = es.iter().map(|e| e.name.as_str()).collect();
                assert_eq!(names, [".", "..", "f"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pid_allocation_wraps_and_skips_live_pids() {
        let mut k = Kernel::new();
        k.set_max_pid(6); // pid space is {2..=6}; pid 1 is init
        let a = k.spawn(Cred::ROOT, "/", "a").unwrap();
        let b = k.spawn(Cred::ROOT, "/", "b").unwrap();
        let c = k.spawn(Cred::ROOT, "/", "c").unwrap();
        let d = k.spawn(Cred::ROOT, "/", "d").unwrap();
        let e = k.spawn(Cred::ROOT, "/", "e").unwrap();
        assert_eq!((a, b, c, d, e), (Pid(2), Pid(3), Pid(4), Pid(5), Pid(6)));
        // The space is exhausted: allocation reports EAGAIN instead of
        // spinning forever or handing out a duplicate pid. (The old
        // allocator was an unchecked `next_pid += 1`: overflow panic in
        // debug, silent pid aliasing after wrap in release.)
        assert_eq!(k.spawn(Cred::ROOT, "/", "f"), Err(Errno::EAGAIN));
        // One pid frees up (exit, then reaped by init, the spawn parent)…
        k.syscall(c, Syscall::Exit(0)).unwrap();
        match k.syscall(Pid(1), Syscall::Wait).unwrap() {
            SysRet::Reaped(cpid, _) => assert_eq!(cpid, c),
            other => panic!("unexpected {other:?}"),
        }
        // …and the allocator wraps past the live pids to find it again.
        assert_eq!(k.spawn(Cred::ROOT, "/", "g").unwrap(), c);
    }

    #[test]
    fn pipe_slot_reuse_cannot_alias_stale_fds() {
        let (mut k, pid, _) = kernel_with_user("u");
        let (r1, w1) = match k.syscall(pid, Syscall::Pipe).unwrap() {
            SysRet::PipeFds(r, w) => (r, w),
            other => panic!("unexpected {other:?}"),
        };
        // Copy the first pipe's backings, as a leaked stale fd would hold
        // them (historically a double-close plus slot reuse did exactly
        // this: the old fd silently aliased the next pipe in the slot).
        let stale_r = k.process(pid).unwrap().file(r1).unwrap().backing.clone();
        let stale_w = k.process(pid).unwrap().file(w1).unwrap().backing.clone();
        // Close both ends: the slot is freed for reuse.
        k.syscall(pid, Syscall::Close(r1)).unwrap();
        k.syscall(pid, Syscall::Close(w1)).unwrap();
        // A new pipe reuses the slot id under a fresh generation.
        let (r2, w2) = match k.syscall(pid, Syscall::Pipe).unwrap() {
            SysRet::PipeFds(r, w) => (r, w),
            other => panic!("unexpected {other:?}"),
        };
        let fresh_r = k.process(pid).unwrap().file(r2).unwrap().backing.clone();
        let (
            FileBacking::Pipe { id: old_id, gen: old_gen, .. },
            FileBacking::Pipe { id: new_id, gen: new_gen, .. },
        ) = (stale_r.clone(), fresh_r)
        else {
            panic!("expected pipe backings");
        };
        assert_eq!(old_id, new_id, "slot is reused");
        assert!(new_gen > old_gen, "reuse bumps the generation");
        // Plant the stale fds back into the process and verify every pipe
        // op rejects them instead of touching the new pipe.
        let sr = k.plant_fd(pid, stale_r, OpenFlags::rdonly());
        let sw = k.plant_fd(
            pid,
            stale_w,
            OpenFlags {
                write: true,
                ..Default::default()
            },
        );
        k.syscall(pid, Syscall::Write(w2, b"fresh".to_vec())).unwrap();
        assert_eq!(k.syscall(pid, Syscall::Read(sr, 5)), Err(Errno::EBADF));
        assert_eq!(k.syscall(pid, Syscall::Fstat(sr)), Err(Errno::EBADF));
        assert_eq!(
            k.syscall(pid, Syscall::Write(sw, b"zzz".to_vec())),
            Err(Errno::EBADF)
        );
        // A stale write is EBADF, not EPIPE: no termination signal.
        match k.syscall(pid, Syscall::SigPending).unwrap() {
            SysRet::Signals(sigs) => assert!(sigs.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        // The new pipe is untouched by all of the above.
        let d = k.syscall(pid, Syscall::Read(r2, 100)).unwrap();
        assert_eq!(d.data(), b"fresh");
    }

    #[test]
    fn concurrent_syscalls_across_shards_do_not_deadlock() {
        use std::sync::Arc;
        // Mixed cross-shard traffic on every thread: fork/exec/exit/wait
        // (parent and child usually land in different process shards),
        // renames between directories on different vfs shards, pipes.
        // A lock-ordering violation shows up here as a deadlock (the
        // test hangs) rather than a failed assertion.
        let k = Arc::new(Kernel::with_shards(4));
        let workers = 8;
        let mut pids = Vec::new();
        for i in 0..workers {
            let dir = format!("/tmp/w{i}");
            k.vfs().mkdir(k.vfs().root(), &dir, 0o777, &Cred::ROOT).unwrap();
            pids.push(k.spawn(Cred::ROOT, &dir, "sh").unwrap());
        }
        let threads: Vec<_> = pids
            .into_iter()
            .enumerate()
            .map(|(i, pid)| {
                let k = Arc::clone(&k);
                std::thread::spawn(move || {
                    for round in 0..100 {
                        let child = Pid(
                            k.syscall_shared(pid, Syscall::Fork).unwrap().num() as u32
                        );
                        k.syscall_shared(child, Syscall::Exec("/bin/sh".into()))
                            .unwrap();
                        let f = format!("f{round}");
                        let fd = k
                            .syscall_shared(
                                child,
                                Syscall::Open(f.clone(), OpenFlags::rdwr_create(), 0o644),
                            )
                            .unwrap()
                            .num() as usize;
                        k.syscall_shared(child, Syscall::Write(fd, vec![b'x'; 64]))
                            .unwrap();
                        k.syscall_shared(child, Syscall::Close(fd)).unwrap();
                        // Rename into the *next* worker's directory: the
                        // source and destination parents live on
                        // different vfs shards.
                        let other = format!("/tmp/w{}/g{round}-{i}", (i + 1) % workers);
                        k.syscall_shared(child, Syscall::Rename(f, other.clone()))
                            .unwrap();
                        k.syscall_shared(pid, Syscall::Unlink(other)).unwrap();
                        let (rfd, wfd) =
                            match k.syscall_shared(pid, Syscall::Pipe).unwrap() {
                                SysRet::PipeFds(r, w) => (r, w),
                                other => panic!("unexpected {other:?}"),
                            };
                        k.syscall_shared(pid, Syscall::Write(wfd, b"ping".to_vec()))
                            .unwrap();
                        assert_eq!(
                            k.syscall_shared(pid, Syscall::Read(rfd, 4)).unwrap().data(),
                            b"ping"
                        );
                        k.syscall_shared(pid, Syscall::Close(rfd)).unwrap();
                        k.syscall_shared(pid, Syscall::Close(wfd)).unwrap();
                        k.syscall_shared(child, Syscall::Exit(0)).unwrap();
                        match k.syscall_shared(pid, Syscall::Wait) {
                            Ok(SysRet::Reaped(c, 0)) => assert_eq!(c, child),
                            other => panic!("unexpected wait result {other:?}"),
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(k.pids().len(), workers + 1, "init + workers survive");
    }
}
