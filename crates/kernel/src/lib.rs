//! The simulated Unix kernel.
//!
//! Identity boxing was built on an unmodified Linux kernel reached through
//! `ptrace`. In this reproduction the kernel itself is simulated: this
//! crate provides the process table (fork / exec / exit / wait), per-process
//! file-descriptor tables, working directories, umasks, signals, the
//! `/etc/passwd` account database, and a typed system-call interface
//! dispatched over the [`idbox_vfs`] filesystem plus a mount table of
//! [`FsDriver`]s for external services (the Chirp driver mounts a remote
//! server under `/chirp/...`, exactly as Parrot attaches remote I/O
//! services to the file namespace).
//!
//! The kernel enforces ordinary **Unix** semantics: uid/gid permission
//! checks, uid-based signal rules. The *identity box* semantics — ACLs
//! keyed by free-form global identities, `nobody` fallback, same-identity
//! signalling — live one layer up, in `idbox-core`, which interposes on
//! this interface the way Parrot interposes on Linux.

mod accounts;
mod driver;
mod kernel;
mod process;
mod stats;
mod syscall;

pub use accounts::{Account, AccountDb};
pub use driver::{DriverFd, FsDriver, MountTable};
pub use kernel::Kernel;
pub use stats::{LatencySnapshot, LatencyStats, SyscallStats, LATENCY_BUCKETS};
pub use process::{
    FileBacking, OpenFile, OpenFlags, Pid, PipeEnd, ProcState, Process, Signal, MAX_FDS,
};
pub use syscall::{Syscall, SysRet, Whence};
// The zero-copy read path's payload types, re-exported so callers of
// `SysRet::Extents` need not depend on the vfs crate directly.
pub use idbox_vfs::{ByteExtent, ExtentList};
