//! Processes, file descriptors, and signals.

use idbox_types::Identity;
use idbox_vfs::{Cred, Ino};
use std::sync::atomic::{AtomicU64, Ordering};

/// A process id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Maximum open file descriptors per process.
pub const MAX_FDS: usize = 256;

/// Open-file flags (a decoded subset of `O_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Create the file if missing.
    pub create: bool,
    /// With `create`: fail if the file exists.
    pub excl: bool,
    /// Truncate to zero length on open.
    pub trunc: bool,
    /// All writes go to end of file.
    pub append: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub fn rdonly() -> Self {
        OpenFlags {
            read: true,
            ..Default::default()
        }
    }

    /// `O_WRONLY | O_CREAT | O_TRUNC` — the classic "write a file" open.
    pub fn wronly_create_trunc() -> Self {
        OpenFlags {
            write: true,
            create: true,
            trunc: true,
            ..Default::default()
        }
    }

    /// `O_RDWR`.
    pub fn rdwr() -> Self {
        OpenFlags {
            read: true,
            write: true,
            ..Default::default()
        }
    }

    /// `O_RDWR | O_CREAT`.
    pub fn rdwr_create() -> Self {
        OpenFlags {
            read: true,
            write: true,
            create: true,
            ..Default::default()
        }
    }

    /// `O_WRONLY | O_CREAT | O_APPEND`.
    pub fn append_create() -> Self {
        OpenFlags {
            write: true,
            create: true,
            append: true,
            ..Default::default()
        }
    }

    /// Encode into a raw bitfield for the register-level ABI.
    pub fn to_bits(self) -> u64 {
        (self.read as u64)
            | (self.write as u64) << 1
            | (self.create as u64) << 2
            | (self.excl as u64) << 3
            | (self.trunc as u64) << 4
            | (self.append as u64) << 5
    }

    /// Decode from the raw bitfield.
    pub fn from_bits(bits: u64) -> Self {
        OpenFlags {
            read: bits & 1 != 0,
            write: bits & 2 != 0,
            create: bits & 4 != 0,
            excl: bits & 8 != 0,
            trunc: bits & 16 != 0,
            append: bits & 32 != 0,
        }
    }
}

/// Signals understood by the simulated kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signal {
    /// Interrupt (Ctrl-C).
    Int,
    /// Termination request; delivered to the pending queue.
    Term,
    /// Unblockable kill; the process dies immediately.
    Kill,
    /// User-defined signal 1.
    Usr1,
    /// User-defined signal 2.
    Usr2,
}

impl Signal {
    /// Conventional signal number.
    pub fn number(self) -> u32 {
        match self {
            Signal::Int => 2,
            Signal::Kill => 9,
            Signal::Usr1 => 10,
            Signal::Usr2 => 12,
            Signal::Term => 15,
        }
    }

    /// Decode a signal number.
    pub fn from_number(n: u32) -> Option<Signal> {
        Some(match n {
            2 => Signal::Int,
            9 => Signal::Kill,
            10 => Signal::Usr1,
            12 => Signal::Usr2,
            15 => Signal::Term,
            _ => return None,
        })
    }
}

/// Which end of a pipe an fd holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeEnd {
    /// The reading end.
    Read,
    /// The writing end.
    Write,
}

/// Where an open file's bytes live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileBacking {
    /// A local VFS inode (pinned while open).
    Local(Ino),
    /// A handle owned by a mounted [`FsDriver`](crate::FsDriver).
    Driver {
        /// Index into the kernel's mount table.
        mount: usize,
        /// Driver-private descriptor.
        dfd: u64,
    },
    /// One end of an in-kernel pipe.
    Pipe {
        /// Index into the kernel's pipe table.
        id: usize,
        /// Generation of the slot at open time. Slots are recycled after
        /// both ends close; the kernel rejects any fd whose generation no
        /// longer matches the slot's with `EBADF`, so a stale fd can
        /// never alias a newer pipe that happens to reuse the same id.
        gen: u64,
        /// Which end this fd holds.
        end: PipeEnd,
    },
}

/// One open-file table entry.
#[derive(Debug)]
pub struct OpenFile {
    /// Backing store.
    pub backing: FileBacking,
    /// Current offset. Atomic so the kernel's shared-lock read path can
    /// advance it through `&self`: an fd is private to one process, so
    /// this is per-fd interior mutability, not cross-thread contention,
    /// and `Relaxed` ordering suffices (the kernel lock orders everything
    /// else).
    offset: AtomicU64,
    /// Flags the file was opened with.
    pub flags: OpenFlags,
}

impl OpenFile {
    /// A fresh entry at offset zero.
    pub fn new(backing: FileBacking, flags: OpenFlags) -> Self {
        OpenFile {
            backing,
            offset: AtomicU64::new(0),
            flags,
        }
    }

    /// The current file offset.
    pub fn offset(&self) -> u64 {
        self.offset.load(Ordering::Relaxed)
    }

    /// Set the file offset (callable through a shared borrow; see the
    /// field comment).
    pub fn set_offset(&self, off: u64) {
        self.offset.store(off, Ordering::Relaxed)
    }
}

impl Clone for OpenFile {
    fn clone(&self) -> Self {
        OpenFile {
            backing: self.backing.clone(),
            // Snapshot semantics: the copy starts at the source's current
            // offset but does not share it afterwards (dup/fork in this
            // kernel copy offsets rather than sharing the file table
            // entry, as documented in DESIGN.md).
            offset: AtomicU64::new(self.offset()),
            flags: self.flags,
        }
    }
}

impl PartialEq for OpenFile {
    fn eq(&self, other: &Self) -> bool {
        self.backing == other.backing
            && self.offset() == other.offset()
            && self.flags == other.flags
    }
}

impl Eq for OpenFile {}

/// Process lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Alive.
    Running,
    /// Exited with a status; waiting to be reaped by its parent.
    Zombie(i32),
}

/// A process table entry.
#[derive(Debug, Clone)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Parent process id (self-parent for the initial process).
    pub ppid: Pid,
    /// Unix credentials used for kernel permission checks.
    pub cred: Cred,
    /// The global identity attached by an identity box, if any. The kernel
    /// stores it (it is "carried with each process", paper Section 3) but
    /// never interprets it; the box supervisor does.
    pub identity: Option<Identity>,
    /// Current working directory inode.
    pub cwd: Ino,
    /// Textual cwd (what `getcwd` reports).
    pub cwd_path: String,
    /// Open files; index = fd.
    pub fds: Vec<Option<OpenFile>>,
    /// Lifecycle state.
    pub state: ProcState,
    /// Undelivered signals, in arrival order.
    pub pending: Vec<Signal>,
    /// File-creation mask.
    pub umask: u16,
    /// The program name last `exec`ed (for diagnostics / ps).
    pub comm: String,
    /// Environment variables. Seeded by the supervisor (`set_env`),
    /// inherited across `fork`, readable by the guest via `getenv` —
    /// how a boxed child learns e.g. the trace id of the request that
    /// spawned it.
    pub env: std::collections::BTreeMap<String, String>,
}

impl Process {
    /// Find the lowest free fd slot, extending the table if needed.
    pub fn alloc_fd(&mut self) -> Option<usize> {
        for (i, slot) in self.fds.iter().enumerate() {
            if slot.is_none() {
                return Some(i);
            }
        }
        if self.fds.len() < MAX_FDS {
            self.fds.push(None);
            Some(self.fds.len() - 1)
        } else {
            None
        }
    }

    /// Borrow an open file by fd.
    pub fn file(&self, fd: usize) -> Option<&OpenFile> {
        self.fds.get(fd).and_then(|f| f.as_ref())
    }

    /// Mutably borrow an open file by fd.
    pub fn file_mut(&mut self, fd: usize) -> Option<&mut OpenFile> {
        self.fds.get_mut(fd).and_then(|f| f.as_mut())
    }

    /// True while the process has not exited.
    pub fn is_alive(&self) -> bool {
        matches!(self.state, ProcState::Running)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_flags_bits_roundtrip() {
        for bits in 0..64u64 {
            let f = OpenFlags::from_bits(bits);
            assert_eq!(f.to_bits(), bits);
        }
    }

    #[test]
    fn flag_constructors() {
        assert!(OpenFlags::rdonly().read);
        assert!(!OpenFlags::rdonly().write);
        let w = OpenFlags::wronly_create_trunc();
        assert!(w.write && w.create && w.trunc && !w.read);
        let a = OpenFlags::append_create();
        assert!(a.append && a.write);
    }

    #[test]
    fn signal_numbers_roundtrip() {
        for s in [Signal::Int, Signal::Kill, Signal::Usr1, Signal::Usr2, Signal::Term] {
            assert_eq!(Signal::from_number(s.number()), Some(s));
        }
        assert_eq!(Signal::from_number(99), None);
    }

    #[test]
    fn fd_allocation_reuses_lowest() {
        let mut p = Process {
            pid: Pid(1),
            ppid: Pid(1),
            cred: Cred::ROOT,
            identity: None,
            cwd: Ino(1),
            cwd_path: "/".into(),
            fds: vec![None; 3],
            state: ProcState::Running,
            pending: vec![],
            umask: 0o022,
            comm: "init".into(),
            env: Default::default(),
        };
        assert_eq!(p.alloc_fd(), Some(0));
        p.fds[0] = Some(OpenFile::new(
            FileBacking::Local(Ino(2)),
            OpenFlags::rdonly(),
        ));
        assert_eq!(p.alloc_fd(), Some(1));
        p.fds[1] = Some(OpenFile::new(
            FileBacking::Local(Ino(3)),
            OpenFlags::rdonly(),
        ));
        p.fds[0] = None;
        assert_eq!(p.alloc_fd(), Some(0));
    }

    #[test]
    fn open_file_offset_is_shared_borrow_mutable_but_clone_snapshots() {
        let f = OpenFile::new(FileBacking::Local(Ino(2)), OpenFlags::rdonly());
        assert_eq!(f.offset(), 0);
        f.set_offset(42); // through &f
        assert_eq!(f.offset(), 42);
        let g = f.clone();
        assert_eq!(g.offset(), 42);
        f.set_offset(7);
        assert_eq!(g.offset(), 42, "clone must not share the offset cell");
        assert_ne!(f, g);
    }
}
