//! Per-syscall dispatch counters.
//!
//! The kernel sits behind a reader/writer lock shared by every
//! supervisor and server thread, and read-only calls are dispatched
//! under the *shared* side of that lock. The statistics table therefore
//! cannot be a plain map bumped through `&mut self`: it is a fixed array
//! of atomics, indexed by [`Syscall::slot`], that both dispatch paths
//! update through `&self`.

use crate::syscall::Syscall;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// One counter per syscall name, updatable through a shared borrow.
#[derive(Debug)]
pub struct SyscallStats {
    counts: [AtomicU64; Syscall::NAMES.len()],
}

impl Default for SyscallStats {
    fn default() -> Self {
        Self::new()
    }
}

impl SyscallStats {
    /// All counters at zero.
    pub fn new() -> Self {
        SyscallStats {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one dispatch of `call`.
    pub fn bump(&self, call: &Syscall) {
        self.counts[call.slot()].fetch_add(1, Ordering::Relaxed);
    }

    /// How many times the named call was dispatched (0 for an unknown
    /// name, matching the old map's `get(..).unwrap_or(0)` idiom).
    pub fn count(&self, name: &str) -> u64 {
        match Syscall::NAMES.iter().position(|&n| n == name) {
            Some(slot) => self.counts[slot].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Total dispatches across all calls.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy of the non-zero counters, for reports.
    pub fn snapshot(&self) -> BTreeMap<&'static str, u64> {
        Syscall::NAMES
            .iter()
            .zip(&self.counts)
            .filter_map(|(&name, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((name, n))
            })
            .collect()
    }
}

impl Clone for SyscallStats {
    fn clone(&self) -> Self {
        let counts =
            std::array::from_fn(|i| AtomicU64::new(self.counts[i].load(Ordering::Relaxed)));
        SyscallStats { counts }
    }
}

/// Number of log-scale latency buckets. Bucket `i` covers durations in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 also absorbs 0ns), so 32
/// buckets span 1ns up to ~4.3 seconds — wider than any simulated
/// syscall.
pub const LATENCY_BUCKETS: usize = 32;

/// Per-syscall latency histograms with fixed log-scale buckets.
///
/// Same discipline as [`SyscallStats`]: the kernel lives behind a
/// reader/writer lock and read-only calls are dispatched under the
/// shared side, so every cell is an atomic and recording goes through
/// `&self`. Supervisors time each dispatch and record here without
/// holding either side of the kernel lock.
#[derive(Debug)]
pub struct LatencyStats {
    buckets: [[AtomicU64; LATENCY_BUCKETS]; Syscall::NAMES.len()],
}

impl Default for LatencyStats {
    fn default() -> Self {
        Self::new()
    }
}

/// The log2 bucket index for a duration in nanoseconds.
fn bucket_of(nanos: u64) -> usize {
    if nanos == 0 {
        return 0;
    }
    ((63 - nanos.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
}

/// The inclusive upper bound (ns) reported for bucket `i`.
fn bucket_ceiling(i: usize) -> u64 {
    (1u64 << (i + 1)) - 1
}

impl LatencyStats {
    /// All buckets at zero.
    pub fn new() -> Self {
        LatencyStats {
            buckets: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }

    /// Record one dispatch of `call` that took `nanos` nanoseconds.
    pub fn record(&self, call: &Syscall, nanos: u64) {
        self.buckets[call.slot()][bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time, non-atomic copy for percentile math and diffs.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|row| std::array::from_fn(|i| row[i].load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

/// A frozen copy of [`LatencyStats`], one bucket row per syscall name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySnapshot {
    buckets: Vec<[u64; LATENCY_BUCKETS]>,
}

impl LatencySnapshot {
    /// Dispatches recorded for the named call (0 for unknown names).
    pub fn count(&self, name: &str) -> u64 {
        match Syscall::NAMES.iter().position(|&n| n == name) {
            Some(slot) => self.buckets[slot].iter().sum(),
            None => 0,
        }
    }

    /// Total dispatches recorded across all calls.
    pub fn total(&self) -> u64 {
        self.buckets.iter().flatten().sum()
    }

    /// The latency (ns, bucket ceiling) at percentile `p` (0-100] for
    /// the named call.
    ///
    /// Returns `None` — never a fabricated number — when the histogram
    /// holds no samples for the call, or when the name is unknown. An
    /// empty histogram has no percentile; callers that need a scalar
    /// must choose their own default (the benches use `unwrap_or(0)`).
    pub fn percentile(&self, name: &str, p: f64) -> Option<u64> {
        let slot = Syscall::NAMES.iter().position(|&n| n == name)?;
        percentile_of(&self.buckets[slot], p)
    }

    /// The latency at percentile `p` merged across every syscall.
    /// `None` when no call recorded any sample (same contract as
    /// [`LatencySnapshot::percentile`]).
    pub fn overall_percentile(&self, p: f64) -> Option<u64> {
        let mut merged = [0u64; LATENCY_BUCKETS];
        for row in &self.buckets {
            for (m, b) in merged.iter_mut().zip(row) {
                *m += b;
            }
        }
        percentile_of(&merged, p)
    }

    /// The events recorded between `earlier` and `self`.
    ///
    /// Each bucket is subtracted with `saturating_sub`: when a counter
    /// in `self` reads *lower* than in `earlier` — the snapshots were
    /// taken out of order, compare unrelated histograms, or a bucket's
    /// `u64` wrapped in between — that bucket clamps to 0 instead of
    /// underflowing to ~2^64. A wrapped bucket therefore *undercounts*
    /// the window (its real delta is lost), which is the documented
    /// trade: monitoring windows may read low after ~10^19 events, but
    /// they can never explode.
    pub fn diff(&self, earlier: &LatencySnapshot) -> LatencySnapshot {
        LatencySnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(now, then)| {
                    std::array::from_fn(|i| now[i].saturating_sub(then[i]))
                })
                .collect(),
        }
    }

    /// `(name, count, p50 ns, p99 ns)` for every call with data, in
    /// [`Syscall::NAMES`] order. Percentiles are `None` when the row
    /// has a count but no histogram mass (possible across a wrapped
    /// `diff`): dashboards must see "no data", not a false zero.
    pub fn rows(&self) -> Vec<(&'static str, u64, Option<u64>, Option<u64>)> {
        Syscall::NAMES
            .iter()
            .zip(&self.buckets)
            .filter_map(|(&name, row)| {
                let n: u64 = row.iter().sum();
                (n > 0).then(|| {
                    (
                        name,
                        n,
                        percentile_of(row, 50.0),
                        percentile_of(row, 99.0),
                    )
                })
            })
            .collect()
    }
}

/// Percentile over one bucket row: walk buckets until the cumulative
/// count reaches `ceil(p% of total)`, report that bucket's ceiling.
fn percentile_of(row: &[u64; LATENCY_BUCKETS], p: f64) -> Option<u64> {
    let total: u64 = row.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &n) in row.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return Some(bucket_ceiling(i));
        }
    }
    Some(bucket_ceiling(LATENCY_BUCKETS - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_count_total() {
        let s = SyscallStats::new();
        s.bump(&Syscall::Getpid);
        s.bump(&Syscall::Getpid);
        s.bump(&Syscall::Stat("/x".into()));
        assert_eq!(s.count("getpid"), 2);
        assert_eq!(s.count("stat"), 1);
        assert_eq!(s.count("write"), 0);
        assert_eq!(s.count("no-such-call"), 0);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn snapshot_skips_zeros() {
        let s = SyscallStats::new();
        s.bump(&Syscall::Fork);
        let snap = s.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap["fork"], 1);
    }

    #[test]
    fn bumps_through_shared_borrow_from_threads() {
        let s = std::sync::Arc::new(SyscallStats::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.bump(&Syscall::Read(0, 1));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.count("read"), 4000);
    }

    #[test]
    fn latency_buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        // Everything past the top bucket clamps into it.
        assert_eq!(bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
        assert_eq!(bucket_ceiling(0), 1);
        assert_eq!(bucket_ceiling(10), 2047);
    }

    #[test]
    fn latency_percentiles() {
        let l = LatencyStats::new();
        let snap = l.snapshot();
        assert_eq!(snap.percentile("getpid", 50.0), None);
        assert_eq!(snap.overall_percentile(99.0), None);
        for _ in 0..99 {
            l.record(&Syscall::Getpid, 1_000); // bucket 9, ceiling 1023
        }
        l.record(&Syscall::Getpid, 1_000_000); // bucket 19
        let snap = l.snapshot();
        assert_eq!(snap.count("getpid"), 100);
        assert_eq!(snap.percentile("getpid", 50.0), Some(1023));
        assert_eq!(snap.percentile("getpid", 99.0), Some(1023));
        assert_eq!(snap.percentile("getpid", 100.0), Some((1 << 20) - 1));
        assert!(snap.percentile("getpid", 50.0) <= snap.percentile("getpid", 99.0));
        assert_eq!(snap.percentile("no-such-call", 50.0), None);
    }

    #[test]
    fn latency_diff_and_rows() {
        let l = LatencyStats::new();
        l.record(&Syscall::Getpid, 10);
        let before = l.snapshot();
        l.record(&Syscall::Stat("/x".into()), 100);
        l.record(&Syscall::Stat("/x".into()), 100);
        let delta = l.snapshot().diff(&before);
        assert_eq!(delta.count("getpid"), 0);
        assert_eq!(delta.count("stat"), 2);
        assert_eq!(delta.total(), 2);
        let rows = delta.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "stat");
        assert_eq!(rows[0].1, 2);
    }

    #[test]
    fn empty_histogram_has_no_percentile() {
        let snap = LatencyStats::new().snapshot();
        // No samples anywhere: every percentile form answers None.
        for p in [0.1, 50.0, 99.0, 100.0] {
            assert_eq!(snap.percentile("getpid", p), None);
            assert_eq!(snap.overall_percentile(p), None);
        }
        assert!(snap.rows().is_empty());
        // A call with samples answers; its empty neighbors still don't.
        let l = LatencyStats::new();
        l.record(&Syscall::Getpid, 5);
        let snap = l.snapshot();
        assert!(snap.percentile("getpid", 50.0).is_some());
        assert_eq!(snap.percentile("stat", 50.0), None);
    }

    #[test]
    fn diff_saturates_after_counter_wrap() {
        // Simulate a bucket wrapping between snapshots: "earlier" holds
        // a near-max count, "now" holds a small post-wrap count. The
        // per-bucket delta clamps to 0 (undercounting the window)
        // rather than underflowing to ~2^64.
        let l = LatencyStats::new();
        l.record(&Syscall::Getpid, 1);
        l.record(&Syscall::Getpid, 1);
        l.record(&Syscall::Getpid, 1);
        let earlier = l.snapshot(); // getpid bucket0 = 3
        let now = LatencyStats::new();
        now.record(&Syscall::Getpid, 1); // "wrapped" back down to 1
        now.record(&Syscall::Stat("/x".into()), 100);
        let delta = now.snapshot().diff(&earlier);
        assert_eq!(delta.count("getpid"), 0, "wrapped bucket clamps to 0");
        assert_eq!(delta.count("stat"), 1, "healthy buckets still diff");
        assert_eq!(delta.total(), 1);
        // And the clamped window still has a sane percentile contract.
        assert_eq!(delta.percentile("getpid", 50.0), None);
        assert!(delta.percentile("stat", 50.0).is_some());
    }

    #[test]
    fn rows_after_wrap_report_no_false_zeros() {
        // A wrap that wipes one bucket but leaves another: the row
        // keeps its surviving count and its percentiles come from the
        // surviving mass only. A fully wiped row vanishes from rows()
        // instead of surfacing as count 0 / percentile 0.
        let l = LatencyStats::new();
        for _ in 0..5 {
            l.record(&Syscall::Getpid, 1); // bucket 0
        }
        l.record(&Syscall::Stat("/x".into()), 1);
        let earlier = l.snapshot();
        let now = LatencyStats::new();
        now.record(&Syscall::Getpid, 1); // bucket 0 "wrapped" below earlier
        for _ in 0..3 {
            now.record(&Syscall::Getpid, 1_000_000); // bucket 19 survives
        }
        let delta = now.snapshot().diff(&earlier);
        let rows = delta.rows();
        assert_eq!(rows.len(), 1, "fully wiped stat row is absent");
        let (name, count, p50, p99) = rows[0];
        assert_eq!(name, "getpid");
        assert_eq!(count, 3, "only the surviving bucket counts");
        assert_eq!(p50, Some((1 << 20) - 1));
        assert_eq!(p99, Some((1 << 20) - 1));
    }

    #[test]
    fn latency_records_through_shared_borrow_from_threads() {
        let l = std::sync::Arc::new(LatencyStats::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let l = std::sync::Arc::clone(&l);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        l.record(&Syscall::Read(0, 1), i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(l.snapshot().count("read"), 4000);
    }
}
