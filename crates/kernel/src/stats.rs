//! Per-syscall dispatch counters.
//!
//! The kernel sits behind a reader/writer lock shared by every
//! supervisor and server thread, and read-only calls are dispatched
//! under the *shared* side of that lock. The statistics table therefore
//! cannot be a plain map bumped through `&mut self`: it is a fixed array
//! of atomics, indexed by [`Syscall::slot`], that both dispatch paths
//! update through `&self`.

use crate::syscall::Syscall;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// One counter per syscall name, updatable through a shared borrow.
#[derive(Debug)]
pub struct SyscallStats {
    counts: [AtomicU64; Syscall::NAMES.len()],
}

impl Default for SyscallStats {
    fn default() -> Self {
        Self::new()
    }
}

impl SyscallStats {
    /// All counters at zero.
    pub fn new() -> Self {
        SyscallStats {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one dispatch of `call`.
    pub fn bump(&self, call: &Syscall) {
        self.counts[call.slot()].fetch_add(1, Ordering::Relaxed);
    }

    /// How many times the named call was dispatched (0 for an unknown
    /// name, matching the old map's `get(..).unwrap_or(0)` idiom).
    pub fn count(&self, name: &str) -> u64 {
        match Syscall::NAMES.iter().position(|&n| n == name) {
            Some(slot) => self.counts[slot].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Total dispatches across all calls.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy of the non-zero counters, for reports.
    pub fn snapshot(&self) -> BTreeMap<&'static str, u64> {
        Syscall::NAMES
            .iter()
            .zip(&self.counts)
            .filter_map(|(&name, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((name, n))
            })
            .collect()
    }
}

impl Clone for SyscallStats {
    fn clone(&self) -> Self {
        let counts =
            std::array::from_fn(|i| AtomicU64::new(self.counts[i].load(Ordering::Relaxed)));
        SyscallStats { counts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_count_total() {
        let s = SyscallStats::new();
        s.bump(&Syscall::Getpid);
        s.bump(&Syscall::Getpid);
        s.bump(&Syscall::Stat("/x".into()));
        assert_eq!(s.count("getpid"), 2);
        assert_eq!(s.count("stat"), 1);
        assert_eq!(s.count("write"), 0);
        assert_eq!(s.count("no-such-call"), 0);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn snapshot_skips_zeros() {
        let s = SyscallStats::new();
        s.bump(&Syscall::Fork);
        let snap = s.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap["fork"], 1);
    }

    #[test]
    fn bumps_through_shared_borrow_from_threads() {
        let s = std::sync::Arc::new(SyscallStats::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.bump(&Syscall::Read(0, 1));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.count("read"), 4000);
    }
}
